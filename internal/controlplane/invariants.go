package controlplane

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/engine"
	"autoindex/internal/schema"
)

// InvariantTarget pairs a managed database with the index set it had
// before the control plane made any changes. Chaos harnesses capture the
// baseline at Manage time and hand it back at check time.
type InvariantTarget struct {
	DB *engine.Database
	// Baseline is the database's index set before any auto-index activity.
	Baseline []schema.IndexDef
}

// Violation is one invariant breach found by CheckInvariants.
type Violation struct {
	Database string
	Rule     string
	Detail   string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: [%s] %s", v.Database, v.Rule, v.Detail)
}

// Invariant rule names, stable for assertions and reports.
const (
	RuleInFlight  = "in-flight-after-drain"
	RuleStuck     = "stuck-record"
	RuleDuplicate = "duplicate-auto-index"
	RuleOrphan    = "orphan-auto-index"
	RuleMissing   = "missing-index"
)

// CheckInvariants audits the persisted record states against the actual
// engine catalogs after a chaos run has drained. It asserts the §4/§7
// graceful-degradation contract: whatever schedule of faults and crashes
// was injected, the system must settle with
//
//   - no record still mid-flight (the drain gave every record time to
//     reach Active or a terminal state),
//   - no record stuck past cfg.StuckAfter (health-check invariant, §4),
//   - no two auto-created indexes with identical keys on one table
//     (re-executed creates must adopt, never duplicate),
//   - no auto-created index unaccounted for by some record (a crash must
//     not leak an index whose record forgot it),
//   - every index the records promise present actually present — in
//     particular a Reverted record leaves exactly the pre-change set.
//
// Records are applied to the expected set in (UpdatedAt, ID) order. A
// successful drop discharges requirements for every signature sharing
// its key columns, not just its own: a reverted drop may have adopted a
// key-equivalent index instead of re-creating the original, and a later
// intentional drop of that stand-in must not leave the original's
// expectation dangling.
// Error-state and still-in-flight records make their index ambiguous
// (legitimately present or absent, since the failure may have struck on
// either side of the DDL) — ambiguity never excuses a duplicate, and an
// in-flight record is already its own violation. Indexes whose table or
// columns no longer exist are pruned from expectations: the customer
// schema-change cascade (§8.3) drops them outside the state machine.
//
// Violations are returned sorted by database, then rule, then detail, so
// output is deterministic for a given store state.
func CheckInvariants(store Store, targets map[string]InvariantTarget, cfg Config, now time.Time) []Violation {
	var out []Violation
	names := make([]string, 0, len(targets))
	for name := range targets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, checkDatabase(store, name, targets[name], cfg, now)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Database != b.Database {
			return a.Database < b.Database
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Detail < b.Detail
	})
	return out
}

func checkDatabase(store Store, name string, target InvariantTarget, cfg Config, now time.Time) []Violation {
	var out []Violation
	recs := store.Records(func(r *Record) bool { return r.Database == name })
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].UpdatedAt.Equal(recs[j].UpdatedAt) {
			return recs[i].UpdatedAt.Before(recs[j].UpdatedAt)
		}
		return recs[i].ID < recs[j].ID
	})

	// required: signatures that must exist. accounted: signatures an
	// auto-created index is allowed to have (baseline or explained by a
	// record). ambiguous: may be present or absent.
	required := make(map[string]bool)
	accounted := make(map[string]bool)
	ambiguous := make(map[string]bool)
	// sigKeys maps every signature seen to its (table, key columns) pair,
	// the equivalence class revert adoption works in.
	sigKeys := make(map[string]string)
	for _, def := range target.Baseline {
		if def.Hypothetical {
			continue
		}
		required[def.Signature()] = true
		accounted[def.Signature()] = true
		sigKeys[def.Signature()] = keySig(def)
	}

	for _, r := range recs {
		sig := r.Index.Signature()
		sigKeys[sig] = keySig(r.Index)
		switch {
		case !r.State.Terminal():
			if r.State != StateActive {
				out = append(out, Violation{name, RuleInFlight,
					fmt.Sprintf("record %s still %s (substate %q)", r.ID, r.State, r.SubState)})
			}
			if now.Sub(r.UpdatedAt) > cfg.StuckAfter {
				out = append(out, Violation{name, RuleStuck,
					fmt.Sprintf("record %s in %s for %s (> StuckAfter %s)", r.ID, r.State, now.Sub(r.UpdatedAt), cfg.StuckAfter)})
			}
			// Mid-flight DDL may or may not have landed.
			if r.State != StateActive {
				ambiguous[sig] = true
				accounted[sig] = true
				delete(required, sig)
			}
		case r.State == StateError:
			// The failure may have struck before or after the DDL.
			ambiguous[sig] = true
			accounted[sig] = true
			delete(required, sig)
		case r.Action == core.ActionCreateIndex && r.State == StateSuccess:
			required[sig] = true
			accounted[sig] = true
			delete(ambiguous, sig)
		case r.Action == core.ActionCreateIndex:
			// Reverted or Expired: net no-op; the index must be gone
			// (unless something earlier still requires the signature).
			if !required[sig] {
				delete(accounted, sig)
				delete(ambiguous, sig)
			}
		case r.Action == core.ActionDropIndex && r.State == StateSuccess:
			delete(required, sig)
			delete(accounted, sig)
			delete(ambiguous, sig)
			// The flip side of revert adoption: a reverted drop may have
			// adopted a key-equivalent index instead of re-creating its
			// own, so an intentional drop of one member of the key class
			// discharges every outstanding requirement in that class.
			for s := range required {
				if sigKeys[s] == sigKeys[sig] {
					delete(required, s)
				}
			}
		default:
			// Drop Reverted/Expired: index restored or never dropped.
		}
	}

	// Prune expectations invalidated by customer schema changes: the §8.3
	// cascade drops auto-indexes when their table or columns vanish.
	actualDefs := target.DB.IndexDefs()
	for sig := range required {
		if !signatureStillValid(target.DB, sig, append(target.Baseline, recordDefs(recs)...)) {
			delete(required, sig)
		}
	}

	actual := make(map[string]schema.IndexDef)
	for _, def := range actualDefs {
		if def.Hypothetical {
			continue
		}
		actual[def.Signature()] = def
	}

	// A required signature is satisfied exactly, or by a key-equivalent
	// index (revert adoption: an equivalent index that landed mid-revert
	// stands in for the original).
	actualKeys := make(map[string]bool)
	for _, def := range actualDefs {
		if !def.Hypothetical {
			actualKeys[keySig(def)] = true
		}
	}
	sigDefs := make(map[string]schema.IndexDef)
	for _, def := range append(append([]schema.IndexDef(nil), target.Baseline...), recordDefs(recs)...) {
		if _, ok := sigDefs[def.Signature()]; !ok {
			sigDefs[def.Signature()] = def
		}
	}
	// Violations are part of chaos-run output, so emit them in sorted
	// signature order, not map order.
	for _, sig := range sortedSigs(required) {
		if _, ok := actual[sig]; ok {
			continue
		}
		if def, ok := sigDefs[sig]; ok && actualKeys[keySig(def)] {
			continue
		}
		out = append(out, Violation{name, RuleMissing, fmt.Sprintf("expected index %s absent", sig)})
	}
	for _, sig := range sortedSigs(actual) {
		if def := actual[sig]; def.AutoCreated && !accounted[sig] {
			out = append(out, Violation{name, RuleOrphan,
				fmt.Sprintf("auto-created index %s (%s) not explained by baseline or any record", def.Name, sig)})
		}
	}

	// Duplicate auto-indexes: identical key columns on the same table.
	autos := make([]schema.IndexDef, 0, len(actualDefs))
	for _, def := range actualDefs {
		if def.AutoCreated && !def.Hypothetical {
			autos = append(autos, def)
		}
	}
	for i := 0; i < len(autos); i++ {
		for j := i + 1; j < len(autos); j++ {
			if strings.EqualFold(autos[i].Table, autos[j].Table) && autos[i].SameKey(autos[j]) {
				out = append(out, Violation{name, RuleDuplicate,
					fmt.Sprintf("indexes %s and %s share key columns on %s", autos[i].Name, autos[j].Name, autos[i].Table)})
			}
		}
	}
	return out
}

// keySig canonicalises an index's (table, key columns) pair — the
// equivalence the duplicate and revert-adoption rules work in.
func keySig(def schema.IndexDef) string {
	return strings.ToLower(def.Table) + "(" + strings.ToLower(strings.Join(def.KeyColumns, ",")) + ")"
}

// recordDefs extracts the index definitions referenced by records.
func recordDefs(recs []*Record) []schema.IndexDef {
	out := make([]schema.IndexDef, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Index)
	}
	return out
}

// signatureStillValid reports whether the definition behind sig (looked up
// among defs) still has its table and every column in the live schema. If
// no definition matches the signature, the expectation is kept (true): an
// unmatchable signature should surface as a missing-index violation, not
// be silently pruned.
func signatureStillValid(db *engine.Database, sig string, defs []schema.IndexDef) bool {
	for _, def := range defs {
		if def.Signature() != sig {
			continue
		}
		t, ok := db.Table(def.Table)
		if !ok {
			return false
		}
		for _, col := range def.AllColumns() {
			if t.Def.ColumnIndex(col) < 0 {
				return false
			}
		}
		return true
	}
	return true
}

// sortedSigs returns m's signature keys in sorted order, so that
// violation reports do not depend on map iteration order.
func sortedSigs[V any](m map[string]V) []string {
	sigs := make([]string, 0, len(m))
	for s := range m {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	return sigs
}
