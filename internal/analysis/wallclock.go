package analysis

import (
	"go/ast"
	"strings"
)

// WallClockAnalyzer forbids reading the wall clock or the global
// math/rand source outside the sanctioned packages (internal/sim and
// the live serving path, see sanctionedPkgSuffixes). Every simulated
// component reads time
// through sim.Clock and randomness through seeded sim.RNG streams;
// that is the whole reason fleet runs are bit-identical for a given
// seed. A stray time.Now or rand.Intn silently reintroduces
// nondeterminism that only shows up as flaky fleet diffs much later.
//
// Constructing a local, seeded generator (rand.New(rand.NewSource(s)))
// is deterministic and allowed; only the package-level functions that
// draw from the process-global source are flagged. _test.go files are
// exempt: tests legitimately sleep to coordinate real goroutines, and
// test wall-time never feeds simulation output.
var WallClockAnalyzer = &Analyzer{
	Name:      "wallclock",
	Doc:       "wall-clock time or global math/rand outside sanctioned packages (use sim.Clock / sim.RNG)",
	SkipTests: true,
	Run:       runWallClock,
}

// simPkgSuffix exempts the simulation substrate itself, which is the
// one place allowed to touch the real clock (sim.WallClock adapts it).
// It is also referenced by the metricsdiscipline check.
const simPkgSuffix = "internal/sim"

// sanctionedPkgSuffixes lists the packages allowed to read the wall
// clock. Beyond the simulation substrate, the SQL serving path is
// exempt: real network connections need real read deadlines, and
// admission backpressure sleeps off real wall time. Nothing in either
// package feeds simulation output — live capture enters Query Store
// through the engine, which stamps it with the tenant's virtual clock.
var sanctionedPkgSuffixes = []string{
	simPkgSuffix,
	"internal/wire",
	"internal/serve",
}

// sanctionedPkg reports whether pkgPath is on the wall-clock
// sanctioned list.
func sanctionedPkg(pkgPath string) bool {
	for _, suffix := range sanctionedPkgSuffixes {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return true
		}
	}
	return false
}

var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Sleep": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// seeded constructors on math/rand and math/rand/v2 that do not touch
// the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runWallClock(pass *Pass) {
	if sanctionedPkg(pass.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass.Info, call)
			if !ok {
				return true
			}
			switch {
			case path == "time" && wallTimeFuncs[name]:
				pass.Reportf(call.Pos(), "time.%s reads the wall clock; use sim.Clock so runs stay seed-deterministic", name)
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
				pass.Reportf(call.Pos(), "global rand.%s draws from the process-wide source; use a seeded sim.RNG stream", name)
			}
			return true
		})
	}
}
