module autoindex

go 1.22
