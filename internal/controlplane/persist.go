package controlplane

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileStore wraps MemStore with a JSON journal on disk, giving the control
// plane the durable state the paper requires: a restarted control plane
// loads the journal and resumes every in-flight recommendation (§4's
// "persistent, highly-available data store", stood in by a local file).
type FileStore struct {
	*MemStore
	mu   sync.Mutex
	path string
}

// fileStoreImage is the serialised form.
type fileStoreImage struct {
	Records   []*Record        `json:"records"`
	Databases []*DatabaseState `json:"databases"`
	Incidents []Incident       `json:"incidents"`
}

// NewFileStore opens (or creates) a journal-backed store at path.
func NewFileStore(path string) (*FileStore, error) {
	fs := &FileStore{MemStore: NewMemStore(), path: path}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		return fs, nil
	case err != nil:
		return nil, fmt.Errorf("controlplane: reading journal: %w", err)
	}
	var img fileStoreImage
	if err := json.Unmarshal(data, &img); err != nil {
		return nil, fmt.Errorf("controlplane: corrupt journal %s: %w", path, err)
	}
	for _, r := range img.Records {
		fs.MemStore.SaveRecord(r)
	}
	for _, d := range img.Databases {
		fs.MemStore.SaveDatabase(d)
	}
	for _, i := range img.Incidents {
		fs.MemStore.SaveIncident(i)
	}
	return fs, nil
}

// flush writes the full image atomically (write temp + rename).
func (fs *FileStore) flush() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	img := fileStoreImage{
		Records:   fs.MemStore.Records(nil),
		Databases: fs.MemStore.Databases(),
		Incidents: fs.MemStore.Incidents(),
	}
	data, err := json.MarshalIndent(img, "", " ")
	if err != nil {
		return err
	}
	tmp := fs.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, fs.path)
}

// SaveRecord implements Store with write-through persistence.
func (fs *FileStore) SaveRecord(r *Record) error {
	if err := fs.MemStore.SaveRecord(r); err != nil {
		return err
	}
	return fs.flush()
}

// SaveDatabase implements Store with write-through persistence.
func (fs *FileStore) SaveDatabase(d *DatabaseState) error {
	if err := fs.MemStore.SaveDatabase(d); err != nil {
		return err
	}
	return fs.flush()
}

// SaveIncident implements Store with write-through persistence.
func (fs *FileStore) SaveIncident(i Incident) error {
	if err := fs.MemStore.SaveIncident(i); err != nil {
		return err
	}
	return fs.flush()
}

// Path returns the journal location.
func (fs *FileStore) Path() string { return filepath.Clean(fs.path) }

var _ Store = (*FileStore)(nil)
