// Package snap implements the compact binary codec tenant hibernation
// serializes through (see ARCHITECTURE.md "Fleet at scale"). It is a
// deliberately small format — varint integers, float bits, length-prefixed
// strings — with two properties the fleet depends on:
//
//   - Deterministic encoding: the same logical state always produces the
//     same bytes, so snapshot bytes can be compared directly in tests and
//     a rehydrate→hibernate round trip is byte-stable.
//
//   - Hostile-input-safe decoding: every read validates lengths against
//     the remaining input before allocating, and corruption surfaces as an
//     error — never a panic, never a silently wrong value. An FNV-64a
//     checksum over the body catches bit flips wholesale; the structural
//     reader catches truncation and length lies even when the checksum has
//     been recomputed (the fuzz harness exercises exactly that path).
//
// The codec is not self-describing: reader and writer must agree on field
// order, with a version byte in the envelope gating compatibility.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Magic identifies a snapshot envelope.
const Magic = "AXSN"

// Version is the current snapshot format version. Decoders reject other
// versions rather than guessing at field layouts.
const Version = 1

// ErrCorrupt is the sentinel wrapped by every decode failure; callers
// test with errors.Is.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// corruptf builds an ErrCorrupt-wrapped error with context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Writer accumulates an encoded body. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a signed varint (zig-zag).
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Float appends a float64 as its IEEE-754 bits (little endian), so the
// round trip is bit-exact including negative zero and NaN payloads.
func (w *Writer) Float(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Len returns the current body length in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Seal wraps the body in the snapshot envelope — magic, version, body
// length, FNV-64a body checksum, body — and returns the full snapshot.
func (w *Writer) Seal() []byte {
	h := fnv.New64a()
	h.Write(w.buf)
	out := make([]byte, 0, len(Magic)+1+2*binary.MaxVarintLen64+len(w.buf))
	out = append(out, Magic...)
	out = append(out, Version)
	out = binary.AppendUvarint(out, uint64(len(w.buf)))
	out = binary.LittleEndian.AppendUint64(out, h.Sum64())
	out = append(out, w.buf...)
	return out
}

// Reader decodes an encoded body. Every method returns an error wrapping
// ErrCorrupt on truncated or implausible input.
type Reader struct {
	buf []byte
	off int
}

// Open validates an envelope produced by Seal and returns a Reader over
// its body.
func Open(data []byte) (*Reader, error) {
	if len(data) < len(Magic)+1 {
		return nil, corruptf("short envelope (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, corruptf("bad magic")
	}
	if v := data[len(Magic)]; v != Version {
		return nil, corruptf("unsupported version %d", v)
	}
	rest := data[len(Magic)+1:]
	bodyLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, corruptf("bad body length")
	}
	rest = rest[n:]
	if len(rest) < 8 {
		return nil, corruptf("missing checksum")
	}
	sum := binary.LittleEndian.Uint64(rest[:8])
	body := rest[8:]
	if uint64(len(body)) != bodyLen {
		return nil, corruptf("body length %d does not match envelope %d", len(body), bodyLen)
	}
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, corruptf("checksum mismatch")
	}
	return &Reader{buf: body}, nil
}

// NewBodyReader returns a Reader over a bare body with no envelope —
// used by the fuzz harness to drive the structural decoder directly.
func NewBodyReader(body []byte) *Reader { return &Reader{buf: body} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns an error unless the body was consumed exactly.
func (r *Reader) Done() error {
	if r.off != len(r.buf) {
		return corruptf("%d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, corruptf("bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// Varint reads a signed varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, corruptf("bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// Int reads an int, rejecting values outside the platform int range.
func (r *Reader) Int() (int, error) {
	v, err := r.Varint()
	if err != nil {
		return 0, err
	}
	if int64(int(v)) != v {
		return 0, corruptf("int overflow %d", v)
	}
	return int(v), nil
}

// Len reads a non-negative count that must be representable in the
// remaining input at a minimum of one byte per element — the guard that
// keeps a lying length prefix from triggering a huge allocation.
func (r *Reader) Len() (int, error) {
	v, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.Remaining()) {
		return 0, corruptf("length %d exceeds %d remaining bytes", v, r.Remaining())
	}
	return int(v), nil
}

// Bool reads a boolean, rejecting bytes other than 0 and 1.
func (r *Reader) Bool() (bool, error) {
	if r.Remaining() < 1 {
		return false, corruptf("truncated bool")
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		return false, corruptf("bad bool byte %d", b)
	}
	return b == 1, nil
}

// Float reads a float64 from its IEEE-754 bits.
func (r *Reader) Float() (float64, error) {
	if r.Remaining() < 8 {
		return 0, corruptf("truncated float")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Len()
	if err != nil {
		return "", err
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s, nil
}

// Bytes reads a length-prefixed byte slice (copied out of the input).
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	b := make([]byte, n)
	copy(b, r.buf[r.off:r.off+n])
	r.off += n
	return b, nil
}
