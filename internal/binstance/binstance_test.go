package binstance

import (
	"fmt"
	"testing"

	"autoindex/internal/engine"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/workload"
)

func primary(t *testing.T) (*workload.Tenant, *sim.RNG) {
	t.Helper()
	clock := sim.NewClock()
	tn, err := workload.NewTenant(workload.Profile{
		Name: "prim", Tier: engine.TierStandard, Seed: 31,
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	return tn, sim.NewRNG(99)
}

func TestForkIsFaithfulSnapshot(t *testing.T) {
	tn, rng := primary(t)
	b := Fork(tn.DB, "b1", Config{}, rng)
	for _, table := range tn.DB.TableNames() {
		if b.DB.RowCount(table) != tn.DB.RowCount(table) {
			t.Fatalf("row count mismatch on %s", table)
		}
	}
	if len(b.DB.IndexDefs()) != len(tn.DB.IndexDefs()) {
		t.Fatal("index defs differ")
	}
	if b.Divergence() != 0 {
		t.Fatalf("fresh fork divergence %v", b.Divergence())
	}
	// Identical queries produce identical row counts.
	table := tn.DB.TableNames()[0]
	q := fmt.Sprintf(`SELECT COUNT(*) FROM %s`, table)
	rp, err := tn.DB.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.DB.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Rows[0][0].I != rb.Rows[0][0].I {
		t.Fatal("clone answers differently")
	}
}

func TestIndependence(t *testing.T) {
	tn, rng := primary(t)
	b := Fork(tn.DB, "b2", Config{}, rng)
	table := tn.DB.TableNames()[0]
	def := schema.IndexDef{Name: "b_only", Table: table, KeyColumns: []string{"c0"}}
	ti, _ := b.DB.Table(table)
	def.KeyColumns = []string{ti.Def.Columns[1].Name}
	if err := b.DB.CreateIndex(def, engine.IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tn.DB.IndexDef("b_only"); ok {
		t.Fatal("B-instance index leaked to the primary")
	}
	// Writes to the B-instance never reach the primary.
	before := tn.DB.RowCount(table)
	b.Offer(fmt.Sprintf(`DELETE FROM %s WHERE id = 0`, table))
	b.Flush()
	if tn.DB.RowCount(table) != before {
		t.Fatal("B-instance write affected the primary")
	}
}

func TestBestEffortReplayDropsAndDiverges(t *testing.T) {
	tn, rng := primary(t)
	b := Fork(tn.DB, "b3", Config{DropProbability: 0.5}, rng)
	table := tn.DB.TableNames()[0]
	next := tn.DB.RowCount(table) + 1000000
	for i := int64(0); i < 200; i++ {
		sql := fmt.Sprintf(`DELETE FROM %s WHERE id = %d`, table, i)
		tn.DB.Exec(sql) //nolint:errcheck
		b.Offer(sql)
		_ = next
	}
	b.Flush()
	replayed, dropped := b.Stats()
	if dropped == 0 {
		t.Fatal("expected drops at 50% probability")
	}
	if replayed == 0 {
		t.Fatal("expected some replays")
	}
	if b.Divergence() == 0 {
		t.Fatal("dropped deletes must cause divergence")
	}
}

func TestFailureIsolatesPrimary(t *testing.T) {
	tn, rng := primary(t)
	b := Fork(tn.DB, "b4", Config{FailProbability: 1}, rng)
	table := tn.DB.TableNames()[0]
	b.Offer(fmt.Sprintf(`SELECT COUNT(*) FROM %s`, table))
	if !b.Failed() {
		t.Fatal("B-instance should have failed")
	}
	// The primary continues normally.
	if _, err := tn.DB.Exec(fmt.Sprintf(`SELECT COUNT(*) FROM %s`, table)); err != nil {
		t.Fatalf("primary affected by B failure: %v", err)
	}
	// Further offers are ignored without error.
	b.Offer(`SELECT 1 FROM x`)
}

func TestReorderingStillExecutes(t *testing.T) {
	tn, rng := primary(t)
	b := Fork(tn.DB, "b5", Config{ReorderProbability: 0.9}, rng)
	table := tn.DB.TableNames()[0]
	for i := 0; i < 100; i++ {
		b.Offer(fmt.Sprintf(`SELECT COUNT(*) FROM %s`, table))
	}
	b.Flush()
	replayed, _ := b.Stats()
	if replayed != 100 {
		t.Fatalf("replayed %d of 100 reordered statements", replayed)
	}
}
