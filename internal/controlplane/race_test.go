package controlplane

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/telemetry"
	"autoindex/internal/workload"
)

// TestConcurrentInjection drives every micro-service loop (via Step) while
// two goroutines concurrently inject recommendations through the public
// surfaces — the store's SaveRecord and the portal-style Apply — plus a
// third re-registering databases with Manage and polling OpStats, History
// and ListRecommendations. The fleet harness serializes Step at hour
// barriers, but the control plane's own locking must not depend on that:
// run this under `go test -race` (the Makefile `race` target does).
func TestConcurrentInjection(t *testing.T) {
	clock := sim.NewClock()
	tn, err := workload.NewTenant(workload.Profile{Name: "racedb", Tier: 1, Seed: 99, UserIndexes: true}, clock)
	if err != nil {
		t.Fatal(err)
	}
	tn2, err := workload.NewTenant(workload.Profile{Name: "racedb2", Tier: 0, Seed: 100}, sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	cp := New(DefaultConfig(), clock, store, telemetry.NewHub(1024))
	cp.Manage(tn.DB, "server-0", Settings{AutoCreate: true, AutoDrop: true})
	tn.Run(0, 200) // give the analysis service a workload to chew on

	// Tenant schemas are generated, so pick a real table and column for the
	// injected recommendations.
	names := tn.DB.TableNames()
	if len(names) == 0 {
		t.Fatal("tenant has no tables")
	}
	ti, ok := tn.DB.Table(names[0])
	if !ok || len(ti.Def.Columns) == 0 {
		t.Fatalf("table %s missing", names[0])
	}
	injectTable, injectCol := names[0], ti.Def.Columns[len(ti.Def.Columns)-1].Name

	const injected = 60
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer 1: file Active records straight into the store, the way a
	// regional peer or a recovery replay would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < injected; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec := &Record{
				Recommendation: core.Recommendation{
					ID:       fmt.Sprintf("inject-a-%04d", i),
					Database: "racedb",
					Action:   core.ActionCreateIndex,
					Index: schema.IndexDef{
						Name:        fmt.Sprintf("auto_ix_inject_a_%04d", i),
						Table:       injectTable,
						KeyColumns:  []string{injectCol},
						AutoCreated: true,
					},
					Source:    core.SourceMI,
					CreatedAt: clock.Now(),
				},
				State:     StateActive,
				UpdatedAt: clock.Now(),
			}
			if err := store.SaveRecord(rec); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Writer 2: user-style Apply on whatever recommendations are visible,
	// racing the implementation service for the same records.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range cp.ListRecommendations("racedb") {
				_ = cp.Apply(r.ID) // losing the race to Step is fine; data races are not
			}
			_ = cp.OpStats()
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Writer 3: churn fleet membership and settings while services iterate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cp.Manage(tn2.DB, "server-1", Settings{AutoCreate: i%2 == 0})
			_ = cp.SetSettings("racedb2", Settings{AutoCreate: i%2 == 1})
			_ = cp.History("racedb2")
			time.Sleep(time.Millisecond)
		}
	}()

	for i := 0; i < 20; i++ {
		clock.Advance(30 * time.Minute)
		cp.Step()
	}
	close(stop)
	wg.Wait()

	// Sanity: the state machine stayed legal despite the contention.
	for _, r := range store.Records(func(*Record) bool { return true }) {
		switch r.State {
		case StateActive, StateExpired, StateImplementing, StateValidating,
			StateSuccess, StateReverting, StateReverted, StateRetry, StateError:
		default:
			t.Errorf("record %s in unknown state %q", r.ID, r.State)
		}
	}
}
