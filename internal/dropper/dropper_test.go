package dropper

import (
	"fmt"
	"testing"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
)

func buildDB(t *testing.T) (*engine.Database, *sim.VirtualClock) {
	t.Helper()
	clock := sim.NewClock()
	db := engine.New(engine.DefaultConfig("droptest", engine.TierStandard, 9), clock)
	if _, err := db.Exec(`CREATE TABLE logs (id BIGINT NOT NULL, kind BIGINT, size BIGINT, note VARCHAR, PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := db.Exec(fmt.Sprintf(
			`INSERT INTO logs (id, kind, size, note) VALUES (%d, %d, %d, 'n%d')`, i, i%20, i%100, i)); err != nil {
			t.Fatal(err)
		}
	}
	db.RebuildAllStats()
	return db, clock
}

func addIndex(t *testing.T, db *engine.Database, def schema.IndexDef) {
	t.Helper()
	if err := db.CreateIndex(def, engine.IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}
}

// churnWrites generates index maintenance without reads.
func churnWrites(t *testing.T, db *engine.Database, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := db.Exec(fmt.Sprintf(`UPDATE logs SET size = %d WHERE id = %d`, i, i%1000)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnusedMaintainedIndexIsCandidate(t *testing.T) {
	db, clock := buildDB(t)
	since := clock.Now()
	addIndex(t, db, schema.IndexDef{Name: "ix_unused", Table: "logs", KeyColumns: []string{"size"}})
	churnWrites(t, db, 100)
	clock.Advance(72 * time.Hour)
	cands := Analyze(db, since, DefaultConfig())
	if len(cands) != 1 || cands[0].Def.Name != "ix_unused" || cands[0].Reason != ReasonUnused {
		t.Fatalf("candidates: %+v", cands)
	}
}

func TestReadIndexesProtected(t *testing.T) {
	db, clock := buildDB(t)
	since := clock.Now()
	addIndex(t, db, schema.IndexDef{Name: "ix_used", Table: "logs", KeyColumns: []string{"kind"}})
	churnWrites(t, db, 100)
	// Regular reads keep it alive.
	for d := 0; d < 4; d++ {
		for i := 0; i < 5; i++ {
			if _, err := db.Exec(fmt.Sprintf(`SELECT id FROM logs WHERE kind = %d`, i)); err != nil {
				t.Fatal(err)
			}
		}
		clock.Advance(24 * time.Hour)
	}
	for _, c := range Analyze(db, since, DefaultConfig()) {
		if c.Def.Name == "ix_used" {
			t.Fatalf("read index proposed for drop: %+v", c)
		}
	}
}

func TestMinAgeGuard(t *testing.T) {
	db, clock := buildDB(t)
	since := clock.Now()
	addIndex(t, db, schema.IndexDef{Name: "ix_new", Table: "logs", KeyColumns: []string{"size"}})
	churnWrites(t, db, 100)
	clock.Advance(time.Hour) // far below MinAge
	if cands := Analyze(db, since, DefaultConfig()); len(cands) != 0 {
		t.Fatalf("too-young observation window must yield nothing: %+v", cands)
	}
}

func TestDuplicateIndexesDetected(t *testing.T) {
	db, clock := buildDB(t)
	since := clock.Now()
	addIndex(t, db, schema.IndexDef{Name: "ix_a", Table: "logs", KeyColumns: []string{"kind"}, IncludedColumns: []string{"size"}})
	addIndex(t, db, schema.IndexDef{Name: "ix_a_dup", Table: "logs", KeyColumns: []string{"kind"}, AutoCreated: true})
	// Keep both "alive" with reads so the unused rule does not fire.
	for i := 0; i < 10; i++ {
		db.Exec(fmt.Sprintf(`SELECT id FROM logs WHERE kind = %d`, i)) //nolint:errcheck
	}
	clock.Advance(72 * time.Hour)
	cands := Analyze(db, since, DefaultConfig())
	var dup *DropCandidate
	for i := range cands {
		if cands[i].Reason == ReasonDuplicate {
			dup = &cands[i]
		}
	}
	if dup == nil {
		t.Fatalf("duplicate not detected: %+v", cands)
	}
	// The auto-created, include-less copy should be the drop; the wider
	// user index survives.
	if dup.Def.Name != "ix_a_dup" || dup.DuplicateOf != "ix_a" {
		t.Fatalf("wrong duplicate choice: %+v", dup)
	}
}

func TestHintedAndConstraintIndexesExcluded(t *testing.T) {
	db, clock := buildDB(t)
	since := clock.Now()
	addIndex(t, db, schema.IndexDef{Name: "ix_hinted", Table: "logs", KeyColumns: []string{"size"}})
	if err := db.MarkIndexHinted("ix_hinted"); err != nil {
		t.Fatal(err)
	}
	addIndex(t, db, schema.IndexDef{Name: "ix_constraint", Table: "logs", KeyColumns: []string{"note"}, EnforcesConstraint: true})
	churnWrites(t, db, 100)
	clock.Advance(72 * time.Hour)
	for _, c := range Analyze(db, since, DefaultConfig()) {
		if c.Def.Name == "ix_hinted" || c.Def.Name == "ix_constraint" {
			t.Fatalf("protected index proposed for drop: %+v", c)
		}
	}
	// Hinted duplicates also survive duplicate analysis.
	addIndex(t, db, schema.IndexDef{Name: "ix_hinted_dup", Table: "logs", KeyColumns: []string{"size"}})
	clock.Advance(24 * time.Hour)
	for _, c := range Analyze(db, since, DefaultConfig()) {
		if c.Def.Name == "ix_hinted" {
			t.Fatalf("hinted index dropped as duplicate: %+v", c)
		}
	}
}
