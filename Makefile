# Standard targets for the autoindex reproduction. Everything is plain
# `go` underneath; the Makefile just fixes the flag sets so CI and
# humans run the same thing.

GO ?= go

.PHONY: all build test race vet bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector: the
# sharded fleet harness, the telemetry hub, and the control plane's
# micro-service loops vs. concurrent injectors. Part of tier-1 verify.
race:
	$(GO) test -race -count=1 ./internal/fleet ./internal/telemetry ./internal/controlplane

vet:
	$(GO) vet ./...

# Paper tables/figures as benchmarks; BenchmarkFleetParallel also
# rewrites BENCH_fleet.json with per-worker-count timings.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

clean:
	$(GO) clean ./...
