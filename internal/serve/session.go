package serve

import (
	"crypto/rand"
	"errors"
	"fmt"
	"strings"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/sqlparser"
	"autoindex/internal/value"
	"autoindex/internal/wire"
)

// session is one authenticated client connection bound to one tenant
// database. Statement errors are reported as ERR packets and keep the
// session alive; protocol or I/O errors tear it down.
type session struct {
	srv  *Server
	conn *wire.Conn
	id   uint32

	db     *engine.Database
	dbName string
	bucket *tokenBucket

	stmts    map[uint32]*preparedStmt
	nextStmt uint32
	// pending counts captured statements since the last capture batch.
	pending int
}

type preparedStmt struct {
	text       string
	paramCount int
	types      []byte // parameter types remembered across executions
}

// errClientGone marks I/O or protocol failures that end the session.
var errClientGone = errors.New("serve: session ended")

func (s *session) run() {
	defer s.conn.Close()
	defer s.flushPending()
	if err := s.handshake(); err != nil {
		return
	}
	for {
		select {
		case <-s.srv.done:
			_ = s.writeErr(wire.CodeServerShutdown, "server shutting down")
			return
		default:
		}
		s.conn.ResetSeq()
		_ = s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.ReadTimeout))
		p, err := s.conn.ReadPacket()
		if errors.Is(err, wire.ErrPacketTooLarge) {
			if s.writeErr(wire.CodePacketTooLarge, "packet bigger than max_allowed_packet") != nil {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		if len(p) == 0 {
			_ = s.writeErr(wire.CodeMalformedPacket, "empty command packet")
			return
		}
		if s.dispatch(p) != nil {
			return
		}
	}
}

// dispatch routes one command packet; a non-nil return ends the session.
func (s *session) dispatch(p []byte) error {
	switch p[0] {
	case wire.ComQuit:
		return errClientGone
	case wire.ComPing:
		return s.writeOK(wire.OK{})
	case wire.ComInitDB:
		return s.initDB(string(p[1:]))
	case wire.ComQuery:
		return s.execQuery(string(p[1:]), false)
	case wire.ComStmtPrepare:
		return s.stmtPrepare(string(p[1:]))
	case wire.ComStmtExecute:
		return s.stmtExecute(p)
	case wire.ComStmtClose:
		// No response, per protocol.
		r := wire.NewPayloadReader(p[1:])
		delete(s.stmts, r.ReadUint32())
		return nil
	default:
		return s.writeErr(wire.CodeUnknownCommand, fmt.Sprintf("unknown command 0x%02x", p[0]))
	}
}

// handshake runs the greeting/auth exchange and selects the database.
func (s *session) handshake() error {
	seed := make([]byte, 20)
	if _, err := rand.Read(seed); err != nil {
		return err
	}
	hs := wire.Handshake{
		ServerVersion: s.srv.cfg.ServerVersion,
		ConnID:        s.id,
		Seed:          seed,
		Capabilities:  wire.ServerCaps(),
	}
	_ = s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.ReadTimeout))
	if err := s.conn.WritePacket(wire.EncodeHandshake(hs)); err != nil {
		return err
	}
	p, err := s.conn.ReadPacket()
	if err != nil {
		return err
	}
	resp, err := wire.ParseHandshakeResponse(p)
	if err != nil {
		_ = s.writeErr(wire.CodeMalformedPacket, err.Error())
		return err
	}
	if !wire.CheckNative(s.srv.cfg.Password, seed, resp.AuthResponse) {
		_ = s.writeErr(wire.CodeAccessDenied, fmt.Sprintf("access denied for user %q", resp.User))
		return errClientGone
	}
	if resp.Database != "" {
		if !s.selectDB(resp.Database) {
			_ = s.writeErr(wire.CodeUnknownDB, fmt.Sprintf("unknown database %q", resp.Database))
			return errClientGone
		}
	}
	return s.writeOK(wire.OK{})
}

func (s *session) selectDB(name string) bool {
	db, ok := s.srv.cfg.Lookup(name)
	if !ok {
		return false
	}
	s.db = db
	s.dbName = name
	s.bucket = s.srv.bucketFor(name)
	return true
}

func (s *session) initDB(name string) error {
	if !s.selectDB(name) {
		return s.writeErr(wire.CodeUnknownDB, fmt.Sprintf("unknown database %q", name))
	}
	return s.writeOK(wire.OK{})
}

// execute runs one statement through the engine with admission
// backpressure and live capture, returning the engine result or having
// already written an ERR packet (res == nil, err == session fate).
func (s *session) execute(sql string) (*engine.Result, error) {
	if s.db == nil {
		return nil, s.writeErr(wire.CodeNoDatabase, "no database selected")
	}
	if wait := s.bucket.reserve(time.Now()); wait > 0 {
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-s.srv.done:
			t.Stop()
			return nil, s.writeErr(wire.CodeServerShutdown, "server shutting down")
		}
		s.srv.cfg.Metrics.Histogram(DescBackpressureWaitMillis).Observe(wait.Milliseconds())
	}
	res, err := s.db.ExecWith(sql, engine.ExecOptions{LiveCapture: true})
	if err != nil {
		return nil, s.writeErr(errToCode(err), err.Error())
	}
	s.srv.cfg.Metrics.Counter(DescStatements).Inc()
	if res.Plan != nil {
		s.srv.capture.note(res.Plan.QueryHash)
		s.pending++
		if s.pending >= s.srv.cfg.CaptureBatch {
			s.flushPending()
		}
	}
	return res, nil
}

func (s *session) flushPending() {
	if s.pending == 0 {
		return
	}
	s.pending = 0
	s.srv.capture.batch()
	s.srv.cfg.Metrics.Counter(DescCaptureBatches).Inc()
}

// execQuery runs a statement and writes its resultset (textual for
// COM_QUERY, binary for COM_STMT_EXECUTE).
func (s *session) execQuery(sql string, binary bool) error {
	res, err := s.execute(sql)
	if res == nil {
		return err
	}
	if res.Columns == nil {
		return s.writeOK(wire.OK{AffectedRows: uint64(res.RowsAffected)})
	}
	return s.writeResultset(res, binary)
}

// writeResultset encodes column definitions and rows, EOF-delimited.
func (s *session) writeResultset(res *engine.Result, binary bool) error {
	cols := s.columnDefs(res)
	if err := s.conn.WritePacket(wire.AppendLenencInt(nil, uint64(len(cols)))); err != nil {
		return err
	}
	for _, c := range cols {
		if err := s.conn.WritePacket(wire.EncodeColumn(c)); err != nil {
			return err
		}
	}
	if err := s.conn.WritePacket(wire.EncodeEOF()); err != nil {
		return err
	}
	for _, row := range res.Rows {
		var p []byte
		if binary {
			p = wire.EncodeBinaryRow(cols, row)
		} else {
			p = wire.EncodeTextRow(row)
		}
		if err := s.conn.WritePacket(p); err != nil {
			return err
		}
	}
	return s.conn.WritePacket(wire.EncodeEOF())
}

// columnDefs derives wire column types from the result's values: a
// column is LONGLONG if every non-NULL cell is integer-kinded, DOUBLE
// if numeric with at least one float, VAR_STRING otherwise. Scanning
// all rows (not just the first) keeps the binary encoding sound.
func (s *session) columnDefs(res *engine.Result) []wire.Column {
	cols := make([]wire.Column, len(res.Columns))
	for i, name := range res.Columns {
		typ := byte(0)
		for _, row := range res.Rows {
			if i >= len(row) || row[i].IsNull() {
				continue
			}
			t := wire.TypeForKind(row[i].K)
			switch {
			case typ == 0:
				typ = t
			case typ == t:
			case (typ == wire.TypeLonglong && t == wire.TypeDouble) ||
				(typ == wire.TypeDouble && t == wire.TypeLonglong):
				typ = wire.TypeDouble
			default:
				typ = wire.TypeVarString
			}
		}
		if typ == 0 {
			typ = wire.TypeVarString
		}
		cols[i] = wire.Column{Schema: s.dbName, Name: name, Type: typ}
	}
	return cols
}

// stmtPrepare registers a `?`-placeholder statement. The engine has no
// placeholder support, so the text is validated by substituting a
// neutral literal and parsing; real arguments are substituted as SQL
// literals at execute time.
func (s *session) stmtPrepare(sql string) error {
	if s.db == nil {
		return s.writeErr(wire.CodeNoDatabase, "no database selected")
	}
	n := countPlaceholders(sql)
	probe, err := substitutePlaceholders(sql, probeArgs(n))
	if err == nil {
		_, err = sqlparser.Parse(probe)
	}
	if err != nil {
		return s.writeErr(wire.CodeParse, err.Error())
	}
	s.nextStmt++
	id := s.nextStmt
	s.stmts[id] = &preparedStmt{text: sql, paramCount: n}
	resp := []byte{0x00}
	resp = wire.AppendUint32(resp, id)
	resp = wire.AppendUint16(resp, 0)         // column count (unknown until execute)
	resp = wire.AppendUint16(resp, uint16(n)) // param count
	resp = append(resp, 0)                    // filler
	resp = wire.AppendUint16(resp, 0)         // warnings
	if err := s.conn.WritePacket(resp); err != nil {
		return err
	}
	if n > 0 {
		for i := 0; i < n; i++ {
			def := wire.Column{Schema: s.dbName, Name: "?", Type: wire.TypeVarString}
			if err := s.conn.WritePacket(wire.EncodeColumn(def)); err != nil {
				return err
			}
		}
		if err := s.conn.WritePacket(wire.EncodeEOF()); err != nil {
			return err
		}
	}
	return nil
}

func (s *session) stmtExecute(p []byte) error {
	r := wire.NewPayloadReader(p[1:])
	id := r.ReadUint32()
	r.Skip(5) // flags + iteration count
	st := s.stmts[id]
	if st == nil {
		return s.writeErr(wire.CodeUnknownStmt, fmt.Sprintf("unknown prepared statement %d", id))
	}
	args, types, err := wire.ParseStmtExecuteParams(r.Rest(), st.paramCount, st.types)
	if err != nil {
		return s.writeErr(wire.CodeMalformedPacket, err.Error())
	}
	st.types = types
	sql, err := substitutePlaceholders(st.text, args)
	if err != nil {
		return s.writeErr(wire.CodeMalformedPacket, err.Error())
	}
	return s.execQuery(sql, true)
}

// nudge interrupts a blocked command read so drain completes promptly.
func (s *session) nudge() { _ = s.conn.SetReadDeadline(time.Now()) }

func (s *session) writeOK(ok wire.OK) error {
	return s.conn.WritePacket(wire.EncodeOK(ok))
}

func (s *session) writeErr(code uint16, msg string) error {
	return s.conn.WritePacket(wire.EncodeErr(code, msg))
}

// errToCode maps engine sentinel errors to wire error codes.
func errToCode(err error) uint16 {
	switch {
	case errors.Is(err, engine.ErrIndexExists):
		return wire.CodeDupIndex
	case errors.Is(err, engine.ErrIndexNotFound):
		return wire.CodeIndexNotFound
	case errors.Is(err, engine.ErrTableNotFound):
		return wire.CodeTableNotFound
	case errors.Is(err, engine.ErrColumnInUse):
		return wire.CodeColumnInUse
	case errors.Is(err, engine.ErrLockTimeout):
		return wire.CodeLockWait
	case errors.Is(err, engine.ErrLogFull):
		return wire.CodeDiskFull
	case errors.Is(err, engine.ErrBuildAborted):
		return wire.CodeQueryInterrupted
	//lint:ignore errcompare sqlparser has no sentinel; its errors are identified by the package prefix
	case strings.HasPrefix(err.Error(), "sqlparser:"):
		return wire.CodeParse
	//lint:ignore errcompare unknown-table errors have no sentinel across the engine/optimizer layers
	case strings.Contains(err.Error(), "unknown table"):
		return wire.CodeTableNotFound
	default:
		return wire.CodeUnknownError
	}
}

// countPlaceholders counts `?` outside single-quoted literals.
func countPlaceholders(sql string) int {
	n := 0
	inQuote := false
	for i := 0; i < len(sql); i++ {
		switch {
		case sql[i] == '\'':
			inQuote = !inQuote
		case sql[i] == '?' && !inQuote:
			n++
		}
	}
	return n
}

// probeArgs builds neutral literals for prepare-time validation.
func probeArgs(n int) []value.Value {
	out := make([]value.Value, n)
	for i := range out {
		out[i] = value.NewInt(0)
	}
	return out
}

// substitutePlaceholders replaces each `?` outside quotes with the
// corresponding argument rendered as a SQL literal.
func substitutePlaceholders(sql string, args []value.Value) (string, error) {
	var b strings.Builder
	b.Grow(len(sql) + 16*len(args))
	next := 0
	inQuote := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		switch {
		case c == '\'':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == '?' && !inQuote:
			if next >= len(args) {
				return "", fmt.Errorf("serve: statement has more placeholders than arguments")
			}
			b.WriteString(args[next].String())
			next++
		default:
			b.WriteByte(c)
		}
	}
	if next != len(args) {
		return "", fmt.Errorf("serve: statement wants %d arguments, got %d", next, len(args))
	}
	return b.String(), nil
}
