// Metricsdiscipline fixtures: runtime descriptor registration and a
// tracer built on the wall clock. This file deliberately never imports
// "time" so the wallclock analyzer stays silent and every diagnostic
// line carries exactly one want.
package fixture

import (
	"autoindex/internal/metrics"
	"autoindex/internal/sim"
	"autoindex/internal/trace"
)

// Package-level registration is the sanctioned form: the catalog is
// complete before any simulation starts.
var descGood = metrics.NewCounterDesc("fixture.good", "registered at package level")

var descFromInit *metrics.Desc

// init-time registration is equally fine — it still runs before main.
func init() {
	descFromInit = metrics.NewCounterDesc("fixture.from_init", "registered from init")
}

func runtimeCounter() *metrics.Desc {
	return metrics.NewCounterDesc("fixture.runtime", "materialized mid-run") // want "metricsdiscipline: metrics.NewCounterDesc called at runtime"
}

func runtimeHistogram(reg *metrics.Registry) {
	d := metrics.NewHistogramDesc("fixture.runtime_ms", "materialized mid-run", 1, 10) // want "metricsdiscipline: metrics.NewHistogramDesc called at runtime"
	reg.Histogram(d).Observe(1)
}

// goodObserve exercises the sanctioned observation path: a
// package-level descriptor and a value that never touched the wall
// clock.
func goodObserve(reg *metrics.Registry, virtualMillis int64) {
	reg.Counter(descGood).Inc()
	reg.Counter(descFromInit).Add(virtualMillis)
}

// Per-reason descriptor families, the plan-cost cache's idiom
// (internal/costcache: hits / misses / one invalidation counter per
// reason): every descriptor is registered up front, and a helper only
// SELECTS among them at runtime. The catalog is complete before any
// simulation starts, so the analyzer stays silent.
var (
	descCacheHits            = metrics.NewCounterDesc("fixture.cache_hits", "plan-cost cache hits")
	descCacheInvalidateStats = metrics.NewCounterDesc("fixture.cache_inval_stats", "invalidations: stats refresh")
	descCacheInvalidateData  = metrics.NewCounterDesc("fixture.cache_inval_data", "invalidations: data change")
)

// selectInvalidationDesc picks a pre-registered descriptor at runtime —
// sanctioned, unlike constructing one.
func selectInvalidationDesc(statsRefresh bool) *metrics.Desc {
	if statsRefresh {
		return descCacheInvalidateStats
	}
	return descCacheInvalidateData
}

func countInvalidation(reg *metrics.Registry, statsRefresh bool) {
	reg.Counter(descCacheHits).Inc()
	reg.Counter(selectInvalidationDesc(statsRefresh)).Inc()
}

// A reason-keyed family must still not materialize its descriptors
// lazily: the first invalidation of each kind would mutate the catalog
// mid-run.
func lazyInvalidationDesc(reason string) *metrics.Desc {
	return metrics.NewCounterDesc("fixture.cache_inval_"+reason, "materialized on first use") // want "metricsdiscipline: metrics.NewCounterDesc called at runtime"
}

func wallClockTracer(reg *metrics.Registry) *trace.Tracer {
	return trace.New(nil, sim.WallClock{}, reg) // want "metricsdiscipline: trace.New given sim.WallClock"
}

// virtualTracer is the sanctioned form: spans timed on the seeded
// virtual clock.
func virtualTracer(reg *metrics.Registry) *trace.Tracer {
	return trace.New(nil, sim.NewClock(), reg)
}
