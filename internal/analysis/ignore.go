package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Ignore is one parsed //lint:ignore directive.
type Ignore struct {
	Pos    token.Position
	Checks []string // check names, or "all"
	Reason string
}

// ignorePrefix is the directive marker. Directives must be line
// comments; the reason after the check list is mandatory.
const ignorePrefix = "//lint:ignore"

// collectIgnores parses every //lint:ignore directive in files. A
// directive with a missing check list or reason is returned as a
// "directive" diagnostic instead, so typos fail the lint run rather
// than silently suppressing nothing.
func collectIgnores(fset *token.FileSet, files []*ast.File) ([]Ignore, []Diagnostic) {
	var igs []Ignore
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignored — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     fset.Position(c.Pos()),
						Check:   "directive",
						Message: "malformed //lint:ignore: need a check name and a reason",
					})
					continue
				}
				igs = append(igs, Ignore{
					Pos:    fset.Position(c.Pos()),
					Checks: strings.Split(fields[0], ","),
					Reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return igs, bad
}

// covers reports whether the directive suppresses check at (file, line).
// A directive applies to its own line (trailing comment) and to the
// line directly below it (standalone comment above the flagged code).
func (ig Ignore) covers(check, file string, line int) bool {
	if ig.Pos.Filename != file || (ig.Pos.Line != line && ig.Pos.Line != line-1) {
		return false
	}
	for _, c := range ig.Checks {
		if c == check || c == "all" {
			return true
		}
	}
	return false
}

// filterIgnored drops diagnostics covered by a directive. "directive"
// diagnostics are never produced here, so nothing special-cases them.
func filterIgnored(diags []Diagnostic, igs []Ignore) []Diagnostic {
	if len(igs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ig := range igs {
			if ig.covers(d.Check, d.Pos.Filename, d.Pos.Line) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// Inventory returns every well-formed //lint:ignore directive in the
// units, in (file, line) order, for cmd/lint -ignores.
func Inventory(units []*Unit) []Ignore {
	var all []Ignore
	seen := make(map[string]bool)
	for _, u := range units {
		igs, _ := collectIgnores(u.Fset, u.Files)
		for _, ig := range igs {
			key := ig.Pos.String()
			if seen[key] {
				continue // canonical files appear in test units too
			}
			seen[key] = true
			all = append(all, ig)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		return all[i].Pos.Line < all[j].Pos.Line
	})
	return all
}
