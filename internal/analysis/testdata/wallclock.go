// Wallclock fixtures: wall-clock and global-RNG calls outside
// internal/sim.
package fixture

import (
	"math/rand"
	"time"
)

func wallTime() time.Time {
	return time.Now() // want "wallclock: time.Now reads the wall clock"
}

func elapsedSince(start time.Time) time.Duration {
	return time.Since(start) // want "wallclock: time.Since reads the wall clock"
}

func realSleep() {
	time.Sleep(time.Millisecond) // want "wallclock: time.Sleep reads the wall clock"
}

func globalDraw() int {
	return rand.Intn(10) // want "wallclock: global rand.Intn draws from the process-wide source"
}

// seededDraw constructs a local, seeded generator — deterministic and
// allowed.
func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// pureTime constructs a fixed instant without reading the clock.
func pureTime() time.Time {
	return time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
}
