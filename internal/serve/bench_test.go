package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"autoindex/internal/wire"
)

// benchServeOnce pushes stmts statements through the server over conns
// concurrent connections, every fourth one via the prepared (binary)
// protocol path.
func benchServeOnce(b *testing.B, addr string, conns, stmts int) {
	b.Helper()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := wire.Dial(addr, "bench", testPassword, "db000")
			if err != nil {
				b.Error(err)
				return
			}
			defer cl.Close()
			st, err := cl.Prepare("SELECT id, amount FROM orders WHERE customer_id = ?")
			if err != nil {
				b.Error(err)
				return
			}
			for i := c; i < stmts; i += conns {
				if i%4 == 0 {
					if _, err := st.Execute(int64(i % 5)); err != nil {
						b.Error(err)
						return
					}
				} else {
					if _, err := cl.Query(fmt.Sprintf("SELECT status FROM orders WHERE id = %d", i%20)); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// BenchmarkServeThroughput measures the full serving path — wire
// protocol, admission, engine execution with live capture — at several
// connection counts and records the numbers in BENCH_serve.json at the
// repo root (the bench-gate ratchet compares the fastest count).
func BenchmarkServeThroughput(b *testing.B) {
	type timing struct {
		Workers   int     `json:"workers"`
		NsPerOp   int64   `json:"ns_per_op"`
		SecPerOp  float64 `json:"sec_per_op"`
		SpeedupX1 float64 `json:"speedup_vs_workers_1"`
	}
	db := newTestDB(b)
	_, addr, _ := startServer(b, Config{Lookup: lookupOne(db)})

	const stmts = 400
	connSet := []int{1, 4, 8}
	latest := make(map[int]timing)
	for _, conns := range connSet {
		conns := conns
		b.Run(fmt.Sprintf("conns=%d", conns), func(sb *testing.B) {
			start := time.Now()
			for i := 0; i < sb.N; i++ {
				benchServeOnce(sb, addr, conns, stmts)
			}
			per := time.Since(start).Nanoseconds() / int64(sb.N)
			latest[conns] = timing{Workers: conns, NsPerOp: per, SecPerOp: float64(per) / 1e9}
		})
	}
	if len(latest) == 0 {
		return
	}
	timings := make([]timing, 0, len(latest))
	for _, c := range connSet {
		if t, ok := latest[c]; ok {
			timings = append(timings, t)
		}
	}
	base := timings[0].SecPerOp
	for i := range timings {
		if timings[i].SecPerOp > 0 {
			timings[i].SpeedupX1 = base / timings[i].SecPerOp
		}
	}
	report := map[string]any{
		"benchmark":  "BenchmarkServeThroughput",
		"workload":   "400 statements over the SQL wire protocol (25% prepared/binary) against a 20-row orders database",
		"num_cpu":    runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"note":       "full serving path: framing, auth, admission, engine execution, live Query Store capture",
		"timings":    timings,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("could not write BENCH_serve.json: %v", err)
	}
}
