package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrderAnalyzer flags `for range` over a map whose body leaks the
// (randomized) iteration order into observable state — the exact bug
// class PR 2 fixed five times by hand. A loop body leaks order when it
//
//   - appends to a slice that is not passed to a sort call later in
//     the same function (the collect-keys-then-sort idiom is the
//     canonical fix and stays silent),
//   - accumulates into a floating-point variable declared outside the
//     loop (float addition is not associative, so even "commutative"
//     sums differ run to run), or
//   - emits output directly (fmt print family or Write* methods).
//
// Integer/bool accumulation, map writes, and deletes are order-
// insensitive and never flagged.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration with an order-sensitive body (append/float-accumulate/output) without sorting",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // analyzed via its own funcBodies visit
				}
				rs, ok := n.(*ast.RangeStmt)
				if !ok || underMap(pass.TypeOf(rs.X)) == nil {
					return true
				}
				checkMapRange(pass, body, rs)
				return true
			})
		})
	}
}

func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	var appendTargets []string
	var floatAccum, output []string

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if t, ok := appendTarget(pass, s, rs); ok {
				appendTargets = append(appendTargets, t)
				return true
			}
			if t, ok := floatAccumTarget(pass, s, rs); ok {
				floatAccum = append(floatAccum, t)
			}
		case *ast.CallExpr:
			if t, ok := outputCall(pass, s); ok {
				output = append(output, t)
			}
		}
		return true
	})

	var leaks []string
	for _, t := range appendTargets {
		if !sortedAfter(pass, funcBody, rs, t) {
			leaks = append(leaks, "append to "+t)
		}
	}
	for _, t := range floatAccum {
		leaks = append(leaks, "float accumulation into "+t)
	}
	for _, t := range output {
		leaks = append(leaks, "output via "+t)
	}
	if len(leaks) == 0 {
		return
	}
	leaks = dedupe(leaks)
	pass.Reportf(rs.For, "map iteration order leaks into %s; sort the keys first (or //lint:ignore maporder <reason>)",
		strings.Join(leaks, ", "))
}

// appendTarget matches `x = append(x, ...)` (any LHS arity one) and
// returns the rendered target. Targets rooted at a variable declared
// inside the range statement (the key/value vars or a body-local) are
// per-iteration state and cannot leak iteration order across
// iterations, so they are skipped.
func appendTarget(pass *Pass, s *ast.AssignStmt, rs *ast.RangeStmt) (string, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return "", false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return "", false
	}
	if declaredWithin(pass, baseIdent(s.Lhs[0]), rs) {
		return "", false
	}
	return types.ExprString(s.Lhs[0]), true
}

// floatAccumTarget matches compound float accumulation (`+=`, `-=`,
// `*=`, `/=`, or `x = x + e`) into a variable or field that outlives
// one loop iteration.
func floatAccumTarget(pass *Pass, s *ast.AssignStmt, rs *ast.RangeStmt) (string, bool) {
	if len(s.Lhs) != 1 {
		return "", false
	}
	lhs := s.Lhs[0]
	if !isFloat(pass.TypeOf(lhs)) {
		return "", false
	}
	target := types.ExprString(lhs)
	accum := false
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		accum = true
	case token.ASSIGN:
		if bin, ok := s.Rhs[0].(*ast.BinaryExpr); ok {
			accum = types.ExprString(bin.X) == target || types.ExprString(bin.Y) == target
		}
	}
	if !accum {
		return "", false
	}
	// A target rooted at a variable declared inside the range statement
	// is reborn every iteration and cannot accumulate across the map's
	// order.
	if declaredWithin(pass, baseIdent(lhs), rs) {
		return "", false
	}
	// m[k] += v keyed by the range's own key variable touches a
	// distinct element each iteration: per-key accumulation, order
	// cannot leak.
	if ix, ok := lhs.(*ast.IndexExpr); ok && mentionsRangeKey(pass, ix.Index, rs) {
		return "", false
	}
	return target, true
}

// baseIdent strips selectors, indexing, derefs, and parens down to the
// root identifier of an assignable expression, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether id resolves to an object declared
// inside the range statement (its key/value variables or any
// body-local).
func declaredWithin(pass *Pass, id *ast.Ident, rs *ast.RangeStmt) bool {
	if id == nil {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	p := obj.Pos()
	return p >= rs.Pos() && p <= rs.End()
}

// mentionsRangeKey reports whether e uses the object bound to the
// range statement's key variable.
func mentionsRangeKey(pass *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pass.Info.Defs[keyID]
	if keyObj == nil {
		keyObj = pass.Info.Uses[keyID]
	}
	if keyObj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == keyObj {
			found = true
		}
		return !found
	})
	return found
}

// outputCall matches direct emission: the fmt print family and
// Write/WriteString/WriteByte/WriteRune method calls.
func outputCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if path, name, ok := pkgFunc(pass.Info, call); ok {
		if path == "fmt" {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt." + name, true
			}
		}
		return "", false
	}
	if fn, sel := methodOf(pass.Info, call); fn != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return types.ExprString(sel), true
		}
	}
	return "", false
}

// sortedAfter reports whether target is mentioned in an argument of a
// recognized sort call after the range statement within the same
// function body.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, target string) bool {
	target = strings.TrimPrefix(target, "*")
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(arg, target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	if path, name, ok := pkgFunc(pass.Info, call); ok {
		switch path {
		case "sort":
			switch name {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
				return true
			}
		case "slices":
			switch name {
			case "Sort", "SortFunc", "SortStableFunc":
				return true
			}
		}
		return false
	}
	// A method literally named Sort on anything (e.g. a keyed result
	// set with its own canonical order) also counts.
	if fn, _ := methodOf(pass.Info, call); fn != nil && fn.Name() == "Sort" {
		return true
	}
	return false
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
