// Validation & auto-revert (§6): an index that the optimizer estimates to
// help but that actually regresses the workload (here: heavy maintenance
// on a write-hot column) is detected by the validator's Welch t-test over
// Query Store statistics and automatically reverted.
package main

import (
	"fmt"
	"time"

	"autoindex"
	"autoindex/internal/controlplane"
	"autoindex/internal/core"
	"autoindex/internal/schema"
)

func main() {
	region := autoindex.NewRegion(21)
	db := region.NewDatabase("writehot", autoindex.TierBasic)

	mustExec(db, `CREATE TABLE events (
		id BIGINT NOT NULL, device BIGINT, kind VARCHAR, reading FLOAT,
		PRIMARY KEY (id))`)
	for i := 0; i < 2000; i++ {
		mustExec(db, fmt.Sprintf(
			`INSERT INTO events (id, device, kind, reading) VALUES (%d, %d, 'k%d', %d.5)`,
			i, i%40, i%6, i))
	}
	db.RebuildAllStats()
	region.Manage(db, "server-1", autoindex.Settings{}) // no auto-implement: we drive one bad index by hand

	// A write-dominated workload: readings are updated constantly, read
	// rarely. An index on (reading) would be maintained on every update.
	next := 2000
	workload := func(n int) {
		for i := 0; i < n; i++ {
			mustExec(db, fmt.Sprintf(`UPDATE events SET reading = %d.25 WHERE id = %d`, i, (i*37)%2000))
			mustExec(db, fmt.Sprintf(`INSERT INTO events (id, device, kind, reading) VALUES (%d, %d, 'k%d', 1.5)`, next, next%40, next%6))
			next++
			if i%10 == 0 {
				// The rare read that makes the index look attractive.
				mustExec(db, fmt.Sprintf(`SELECT id FROM events WHERE reading > %d AND reading < %d`, i%100, i%100+2))
			}
		}
	}

	// Warm up so Query Store has "before" statistics.
	fmt.Println("running write-heavy workload...")
	for h := 0; h < 24; h++ {
		workload(15)
		region.Advance(time.Hour)
	}

	// File a deliberately bad recommendation, as if a recommender had
	// trusted the optimizer's estimate (§6: estimated-better, actually
	// worse). The control plane implements it because auto-create is on,
	// then validates it because the user requested the apply.
	rec := &controlplane.Record{
		Recommendation: core.Recommendation{
			ID:       "rec-writehot-bad-1",
			Database: "writehot",
			Action:   core.ActionCreateIndex,
			Index: schema.IndexDef{
				Name: "auto_ix_events_reading", Table: "events",
				KeyColumns: []string{"reading"}, AutoCreated: true,
			},
			Source:    core.SourceMI,
			CreatedAt: region.Clock().Now(),
		},
		State:         controlplane.StateActive,
		UserRequested: true, // "apply" from the portal (§2)
		UpdatedAt:     region.Clock().Now(),
	}
	region.Plane().StateStore().SaveRecord(rec)

	fmt.Println("bad index recommendation filed; service implements and validates...")
	for h := 0; h < 36; h++ {
		workload(15)
		region.Advance(time.Hour)
	}

	r, _ := region.Plane().StateStore().GetRecord("rec-writehot-bad-1")
	fmt.Printf("\nrecommendation final state: %s\n", r.State)
	if r.Validation != nil {
		fmt.Println("validation:", r.Validation.Describe())
		for _, qv := range r.Validation.Queries {
			fmt.Printf("  %-12s metric=%s before=%.2f after=%.2f p=%.4f\n",
				qv.Verdict, qv.Metric, qv.Before.Mean, qv.After.Mean, qv.P)
		}
	}
	if _, exists := db.IndexDef("auto_ix_events_reading"); !exists {
		fmt.Println("\nindex was automatically reverted — the workload is protected.")
	} else {
		fmt.Println("\nindex survived validation.")
	}
}

func mustExec(db *autoindex.Database, sql string) {
	if _, err := db.Exec(sql); err != nil {
		panic(err)
	}
}
