// Package analysis is the repo's determinism-and-correctness linter: a
// small, self-contained static-analysis framework plus five analyzers
// that encode bug classes this codebase has actually shipped and then
// had to hunt down by hand.
//
// The fleet simulation promises byte-identical output for a given seed
// at any worker count. That promise has been broken twice:
//
//   - PR 2 ("parallel fleet simulation") fixed five separate
//     map-iteration nondeterminism bugs across dta, mi, engine,
//     workload, and experiment — each one a `for range` over a map
//     whose body appended to a slice or accumulated float cost state
//     in Go's randomized map order.
//   - PR 3 ("deterministic fault injection") introduced wrapped errors
//     and had to convert sentinel `==` comparisons to errors.Is when
//     fault wrapping broke classification in dta.
//
// Both classes are mechanically detectable, so this package detects
// them mechanically — the same move production systems make with
// `go vet`-style analyzers — along with three neighbours: wall-clock
// and global-RNG calls that bypass internal/sim (the root cause of
// nondeterministic timestamps), sloppy mutex discipline, and
// observability-layer violations (runtime metric registration,
// wall-clock-timed metrics and spans; see metricsdiscipline.go).
//
// The framework deliberately uses only the standard library
// (go/parser, go/ast, go/types, go/importer); there is no dependency
// on golang.org/x/tools. See cmd/lint for the command-line driver and
// testdata/ for the annotated fixture corpus.
//
// # Suppression
//
// Any diagnostic can be suppressed at its site with a directive
// comment on the same line or the line immediately above:
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// cmd/lint -ignores prints the inventory of active suppressions so
// reviews can audit every escape hatch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the canonical
// "path:line:col: [check] message" form printed by cmd/lint.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// An Analyzer is one named check. Per-function analyzers set Run and
// see one type-checked unit at a time; interprocedural analyzers set
// RunProgram instead and see the whole module at once (call graph +
// fact store, see callgraph.go / interproc.go). Exactly one of Run and
// RunProgram is non-nil.
type Analyzer struct {
	// Name is the check name used in diagnostics, //lint:ignore
	// directives, and the cmd/lint -checks filter.
	Name string
	// Doc is a one-line description shown by cmd/lint -help.
	Doc string
	// SkipTests excludes _test.go files from this check. The wallclock
	// analyzer sets it: tests legitimately sleep to coordinate real
	// goroutines, and test wall-time never feeds simulation output.
	// Interprocedural analyzers honor it per function node: test-file
	// functions still contribute call-graph edges and facts, but never
	// diagnostics.
	SkipTests bool
	// Run inspects the unit and reports findings through the pass.
	Run func(*Pass)
	// RunProgram inspects the whole module at once.
	RunProgram func(*ProgramPass)
}

// A Pass carries one analyzer's view of one type-checked unit.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the unit's syntax trees. When the analyzer sets
	// SkipTests, _test.go files are already filtered out.
	Files []*ast.File
	// PkgPath is the unit's import path (the wallclock analyzer keys
	// its internal/sim exemption off it).
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Analyzers returns the full suite in stable order: the five
// per-function passes, then the three interprocedural passes.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrderAnalyzer,
		WallClockAnalyzer,
		ErrCompareAnalyzer,
		LockDisciplineAnalyzer,
		MetricsDisciplineAnalyzer,
		LockOrderAnalyzer,
		DetFlowAnalyzer,
		LeakCheckAnalyzer,
	}
}

// ByName resolves a check name to its analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to every unit, filters the results through
// //lint:ignore directives, and returns the surviving diagnostics in
// (file, line, col, check) order. Malformed directives are reported as
// diagnostics of the pseudo-check "directive", which cannot be
// suppressed.
func Run(units []*Unit, analyzers []*Analyzer) []Diagnostic {
	var perUnit, perProgram []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			perProgram = append(perProgram, a)
		} else {
			perUnit = append(perUnit, a)
		}
	}

	var diags []Diagnostic
	var allIgnores []Ignore
	for _, u := range units {
		ignores, bad := collectIgnores(u.Fset, u.Files)
		diags = append(diags, bad...)
		allIgnores = append(allIgnores, ignores...)

		var unitDiags []Diagnostic
		for _, a := range perUnit {
			files := u.Files
			if a.SkipTests {
				files = nil
				for _, f := range u.Files {
					if !u.TestFiles[f] {
						files = append(files, f)
					}
				}
			}
			if len(files) == 0 {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    files,
				PkgPath:  u.Path,
				Pkg:      u.Pkg,
				Info:     u.Info,
				diags:    &unitDiags,
			}
			a.Run(pass)
		}
		diags = append(diags, filterIgnored(unitDiags, ignores)...)
	}

	if len(perProgram) > 0 && len(units) > 0 {
		prog := BuildProgram(units)
		var progDiags []Diagnostic
		for _, a := range perProgram {
			pass := &ProgramPass{
				Analyzer: a,
				Prog:     prog,
				Facts:    NewFactStore(),
				diags:    &progDiags,
			}
			a.RunProgram(pass)
		}
		diags = append(diags, filterIgnored(progDiags, allIgnores)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}
