// Package mathx implements the statistical machinery the paper's service
// relies on: Welford accumulation of execution metrics (what Query Store
// tracks), the Welch t-test used by the validator (§6) and the B-instance
// experiments (§7.3), the regression-slope t-statistic used by the
// Missing-Index recommender (§5.2), and a small online logistic-regression
// classifier used to filter low-impact MI candidates.
package mathx

import "math"

// Welford accumulates count, mean and variance of a stream of observations
// in one pass. Query Store stores exactly these aggregates per metric per
// plan per interval.
type Welford struct {
	N    int64
	Mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.N++
	d := x - w.Mean
	w.Mean += d / float64(w.N)
	w.m2 += d * (x - w.Mean)
}

// Merge combines another accumulator into w (Chan et al. parallel update).
func (w *Welford) Merge(o Welford) {
	if o.N == 0 {
		return
	}
	if w.N == 0 {
		*w = o
		return
	}
	n := w.N + o.N
	d := o.Mean - w.Mean
	w.m2 += o.m2 + d*d*float64(w.N)*float64(o.N)/float64(n)
	w.Mean = (w.Mean*float64(w.N) + o.Mean*float64(o.N)) / float64(n)
	w.N = n
}

// M2 returns the accumulated sum of squared deviations — the third piece
// of internal state alongside N and Mean. Exposed (with WelfordFromParts)
// so accumulators can round-trip through serialization exactly.
func (w *Welford) M2() float64 { return w.m2 }

// WelfordFromParts reconstructs an accumulator from its serialized state.
func WelfordFromParts(n int64, mean, m2 float64) Welford {
	return Welford{N: n, Mean: mean, m2: m2}
}

// Variance returns the sample variance (n-1 denominator); 0 when n < 2.
func (w *Welford) Variance() float64 {
	if w.N < 2 {
		return 0
	}
	return w.m2 / float64(w.N-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Sum returns the total of all observations.
func (w *Welford) Sum() float64 { return w.Mean * float64(w.N) }
