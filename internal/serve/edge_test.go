package serve

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"autoindex/internal/wire"
)

// rawSession dials the server and completes the handshake by hand,
// returning the framed connection for protocol-level tampering.
func rawSession(t *testing.T, addr, database string, maxPayload int) *wire.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	c := wire.NewConn(nc)
	if maxPayload > 0 {
		c.SetMaxPayload(maxPayload)
	}
	p, err := c.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	hs, err := wire.ParseHandshake(p)
	if err != nil {
		t.Fatal(err)
	}
	resp := wire.HandshakeResponse{
		Capabilities: wire.ServerCaps(),
		User:         "raw",
		AuthResponse: wire.ScrambleNative(testPassword, hs.Seed),
		Database:     database,
		Plugin:       wire.AuthPluginNative,
	}
	if err := c.WritePacket(wire.EncodeHandshakeResponse(resp)); err != nil {
		t.Fatal(err)
	}
	p, err = c.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !wire.IsOK(p) {
		t.Fatalf("handshake response = 0x%02x", p[0])
	}
	return c
}

// TestSplitPackets lowers the frame-split threshold on both peers so a
// routine query exercises multi-frame reassembly in both directions.
func TestSplitPackets(t *testing.T) {
	db := newTestDB(t)
	_, addr, _ := startServer(t, Config{Lookup: lookupOne(db), MaxPayload: 64})

	cl, err := wire.DialMax(addr, "app", testPassword, "db000", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A query long enough to need several 64-byte frames, whose resultset
	// (20 wide-ish text rows) splits on the way back too.
	pad := strings.Repeat(" ", 200)
	res, err := cl.Query("SELECT id, customer_id, status, amount, created FROM orders" + pad + "ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 || res.Rows[19][0].Text != "19" {
		t.Fatalf("rows = %d, last = %+v", len(res.Rows), res.Rows[len(res.Rows)-1])
	}
}

// TestOversizedPacket sends a statement above MaxStatementBytes and
// checks the server drains it, answers ERR 1153, and keeps the session.
func TestOversizedPacket(t *testing.T) {
	db := newTestDB(t)
	_, addr, _ := startServer(t, Config{Lookup: lookupOne(db), MaxStatementBytes: 1 << 10})

	cl, err := wire.Dial(addr, "app", testPassword, "db000")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	big := "SELECT id FROM orders WHERE status = '" + strings.Repeat("x", 4<<10) + "'"
	if _, err := cl.Query(big); sqlErrCode(err) != wire.CodePacketTooLarge {
		t.Fatalf("oversized: err = %v, want code %d", err, wire.CodePacketTooLarge)
	}
	// The stream stayed framed: the next command works.
	res, err := cl.Query("SELECT id FROM orders WHERE id = 1")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("after oversized: res = %+v err = %v", res, err)
	}
}

// TestMalformedStmtExecute hand-crafts a COM_STMT_EXECUTE whose null
// bitmap and type block are truncated; the server must answer ERR 1835
// and keep the session alive.
func TestMalformedStmtExecute(t *testing.T) {
	db := newTestDB(t)
	_, addr, _ := startServer(t, Config{Lookup: lookupOne(db)})
	c := rawSession(t, addr, "db000", 0)

	// Prepare a 2-parameter statement through the raw connection.
	c.ResetSeq()
	if err := c.WritePacket(append([]byte{wire.ComStmtPrepare}, "SELECT id FROM orders WHERE customer_id = ? AND id = ?"...)); err != nil {
		t.Fatal(err)
	}
	p, err := c.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0x00 {
		t.Fatalf("prepare response = 0x%02x", p[0])
	}
	r := wire.NewPayloadReader(p[1:])
	stmtID := r.ReadUint32()
	// Drain the two parameter definition packets and the EOF.
	for {
		p, err := c.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		if wire.IsEOF(p) {
			break
		}
	}

	// COM_STMT_EXECUTE with a truncated payload: the null bitmap for two
	// params needs a byte plus the new-params-bound flag and two type
	// pairs; send only the header.
	c.ResetSeq()
	exec := []byte{wire.ComStmtExecute}
	exec = wire.AppendUint32(exec, stmtID)
	exec = append(exec, 0, 1, 0, 0, 0) // flags + iteration count
	if err := c.WritePacket(exec); err != nil {
		t.Fatal(err)
	}
	p, err = c.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !wire.IsErr(p) || wire.ParseErr(p).Code != wire.CodeMalformedPacket {
		t.Fatalf("malformed execute response = %v", wire.ParseErr(p))
	}

	// Session is still alive: COM_PING answers OK.
	c.ResetSeq()
	if err := c.WritePacket([]byte{wire.ComPing}); err != nil {
		t.Fatal(err)
	}
	p, err = c.ReadPacket()
	if err != nil || !wire.IsOK(p) {
		t.Fatalf("ping after malformed: p = %v err = %v", p, err)
	}
}

// TestMidResultsetDisconnect drops the connection while the server is
// streaming rows; the session must unwind and unregister.
func TestMidResultsetDisconnect(t *testing.T) {
	db := newTestDB(t)
	// Bulk up the table so the resultset spans many packets.
	for i := 1000; i < 3000; i++ {
		mustExec(t, db, fmt.Sprintf(
			"INSERT INTO orders (id, customer_id, status, amount, created) VALUES (%d, %d, 'bulk', 1, %d)", i, i%7, i))
	}
	srv, addr, _ := startServer(t, Config{Lookup: lookupOne(db), MaxPayload: 64})
	c := rawSession(t, addr, "db000", 64)

	c.ResetSeq()
	if err := c.WritePacket(append([]byte{wire.ComQuery}, "SELECT id, status, created FROM orders"...)); err != nil {
		t.Fatal(err)
	}
	// Read just the resultset header, then vanish mid-stream.
	if _, err := c.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()

	waitFor(t, 5*time.Second, func() bool { return srv.ActiveSessions() == 0 }, "session to unwind")
}

// TestAdmissionMaxSessions exercises the hard gate: connection N+1 is
// refused pre-handshake with ERR 1040 and counted.
func TestAdmissionMaxSessions(t *testing.T) {
	db := newTestDB(t)
	srv, addr, reg := startServer(t, Config{Lookup: lookupOne(db), MaxSessions: 1})

	cl, err := wire.Dial(addr, "app", testPassword, "db000")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := wire.Dial(addr, "app", testPassword, "db000"); sqlErrCode(err) != wire.CodeTooManyConns {
		t.Fatalf("second conn: err = %v, want code %d", err, wire.CodeTooManyConns)
	}
	if got := reg.Counter(DescAdmissionRejected).Value(); got != 1 {
		t.Fatalf("serve.admission_rejected = %d, want 1", got)
	}

	// Freeing the slot admits the next connection.
	_ = cl.Close()
	waitFor(t, 5*time.Second, func() bool { return srv.ActiveSessions() == 0 }, "slot to free")
	cl2, err := wire.Dial(addr, "app", testPassword, "db000")
	if err != nil {
		t.Fatalf("after free: %v", err)
	}
	_ = cl2.Close()
}

// TestBackpressure runs a statement burst through a tight token bucket
// and checks the session slowed down rather than erroring.
func TestBackpressure(t *testing.T) {
	db := newTestDB(t)
	_, addr, reg := startServer(t, Config{Lookup: lookupOne(db), TenantRate: 20, TenantBurst: 1})

	cl, err := wire.Dial(addr, "app", testPassword, "db000")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := cl.Query("SELECT id FROM orders WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 8 statements at 20/s with burst 1 must pay at least ~300ms of debt
	// even with generous scheduling slack.
	if elapsed < 200*time.Millisecond {
		t.Fatalf("burst of %d finished in %v; backpressure not applied", n, elapsed)
	}
	if got := reg.Histogram(DescBackpressureWaitMillis).Count(); got == 0 {
		t.Fatal("serve.backpressure_wait_ms recorded no observations")
	}
}

// TestGracefulDrain shuts the server down under an open session: the
// session is nudged out of its read, told the server is stopping, and
// Shutdown returns without force-closing.
func TestGracefulDrain(t *testing.T) {
	db := newTestDB(t)
	srv, addr, _ := startServer(t, Config{Lookup: lookupOne(db)})

	cl, err := wire.Dial(addr, "app", testPassword, "db000")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query("SELECT id FROM orders WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if srv.ActiveSessions() != 0 {
		t.Fatalf("sessions after drain = %d", srv.ActiveSessions())
	}
	// New connections are refused once draining.
	if _, err := wire.Dial(addr, "app", testPassword, "db000"); err == nil {
		t.Fatal("dial after shutdown succeeded")
	}
}
