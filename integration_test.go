package autoindex

// Cross-component integration tests exercising the paper's end-to-end
// claims through the public facade: the closed loop (observe → recommend →
// implement → validate → revert), drop analysis on a mature database, and
// failover resilience of the MI pipeline.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"autoindex/internal/controlplane"
	"autoindex/internal/core"
	"autoindex/internal/engine"
	"autoindex/internal/schema"
	"autoindex/internal/validate"
	"autoindex/internal/workload"
)

// TestClosedLoopOnGeneratedTenant drives a realistic tenant through the
// whole service and asserts the §8.1 invariants hold on one database:
// indexes get implemented, every implemented index is validated, reverted
// indexes are gone, successful ones remain.
func TestClosedLoopOnGeneratedTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	region := NewRegion(4242)
	tn, err := workload.NewTenant(workload.Profile{
		Name: "loop", Tier: TierStandard, Seed: 321, UserIndexes: true,
		WriteFraction: 0.25,
	}, region.Clock())
	if err != nil {
		t.Fatal(err)
	}
	region.Manage(tn.DB, "srv", Settings{AutoCreate: true, AutoDrop: true})

	for day := 0; day < 6; day++ {
		for h := 0; h < 24; h++ {
			tn.Run(0, 25)
			region.Advance(time.Hour)
		}
	}

	stats := region.OpStats()
	if stats.CreatesImplemented == 0 {
		t.Fatal("nothing implemented")
	}
	if stats.Validations == 0 {
		t.Fatal("nothing validated")
	}
	history := region.History("loop")
	// A successfully created index may legitimately be dropped later by the
	// §5.4 drop analysis (or be mid-drop); only flag truly lost indexes.
	droppedLater := func(index string) bool {
		for _, r := range history {
			if r.Action == core.ActionDropIndex && r.Index.Name == index {
				return true
			}
		}
		return false
	}
	for _, rec := range history {
		switch rec.State {
		case controlplane.StateSuccess:
			if rec.Action.String() == "CREATE INDEX" {
				if _, ok := tn.DB.IndexDef(rec.Index.Name); !ok && !droppedLater(rec.Index.Name) {
					t.Fatalf("successful index %s missing from database", rec.Index.Name)
				}
			}
			if rec.Validation == nil {
				t.Fatalf("success without validation: %s", rec.ID)
			}
		case controlplane.StateReverted:
			if rec.Action.String() == "CREATE INDEX" {
				if _, ok := tn.DB.IndexDef(rec.Index.Name); ok {
					t.Fatalf("reverted index %s still exists", rec.Index.Name)
				}
			}
			if rec.Validation == nil || !rec.Validation.Revert {
				t.Fatalf("reverted without revert verdict: %s", rec.ID)
			}
		}
	}
}

// TestDropLoopRemovesDeadIndex verifies the §5.4 path end to end: a
// maintained-but-unread index is recommended for drop, dropped at low
// priority, and validated.
func TestDropLoopRemovesDeadIndex(t *testing.T) {
	region := NewRegion(7)
	db := region.NewDatabase("dead", TierStandard)
	mustExecI(t, db, `CREATE TABLE logs (id BIGINT NOT NULL, kind BIGINT, size BIGINT, PRIMARY KEY (id))`)
	for i := 0; i < 1500; i++ {
		mustExecI(t, db, fmt.Sprintf(`INSERT INTO logs (id, kind, size) VALUES (%d, %d, %d)`, i, i%20, i%100))
	}
	db.RebuildAllStats()
	// A dead index: maintained by every update, read by nothing.
	if err := db.CreateIndex(schema.IndexDef{Name: "ix_dead", Table: "logs", KeyColumns: []string{"size"}}, engine.IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}
	region.Manage(db, "srv", Settings{AutoDrop: true})

	for day := 0; day < 5; day++ {
		for h := 0; h < 24; h++ {
			for q := 0; q < 6; q++ {
				mustExecI(t, db, fmt.Sprintf(`UPDATE logs SET size = %d WHERE id = %d`, q, (day*100+h*7+q)%1500))
				mustExecI(t, db, fmt.Sprintf(`SELECT id FROM logs WHERE kind = %d`, q%20))
			}
			region.Advance(time.Hour)
		}
	}
	if _, ok := db.IndexDef("ix_dead"); ok {
		t.Fatal("dead index survived the drop loop")
	}
	dropped := false
	for _, rec := range region.History("dead") {
		if rec.Action.String() == "DROP INDEX" && rec.Index.Name == "ix_dead" &&
			(rec.State == controlplane.StateSuccess || rec.State == controlplane.StateValidating) {
			dropped = true
		}
	}
	if !dropped {
		t.Fatal("no drop record reached validation")
	}
}

// TestFailoverDuringLoop injects failovers mid-loop: the MI pipeline's
// snapshot offsets must keep recommendations coming.
func TestFailoverDuringLoop(t *testing.T) {
	region := NewRegion(99)
	db := region.NewDatabase("flaky", TierBasic)
	mustExecI(t, db, `CREATE TABLE ev (id BIGINT NOT NULL, dev BIGINT, val FLOAT, PRIMARY KEY (id))`)
	for i := 0; i < 2500; i++ {
		mustExecI(t, db, fmt.Sprintf(`INSERT INTO ev (id, dev, val) VALUES (%d, %d, %d.5)`, i, i%250, i))
	}
	db.RebuildAllStats()
	region.Manage(db, "srv", Settings{AutoCreate: true})

	for h := 0; h < 48; h++ {
		for q := 0; q < 15; q++ {
			mustExecI(t, db, fmt.Sprintf(`SELECT id, val FROM ev WHERE dev = %d`, (h*13+q)%250))
		}
		if h%9 == 4 {
			db.Failover()
		}
		region.Advance(time.Hour)
	}
	if db.Failovers() < 4 {
		t.Fatalf("failovers: %d", db.Failovers())
	}
	implemented := false
	for _, def := range db.IndexDefs() {
		if def.AutoCreated {
			implemented = true
		}
	}
	if !implemented {
		t.Fatal("failovers starved the MI pipeline")
	}
}

// TestAggregatePolicyConfigurable verifies the §6 alternative policy is
// wired through the control plane configuration.
func TestAggregatePolicyConfigurable(t *testing.T) {
	cfg := controlplane.DefaultConfig()
	cfg.Validator.Policy = validate.PolicyAggregate
	region := NewRegionWithConfig(5, cfg)
	db := region.NewDatabase("agg", TierStandard)
	mustExecI(t, db, `CREATE TABLE t (id BIGINT NOT NULL, a BIGINT, PRIMARY KEY (id))`)
	for i := 0; i < 500; i++ {
		mustExecI(t, db, fmt.Sprintf(`INSERT INTO t (id, a) VALUES (%d, %d)`, i, i%50))
	}
	db.RebuildAllStats()
	region.Manage(db, "srv", Settings{AutoCreate: true})
	for h := 0; h < 30; h++ {
		for q := 0; q < 10; q++ {
			mustExecI(t, db, fmt.Sprintf(`SELECT id FROM t WHERE a = %d`, q%50))
		}
		region.Advance(time.Hour)
	}
	for _, rec := range region.History("agg") {
		if rec.Validation != nil && rec.Validation.Policy != validate.PolicyAggregate {
			t.Fatalf("validation ran with wrong policy: %v", rec.Validation.Policy)
		}
	}
}

func mustExecI(t *testing.T, db *Database, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil && !errors.Is(err, engine.ErrIndexNotFound) {
		t.Fatalf("%s: %v", sql, err)
	}
}
