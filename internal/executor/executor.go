// Package executor implements the physical operators that execute plans:
// filter, project, sort, top, hash aggregation, hash join and nested-loops
// join over pull-based row streams. Operators charge *actual* CPU work to a
// Meter using the same cost units the optimizer estimates in; the engine's
// access paths charge actual page reads. The spread between the
// optimizer's estimate and the meter's measurement is the raw material of
// the paper's validation problem.
package executor

import (
	"sort"

	"autoindex/internal/optimizer"
	"autoindex/internal/value"
)

// Meter accumulates the actual execution cost of one statement.
type Meter struct {
	PagesRead     float64
	PagesWritten  float64
	CPUUnits      float64
	RowsProcessed int64
}

// ChargePages records logical page reads.
func (m *Meter) ChargePages(p float64) { m.PagesRead += p }

// ChargePageWrites records page writes.
func (m *Meter) ChargePageWrites(p float64) { m.PagesWritten += p }

// ChargeRows records per-row CPU work for n rows.
func (m *Meter) ChargeRows(n int64) {
	m.RowsProcessed += n
	m.CPUUnits += float64(n) * optimizer.CPUPerRow
}

// ChargeCPU records raw CPU units.
func (m *Meter) ChargeCPU(u float64) { m.CPUUnits += u }

// TotalCost returns the combined cost in optimizer units.
func (m *Meter) TotalCost() float64 {
	return m.PagesRead + m.PagesWritten + m.CPUUnits
}

// Source is a pull-based row stream.
type Source interface {
	// Next returns the next row, or ok=false at end of stream.
	Next() (value.Row, bool)
}

// SliceSource yields rows from a materialized slice.
type SliceSource struct {
	Rows []value.Row
	i    int
}

// Next implements Source.
func (s *SliceSource) Next() (value.Row, bool) {
	if s.i >= len(s.Rows) {
		return nil, false
	}
	r := s.Rows[s.i]
	s.i++
	return r, true
}

// Drain consumes a source into a slice.
func Drain(s Source) []value.Row {
	var out []value.Row
	for {
		r, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Filter yields child rows satisfying pred, charging CPU per input row.
type Filter struct {
	Child Source
	Pred  func(value.Row) bool
	Meter *Meter
}

// Next implements Source.
func (f *Filter) Next() (value.Row, bool) {
	for {
		r, ok := f.Child.Next()
		if !ok {
			return nil, false
		}
		f.Meter.ChargeRows(1)
		if f.Pred(r) {
			return r, true
		}
	}
}

// Project maps child rows through Fn.
type Project struct {
	Child Source
	Fn    func(value.Row) value.Row
	Meter *Meter
}

// Next implements Source.
func (p *Project) Next() (value.Row, bool) {
	r, ok := p.Child.Next()
	if !ok {
		return nil, false
	}
	p.Meter.ChargeRows(1)
	return p.Fn(r), true
}

// Sort materializes and sorts child rows by Less on first pull.
type Sort struct {
	Child Source
	Less  func(a, b value.Row) bool
	Meter *Meter

	sorted []value.Row
	done   bool
	i      int
}

// Next implements Source.
func (s *Sort) Next() (value.Row, bool) {
	if !s.done {
		s.sorted = Drain(s.Child)
		n := len(s.sorted)
		if n > 1 {
			sort.SliceStable(s.sorted, func(i, j int) bool { return s.Less(s.sorted[i], s.sorted[j]) })
			// n log n comparisons plus a pass.
			s.Meter.ChargeCPU(float64(n) * log2(float64(n)) * optimizer.CPUPerCompare)
		}
		s.Meter.ChargeRows(int64(n))
		s.done = true
	}
	if s.i >= len(s.sorted) {
		return nil, false
	}
	r := s.sorted[s.i]
	s.i++
	return r, true
}

func log2(f float64) float64 {
	n := 0.0
	for f > 1 {
		f /= 2
		n++
	}
	return n + 1
}

// Top yields at most N child rows.
type Top struct {
	Child Source
	N     int
	seen  int
}

// Next implements Source.
func (t *Top) Next() (value.Row, bool) {
	if t.seen >= t.N {
		return nil, false
	}
	r, ok := t.Child.Next()
	if !ok {
		return nil, false
	}
	t.seen++
	return r, true
}

// AggKind enumerates aggregate computations.
type AggKind int

// Aggregate kinds; AggKey passes a grouping column through.
const (
	AggKey AggKind = iota
	AggCountStar
	AggCountCol
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggSpec is one output column of an aggregation: either a group key
// column (AggKey) or an aggregate over input column Col.
type AggSpec struct {
	Kind AggKind
	Col  int
}

type aggState struct {
	key     value.Key
	count   int64
	countC  []int64
	sums    []float64
	mins    []value.Value
	maxs    []value.Value
	hasMinM []bool
}

// HashAgg groups child rows by GroupCols and computes Specs per group.
// When GroupCols is empty it produces a single scalar-aggregate row (even
// for empty input, matching SQL semantics).
type HashAgg struct {
	Child     Source
	GroupCols []int
	Specs     []AggSpec
	Meter     *Meter

	done   bool
	groups []*aggState
	i      int
}

// Next implements Source.
func (h *HashAgg) Next() (value.Row, bool) {
	if !h.done {
		h.build()
		h.done = true
	}
	if h.i >= len(h.groups) {
		return nil, false
	}
	g := h.groups[h.i]
	h.i++
	return h.render(g), true
}

func (h *HashAgg) build() {
	index := make(map[uint64][]*aggState)
	order := []*aggState{}
	for {
		r, ok := h.Child.Next()
		if !ok {
			break
		}
		h.Meter.ChargeRows(1)
		h.Meter.ChargeCPU(optimizer.HashBuildPerRow)
		key := make(value.Key, len(h.GroupCols))
		for i, c := range h.GroupCols {
			key[i] = r[c]
		}
		hash := value.HashKey(key)
		var st *aggState
		for _, cand := range index[hash] {
			if value.KeyEqual(cand.key, key) {
				st = cand
				break
			}
		}
		if st == nil {
			st = &aggState{
				key:     key,
				countC:  make([]int64, len(h.Specs)),
				sums:    make([]float64, len(h.Specs)),
				mins:    make([]value.Value, len(h.Specs)),
				maxs:    make([]value.Value, len(h.Specs)),
				hasMinM: make([]bool, len(h.Specs)),
			}
			index[hash] = append(index[hash], st)
			order = append(order, st)
		}
		st.count++
		for i, spec := range h.Specs {
			switch spec.Kind {
			case AggCountCol, AggSum, AggAvg, AggMin, AggMax:
				v := r[spec.Col]
				if v.IsNull() {
					continue
				}
				st.countC[i]++
				if f, ok := v.AsFloat(); ok {
					st.sums[i] += f
				}
				if !st.hasMinM[i] || value.Compare(v, st.mins[i]) < 0 {
					st.mins[i] = v
				}
				if !st.hasMinM[i] || value.Compare(v, st.maxs[i]) > 0 {
					st.maxs[i] = v
				}
				st.hasMinM[i] = true
			}
		}
	}
	if len(h.GroupCols) == 0 && len(order) == 0 {
		// Scalar aggregate over empty input still yields one row.
		order = append(order, &aggState{
			countC:  make([]int64, len(h.Specs)),
			sums:    make([]float64, len(h.Specs)),
			mins:    make([]value.Value, len(h.Specs)),
			maxs:    make([]value.Value, len(h.Specs)),
			hasMinM: make([]bool, len(h.Specs)),
		})
	}
	h.groups = order
}

func (h *HashAgg) render(g *aggState) value.Row {
	out := make(value.Row, len(h.Specs))
	for i, spec := range h.Specs {
		switch spec.Kind {
		case AggKey:
			// Col indexes into the group key for AggKey specs.
			out[i] = g.key[spec.Col]
		case AggCountStar:
			out[i] = value.NewInt(g.count)
		case AggCountCol:
			out[i] = value.NewInt(g.countC[i])
		case AggSum:
			if g.countC[i] == 0 {
				out[i] = value.NewNull()
			} else {
				out[i] = value.NewFloat(g.sums[i])
			}
		case AggAvg:
			if g.countC[i] == 0 {
				out[i] = value.NewNull()
			} else {
				out[i] = value.NewFloat(g.sums[i] / float64(g.countC[i]))
			}
		case AggMin:
			if !g.hasMinM[i] {
				out[i] = value.NewNull()
			} else {
				out[i] = g.mins[i]
			}
		case AggMax:
			if !g.hasMinM[i] {
				out[i] = value.NewNull()
			} else {
				out[i] = g.maxs[i]
			}
		}
	}
	return out
}

// HashJoin builds a hash table from the build side and probes it with the
// probe side. Output rows are probe row ++ build row.
type HashJoin struct {
	Probe    Source
	Build    Source
	ProbeCol int
	BuildCol int
	Meter    *Meter

	built   bool
	table   map[uint64][]value.Row
	pending []value.Row
	current value.Row
}

// Next implements Source.
func (j *HashJoin) Next() (value.Row, bool) {
	if !j.built {
		j.table = make(map[uint64][]value.Row)
		for {
			r, ok := j.Build.Next()
			if !ok {
				break
			}
			j.Meter.ChargeRows(1)
			j.Meter.ChargeCPU(optimizer.HashBuildPerRow)
			v := r[j.BuildCol]
			if v.IsNull() {
				continue
			}
			h := v.Hash()
			j.table[h] = append(j.table[h], r)
		}
		j.built = true
	}
	for {
		if len(j.pending) > 0 {
			b := j.pending[0]
			j.pending = j.pending[1:]
			out := make(value.Row, 0, len(j.current)+len(b))
			out = append(out, j.current...)
			out = append(out, b...)
			return out, true
		}
		p, ok := j.Probe.Next()
		if !ok {
			return nil, false
		}
		j.Meter.ChargeRows(1)
		v := p[j.ProbeCol]
		if v.IsNull() {
			continue
		}
		for _, b := range j.table[v.Hash()] {
			if value.Equal(b[j.BuildCol], v) {
				j.pending = append(j.pending, b)
			}
		}
		j.current = p
	}
}

// NLJoin is an index nested-loops join: for each outer row it asks Bind
// for a matching inner stream (typically an index seek on the join key).
type NLJoin struct {
	Outer    Source
	OuterCol int
	// Bind returns the inner rows matching the outer join key; the engine
	// implements it as an index seek, charging pages to the meter.
	Bind  func(key value.Value) Source
	Meter *Meter

	inner   Source
	current value.Row
}

// Next implements Source.
func (j *NLJoin) Next() (value.Row, bool) {
	for {
		if j.inner != nil {
			if r, ok := j.inner.Next(); ok {
				out := make(value.Row, 0, len(j.current)+len(r))
				out = append(out, j.current...)
				out = append(out, r...)
				return out, true
			}
			j.inner = nil
		}
		o, ok := j.Outer.Next()
		if !ok {
			return nil, false
		}
		j.Meter.ChargeRows(1)
		v := o[j.OuterCol]
		if v.IsNull() {
			continue
		}
		j.current = o
		j.inner = j.Bind(v)
	}
}
