package autoindex_test

import (
	"fmt"
	"time"

	"autoindex"
)

// Example shows the minimal lifecycle: create a database, run a workload,
// let the service recommend/implement/validate, then inspect the history.
func Example() {
	region := autoindex.NewRegion(1)
	db := region.NewDatabase("shop", autoindex.TierStandard)
	db.Exec(`CREATE TABLE orders (id BIGINT NOT NULL, customer_id BIGINT, amount FLOAT, PRIMARY KEY (id))`)
	for i := 0; i < 1000; i++ {
		db.Exec(fmt.Sprintf(`INSERT INTO orders (id, customer_id, amount) VALUES (%d, %d, %d.5)`, i, i%100, i))
	}
	db.RebuildAllStats()

	region.Manage(db, "server-1", autoindex.Settings{AutoCreate: true, AutoDrop: true})
	for h := 0; h < 24; h++ {
		for q := 0; q < 10; q++ {
			db.Exec(fmt.Sprintf(`SELECT id, amount FROM orders WHERE customer_id = %d`, (h+q)%100))
		}
		region.Advance(time.Hour)
	}

	for _, rec := range region.Recommendations("shop") {
		_ = rec.Describe() // e.g. "CREATE INDEX auto_ix_orders_customer_id ON orders (customer_id) — est. impact 41.0%"
	}
	fmt.Println(region.OpStats().Databases)
	// Output: 1
}
