package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LeakCheckAnalyzer enforces that goroutines launched in the
// long-lived server layers — internal/serve, internal/wire,
// internal/fleet — are provably joinable. A goroutine counts as
// joinable when the analysis can show one of:
//
//  1. it blocks on a shutdown signal: a receive/select/range on
//     ctx.Done(), on a channel some non-test code closes, or on a
//     channel passed in as a parameter (directly or via a static
//     callee);
//  2. it completes a sync.WaitGroup (wg.Done, possibly deferred or in
//     a callee) that some non-test code waits on — the Add-before-go /
//     Wait-in-Shutdown pattern;
//  3. it signals a join channel the launching function itself waits
//     on: the body closes or sends on a channel the launcher receives
//     from (the `go func() { ...; close(drained) }(); <-drained`
//     shutdown pattern).
//
// Anything else — including a `go` whose target the call graph cannot
// resolve — is reported. The repo's serve sessions leaked exactly this
// way before Shutdown grew its WaitGroup; the check makes the pattern
// structural. Deliberately fire-and-forget goroutines take an audited
// //lint:ignore leakcheck with the reason.
var LeakCheckAnalyzer = &Analyzer{
	Name:       "leakcheck",
	Doc:        "goroutines in serve/wire/fleet must be joinable (done/ctx select, waited WaitGroup, or join channel)",
	SkipTests:  true,
	RunProgram: runLeakCheck,
}

// leakScopedPkgs are the package-path suffixes whose goroutine launches
// are policed. Simulation and analysis code spawn workers too, but
// those are request-scoped by construction; the serve path is where a
// leak accumulates for the life of the process.
var leakScopedPkgs = []string{"internal/serve", "internal/wire", "internal/fleet"}

func leakScoped(pkgPath string) bool {
	for _, s := range leakScopedPkgs {
		if pkgPathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// leakLocal is one function's locally-visible lifecycle behavior.
type leakLocal struct {
	blocks   bool            // blocks on ctx.Done/closed chan/param chan/time.After
	done     map[string]bool // WaitGroup keys this function Dones
	waits    map[string]bool // WaitGroup keys this function Waits
	signals  map[string]bool // channel keys this function closes or sends on
	receives map[string]bool // channel keys this function receives from
}

func runLeakCheck(pass *ProgramPass) {
	prog := pass.Prog

	// Pass 1: per-node local scans, plus the global closed-channel and
	// waited-WaitGroup sets. Test code does not contribute: a test
	// harness draining a channel must not mask a production leak.
	locals := make(map[*FuncNode]*leakLocal, len(prog.Nodes))
	closedKeys := make(map[string]bool)
	waitedGroups := make(map[string]bool)
	for _, n := range prog.Nodes {
		if n.Test {
			continue
		}
		l := scanLeakLocal(prog, n, nil)
		locals[n] = l
		for k := range l.signals {
			closedKeys[k] = true
		}
		for k := range l.waits {
			waitedGroups[k] = true
		}
	}

	// Pass 2: rescan with the closed-key set known, so "receives from a
	// channel that is closed somewhere" resolves.
	for _, n := range prog.Nodes {
		if n.Test {
			continue
		}
		locals[n] = scanLeakLocal(prog, n, closedKeys)
	}

	// Pass 3: propagate blocks-on-signal and Done-sets through static,
	// non-go calls to a fixed point.
	const blocksPrefix = "leakcheck.blocks:"
	const donePrefix = "leakcheck.done:"
	blocksOf := func(n *FuncNode) bool {
		b, _ := pass.Facts.GetKey(blocksPrefix + n.Key).(bool)
		return b
	}
	doneOf := func(n *FuncNode) map[string]bool {
		m, _ := pass.Facts.GetKey(donePrefix + n.Key).(map[string]bool)
		return m
	}
	prog.FixedPoint(func(n *FuncNode) []*FuncNode {
		l := locals[n]
		if l == nil {
			return nil
		}
		blocks := l.blocks
		done := make(map[string]bool, len(l.done))
		for k := range l.done {
			done[k] = true
		}
		for _, site := range n.Calls {
			if site.Go {
				continue
			}
			for _, c := range site.Callees {
				if blocksOf(c) {
					blocks = true
				}
				for k := range doneOf(c) {
					done[k] = true
				}
			}
		}
		if blocks == blocksOf(n) && len(done) == len(doneOf(n)) {
			return nil
		}
		pass.Facts.SetKey(blocksPrefix+n.Key, blocks)
		pass.Facts.SetKey(donePrefix+n.Key, done)
		return []*FuncNode{n}
	})

	// Pass 4: judge every `go` site in the scoped packages.
	for _, n := range prog.Nodes {
		if n.Test || !leakScoped(unitPkgPath(n.Unit)) {
			continue
		}
		launcher := locals[n]
		for _, site := range n.Calls {
			if !site.Go {
				continue
			}
			if len(site.Callees) == 0 {
				pass.Reportf(site.Call.Pos(), "cannot resolve the goroutine's target, so it cannot be proven joinable; launch a named function or add //lint:ignore leakcheck <reason>")
				continue
			}
			for _, c := range site.Callees {
				if leakJoinable(c, locals[c], launcher, waitedGroups, blocksOf, doneOf) {
					continue
				}
				pass.Reportf(site.Call.Pos(), "goroutine %s is not provably joinable: it neither blocks on a done/ctx signal, completes a WaitGroup that Shutdown waits on, nor signals a channel this function receives; tie it to the drain path or add //lint:ignore leakcheck <reason>", c.Name)
				break // one finding per go statement
			}
		}
	}
}

// leakJoinable applies the three joinability rules to one launched
// callee.
func leakJoinable(c *FuncNode, cl *leakLocal, launcher *leakLocal, waitedGroups map[string]bool,
	blocksOf func(*FuncNode) bool, doneOf func(*FuncNode) map[string]bool) bool {
	if blocksOf(c) {
		return true
	}
	for k := range doneOf(c) {
		if waitedGroups[k] {
			return true
		}
	}
	if cl != nil && launcher != nil {
		for k := range cl.signals {
			if launcher.receives[k] {
				return true
			}
		}
	}
	return false
}

// scanLeakLocal walks one node's body (not nested literals — those are
// their own nodes) collecting lifecycle behavior. closedKeys may be nil
// during the bootstrap pass.
func scanLeakLocal(prog *Program, n *FuncNode, closedKeys map[string]bool) *leakLocal {
	l := &leakLocal{
		done:     make(map[string]bool),
		waits:    make(map[string]bool),
		signals:  make(map[string]bool),
		receives: make(map[string]bool),
	}
	info := n.Unit.Info
	fset := prog.Fset

	paramSet := make(map[types.Object]bool)
	for _, p := range paramObjs(info, n) {
		if p != nil {
			paramSet[p] = true
		}
	}

	recvFrom := func(e ast.Expr) {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			if fn, _ := methodOf(info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "context" && fn.Name() == "Done" {
				l.blocks = true // <-ctx.Done()
			}
			if path, name, ok := pkgFunc(info, call); ok && path == "time" && name == "After" {
				l.blocks = true // bounded wait
			}
			return
		}
		if obj := rootObj(info, e); obj != nil && paramSet[obj] {
			if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
				l.blocks = true // caller-controlled channel
			}
		}
		if k, ok := stateKeyOf(info, fset, e); ok {
			l.receives[k.Key] = true
			if closedKeys[k.Key] {
				l.blocks = true
			}
		}
	}

	ast.Inspect(n.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if k, ok := stateKeyOf(info, fset, x.Args[0]); ok {
					l.signals[k.Key] = true
				}
				return true
			}
			if fn, sel := methodOf(info, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil && isWaitGroup(recv.Type()) {
					if k, ok := stateKeyOf(info, fset, sel.X); ok {
						switch fn.Name() {
						case "Done":
							l.done[k.Key] = true
						case "Wait":
							l.waits[k.Key] = true
						}
					}
				}
				return true
			}
			if fn, _ := methodOf(info, x); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "context" && fn.Name() == "Err" {
				// for ctx.Err() == nil { ... } polling loops terminate on
				// cancellation.
				l.blocks = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				recvFrom(x.X)
			}
		case *ast.RangeStmt:
			if _, isChan := info.TypeOf(x.X).Underlying().(*types.Chan); isChan {
				recvFrom(x.X)
			}
		case *ast.SendStmt:
			if k, ok := stateKeyOf(info, fset, x.Chan); ok {
				l.signals[k.Key] = true
			}
		}
		return true
	})
	return l
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" &&
		named.Obj().Name() == "WaitGroup"
}

// sortedKeys is shared by the interprocedural analyzers for
// deterministic iteration over key sets.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
