// The fixture driver type-checks this file under the import path
// "autoindex/internal/sim" and asserts the wallclock analyzer stays
// silent: the simulation substrate is the one place allowed to touch
// the real clock. There is deliberately no want and no //lint:ignore
// here — the exemption itself must do the suppressing. (A corpus-wide
// cmd/lint demo run loads the file under the testdata path instead,
// where this line correctly counts as a finding.)
package fixture

import "time"

func simWallNow() time.Time {
	return time.Now()
}
