package core

import (
	"strings"
	"testing"

	"autoindex/internal/schema"
)

func cand(table string, keys, incl []string, imp float64) Candidate {
	return Candidate{
		Def: schema.IndexDef{
			Name: "ix_" + strings.Join(keys, "_"), Table: table,
			KeyColumns: keys, IncludedColumns: incl,
		},
		EstImprovement: imp,
	}
}

func TestMergeExactDuplicatesPoolBenefit(t *testing.T) {
	a := cand("t", []string{"x"}, []string{"y"}, 10)
	a.ImpactedQueries = []uint64{1}
	b := cand("t", []string{"x"}, []string{"y"}, 5)
	b.ImpactedQueries = []uint64{2}
	out := ConservativeMerge([]Candidate{a, b})
	if len(out) != 1 {
		t.Fatalf("merged to %d", len(out))
	}
	if out[0].EstImprovement != 15 {
		t.Fatalf("benefit = %v", out[0].EstImprovement)
	}
	if len(out[0].ImpactedQueries) != 2 {
		t.Fatalf("impacted: %v", out[0].ImpactedQueries)
	}
}

func TestMergePrefixFoldsIntoExtension(t *testing.T) {
	short := cand("t", []string{"a"}, []string{"inc1"}, 8)
	long := cand("t", []string{"a", "b"}, []string{"inc2"}, 10)
	out := ConservativeMerge([]Candidate{short, long})
	if len(out) != 1 {
		t.Fatalf("want 1 candidate, got %d", len(out))
	}
	m := out[0]
	if len(m.Def.KeyColumns) != 2 {
		t.Fatalf("merged keys: %v", m.Def.KeyColumns)
	}
	if !m.Def.HasColumn("inc1") || !m.Def.HasColumn("inc2") {
		t.Fatalf("merged includes: %v", m.Def.IncludedColumns)
	}
	if m.EstImprovement != 18 {
		t.Fatalf("merged benefit: %v", m.EstImprovement)
	}
}

func TestMergeNeverInventsKeyOrders(t *testing.T) {
	x := cand("t", []string{"a"}, nil, 5)
	y := cand("t", []string{"b"}, nil, 5)
	out := ConservativeMerge([]Candidate{x, y})
	if len(out) != 2 {
		t.Fatalf("unrelated keys must not merge: %d", len(out))
	}
	// Different tables never merge.
	z := cand("u", []string{"a", "b"}, nil, 5)
	out = ConservativeMerge([]Candidate{x, z})
	if len(out) != 2 {
		t.Fatal("cross-table merge")
	}
}

func TestMergeChain(t *testing.T) {
	// a → ab → abc should collapse into one candidate.
	out := ConservativeMerge([]Candidate{
		cand("t", []string{"a"}, nil, 1),
		cand("t", []string{"a", "b"}, nil, 2),
		cand("t", []string{"a", "b", "c"}, nil, 3),
	})
	if len(out) != 1 || len(out[0].Def.KeyColumns) != 3 {
		t.Fatalf("chain merge: %+v", out)
	}
	if out[0].EstImprovement != 6 {
		t.Fatalf("chain benefit: %v", out[0].EstImprovement)
	}
}

func TestMergeOutputSorted(t *testing.T) {
	out := ConservativeMerge([]Candidate{
		cand("t", []string{"low"}, nil, 1),
		cand("t", []string{"high"}, nil, 100),
	})
	if out[0].EstImprovement < out[1].EstImprovement {
		t.Fatal("output must be sorted by benefit")
	}
}

func TestMergeIncludeNoKeyDuplicates(t *testing.T) {
	short := cand("t", []string{"a"}, []string{"b"}, 5)
	long := cand("t", []string{"a", "b"}, nil, 5)
	out := ConservativeMerge([]Candidate{short, long})
	if len(out) != 1 {
		t.Fatalf("got %d", len(out))
	}
	// "b" is a key of the merged index; it must not reappear as include.
	for _, inc := range out[0].Def.IncludedColumns {
		if strings.EqualFold(inc, "b") {
			t.Fatalf("key column duplicated as include: %v", out[0].Def)
		}
	}
}

func TestMergeImpactedDedupes(t *testing.T) {
	got := MergeImpacted([]uint64{3, 1, 2}, []uint64{2, 4})
	if len(got) != 4 {
		t.Fatalf("%v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestCoverage(t *testing.T) {
	c := Coverage{AnalyzedCPU: 80, TotalCPU: 100}
	if c.Fraction() != 0.8 {
		t.Fatalf("fraction = %v", c.Fraction())
	}
	if c.String() != "80.0%" {
		t.Fatalf("string = %q", c.String())
	}
	if (Coverage{}).Fraction() != 0 {
		t.Fatal("empty coverage")
	}
	over := Coverage{AnalyzedCPU: 120, TotalCPU: 100}
	if over.Fraction() != 1 {
		t.Fatal("coverage clamps at 1")
	}
}

func TestRecommendationDescribe(t *testing.T) {
	r := Recommendation{
		Action: ActionCreateIndex,
		Index: schema.IndexDef{
			Name: "ix1", Table: "orders",
			KeyColumns: []string{"a"}, IncludedColumns: []string{"b"},
		},
		EstImprovementPct: 42.5,
	}
	d := r.Describe()
	if !strings.Contains(d, "CREATE INDEX") || !strings.Contains(d, "INCLUDE (b)") || !strings.Contains(d, "42.5%") {
		t.Fatalf("describe: %s", d)
	}
}
