package controlplane

import (
	"sort"
	"strings"
	"time"

	"autoindex/internal/core"
)

// This file implements the §8.2 customer asks: control over *when* indexes
// are implemented (maintenance windows), the naming scheme for auto-created
// indexes, and the SaaS-vendor feature of surfacing indexes that are
// beneficial across a significant fraction of a logical server's databases.

// MaintenanceWindow restricts automatic implementation to a daily window
// of local (virtual) hours. Zero value means "any time".
type MaintenanceWindow struct {
	// StartHour and EndHour bound the window [StartHour, EndHour) in
	// 24-hour clock; StartHour == EndHour means no restriction. Windows
	// may wrap midnight (e.g. 22 → 4).
	StartHour, EndHour int
}

// Allows reports whether t falls inside the window.
func (w MaintenanceWindow) Allows(t time.Time) bool {
	if w.StartHour == w.EndHour {
		return true
	}
	h := t.Hour()
	if w.StartHour < w.EndHour {
		return h >= w.StartHour && h < w.EndHour
	}
	// Wraps midnight.
	return h >= w.StartHour || h < w.EndHour
}

// implementAllowedNow gates the implementation micro-service on the
// configured window ("implementing indexes during low periods of activity
// or on a pre-specified schedule", §8.2).
func (cp *ControlPlane) implementAllowedNow() bool {
	return cp.cfg.Maintenance.Allows(cp.clock.Now())
}

// applyNamingScheme rewrites an auto-created index name under the
// customer's prefix ("naming scheme for indexes", §8.2). The rewritten
// name is stored back on the record so validation and revert target the
// real index.
func (cp *ControlPlane) applyNamingScheme(name string) string {
	prefix := cp.cfg.IndexNamePrefix
	if prefix == "" {
		return name
	}
	if strings.HasPrefix(strings.ToLower(name), strings.ToLower(prefix)) {
		return name
	}
	out := prefix + name
	if len(out) > 120 {
		out = out[:120]
	}
	return out
}

// CrossDatabaseCandidate is an index shape recommended on several
// databases of the same logical server.
type CrossDatabaseCandidate struct {
	Signature string
	// Example is a representative recommendation (the index definition).
	Example *Record
	// Databases lists the databases with an Active recommendation of this
	// shape; Fraction is their share of the server's databases.
	Databases []string
	Fraction  float64
}

// CrossDatabaseCandidates groups Active create recommendations across a
// logical server's databases by index signature and returns shapes
// recommended on at least minFraction of them — the §8.2 SaaS-vendor ask
// ("only implement indexes that are beneficial for a significant fraction
// of their databases"). Results are sorted by descending fraction.
func (cp *ControlPlane) CrossDatabaseCandidates(server string, minFraction float64) []CrossDatabaseCandidate {
	var serverDBs []string
	for _, ds := range cp.store.Databases() {
		if strings.EqualFold(ds.Server, server) {
			serverDBs = append(serverDBs, ds.Name)
		}
	}
	if len(serverDBs) == 0 {
		return nil
	}
	inServer := make(map[string]bool, len(serverDBs))
	for _, n := range serverDBs {
		inServer[strings.ToLower(n)] = true
	}
	type group struct {
		example *Record
		dbs     map[string]bool
	}
	groups := make(map[string]*group)
	for _, r := range cp.store.Records(func(r *Record) bool {
		return r.State == StateActive && r.Action == core.ActionCreateIndex && inServer[strings.ToLower(r.Database)]
	}) {
		// Group by table-less shape: SaaS tenants share schemas, so the
		// table + key + include shape identifies "the same index".
		sig := r.Index.Signature()
		g := groups[sig]
		if g == nil {
			g = &group{example: r, dbs: make(map[string]bool)}
			groups[sig] = g
		}
		g.dbs[strings.ToLower(r.Database)] = true
	}
	var out []CrossDatabaseCandidate
	for sig, g := range groups {
		frac := float64(len(g.dbs)) / float64(len(serverDBs))
		if frac < minFraction {
			continue
		}
		dbs := make([]string, 0, len(g.dbs))
		for n := range g.dbs {
			dbs = append(dbs, n)
		}
		sort.Strings(dbs)
		out = append(out, CrossDatabaseCandidate{
			Signature: sig,
			Example:   g.example,
			Databases: dbs,
			Fraction:  frac,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction != out[j].Fraction {
			return out[i].Fraction > out[j].Fraction
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// ApplyAcross marks the candidate's recommendation Active→UserRequested on
// every listed database, implementing the SaaS bulk-apply flow.
func (cp *ControlPlane) ApplyAcross(c CrossDatabaseCandidate) error {
	for _, r := range cp.store.Records(func(r *Record) bool {
		return r.State == StateActive && r.Index.Signature() == c.Signature
	}) {
		for _, db := range c.Databases {
			if strings.EqualFold(r.Database, db) {
				if err := cp.Apply(r.ID); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
