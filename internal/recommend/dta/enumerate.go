package dta

import (
	"errors"
	"strings"

	"autoindex/internal/core"
	"autoindex/internal/engine"
)

// enumerate runs the greedy workload-level search: repeatedly add the
// candidate with the largest marginal benefit to the configuration, under
// the max-index and storage-budget constraints, until the marginal gain is
// negligible. Per-statement costs are cached and only statements touching
// the tested candidate's table are re-costed; on top of that, upper-bound
// pruning skips candidates that could not win the round even if they
// zeroed every relevant statement's cost. Both prunes are exact — the
// winner of every round is the same candidate the unpruned search picks —
// so they change only the what-if call count, never the recommendation.
func enumerate(db *engine.Database, session *engine.WhatIfSession,
	workload []tunedStatement, candidates []core.Candidate, opts Options, res *Result,
) (chosen []core.Candidate, baseline, finalCost float64, err error) {
	reg := db.Metrics()
	// Baseline per-statement costs under the existing configuration.
	cur := make([]float64, len(workload))
	for i, ts := range workload {
		c, _, err := session.CostQuery(ts.hash, ts.stmt)
		if err != nil {
			if errors.Is(err, engine.ErrWhatIfBudget) {
				return nil, 0, 0, err
			}
			// Statement not costable in what-if mode; exclude from search.
			cur[i] = 0
			continue
		}
		cur[i] = c * ts.weight
		baseline += cur[i]
	}
	finalCost = baseline

	// Statement → tables index for relevance pruning.
	stmtTables := make([]map[string]bool, len(workload))
	for i, ts := range workload {
		tbls := make(map[string]bool)
		for t := range analyzeStatement(db, ts.stmt) {
			tbls[t] = true
		}
		stmtTables[i] = tbls
	}

	var usedBytes int64
	remaining := append([]core.Candidate(nil), candidates...)
	for len(chosen) < opts.MaxIndexes && len(remaining) > 0 {
		if opts.AbortCheck != nil && opts.AbortCheck() {
			return chosen, baseline, finalCost, ErrAborted
		}
		bestIdx := -1
		var bestGain float64
		var bestNewCosts map[int]float64
		for ci, cand := range remaining {
			if opts.StorageBudgetBytes > 0 && usedBytes+cand.EstSizeBytes > opts.StorageBudgetBytes {
				continue
			}
			table := strings.ToLower(cand.Def.Table)
			// Upper bound on this candidate's gain: it cannot save more
			// than the entire current cost of the statements it touches.
			// With the earliest-wins tie-break (gain > bestGain, slice
			// order), a candidate whose bound cannot strictly beat the
			// current best can be skipped without costing anything.
			ub := 0.0
			for i := range workload {
				if stmtTables[i][table] && cur[i] != 0 {
					ub += cur[i]
				}
			}
			if !opts.DisablePruning && ub <= bestGain {
				reg.Counter(descEnumPruned).Inc()
				continue
			}
			session.Catalog().AddHypothetical(cand.Def)
			gain := 0.0
			remainingUB := ub
			newCosts := make(map[int]float64)
			budgetHit := false
			dominated := false
			for i, ts := range workload {
				if !stmtTables[i][table] || cur[i] == 0 {
					continue
				}
				c, _, err := session.CostQuery(ts.hash, ts.stmt)
				if err != nil {
					if errors.Is(err, engine.ErrWhatIfBudget) {
						budgetHit = true
						break
					}
					remainingUB -= cur[i]
					continue
				}
				w := c * ts.weight
				newCosts[i] = w
				gain += cur[i] - w
				remainingUB -= cur[i]
				// Even zeroing every statement still to be costed cannot
				// beat the current best: stop mid-candidate.
				if !opts.DisablePruning && gain+remainingUB <= bestGain {
					dominated = true
					break
				}
			}
			session.Catalog().RemoveHypothetical(cand.Def.Name)
			if budgetHit {
				// Out of budget: settle for what has been found so far.
				if bestIdx >= 0 {
					break
				}
				return chosen, baseline, finalCost, engine.ErrWhatIfBudget
			}
			if dominated {
				reg.Counter(descEnumPruned).Inc()
				continue
			}
			if gain > bestGain {
				bestGain = gain
				bestIdx = ci
				bestNewCosts = newCosts
			}
		}
		if bestIdx < 0 || bestGain < opts.MinImprovementFraction*baseline {
			break
		}
		winner := remaining[bestIdx]
		winner.EstImprovement = bestGain
		if baseline > 0 {
			winner.EstImprovementPct = bestGain / baseline * 100
		}
		chosen = append(chosen, winner)
		usedBytes += winner.EstSizeBytes
		session.Catalog().AddHypothetical(winner.Def)
		for i, c := range bestNewCosts {
			cur[i] = c
		}
		finalCost -= bestGain
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return chosen, baseline, finalCost, nil
}

// truncateText bounds report text (a rewritten bulk insert renders as a
// thousand-row statement otherwise).
func truncateText(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// buildReports fills per-statement reports (§5.3.2: DTA "emits detailed
// reports specifying which statements it analyzed and which indexes in the
// recommendation will impact which statement") and analyzed coverage.
func (res *Result) buildReports(db *engine.Database, session *engine.WhatIfSession,
	workload []tunedStatement, chosen []core.Candidate,
) {
	chosenNames := make(map[string]bool, len(chosen))
	for _, c := range chosen {
		chosenNames[strings.ToLower(c.Def.Name)] = true
	}
	for _, ts := range workload {
		r := StatementReport{
			QueryHash:  ts.hash,
			Text:       truncateText(ts.stmt.SQL(), 300),
			Executions: int64(ts.weight),
			Rewritten:  ts.rewritten,
		}
		res.Coverage.AnalyzedCPU += ts.cpu
		// Final-configuration cost and impacted indexes (the chosen set is
		// still in the session catalog after enumeration).
		if after, plan, err := session.CostQuery(ts.hash, ts.stmt); err == nil {
			r.CostAfter = after
			for _, ix := range plan.IndexesUsed {
				if chosenNames[strings.ToLower(ix)] {
					r.Indexes = append(r.Indexes, ix)
				}
			}
		}
		// Cost under the original configuration.
		for _, c := range chosen {
			session.Catalog().RemoveHypothetical(c.Def.Name)
		}
		if before, _, err := session.CostQuery(ts.hash, ts.stmt); err == nil {
			r.CostBefore = before
		}
		for _, c := range chosen {
			session.Catalog().AddHypothetical(c.Def)
		}
		res.Reports = append(res.Reports, r)
	}
}
