// Maporder fixtures. Each `want "..."` comment pins an expected
// diagnostic (as a regexp over "check: message") to its line; lines
// without a want must stay silent.
package fixture

import (
	"fmt"
	"sort"
)

// totalCostBug is the minimized PR-2 bug: per-tenant fleet cost totals
// were folded in map iteration order, so the low bits of the float sum
// differed between runs with different map layouts.
func totalCostBug(costs map[string]float64) float64 {
	total := 0.0
	for _, c := range costs { // want "maporder: map iteration order leaks into float accumulation into total"
		total += c
	}
	return total
}

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "maporder: map iteration order leaks into append to keys"
		keys = append(keys, k)
	}
	return keys
}

// keysSorted is the canonical fix: collect, then sort. No diagnostic.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// valsSortedBySlice shows sort.Slice also counts as sorting.
func valsSortedBySlice(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func emitsOutput(m map[string]int) {
	for k, v := range m { // want "maporder: map iteration order leaks into output via fmt.Println"
		fmt.Println(k, v)
	}
}

// intAccumulation is commutative and exact: no diagnostic.
func intAccumulation(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// perIterationState appends only to a loop-local slice, which is
// reborn every iteration: no diagnostic.
func perIterationState(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		scratch := make([]int, 0, len(vs))
		for _, v := range vs {
			scratch = append(scratch, v*2)
		}
		n += len(scratch)
	}
	return n
}

// perKeyAccumulation indexes the accumulator by the range key: each
// iteration touches its own element, so order cannot leak.
func perKeyAccumulation(results []map[string]float64) map[string]float64 {
	sums := make(map[string]float64)
	for _, r := range results {
		for k, v := range r {
			sums[k] += v
		}
	}
	return sums
}

// sliceRange is not a map range: no diagnostic.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// rebindForm catches the x = x + e spelling of accumulation.
func rebindForm(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "maporder: map iteration order leaks into float accumulation into sum"
		sum = sum + v
	}
	return sum
}
