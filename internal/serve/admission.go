package serve

import (
	"sync"
	"time"
)

// tokenBucket rate-limits one tenant's statements. Instead of dropping
// over-limit work it returns the wait that would bring the tenant back
// under its rate — the session sleeps that long before executing, so
// clients see backpressure (latency) rather than errors.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables limiting
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// reserve takes one token and returns how long the caller must wait
// before proceeding (zero when under the rate). Debt accumulates like
// GCRA: a burst drives tokens negative and successive statements queue
// behind it proportionally.
func (b *tokenBucket) reserve(now time.Time) time.Duration {
	if b == nil || b.rate <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	b.tokens--
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}
