# Standard targets for the autoindex reproduction. Everything is plain
# `go` underneath; the Makefile just fixes the flag sets so CI and
# humans run the same thing.

GO ?= go

.PHONY: all build test race vet lint lint-fixtures check bench bench-gate smoke scenarios race-scenarios ci cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static analysis: go vet plus the repo's own two-tier linter
# (cmd/lint — five per-unit checks and three interprocedural checks
# over the whole-module call graph; see ARCHITECTURE.md "Static
# analysis"). Part of tier-1 verify.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/lint ./...

# The analyzer fixture corpus: every file under
# internal/analysis/testdata must produce exactly its // want
# annotations — each minimized from a real bug class the linter is
# contracted to catch. Run after changing any analyzer.
lint-fixtures:
	$(GO) test -run 'TestFixtureCorpus' -count=1 ./internal/analysis

# The full local gate: what CI runs on every change.
check: build test lint

# The concurrency-sensitive packages under the race detector: the
# sharded fleet harness, the telemetry hub, the fault-injection layer,
# and the control plane's micro-service loops vs. concurrent injectors —
# including the chaos property/determinism tests those packages carry.
# The engine's differential suite (fault-injected DDL vs. concurrent
# build paths) runs under race too. Part of tier-1 verify.
# The metrics registry and the tracer join the list: their whole point
# is lock-free (atomic) updates from many workers at once.
# The serving path (wire protocol + session layer) is concurrency by
# definition — many client goroutines against one engine — so both
# packages run their full suites under race.
race:
	$(GO) test -race -count=1 ./internal/fleet ./internal/telemetry ./internal/controlplane ./internal/faults ./internal/metrics ./internal/trace ./internal/serve ./internal/wire
	$(GO) test -race -count=1 -run 'Differential' ./internal/engine

vet:
	$(GO) vet ./...

# Coverage floor for the chaos-critical packages: the control plane's
# state machine / crash recovery and the fault-injection layer. The
# floor is a ratchet — raise it when coverage rises, never lower it.
COVER_FLOOR = 75

cover:
	$(GO) test -coverprofile=cover.out ./internal/controlplane ./internal/faults
	@$(GO) tool cover -func=cover.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { pct = $$3; sub(/%/, "", pct); \
		  if (pct + 0 < floor) { printf "FAIL: coverage %s%% below floor %d%%\n", pct, floor; exit 1 } \
		  else { printf "ok: coverage %s%% meets floor %d%%\n", pct, floor } }'

# Paper tables/figures as benchmarks; BenchmarkFleetParallel also
# rewrites BENCH_fleet.json with per-worker-count timings.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# CI bench regression gate: stash the committed BENCH_fleet.json and
# BENCH_recommender.json, rerun the benchmarks (which rewrite the files
# in place), and fail if either fastest worker count got more than 25%
# slower (cmd/benchdiff -threshold default; minima are compared so one
# noisy worker-count sample can't flake the gate). The committed
# baselines are restored afterwards either way, so the working tree
# stays clean. See EXPERIMENTS.md "Benchmark ratchet" for how the
# baselines move.
bench-gate:
	@cp BENCH_fleet.json .bench_baseline.json
	@cp BENCH_recommender.json .bench_rec_baseline.json
	@cp BENCH_serve.json .bench_serve_baseline.json
	@cp BENCH_fleet_scale.json .bench_scale_baseline.json
	$(GO) test -bench='BenchmarkFleetParallel|BenchmarkRecommenderLatency|BenchmarkFleetScale' -benchtime=1x -run '^$$' ./internal/fleet
	$(GO) test -bench='BenchmarkServeThroughput' -benchtime=1x -run '^$$' ./internal/serve
	$(GO) test -run 'TestScaleMemoryBudget' -count=1 ./internal/fleet
	@$(GO) run ./cmd/benchdiff .bench_baseline.json BENCH_fleet.json; \
		fleet=$$?; mv .bench_baseline.json BENCH_fleet.json; \
		$(GO) run ./cmd/benchdiff .bench_rec_baseline.json BENCH_recommender.json; \
		rec=$$?; mv .bench_rec_baseline.json BENCH_recommender.json; \
		$(GO) run ./cmd/benchdiff .bench_serve_baseline.json BENCH_serve.json; \
		serve=$$?; mv .bench_serve_baseline.json BENCH_serve.json; \
		$(GO) run ./cmd/benchdiff .bench_scale_baseline.json BENCH_fleet_scale.json; \
		scale=$$?; mv .bench_scale_baseline.json BENCH_fleet_scale.json; \
		exit $$((fleet + rec + serve + scale))

# Live-traffic smoke test: builds the autoindexd and sqlload binaries,
# boots the daemon with both listeners, replays wire-protocol traffic
# and waits for it to reach the tuner via /livestats. Part of CI.
smoke:
	$(GO) test -run 'TestLiveTrafficSmoke' -count=1 .

# The adversarial scenario pack (internal/scenario): all four
# generators at the pinned CI seed, writing the invariant verdicts to
# verdicts.json. Exits non-zero when any verdict fails; cmd/benchdiff
# can diff verdicts.json files to gate revert-rate regressions. The
# nightly workflow sweeps many seeds with -seeds.
scenarios:
	$(GO) run ./cmd/fleetsim -experiment scenarios -scenario all -verdicts-out verdicts.json

# The scenario determinism/acceptance suite under the race detector:
# nightly-only (the generators run whole fleets, so race inflates the
# runtime well past the PR budget).
race-scenarios:
	$(GO) test -race -count=1 ./internal/scenario

# The single CI entry point: everything the workflow runs, runnable
# locally with one command.
ci: check race cover smoke scenarios bench-gate

clean:
	$(GO) clean ./...
	rm -f cover.out metrics.json verdicts.json .bench_baseline.json .bench_rec_baseline.json .bench_serve_baseline.json .bench_scale_baseline.json
