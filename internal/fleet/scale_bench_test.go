package fleet

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
	"time"
)

// benchScaleOnce runs one 100k-tenant scale-mode simulation: a fleet two
// orders of magnitude wider than BenchmarkFleetParallel's, kept cheap by
// the scale machinery itself — sparse activity, archetype stamping, a
// small resident cap forcing real hibernation churn.
func benchScaleOnce(b *testing.B) *ScaleResult {
	b.Helper()
	spec := DefaultScaleSpec(100_000, 3)
	spec.Archetypes = 3
	spec.Scale = 0.25
	spec.ActiveFraction = 0.01
	spec.StatementsPerHour = 6
	spec.ResidentTenants = 4
	spec.Stream = io.Discard
	res, err := RunScale(spec)
	if err != nil {
		b.Fatal(err)
	}
	if res.EverActive == 0 || res.Hibernations == 0 {
		b.Fatalf("degenerate benchmark run: %d ever active, %d hibernations", res.EverActive, res.Hibernations)
	}
	return res
}

// BenchmarkFleetScale measures the 100k-tenant scale mode end to end and
// records the numbers in BENCH_fleet_scale.json at the repo root, where
// `make bench-gate` diffs them against the committed baseline. Reported
// metrics: whole-fleet throughput in tenants/sec (nominal tenants over
// wall-clock, the "how wide a fleet fits one machine" number) and the
// peak heap high-water mark, which must track the resident cap — not the
// fleet size.
func BenchmarkFleetScale(b *testing.B) {
	var last *ScaleResult
	start := time.Now()
	for i := 0; i < b.N; i++ {
		last = benchScaleOnce(b)
	}
	per := time.Since(start).Nanoseconds() / int64(b.N)
	secPerOp := float64(per) / 1e9
	b.ReportMetric(float64(last.Tenants)/secPerOp, "tenants/s")
	b.ReportMetric(float64(last.PeakHeapBytes)/(1<<20), "peak-heap-MB")

	type timing struct {
		Workers  int     `json:"workers"`
		NsPerOp  int64   `json:"ns_per_op"`
		SecPerOp float64 `json:"sec_per_op"`
	}
	report := map[string]any{
		"benchmark":       "BenchmarkFleetScale",
		"workload":        "RunScale(100k tenants, 3h, 3 archetypes at 0.25 scale, 1% hourly activity, 4 resident)",
		"num_cpu":         runtime.NumCPU(),
		"gomaxprocs":      runtime.GOMAXPROCS(0),
		"tenants":         last.Tenants,
		"ever_active":     last.EverActive,
		"hibernations":    last.Hibernations,
		"rehydrations":    last.Rehydrations,
		"peak_resident":   last.PeakResident,
		"peak_heap_bytes": last.PeakHeapBytes,
		"tenants_per_sec": float64(last.Tenants) / secPerOp,
		"note":            "peak_heap_bytes must track the resident cap, not the tenant count; tenants_per_sec is nominal fleet width over wall-clock",
		"timings":         []timing{{Workers: runtime.GOMAXPROCS(0), NsPerOp: per, SecPerOp: secPerOp}},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_fleet_scale.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("could not write BENCH_fleet_scale.json: %v", err)
	}
}
