package controlplane

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/schema"
)

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{
		Recommendation: core.Recommendation{
			ID: "r1", Database: "db1", Action: core.ActionCreateIndex,
			Index: schema.IndexDef{Name: "ix", Table: "t", KeyColumns: []string{"a"}},
		},
		State:     StateImplementing,
		UpdatedAt: time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC),
	}
	if err := fs.SaveRecord(rec); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveDatabase(&DatabaseState{Name: "db1", Settings: Settings{AutoCreate: true}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveIncident(Incident{Database: "db1", Kind: "test"}); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same path resumes the state.
	fs2, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := fs2.GetRecord("r1")
	if !ok || got.State != StateImplementing || got.Index.Name != "ix" {
		t.Fatalf("resumed record: %+v (%v)", got, ok)
	}
	ds, ok := fs2.GetDatabase("db1")
	if !ok || !ds.Settings.AutoCreate {
		t.Fatalf("resumed database: %+v", ds)
	}
	if len(fs2.Incidents()) != 1 {
		t.Fatal("incident lost")
	}
}

func TestFileStoreCorruptJournalRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(path); err == nil {
		t.Fatal("corrupt journal must be rejected, not silently dropped")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestHTTPAPI(t *testing.T) {
	h := newPlaneHarness(t, Settings{})
	h.tick(t, 10, 20)
	srv := httptest.NewServer(h.cp.HTTPHandler())
	defer srv.Close()

	get := func(path string, want int) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// Databases list.
	var dbs []DatabaseState
	if err := json.Unmarshal(get("/databases", 200), &dbs); err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 1 || dbs[0].Name != "cpdb" {
		t.Fatalf("databases: %+v", dbs)
	}

	// Recommendations.
	var recs []Record
	if err := json.Unmarshal(get("/databases/cpdb/recommendations", 200), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations over HTTP")
	}
	get("/databases/nope/recommendations", 404)

	// Detail.
	get("/recommendations/"+recs[0].ID, 200)
	get("/recommendations/ghost", 404)

	// Apply.
	resp, err := http.Post(srv.URL+"/recommendations/"+recs[0].ID+"/apply", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("apply = %d", resp.StatusCode)
	}
	r, _ := h.cp.StateStore().GetRecord(recs[0].ID)
	if !r.UserRequested {
		t.Fatal("apply did not mark the record")
	}
	// Applying twice (still Active) is fine; applying a ghost 404s.
	resp, _ = http.Post(srv.URL+"/recommendations/ghost/apply", "application/json", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost apply = %d", resp.StatusCode)
	}

	// Settings update.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/databases/cpdb/settings",
		strings.NewReader(`{"AutoCreate": true, "AutoDrop": true}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("settings = %d", resp.StatusCode)
	}
	ds, _ := h.cp.StateStore().GetDatabase("cpdb")
	if !ds.Settings.AutoCreate || !ds.Settings.AutoDrop {
		t.Fatalf("settings not applied: %+v", ds.Settings)
	}

	// OpStats.
	var stats OperationalStats
	if err := json.Unmarshal(get("/opstats", 200), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Databases != 1 {
		t.Fatalf("opstats: %+v", stats)
	}
}
