package fleet

import (
	"strings"
	"testing"
	"time"

	"autoindex/internal/experiment"
)

// defaultSmallFig6 shrinks the Fig. 6 config to test scale.
func defaultSmallFig6() experiment.Fig6Config {
	cfg := experiment.DefaultFig6Config()
	cfg.PhaseStatements = 200
	cfg.PhaseDuration = 8 * time.Hour
	return cfg
}

// opsReport builds a fleet and runs a small §8.1 simulation at the given
// worker count, returning the full formatted report (the same bytes
// cmd/fleetsim prints for -experiment opstats / reverts).
func opsReport(t *testing.T, workers int) (string, string) {
	t.Helper()
	spec := Spec{Databases: 4, MixedTiers: true, Seed: 20170301, UserIndexes: true, Workers: workers}
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOpsConfig()
	cfg.Days = 3
	cfg.StatementsPerHour = 12
	cfg.AutoImplementFraction = 1.0
	cfg.NewTenantEvery = 48 * time.Hour
	res, err := f.RunOps(Spec{Seed: spec.Seed, UserIndexes: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Report(), res.RevertReport()
}

// TestOpsDeterministicAcrossWorkers is the harness's central guarantee:
// the same seed produces byte-identical opstats output whether tenants
// run on one worker or are sharded across eight. Per-tenant clocks and
// per-tenant RNG streams are what make this hold — any accidental
// cross-tenant sharing shows up here as a diff.
func TestOpsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation is slow")
	}
	rep1, rev1 := opsReport(t, 1)
	rep8, rev8 := opsReport(t, 8)
	if rep1 != rep8 {
		t.Errorf("opstats report differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", rep1, rep8)
	}
	if rev1 != rev8 {
		t.Errorf("revert report differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", rev1, rev8)
	}
	if rep1 == "" || rev1 == "" {
		t.Fatal("empty report")
	}
}

// chaosOpsReport runs a chaos-mode ops simulation at the given worker
// count, returning all deterministic output (reports plus the chaos
// summary) concatenated.
func chaosOpsReport(t *testing.T, workers int) string {
	t.Helper()
	spec := Spec{Databases: 4, MixedTiers: true, Seed: 99, UserIndexes: true, Workers: workers}
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOpsConfig()
	cfg.Days = 3
	cfg.StatementsPerHour = 12
	cfg.AutoImplementFraction = 1.0
	cfg.NewTenantEvery = 48 * time.Hour
	cfg.Chaos = ChaosConfig{Enabled: true, FaultRate: 0.08, CrashRate: 0.05}
	res, err := f.RunOps(Spec{Seed: spec.Seed, UserIndexes: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil {
		t.Fatal("chaos enabled but no chaos report")
	}
	if len(res.Chaos.Violations) != 0 {
		t.Errorf("invariant violations under chaos:\n%s", res.Chaos.Format())
	}
	return res.Report() + res.RevertReport() + res.Chaos.Format()
}

// TestChaosOpsDeterministicAcrossWorkers extends the determinism
// guarantee to chaos mode: the injected fault schedule — and therefore
// every downstream effect — is a function of the seed alone, not of how
// tenants were sharded across workers.
func TestChaosOpsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation is slow")
	}
	rep1 := chaosOpsReport(t, 1)
	rep8 := chaosOpsReport(t, 8)
	if rep1 != rep8 {
		t.Errorf("chaos report differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", rep1, rep8)
	}
	if !strings.Contains(rep1, "invariants: OK") {
		t.Errorf("expected clean invariants in:\n%s", rep1)
	}
}

// TestFig6DeterministicAcrossWorkers checks the Fig. 6 harness the same
// way: per-tenant B-instance experiments must not leak state across
// worker goroutines.
func TestFig6DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 is slow")
	}
	run := func(workers int) string {
		f, err := Build(Spec{Databases: 3, MixedTiers: true, Seed: 777, UserIndexes: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		cfg := defaultSmallFig6()
		return f.RunFig6("mixed", cfg).String()
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("fig6 summary differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", a, b)
	}
}
