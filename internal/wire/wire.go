// Package wire implements a MySQL-style client/server wire protocol
// (protocol 41, mysql_native_password) over plain TCP, stdlib-only.
// It is the codec layer of the serving path: packet framing with
// sequence tracking and 16MB-payload continuation, length-encoded
// integers and strings, the v10 handshake, textual and binary
// resultset encoding, and COM_STMT_EXECUTE parameter codecs. The
// session/state layer on top of it lives in internal/serve; an in-repo
// client (used by cmd/sqlload, benchmarks and tests) lives in
// client.go.
//
// The surface is deliberately the useful subset, faithful where it is
// implemented: COM_QUERY, COM_INIT_DB, COM_PING, COM_QUIT and the
// prepared-statement trio COM_STMT_PREPARE / COM_STMT_EXECUTE /
// COM_STMT_CLOSE, with classic EOF-delimited resultsets (the
// DEPRECATE_EOF capability is not negotiated). See ARCHITECTURE.md
// "Serving path".
//
// This package is on the wallclock analyzer's sanctioned list: real
// network connections need real read deadlines.
package wire

// Command bytes (first payload byte of a client command packet).
const (
	ComQuit        = 0x01
	ComInitDB      = 0x02
	ComQuery       = 0x03
	ComPing        = 0x0e
	ComStmtPrepare = 0x16
	ComStmtExecute = 0x17
	ComStmtClose   = 0x19
)

// Capability flags (the subset this implementation negotiates or
// inspects).
const (
	CapLongPassword     = 0x00000001
	CapConnectWithDB    = 0x00000008
	CapProtocol41       = 0x00000200
	CapSecureConnection = 0x00008000
	CapPluginAuth       = 0x00080000
	CapPluginAuthLenenc = 0x00200000
)

// serverCaps is the capability set both ends of the in-repo
// implementation speak.
const serverCaps = CapLongPassword | CapConnectWithDB | CapProtocol41 |
	CapSecureConnection | CapPluginAuth

// ServerCaps returns the capability set this implementation negotiates.
func ServerCaps() uint32 { return serverCaps }

// Column type bytes (the subset the engine's value kinds map onto, plus
// the numeric widths clients may bind parameters with).
const (
	TypeTiny      = 0x01
	TypeShort     = 0x02
	TypeLong      = 0x03
	TypeFloat     = 0x04
	TypeDouble    = 0x05
	TypeNull      = 0x06
	TypeLonglong  = 0x08
	TypeVarchar   = 0x0f
	TypeVarString = 0xfd
	TypeString    = 0xfe
)

// utf8Charset is utf8_general_ci, the charset advertised everywhere.
const utf8Charset = 33

// statusAutocommit is the only status flag this server ever sets.
const statusAutocommit = 0x0002
