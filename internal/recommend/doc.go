// Package recommend groups the index recommenders described in §5 of
// the paper. It contains no code itself — the implementations live in
// its two subpackages, which share the candidate/recommendation types
// in internal/core rather than importing each other:
//
//   - recommend/mi — the Missing-Index-DMV-based recommender (§5.2):
//     cheap, always-on, driven by snapshots of the optimizer's
//     missing-index candidates with slope t-tests, conservative
//     merging and a trained low-impact classifier.
//   - recommend/dta — the re-architected Database Engine Tuning
//     Advisor (§5.3): expensive, budgeted, driven by what-if costing
//     of a workload identified from Query Store.
//
// The control plane (internal/controlplane) invokes both and feeds
// their output through one recommendation state machine; the drop-index
// analysis (§5.4) lives separately in internal/dropper because it
// consumes usage statistics, not workload cost.
package recommend
