package wire

// Little-endian integer and length-encoded codecs shared by both sides
// of the protocol. Appenders build packet payloads; the reader is a
// sticky-error cursor over a received payload, so parse sites check
// r.ok() once at the end instead of after every field.

func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendUint24(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// appendLenencInt appends a length-encoded integer.
func appendLenencInt(b []byte, v uint64) []byte {
	switch {
	case v < 251:
		return append(b, byte(v))
	case v < 1<<16:
		return appendUint16(append(b, 0xfc), uint16(v))
	case v < 1<<24:
		return appendUint24(append(b, 0xfd), uint32(v))
	default:
		return appendUint64(append(b, 0xfe), v)
	}
}

func appendLenencBytes(b, s []byte) []byte {
	b = appendLenencInt(b, uint64(len(s)))
	return append(b, s...)
}

func appendLenencString(b []byte, s string) []byte {
	b = appendLenencInt(b, uint64(len(s)))
	return append(b, s...)
}

func appendNulString(b []byte, s string) []byte {
	b = append(b, s...)
	return append(b, 0)
}

// Exported appender/cursor surface for the session layer
// (internal/serve), which builds and parses command payloads.

// AppendUint16 appends v little-endian.
func AppendUint16(b []byte, v uint16) []byte { return appendUint16(b, v) }

// AppendUint32 appends v little-endian.
func AppendUint32(b []byte, v uint32) []byte { return appendUint32(b, v) }

// AppendLenencInt appends a length-encoded integer.
func AppendLenencInt(b []byte, v uint64) []byte { return appendLenencInt(b, v) }

// PayloadReader is an exported sticky-error cursor over a command
// payload.
type PayloadReader struct{ r reader }

// NewPayloadReader returns a cursor over b.
func NewPayloadReader(b []byte) *PayloadReader { return &PayloadReader{r: reader{b: b}} }

// ReadUint32 reads a little-endian uint32.
func (p *PayloadReader) ReadUint32() uint32 { return p.r.uint32() }

// Skip advances past n bytes.
func (p *PayloadReader) Skip(n int) { p.r.skip(n) }

// Rest returns the unread remainder.
func (p *PayloadReader) Rest() []byte { return p.r.rest() }

// OK reports whether every read so far was in bounds.
func (p *PayloadReader) OK() bool { return p.r.ok() }

// reader is a cursor over one packet payload. The first out-of-bounds
// read marks it bad; subsequent reads return zero values, and callers
// check ok() once after decoding a structure.
type reader struct {
	b   []byte
	off int
	bad bool
}

func newReader(b []byte) *reader { return &reader{b: b} }

func (r *reader) ok() bool       { return !r.bad }
func (r *reader) remaining() int { return len(r.b) - r.off }
func (r *reader) rest() []byte   { out := r.b[r.off:]; r.off = len(r.b); return out }

func (r *reader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) skip(n int) { r.bytes(n) }

func (r *reader) uint8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) uint16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

func (r *reader) uint24() uint32 {
	b := r.bytes(3)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
}

func (r *reader) uint32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *reader) uint64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// lenencInt reads a length-encoded integer. 0xfb (NULL) and 0xff (ERR
// marker) are invalid here; row decoders check for them before calling.
func (r *reader) lenencInt() uint64 {
	switch first := r.uint8(); {
	case first < 251:
		return uint64(first)
	case first == 0xfc:
		return uint64(r.uint16())
	case first == 0xfd:
		return uint64(r.uint24())
	case first == 0xfe:
		return r.uint64()
	default:
		r.bad = true
		return 0
	}
}

func (r *reader) lenencBytes() []byte {
	n := r.lenencInt()
	if r.bad || n > uint64(r.remaining()) {
		r.bad = true
		return nil
	}
	return r.bytes(int(n))
}

func (r *reader) lenencString() string { return string(r.lenencBytes()) }

func (r *reader) nulString() string {
	for i := r.off; i < len(r.b); i++ {
		if r.b[i] == 0 {
			s := string(r.b[r.off:i])
			r.off = i + 1
			return s
		}
	}
	r.bad = true
	return ""
}
