package optimizer

import (
	"math"
	"sort"
	"strings"

	"autoindex/internal/dmv"
	"autoindex/internal/schema"
	"autoindex/internal/sqlparser"
)

// Emission thresholds: a candidate is surfaced only when the ideal index
// would shave a meaningful amount of the query's cost, mirroring the MI
// feature's bar for populating the DMVs.
const (
	miMinAbsImprovement = 1.0 // cost units
	miMinPctImprovement = 5.0 // percent of the whole query's cost
	miMaxIncludeColumns = 16
)

// emitMissingIndexes performs the MI feature's local analysis: for every
// base-table access in the final plan, estimate how much an ideal
// (covering, fully-seekable) index on that table's sargable predicates
// would improve this query, and surface candidates above the threshold.
// Per the documented limitations [23], the analysis is per-access ("leaf
// node"), considers only the table's own predicates (never join, GROUP BY
// or ORDER BY columns as keys), and knows nothing about maintenance cost.
func (o *Optimizer) emitMissingIndexes(stmt sqlparser.Statement, p *Plan) {
	// Inserts, and updates/deletes without predicates, are never analyzed
	// (§5.2).
	switch s := stmt.(type) {
	case *sqlparser.InsertStmt, *sqlparser.BulkInsertStmt:
		return
	case *sqlparser.UpdateStmt:
		if len(s.Where) == 0 {
			return
		}
	case *sqlparser.DeleteStmt:
		if len(s.Where) == 0 {
			return
		}
	}
	queryHash := p.QueryHash
	totalCost := math.Max(p.EstCost, 1e-9)
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Kind {
		case KindSeqScan, KindIndexScan, KindIndexSeek:
			o.analyzeAccess(n, queryHash, totalCost)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
}

func (o *Optimizer) analyzeAccess(n *Node, queryHash uint64, totalCost float64) {
	t, ok := o.Cat.Table(n.Table)
	if !ok {
		return
	}
	// Gather this access's predicates by class.
	var eqCols, ineqCols []string
	sargable := false
	addCol := func(list *[]string, col string) {
		for _, c := range *list {
			if strings.EqualFold(c, col) {
				return
			}
		}
		*list = append(*list, col)
	}
	classify := func(preds []sqlparser.Predicate) {
		for _, pr := range preds {
			switch {
			case pr.Op.IsEquality():
				addCol(&eqCols, pr.Col.Column)
				sargable = true
			case pr.Op.IsRange():
				addCol(&ineqCols, pr.Col.Column)
				sargable = true
			}
		}
	}
	classify(n.SeekEq)
	classify(n.SeekRange)
	classify(n.Residual)
	if !sargable {
		return
	}
	// A covering seek whose sargable predicates are all matched to the key
	// is already served adequately — there is no *missing* index, only a
	// marginally narrower one. The real MI feature does not report these.
	if n.Kind == KindIndexSeek && !n.Lookup {
		residualSargable := false
		for _, pr := range n.Residual {
			if pr.Op.IsEquality() || pr.Op.IsRange() {
				residualSargable = true
			}
		}
		if !residualSargable {
			return
		}
	}

	// INCLUDE columns: everything the access must produce beyond the
	// predicate columns. For a scan node that is approximated by the
	// residual predicate columns plus, when a lookup happens, the clustered
	// key; richer projection tracking is not visible at this level, so
	// include what we can observe.
	inThePredicate := func(col string) bool {
		for _, c := range eqCols {
			if strings.EqualFold(c, col) {
				return true
			}
		}
		for _, c := range ineqCols {
			if strings.EqualFold(c, col) {
				return true
			}
		}
		return false
	}
	var include []string
	for _, pr := range n.Residual {
		if !inThePredicate(pr.Col.Column) {
			addCol(&include, pr.Col.Column)
		}
	}
	if n.Lookup || n.Kind == KindSeqScan {
		for _, pk := range t.Def.PrimaryKey {
			if !inThePredicate(pk) {
				addCol(&include, pk)
			}
		}
	}
	if len(include) > miMaxIncludeColumns {
		include = include[:miMaxIncludeColumns]
	}

	// Cost the ideal index: all equality columns as leading keys, one
	// inequality column next, everything else included (covering).
	keyCols := append([]string(nil), eqCols...)
	restIncl := append([]string(nil), include...)
	if len(ineqCols) > 0 {
		keyCols = append(keyCols, ineqCols[0])
		for _, c := range ineqCols[1:] {
			addCol(&restIncl, c)
		}
	}
	ideal := schema.IndexDef{
		Name:            "mi_hypothetical",
		Table:           n.Table,
		KeyColumns:      keyCols,
		IncludedColumns: restIncl,
		Hypothetical:    true,
	}
	info := HypotheticalIndexInfo(ideal, t)

	// Estimate rows matched by the seekable predicates.
	sel := 1.0
	count := 0
	for _, preds := range [][]sqlparser.Predicate{n.SeekEq, n.SeekRange, n.Residual} {
		for _, pr := range preds {
			if pr.Op.IsEquality() || (pr.Op.IsRange() && count < len(eqCols)+1) {
				sel *= o.selectivity(n.Table, pr, pr.Col.Column)
				count++
			}
		}
	}
	seekRows := float64(t.RowCount) * sel
	idealCost := float64(info.Height) + math.Max(1, float64(info.LeafPages)*sel) + seekRows*CPUPerRow

	current := n.EstCost
	improvement := current - idealCost
	pct := improvement / totalCost * 100
	if improvement < miMinAbsImprovement || pct < miMinPctImprovement {
		return
	}
	sort.Strings(include)
	cand := dmv.Candidate{
		Table:      t.Def.Name,
		Equality:   eqCols,
		Inequality: ineqCols,
		Include:    include,
	}
	o.MI.ObserveMissingIndex(cand, queryHash, totalCost, math.Min(pct, 100))
}
