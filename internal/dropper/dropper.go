// Package dropper implements the drop-index analysis (§5.4). Rather than
// being workload-driven, it conservatively mines the engine's long-horizon
// index usage statistics for (a) indexes that are maintained by writes but
// essentially never read, and (b) duplicate indexes (identical key columns
// in identical order). It excludes indexes referenced by query hints or
// forced plans and indexes enforcing application constraints — dropping
// those could break the application.
package dropper

import (
	"sort"
	"strings"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/dmv"
	"autoindex/internal/engine"
	"autoindex/internal/schema"
)

// Config tunes the analysis.
type Config struct {
	// MinAge is how long an index must have existed (and been observed)
	// before it can be judged; the paper retains statistics over a long
	// period (e.g., 60 days) before deciding.
	MinAge time.Duration
	// MaxReadsPerDay is the read-rate ceiling for an "unused" index.
	MaxReadsPerDay float64
	// MinUpdates is the minimum maintenance burden before an unused index
	// is worth dropping.
	MinUpdates int64
	// StaleAfter, when non-zero, flags indexes that were read in the past
	// but whose last read is older than this window while writes keep
	// maintaining them. The cumulative read-rate rule above cannot catch
	// these: an index hot for weeks then abandoned by workload drift keeps
	// a high lifetime reads-per-day long after it stopped earning its
	// maintenance cost. Zero disables the rule (the conservative
	// production default).
	StaleAfter time.Duration
}

// DefaultConfig returns production-like settings (scaled for simulation).
func DefaultConfig() Config {
	return Config{
		MinAge:         48 * time.Hour,
		MaxReadsPerDay: 0.5,
		MinUpdates:     50,
	}
}

// Reason explains why an index is a drop candidate.
type Reason string

// Drop reasons.
const (
	ReasonUnused    Reason = "unused: maintained by writes but not read"
	ReasonDuplicate Reason = "duplicate: identical key columns as another index"
	ReasonStale     Reason = "stale: once read, now only maintained by writes"
)

// DropCandidate is one index the analysis proposes to drop.
type DropCandidate struct {
	Def    schema.IndexDef
	Reason Reason
	Usage  dmv.IndexUsage
	// DuplicateOf names the surviving index for duplicates.
	DuplicateOf string
}

// ToRecommendation converts the candidate to a control-plane
// recommendation payload.
func (c DropCandidate) ToRecommendation(db string, now time.Time) core.Recommendation {
	return core.Recommendation{
		Database:  db,
		Action:    core.ActionDropIndex,
		Index:     c.Def,
		Source:    core.SourceDrop,
		CreatedAt: now,
	}
}

// Analyze scans the database's usage statistics for drop candidates.
// observedSince is when usage observation began (drops need a long
// observation window to protect weekly/monthly report queries, §5.4).
func Analyze(db *engine.Database, observedSince time.Time, cfg Config) []DropCandidate {
	if cfg.MinAge == 0 {
		cfg = DefaultConfig()
	}
	now := db.Clock().Now()
	observedFor := now.Sub(observedSince)
	if observedFor < cfg.MinAge {
		return nil // not enough history to be safe
	}
	days := observedFor.Hours() / 24
	if days <= 0 {
		days = 1
	}

	defs := db.IndexDefs()
	var out []DropCandidate

	// (a) Unused but maintained indexes.
	for _, def := range defs {
		if def.Kind == schema.Clustered || def.Hinted || def.EnforcesConstraint || def.Hypothetical {
			continue
		}
		u, ok := db.UsageDMV().Usage(def.Name)
		if !ok {
			// Never touched at all: unused only if writes would maintain it;
			// absent usage rows mean no reads AND no writes — skip (zero
			// maintenance burden).
			continue
		}
		readsPerDay := float64(u.Reads()) / days
		if readsPerDay <= cfg.MaxReadsPerDay && u.Updates >= cfg.MinUpdates {
			out = append(out, DropCandidate{Def: def, Reason: ReasonUnused, Usage: u})
			continue
		}
		// Staleness after workload drift: once-hot indexes whose reads
		// stopped entirely while write maintenance continues.
		if cfg.StaleAfter > 0 && u.Reads() > 0 && !u.LastRead.IsZero() &&
			now.Sub(u.LastRead) >= cfg.StaleAfter && u.Updates >= cfg.MinUpdates {
			out = append(out, DropCandidate{Def: def, Reason: ReasonStale, Usage: u})
		}
	}

	// (b) Duplicate indexes: group by key signature, keep the best one.
	byKey := make(map[string][]schema.IndexDef)
	for _, def := range defs {
		if def.Kind == schema.Clustered || def.Hypothetical {
			continue
		}
		k := strings.ToLower(def.Table) + "|" + strings.ToLower(strings.Join(def.KeyColumns, ","))
		byKey[k] = append(byKey[k], def)
	}
	already := make(map[string]bool, len(out))
	for _, c := range out {
		already[strings.ToLower(c.Def.Name)] = true
	}
	var groups []string
	for k, g := range byKey {
		if len(g) > 1 {
			groups = append(groups, k)
		}
	}
	sort.Strings(groups)
	for _, k := range groups {
		group := byKey[k]
		// Keep the widest (most includes), preferring hinted/constraint/user
		// indexes; drop the rest.
		sort.SliceStable(group, func(i, j int) bool {
			pi, pj := dupPriority(group[i]), dupPriority(group[j])
			if pi != pj {
				return pi > pj
			}
			return len(group[i].IncludedColumns) > len(group[j].IncludedColumns)
		})
		keeper := group[0]
		for _, def := range group[1:] {
			if def.Hinted || def.EnforcesConstraint || already[strings.ToLower(def.Name)] {
				continue
			}
			u, _ := db.UsageDMV().Usage(def.Name)
			out = append(out, DropCandidate{
				Def: def, Reason: ReasonDuplicate, Usage: u, DuplicateOf: keeper.Name,
			})
			already[strings.ToLower(def.Name)] = true
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Def.Name < out[j].Def.Name })
	return out
}

// dupPriority ranks which duplicate to keep: constraint-enforcing and
// hinted indexes are never dropped, user indexes beat auto-created ones.
func dupPriority(d schema.IndexDef) int {
	switch {
	case d.EnforcesConstraint:
		return 3
	case d.Hinted:
		return 2
	case !d.AutoCreated:
		return 1
	default:
		return 0
	}
}
