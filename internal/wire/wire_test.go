package wire

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"

	"autoindex/internal/value"
)

// pipeConns returns two framed ends of an in-memory connection.
func pipeConns(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewConn(a), NewConn(b)
}

func TestPacketRoundTrip(t *testing.T) {
	c1, c2 := pipeConns(t)
	payloads := [][]byte{
		{},
		{0x01},
		bytes.Repeat([]byte{0xab}, 300),
	}
	done := make(chan error, 1)
	go func() {
		for _, p := range payloads {
			if err := c1.WritePacket(p); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i, want := range payloads {
		got, err := c2.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("packet %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestPacketSplitFrames lowers the split threshold on both peers and
// checks payloads at, above and at exact multiples of the threshold.
func TestPacketSplitFrames(t *testing.T) {
	for _, size := range []int{63, 64, 65, 128, 129, 1000} {
		c1, c2 := pipeConns(t)
		c1.SetMaxPayload(64)
		c2.SetMaxPayload(64)
		want := bytes.Repeat([]byte{byte(size)}, size)
		done := make(chan error, 1)
		go func() { done <- c1.WritePacket(want) }()
		got, err := c2.ReadPacket()
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("size %d: payload mismatch (%d bytes back)", size, len(got))
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPacketSequenceEnforced(t *testing.T) {
	c1, c2 := pipeConns(t)
	done := make(chan error, 1)
	go func() {
		if err := c1.WritePacket([]byte{1}); err != nil {
			done <- err
			return
		}
		c1.ResetSeq() // desynchronize: peer expects seq 1 next
		done <- c1.WritePacket([]byte{2})
	}()
	if _, err := c2.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.ReadPacket(); err == nil {
		t.Fatal("expected out-of-order packet error")
	}
	<-done
}

// TestPacketTooLargeDrains checks an oversized packet errors but leaves
// the stream framed so the next packet still parses.
func TestPacketTooLargeDrains(t *testing.T) {
	c1, c2 := pipeConns(t)
	c1.SetMaxPayload(64)
	c2.SetMaxPayload(64)
	c2.SetMaxTotal(100)
	done := make(chan error, 1)
	go func() {
		if err := c1.WritePacket(bytes.Repeat([]byte{9}, 500)); err != nil {
			done <- err
			return
		}
		c1.ResetSeq()
		done <- c1.WritePacket([]byte{42})
	}()
	if _, err := c2.ReadPacket(); !errors.Is(err, ErrPacketTooLarge) {
		t.Fatalf("got %v, want ErrPacketTooLarge", err)
	}
	c2.ResetSeq()
	got, err := c2.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("stream desynchronized after oversized packet: %v", got)
	}
	<-done
}

func TestLenencIntRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 250, 251, 252, 1<<16 - 1, 1 << 16, 1<<24 - 1, 1 << 24, 1<<63 + 7} {
		b := appendLenencInt(nil, v)
		r := newReader(b)
		if got := r.lenencInt(); got != v || !r.ok() || r.remaining() != 0 {
			t.Fatalf("lenenc %d: got %d ok=%v rem=%d", v, got, r.ok(), r.remaining())
		}
	}
	// 0xfb and 0xff are not valid lenenc prefixes.
	for _, b := range [][]byte{{0xfb}, {0xff}} {
		r := newReader(b)
		r.lenencInt()
		if r.ok() {
			t.Fatalf("prefix 0x%02x should be rejected", b[0])
		}
	}
}

func TestScramble(t *testing.T) {
	seed := bytes.Repeat([]byte{0x5a}, seedLen)
	resp := ScrambleNative("secret", seed)
	if len(resp) != 20 {
		t.Fatalf("scramble length %d, want 20", len(resp))
	}
	if !CheckNative("secret", seed, resp) {
		t.Fatal("correct password rejected")
	}
	if CheckNative("wrong", seed, resp) {
		t.Fatal("wrong password accepted")
	}
	if got := ScrambleNative("", seed); got != nil {
		t.Fatalf("empty password should scramble to nil, got %v", got)
	}
	if !CheckNative("", seed, nil) {
		t.Fatal("empty password with empty response rejected")
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	seed := bytes.Repeat([]byte{7}, seedLen)
	h := Handshake{ServerVersion: "8.0-autoindex", ConnID: 99, Seed: seed, Capabilities: serverCaps}
	got, err := ParseHandshake(EncodeHandshake(h))
	if err != nil {
		t.Fatal(err)
	}
	if got.ServerVersion != h.ServerVersion || got.ConnID != h.ConnID ||
		got.Capabilities != h.Capabilities || !bytes.Equal(got.Seed, seed) {
		t.Fatalf("handshake round-trip mismatch: %+v", got)
	}
}

func TestHandshakeResponseRoundTrip(t *testing.T) {
	hr := HandshakeResponse{
		Capabilities: serverCaps,
		MaxPacket:    MaxPayload,
		User:         "app",
		AuthResponse: bytes.Repeat([]byte{3}, 20),
		Database:     "db007",
		Plugin:       AuthPluginNative,
	}
	got, err := ParseHandshakeResponse(EncodeHandshakeResponse(hr))
	if err != nil {
		t.Fatal(err)
	}
	if got.User != hr.User || got.Database != hr.Database || got.Plugin != hr.Plugin ||
		!bytes.Equal(got.AuthResponse, hr.AuthResponse) {
		t.Fatalf("handshake response round-trip mismatch: %+v", got)
	}
}

func TestOKErrEOFPackets(t *testing.T) {
	ok, err := ParseOK(EncodeOK(OK{AffectedRows: 7, Warnings: 2}))
	if err != nil || ok.AffectedRows != 7 || ok.Warnings != 2 {
		t.Fatalf("OK round-trip: %+v %v", ok, err)
	}
	e := ParseErr(EncodeErr(CodeTableNotFound, "no such table"))
	if e.Code != CodeTableNotFound || e.State != "42S02" || e.Message != "no such table" {
		t.Fatalf("ERR round-trip: %+v", e)
	}
	if !IsEOF(EncodeEOF()) || IsEOF(EncodeOK(OK{})) || IsEOF(appendUint64([]byte{0xfe}, 1)) {
		t.Fatal("EOF classification wrong")
	}
}

func TestColumnRoundTrip(t *testing.T) {
	c := Column{Schema: "db000", Table: "orders", Name: "amount", Type: TypeDouble}
	got, err := ParseColumn(EncodeColumn(c))
	if err != nil {
		t.Fatal(err)
	}
	if *got != c {
		t.Fatalf("column round-trip: got %+v want %+v", *got, c)
	}
}

func TestTextRowRoundTrip(t *testing.T) {
	row := []value.Value{
		value.NewInt(-42),
		value.NewNull(),
		value.NewString("it's"),
		value.NewFloat(2.5),
		value.NewBool(true),
	}
	cells, err := ParseTextRow(EncodeTextRow(row), len(row))
	if err != nil {
		t.Fatal(err)
	}
	want := []TextCell{{Text: "-42"}, {Null: true}, {Text: "it's"}, {Text: "2.5"}, {Text: "1"}}
	if !reflect.DeepEqual(cells, want) {
		t.Fatalf("text row: got %v want %v", cells, want)
	}
}

func TestBinaryRowRoundTrip(t *testing.T) {
	cols := []Column{
		{Name: "a", Type: TypeLonglong},
		{Name: "b", Type: TypeDouble},
		{Name: "c", Type: TypeVarString},
		{Name: "d", Type: TypeLonglong},
	}
	row := []value.Value{
		value.NewInt(1 << 40),
		value.NewFloat(-0.125),
		value.NewString("x"),
		value.NewNull(),
	}
	cells, err := ParseBinaryRow(EncodeBinaryRow(cols, row), cols)
	if err != nil {
		t.Fatal(err)
	}
	want := []TextCell{{Text: "1099511627776"}, {Text: "-0.125"}, {Text: "x"}, {Null: true}}
	if !reflect.DeepEqual(cells, want) {
		t.Fatalf("binary row: got %v want %v", cells, want)
	}
}

func TestStmtExecuteParamsRoundTrip(t *testing.T) {
	args := []value.Value{
		value.NewInt(123),
		value.NewString("abc"),
		value.NewNull(),
		value.NewFloat(9.75),
	}
	p := EncodeStmtExecute(77, args)
	r := newReader(p)
	if r.uint8() != ComStmtExecute {
		t.Fatal("bad command byte")
	}
	if id := r.uint32(); id != 77 {
		t.Fatalf("stmt id %d", id)
	}
	r.skip(5) // flags + iteration count
	got, types, err := ParseStmtExecuteParams(r.rest(), len(args), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, args) {
		t.Fatalf("params: got %v want %v", got, args)
	}
	if len(types) != len(args) {
		t.Fatalf("types: %v", types)
	}
	// Re-execute with new-params-bound clear must reuse remembered types.
	if _, _, err := ParseStmtExecuteParams(nil, 1, nil); err == nil {
		t.Fatal("execute without types should fail")
	}
}
