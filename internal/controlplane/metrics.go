package controlplane

import (
	"time"

	"autoindex/internal/metrics"
)

// Control-plane instrumentation (§4, §6): state-machine churn,
// validation verdicts, revert pressure, crash-recovery cycles, and the
// latency of a full micro-service step. Everything here is updated
// from the serial Step path, so counts are identical at any fleet
// worker count.
var (
	descTransitions = metrics.NewCounterDesc("controlplane.transitions",
		"record state-machine transitions applied by the control plane")
	descValidations = metrics.NewCounterDesc("controlplane.validations",
		"validation verdicts rendered after the post-implementation window")
	descValidationsImproved = metrics.NewCounterDesc("controlplane.validations_improved",
		"validations concluding the change improved the workload")
	descValidationsRegressed = metrics.NewCounterDesc("controlplane.validations_regressed",
		"validations concluding the change regressed the workload")
	descValidationsInconclusive = metrics.NewCounterDesc("controlplane.validations_inconclusive",
		"validations with no statistically robust verdict")
	descReverts = metrics.NewCounterDesc("controlplane.reverts",
		"reverts triggered by validation")
	descCrashRecoveries = metrics.NewCounterDesc("controlplane.crash_recoveries",
		"injected crash-restart cycles recovered by rebuilding over the surviving store")
	descStepMillis = metrics.NewHistogramDesc("controlplane.step_ms",
		"full control-plane step latency in virtual milliseconds",
		1, 10, 100, 1_000, 10_000, 60_000, 600_000)
)

// transition applies a record state-machine transition and counts it.
// Control-plane call sites route through here (not r.Transition
// directly) so controlplane.transitions reflects every applied edge.
func (cp *ControlPlane) transition(r *Record, to RecState, now time.Time) error {
	err := r.Transition(to, now)
	if err == nil {
		cp.reg.Counter(descTransitions).Inc()
	}
	return err
}
