package dmv

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"autoindex/internal/snap"
)

// EncodeTo serializes the missing-index store (entries in ascending
// candidate-key order plus the reset counter) for tenant hibernation.
func (s *MissingIndexStore) EncodeTo(w *snap.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Varint(s.resets)
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e := s.entries[k]
		w.String(e.Candidate.Table)
		encodeStrings(w, e.Candidate.Equality)
		encodeStrings(w, e.Candidate.Inequality)
		encodeStrings(w, e.Candidate.Include)
		w.Varint(e.Seeks)
		w.Float(e.AvgQueryCost)
		w.Float(e.AvgImprovementPct)
		hashes := make([]uint64, 0, len(e.QueryHashes))
		for h := range e.QueryHashes {
			hashes = append(hashes, h)
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		w.Uvarint(uint64(len(hashes)))
		for _, h := range hashes {
			w.Uvarint(h)
			w.Varint(e.QueryHashes[h])
		}
		w.Varint(e.FirstSeen.UnixNano())
		w.Varint(e.LastSeen.UnixNano())
	}
}

// DecodeFrom replaces the store's state with the decoded snapshot,
// restoring in place so recommender references stay valid.
func (s *MissingIndexStore) DecodeFrom(r *snap.Reader) error {
	resets, err := r.Varint()
	if err != nil {
		return err
	}
	n, err := r.Len()
	if err != nil {
		return err
	}
	entries := make(map[string]*Entry, n)
	for i := 0; i < n; i++ {
		e := &Entry{}
		if e.Candidate.Table, err = r.String(); err != nil {
			return err
		}
		if e.Candidate.Equality, err = decodeStrings(r); err != nil {
			return err
		}
		if e.Candidate.Inequality, err = decodeStrings(r); err != nil {
			return err
		}
		if e.Candidate.Include, err = decodeStrings(r); err != nil {
			return err
		}
		if e.Seeks, err = r.Varint(); err != nil {
			return err
		}
		if e.AvgQueryCost, err = r.Float(); err != nil {
			return err
		}
		if e.AvgImprovementPct, err = r.Float(); err != nil {
			return err
		}
		nh, err := r.Len()
		if err != nil {
			return err
		}
		e.QueryHashes = make(map[uint64]int64, nh)
		for j := 0; j < nh; j++ {
			h, err := r.Uvarint()
			if err != nil {
				return err
			}
			c, err := r.Varint()
			if err != nil {
				return err
			}
			e.QueryHashes[h] = c
		}
		var ns int64
		if ns, err = r.Varint(); err != nil {
			return err
		}
		e.FirstSeen = time.Unix(0, ns).UTC()
		if ns, err = r.Varint(); err != nil {
			return err
		}
		e.LastSeen = time.Unix(0, ns).UTC()
		k := e.Candidate.Key()
		if _, dup := entries[k]; dup {
			return fmt.Errorf("dmv: %w: duplicate candidate %q", snap.ErrCorrupt, k)
		}
		entries[k] = e
	}
	s.mu.Lock()
	s.entries = entries
	s.resets = resets
	s.mu.Unlock()
	return nil
}

// Release drops accumulated candidates while keeping the store shell.
func (s *MissingIndexStore) Release() {
	s.mu.Lock()
	s.entries = nil
	s.mu.Unlock()
}

// EncodeTo serializes index-usage rows in ascending index-name order.
func (s *IndexUsageStore) EncodeTo(w *snap.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e := s.entries[k]
		w.String(e.Index)
		w.String(e.Table)
		w.Varint(e.Seeks)
		w.Varint(e.Scans)
		w.Varint(e.Lookups)
		w.Varint(e.Updates)
		w.Varint(e.LastRead.UnixNano())
	}
}

// DecodeFrom replaces the store's rows with the decoded snapshot.
func (s *IndexUsageStore) DecodeFrom(r *snap.Reader) error {
	n, err := r.Len()
	if err != nil {
		return err
	}
	entries := make(map[string]*IndexUsage, n)
	for i := 0; i < n; i++ {
		e := &IndexUsage{}
		if e.Index, err = r.String(); err != nil {
			return err
		}
		if e.Table, err = r.String(); err != nil {
			return err
		}
		if e.Seeks, err = r.Varint(); err != nil {
			return err
		}
		if e.Scans, err = r.Varint(); err != nil {
			return err
		}
		if e.Lookups, err = r.Varint(); err != nil {
			return err
		}
		if e.Updates, err = r.Varint(); err != nil {
			return err
		}
		var ns int64
		if ns, err = r.Varint(); err != nil {
			return err
		}
		e.LastRead = time.Unix(0, ns).UTC()
		k := strings.ToLower(e.Index)
		if _, dup := entries[k]; dup {
			return fmt.Errorf("dmv: %w: duplicate usage row %q", snap.ErrCorrupt, k)
		}
		entries[k] = e
	}
	s.mu.Lock()
	s.entries = entries
	s.mu.Unlock()
	return nil
}

// Release drops accumulated rows while keeping the store shell.
func (s *IndexUsageStore) Release() {
	s.mu.Lock()
	s.entries = nil
	s.mu.Unlock()
}

func encodeStrings(w *snap.Writer, ss []string) {
	w.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

func decodeStrings(r *snap.Reader) ([]string, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
