package sim

import (
	"math"
	"testing"
	"time"
)

func TestVirtualClockAdvance(t *testing.T) {
	c := NewClock()
	start := c.Now()
	c.Advance(90 * time.Minute)
	if got := c.Now().Sub(start); got != 90*time.Minute {
		t.Fatalf("advanced %v", got)
	}
	c.Sleep(-time.Hour) // negative sleep is ignored
	if c.Now().Sub(start) != 90*time.Minute {
		t.Fatal("negative sleep moved the clock")
	}
	c.Set(start.Add(3 * time.Hour))
	if c.Now().Sub(start) != 3*time.Hour {
		t.Fatal("set failed")
	}
}

func TestVirtualClockPanicsOnBackwardsSet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards Set")
		}
	}()
	c := NewClock()
	c.Set(c.Now().Add(-time.Second))
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed must give same stream")
		}
	}
	// Child streams are stable and independent of sibling creation order.
	c1 := NewRNG(42).Child("x")
	_ = NewRNG(42).Child("y")
	c2 := NewRNG(42).Child("x")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("child streams must be reproducible by name")
		}
	}
	if NewRNG(42).Child("x").Int63n(1<<40) == NewRNG(42).Child("y").Int63n(1<<40) {
		t.Log("different children gave the same first draw (unlikely but possible)")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(7)
	z := r.NewZipf(1.5, 1000)
	counts := make(map[uint64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[z.Uint64()]++
	}
	// Value 0 must dominate under zipf.
	if counts[0] < draws/10 {
		t.Fatalf("zipf head count %d too small", counts[0])
	}
}

func TestNoiseProperties(t *testing.T) {
	r := NewRNG(3)
	n := NewNoise(r, 0.1)
	var sum float64
	const draws = 5000
	for i := 0; i < draws; i++ {
		v := n.Apply(100)
		if v <= 0 {
			t.Fatal("noise produced non-positive value")
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-100) > 2 {
		t.Fatalf("noise mean %v drifted from 100", mean)
	}
	// Zero-CV noise is identity.
	id := NewNoise(r, 0)
	if id.Apply(42) != 42 {
		t.Fatal("cv=0 must be identity")
	}
	var nilNoise *Noise
	if nilNoise.Apply(42) != 42 {
		t.Fatal("nil noise must be identity")
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-0.25) > 0.03 {
		t.Fatalf("Bool(0.25) rate = %v", rate)
	}
}

func TestPermAndShuffle(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatal("perm repeats")
		}
		seen[v] = true
	}
	vals := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		sum += v
	}
	if sum != 15 {
		t.Fatal("shuffle lost elements")
	}
}
