package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, args ...string) (code int, out string) {
	t.Helper()
	stdout, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	code = run(args, stdout, stdout)
	data, err := os.ReadFile(stdout.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

// baseline: fastest worker count is workers=8 at 1.5s.
const baseline = `{"benchmark":"BenchmarkFleetParallel","timings":[
	{"workers":1,"sec_per_op":4.0},
	{"workers":4,"sec_per_op":2.0},
	{"workers":8,"sec_per_op":1.5}]}`

func TestWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", baseline)
	// workers=4 swung 40% slower (one-shot noise) but the fastest
	// count barely moved: the min-based gate must not flake on this.
	newP := writeBench(t, dir, "new.json", `{"timings":[
		{"workers":1,"sec_per_op":4.4},
		{"workers":4,"sec_per_op":2.8},
		{"workers":8,"sec_per_op":1.6}]}`)
	code, out := runDiff(t, oldP, newP)
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "ok: fastest run within 1.25x") {
		t.Errorf("missing summary line in output:\n%s", out)
	}
	if !strings.Contains(out, "gate: fastest 1.500s -> 1.600s") {
		t.Errorf("gate line should compare the per-file minima:\n%s", out)
	}
}

func TestRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", baseline)
	// Every worker count 40% slower: a real step-change regression.
	newP := writeBench(t, dir, "new.json", `{"timings":[
		{"workers":1,"sec_per_op":5.6},
		{"workers":4,"sec_per_op":2.8},
		{"workers":8,"sec_per_op":2.1}]}`)
	code, out := runDiff(t, oldP, newP)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL: wall-clock regression beyond 1.25x") {
		t.Errorf("regression not reported:\n%s", out)
	}
}

func TestThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", baseline)
	// 10% slower everywhere: fails at -threshold 1.05, passes at 1.25.
	newP := writeBench(t, dir, "new.json", `{"timings":[
		{"workers":1,"sec_per_op":4.4},
		{"workers":4,"sec_per_op":2.2},
		{"workers":8,"sec_per_op":1.65}]}`)
	if code, out := runDiff(t, "-threshold", "1.05", oldP, newP); code != 1 {
		t.Errorf("tight threshold: exit %d, want 1; output:\n%s", code, out)
	}
	if code, out := runDiff(t, oldP, newP); code != 0 {
		t.Errorf("default threshold: exit %d, want 0; output:\n%s", code, out)
	}
}

func TestChangedWorkerCounts(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", baseline)
	// The benchmark grew a workers=16 configuration and dropped
	// workers=4: the gate still compares fastest-vs-fastest, and the
	// unmatched count is reported as informational.
	newP := writeBench(t, dir, "new.json", `{"timings":[
		{"workers":1,"sec_per_op":4.1},
		{"workers":16,"sec_per_op":1.4}]}`)
	code, out := runDiff(t, oldP, newP)
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "no baseline") {
		t.Errorf("missing informational line for the new worker count:\n%s", out)
	}
	if !strings.Contains(out, "gate: fastest 1.500s -> 1.400s") {
		t.Errorf("gate line should compare minima across differing counts:\n%s", out)
	}
}

func TestUsageAndParseErrors(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", baseline)
	if code, _ := runDiff(t, oldP); code != 2 {
		t.Errorf("missing arg: exit %d, want 2", code)
	}
	if code, _ := runDiff(t, oldP, filepath.Join(dir, "absent.json")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	bad := writeBench(t, dir, "bad.json", `{"timings":[]}`)
	if code, _ := runDiff(t, oldP, bad); code != 2 {
		t.Errorf("empty timings: exit %d, want 2", code)
	}
	nonPos := writeBench(t, dir, "nonpos.json", `{"timings":[{"workers":1,"sec_per_op":0}]}`)
	if code, _ := runDiff(t, oldP, nonPos); code != 2 {
		t.Errorf("non-positive sec_per_op: exit %d, want 2", code)
	}
	if code, _ := runDiff(t, "-threshold", "-1", oldP, oldP); code != 2 {
		t.Errorf("bad threshold: exit %d, want 2", code)
	}
}

// verdictJSON builds a one-verdict file body in the scenario JSON
// contract (an array — what the kind sniffer keys on).
func verdictJSON(scenarioName string, pass bool, revertRate float64) string {
	return fmt.Sprintf(`[{"scenario":%q,"seed":20170301,"chaos":false,"pass":%v,
		"checks":[{"name":"invariants-clean","pass":%v,"detail":"x"}],
		"evidence":[{"name":"revert-rate","value":%v}]}]`, scenarioName, pass, pass, revertRate)
}

func TestVerdictDiffWithinGate(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", verdictJSON("workload-drift", true, 0.10))
	newP := writeBench(t, dir, "new.json", verdictJSON("workload-drift", true, 0.11))
	code, out := runDiff(t, oldP, newP)
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "ok: 1 verdict run(s) within gate") {
		t.Errorf("missing summary line:\n%s", out)
	}
}

func TestVerdictPassFailFlipGates(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", verdictJSON("workload-drift", true, 0.10))
	newP := writeBench(t, dir, "new.json", verdictJSON("workload-drift", false, 0.10))
	code, out := runDiff(t, oldP, newP)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "verdict flipped") {
		t.Errorf("missing flip diagnosis:\n%s", out)
	}
}

func TestVerdictRevertRateGates(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBench(t, dir, "old.json", verdictJSON("noisy-neighbor", true, 0.10))
	// 1.8x the baseline and well past the absolute slack: gated.
	newP := writeBench(t, dir, "new.json", verdictJSON("noisy-neighbor", true, 0.18))
	code, out := runDiff(t, oldP, newP)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "revert rate 0.1000 -> 0.1800") {
		t.Errorf("missing revert-rate diagnosis:\n%s", out)
	}
	// A near-zero baseline moving inside the absolute slack must not
	// flake the ratio gate (0.00 -> 0.01 is noise, not a regression).
	oldP = writeBench(t, dir, "old0.json", verdictJSON("noisy-neighbor", true, 0))
	newP = writeBench(t, dir, "new0.json", verdictJSON("noisy-neighbor", true, 0.01))
	if code, out := runDiff(t, oldP, newP); code != 0 {
		t.Fatalf("slack: exit %d, want 0; output:\n%s", code, out)
	}
}

func TestVerdictKindMismatch(t *testing.T) {
	dir := t.TempDir()
	benchP := writeBench(t, dir, "bench.json", baseline)
	verdP := writeBench(t, dir, "verd.json", verdictJSON("flash-crowd", true, 0))
	if code, _ := runDiff(t, benchP, verdP); code != 2 {
		t.Errorf("kind mismatch: exit %d, want 2", code)
	}
}
