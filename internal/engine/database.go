// Package engine implements the database engine the auto-indexing service
// manages: tables stored in heaps or clustered B+ trees, non-clustered
// secondary indexes, a lock manager with managed lock priorities, online
// index builds with log-space accounting, column statistics with
// staleness, and statement execution that records true costs into Query
// Store and missing-index candidates into the MI DMVs. It is the
// SQL Server stand-in for the reproduction; see DESIGN.md §1.
package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autoindex/internal/btree"
	"autoindex/internal/costcache"
	"autoindex/internal/dmv"
	"autoindex/internal/faults"
	"autoindex/internal/metrics"
	"autoindex/internal/optimizer"
	"autoindex/internal/querystore"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/stats"
	"autoindex/internal/storage"
	"autoindex/internal/value"
)

// Tier models the Azure SQL Database service tiers the paper's policy
// dispatches on (§5.1.1): Basic databases get the lightweight MI
// recommender, Premium databases the comprehensive DTA analysis.
type Tier int

// Service tiers.
const (
	TierBasic Tier = iota
	TierStandard
	TierPremium
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierBasic:
		return "Basic"
	case TierStandard:
		return "Standard"
	default:
		return "Premium"
	}
}

// CPUCores returns the tier's CPU allocation (Basic has less than a core,
// as in the paper's fourth challenge).
func (t Tier) CPUCores() float64 {
	switch t {
	case TierBasic:
		return 0.5
	case TierStandard:
		return 2
	default:
		return 8
	}
}

// Config tunes a database instance.
type Config struct {
	Name string
	Tier Tier
	// Seed drives all of this database's randomness.
	Seed int64
	// NoiseCV is the coefficient of variation of measurement noise.
	NoiseCV float64
	// StatsSampleRate is the sampling rate for automatic statistics
	// (re)builds; lower rates mean cheaper but less accurate estimates.
	StatsSampleRate float64
	// StatsRefreshFraction triggers an automatic statistics rebuild for a
	// column once the table's row count drifts by this fraction from the
	// count at build time.
	StatsRefreshFraction float64
	// QueryStoreInterval is the Query Store aggregation interval.
	QueryStoreInterval time.Duration
	// TruncateTextOver simulates Query Store storing incomplete text for
	// long statements (§5.3.2); 0 disables truncation.
	TruncateTextOver int
	// LogSpaceBytes bounds the transaction log available to an index
	// build before it must pause (resumable) or fail (§8.3).
	LogSpaceBytes int64
}

// DefaultConfig returns a sensible configuration for the tier.
func DefaultConfig(name string, tier Tier, seed int64) Config {
	cfg := Config{
		Name:                 name,
		Tier:                 tier,
		Seed:                 seed,
		NoiseCV:              0.12,
		StatsSampleRate:      0.25,
		StatsRefreshFraction: 0.20,
		QueryStoreInterval:   querystore.DefaultInterval,
		TruncateTextOver:     220,
		LogSpaceBytes:        256 << 20,
	}
	switch tier {
	case TierBasic:
		cfg.StatsSampleRate = 0.10
		cfg.LogSpaceBytes = 32 << 20
	case TierStandard:
		cfg.StatsSampleRate = 0.20
		cfg.LogSpaceBytes = 128 << 20
	}
	return cfg
}

// Database is one managed database instance.
type Database struct {
	cfg   Config
	clock sim.Clock
	rng   *sim.RNG
	noise *sim.Noise

	mu      sync.RWMutex
	tables  map[string]*tableData // lower(name)
	indexes map[string]*indexData // lower(name)
	colStat map[string]*stats.ColumnStats

	// costCache memoizes what-if plan costs (see internal/costcache).
	costCache *costcache.Cache
	// dataVersion counts data-modifying statements; statsVersion records
	// the data version each column statistic was built at, so a rebuild
	// over unchanged data can be skipped (the name-keyed stats RNG stream
	// makes the rebuild bit-identical anyway).
	dataVersion  int64
	statsVersion map[string]int64
	// statsRefreshHook, when set, observes every real statistics rebuild.
	statsRefreshHook func(table, column string)

	qs      *querystore.Store
	miDMV   *dmv.MissingIndexStore
	usage   *dmv.IndexUsageStore
	locks   *LockManager
	planTxt map[uint64]string // plan-cache: full text by query hash

	bulkSources map[string]BulkSource
	modules     *moduleCatalog

	// injector, when set, fires the engine's chaos fault points (index
	// builds and drops); nil in production paths.
	injector *faults.Injector
	// reg, when set, receives engine/optimizer metrics; nil disables
	// them (every handle method is a no-op on nil).
	reg *metrics.Registry

	failovers     int64
	schemaChanges int64
	convoyBlocked int64
	execCount     int64

	// loadFactor multiplies measured CPU and duration (stored as
	// math.Float64bits; 0 means unset, i.e. 1.0). Noisy-neighbor
	// scenarios raise it at hour barriers to model co-tenants stealing
	// shared-shard resources, skewing the timing signals the validator
	// and recommenders consume. Atomic so barrier-time writes never race
	// in-flight measurement reads under the race detector.
	loadFactor atomic.Uint64
}

// BulkSource supplies rows for BULK INSERT statements.
type BulkSource func(n int64) []value.Row

// New creates an empty database.
func New(cfg Config, clock sim.Clock) *Database {
	if cfg.NoiseCV == 0 {
		cfg.NoiseCV = 0.12
	}
	if cfg.StatsSampleRate == 0 {
		cfg.StatsSampleRate = 0.25
	}
	if cfg.StatsRefreshFraction == 0 {
		cfg.StatsRefreshFraction = 0.20
	}
	rng := sim.NewRNG(cfg.Seed).Child("engine/" + cfg.Name)
	return &Database{
		cfg:          cfg,
		clock:        clock,
		rng:          rng,
		noise:        sim.NewNoise(rng, cfg.NoiseCV),
		tables:       make(map[string]*tableData),
		indexes:      make(map[string]*indexData),
		colStat:      make(map[string]*stats.ColumnStats),
		costCache:    costcache.New(0, clock),
		statsVersion: make(map[string]int64),
		qs:           querystore.New(clock, cfg.QueryStoreInterval),
		miDMV:        dmv.NewMissingIndexStore(),
		usage:        dmv.NewIndexUsageStore(),
		locks:        NewLockManager(clock),
		planTxt:      make(map[uint64]string),
		bulkSources:  make(map[string]BulkSource),
		modules:      newModuleCatalog(),
	}
}

// Name returns the database name.
func (d *Database) Name() string { return d.cfg.Name }

// Tier returns the service tier.
func (d *Database) Tier() Tier { return d.cfg.Tier }

// Config returns the configuration.
func (d *Database) Config() Config { return d.cfg }

// Clock returns the database's time source.
func (d *Database) Clock() sim.Clock { return d.clock }

// QueryStore returns the database's Query Store.
func (d *Database) QueryStore() *querystore.Store { return d.qs }

// MissingIndexDMV returns the missing-index DMV store.
func (d *Database) MissingIndexDMV() *dmv.MissingIndexStore { return d.miDMV }

// UsageDMV returns the index usage statistics store.
func (d *Database) UsageDMV() *dmv.IndexUsageStore { return d.usage }

// Locks returns the lock manager.
func (d *Database) Locks() *LockManager { return d.locks }

// SetLoadFactor scales every subsequent statement's measured CPU and
// duration by f (f <= 0 resets to 1.0). It models a noisy co-tenant on
// the same shared shard: logical reads stay deterministic and honest,
// but the timing metrics — exactly what the validator and the MI
// slope test consume — inflate.
func (d *Database) SetLoadFactor(f float64) {
	if f <= 0 || f == 1 {
		d.loadFactor.Store(0)
		return
	}
	d.loadFactor.Store(math.Float64bits(f))
}

// LoadFactor returns the current measurement scale (1.0 when unset).
func (d *Database) LoadFactor() float64 {
	if b := d.loadFactor.Load(); b != 0 {
		return math.Float64frombits(b)
	}
	return 1.0
}

// RegisterBulkSource installs the row generator behind a BULK INSERT data
// source name.
func (d *Database) RegisterBulkSource(name string, src BulkSource) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bulkSources[strings.ToLower(name)] = src
}

// SetFaultInjector attaches a chaos fault injector to this database's DDL
// paths (see internal/faults). Pass nil to disable. Safe to call
// concurrently with running statements.
func (d *Database) SetFaultInjector(in *faults.Injector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.injector = in
}

// faultInjector reads the attached injector (nil when chaos is off).
func (d *Database) faultInjector() *faults.Injector {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.injector
}

// SetMetrics attaches a metrics registry; the engine, its optimizers,
// and the recommenders reading through Metrics() all feed it. Pass nil
// to disable. Safe to call concurrently with running statements.
func (d *Database) SetMetrics(reg *metrics.Registry) {
	d.mu.Lock()
	d.reg = reg
	d.mu.Unlock()
	d.costCache.SetMetrics(reg)
}

// PlanCostCache returns the database's plan-cost cache. What-if sessions
// read and fill it; the engine invalidates it on stats refresh, schema
// change, and data change.
func (d *Database) PlanCostCache() *costcache.Cache { return d.costCache }

// SetStatsRefreshHook installs an observer called after every real
// (non-skipped) statistics rebuild; the control plane uses it to count
// stats-driven cache invalidations per tenant. Pass nil to remove.
func (d *Database) SetStatsRefreshHook(h func(table, column string)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.statsRefreshHook = h
}

// DeriveRNG derives a named child stream from the database's root RNG.
// Name-keyed derivation means a new consumer never perturbs the draws of
// existing ones — workload compression samples from such a stream.
func (d *Database) DeriveRNG(name string) *sim.RNG { return d.rng.Child(name) }

// Metrics reads the attached registry (nil when metrics are off).
func (d *Database) Metrics() *metrics.Registry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.reg
}

// Failover simulates a server failover: the missing-index DMVs reset
// (§5.2) and the plan cache empties.
func (d *Database) Failover() {
	d.mu.Lock()
	d.failovers++
	d.planTxt = make(map[uint64]string)
	d.mu.Unlock()
	d.miDMV.Reset()
}

// Failovers reports how many failovers have occurred.
func (d *Database) Failovers() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.failovers
}

// ConvoyBlockedStatements reports how many statements were blocked behind
// a normal-priority exclusive lock request (§8.3's convoy problem).
func (d *Database) ConvoyBlockedStatements() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.convoyBlocked
}

// ExecCount reports how many statements this database has executed.
func (d *Database) ExecCount() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.execCount
}

// noteSchemaChange resets volatile DMV state, as DDL does in SQL Server.
func (d *Database) noteSchemaChange() {
	d.schemaChanges++
	d.miDMV.Reset()
	d.costCache.Invalidate(costcache.SchemaChange)
}

// ---- table & index storage ----

// tableData is the physical storage of one table.
type tableData struct {
	def  *schema.Table
	heap *storage.Heap // nil when clustered
	// clustered holds the full rows keyed by primary key.
	clustered *btree.Tree
	rowCount  int64
}

func (t *tableData) pkOrdinals() []int {
	out := make([]int, len(t.def.PrimaryKey))
	for i, c := range t.def.PrimaryKey {
		out[i] = t.def.ColumnIndex(c)
	}
	return out
}

// locatorOf returns the unique row locator for a row: the primary key for
// clustered tables, the RID for heaps.
func (t *tableData) locatorOf(row value.Row, rid storage.RID) value.Key {
	if t.clustered != nil {
		ords := t.pkOrdinals()
		k := make(value.Key, len(ords))
		for i, o := range ords {
			k[i] = row[o]
		}
		return k
	}
	return value.Key{value.NewInt(int64(rid))}
}

func (t *tableData) dataPages() int64 {
	if t.heap != nil {
		return t.heap.Pages()
	}
	return storage.PagesFor(t.rowCount, t.def.RowWidth())
}

func (t *tableData) clusteredHeight() int {
	if t.clustered == nil {
		return 0
	}
	return t.clustered.Height()
}

// indexData is a materialised non-clustered index. Tree keys are the index
// key columns followed by the row locator (for uniqueness); payloads hold
// the included columns followed by the locator.
type indexData struct {
	def       schema.IndexDef
	tree      *btree.Tree
	keyOrds   []int // ordinals of key columns in the base table
	inclOrds  []int
	createdAt time.Time
	sizeBytes int64
}

func (ix *indexData) entryFor(t *tableData, row value.Row, loc value.Key) (value.Key, value.Row) {
	key := make(value.Key, 0, len(ix.keyOrds)+len(loc))
	for _, o := range ix.keyOrds {
		key = append(key, row[o])
	}
	key = append(key, loc...)
	payload := make(value.Row, 0, len(ix.inclOrds)+len(loc))
	for _, o := range ix.inclOrds {
		payload = append(payload, row[o])
	}
	payload = append(payload, loc...)
	return key, payload
}

// ---- catalog implementation (optimizer.Catalog) ----

// Table implements optimizer.Catalog.
func (d *Database) Table(name string) (optimizer.TableInfo, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[strings.ToLower(name)]
	if !ok {
		return optimizer.TableInfo{}, false
	}
	return optimizer.TableInfo{
		Def:             t.def,
		RowCount:        t.rowCount,
		DataPages:       t.dataPages(),
		ClusteredHeight: t.clusteredHeight(),
	}, true
}

// Indexes implements optimizer.Catalog. The result is sorted by index
// name: the optimizer breaks cost ties by candidate order, so handing it
// map-iteration order would make plan choice (and everything downstream —
// measured costs, noise draws, recommendations) vary run to run.
func (d *Database) Indexes(table string) []optimizer.IndexInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []optimizer.IndexInfo
	for _, ix := range d.indexes {
		if !strings.EqualFold(ix.def.Table, table) {
			continue
		}
		out = append(out, optimizer.IndexInfo{
			Def:       ix.def,
			Height:    ix.tree.Height(),
			LeafPages: int64(ix.tree.LeafCount()),
			RowCount:  int64(ix.tree.Len()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Def.Name < out[j].Def.Name })
	return out
}

// ColumnStats implements optimizer.Catalog, lazily refreshing stale
// statistics with a sampled rebuild.
func (d *Database) ColumnStats(table, column string) (*stats.ColumnStats, bool) {
	key := statKey(table, column)
	d.mu.RLock()
	st, ok := d.colStat[key]
	var rowCount int64
	if t, tok := d.tables[strings.ToLower(table)]; tok {
		rowCount = t.rowCount
	}
	d.mu.RUnlock()
	if ok && st != nil {
		drift := abs64(rowCount - int64(st.RowCount))
		if float64(drift) <= d.cfg.StatsRefreshFraction*maxF(st.RowCount, 1) {
			return st, true
		}
	}
	// (Re)build with sampling.
	return d.rebuildColumnStats(table, column)
}

func statKey(table, column string) string {
	return strings.ToLower(table) + "." + strings.ToLower(column)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// rebuildColumnStats builds sampled statistics for a column. A rebuild
// over data unchanged since the last build is skipped: the stats RNG
// stream is name-keyed (derived fresh per build), so re-running it would
// produce a bit-identical statistic while needlessly flushing the
// plan-cost cache.
func (d *Database) rebuildColumnStats(table, column string) (*stats.ColumnStats, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tables[strings.ToLower(table)]
	if !ok {
		return nil, false
	}
	ord := t.def.ColumnIndex(column)
	if ord < 0 {
		return nil, false
	}
	key := statKey(table, column)
	if st, ok2 := d.colStat[key]; ok2 && st != nil && d.statsVersion[key] == d.dataVersion {
		return st, true
	}
	vals := make([]value.Value, 0, t.rowCount)
	collect := func(row value.Row) { vals = append(vals, row[ord]) }
	if t.heap != nil {
		t.heap.Scan(func(_ storage.RID, r value.Row) bool { collect(r); return true })
	} else {
		t.clustered.Ascend(func(e btree.Entry) bool { collect(e.Payload); return true })
	}
	st := stats.BuildSampled(column, vals, d.cfg.StatsSampleRate, d.rng.Child("stats/"+table+"/"+column), d.clock.Now())
	d.colStat[key] = st
	d.statsVersion[key] = d.dataVersion
	d.costCache.Invalidate(costcache.StatsRefresh)
	if d.statsRefreshHook != nil {
		d.statsRefreshHook(t.def.Name, column)
	}
	return st, true
}

// RebuildAllStats rebuilds statistics for every column (used by tests and
// after bulk loads).
func (d *Database) RebuildAllStats() {
	d.mu.RLock()
	type tc struct{ table, col string }
	var all []tc
	//lint:ignore maporder per-column rebuilds are independent: stats RNG streams are name-keyed (sim.RNG.Child) and all rebuilds share one virtual timestamp
	for _, t := range d.tables {
		for _, c := range t.def.Columns {
			all = append(all, tc{t.def.Name, c.Name})
		}
	}
	d.mu.RUnlock()
	for _, x := range all {
		d.rebuildColumnStats(x.table, x.col)
	}
}

// TableNames lists the tables, sorted.
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for _, t := range d.tables {
		out = append(out, t.def.Name)
	}
	sort.Strings(out)
	return out
}

// IndexDefs lists every index definition, sorted by name.
func (d *Database) IndexDefs() []schema.IndexDef {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]schema.IndexDef, 0, len(d.indexes))
	for _, ix := range d.indexes {
		out = append(out, ix.def.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// IndexDef returns one index definition by name.
func (d *Database) IndexDef(name string) (schema.IndexDef, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ix, ok := d.indexes[strings.ToLower(name)]
	if !ok {
		return schema.IndexDef{}, false
	}
	return ix.def.Clone(), true
}

// IndexSizeBytes returns the estimated on-disk size of an index.
func (d *Database) IndexSizeBytes(name string) (int64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ix, ok := d.indexes[strings.ToLower(name)]
	if !ok {
		return 0, false
	}
	return ix.sizeBytes, true
}

// RowCount returns a table's row count.
func (d *Database) RowCount(table string) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if t, ok := d.tables[strings.ToLower(table)]; ok {
		return t.rowCount
	}
	return 0
}

// MarkIndexHinted marks an index as referenced by query hints or forced
// plans, excluding it from automatic drops (§5.4).
func (d *Database) MarkIndexHinted(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	ix, ok := d.indexes[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("engine: no index %q", name)
	}
	ix.def.Hinted = true
	return nil
}

var _ optimizer.Catalog = (*Database)(nil)
