package fleet

import (
	"fmt"

	"autoindex/internal/snap"
	"autoindex/internal/workload"
)

// Tenant hibernation: the serialize/rehydrate pair the scale harness uses
// to keep only a bounded resident set of tenants fully materialized.
//
// A hibernated tenant is one sealed snap envelope (magic + version +
// length + checksum + body) holding the tenant's workload state (RNG
// position, id streams) and the full engine snapshot (schema, storage,
// indexes, statistics, query store, DMVs — with rows and definitions the
// tenant still shares with its archetype written as references, not
// values). The Tenant and Database shells stay resident, so every pointer
// the control plane, chaos harness or bulk-feed machinery holds into the
// tenant remains valid across a hibernate/rehydrate cycle; only the heavy
// interior state is dropped and rebuilt.
//
// Hibernation happens only at hour barriers, after the engine has been
// parked (Database.Park) — the plan-cost cache is empty, every lock lease
// has expired, and the tenant clock is about to be realigned — so the
// snapshot never needs to serialize caches, locks or clocks, and a
// rehydrated tenant is byte-for-byte indistinguishable from a twin that
// never hibernated.

// hibernateTenant serializes a parked tenant into its compact hibernated
// form. The tenant's interior state is untouched; pair with
// (*workload.Tenant).Release to actually free it.
func hibernateTenant(tn *workload.Tenant) []byte {
	var w snap.Writer
	tn.EncodeTo(&w)
	return w.Seal()
}

// rehydrateTenant rebuilds a tenant in place from a hibernateTenant
// snapshot. It is the fuzz-hardened decode entry point: any corruption —
// bit flips (checksum), truncation, length lies, structural violations,
// trailing garbage — returns an error wrapping snap.ErrCorrupt and never
// panics.
func rehydrateTenant(tn *workload.Tenant, blob []byte) error {
	r, err := snap.Open(blob)
	if err != nil {
		return err
	}
	if err := tn.DecodeFrom(r); err != nil {
		return err
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("hibernate: trailing bytes after tenant state: %w", err)
	}
	return nil
}
