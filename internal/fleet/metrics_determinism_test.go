package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// metricsSnapshot runs a chaos-seeded ops simulation at the given worker
// count and returns the deterministic metrics JSON — the same bytes
// cmd/fleetsim writes for -metrics-out.
func metricsSnapshot(t *testing.T, workers int) []byte {
	t.Helper()
	spec := Spec{Databases: 4, MixedTiers: true, Seed: 424242, UserIndexes: true, Workers: workers}
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOpsConfig()
	cfg.Days = 3
	cfg.StatementsPerHour = 12
	cfg.AutoImplementFraction = 1.0
	cfg.NewTenantEvery = 48 * time.Hour
	cfg.Chaos = ChaosConfig{Enabled: true, FaultRate: 0.08, CrashRate: 0.05}
	if _, err := f.RunOps(Spec{Seed: spec.Seed, UserIndexes: true}, cfg); err != nil {
		t.Fatal(err)
	}
	b, err := f.Metrics.MarshalDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMetricsDeterministicAcrossWorkers extends the harness's
// bit-identical guarantee to observability data: the non-volatile
// metrics snapshot must be byte-identical at -workers 1, 4, and 8 under
// a chaos seed. Counters and histograms are int64 with commutative
// atomic adds, spans are emitted only from serial control-plane
// sections, and scheduling-dependent metrics are excluded as volatile —
// this test is what keeps all three of those properties honest.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation is slow")
	}
	b1 := metricsSnapshot(t, 1)
	b4 := metricsSnapshot(t, 4)
	b8 := metricsSnapshot(t, 8)
	if !bytes.Equal(b1, b4) {
		t.Errorf("metrics JSON differs between -workers 1 and -workers 4:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", b1, b4)
	}
	if !bytes.Equal(b1, b8) {
		t.Errorf("metrics JSON differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", b1, b8)
	}

	// The snapshot must actually contain signal, not zeroes: a fleet run
	// with auto-implementation exercises the optimizer, recommenders,
	// engine DDL, control plane, and tracer.
	var doc struct {
		Metrics []struct {
			Name  string `json:"name"`
			Value *int64 `json:"value"`
			Count *int64 `json:"count"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatal(err)
	}
	nonZero := map[string]bool{}
	for _, m := range doc.Metrics {
		if m.Name == "fleet.worker_shard_items" {
			t.Error("volatile metric leaked into the deterministic snapshot")
		}
		if (m.Value != nil && *m.Value > 0) || (m.Count != nil && *m.Count > 0) {
			nonZero[m.Name] = true
		}
	}
	for _, want := range []string{
		"optimizer.plans",
		"optimizer.whatif_calls",
		"engine.statements_executed",
		"engine.index_builds",
		"engine.index_build_ms",
		"engine.fault_trips",
		"controlplane.transitions",
		"controlplane.validations",
		"controlplane.step_ms",
		"controlplane.crash_recoveries",
		"fleet.tenant_hours",
		"trace.spans",
	} {
		if !nonZero[want] {
			t.Errorf("expected metric %s to be non-zero after a chaos ops run", want)
		}
	}
}
