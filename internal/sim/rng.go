package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
)

// RNG is a seeded random source safe for concurrent use. Components derive
// named child streams so that adding a new consumer of randomness does not
// perturb the draws seen by existing consumers — important for reproducible
// fleet experiments.
type RNG struct {
	mu   sync.Mutex
	rand *rand.Rand
	src  *countingSource
	seed int64
}

// countingSource wraps the stdlib generator and counts how many times it
// advanced. Go's source steps its state exactly once per Int63/Uint64
// call, so the count is an exact stream position even through rejection
// loops (Int63n) and ziggurat draws (NormFloat64): replaying N raw steps
// from the seed reproduces the stream regardless of which high-level
// draw methods consumed them. This is what lets a hibernated tenant
// serialize an RNG as (seed, position) instead of raw generator state.
type countingSource struct {
	src   rand.Source64
	steps uint64
}

func (s *countingSource) Int63() int64 {
	s.steps++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.steps++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.steps = 0
	s.src.Seed(seed)
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	cs := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &RNG{rand: rand.New(cs), src: cs, seed: seed}
}

// NewRNGAt returns the stream for seed fast-forwarded to position pos, as
// previously reported by Pos(): the returned stream produces exactly the
// draws the original would have produced after its first pos raw steps.
func NewRNGAt(seed int64, pos uint64) *RNG {
	r := NewRNG(seed)
	for i := uint64(0); i < pos; i++ {
		r.src.src.Uint64()
	}
	r.src.steps = pos
	return r
}

// Pos returns the stream position: the number of raw generator steps
// consumed so far. Together with Seed it fully identifies the stream
// state for serialization (see NewRNGAt).
func (r *RNG) Pos() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.src.steps
}

// Child derives an independent stream keyed by name. The derivation is
// stable: the same parent seed and name always yield the same stream.
func (r *RNG) Child(name string) *RNG {
	return NewRNG(DeriveSeed(r.seed, name))
}

// DeriveSeed folds a string key into a seed: seed ^ FNV-64a(key). It is
// the single derivation rule behind Child and TenantRNG, exposed so that
// components can reason about (and test) stream independence.
func DeriveSeed(seed int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return seed ^ int64(h.Sum64())
}

// TenantRNG returns the root RNG stream for one tenant, derived as
// seed ^ hash(tenantID). Parallel fleet simulations give every tenant its
// own stream (and further Child streams below it) so that draws never
// depend on the order tenants are scheduled across workers — the same
// (seed, tenantID) pair yields bit-identical draws at any worker count.
func TenantRNG(seed int64, tenantID string) *RNG {
	return NewRNG(DeriveSeed(seed, "tenant/"+tenantID))
}

// Seed returns the seed this stream was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rand.Intn(n)
}

// Int63n returns a uniform int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rand.Int63n(n)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rand.Float64()
}

// NormFloat64 returns a standard normal draw.
func (r *RNG) NormFloat64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rand.NormFloat64()
}

// ExpFloat64 returns an exponential draw with rate 1.
func (r *RNG) ExpFloat64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rand.ExpFloat64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rand.Perm(n)
}

// Shuffle randomises the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rand.Shuffle(n, swap)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Zipf draws from a Zipf distribution over [0, n) with exponent s > 1.
// Skewed access patterns are what make some columns far more selective in
// practice than uniform statistics predict — one source of optimizer error.
type Zipf struct {
	z *rand.Zipf
	r *RNG
}

// NewZipf constructs a Zipf sampler over [0, n). s must be > 1.
func (r *RNG) NewZipf(s float64, n uint64) *Zipf {
	child := r.Child("zipf")
	child.mu.Lock()
	defer child.mu.Unlock()
	return &Zipf{z: rand.NewZipf(child.rand, s, 1, n-1), r: child}
}

// Uint64 draws the next Zipf value.
func (z *Zipf) Uint64() uint64 {
	z.r.mu.Lock()
	defer z.r.mu.Unlock()
	return z.z.Uint64()
}

// Noise models the run-to-run variance of execution measurements in an
// uncontrolled production setting (concurrency, diurnal effects). The
// validator must see through this noise with statistical tests, exactly as
// in the paper.
type Noise struct {
	rng *RNG
	// CV is the coefficient of variation applied multiplicatively.
	CV float64
}

// NewNoise returns a noise model with coefficient of variation cv drawing
// from rng.
func NewNoise(rng *RNG, cv float64) *Noise {
	return &Noise{rng: rng.Child("noise"), CV: cv}
}

// NewNoiseAt returns the noise model NewNoise(rng, cv) fast-forwarded to
// stream position pos — the serialization counterpart of Pos, used when a
// hibernated tenant engine rehydrates.
func NewNoiseAt(rng *RNG, cv float64, pos uint64) *Noise {
	n := NewNoise(rng, cv)
	n.rng = NewRNGAt(n.rng.seed, pos)
	return n
}

// Pos returns the noise stream's position (see RNG.Pos).
func (n *Noise) Pos() uint64 { return n.rng.Pos() }

// Apply perturbs v multiplicatively: v * max(0.05, 1 + cv*N(0,1)).
// The floor keeps perturbed costs positive.
func (n *Noise) Apply(v float64) float64 {
	if n == nil || n.CV == 0 {
		return v
	}
	f := 1 + n.CV*n.rng.NormFloat64()
	if f < 0.05 {
		f = 0.05
	}
	return v * f
}

// LogNormal draws a log-normal value with the given median and sigma of the
// underlying normal. Used by workload generators for data/parameter sizes.
func (r *RNG) LogNormal(median, sigma float64) float64 {
	return median * math.Exp(sigma*r.NormFloat64())
}
