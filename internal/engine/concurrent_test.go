package engine

// Concurrency: the control plane's micro-services, replayers and B-instance
// forks can touch a database from multiple goroutines. Statement execution
// serializes on the database mutex; catalog reads, Query Store and DMV
// stores have their own synchronization. This test hammers one database
// from many goroutines (run with -race to make it bite).

import (
	"fmt"
	"sync"
	"testing"
)

func TestConcurrentMixedLoad(t *testing.T) {
	d, _ := testDB(t)
	mustExec(t, d, `CREATE INDEX ix_conc ON orders (customer_id)`)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var sql string
				switch (g + i) % 4 {
				case 0:
					sql = fmt.Sprintf(`SELECT id FROM orders WHERE customer_id = %d`, i%50)
				case 1:
					sql = fmt.Sprintf(`UPDATE orders SET amount = %d.5 WHERE id = %d`, i, (g*40+i)%500)
				case 2:
					sql = fmt.Sprintf(`SELECT COUNT(*) FROM orders WHERE status = 'open'`)
				default:
					sql = fmt.Sprintf(`INSERT INTO orders (id, customer_id, status, amount, created) VALUES (%d, %d, 'conc', 1.5, %d)`,
						100000+g*1000+i, i%50, i)
				}
				if _, err := d.Exec(sql); err != nil {
					errs <- fmt.Errorf("g%d i%d %q: %w", g, i, sql, err)
					return
				}
			}
		}(g)
	}
	// Concurrent readers of catalog/DMV/Query Store surfaces.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d.IndexDefs()
				d.MissingIndexDMV().Snapshot()
				d.UsageDMV().All()
				d.QueryStore().Len()
				d.Table("orders")
				d.ColumnStats("orders", "customer_id")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The database is still coherent.
	res := mustExec(t, d, `SELECT COUNT(*) FROM orders WHERE status = 'conc'`)
	if res.Rows[0][0].I != 8*10 {
		t.Fatalf("concurrent inserts lost: %v", res.Rows[0][0])
	}
}
