// Command autoindexd runs the auto-indexing service over a simulated
// multi-tenant region and reports the service's activity: per-database
// recommendations, implementations, validations and reverts, plus the
// aggregated operational statistics.
//
// After the simulated run it can keep serving: -listen exposes the §2
// REST management API, and -sql-listen exposes a MySQL-style SQL front
// end over the tenant databases. Statements executed by real clients
// are captured into each tenant's Query Store, and a live loop keeps
// advancing virtual time and stepping the control plane so the tuning
// pipeline runs over the captured workload. Both servers drain
// gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	autoindexd -databases 6 -days 8 -seed 42 -auto 0.5 -v
//	autoindexd -databases 2 -days 1 -listen :8080 -sql-listen :3306
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autoindex/internal/controlplane"
	"autoindex/internal/engine"
	"autoindex/internal/fleet"
	"autoindex/internal/serve"
)

func main() {
	var (
		databases  = flag.Int("databases", 6, "number of tenant databases")
		days       = flag.Int("days", 8, "virtual days to run")
		seed       = flag.Int64("seed", 42, "fleet seed")
		auto       = flag.Float64("auto", 0.5, "fraction of databases with auto-implementation")
		stmtsHr    = flag.Int("stmts", 30, "statements per database per virtual hour")
		verbose    = flag.Bool("v", false, "print per-database action history")
		listen     = flag.String("listen", "", "after the run, serve the §2 REST management API on this address (e.g. :8080)")
		sqlListen  = flag.String("sql-listen", "", "after the run, serve the MySQL-style SQL protocol on this address (e.g. :3306)")
		sqlPass    = flag.String("sql-password", "autoindex", "password for SQL sessions (any username)")
		sqlRate    = flag.Float64("sql-rate", 0, "per-tenant statement rate limit in stmts/sec (0 = unlimited)")
		sqlMaxSess = flag.Int("sql-max-sessions", 128, "maximum concurrent SQL sessions")
		liveStep   = flag.Duration("live-step", 2*time.Second, "wall interval between live ticks (each tick advances one virtual hour and steps the control plane)")
	)
	flag.Parse()

	fl, err := fleet.Build(fleet.Spec{
		Databases:   *databases,
		MixedTiers:  true,
		Seed:        *seed,
		UserIndexes: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "autoindexd:", err)
		os.Exit(1)
	}
	cfg := fleet.DefaultOpsConfig()
	cfg.Days = *days
	cfg.StatementsPerHour = *stmtsHr
	cfg.AutoImplementFraction = *auto

	fmt.Printf("autoindexd: managing %d databases for %d virtual days (seed %d)\n\n",
		*databases, *days, *seed)
	res, err := fl.RunOps(fleet.Spec{Seed: *seed, UserIndexes: true}, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autoindexd:", err)
		os.Exit(1)
	}

	if *verbose {
		for _, tn := range fl.Tenants {
			hist := res.Plane.History(tn.DB.Name())
			active := res.Plane.ListRecommendations(tn.DB.Name())
			if len(hist) == 0 && len(active) == 0 {
				continue
			}
			fmt.Printf("%s (%s):\n", tn.DB.Name(), tn.DB.Tier())
			for _, r := range active {
				fmt.Printf("  [Active]      %s\n", r.Describe())
			}
			for _, r := range hist {
				fmt.Printf("  [%-11s] %s %s", r.State, r.Action, r.Index.Name)
				if r.Validation != nil {
					fmt.Printf(" — %s", r.Validation.Verdict)
				}
				fmt.Println()
			}
		}
		fmt.Println()
	}

	fmt.Println("operational summary (cf. paper §8.1):")
	fmt.Println(" ", res.Stats.String())
	fmt.Printf("  queries >2x faster: %d; databases with >50%% aggregate CPU reduction: %d; steady-state databases: %d\n",
		res.QueriesTwiceFaster, res.DatabasesHalvedCPU, res.SteadyStateDatabases)
	fmt.Println("\ntelemetry counters:")
	for _, c := range res.Plane.Telemetry().Counters() {
		fmt.Println("  ", c)
	}
	if inc := res.Plane.StateStore().Incidents(); len(inc) > 0 {
		fmt.Printf("\n%d incidents for on-call review:\n", len(inc))
		for _, i := range inc {
			fmt.Printf("  [%s] %s %s: %s\n", i.At.Format(time.RFC3339), i.Database, i.Kind, i.Message)
		}
	}

	if *listen == "" && *sqlListen == "" {
		return
	}

	lookup := func(name string) (*engine.Database, bool) {
		for _, tn := range fl.Tenants {
			if tn.DB.Name() == name {
				return tn.DB, true
			}
		}
		return nil, false
	}

	var sqlSrv *serve.Server
	if *sqlListen != "" {
		sqlSrv = serve.New(serve.Config{
			Lookup:      lookup,
			Password:    *sqlPass,
			MaxSessions: *sqlMaxSess,
			TenantRate:  *sqlRate,
			Metrics:     fl.Metrics,
		})
		sqlLn, err := net.Listen("tcp", *sqlListen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "autoindexd:", err)
			os.Exit(1)
		}
		go func() {
			if err := sqlSrv.Serve(sqlLn); err != nil {
				fmt.Fprintln(os.Stderr, "autoindexd: sql server:", err)
			}
		}()
		fmt.Printf("\nserving SQL protocol on %s (any user, password %q, databases db000..db%03d)\n",
			sqlLn.Addr(), *sqlPass, *databases-1)
	}

	var httpSrv *http.Server
	if *listen != "" {
		// The management API plus the observability surface: /metrics is
		// the full text exposition (volatile metrics included) of the
		// run's registry; /livestats reports live SQL capture feeding the
		// tuner; /debug/pprof/* is the stock net/http/pprof handler set.
		mux := http.NewServeMux()
		mux.Handle("/", res.Plane.HTTPHandler())
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := fl.Metrics.WriteText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("GET /livestats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(liveStats(fl, res.Plane, sqlSrv))
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		httpLn, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "autoindexd:", err)
			os.Exit(1)
		}
		httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "autoindexd: http server:", err)
			}
		}()
		fmt.Printf("\nserving management API on %s (GET /databases, /opstats, /metrics, /livestats, /debug/pprof/, ...)\n", httpLn.Addr())
	}

	// Live loop: while SQL clients execute statements in real time, each
	// tick advances the fleet's virtual clocks by one hour and steps the
	// control plane, so analysis cadences and validation windows elapse
	// and the tuner runs over the live-captured workload.
	stop := make(chan struct{})
	loopDone := make(chan struct{})
	if *sqlListen != "" {
		go func() {
			defer close(loopDone)
			//lint:ignore wallclock the live loop paces virtual time against real client traffic
			ticker := time.NewTicker(*liveStep)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					fl.AdvanceLive(time.Hour)
					res.Plane.Step()
				}
			}
		}()
	} else {
		close(loopDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nautoindexd: shutting down")
	close(stop)
	<-loopDone
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if sqlSrv != nil {
		if err := sqlSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "autoindexd: sql drain:", err)
		}
	}
	if httpSrv != nil {
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "autoindexd: http drain:", err)
		}
	}
	fmt.Println("autoindexd: shutdown complete")
}

// LiveStats is the /livestats payload: how much live SQL traffic has
// been captured and whether the tuner has consumed it.
type LiveStats struct {
	SessionsActive            int                `json:"sessions_active"`
	Capture                   serve.CaptureStats `json:"capture"`
	AnalysisLivePasses        int64              `json:"analysis_live_passes"`
	LiveDrivenRecommendations int64              `json:"live_driven_recommendations"`
	Databases                 []DBLiveStats      `json:"databases"`
}

// DBLiveStats is one tenant's execution split.
type DBLiveStats struct {
	Name           string `json:"name"`
	Executions     int64  `json:"executions"`
	LiveExecutions int64  `json:"live_executions"`
}

func liveStats(fl *fleet.Fleet, plane *controlplane.ControlPlane, sqlSrv *serve.Server) LiveStats {
	st := LiveStats{
		AnalysisLivePasses:        plane.Telemetry().Counter("analysis.live_workload"),
		LiveDrivenRecommendations: plane.Telemetry().Counter("recommendations.live_driven"),
	}
	if sqlSrv != nil {
		st.SessionsActive = sqlSrv.ActiveSessions()
		st.Capture = sqlSrv.CaptureStats()
	}
	for _, tn := range fl.Tenants {
		total, live := tn.DB.QueryStore().ExecutionTotals()
		st.Databases = append(st.Databases, DBLiveStats{Name: tn.DB.Name(), Executions: total, LiveExecutions: live})
	}
	return st
}
