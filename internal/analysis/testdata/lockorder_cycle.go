// Lockorder cycle fixture: two lock-disciplined functions that acquire
// the same pair of mutexes in opposite orders. Each function is clean
// on its own — lockdiscipline has nothing to say — but together they
// can deadlock: one goroutine in lockAB holding ordA while another in
// lockBA holds ordB leaves both waiting forever. Minimized from the
// shape of the binstance replay path racing the query-store recorder.
package fixture

import "sync"

type ordPair struct {
	ordA sync.Mutex
	ordB sync.Mutex
	n    int
}

func lockAB(p *ordPair) {
	p.ordA.Lock()
	p.ordB.Lock() // want "lockorder: lock acquisition order cycle between testdata.ordPair.ordA, testdata.ordPair.ordB"
	p.n++
	p.ordB.Unlock()
	p.ordA.Unlock()
}

func lockBA(p *ordPair) {
	p.ordB.Lock()
	p.ordA.Lock()
	p.n--
	p.ordA.Unlock()
	p.ordB.Unlock()
}

// consistent acquires the same pair in lockAB's order: an edge, but no
// cycle, so no diagnostic.
type ordOK struct {
	first  sync.Mutex
	second sync.Mutex
	n      int
}

func consistentOne(p *ordOK) {
	p.first.Lock()
	p.second.Lock()
	p.n++
	p.second.Unlock()
	p.first.Unlock()
}

func consistentTwo(p *ordOK) {
	p.first.Lock()
	p.second.Lock()
	p.n--
	p.second.Unlock()
	p.first.Unlock()
}
