package autoindex

// Live-traffic smoke test: build the real binaries, boot autoindexd
// with both listeners, drive it with sqlload over the MySQL-style wire
// protocol, and watch /livestats until the captured traffic has flowed
// into the tuner. This is the one test that exercises the shipped
// artifacts end to end, processes and all.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"testing"
	"time"
)

var (
	sqlAddrRe  = regexp.MustCompile(`serving SQL protocol on (\S+)`)
	httpAddrRe = regexp.MustCompile(`serving management API on (\S+)`)
)

func TestLiveTrafficSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	dir := t.TempDir()
	autoindexd := filepath.Join(dir, "autoindexd")
	sqlload := filepath.Join(dir, "sqlload")
	for bin, pkg := range map[string]string{autoindexd: "./cmd/autoindexd", sqlload: "./cmd/sqlload"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	srv := exec.Command(autoindexd,
		"-databases", "2", "-days", "1", "-stmts", "8", "-seed", "42",
		"-listen", "127.0.0.1:0", "-sql-listen", "127.0.0.1:0", "-live-step", "150ms")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = srv.Process.Kill()
		_, _ = srv.Process.Wait()
	})

	// The daemon prints its listener addresses once the simulated run
	// finishes; scan stdout for both.
	addrs := make(chan [2]string, 1)
	go func() {
		var sqlAddr, httpAddr string
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if m := sqlAddrRe.FindStringSubmatch(line); m != nil {
				sqlAddr = m[1]
			}
			if m := httpAddrRe.FindStringSubmatch(line); m != nil {
				httpAddr = m[1]
			}
			if sqlAddr != "" && httpAddr != "" {
				addrs <- [2]string{sqlAddr, httpAddr}
				sqlAddr, httpAddr = "", ""
			}
		}
	}()
	var sqlAddr, httpAddr string
	select {
	case a := <-addrs:
		sqlAddr, httpAddr = a[0], a[1]
	case <-time.After(120 * time.Second):
		t.Fatal("autoindexd did not announce its listeners")
	}

	load := exec.Command(sqlload,
		"-addr", sqlAddr, "-db", "db000", "-fleet-seed", "42",
		"-conns", "2", "-stmts", "60", "-prepared", "0.3")
	if out, err := load.CombinedOutput(); err != nil {
		t.Fatalf("sqlload: %v\n%s", err, out)
	}

	// Poll /livestats until the live statements are visible in db000's
	// Query Store and at least one tuning pass has mined live workload.
	type dbStats struct {
		Name           string `json:"name"`
		LiveExecutions int64  `json:"live_executions"`
	}
	type liveStats struct {
		AnalysisLivePasses int64 `json:"analysis_live_passes"`
		Capture            struct {
			Statements int64 `json:"statements"`
		} `json:"capture"`
		Databases []dbStats `json:"databases"`
	}
	deadline := time.Now().Add(60 * time.Second)
	var last liveStats
	for {
		if time.Now().After(deadline) {
			t.Fatalf("live traffic never reached the tuner: %+v", last)
		}
		resp, err := http.Get(fmt.Sprintf("http://%s/livestats", httpAddr))
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&last)
			resp.Body.Close()
			if err == nil {
				var live int64
				for _, d := range last.Databases {
					if d.Name == "db000" {
						live = d.LiveExecutions
					}
				}
				if live >= 60 && last.Capture.Statements >= 60 && last.AnalysisLivePasses >= 1 {
					break
				}
			}
		}
		time.Sleep(250 * time.Millisecond)
	}

	// SIGTERM must drain both servers and exit cleanly.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("autoindexd exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("autoindexd did not exit after SIGTERM")
	}
}
