package value

import "strings"

// Row is an ordered tuple of values.
type Row []Value

// Clone returns a copy of r.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a parenthesised literal list.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Key is a composite comparison key (e.g., the key columns of an index
// entry). It compares lexicographically.
type Key []Value

// CompareKeys orders two composite keys lexicographically; a shorter key
// that is a prefix of a longer one sorts first.
func CompareKeys(a, b Key) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// HashKey combines the hashes of all values in the key.
func HashKey(k Key) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, v := range k {
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h
}

// KeyEqual reports whether two keys are component-wise equal (NULL equals
// NULL here, since this is used for grouping, not predicate evaluation).
func KeyEqual(a, b Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].K == Null && b[i].K == Null {
			continue
		}
		if Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}
