package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureOverrides adjusts how individual corpus files are loaded so
// the fixtures can exercise unit-level behavior (package-path
// exemptions, test-file skipping) that a plain directory load cannot.
var fixtureOverrides = map[string]struct {
	pkgPath string // type-check under this import path instead
	asTest  bool   // mark the file as a _test.go source
}{
	"wallclock_sim.go":            {pkgPath: "autoindex/internal/sim"},
	"wallclock_wire.go":           {pkgPath: "autoindex/internal/wire"},
	"wallclock_serve.go":          {pkgPath: "autoindex/internal/serve"},
	"wallclock_testfile.go":       {asTest: true},
	"metricsdiscipline_timing.go": {asTest: true},
	"detflow_capture.go":          {pkgPath: "autoindex/internal/serve"},
	"leakcheck_serve.go":          {pkgPath: "autoindex/internal/serve"},
}

// want pins one expected diagnostic (a regexp over "check: message")
// to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

func collectWants(t *testing.T, path string) []*want {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	var wants []*want
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
		}
		wants = append(wants, &want{file: path, line: i + 1, re: re, raw: m[1]})
	}
	return wants
}

// TestFixtureCorpus loads every file in testdata/ as its own analysis
// unit, runs the full suite, and asserts an exact bijection between
// diagnostics and want annotations: every diagnostic must land on a
// line carrying a matching want, and every want must be hit.
func TestFixtureCorpus(t *testing.T) {
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(moduleRoot, "internal", "analysis", "testdata")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	var units []*Unit
	var wants []*want
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		pkgPath := "autoindex/internal/analysis/testdata"
		ov := fixtureOverrides[name]
		if ov.pkgPath != "" {
			pkgPath = ov.pkgPath
		}
		pkg, info, err := l.check(pkgPath, []*ast.File{f}, nil)
		if err != nil {
			t.Fatalf("type-checking %s: %v", name, err)
		}
		u := &Unit{
			Path:      pkgPath,
			Dir:       dir,
			Fset:      l.fset,
			Files:     []*ast.File{f},
			TestFiles: make(map[*ast.File]bool),
			Pkg:       pkg,
			Info:      info,
		}
		if ov.asTest {
			u.TestFiles[f] = true
		}
		units = append(units, u)
		wants = append(wants, collectWants(t, full)...)
	}
	if len(units) == 0 {
		t.Fatal("no fixture files found")
	}
	if len(wants) == 0 {
		t.Fatal("no want annotations found in fixtures")
	}

	diags := Run(units, Analyzers())

	for _, d := range diags {
		text := d.Check + ": " + d.Message
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s:%d:%d: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic: %s:%d: want %q", w.file, w.line, w.raw)
		}
	}
}

// checkUnit type-checks one in-memory source file under a neutral
// module path and runs the named analyzers over it.
func checkUnit(t *testing.T, filename, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	return checkUnitAt(t, filename, src, "autoindex/internal/analysis/inline", analyzers)
}

// checkUnitAt is checkUnit with an explicit import path, for analyzers
// whose behavior depends on the package (leakcheck's serving-path
// scope, the sanctioned-package exemptions).
func checkUnitAt(t *testing.T, filename, src, pkgPath string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	f, err := parser.ParseFile(l.fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	pkg, info, err := l.check(pkgPath, []*ast.File{f}, nil)
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	u := &Unit{
		Path:      pkgPath,
		Fset:      l.fset,
		Files:     []*ast.File{f},
		TestFiles: make(map[*ast.File]bool),
		Pkg:       pkg,
		Info:      info,
	}
	return Run([]*Unit{u}, analyzers)
}

// TestDiagnosticPositions asserts the exact file:line:col every
// analyzer reports for a minimal trigger, so positions cannot silently
// drift to the wrong token.
func TestDiagnosticPositions(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *Analyzer
		src      string
		pkgPath  string // defaults to the neutral inline path
		pos      string // "line:col" of the single expected diagnostic
		substr   string
	}{
		{
			name:     "maporder reports the for keyword",
			analyzer: MapOrderAnalyzer,
			src: "package p\n" +
				"\n" +
				"func f(m map[string]int) []string {\n" +
				"\tvar out []string\n" +
				"\tfor k := range m {\n" + // line 5, "for" at col 2 (after one tab)
				"\t\tout = append(out, k)\n" +
				"\t}\n" +
				"\treturn out\n" +
				"}\n",
			pos:    "5:2",
			substr: "append to out",
		},
		{
			name:     "wallclock reports the call expression",
			analyzer: WallClockAnalyzer,
			src: "package p\n" +
				"\n" +
				"import \"time\"\n" +
				"\n" +
				"func f() time.Time {\n" +
				"\treturn time.Now()\n" + // line 6, "time" at col 9 after tab+"return "
				"}\n",
			pos:    "6:9",
			substr: "time.Now reads the wall clock",
		},
		{
			name:     "errcompare reports the comparison",
			analyzer: ErrCompareAnalyzer,
			src: "package p\n" +
				"\n" +
				"import \"errors\"\n" +
				"\n" +
				"var errX = errors.New(\"x\")\n" +
				"\n" +
				"func f(err error) bool {\n" +
				"\treturn err == errX\n" + // line 8, "err" at col 9
				"}\n",
			pos:    "8:9",
			substr: "error compared with == against sentinel errX",
		},
		{
			name:     "lockdiscipline reports the unpaired Lock",
			analyzer: LockDisciplineAnalyzer,
			src: "package p\n" +
				"\n" +
				"import \"sync\"\n" +
				"\n" +
				"var mu sync.Mutex\n" +
				"\n" +
				"func f() {\n" +
				"\tmu.Lock()\n" + // line 8, "mu" at col 2
				"}\n",
			pos:    "8:2",
			substr: "Lock of mu without a matching Unlock",
		},
		{
			name:     "metricsdiscipline reports the runtime registration",
			analyzer: MetricsDisciplineAnalyzer,
			src: "package p\n" +
				"\n" +
				"import \"autoindex/internal/metrics\"\n" +
				"\n" +
				"func f() *metrics.Desc {\n" +
				"\treturn metrics.NewCounterDesc(\"p.x\", \"y\")\n" + // line 6, "metrics" at col 9
				"}\n",
			pos:    "6:9",
			substr: "metrics.NewCounterDesc called at runtime",
		},
		{
			name:     "lockorder reports the re-acquiring call",
			analyzer: LockOrderAnalyzer,
			src: "package p\n" +
				"\n" +
				"import \"sync\"\n" +
				"\n" +
				"type box struct {\n" +
				"\tmu sync.Mutex\n" +
				"}\n" +
				"\n" +
				"func (b *box) outer() {\n" +
				"\tb.mu.Lock()\n" +
				"\tdefer b.mu.Unlock()\n" +
				"\tb.inner()\n" + // line 12, "b" at col 2
				"}\n" +
				"\n" +
				"func (b *box) inner() {\n" +
				"\tb.mu.Lock()\n" +
				"\tb.mu.Unlock()\n" +
				"}\n",
			pos:    "12:2",
			substr: "may re-acquire it",
		},
		{
			name:     "detflow reports the sink call",
			analyzer: DetFlowAnalyzer,
			src: "package p\n" +
				"\n" +
				"import (\n" +
				"\t\"fmt\"\n" +
				"\t\"time\"\n" +
				")\n" +
				"\n" +
				"func stamp() time.Time {\n" +
				"\treturn time.Now()\n" +
				"}\n" +
				"\n" +
				"func emit() {\n" +
				"\tfmt.Println(stamp())\n" + // line 13, "fmt" at col 2
				"}\n",
			pos:    "13:2",
			substr: "reaches deterministic sink fmt.Println",
		},
		{
			name:     "leakcheck reports the go call",
			analyzer: LeakCheckAnalyzer,
			src: "package p\n" +
				"\n" +
				"func spin() {\n" +
				"\tfor {\n" +
				"\t}\n" +
				"}\n" +
				"\n" +
				"func launch() {\n" +
				"\tgo spin()\n" + // line 9, "spin" at col 5
				"}\n",
			pkgPath: "autoindex/internal/serve",
			pos:     "9:5",
			substr:  "not provably joinable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			filename := strings.ReplaceAll(tc.name, " ", "_") + ".go"
			pkgPath := tc.pkgPath
			if pkgPath == "" {
				pkgPath = "autoindex/internal/analysis/inline"
			}
			diags := checkUnitAt(t, filename, tc.src, pkgPath, []*Analyzer{tc.analyzer})
			if len(diags) != 1 {
				t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
			}
			d := diags[0]
			got := fmt.Sprintf("%d:%d", d.Pos.Line, d.Pos.Column)
			if got != tc.pos {
				t.Errorf("diagnostic at %s, want %s (message %q)", got, tc.pos, d.Message)
			}
			if d.Pos.Filename != filename {
				t.Errorf("diagnostic filename %q, want %q", d.Pos.Filename, filename)
			}
			if !strings.Contains(d.Message, tc.substr) {
				t.Errorf("message %q does not contain %q", d.Message, tc.substr)
			}
		})
	}
}

// TestMalformedDirective verifies that an //lint:ignore without a
// reason is reported under the unsuppressible "directive" pseudo-check
// and that the directive it rode in on does not suppress anything.
func TestMalformedDirective(t *testing.T) {
	src := "package p\n" +
		"\n" +
		"import \"errors\"\n" +
		"\n" +
		"var errX = errors.New(\"x\")\n" +
		"\n" +
		"func f(err error) bool {\n" +
		"\t//lint:ignore errcompare\n" + // line 8: no reason → malformed
		"\treturn err == errX\n" + // line 9: NOT suppressed
		"}\n"
	diags := checkUnit(t, "malformed.go", src, Analyzers())
	var checks []string
	for _, d := range diags {
		checks = append(checks, fmt.Sprintf("%d:%s", d.Pos.Line, d.Check))
	}
	sort.Strings(checks)
	wantChecks := []string{"8:directive", "9:errcompare"}
	if strings.Join(checks, ",") != strings.Join(wantChecks, ",") {
		t.Fatalf("got diagnostics %v, want %v", checks, wantChecks)
	}
	for _, d := range diags {
		if d.Check == "directive" && !strings.Contains(d.Message, "need a check name and a reason") {
			t.Errorf("directive message %q lacks the reason hint", d.Message)
		}
	}
}

// TestIgnoreInventory checks that the inventory reflects well-formed
// directives in position order and dedupes nothing that is distinct.
func TestIgnoreInventory(t *testing.T) {
	src := "package p\n" +
		"\n" +
		"import \"errors\"\n" +
		"\n" +
		"var errX = errors.New(\"x\")\n" +
		"\n" +
		"func f(err error) bool {\n" +
		"\t//lint:ignore errcompare fixture reason one\n" +
		"\tif err == errX {\n" +
		"\t\treturn true\n" +
		"\t}\n" +
		"\treturn err == errX //lint:ignore errcompare fixture reason two\n" +
		"}\n"
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	f, err := parser.ParseFile(l.fset, "inv.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	_, bad := collectIgnores(l.fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	u := &Unit{Path: "p", Fset: l.fset, Files: []*ast.File{f}}
	inv := Inventory([]*Unit{u, u}) // duplicated unit: inventory must dedupe
	if len(inv) != 2 {
		t.Fatalf("inventory has %d entries, want 2: %v", len(inv), inv)
	}
	if inv[0].Reason != "fixture reason one" || inv[1].Reason != "fixture reason two" {
		t.Errorf("inventory reasons out of order: %q, %q", inv[0].Reason, inv[1].Reason)
	}
}
