package mathx

import "math"

// Logistic is an online logistic-regression binary classifier trained with
// stochastic gradient descent. The paper (§5.2) trains a classifier on data
// from previous index validations — features such as estimated impact and
// table/index size — to filter out Missing-Index recommendations expected
// to have low impact on actual execution. This is that classifier.
type Logistic struct {
	// Weights holds one weight per feature; Bias is the intercept.
	Weights []float64
	Bias    float64
	// LR is the learning rate; L2 the ridge penalty.
	LR float64
	L2 float64
	// Seen counts training updates, for diagnostics.
	Seen int64
}

// NewLogistic returns a classifier for dim features.
func NewLogistic(dim int) *Logistic {
	return &Logistic{Weights: make([]float64, dim), LR: 0.05, L2: 1e-4}
}

// Score returns P(label = 1 | x).
func (l *Logistic) Score(x []float64) float64 {
	z := l.Bias
	for i, w := range l.Weights {
		if i < len(x) {
			z += w * x[i]
		}
	}
	return 1 / (1 + math.Exp(-z))
}

// Train performs one SGD step toward label (true = positive class, i.e.
// "index had real impact when validated").
func (l *Logistic) Train(x []float64, label bool) {
	p := l.Score(x)
	y := 0.0
	if label {
		y = 1
	}
	g := p - y // d(loss)/dz
	l.Bias -= l.LR * g
	for i := range l.Weights {
		xi := 0.0
		if i < len(x) {
			xi = x[i]
		}
		l.Weights[i] -= l.LR * (g*xi + l.L2*l.Weights[i])
	}
	l.Seen++
}

// Predict reports whether the classifier scores x above threshold.
func (l *Logistic) Predict(x []float64, threshold float64) bool {
	return l.Score(x) >= threshold
}
