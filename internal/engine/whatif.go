package engine

import (
	"errors"

	"autoindex/internal/optimizer"
	"autoindex/internal/sqlparser"
)

// ErrWhatIfBudget is returned when a what-if session exhausts its
// optimizer-call budget — the resource governance DTA runs under (§5.3.1).
var ErrWhatIfBudget = errors.New("engine: what-if session optimizer-call budget exhausted")

// WhatIfSession reproduces the AutoAdmin what-if index analysis utility
// [11]: callers add hypothetical indexes (metadata + statistics only) and
// cost statements against the resulting configuration without building
// anything. Each session is budgeted: SQL Server's resource governor
// limits DTA's footprint on the primary, and exceeding the budget aborts
// the session.
type WhatIfSession struct {
	db  *Database
	cat *optimizer.WhatIfCatalog
	opt *optimizer.Optimizer
	// MaxOptimizerCalls bounds the session; 0 means unlimited.
	MaxOptimizerCalls int64
	// StatsCreated counts sampled-statistics builds charged to the
	// session (DTA's main server-side overhead, §5.3.1).
	StatsCreated int64
}

// NewWhatIfSession opens a what-if session over the database.
func (d *Database) NewWhatIfSession() *WhatIfSession {
	cat := optimizer.NewWhatIfCatalog(d)
	return &WhatIfSession{
		db:  d,
		cat: cat,
		opt: &optimizer.Optimizer{Cat: cat, WhatIfMode: true, Reg: d.Metrics()},
	}
}

// Catalog exposes the overlay catalog (for adding/removing hypotheticals).
func (s *WhatIfSession) Catalog() *optimizer.WhatIfCatalog { return s.cat }

// Calls reports optimizer calls made so far.
func (s *WhatIfSession) Calls() int64 { return s.opt.Calls() }

// Cost plans stmt under the session's hypothetical configuration and
// returns the estimated cost. Statements the what-if API cannot optimize
// return optimizer.ErrWhatIfUnsupported; budget exhaustion returns
// ErrWhatIfBudget.
func (s *WhatIfSession) Cost(stmt sqlparser.Statement) (float64, *optimizer.Plan, error) {
	if s.MaxOptimizerCalls > 0 && s.opt.Calls() >= s.MaxOptimizerCalls {
		return 0, nil, ErrWhatIfBudget
	}
	return s.opt.CostStatement(stmt)
}

// CreateSampledStats simulates DTA building a sampled statistic on the
// server: the work is charged to the session and to virtual time.
func (s *WhatIfSession) CreateSampledStats(table, column string) {
	s.StatsCreated++
	// Building a sampled stat reads a fraction of the table.
	s.db.rebuildColumnStats(table, column)
}

// Cleanup removes all hypothetical indexes, as the control plane does when
// a DTA session ends or is aborted (§5.3.3).
func (s *WhatIfSession) Cleanup() { s.cat.ClearHypothetical() }
