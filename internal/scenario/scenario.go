package scenario

import (
	"fmt"
	"hash/fnv"
	"strings"

	"autoindex/internal/controlplane"
	"autoindex/internal/fleet"
)

// Options selects the knobs a scenario run exposes to callers. Seed and
// Chaos are part of the determinism contract; Workers is explicitly not
// (results are byte-identical at any value).
type Options struct {
	// Seed is the base seed; each scenario derives its own fleet seed
	// from it (see deriveSeed) so scenarios never share RNG schedules.
	Seed int64
	// Workers sizes the fleet worker pool; <= 0 means one per CPU.
	Workers int
	// Chaos additionally runs the scenario under the default
	// fault-injection schedule (engine DDL failures, control-plane
	// crashes, lossy telemetry).
	Chaos bool
}

// Result is one scenario run's outcome: the machine-checkable verdict
// and a human-readable report (which embeds the verdict rendering).
type Result struct {
	Verdict Verdict
	Report  string
}

// Scenario is one pluggable adversarial generator.
type Scenario interface {
	// Name is the stable registry key (also the CI matrix entry).
	Name() string
	// Describe says what the scenario attacks in one line.
	Describe() string
	// Run executes the scenario and renders its verdict.
	Run(opts Options) (*Result, error)
}

// All returns the registry in fixed order — the order verdicts appear
// in reports, JSON files and the CI matrix.
func All() []Scenario {
	return []Scenario{driftScenario{}, migrationScenario{}, burstScenario{}, neighborScenario{}}
}

// Names lists the registry keys in registry order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name()
	}
	return out
}

// Get finds a scenario by name (case-insensitive).
func Get(name string) (Scenario, bool) {
	for _, s := range All() {
		if strings.EqualFold(s.Name(), name) {
			return s, true
		}
	}
	return nil, false
}

// deriveSeed keys a scenario's fleet off the base seed and the scenario
// name, so every scenario sees an independent fleet and adding a
// scenario never perturbs the others' schedules.
func deriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	s := base ^ int64(h.Sum64()&0x7fffffffffffffff)
	if s == 0 {
		s = 1
	}
	return s
}

// runConfig shapes one scenario fleet run. Scenarios keep fleets small
// (three mixed-tier tenants, sub-scale data) so the whole pack fits the
// PR-path CI budget; the adversarial pressure comes from the hooks, not
// from scale.
type runConfig struct {
	databases         int
	days              int
	statementsPerHour int
	hooks             fleet.OpsHooks
	// tunePlane adjusts the control-plane config (dropper staleness
	// window, forced recommender policy, ...) before the run.
	tunePlane func(*controlplane.Config)
}

// runFleet builds and drives one audited fleet run for a scenario. Every
// run captures enrollment-time index baselines, drains in-flight records
// after the last hour, and checks the state-machine invariants — the
// chaos harness's discipline, applied to fault-free runs too.
func runFleet(opts Options, seed int64, rc runConfig) (*fleet.Fleet, *fleet.OpsResult, error) {
	spec := fleet.Spec{
		Databases:   rc.databases,
		MixedTiers:  true,
		Seed:        seed,
		Scale:       0.75,
		UserIndexes: true,
		Workers:     opts.Workers,
	}
	f, err := fleet.Build(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: building fleet: %w", err)
	}
	cfg := fleet.DefaultOpsConfig()
	cfg.Days = rc.days
	cfg.StatementsPerHour = rc.statementsPerHour
	// Every database auto-implements: scenarios measure the pipeline,
	// not the opt-in rate, and failovers stay out of the way so the only
	// adversity is the scenario's own.
	cfg.AutoImplementFraction = 1
	cfg.FailoverProb = 0
	cfg.AuditInvariants = true
	cfg.Hooks = rc.hooks
	if opts.Chaos {
		cfg.Chaos = fleet.DefaultChaosConfig()
	}
	if rc.tunePlane != nil {
		rc.tunePlane(&cfg.Plane)
	}
	res, err := f.RunOps(spec, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: ops run: %w", err)
	}
	return f, res, nil
}

// auditChecks appends the two checks every scenario shares: the
// state-machine invariants held after the drain, and the drain itself
// converged within budget (in-flight records settled instead of
// wedging).
func auditChecks(v *Verdict, res *fleet.OpsResult) {
	v.check("invariants-clean", len(res.Violations) == 0,
		"%d violations after drain", len(res.Violations))
	v.check("drained", res.DrainHours < 21*24,
		"in-flight records settled in %dh", res.DrainHours)
}

// newVerdict starts a verdict for one scenario run.
func newVerdict(name string, opts Options) Verdict {
	return Verdict{Scenario: name, Seed: opts.Seed, Chaos: opts.Chaos}
}

// storeRecords filters the run's record store.
func storeRecords(res *fleet.OpsResult, pred func(*controlplane.Record) bool) []*controlplane.Record {
	return res.Plane.StateStore().Records(pred)
}
