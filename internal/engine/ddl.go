package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"autoindex/internal/btree"
	"autoindex/internal/faults"
	"autoindex/internal/schema"
	"autoindex/internal/storage"
	"autoindex/internal/value"
)

// DDL error classes the control plane distinguishes when driving the
// recommendation state machine (§4): ErrIndexExists and ErrIndexNotFound
// are terminal Error states; ErrLogFull and ErrLockTimeout are retried.
var (
	ErrIndexExists   = errors.New("engine: an index with the same name already exists")
	ErrIndexNotFound = errors.New("engine: index does not exist")
	ErrTableNotFound = errors.New("engine: table does not exist")
	ErrColumnInUse   = errors.New("engine: column is referenced by a user index")
	ErrLogFull       = errors.New("engine: transaction log full during index build")
	// ErrBuildAborted is an online index build interrupted mid-flight
	// (failover, DTA abort signal, injected chaos); like ErrLogFull and
	// ErrLockTimeout it is transient and retried with backoff.
	ErrBuildAborted = errors.New("engine: online index build aborted")
)

// CreateTable creates an empty table. Tables with a primary key are
// clustered on it; others are heaps.
func (d *Database) CreateTable(def schema.Table) error {
	if err := def.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, exists := d.tables[key]; exists {
		return fmt.Errorf("engine: table %q already exists", def.Name)
	}
	t := &tableData{def: &def}
	if len(def.PrimaryKey) > 0 {
		t.clustered = btree.New(btree.DefaultOrder)
	} else {
		t.heap = storage.NewHeap(def.RowWidth())
	}
	d.tables[key] = t
	return nil
}

// IndexBuildOptions controls how CreateIndex runs.
type IndexBuildOptions struct {
	// Online builds without blocking concurrent statements (the only mode
	// the auto-indexing service uses).
	Online bool
	// Resumable allows pausing at log-space boundaries with log truncation
	// in between (§8.3's resumable index create).
	Resumable bool
}

// IndexBuildReport describes a completed build.
type IndexBuildReport struct {
	Duration  time.Duration
	LogBytes  int64
	Pauses    int
	SizeBytes int64
}

// CreateIndex builds a non-clustered index. The build scans the base
// table, sorts the entries (charged as virtual build time scaled by the
// tier's resources), and generates transaction log proportional to the
// index size. A non-resumable build whose log exceeds the configured log
// space fails with ErrLogFull (§8.3).
func (d *Database) CreateIndex(def schema.IndexDef, opts IndexBuildOptions) error {
	_, err := d.CreateIndexWithReport(def, opts)
	return err
}

// CreateIndexWithReport is CreateIndex returning build telemetry.
func (d *Database) CreateIndexWithReport(def schema.IndexDef, opts IndexBuildOptions) (IndexBuildReport, error) {
	injector := d.faultInjector() // read before taking d.mu (not reentrant)
	reg := d.Metrics()
	d.mu.Lock()
	t, ok := d.tables[strings.ToLower(def.Table)]
	if !ok {
		d.mu.Unlock()
		return IndexBuildReport{}, fmt.Errorf("%w: %s", ErrTableNotFound, def.Table)
	}
	if _, exists := d.indexes[strings.ToLower(def.Name)]; exists {
		d.mu.Unlock()
		return IndexBuildReport{}, fmt.Errorf("%w: %s", ErrIndexExists, def.Name)
	}
	if err := def.Validate(t.def); err != nil {
		d.mu.Unlock()
		return IndexBuildReport{}, err
	}
	if def.Kind == schema.Clustered {
		d.mu.Unlock()
		return IndexBuildReport{}, fmt.Errorf("engine: only non-clustered indexes can be created online")
	}
	if in := injector; in != nil {
		// Chaos fault points fire after the well-known validation errors so
		// an injected failure always means "the build itself failed", never
		// masks a terminal condition. Errors are wrapped exactly as real
		// call sites wrap them, so the control plane's errors.Is
		// classification is what gets exercised.
		switch {
		case in.Should(faults.IndexBuildLockTimeout):
			d.mu.Unlock()
			reg.Counter(descFaultTrips).Inc()
			reg.Counter(descLockTimeouts).Inc()
			d.clock.Sleep(5 * time.Second) // burned the lock-wait budget
			return IndexBuildReport{}, fmt.Errorf("create index %s: %w", def.Name, ErrLockTimeout)
		case in.Should(faults.IndexBuildLogFull):
			d.mu.Unlock()
			reg.Counter(descFaultTrips).Inc()
			// The failed build consumed time and log before hitting the wall.
			sz := def.EstimatedSizeBytes(t.def, t.rowCount)
			d.clock.Sleep(d.buildDuration(sz) / 2)
			return IndexBuildReport{LogBytes: sz / 2}, fmt.Errorf("create index %s: log growth race: %w", def.Name, ErrLogFull)
		case in.Should(faults.IndexBuildAbort):
			d.mu.Unlock()
			reg.Counter(descFaultTrips).Inc()
			sz := def.EstimatedSizeBytes(t.def, t.rowCount)
			d.clock.Sleep(d.buildDuration(sz) / 4)
			return IndexBuildReport{}, fmt.Errorf("create index %s: %w", def.Name, ErrBuildAborted)
		}
	}

	sizeBytes := def.EstimatedSizeBytes(t.def, t.rowCount)
	report := IndexBuildReport{LogBytes: sizeBytes, SizeBytes: sizeBytes}
	if sizeBytes > d.cfg.LogSpaceBytes {
		if !opts.Resumable {
			d.mu.Unlock()
			// The failed build still consumed time and log.
			d.clock.Sleep(d.buildDuration(sizeBytes) / 2)
			return report, fmt.Errorf("%w: index %s needs %d bytes of log, %d available",
				ErrLogFull, def.Name, sizeBytes, d.cfg.LogSpaceBytes)
		}
		report.Pauses = int(sizeBytes / d.cfg.LogSpaceBytes)
	}

	ix := &indexData{
		def:       def.Clone(),
		tree:      btree.New(btree.DefaultOrder),
		createdAt: d.clock.Now(),
		sizeBytes: sizeBytes,
	}
	for _, c := range def.KeyColumns {
		ix.keyOrds = append(ix.keyOrds, t.def.ColumnIndex(c))
	}
	for _, c := range def.IncludedColumns {
		ix.inclOrds = append(ix.inclOrds, t.def.ColumnIndex(c))
	}
	insert := func(row value.Row, loc value.Key) {
		k, p := ix.entryFor(t, row, loc)
		ix.tree.Insert(k, p)
	}
	if t.clustered != nil {
		t.clustered.Ascend(func(e btree.Entry) bool {
			insert(e.Payload, e.Key)
			return true
		})
	} else {
		t.heap.Scan(func(rid storage.RID, row value.Row) bool {
			insert(row, value.Key{value.NewInt(int64(rid))})
			return true
		})
	}
	d.indexes[strings.ToLower(def.Name)] = ix
	d.noteSchemaChange()
	d.mu.Unlock()

	// The build's virtual duration: scan + sort + write, scaled down by
	// the tier's resources; resumable pauses add overhead.
	dur := d.buildDuration(sizeBytes) * time.Duration(1+report.Pauses/4+1) / 2
	report.Duration = dur
	d.clock.Sleep(dur)
	reg.Counter(descIndexBuilds).Inc()
	reg.Histogram(descIndexBuildMillis).ObserveDuration(dur)
	return report, nil
}

// buildDuration maps bytes processed to virtual build time for this tier.
func (d *Database) buildDuration(bytes int64) time.Duration {
	// ~64 MB/s of build throughput per core.
	perCore := 64.0 * float64(1<<20)
	secs := float64(bytes) / (perCore * d.cfg.Tier.CPUCores())
	if secs < 0.1 {
		secs = 0.1
	}
	return time.Duration(secs * float64(time.Second))
}

// DropIndexOptions controls DropIndex locking behaviour.
type DropIndexOptions struct {
	// LowPriority requests the exclusive schema lock at low priority so
	// the drop never blocks concurrent statements; on timeout the caller
	// backs off and retries (§8.3). This is how the control plane reverts.
	LowPriority bool
	// LockTimeout bounds a low-priority wait (default 5s).
	LockTimeout time.Duration
}

// DropIndex removes a non-clustered index.
func (d *Database) DropIndex(name string, opts DropIndexOptions) error {
	d.mu.RLock()
	ix, ok := d.indexes[strings.ToLower(name)]
	d.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrIndexNotFound, name)
	}
	timeout := opts.LockTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	reg := d.Metrics()
	if in := d.faultInjector(); in != nil && in.Should(faults.DropLockTimeout) {
		// An injected convoy: the low-priority request burns its wait
		// budget behind shared holders that never clear in time.
		reg.Counter(descFaultTrips).Inc()
		reg.Counter(descLockTimeouts).Inc()
		d.clock.Sleep(timeout)
		return fmt.Errorf("drop index %s: %w", name, ErrLockTimeout)
	}
	release, waited, err := d.locks.AcquireExclusive(ix.def.Table, opts.LowPriority, timeout)
	if err != nil {
		reg.Counter(descLockTimeouts).Inc()
		return err
	}
	reg.Histogram(descLockWaitMillis).ObserveDuration(waited)
	defer release()
	d.mu.Lock()
	delete(d.indexes, strings.ToLower(name))
	d.noteSchemaChange()
	d.mu.Unlock()
	d.usage.Forget(name)
	reg.Counter(descIndexDrops).Inc()
	return nil
}

// DropColumn drops a table column, force-dropping any auto-created indexes
// that reference it (the cascade the service added so auto-indexes never
// block customer schema changes, §8.3). It fails with ErrColumnInUse if a
// user-created index references the column.
func (d *Database) DropColumn(table, column string) error {
	d.mu.Lock()
	t, ok := d.tables[strings.ToLower(table)]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrTableNotFound, table)
	}
	ord := t.def.ColumnIndex(column)
	if ord < 0 {
		d.mu.Unlock()
		return fmt.Errorf("engine: no column %q in table %q", column, table)
	}
	for _, pk := range t.def.PrimaryKey {
		if strings.EqualFold(pk, column) {
			d.mu.Unlock()
			return fmt.Errorf("engine: cannot drop primary key column %q", column)
		}
	}
	// Scan indexes in sorted key order so both the cascade drop order
	// and which index an ErrColumnInUse names are deterministic.
	ixKeys := make([]string, 0, len(d.indexes))
	for k := range d.indexes {
		ixKeys = append(ixKeys, k)
	}
	sort.Strings(ixKeys)
	var toDrop []string
	for _, k := range ixKeys {
		ix := d.indexes[k]
		if strings.EqualFold(ix.def.Table, table) && ix.def.HasColumn(column) {
			if !ix.def.AutoCreated {
				d.mu.Unlock()
				return fmt.Errorf("%w: index %s", ErrColumnInUse, ix.def.Name)
			}
			toDrop = append(toDrop, ix.def.Name)
		}
	}
	// Cascade: force-drop the auto-created indexes.
	for _, n := range toDrop {
		delete(d.indexes, strings.ToLower(n))
		d.usage.Forget(n)
	}
	// Remove the column from rows and metadata.
	newCols := append([]schema.Column(nil), t.def.Columns[:ord]...)
	newCols = append(newCols, t.def.Columns[ord+1:]...)
	strip := func(r value.Row) value.Row {
		out := make(value.Row, 0, len(r)-1)
		out = append(out, r[:ord]...)
		out = append(out, r[ord+1:]...)
		return out
	}
	if t.clustered != nil {
		repl := btree.New(btree.DefaultOrder)
		t.clustered.Ascend(func(e btree.Entry) bool {
			repl.Insert(e.Key, strip(e.Payload))
			return true
		})
		t.clustered = repl
	} else {
		old := t.heap
		t.heap = storage.NewHeap(t.def.RowWidth())
		old.Scan(func(_ storage.RID, r value.Row) bool {
			t.heap.Insert(strip(r))
			return true
		})
	}
	// The definition may be shared copy-on-write with archetype siblings
	// (see SeedTable); fork a private copy before mutating it so the drop
	// is invisible to every other tenant stamped from the same template.
	forked := cloneTableDef(t.def)
	forked.Columns = newCols
	t.def = forked
	// Remaining indexes reference ordinals; rebuild their ordinal maps.
	for _, ix := range d.indexes {
		if !strings.EqualFold(ix.def.Table, table) {
			continue
		}
		ix.keyOrds = ix.keyOrds[:0]
		for _, c := range ix.def.KeyColumns {
			ix.keyOrds = append(ix.keyOrds, t.def.ColumnIndex(c))
		}
		ix.inclOrds = ix.inclOrds[:0]
		for _, c := range ix.def.IncludedColumns {
			ix.inclOrds = append(ix.inclOrds, t.def.ColumnIndex(c))
		}
	}
	// Rebuild surviving indexes' trees since payload ordinals shifted.
	for _, ix := range d.indexes {
		if !strings.EqualFold(ix.def.Table, table) {
			continue
		}
		repl := btree.New(btree.DefaultOrder)
		reinsert := func(row value.Row, loc value.Key) {
			k, p := ix.entryFor(t, row, loc)
			repl.Insert(k, p)
		}
		if t.clustered != nil {
			t.clustered.Ascend(func(e btree.Entry) bool {
				reinsert(e.Payload, e.Key)
				return true
			})
		} else {
			t.heap.Scan(func(rid storage.RID, row value.Row) bool {
				reinsert(row, value.Key{value.NewInt(int64(rid))})
				return true
			})
		}
		ix.tree = repl
	}
	delete(d.colStat, statKey(table, column))
	d.noteSchemaChange()
	d.mu.Unlock()
	return nil
}

// RenameColumn renames a table column. User-created indexes referencing
// the column follow the rename (the customer's ALTER carries its own
// dependent objects), while auto-created indexes referencing it are
// force-dropped, mirroring the DropColumn cascade: service-owned state
// must never block or survive a customer schema migration (§8.3).
// In-flight recommendations still naming the old column then fail
// validation with schema.ErrColumnNotFound — the race the migration
// scenario drives through the control plane's state machine.
func (d *Database) RenameColumn(table, oldName, newName string) error {
	d.mu.Lock()
	t, ok := d.tables[strings.ToLower(table)]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrTableNotFound, table)
	}
	ord := t.def.ColumnIndex(oldName)
	if ord < 0 {
		d.mu.Unlock()
		return fmt.Errorf("engine: no column %q in table %q", oldName, table)
	}
	if t.def.ColumnIndex(newName) >= 0 {
		d.mu.Unlock()
		return fmt.Errorf("engine: column %q already exists in table %q", newName, table)
	}
	// Scan indexes in sorted key order so the cascade drop order is
	// deterministic (same discipline as DropColumn).
	ixKeys := make([]string, 0, len(d.indexes))
	for k := range d.indexes {
		ixKeys = append(ixKeys, k)
	}
	sort.Strings(ixKeys)
	var toDrop []string
	var toRename []*indexData
	for _, k := range ixKeys {
		ix := d.indexes[k]
		if strings.EqualFold(ix.def.Table, table) && ix.def.HasColumn(oldName) {
			if ix.def.AutoCreated {
				toDrop = append(toDrop, ix.def.Name)
			} else {
				toRename = append(toRename, ix)
			}
		}
	}
	for _, n := range toDrop {
		delete(d.indexes, strings.ToLower(n))
		d.usage.Forget(n)
	}
	renameIn := func(cols []string) {
		for i, c := range cols {
			if strings.EqualFold(c, oldName) {
				cols[i] = newName
			}
		}
	}
	for _, ix := range toRename {
		// ix.def is a private Clone (made at CreateIndex), safe to mutate;
		// ordinals are unchanged so trees and ordinal maps stay valid.
		renameIn(ix.def.KeyColumns)
		renameIn(ix.def.IncludedColumns)
	}
	// The table definition may be shared copy-on-write with archetype
	// siblings; fork before mutating, as in DropColumn.
	forked := cloneTableDef(t.def)
	forked.Columns[ord].Name = newName
	renameIn(forked.PrimaryKey)
	t.def = forked
	if st, ok := d.colStat[statKey(table, oldName)]; ok {
		d.colStat[statKey(table, newName)] = st
		delete(d.colStat, statKey(table, oldName))
	}
	d.noteSchemaChange()
	d.mu.Unlock()
	return nil
}

// DroppedAutoIndexes is a helper for tests: names of auto-created indexes
// referencing a column (the cascade candidates).
func (d *Database) DroppedAutoIndexes(table, column string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for _, ix := range d.indexes {
		if strings.EqualFold(ix.def.Table, table) && ix.def.HasColumn(column) && ix.def.AutoCreated {
			out = append(out, ix.def.Name)
		}
	}
	sort.Strings(out)
	return out
}
