package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"autoindex/internal/metrics"
)

// normalizeWorkers resolves a worker-count setting: non-positive means one
// worker per available CPU (runtime.GOMAXPROCS), and the count is capped
// at the number of work items so idle goroutines are never spawned.
func normalizeWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEach runs fn(0..n-1) across a pool of workers and waits for all of
// them. Work is handed out through an atomic cursor, so assignment order
// is scheduling-dependent — callers must make fn(i) independent of fn(j)
// (per-tenant clocks, per-tenant RNG streams, writes only to slot i) so
// the merged result is identical at any worker count. With workers <= 1
// the loop runs inline on the calling goroutine, which keeps single-worker
// runs trivially comparable against parallel ones in determinism tests.
func forEach(workers, n int, fn func(i int)) {
	forEachObserved(nil, workers, n, fn)
}

// forEachObserved is forEach plus shard-throughput observation: each
// worker records how many items it ended up processing into the
// volatile fleet.worker_shard_items histogram on reg. The distribution
// genuinely depends on scheduling — that is what it measures — which is
// exactly why the metric is volatile and never part of the
// deterministic snapshot.
func forEachObserved(reg *metrics.Registry, workers, n int, fn func(i int)) {
	h := reg.Histogram(descWorkerItems)
	workers = normalizeWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		h.Observe(int64(n))
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			items := int64(0)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					h.Observe(items)
					return
				}
				fn(i)
				items++
			}
		}()
	}
	wg.Wait()
}
