package executor

import (
	"sort"
	"testing"
	"testing/quick"

	"autoindex/internal/value"
)

func rows(vals ...int64) []value.Row {
	out := make([]value.Row, len(vals))
	for i, v := range vals {
		out[i] = value.Row{value.NewInt(v)}
	}
	return out
}

func drainInts(s Source) []int64 {
	var out []int64
	for _, r := range Drain(s) {
		out = append(out, r[0].I)
	}
	return out
}

func TestFilterChargesAndFilters(t *testing.T) {
	m := &Meter{}
	f := &Filter{
		Child: &SliceSource{Rows: rows(1, 2, 3, 4, 5, 6)},
		Pred:  func(r value.Row) bool { return r[0].I%2 == 0 },
		Meter: m,
	}
	got := drainInts(f)
	if len(got) != 3 || got[0] != 2 {
		t.Fatalf("filtered: %v", got)
	}
	if m.RowsProcessed != 6 {
		t.Fatalf("rows processed = %d, want all inputs charged", m.RowsProcessed)
	}
	if m.CPUUnits <= 0 || m.TotalCost() <= 0 {
		t.Fatal("no CPU charged")
	}
}

func TestProject(t *testing.T) {
	m := &Meter{}
	p := &Project{
		Child: &SliceSource{Rows: rows(1, 2)},
		Fn:    func(r value.Row) value.Row { return value.Row{value.NewInt(r[0].I * 10)} },
		Meter: m,
	}
	got := drainInts(p)
	if got[0] != 10 || got[1] != 20 {
		t.Fatalf("%v", got)
	}
}

func TestSortStableAndCharged(t *testing.T) {
	m := &Meter{}
	s := &Sort{
		Child: &SliceSource{Rows: rows(5, 3, 9, 1, 7)},
		Less:  func(a, b value.Row) bool { return a[0].I < b[0].I },
		Meter: m,
	}
	got := drainInts(s)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("not sorted: %v", got)
	}
	if m.CPUUnits <= 0 {
		t.Fatal("sort must charge CPU")
	}
}

func TestTop(t *testing.T) {
	top := &Top{Child: &SliceSource{Rows: rows(1, 2, 3, 4)}, N: 2}
	if got := drainInts(top); len(got) != 2 {
		t.Fatalf("%v", got)
	}
	empty := &Top{Child: &SliceSource{}, N: 3}
	if got := drainInts(empty); len(got) != 0 {
		t.Fatalf("%v", got)
	}
}

func makeRow(vals ...int64) value.Row {
	r := make(value.Row, len(vals))
	for i, v := range vals {
		r[i] = value.NewInt(v)
	}
	return r
}

func TestHashAggGrouped(t *testing.T) {
	m := &Meter{}
	// (group, measure)
	input := []value.Row{
		makeRow(1, 10), makeRow(2, 20), makeRow(1, 30), makeRow(2, 40), makeRow(1, 50),
	}
	agg := &HashAgg{
		Child:     &SliceSource{Rows: input},
		GroupCols: []int{0},
		Specs: []AggSpec{
			{Kind: AggKey, Col: 0},
			{Kind: AggCountStar},
			{Kind: AggSum, Col: 1},
			{Kind: AggMin, Col: 1},
			{Kind: AggMax, Col: 1},
			{Kind: AggAvg, Col: 1},
		},
		Meter: m,
	}
	out := Drain(agg)
	if len(out) != 2 {
		t.Fatalf("groups: %d", len(out))
	}
	byKey := map[int64]value.Row{}
	for _, r := range out {
		byKey[r[0].I] = r
	}
	g1 := byKey[1]
	if g1[1].I != 3 || g1[2].F != 90 || g1[3].I != 10 || g1[4].I != 50 || g1[5].F != 30 {
		t.Fatalf("group 1: %v", g1)
	}
}

func TestScalarAggEmptyInput(t *testing.T) {
	agg := &HashAgg{
		Child: &SliceSource{},
		Specs: []AggSpec{{Kind: AggCountStar}, {Kind: AggSum, Col: 0}},
		Meter: &Meter{},
	}
	out := Drain(agg)
	if len(out) != 1 {
		t.Fatal("scalar aggregate over empty input must yield one row")
	}
	if out[0][0].I != 0 || !out[0][1].IsNull() {
		t.Fatalf("empty scalar agg: %v", out[0])
	}
}

func TestAggNullHandling(t *testing.T) {
	input := []value.Row{
		{value.NewInt(1), value.NewNull()},
		{value.NewInt(1), value.NewInt(4)},
	}
	agg := &HashAgg{
		Child:     &SliceSource{Rows: input},
		GroupCols: []int{0},
		Specs:     []AggSpec{{Kind: AggCountCol, Col: 1}, {Kind: AggAvg, Col: 1}},
		Meter:     &Meter{},
	}
	out := Drain(agg)
	if out[0][0].I != 1 {
		t.Fatalf("COUNT(col) must skip NULLs: %v", out[0])
	}
	if out[0][1].F != 4 {
		t.Fatalf("AVG must skip NULLs: %v", out[0])
	}
}

func TestHashJoin(t *testing.T) {
	m := &Meter{}
	probe := []value.Row{makeRow(1, 100), makeRow(2, 200), makeRow(3, 300)}
	build := []value.Row{makeRow(1, 11), makeRow(1, 12), makeRow(3, 33)}
	j := &HashJoin{
		Probe: &SliceSource{Rows: probe}, Build: &SliceSource{Rows: build},
		ProbeCol: 0, BuildCol: 0, Meter: m,
	}
	out := Drain(j)
	// key 1 matches twice, key 3 once → 3 output rows of width 4.
	if len(out) != 3 {
		t.Fatalf("join rows: %d", len(out))
	}
	for _, r := range out {
		if len(r) != 4 || r[0].I != r[2].I {
			t.Fatalf("bad join row: %v", r)
		}
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	probe := []value.Row{{value.NewNull(), value.NewInt(1)}}
	build := []value.Row{{value.NewNull(), value.NewInt(2)}}
	j := &HashJoin{
		Probe: &SliceSource{Rows: probe}, Build: &SliceSource{Rows: build},
		ProbeCol: 0, BuildCol: 0, Meter: &Meter{},
	}
	if out := Drain(j); len(out) != 0 {
		t.Fatalf("NULL keys joined: %v", out)
	}
}

func TestNLJoin(t *testing.T) {
	m := &Meter{}
	outer := []value.Row{makeRow(1), makeRow(2), makeRow(1)}
	inner := map[int64][]value.Row{
		1: {makeRow(1, 10), makeRow(1, 11)},
		2: {makeRow(2, 20)},
	}
	j := &NLJoin{
		Outer:    &SliceSource{Rows: outer},
		OuterCol: 0,
		Bind: func(key value.Value) Source {
			return &SliceSource{Rows: inner[key.I]}
		},
		Meter: m,
	}
	out := Drain(j)
	if len(out) != 5 {
		t.Fatalf("nl join rows: %d", len(out))
	}
}

// Property: hash join output count equals the brute-force count.
func TestQuickHashJoinMatchesNestedLoops(t *testing.T) {
	f := func(a, b []uint8) bool {
		probe := make([]value.Row, len(a))
		for i, v := range a {
			probe[i] = makeRow(int64(v % 16))
		}
		build := make([]value.Row, len(b))
		for i, v := range b {
			build[i] = makeRow(int64(v % 16))
		}
		j := &HashJoin{
			Probe: &SliceSource{Rows: probe}, Build: &SliceSource{Rows: build},
			ProbeCol: 0, BuildCol: 0, Meter: &Meter{},
		}
		got := len(Drain(j))
		want := 0
		for _, p := range probe {
			for _, q := range build {
				if p[0].I == q[0].I {
					want++
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
