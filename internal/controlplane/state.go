// Package controlplane implements the paper's control plane (§4): the
// fault-tolerant, per-region service that drives the index-lifecycle state
// machine for every managed database. It is structured as micro-services
// — snapshotting, analysis, implementation, validation, revert, expiry and
// health detection — each advanced by Step so fleet simulations stay
// deterministic under virtual time (a RunLoop wrapper drives Step on wall
// clock for the daemon binary). All state lives behind the Store
// interface; the in-memory store optionally journals to disk so a
// restarted control plane resumes where it left off.
package controlplane

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/validate"
)

// RecState is a recommendation's lifecycle state (§4's nine states).
type RecState string

// Recommendation states.
const (
	StateActive       RecState = "Active"
	StateExpired      RecState = "Expired"
	StateImplementing RecState = "Implementing"
	StateValidating   RecState = "Validating"
	StateSuccess      RecState = "Success"
	StateReverting    RecState = "Reverting"
	StateReverted     RecState = "Reverted"
	StateRetry        RecState = "Retry"
	StateError        RecState = "Error"
)

// Terminal reports whether the state is terminal.
func (s RecState) Terminal() bool {
	switch s {
	case StateExpired, StateSuccess, StateReverted, StateError:
		return true
	default:
		return false
	}
}

// transitions is the legal state graph; anything else is a bug.
var transitions = map[RecState][]RecState{
	StateActive:       {StateImplementing, StateExpired},
	StateImplementing: {StateValidating, StateRetry, StateError},
	StateValidating:   {StateSuccess, StateReverting, StateRetry, StateError},
	StateReverting:    {StateReverted, StateRetry, StateError},
	StateRetry:        {StateImplementing, StateReverting, StateError, StateExpired},
}

// CanTransition reports whether from → to is legal.
func CanTransition(from, to RecState) bool {
	for _, t := range transitions[from] {
		if t == to {
			return true
		}
	}
	return false
}

// Record is the persisted state of one recommendation.
type Record struct {
	core.Recommendation
	State    RecState
	SubState string
	// RetryTarget is the state a Retry returns to.
	RetryTarget   RecState
	Attempts      int
	LastError     string
	ImplementedAt time.Time
	UpdatedAt     time.Time
	// Validation holds the outcome once validation ran.
	Validation *validate.Outcome
	// UserRequested marks a manual "apply" from the portal (§2); such
	// recommendations are implemented even when auto-implement is off.
	UserRequested bool
}

// Transition moves the record to a new state, enforcing legality.
func (r *Record) Transition(to RecState, now time.Time) error {
	if !CanTransition(r.State, to) {
		return fmt.Errorf("controlplane: illegal transition %s -> %s for %s", r.State, to, r.ID)
	}
	r.State = to
	r.UpdatedAt = now
	return nil
}

// Settings are the §2 user-facing controls for one database, with
// server-level inheritance.
type Settings struct {
	// AutoCreate implements create recommendations automatically.
	AutoCreate bool
	// AutoDrop implements drop recommendations automatically.
	AutoDrop bool
	// InheritFromServer uses the logical server's settings instead.
	InheritFromServer bool
}

// ServerSettings are the logical-server defaults databases may inherit.
type ServerSettings struct {
	AutoCreate bool
	AutoDrop   bool
}

// DatabaseState is the per-database record the control plane persists.
type DatabaseState struct {
	Name          string
	Server        string
	Settings      Settings
	LastSnapshot  time.Time
	LastAnalysis  time.Time
	LastDropScan  time.Time
	ObservedSince time.Time
	// DTASession tracks the DTA session sub-state machine (§5.3.3).
	DTASession string
}

// Effective resolves inheritance against the server settings.
func (s Settings) Effective(server ServerSettings) (autoCreate, autoDrop bool) {
	if s.InheritFromServer {
		return server.AutoCreate, server.AutoDrop
	}
	return s.AutoCreate, s.AutoDrop
}

// Incident is a service-health issue for on-call engineers (§4).
type Incident struct {
	At       time.Time
	Database string
	RecID    string
	Kind     string
	Message  string
}

// Store is the persistent, highly-available state store behind the
// control plane.
type Store interface {
	SaveRecord(r *Record) error
	GetRecord(id string) (*Record, bool)
	Records(filter func(*Record) bool) []*Record
	SaveDatabase(d *DatabaseState) error
	GetDatabase(name string) (*DatabaseState, bool)
	Databases() []*DatabaseState
	SaveIncident(i Incident) error
	Incidents() []Incident
}

// MemStore is the in-memory Store implementation. A Journal can be
// attached so a restarted control plane resumes from persisted state.
type MemStore struct {
	mu        sync.Mutex
	records   map[string]*Record
	databases map[string]*DatabaseState
	incidents []Incident
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{
		records:   make(map[string]*Record),
		databases: make(map[string]*DatabaseState),
	}
}

// SaveRecord implements Store.
func (s *MemStore) SaveRecord(r *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *r
	s.records[r.ID] = &cp
	return nil
}

// GetRecord implements Store.
func (s *MemStore) GetRecord(id string) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[id]
	if !ok {
		return nil, false
	}
	cp := *r
	return &cp, true
}

// Records implements Store, returning copies sorted by ID.
func (s *MemStore) Records(filter func(*Record) bool) []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Record
	for _, r := range s.records {
		if filter == nil || filter(r) {
			cp := *r
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SaveDatabase implements Store.
func (s *MemStore) SaveDatabase(d *DatabaseState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *d
	s.databases[strings.ToLower(d.Name)] = &cp
	return nil
}

// GetDatabase implements Store.
func (s *MemStore) GetDatabase(name string) (*DatabaseState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.databases[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	cp := *d
	return &cp, true
}

// Databases implements Store.
func (s *MemStore) Databases() []*DatabaseState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*DatabaseState, 0, len(s.databases))
	for _, d := range s.databases {
		cp := *d
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SaveIncident implements Store.
func (s *MemStore) SaveIncident(i Incident) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.incidents = append(s.incidents, i)
	return nil
}

// Incidents implements Store.
func (s *MemStore) Incidents() []Incident {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Incident(nil), s.incidents...)
}

var _ Store = (*MemStore)(nil)
