package controlplane

import (
	"errors"
	"fmt"
	"strings"
)

// This file is the user-facing surface of §2: list current
// recommendations, inspect details, apply one manually, and view the
// history of actions with their measured impact — what the Azure portal,
// REST API and T-SQL API expose.

// ErrNoRecommendation reports a details/apply call for a recommendation
// ID the control plane has no record of. Callers classify with
// errors.Is, never by matching the message.
var ErrNoRecommendation = errors.New("controlplane: no recommendation")

// ListRecommendations returns the Active recommendations for a database
// (the Fig. 2 view).
func (cp *ControlPlane) ListRecommendations(db string) []*Record {
	return cp.store.Records(func(r *Record) bool {
		return strings.EqualFold(r.Database, db) && r.State == StateActive
	})
}

// History returns all non-Active records for a database, i.e. the history
// of actions and their outcomes.
func (cp *ControlPlane) History(db string) []*Record {
	return cp.store.Records(func(r *Record) bool {
		return strings.EqualFold(r.Database, db) && r.State != StateActive
	})
}

// Details renders the detailed view of a recommendation (Fig. 3):
// definition, estimated size/impact, and impacted statements.
func (cp *ControlPlane) Details(recID string) (string, error) {
	r, ok := cp.store.GetRecord(recID)
	if !ok {
		return "", fmt.Errorf("%w %q", ErrNoRecommendation, recID)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Describe())
	fmt.Fprintf(&b, "  state: %s", r.State)
	if r.SubState != "" {
		fmt.Fprintf(&b, " (%s)", r.SubState)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  definition: %s\n", r.Index.String())
	fmt.Fprintf(&b, "  estimated size: %.1f MB\n", float64(r.EstSizeBytes)/(1<<20))
	fmt.Fprintf(&b, "  source: %s\n", r.Source)
	if len(r.ImpactedQueries) > 0 {
		fmt.Fprintf(&b, "  impacted statements: %d\n", len(r.ImpactedQueries))
		if m, ok := cp.managedDB(r.Database); ok {
			shown := 0
			for _, q := range r.ImpactedQueries {
				if e, ok := m.db.QueryStore().Query(q); ok {
					fmt.Fprintf(&b, "    - %.90s\n", e.Text)
					shown++
				}
				if shown >= 5 {
					break
				}
			}
		}
	}
	if r.Validation != nil {
		fmt.Fprintf(&b, "  validation: %s\n", r.Validation.Describe())
	}
	return b.String(), nil
}

// Apply marks a recommendation for implementation on the user's behalf;
// the system will implement and validate it even with auto-implement off
// (§2: "the user can manually specify the system to apply a
// recommendation which are validated by the system").
func (cp *ControlPlane) Apply(recID string) error {
	r, ok := cp.store.GetRecord(recID)
	if !ok {
		return fmt.Errorf("%w %q", ErrNoRecommendation, recID)
	}
	if r.State != StateActive {
		return fmt.Errorf("controlplane: recommendation %q is %s, not Active", recID, r.State)
	}
	r.UserRequested = true
	return cp.store.SaveRecord(r)
}

// SetSettings updates a database's auto-implementation settings.
func (cp *ControlPlane) SetSettings(db string, s Settings) error {
	ds, ok := cp.store.GetDatabase(db)
	if !ok {
		return fmt.Errorf("controlplane: database %q not managed", db)
	}
	ds.Settings = s
	return cp.store.SaveDatabase(ds)
}

// OperationalStats is the §8.1-style snapshot across managed databases.
type OperationalStats struct {
	Databases            int
	CreateRecommended    int64
	DropRecommended      int64
	CreatesImplemented   int64
	DropsImplemented     int64
	Validations          int64
	Reverts              int64
	RevertRate           float64
	WriteRegressionShare float64
	Incidents            int64
}

// OpStats aggregates the current operational counters.
func (cp *ControlPlane) OpStats() OperationalStats {
	h := cp.hub
	implemented := h.Counter("implemented.create") + h.Counter("implemented.drop")
	reverts := h.Counter("reverts.triggered")
	s := OperationalStats{
		Databases:          len(cp.sortedManaged()),
		CreateRecommended:  h.Counter("recommendations.create"),
		DropRecommended:    h.Counter("recommendations.drop"),
		CreatesImplemented: h.Counter("implemented.create"),
		DropsImplemented:   h.Counter("implemented.drop"),
		Validations:        h.Counter("validations"),
		Reverts:            reverts,
		Incidents:          h.Counter("incidents"),
	}
	if implemented > 0 {
		s.RevertRate = float64(reverts) / float64(implemented)
	}
	if reverts > 0 {
		s.WriteRegressionShare = float64(h.Counter("reverts.write_regression")) / float64(reverts)
	}
	return s
}

// String renders the stats like the paper's §8.1 narrative.
func (s OperationalStats) String() string {
	return fmt.Sprintf(
		"databases=%d create-recs=%d drop-recs=%d implemented(create=%d drop=%d) validations=%d reverts=%d (%.1f%%, write-regression %.0f%%) incidents=%d",
		s.Databases, s.CreateRecommended, s.DropRecommended,
		s.CreatesImplemented, s.DropsImplemented,
		s.Validations, s.Reverts, s.RevertRate*100, s.WriteRegressionShare*100, s.Incidents)
}
