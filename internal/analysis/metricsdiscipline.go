package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricsDisciplineAnalyzer enforces the observability layer's
// contracts. Metric descriptors must be registered in package-level
// var blocks or init functions — registering one mid-run means the
// catalog (and therefore the deterministic snapshot, which emits a
// zero row for every registered metric) differs depending on which
// code paths a particular run happened to execute. And metric or span
// timings must come from the simulation clock: feeding time.Now or
// time.Since into Observe/ObserveDuration, or handing trace.New the
// sim.WallClock adapter, records host scheduling noise into values
// that are promised to be byte-identical for a given seed.
//
// The wallclock analyzer already bans time.Now in non-test code; the
// timing rules here additionally cover _test.go files, where sleeping
// on the real clock is legitimate but timing a metric with it is not.
// The metrics package itself is exempt: its tests construct
// descriptors at runtime on purpose, to exercise the duplicate-name
// and bad-bounds panics.
var MetricsDisciplineAnalyzer = &Analyzer{
	Name: "metricsdiscipline",
	Doc:  "metric descriptors registered at runtime, or metric/span timings fed from the wall clock",
	Run:  runMetricsDiscipline,
}

const (
	metricsPkgSuffix = "internal/metrics"
	tracePkgSuffix   = "internal/trace"
)

var descConstructors = map[string]bool{
	"NewCounterDesc": true, "NewGaugeDesc": true, "NewHistogramDesc": true,
}

var observeMethods = map[string]bool{"Observe": true, "ObserveDuration": true}

// pkgPathHasSuffix reports whether path is suffix or ends in /suffix.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func runMetricsDiscipline(pass *Pass) {
	if pkgPathHasSuffix(strings.TrimSuffix(pass.PkgPath, ".test"), metricsPkgSuffix) {
		return
	}
	for _, file := range pass.Files {
		// Runtime registration: a New*Desc call reachable only by
		// executing a function other than init.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "init" && fd.Recv == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if path, name, ok := pkgFunc(pass.Info, call); ok &&
					pkgPathHasSuffix(path, metricsPkgSuffix) && descConstructors[name] {
					pass.Reportf(call.Pos(), "metrics.%s called at runtime; register descriptors in a package-level var or init so the catalog is identical for every run", name)
				}
				return true
			})
		}

		// Wall-clock timings flowing into the observability layer.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, _ := methodOf(pass.Info, call); fn != nil && observeMethods[fn.Name()] &&
				fn.Pkg() != nil && pkgPathHasSuffix(fn.Pkg().Path(), metricsPkgSuffix) {
				reportWallTimedArgs(pass, call, fn.Name())
			}
			if path, name, ok := pkgFunc(pass.Info, call); ok &&
				pkgPathHasSuffix(path, tracePkgSuffix) && name == "New" {
				for _, arg := range call.Args {
					if isSimWallClock(pass.TypeOf(arg)) {
						pass.Reportf(arg.Pos(), "trace.New given sim.WallClock; spans must be timed on the virtual clock so durations stay seed-deterministic")
					}
				}
			}
			return true
		})
	}
}

// reportWallTimedArgs flags time.Now / time.Since calls anywhere in
// the arguments of an Observe / ObserveDuration call.
func reportWallTimedArgs(pass *Pass, call *ast.CallExpr, method string) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgFunc(pass.Info, inner); ok && path == "time" && (name == "Now" || name == "Since") {
				pass.Reportf(call.Pos(), "%s fed from time.%s reads the wall clock; derive metric timings from the sim clock so values stay seed-deterministic", method, name)
				return false
			}
			return true
		})
	}
}

// isSimWallClock reports whether t is sim.WallClock (or a pointer to
// it) from this module's simulation substrate.
func isSimWallClock(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WallClock" && obj.Pkg() != nil && pkgPathHasSuffix(obj.Pkg().Path(), simPkgSuffix)
}
