package trace

import (
	"strings"
	"testing"
	"time"

	"autoindex/internal/metrics"
	"autoindex/internal/sim"
	"autoindex/internal/telemetry"
)

func TestSpanTree(t *testing.T) {
	clock := sim.NewClock()
	hub := telemetry.NewHub(0)
	reg := metrics.NewRegistry()
	tr := New(hub, clock, reg)

	root := tr.Start("db01", "tuning-session")
	clock.Advance(2 * time.Second)
	child := root.Child("dta")
	clock.Advance(500 * time.Millisecond)
	child.Annotate("candidates", 7)
	child.End()
	root.End()
	root.End() // idempotent

	// Second session for the same tenant gets the next sequence number.
	again := tr.Start("db01", "tuning-session")
	if got := again.ID(); got != "db01#2" {
		t.Fatalf("second root span id = %q, want db01#2", got)
	}
	other := tr.Start("db02", "tuning-session")
	if got := other.ID(); got != "db02#1" {
		t.Fatalf("other tenant span id = %q, want db02#1", got)
	}

	var spans []telemetry.Event
	for _, e := range hub.Events() {
		if e.Kind == "span" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("got %d span events, want 2 (child then root)", len(spans))
	}
	// Children end before their parents, so the child event comes first.
	if !strings.Contains(spans[0].Detail, "dta id=db01#1.1 dur_ms=500") {
		t.Errorf("child detail = %q", spans[0].Detail)
	}
	if !strings.Contains(spans[0].Detail, "candidates=7") {
		t.Errorf("child detail missing annotation: %q", spans[0].Detail)
	}
	if !strings.Contains(spans[1].Detail, "tuning-session id=db01#1 dur_ms=2500") {
		t.Errorf("root detail = %q", spans[1].Detail)
	}
	if spans[0].Database != "db01" {
		t.Errorf("span tenant = %q, want db01", spans[0].Database)
	}
}

func TestSpanMetrics(t *testing.T) {
	clock := sim.NewClock()
	reg := metrics.NewRegistry()
	tr := New(nil, clock, reg) // no hub: metrics still flow

	s := tr.Start("db09", "validate")
	clock.Advance(42 * time.Millisecond)
	s.End()

	if got := reg.Counter(descSpans).Value(); got != 1 {
		t.Fatalf("trace.spans = %d, want 1", got)
	}
	if got := reg.Histogram(descSpanMillis).Sum(); got != 42 {
		t.Fatalf("trace.span_ms sum = %d, want 42", got)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.Start("db01", "x")
	if s != nil {
		t.Fatal("nil tracer must return a nil span")
	}
	s.Annotate("k", "v")
	c := s.Child("y")
	c.End()
	s.End()
	if s.ID() != "" {
		t.Fatal("nil span ID must be empty")
	}
}
