package engine

import (
	"fmt"
	"strings"

	"autoindex/internal/executor"
	"autoindex/internal/optimizer"
	"autoindex/internal/sqlparser"
	"autoindex/internal/value"
)

// compile turns a plan subtree into an executable source with its output
// layout.
func (d *Database) compile(n *optimizer.Node, meter *executor.Meter) (executor.Source, *layout, error) {
	switch n.Kind {
	case optimizer.KindSeqScan, optimizer.KindIndexScan, optimizer.KindIndexSeek:
		if strings.EqualFold(n.Index, optimizer.ClusteredIndexName(n.Table)) {
			t, ok := d.tables[strings.ToLower(n.Table)]
			if !ok {
				return nil, nil, fmt.Errorf("engine: unknown table %q", n.Table)
			}
			return d.compileClusteredSeek(n, t, meter)
		}
		return d.compileAccess(n, meter)
	case optimizer.KindNLJoin:
		return d.compileNLJoin(n, meter)
	case optimizer.KindHashJoin:
		return d.compileHashJoin(n, meter)
	case optimizer.KindHashAgg, optimizer.KindScalarAgg:
		return d.compileAgg(n, meter)
	case optimizer.KindSort:
		return d.compileSort(n, meter)
	case optimizer.KindTop:
		src, lay, err := d.compile(n.Children[0], meter)
		if err != nil {
			return nil, nil, err
		}
		return &executor.Top{Child: src, N: n.TopN}, lay, nil
	case optimizer.KindProject:
		return d.compileProject(n, meter)
	default:
		return nil, nil, fmt.Errorf("engine: cannot compile %v", n.Kind)
	}
}

func (d *Database) compileNLJoin(n *optimizer.Node, meter *executor.Meter) (executor.Source, *layout, error) {
	outerSrc, outerLay, err := d.compile(n.Children[0], meter)
	if err != nil {
		return nil, nil, err
	}
	inner := n.Children[1]
	outerIdx := outerLay.find(n.JoinLeft.Table, n.JoinLeft.Column)
	if outerIdx < 0 {
		return nil, nil, fmt.Errorf("engine: join column %s not in outer layout", n.JoinLeft)
	}
	// Determine the inner layout once with a probe compilation.
	probeNode := innerSeekNode(inner, n.JoinRight, value.NewNull())
	_, innerLay, err := d.compile(probeNode, &executor.Meter{})
	if err != nil {
		return nil, nil, err
	}
	bind := func(key value.Value) executor.Source {
		node := innerSeekNode(inner, n.JoinRight, key)
		src, _, err := d.compile(node, meter)
		if err != nil {
			return &executor.SliceSource{}
		}
		return src
	}
	join := &executor.NLJoin{Outer: outerSrc, OuterCol: outerIdx, Bind: bind, Meter: meter}
	return join, concatLayouts(outerLay, innerLay), nil
}

// innerSeekNode builds the per-probe seek node for an NL-join inner.
func innerSeekNode(inner *optimizer.Node, joinCol sqlparser.ColRef, key value.Value) *optimizer.Node {
	eq := sqlparser.Predicate{
		Col: sqlparser.ColRef{Table: inner.Alias, Column: joinCol.Column},
		Op:  sqlparser.OpEQ,
		Val: key,
	}
	return &optimizer.Node{
		Kind:     optimizer.KindIndexSeek,
		Table:    inner.Table,
		Alias:    inner.Alias,
		Index:    inner.Index,
		SeekEq:   []sqlparser.Predicate{eq},
		Residual: inner.Residual,
		Lookup:   inner.Lookup,
	}
}

func (d *Database) compileHashJoin(n *optimizer.Node, meter *executor.Meter) (executor.Source, *layout, error) {
	probeSrc, probeLay, err := d.compile(n.Children[0], meter)
	if err != nil {
		return nil, nil, err
	}
	buildSrc, buildLay, err := d.compile(n.Children[1], meter)
	if err != nil {
		return nil, nil, err
	}
	probeIdx := probeLay.find(n.JoinLeft.Table, n.JoinLeft.Column)
	buildIdx := buildLay.find(n.JoinRight.Table, n.JoinRight.Column)
	if probeIdx < 0 || buildIdx < 0 {
		return nil, nil, fmt.Errorf("engine: hash join columns %s/%s not found", n.JoinLeft, n.JoinRight)
	}
	join := &executor.HashJoin{
		Probe: probeSrc, Build: buildSrc,
		ProbeCol: probeIdx, BuildCol: buildIdx,
		Meter: meter,
	}
	return join, concatLayouts(probeLay, buildLay), nil
}

func aggKind(f sqlparser.AggFunc) executor.AggKind {
	switch f {
	case sqlparser.AggCount:
		return executor.AggCountStar
	case sqlparser.AggCountCol:
		return executor.AggCountCol
	case sqlparser.AggSum:
		return executor.AggSum
	case sqlparser.AggAvg:
		return executor.AggAvg
	case sqlparser.AggMin:
		return executor.AggMin
	case sqlparser.AggMax:
		return executor.AggMax
	default:
		return executor.AggKey
	}
}

func (d *Database) compileAgg(n *optimizer.Node, meter *executor.Meter) (executor.Source, *layout, error) {
	src, childLay, err := d.compile(n.Children[0], meter)
	if err != nil {
		return nil, nil, err
	}
	var groupCols []int
	for _, g := range n.GroupBy {
		idx := childLay.find(g.Table, g.Column)
		if idx < 0 {
			return nil, nil, fmt.Errorf("engine: group-by column %s not found", g)
		}
		groupCols = append(groupCols, idx)
	}
	outLay := &layout{}
	var specs []executor.AggSpec
	keyOrder := 0
	for _, it := range n.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("engine: SELECT * cannot be combined with aggregation")
		}
		if it.Agg == sqlparser.AggNone {
			// Must be a grouping column; emit its key position.
			idx := childLay.find(it.Col.Table, it.Col.Column)
			if idx < 0 {
				return nil, nil, fmt.Errorf("engine: column %s not found", it.Col)
			}
			// Align the AggKey with the matching group column.
			pos := -1
			for gi, gc := range groupCols {
				if gc == idx {
					pos = gi
					break
				}
			}
			if pos < 0 {
				return nil, nil, fmt.Errorf("engine: column %s not in GROUP BY", it.Col)
			}
			specs = append(specs, executor.AggSpec{Kind: executor.AggKey, Col: pos})
			outLay.cols = append(outLay.cols, layoutCol{alias: strings.ToLower(it.Col.Table), name: strings.ToLower(it.Col.Column)})
			keyOrder++
			continue
		}
		colIdx := 0
		if it.Agg != sqlparser.AggCount {
			colIdx = childLay.find(it.Col.Table, it.Col.Column)
			if colIdx < 0 {
				return nil, nil, fmt.Errorf("engine: aggregate column %s not found", it.Col)
			}
		}
		specs = append(specs, executor.AggSpec{Kind: aggKind(it.Agg), Col: colIdx})
		outLay.cols = append(outLay.cols, layoutCol{name: strings.ToLower(it.SQL())})
	}
	agg := &executor.HashAgg{Child: src, GroupCols: groupCols, Specs: specs, Meter: meter}
	return agg, outLay, nil
}

// keyedHashAggRender: the executor's HashAgg renders AggKey by consuming
// group key values in order; our spec's Col for AggKey is the position in
// the group key, which matches that behaviour.

func (d *Database) compileSort(n *optimizer.Node, meter *executor.Meter) (executor.Source, *layout, error) {
	src, lay, err := d.compile(n.Children[0], meter)
	if err != nil {
		return nil, nil, err
	}
	type ord struct {
		idx  int
		desc bool
	}
	var ords []ord
	for _, ob := range n.OrderBy {
		idx := lay.find(ob.Col.Table, ob.Col.Column)
		if idx < 0 {
			// After aggregation the column may be addressable by rendered
			// name (e.g. ORDER BY an aggregate is unsupported; plain columns
			// keep their names).
			return nil, nil, fmt.Errorf("engine: order-by column %s not found", ob.Col)
		}
		ords = append(ords, ord{idx: idx, desc: ob.Desc})
	}
	less := func(a, b value.Row) bool {
		for _, o := range ords {
			c := value.Compare(a[o.idx], b[o.idx])
			if c == 0 {
				continue
			}
			if o.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	return &executor.Sort{Child: src, Less: less, Meter: meter}, lay, nil
}

func (d *Database) compileProject(n *optimizer.Node, meter *executor.Meter) (executor.Source, *layout, error) {
	src, childLay, err := d.compile(n.Children[0], meter)
	if err != nil {
		return nil, nil, err
	}
	outLay := &layout{}
	var idxs []int
	for _, it := range n.Items {
		switch {
		case it.Star:
			for i, c := range childLay.cols {
				if c.name == ridColName {
					continue
				}
				idxs = append(idxs, i)
				outLay.cols = append(outLay.cols, c)
			}
		case it.Agg != sqlparser.AggNone:
			idx := childLay.find("", it.SQL())
			if idx < 0 {
				return nil, nil, fmt.Errorf("engine: projected aggregate %s not found", it.SQL())
			}
			idxs = append(idxs, idx)
			outLay.cols = append(outLay.cols, childLay.cols[idx])
		default:
			idx := childLay.find(it.Col.Table, it.Col.Column)
			if idx < 0 {
				return nil, nil, fmt.Errorf("engine: projected column %s not found", it.Col)
			}
			idxs = append(idxs, idx)
			outLay.cols = append(outLay.cols, childLay.cols[idx])
		}
	}
	fn := func(r value.Row) value.Row {
		out := make(value.Row, len(idxs))
		for i, idx := range idxs {
			out[i] = r[idx]
		}
		return out
	}
	return &executor.Project{Child: src, Fn: fn, Meter: meter}, outLay, nil
}
