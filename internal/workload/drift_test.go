package workload

import (
	"sort"
	"testing"
)

// Template names are not guaranteed unique (a table can draw the same
// equality template twice), so the rotation tests key everything by
// slice position, which is the identity RotateMix itself works with.
func weightsByIndex(tn *Tenant) []float64 {
	w := make([]float64, len(tn.Templates))
	for i, tpl := range tn.Templates {
		w[i] = tpl.Weight
	}
	return w
}

func TestRotateMixRetiresHotReads(t *testing.T) {
	_, sibs := stampSiblings(t, 2)
	tn, sib := sibs[0], sibs[1]
	before := weightsByIndex(tn)
	sibBefore := weightsByIndex(sib)

	// Pre-rotation read ranking, (weight, name) ascending — the same
	// order retireAndPromote works in.
	var readIdx []int
	for i, tpl := range tn.Templates {
		if !tpl.IsWrite {
			readIdx = append(readIdx, i)
		}
	}
	if len(readIdx) < 2 {
		t.Fatalf("profile has %d read templates; need at least 2", len(readIdx))
	}
	sort.SliceStable(readIdx, func(a, b int) bool {
		ta, tb := tn.Templates[readIdx[a]], tn.Templates[readIdx[b]]
		if ta.Weight != tb.Weight {
			return ta.Weight < tb.Weight
		}
		return ta.Name < tb.Name
	})

	tn.RotateMix()
	after := weightsByIndex(tn)

	// The write mix is untouched: maintenance pressure must survive the
	// drift, or staled indexes would look free to keep.
	for i, tpl := range tn.Templates {
		if tpl.IsWrite && after[i] != before[i] {
			t.Errorf("write template %s: weight %v -> %v, want unchanged", tpl.Name, before[i], after[i])
		}
	}
	// The formerly-cold half inherits the hot half's weights in reverse
	// rank order; the formerly-hot half is retired outright.
	n := len(readIdx)
	promoted := (n + 1) / 2
	for rank, i := range readIdx {
		name := tn.Templates[i].Name
		if rank < promoted {
			if want := before[readIdx[n-1-rank]]; after[i] != want {
				t.Errorf("promoted read %s: weight %v, want %v (inherited from rank %d)", name, after[i], want, n-1-rank)
			}
		} else if after[i] != 0 {
			t.Errorf("hot read %s not retired: weight %v", name, after[i])
		}
	}

	// Archetype siblings share the template slice copy-on-write: the
	// rotation must be invisible to them.
	for i, w := range weightsByIndex(sib) {
		if w != sibBefore[i] {
			t.Errorf("sibling template %s mutated: %v -> %v", sib.Templates[i].Name, sibBefore[i], w)
		}
	}

	// The rotation is a pure function of the mix: the sibling (stamped
	// from the same archetype, so the same mix) rotates identically.
	sib.RotateMix()
	for i, w := range weightsByIndex(sib) {
		if w != after[i] {
			t.Errorf("rotation not deterministic: template %d is %v on one tenant, %v on its sibling", i, after[i], w)
		}
	}

	// Retired templates are dead: pickTemplate never samples weight zero.
	for i := 0; i < 500; i++ {
		if tpl := tn.pickTemplate(); tpl.Weight == 0 {
			t.Fatalf("retired template %s sampled after rotation", tpl.Name)
		}
	}
}
