package dta

import (
	"reflect"
	"testing"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/sim"
	"autoindex/internal/workload"
)

// diffTenant builds one seeded tenant and replays its own template stream
// so both arms of the differential test see byte-identical Query Stores.
func diffTenant(t *testing.T, seed int64, tier engine.Tier, n int) *workload.Tenant {
	t.Helper()
	clock := sim.NewClock()
	tn, err := workload.NewTenant(workload.Profile{
		Name: "difftest",
		Tier: tier,
		Seed: seed,
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	tn.Run(45*time.Minute, n)
	return tn
}

// TestCachedCostingMatchesUncached is the differential guarantee behind
// the costing acceleration layer: with the workload sample held equal,
// the plan-cost cache and the upper-bound enumeration pruning change only
// how many optimizer calls a DTA pass makes — never what it recommends or
// reports. 50 seeded scenarios, including the chaos-fleet seeds.
func TestCachedCostingMatchesUncached(t *testing.T) {
	seeds := []int64{99, 424242, 20170301}
	for s := int64(1); len(seeds) < 50; s++ {
		seeds = append(seeds, s*7919+13)
	}
	tiers := []engine.Tier{engine.TierBasic, engine.TierStandard, engine.TierPremium}
	for i, seed := range seeds {
		tier := tiers[i%len(tiers)]
		// Two independent, identical tenants: the uncached arm must never
		// observe sampled statistics or cache state the other arm built.
		accelTn := diffTenant(t, seed, tier, 160)
		plainTn := diffTenant(t, seed, tier, 160)

		opts := OptionsForTier(tier)
		// Unlimited call budget: when the budget binds, the uncached arm
		// runs out of calls earlier than the cached arm by design (cache
		// hits are free), so recommendations may legitimately diverge.
		opts.MaxWhatIfCalls = 0
		accelRes, err := Run(accelTn.DB, opts)
		if err != nil {
			t.Fatalf("seed %d: accelerated run: %v", seed, err)
		}

		opts.DisableCostCache = true
		opts.DisablePruning = true
		plainRes, err := Run(plainTn.DB, opts)
		if err != nil {
			t.Fatalf("seed %d: uncached run: %v", seed, err)
		}

		if !reflect.DeepEqual(accelRes.Recommendations, plainRes.Recommendations) {
			t.Errorf("seed %d (tier %v): recommendations diverge:\naccel: %+v\nplain: %+v",
				seed, tier, accelRes.Recommendations, plainRes.Recommendations)
		}
		if !reflect.DeepEqual(accelRes.Reports, plainRes.Reports) {
			t.Errorf("seed %d (tier %v): reports diverge", seed, tier)
		}
		if accelRes.EstWorkloadImprovementPct != plainRes.EstWorkloadImprovementPct {
			t.Errorf("seed %d: improvement %v vs %v",
				seed, accelRes.EstWorkloadImprovementPct, plainRes.EstWorkloadImprovementPct)
		}
		if accelRes.WhatIfCalls > plainRes.WhatIfCalls {
			t.Errorf("seed %d: accelerated pass used MORE optimizer calls (%d > %d)",
				seed, accelRes.WhatIfCalls, plainRes.WhatIfCalls)
		}
	}
}
