package dmv

import (
	"testing"
	"time"
)

var t0 = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

func TestMissingIndexAccumulation(t *testing.T) {
	s := NewMissingIndexStore()
	c := Candidate{Table: "orders", Equality: []string{"customer_id"}, Include: []string{"amount"}}
	s.Observe(c, 101, 10, 50, t0)
	s.Observe(c, 101, 20, 70, t0.Add(time.Minute))
	s.Observe(c, 102, 30, 60, t0.Add(2*time.Minute))

	snap := s.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("entries: %d", len(snap))
	}
	e := snap[0]
	if e.Seeks != 3 {
		t.Fatalf("seeks = %d", e.Seeks)
	}
	if e.AvgQueryCost != 20 {
		t.Fatalf("avg cost = %v", e.AvgQueryCost)
	}
	if e.AvgImprovementPct != 60 {
		t.Fatalf("avg improvement = %v", e.AvgImprovementPct)
	}
	if len(e.QueryHashes) != 2 || e.QueryHashes[101] != 2 {
		t.Fatalf("query hashes: %+v", e.QueryHashes)
	}
	if e.Score() <= 0 {
		t.Fatal("score")
	}
}

func TestCandidateKeyCanonical(t *testing.T) {
	a := Candidate{Table: "T", Equality: []string{"B", "a"}}
	b := Candidate{Table: "t", Equality: []string{"a", "b"}}
	if a.Key() != b.Key() {
		t.Fatal("keys must canonicalise column order and case")
	}
	c := Candidate{Table: "t", Equality: []string{"a"}, Inequality: []string{"b"}}
	if a.Key() == c.Key() {
		t.Fatal("equality vs inequality must differ")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s := NewMissingIndexStore()
	s.Observe(Candidate{Table: "t", Equality: []string{"a"}}, 1, 10, 50, t0)
	snap := s.Snapshot()
	snap[0].Seeks = 999
	snap[0].Candidate.Equality[0] = "mutated"
	snap2 := s.Snapshot()
	if snap2[0].Seeks != 1 || snap2[0].Candidate.Equality[0] != "a" {
		t.Fatal("snapshot aliases store state")
	}
}

func TestResetClearsAndCounts(t *testing.T) {
	s := NewMissingIndexStore()
	s.Observe(Candidate{Table: "t", Equality: []string{"a"}}, 1, 10, 50, t0)
	if s.Len() != 1 {
		t.Fatal("len")
	}
	s.Reset()
	if s.Len() != 0 || s.Resets() != 1 {
		t.Fatal("reset")
	}
}

func TestSnapshotOrderByScore(t *testing.T) {
	s := NewMissingIndexStore()
	low := Candidate{Table: "t", Equality: []string{"low"}}
	high := Candidate{Table: "t", Equality: []string{"high"}}
	s.Observe(low, 1, 1, 10, t0)
	for i := 0; i < 10; i++ {
		s.Observe(high, 2, 100, 90, t0)
	}
	snap := s.Snapshot()
	if snap[0].Candidate.Equality[0] != "high" {
		t.Fatal("snapshot must order by descending score")
	}
}

func TestTrackedQueryCap(t *testing.T) {
	s := NewMissingIndexStore()
	c := Candidate{Table: "t", Equality: []string{"a"}}
	for i := 0; i < maxTrackedQueries*2; i++ {
		s.Observe(c, uint64(i), 1, 10, t0)
	}
	snap := s.Snapshot()
	if len(snap[0].QueryHashes) > maxTrackedQueries {
		t.Fatalf("query tracking unbounded: %d", len(snap[0].QueryHashes))
	}
	if snap[0].Seeks != int64(maxTrackedQueries*2) {
		t.Fatal("seeks must still count everything")
	}
}

func TestIndexUsageStore(t *testing.T) {
	s := NewIndexUsageStore()
	s.RecordSeek("IX_a", "t", t0)
	s.RecordSeek("ix_A", "t", t0.Add(time.Minute)) // case-insensitive merge
	s.RecordScan("ix_a", "t", t0.Add(2*time.Minute))
	s.RecordLookup("ix_a", "t", t0.Add(3*time.Minute))
	s.RecordUpdate("ix_a", "t")

	u, ok := s.Usage("IX_A")
	if !ok {
		t.Fatal("usage row missing")
	}
	if u.Seeks != 2 || u.Scans != 1 || u.Lookups != 1 || u.Updates != 1 {
		t.Fatalf("usage: %+v", u)
	}
	if u.Reads() != 4 {
		t.Fatalf("reads = %d", u.Reads())
	}
	if !u.LastRead.Equal(t0.Add(3 * time.Minute)) {
		t.Fatalf("last read: %v", u.LastRead)
	}
	all := s.All()
	if len(all) != 1 {
		t.Fatalf("all: %+v", all)
	}
	s.Forget("ix_a")
	if _, ok := s.Usage("ix_a"); ok {
		t.Fatal("forget failed")
	}
}
