package querystore

import (
	"fmt"
	"time"

	"autoindex/internal/mathx"
	"autoindex/internal/snap"
)

// EncodeTo serializes the store's aggregated state — queries, plans,
// interval statistics and execution totals — in deterministic order
// (ascending query hash, ascending plan hash, interval slice order).
// Clock, interval and the chaos dropper are runtime wiring that stays
// resident through hibernation and is not serialized.
func (s *Store) EncodeTo(w *snap.Writer) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Varint(s.dropped)
	w.Varint(s.totalExecs)
	w.Varint(s.liveExecs)
	w.Uvarint(uint64(len(s.queries)))
	for _, h := range s.sortedHashesLocked() {
		q := s.queries[h]
		w.Uvarint(q.QueryHash)
		w.String(q.Text)
		w.Bool(q.Truncated)
		w.Bool(q.IsWrite)
		w.Bool(q.HasWritePredicates)
		w.Varint(q.LiveExecutions)
		w.Uvarint(uint64(len(q.Plans)))
		for _, p := range q.sortedPlans() {
			w.Uvarint(p.Info.PlanHash)
			w.Uvarint(uint64(len(p.Info.IndexesUsed)))
			for _, ix := range p.Info.IndexesUsed {
				w.String(ix)
			}
			encodeTime(w, p.FirstSeen)
			encodeTime(w, p.LastSeen)
			w.Uvarint(uint64(len(p.Intervals)))
			for _, iv := range p.Intervals {
				encodeTime(w, iv.Start)
				w.Varint(iv.Count)
				encodeWelford(w, iv.CPU)
				encodeWelford(w, iv.Reads)
				encodeWelford(w, iv.Duration)
			}
		}
	}
}

// DecodeFrom replaces the store's aggregated state with the decoded
// snapshot, restoring in place so engine and control-plane references to
// the Store (and its dropper hook) stay valid across hibernation.
func (s *Store) DecodeFrom(r *snap.Reader) error {
	dropped, err := r.Varint()
	if err != nil {
		return err
	}
	totalExecs, err := r.Varint()
	if err != nil {
		return err
	}
	liveExecs, err := r.Varint()
	if err != nil {
		return err
	}
	nq, err := r.Len()
	if err != nil {
		return err
	}
	queries := make(map[uint64]*QueryEntry, nq)
	for i := 0; i < nq; i++ {
		q := &QueryEntry{}
		if q.QueryHash, err = r.Uvarint(); err != nil {
			return err
		}
		if q.Text, err = r.String(); err != nil {
			return err
		}
		if q.Truncated, err = r.Bool(); err != nil {
			return err
		}
		if q.IsWrite, err = r.Bool(); err != nil {
			return err
		}
		if q.HasWritePredicates, err = r.Bool(); err != nil {
			return err
		}
		if q.LiveExecutions, err = r.Varint(); err != nil {
			return err
		}
		np, err := r.Len()
		if err != nil {
			return err
		}
		q.Plans = make(map[uint64]*PlanEntry, np)
		for j := 0; j < np; j++ {
			p := &PlanEntry{}
			if p.Info.PlanHash, err = r.Uvarint(); err != nil {
				return err
			}
			nix, err := r.Len()
			if err != nil {
				return err
			}
			p.Info.IndexesUsed = make([]string, nix)
			for k := 0; k < nix; k++ {
				if p.Info.IndexesUsed[k], err = r.String(); err != nil {
					return err
				}
			}
			if p.FirstSeen, err = decodeTime(r); err != nil {
				return err
			}
			if p.LastSeen, err = decodeTime(r); err != nil {
				return err
			}
			niv, err := r.Len()
			if err != nil {
				return err
			}
			p.Intervals = make([]*IntervalStats, niv)
			for k := 0; k < niv; k++ {
				iv := &IntervalStats{}
				if iv.Start, err = decodeTime(r); err != nil {
					return err
				}
				if iv.Count, err = r.Varint(); err != nil {
					return err
				}
				if iv.CPU, err = decodeWelford(r); err != nil {
					return err
				}
				if iv.Reads, err = decodeWelford(r); err != nil {
					return err
				}
				if iv.Duration, err = decodeWelford(r); err != nil {
					return err
				}
				p.Intervals[k] = iv
			}
			if _, dup := q.Plans[p.Info.PlanHash]; dup {
				return fmt.Errorf("querystore: %w: duplicate plan hash %d", snap.ErrCorrupt, p.Info.PlanHash)
			}
			q.Plans[p.Info.PlanHash] = p
		}
		if _, dup := queries[q.QueryHash]; dup {
			return fmt.Errorf("querystore: %w: duplicate query hash %d", snap.ErrCorrupt, q.QueryHash)
		}
		queries[q.QueryHash] = q
	}
	s.mu.Lock()
	s.queries = queries
	s.dropped = dropped
	s.totalExecs = totalExecs
	s.liveExecs = liveExecs
	s.mu.Unlock()
	return nil
}

// Release drops the aggregated state (the memory hibernation reclaims)
// while keeping the Store shell — clock, interval, dropper — resident.
func (s *Store) Release() {
	s.mu.Lock()
	s.queries = nil
	s.mu.Unlock()
}

// sortedHashesLocked returns query hashes ascending; callers hold mu.
func (s *Store) sortedHashesLocked() []uint64 {
	out := make([]uint64, 0, len(s.queries))
	//lint:ignore maporder keys are collected then sorted by sortUint64 below; the analyzer only credits sort.* calls
	for h := range s.queries {
		out = append(out, h)
	}
	sortUint64(out)
	return out
}

func sortUint64(s []uint64) {
	// Tiny insertion sort avoids pulling sort.Slice into the hot encode
	// path for the common few-dozen-template case.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func encodeTime(w *snap.Writer, t time.Time) { w.Varint(t.UnixNano()) }

func decodeTime(r *snap.Reader) (time.Time, error) {
	n, err := r.Varint()
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(0, n).UTC(), nil
}

func encodeWelford(w *snap.Writer, v mathx.Welford) {
	w.Varint(v.N)
	w.Float(v.Mean)
	w.Float(v.M2())
}

func decodeWelford(r *snap.Reader) (mathx.Welford, error) {
	n, err := r.Varint()
	if err != nil {
		return mathx.Welford{}, err
	}
	mean, err := r.Float()
	if err != nil {
		return mathx.Welford{}, err
	}
	m2, err := r.Float()
	if err != nil {
		return mathx.Welford{}, err
	}
	return mathx.WelfordFromParts(n, mean, m2), nil
}
