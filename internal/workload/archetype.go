package workload

import (
	"fmt"

	"autoindex/internal/engine"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/stats"
)

// Archetype is a tenant template built once and stamped onto many
// tenants. In a real multi-tenant fleet most databases are instances of
// a few application archetypes — same schema, same base data shape, same
// statement mix — so the simulator builds each archetype's expensive
// parts once (schema templates, base rows, statement templates, sampled
// histograms) and lets every stamped tenant alias them copy-on-write.
// A tenant forks a private copy only when tenant-local DDL or a
// statistics refresh actually diverges it from the template; everything
// else stays physically shared, which is what makes a 100k–1M tenant
// fleet fit one machine.
type Archetype struct {
	// Name identifies the archetype (it is also the template profile
	// name, so all derivation is keyed by it).
	Name string
	// Profile is the template profile; stamped tenants override Name and
	// Seed with their own.
	Profile Profile
	// Tables are the schema templates shared by every sibling.
	Tables []TableSpec
	// Templates is the shared statement mix; all per-tenant state is
	// reached through the Tenant passed to Gen.
	Templates []*Template
	// Indexes are the "user-tuned" indexes the template carries, stamped
	// onto each sibling at creation.
	Indexes []schema.IndexDef
	// Shared is the copy-on-write catalog (canonical table definitions,
	// base rows, histograms) the engine aliases and the hibernation codec
	// writes references into.
	Shared *engine.SharedCatalog

	statCols      []archStat
	longQueryProb float64
}

type archStat struct {
	table, column string
	st            *stats.ColumnStats
}

// NewArchetype builds the template tenant for a profile and harvests it
// into a stampable archetype. The template database itself is discarded;
// only the shared catalog, statement templates and index definitions
// survive.
func NewArchetype(p Profile, clock sim.Clock) (*Archetype, error) {
	tpl, err := NewTenant(p, clock)
	if err != nil {
		return nil, err
	}
	a := &Archetype{
		Name:          p.Name,
		Profile:       tpl.Profile, // scale etc. normalized by NewTenant
		Tables:        tpl.Tables,
		Templates:     tpl.Templates,
		Indexes:       tpl.DB.IndexDefs(),
		Shared:        engine.NewSharedCatalog(),
		longQueryProb: tpl.longQueryProb,
	}
	// Canonical base rows: regenerate with the same seed-keyed streams
	// createAndPopulate used. generateRows draws only from name-keyed
	// children, so the regeneration is bit-identical to what the template
	// database was populated with.
	data := tpl.rng.Child("data")
	for _, ts := range a.Tables {
		def := tpl.DB.TableDefPtr(ts.Name)
		if def == nil {
			return nil, fmt.Errorf("workload: archetype %s: table %s missing from template", p.Name, ts.Name)
		}
		a.Shared.AddTable(def, generateRows(ts, ts.Rows, data.Child(ts.Name)))
	}
	// Canonical histograms: the template's sampled statistics, shared by
	// pointer until a tenant's own refresh forks them.
	for _, ts := range a.Tables {
		for _, c := range ts.Columns {
			if st := tpl.DB.StatPtr(ts.Name, c.Name); st != nil {
				a.Shared.AddStats(ts.Name, c.Name, st)
				a.statCols = append(a.statCols, archStat{table: ts.Name, column: c.Name, st: st})
			}
		}
	}
	return a, nil
}

// NewTenantFromArchetype stamps a new tenant from the archetype: a fresh
// engine shell whose tables alias the archetype's definitions and base
// rows, whose statistics alias the archetype's histograms, and whose
// statement mix is the shared template slice. Construction does no row
// generation and no statistics builds — stamping cost is one B+ tree /
// heap build over shared row slices.
func NewTenantFromArchetype(a *Archetype, name string, seed int64, clock sim.Clock) (*Tenant, error) {
	p := a.Profile
	p.Name = name
	p.Seed = seed
	cfg := engine.DefaultConfig(name, p.Tier, seed)
	db := engine.New(cfg, clock)
	t := &Tenant{
		Profile:       p,
		DB:            db,
		Tables:        a.Tables,
		Templates:     a.Templates,
		Archetype:     a,
		rng:           sim.NewRNG(seed).Child("workload/" + name),
		longQueryProb: a.longQueryProb,
		insertIDs:     make(map[string]int64),
		feedNext:      make(map[string]int64),
	}
	for _, ts := range a.Tables {
		if err := db.SeedTable(a.Shared.TableDef(ts.Name), a.Shared.Rows(ts.Name)); err != nil {
			return nil, err
		}
		t.registerFeed(ts)
	}
	for _, def := range a.Indexes {
		if err := db.SeedIndex(def, clock.Now()); err != nil {
			return nil, err
		}
	}
	for _, s := range a.statCols {
		db.SeedStats(s.table, s.column, s.st)
	}
	return t, nil
}
