package analysis

import (
	"go/ast"
	"strings"
)

// WallClockAnalyzer forbids reading the wall clock or the global
// math/rand source outside internal/sim. Every component reads time
// through sim.Clock and randomness through seeded sim.RNG streams;
// that is the whole reason fleet runs are bit-identical for a given
// seed. A stray time.Now or rand.Intn silently reintroduces
// nondeterminism that only shows up as flaky fleet diffs much later.
//
// Constructing a local, seeded generator (rand.New(rand.NewSource(s)))
// is deterministic and allowed; only the package-level functions that
// draw from the process-global source are flagged. _test.go files are
// exempt: tests legitimately sleep to coordinate real goroutines, and
// test wall-time never feeds simulation output.
var WallClockAnalyzer = &Analyzer{
	Name:      "wallclock",
	Doc:       "wall-clock time or global math/rand outside internal/sim (use sim.Clock / sim.RNG)",
	SkipTests: true,
	Run:       runWallClock,
}

// simPkgSuffix exempts the simulation substrate itself, which is the
// one place allowed to touch the real clock (sim.WallClock adapts it).
const simPkgSuffix = "internal/sim"

var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Sleep": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// seeded constructors on math/rand and math/rand/v2 that do not touch
// the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runWallClock(pass *Pass) {
	if pass.PkgPath == simPkgSuffix || strings.HasSuffix(pass.PkgPath, "/"+simPkgSuffix) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass.Info, call)
			if !ok {
				return true
			}
			switch {
			case path == "time" && wallTimeFuncs[name]:
				pass.Reportf(call.Pos(), "time.%s reads the wall clock; use sim.Clock so runs stay seed-deterministic", name)
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
				pass.Reportf(call.Pos(), "global rand.%s draws from the process-wide source; use a seeded sim.RNG stream", name)
			}
			return true
		})
	}
}
