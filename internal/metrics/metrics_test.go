package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// Test descriptors are registered at package level like everyone
// else's: the catalog is process-wide and the metricsdiscipline lint
// rule applies to tests too.
var (
	tCounter = NewCounterDesc("test.counter", "a test counter")
	tGauge   = NewGaugeDesc("test.gauge", "a test gauge")
	tHist    = NewHistogramDesc("test.hist_ms", "a test histogram", 1, 10, 100)
	tVol     = NewCounterDesc("test.volatile", "a scheduling-dependent test counter").MarkVolatile()
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(tCounter)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter(tCounter) != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge(tGauge)
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram(tHist)
	h.Observe(0)   // bucket le=1
	h.Observe(1)   // bucket le=1 (inclusive upper bound)
	h.Observe(2)   // bucket le=10
	h.Observe(-9)  // clamps to 0, bucket le=1
	h.Observe(101) // overflow
	h.ObserveDuration(50 * time.Millisecond)
	if got := h.Count(); got != 6 {
		t.Fatalf("hist count = %d, want 6", got)
	}
	if got := h.Sum(); got != 0+1+2+0+101+50 {
		t.Fatalf("hist sum = %d, want 154", got)
	}
	want := []int64{3, 1, 1, 1} // le=1, le=10, le=100, +Inf
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter(tCounter).Inc()
	r.Gauge(tGauge).Set(3)
	r.Histogram(tHist).Observe(5)
	r.Histogram(tHist).ObserveDuration(time.Second)
	if r.Counter(tCounter).Value() != 0 || r.Gauge(tGauge).Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if r.Histogram(tHist).Count() != 0 || r.Histogram(tHist).Sum() != 0 {
		t.Fatal("nil histogram must read zero")
	}
	if _, err := r.MarshalDeterministic(); err != nil {
		t.Fatalf("nil registry snapshot: %v", err)
	}
}

// TestConcurrentUpdates is the race-detector target: many goroutines
// hammering the same counter and histogram, including first-touch
// materialization racing against updates.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r.Counter(tCounter).Inc()
				r.Histogram(tHist).Observe(int64(j % 128))
				r.Gauge(tGauge).Add(1)
			}
			_ = r.Snapshot(true)
		}(i)
	}
	wg.Wait()
	if got := r.Counter(tCounter).Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if got := r.Histogram(tHist).Count(); got != goroutines*per {
		t.Fatalf("hist count = %d, want %d", got, goroutines*per)
	}
}

// TestSnapshotOrderIndependence: the same multiset of observations
// applied in different orders (and from different goroutine counts)
// must serialize to identical bytes — the property -metrics-out relies
// on across -workers values.
func TestSnapshotOrderIndependence(t *testing.T) {
	obs := make([]int64, 500)
	for i := range obs {
		obs[i] = int64(i * 7 % 300)
	}
	run := func(workers int) []byte {
		r := NewRegistry()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(obs); i += workers {
					r.Histogram(tHist).Observe(obs[i])
					r.Counter(tCounter).Add(obs[i])
				}
			}(w)
		}
		wg.Wait()
		b, err := r.MarshalDeterministic()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b, c := run(1), run(4), run(8)
	if !bytes.Equal(a, b) || !bytes.Equal(a, c) {
		t.Fatal("deterministic snapshot differs across goroutine counts")
	}
}

func TestVolatileExcluded(t *testing.T) {
	r := NewRegistry()
	r.Counter(tVol).Inc()
	for _, s := range r.Snapshot(false) {
		if s.Name == "test.volatile" {
			t.Fatal("volatile metric leaked into the deterministic snapshot")
		}
	}
	found := false
	for _, s := range r.Snapshot(true) {
		if s.Name == "test.volatile" {
			found = true
			if s.Value == nil || *s.Value != 1 {
				t.Fatalf("volatile value = %v, want 1", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("volatile metric missing from the full snapshot")
	}
}

func TestUntouchedMetricsAppearAsZero(t *testing.T) {
	r := NewRegistry()
	snap := r.Snapshot(false)
	byName := map[string]MetricSnapshot{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	h, ok := byName["test.hist_ms"]
	if !ok {
		t.Fatal("untouched histogram absent from snapshot")
	}
	if *h.Count != 0 || *h.Sum != 0 || len(h.Buckets) != 4 {
		t.Fatalf("untouched histogram not zero-shaped: %+v", h)
	}
	if h.Buckets[3].LE != "+Inf" {
		t.Fatalf("overflow bucket LE = %q, want +Inf", h.Buckets[3].LE)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter(tCounter).Add(3)
	h := r.Histogram(tHist)
	h.Observe(1)
	h.Observe(5)
	h.Observe(1000)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test.counter counter",
		"test.counter 3",
		`test.hist_ms_bucket{le="1"} 1`,
		`test.hist_ms_bucket{le="10"} 2`,  // cumulative
		`test.hist_ms_bucket{le="100"} 2`, // cumulative, nothing in (10,100]
		`test.hist_ms_bucket{le="+Inf"} 3`,
		"test.hist_ms_sum 1006",
		"test.hist_ms_count 3",
		"test.volatile 0", // volatile metrics do appear in the text view
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	NewGaugeDesc("test.counter", "same name, different kind")
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	NewRegistry().Counter(tHist)
}

func TestBadHistogramBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogramDesc("test.bad_bounds", "x", 10, 10)
}
