package dmv

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// IndexUsage mirrors one row of sys.dm_db_index_usage_stats: how often an
// index served seeks, scans and lookups versus how often it had to be
// maintained by writes. The drop-index analysis (§5.4) looks for indexes
// with high Updates and negligible reads; the User-baseline emulation
// (§7.3) looks for the most read-beneficial indexes.
type IndexUsage struct {
	Index    string
	Table    string
	Seeks    int64
	Scans    int64
	Lookups  int64
	Updates  int64
	LastRead time.Time
}

// Reads returns total read accesses.
func (u IndexUsage) Reads() int64 { return u.Seeks + u.Scans + u.Lookups }

// IndexUsageStore accumulates usage per index.
type IndexUsageStore struct {
	mu      sync.Mutex
	entries map[string]*IndexUsage // key: lower(index name)
}

// NewIndexUsageStore returns an empty store.
func NewIndexUsageStore() *IndexUsageStore {
	return &IndexUsageStore{entries: make(map[string]*IndexUsage)}
}

func (s *IndexUsageStore) entry(index, table string) *IndexUsage {
	k := strings.ToLower(index)
	e := s.entries[k]
	if e == nil {
		e = &IndexUsage{Index: index, Table: table}
		s.entries[k] = e
	}
	return e
}

// RecordSeek counts an index seek.
func (s *IndexUsageStore) RecordSeek(index, table string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(index, table)
	e.Seeks++
	e.LastRead = now
}

// RecordScan counts an index scan.
func (s *IndexUsageStore) RecordScan(index, table string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(index, table)
	e.Scans++
	e.LastRead = now
}

// RecordLookup counts a key/RID lookup into the index (for a clustered
// index, lookups from non-covering secondary seeks).
func (s *IndexUsageStore) RecordLookup(index, table string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(index, table)
	e.Lookups++
	e.LastRead = now
}

// RecordUpdate counts index maintenance caused by a write.
func (s *IndexUsageStore) RecordUpdate(index, table string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entry(index, table).Updates++
}

// Usage returns a copy of the usage row for index, if any.
func (s *IndexUsageStore) Usage(index string) (IndexUsage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[strings.ToLower(index)]
	if !ok {
		return IndexUsage{}, false
	}
	return *e, true
}

// All returns a copy of every usage row, sorted by index name.
func (s *IndexUsageStore) All() []IndexUsage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]IndexUsage, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Forget removes the row for a dropped index.
func (s *IndexUsageStore) Forget(index string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, strings.ToLower(index))
}
