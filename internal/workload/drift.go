package workload

import "sort"

// RotateMix injects adversarial workload drift: the popular half of the
// read mix is retired outright (weight zero — the application deprecated
// those features) and the formerly cold half inherits the retired
// weights, heaviest to the coldest. Indexes built for the previously hot
// templates stop being read entirely — their usage rows freeze at the
// rotation instant, exactly the shape the dropper's staleness rule
// (§5.4 recency) exists to reclaim — while the newly hot templates
// surface fresh missing-index signal for the recommenders. The write
// mix is left untouched: every table keeps taking the same writes, so
// the staled indexes keep paying maintenance costs (what makes them
// worth dropping) and the data volume trajectory stays comparable
// across the rotation.
//
// The template slice is forked before mutation: archetype siblings
// share Templates copy-on-write, so the rotation must be invisible to
// every other tenant stamped from the same archetype.
func (t *Tenant) RotateMix() {
	forked := make([]*Template, len(t.Templates))
	for i, tpl := range t.Templates {
		cp := *tpl
		forked[i] = &cp
	}
	var reads []*Template
	for _, tpl := range forked {
		if !tpl.IsWrite {
			reads = append(reads, tpl)
		}
	}
	retireAndPromote(reads)
	t.Templates = forked
}

// rankAscending returns the group's indices ordered by (weight, name)
// ascending — a pure function of the mix, never of slice order.
func rankAscending(group []*Template) []int {
	order := make([]int, len(group))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := group[order[a]], group[order[b]]
		if ta.Weight != tb.Weight {
			return ta.Weight < tb.Weight
		}
		return ta.Name < tb.Name
	})
	return order
}

// retireAndPromote zeroes the heavy half of the group and hands its
// weights to the light half in reverse rank order (the lightest
// template becomes the heaviest). Zero-weight templates are never
// sampled by pickTemplate, so retirement fully silences them without
// changing the per-statement draw count.
func retireAndPromote(group []*Template) {
	if len(group) < 2 {
		return
	}
	order := rankAscending(group)
	n := len(order)
	weights := make([]float64, n)
	for i, idx := range order {
		weights[i] = group[idx].Weight
	}
	for i, idx := range order {
		if i < (n+1)/2 {
			group[idx].Weight = weights[n-1-i]
		} else {
			group[idx].Weight = 0
		}
	}
}
