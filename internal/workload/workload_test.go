package workload

import (
	"strings"
	"testing"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/sim"
	"autoindex/internal/sqlparser"
)

func newTenant(t *testing.T, p Profile) *Tenant {
	t.Helper()
	if p.Name == "" {
		p.Name = "wl"
	}
	tn, err := NewTenant(p, sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestTenantGenerationDeterministic(t *testing.T) {
	a := newTenant(t, Profile{Tier: engine.TierStandard, Seed: 42})
	b := newTenant(t, Profile{Tier: engine.TierStandard, Seed: 42})
	at, bt := a.DB.TableNames(), b.DB.TableNames()
	if len(at) != len(bt) {
		t.Fatalf("table counts differ: %v vs %v", at, bt)
	}
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("tables differ: %v vs %v", at, bt)
		}
		if a.DB.RowCount(at[i]) != b.DB.RowCount(bt[i]) {
			t.Fatalf("row counts differ for %s", at[i])
		}
	}
	if len(a.Templates) != len(b.Templates) {
		t.Fatal("template counts differ")
	}
	// Different seeds diverge.
	c := newTenant(t, Profile{Tier: engine.TierStandard, Seed: 43})
	same := len(c.DB.TableNames()) == len(at)
	if same {
		for i, n := range c.DB.TableNames() {
			if n != at[i] || c.DB.RowCount(n) != a.DB.RowCount(at[i]) {
				same = false
			}
		}
	}
	if same {
		t.Log("seeds 42/43 produced identical fleets (suspicious but not fatal)")
	}
}

func TestAllTemplatesParseAndExecute(t *testing.T) {
	tn := newTenant(t, Profile{Tier: engine.TierStandard, Seed: 7, UserIndexes: true})
	for _, tpl := range tn.Templates {
		for i := 0; i < 3; i++ {
			sql := tpl.Gen(tn)
			stmt, err := sqlparser.Parse(sql)
			if err != nil {
				t.Fatalf("template %s generated unparseable SQL %q: %v", tpl.Name, sql, err)
			}
			if sqlparser.IsWrite(stmt) != tpl.IsWrite {
				t.Fatalf("template %s IsWrite mismatch for %q", tpl.Name, sql)
			}
			if _, err := tn.DB.Exec(sql); err != nil {
				t.Fatalf("template %s execution failed %q: %v", tpl.Name, sql, err)
			}
		}
	}
}

func TestWriteFractionRespected(t *testing.T) {
	tn := newTenant(t, Profile{Tier: engine.TierStandard, Seed: 11, WriteFraction: 0.4})
	var writes, reads float64
	for _, tpl := range tn.Templates {
		if tpl.IsWrite {
			writes += tpl.Weight
		} else {
			reads += tpl.Weight
		}
	}
	frac := writes / (writes + reads)
	if frac < 0.35 || frac > 0.45 {
		t.Fatalf("write weight fraction = %v, want ~0.4", frac)
	}
}

func TestUserIndexesCreated(t *testing.T) {
	tn := newTenant(t, Profile{Tier: engine.TierPremium, Seed: 5, UserIndexes: true})
	n := 0
	for _, def := range tn.DB.IndexDefs() {
		if strings.HasPrefix(def.Name, "ix_user_") {
			n++
			if def.AutoCreated {
				t.Fatal("user index marked auto-created")
			}
		}
	}
	if n == 0 {
		t.Fatal("no user indexes created")
	}
}

func TestRunAdvancesClockAndRecords(t *testing.T) {
	tn := newTenant(t, Profile{Tier: engine.TierBasic, Seed: 13})
	start := tn.DB.Clock().Now()
	stats := tn.Run(6*time.Hour, 100)
	if stats.Statements != 100 {
		t.Fatalf("statements = %d", stats.Statements)
	}
	if stats.Errors > 2 {
		t.Fatalf("too many errors: %d", stats.Errors)
	}
	elapsed := tn.DB.Clock().Now().Sub(start)
	if elapsed < 5*time.Hour || elapsed > 7*time.Hour {
		t.Fatalf("elapsed %v, want ~6h", elapsed)
	}
	if tn.DB.QueryStore().Len() == 0 {
		t.Fatal("query store empty after run")
	}
}

func TestStreamReplayOnClone(t *testing.T) {
	tn := newTenant(t, Profile{Tier: engine.TierStandard, Seed: 17})
	clone := tn.DB.Clone("clone")
	// The primary's query store holds only the seeding bulk-loads so far.
	primQS := tn.DB.QueryStore().Len()
	stmts := tn.Stream(50)
	if len(stmts) != 50 {
		t.Fatalf("stream: %d", len(stmts))
	}
	stats := tn.Replay(clone, stmts, time.Hour)
	if stats.Statements != 50 {
		t.Fatalf("replayed %d", stats.Statements)
	}
	if stats.Errors > 5 {
		t.Fatalf("replay errors: %d", stats.Errors)
	}
	// The primary's query store is untouched by the clone replay.
	if tn.DB.QueryStore().Len() != primQS {
		t.Fatal("replay on clone must not touch primary query store")
	}
}

func TestCorrelatedColumnsExist(t *testing.T) {
	// Across a few seeds, at least one tenant must have a correlated
	// column (the optimizer-error generator).
	found := false
	for seed := int64(1); seed <= 8 && !found; seed++ {
		tn := newTenant(t, Profile{Tier: engine.TierStandard, Seed: seed})
		for _, ts := range tn.Tables {
			for _, c := range ts.Columns {
				if c.CorrelatedWith != "" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no correlated columns generated across seeds 1-8")
	}
}
