package scenario_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"autoindex/internal/scenario"
)

const testSeed = 20170301

var (
	cacheMu  sync.Mutex
	runCache = map[string]*scenario.Result{}
)

// runScenario memoizes scenario runs so the determinism matrix, the
// pass assertions and the acceptance test share fleets instead of
// re-running them.
func runScenario(t *testing.T, name string, workers int, chaos bool) *scenario.Result {
	t.Helper()
	key := fmt.Sprintf("%s/w%d/chaos=%v", name, workers, chaos)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if r, ok := runCache[key]; ok {
		return r
	}
	s, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	r, err := s.Run(scenario.Options{Seed: testSeed, Workers: workers, Chaos: chaos})
	if err != nil {
		t.Fatalf("%s: %v", key, err)
	}
	runCache[key] = r
	return r
}

func marshal(t *testing.T, r *scenario.Result) []byte {
	t.Helper()
	b, err := scenario.MarshalVerdicts([]scenario.Verdict{r.Verdict})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestRegistry(t *testing.T) {
	names := scenario.Names()
	want := []string{"workload-drift", "schema-migration", "flash-crowd", "noisy-neighbor"}
	if len(names) != len(want) {
		t.Fatalf("registry: got %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registry order: got %v, want %v", names, want)
		}
		if _, ok := scenario.Get(n); !ok {
			t.Fatalf("Get(%q) failed", n)
		}
	}
	if _, ok := scenario.Get("no-such"); ok {
		t.Fatal("Get accepted an unknown name")
	}
}

// TestScenarioVerdictsPass is the acceptance gate: every scenario must
// emit a passing verdict at the pinned CI seed.
func TestScenarioVerdictsPass(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := runScenario(t, name, 4, false)
			if !r.Verdict.Pass {
				t.Fatalf("verdict failed:\n%s", r.Report)
			}
			// The JSON contract must round-trip.
			b := marshal(t, r)
			vs, err := scenario.UnmarshalVerdicts(b)
			if err != nil || len(vs) != 1 || vs[0].Scenario != name {
				t.Fatalf("round-trip: %v %+v", err, vs)
			}
		})
	}
}

// TestScenarioDeterminism mirrors scale_determinism_test.go: a
// scenario's report and verdict JSON are byte-identical at any worker
// count.
func TestScenarioDeterminism(t *testing.T) {
	matrix := map[string][]int{
		"workload-drift":   {1, 4},
		"schema-migration": {1, 4, 8},
		"flash-crowd":      {1, 4, 8},
		"noisy-neighbor":   {1, 4},
	}
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			workers := matrix[name]
			base := runScenario(t, name, workers[0], false)
			baseJSON := marshal(t, base)
			for _, w := range workers[1:] {
				got := runScenario(t, name, w, false)
				if got.Report != base.Report {
					t.Errorf("report differs between workers=%d and workers=%d:\n--- w=%d\n%s\n--- w=%d\n%s",
						workers[0], w, workers[0], base.Report, w, got.Report)
				}
				if !bytes.Equal(marshal(t, got), baseJSON) {
					t.Errorf("verdict JSON differs between workers=%d and workers=%d", workers[0], w)
				}
			}
		})
	}
}

// TestScenarioDeterminismChaos repeats the worker sweep with fault
// injection on for the two cheapest scenarios.
func TestScenarioDeterminismChaos(t *testing.T) {
	for _, name := range []string{"schema-migration", "flash-crowd"} {
		name := name
		t.Run(name, func(t *testing.T) {
			base := runScenario(t, name, 1, true)
			got := runScenario(t, name, 4, true)
			if got.Report != base.Report {
				t.Errorf("chaos report differs between workers=1 and workers=4:\n--- w=1\n%s\n--- w=4\n%s",
					base.Report, got.Report)
			}
			if !bytes.Equal(marshal(t, got), marshal(t, base)) {
				t.Errorf("chaos verdict JSON differs between workers=1 and workers=4")
			}
			if !base.Verdict.Chaos {
				t.Error("verdict does not record chaos=true")
			}
		})
	}
}

// TestDriftDropperAcceptance pins the tentpole claim: the rotation
// demonstrably stales once-hot indexes and the dropper's staleness rule
// revokes them within the dwell budget (four virtual days).
func TestDriftDropperAcceptance(t *testing.T) {
	r := runScenario(t, "workload-drift", 4, false)
	var caught bool
	for _, c := range r.Verdict.Checks {
		if c.Name == "staleness-caught" {
			caught = c.Pass
		}
	}
	if !caught {
		t.Fatalf("staleness-caught check failed:\n%s", r.Report)
	}
	var drops, dwell float64
	for _, e := range r.Verdict.Evidence {
		switch e.Name {
		case "stale-drops":
			drops = e.Value
		case "max-dwell-hours":
			dwell = e.Value
		}
	}
	if drops < 1 {
		t.Fatalf("no staled index was reclaimed:\n%s", r.Report)
	}
	if dwell <= 0 || dwell > 96 {
		t.Fatalf("stale-index dwell %vh outside (0, 96h]:\n%s", dwell, r.Report)
	}
}
