package wire

import (
	"crypto/sha1"
	"crypto/subtle"
	"fmt"
)

// AuthPluginNative is the only auth plugin this implementation speaks.
const AuthPluginNative = "mysql_native_password"

// seedLen is the handshake scramble length (8 bytes in the v10 header
// plus 12 in the trailer).
const seedLen = 20

// ScrambleNative computes the mysql_native_password response:
// SHA1(password) XOR SHA1(seed + SHA1(SHA1(password))). An empty
// password scrambles to an empty response.
func ScrambleNative(password string, seed []byte) []byte {
	if password == "" {
		return nil
	}
	h1 := sha1.Sum([]byte(password))
	h2 := sha1.Sum(h1[:])
	mix := sha1.New()
	mix.Write(seed)
	mix.Write(h2[:])
	out := mix.Sum(nil)
	for i := range out {
		out[i] ^= h1[i]
	}
	return out
}

// CheckNative verifies a client's auth response against the expected
// scramble in constant time.
func CheckNative(password string, seed, response []byte) bool {
	want := ScrambleNative(password, seed)
	if len(want) != len(response) {
		return false
	}
	return subtle.ConstantTimeCompare(want, response) == 1
}

// Handshake is the server's initial v10 greeting.
type Handshake struct {
	ServerVersion string
	ConnID        uint32
	Seed          []byte // seedLen bytes
	Capabilities  uint32
}

// EncodeHandshake renders the v10 handshake packet.
func EncodeHandshake(h Handshake) []byte {
	seed := h.Seed
	if len(seed) != seedLen {
		s := make([]byte, seedLen)
		copy(s, seed)
		seed = s
	}
	b := []byte{10} // protocol version
	b = appendNulString(b, h.ServerVersion)
	b = appendUint32(b, h.ConnID)
	b = append(b, seed[:8]...)
	b = append(b, 0) // filler
	b = appendUint16(b, uint16(h.Capabilities))
	b = append(b, utf8Charset)
	b = appendUint16(b, statusAutocommit)
	b = appendUint16(b, uint16(h.Capabilities>>16))
	b = append(b, byte(seedLen+1)) // auth data length incl. trailing NUL
	b = append(b, make([]byte, 10)...)
	b = append(b, seed[8:]...)
	b = append(b, 0)
	b = appendNulString(b, AuthPluginNative)
	return b
}

// ParseHandshake decodes a v10 handshake (client side).
func ParseHandshake(p []byte) (*Handshake, error) {
	r := newReader(p)
	if v := r.uint8(); v != 10 {
		return nil, fmt.Errorf("wire: unsupported handshake protocol version %d", v)
	}
	h := &Handshake{}
	h.ServerVersion = r.nulString()
	h.ConnID = r.uint32()
	seed := append([]byte(nil), r.bytes(8)...)
	r.skip(1) // filler
	capLow := r.uint16()
	r.skip(1) // charset
	r.skip(2) // status
	capHigh := r.uint16()
	h.Capabilities = uint32(capLow) | uint32(capHigh)<<16
	authLen := int(r.uint8())
	r.skip(10) // reserved
	if h.Capabilities&CapSecureConnection != 0 {
		n := authLen - 8 - 1
		if n < 12 {
			n = 12
		}
		seed = append(seed, r.bytes(n)...)
		r.skip(1) // trailing NUL
	}
	if !r.ok() {
		return nil, fmt.Errorf("wire: malformed handshake packet")
	}
	h.Seed = seed
	return h, nil
}

// HandshakeResponse is the client's reply to the handshake.
type HandshakeResponse struct {
	Capabilities uint32
	MaxPacket    uint32
	User         string
	AuthResponse []byte
	Database     string
	Plugin       string
}

// EncodeHandshakeResponse renders the protocol-41 response.
func EncodeHandshakeResponse(hr HandshakeResponse) []byte {
	b := appendUint32(nil, hr.Capabilities)
	b = appendUint32(b, hr.MaxPacket)
	b = append(b, utf8Charset)
	b = append(b, make([]byte, 23)...)
	b = appendNulString(b, hr.User)
	b = append(b, byte(len(hr.AuthResponse)))
	b = append(b, hr.AuthResponse...)
	if hr.Capabilities&CapConnectWithDB != 0 {
		b = appendNulString(b, hr.Database)
	}
	if hr.Capabilities&CapPluginAuth != 0 {
		b = appendNulString(b, hr.Plugin)
	}
	return b
}

// ParseHandshakeResponse decodes the protocol-41 response (server
// side).
func ParseHandshakeResponse(p []byte) (*HandshakeResponse, error) {
	r := newReader(p)
	hr := &HandshakeResponse{}
	hr.Capabilities = r.uint32()
	if hr.Capabilities&CapProtocol41 == 0 {
		return nil, fmt.Errorf("wire: client does not speak protocol 41")
	}
	hr.MaxPacket = r.uint32()
	r.skip(1)  // charset
	r.skip(23) // reserved
	hr.User = r.nulString()
	if hr.Capabilities&CapPluginAuthLenenc != 0 {
		hr.AuthResponse = append([]byte(nil), r.lenencBytes()...)
	} else {
		n := int(r.uint8())
		hr.AuthResponse = append([]byte(nil), r.bytes(n)...)
	}
	if hr.Capabilities&CapConnectWithDB != 0 && r.remaining() > 0 {
		hr.Database = r.nulString()
	}
	if hr.Capabilities&CapPluginAuth != 0 && r.remaining() > 0 {
		hr.Plugin = r.nulString()
	}
	if !r.ok() {
		return nil, fmt.Errorf("wire: malformed handshake response")
	}
	return hr, nil
}
