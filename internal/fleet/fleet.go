// Package fleet builds and drives multi-tenant database fleets: the
// substrate for reproducing Fig. 6 (recommender comparison at scale on
// B-instances) and the §8.1 operational statistics (long-horizon
// auto-indexing with validation and drops across many databases).
//
// The harness shards tenants across a configurable worker pool
// (Spec.Workers; default one worker per CPU). Every tenant owns an
// isolated sim.VirtualClock and draws randomness only from per-tenant
// streams derived as seed ^ hash(tenantID) (sim.TenantRNG), so a fleet
// run is bit-identical at any worker count: tenant-hours execute in
// parallel between barriers, and everything cross-tenant — control-plane
// micro-services, result merging, fleet-growth decisions — runs serially
// at the barrier in tenant order. See the sim package's concurrency and
// determinism contract.
package fleet

import (
	"fmt"
	"time"

	"autoindex/internal/controlplane"
	"autoindex/internal/engine"
	"autoindex/internal/experiment"
	"autoindex/internal/metrics"
	"autoindex/internal/querystore"
	"autoindex/internal/sim"
	"autoindex/internal/telemetry"
	"autoindex/internal/workload"
)

// Spec configures a fleet.
type Spec struct {
	Databases int
	Tier      engine.Tier
	// MixedTiers overrides Tier with a Basic/Standard/Premium mix.
	MixedTiers bool
	Seed       int64
	// Scale multiplies tenant data sizes.
	Scale float64
	// UserIndexes gives tenants pre-existing human tuning.
	UserIndexes bool
	// Workers is the size of the tenant worker pool; <= 0 means one worker
	// per available CPU. Results do not depend on the value (only
	// wall-clock time does).
	Workers int
}

// Fleet is a set of tenants. The control plane observes the fleet through
// the region Clock; each tenant's database runs on its own isolated
// virtual clock, advanced in lockstep with the region clock at hour
// barriers so cross-tenant timestamps stay comparable.
type Fleet struct {
	// Clock is the region clock: the control plane's time source. Tenant
	// databases each own a separate clock (see tenant isolation in the
	// package comment).
	Clock *sim.VirtualClock
	// RNG is the fleet-level stream for serial, cross-tenant decisions
	// (auto-implement assignment, fleet growth). Per-tenant draws never
	// come from it.
	RNG     *sim.RNG
	Tenants []*workload.Tenant
	// Metrics is the run's registry: every tenant engine, the control
	// plane, and the fleet harness itself feed it. Its non-volatile
	// snapshot is byte-identical at any Workers count.
	Metrics *metrics.Registry

	spec   Spec
	clocks []*sim.VirtualClock // clocks[i] belongs to Tenants[i]
}

// Build creates the fleet, constructing tenants in parallel across the
// worker pool. Tenant i's schema, data and templates derive only from its
// own seed, so parallel construction is deterministic.
func Build(spec Spec) (*Fleet, error) {
	f := &Fleet{Clock: sim.NewClock(), RNG: sim.NewRNG(spec.Seed), Metrics: metrics.NewRegistry(), spec: spec}
	profiles := make([]workload.Profile, spec.Databases)
	for i := range profiles {
		tier := spec.Tier
		if spec.MixedTiers {
			switch i % 4 {
			case 0, 1:
				tier = engine.TierStandard
			case 2:
				tier = engine.TierBasic
			default:
				tier = engine.TierPremium
			}
		}
		profiles[i] = workload.Profile{
			Name:        fmt.Sprintf("db%03d", i),
			Tier:        tier,
			Seed:        spec.Seed + int64(i)*7919,
			Scale:       spec.Scale,
			UserIndexes: spec.UserIndexes,
		}
	}
	f.Tenants = make([]*workload.Tenant, len(profiles))
	f.clocks = make([]*sim.VirtualClock, len(profiles))
	errs := make([]error, len(profiles))
	forEach(spec.Workers, len(profiles), func(i int) {
		clock := sim.NewClock()
		tn, err := workload.NewTenant(profiles[i], clock)
		if err != nil {
			errs[i] = err
			return
		}
		f.Tenants[i] = tn
		f.clocks[i] = clock
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %d: %w", i, err)
		}
	}
	// Attach metrics after construction so initial population replay is
	// uncounted for every tenant alike (growth tenants get the same
	// treatment in addTenant).
	for _, tn := range f.Tenants {
		tn.DB.SetMetrics(f.Metrics)
	}
	f.Metrics.Gauge(descTenants).Set(int64(len(f.Tenants)))
	return f, nil
}

// addTenant registers a tenant built outside Build (fleet growth).
func (f *Fleet) addTenant(tn *workload.Tenant, clock *sim.VirtualClock) {
	tn.DB.SetMetrics(f.Metrics)
	f.Tenants = append(f.Tenants, tn)
	f.clocks = append(f.clocks, clock)
	f.Metrics.Counter(descTenantsGrown).Inc()
	f.Metrics.Gauge(descTenants).Set(int64(len(f.Tenants)))
}

// alignClocks advances the region clock and every tenant clock to the
// fleet-wide maximum. Called at barriers only (no tenant worker running):
// online index builds and B-instance replays advance only the affected
// tenant's clock, and the maximum over all clocks is independent of the
// order tenants executed in, so re-alignment preserves determinism.
func (f *Fleet) alignClocks() {
	max := f.Clock.Now()
	for _, c := range f.clocks {
		if t := c.Now(); t.After(max) {
			max = t
		}
	}
	f.Clock.AdvanceTo(max)
	for _, c := range f.clocks {
		c.AdvanceTo(max)
	}
}

// AdvanceLive moves the whole fleet's virtual time forward by d and
// re-aligns every tenant clock. The serving path uses it as the live
// loop's tick: client statements execute against tenant databases in
// real time, and each tick advances the virtual clocks the tuning
// pipeline (analysis cadence, validation windows) runs on. Call it only
// from the single live-loop goroutine — it is a barrier, like the
// ops-loop call sites of alignClocks.
func (f *Fleet) AdvanceLive(d time.Duration) {
	f.Clock.Advance(d)
	f.alignClocks()
}

// tenantStream derives tenant tn's named RNG stream from the fleet seed:
// sim.TenantRNG gives the per-tenant root (seed ^ hash(tenantID)), Child
// isolates the purpose so new consumers don't perturb existing ones.
func (f *Fleet) tenantStream(tn *workload.Tenant, purpose string) *sim.RNG {
	return sim.TenantRNG(f.spec.Seed, tn.DB.Name()).Child(purpose)
}

// RunFig6 executes the §7.3 experiment across the fleet, one tenant per
// worker slot. Each tenant's experiment runs on its own B-instances,
// clock and RNG stream; the summary merges per-tenant results in tenant
// order.
func (f *Fleet) RunFig6(tierLabel string, cfg experiment.Fig6Config) experiment.Fig6Summary {
	results := make([]experiment.DatabaseResult, len(f.Tenants))
	forEachObserved(f.Metrics, f.spec.Workers, len(f.Tenants), func(i int) {
		tn := f.Tenants[i]
		results[i] = experiment.RunFig6ForTenant(tn, cfg, f.tenantStream(tn, "fig6"))
	})
	f.alignClocks()
	return experiment.Summarize(tierLabel, results)
}

// OpsConfig drives the §8.1 operational simulation.
type OpsConfig struct {
	Days int
	// StatementsPerHour per tenant.
	StatementsPerHour int
	// AutoImplementFraction of databases have auto-implementation on
	// (about a quarter in the paper).
	AutoImplementFraction float64
	// NewTenantEvery adds a fresh database on this cadence (the paper's
	// "increasing stream of new databases"); 0 disables.
	NewTenantEvery time.Duration
	// FailoverProb is a per-database per-day failover probability,
	// exercising the MI snapshot reset tolerance.
	FailoverProb float64
	Plane        controlplane.Config
	// Chaos, when enabled, injects seeded faults into every layer and
	// audits invariants after a post-run drain.
	Chaos ChaosConfig
	// Hooks are the scenario-generator intervention points; see OpsHooks.
	Hooks OpsHooks
	// AuditInvariants runs the chaos-style post-run invariant audit
	// (baseline capture, drain, CheckInvariants) even without chaos;
	// results land in OpsResult.Violations. Chaos mode always audits.
	AuditInvariants bool
}

// DefaultOpsConfig returns a simulation-scale configuration.
func DefaultOpsConfig() OpsConfig {
	return OpsConfig{
		Days:                  10,
		StatementsPerHour:     25,
		AutoImplementFraction: 0.25,
		FailoverProb:          0.02,
		Plane:                 controlplane.DefaultConfig(),
	}
}

// OpsResult is the §8.1-style outcome.
type OpsResult struct {
	Stats controlplane.OperationalStats
	// QueriesTwiceFaster counts queries whose CPU or logical reads
	// improved by more than 2x end-to-start.
	QueriesTwiceFaster int
	// DatabasesHalvedCPU counts databases whose aggregate workload CPU
	// fell by more than 50%.
	DatabasesHalvedCPU int
	// SteadyStateDatabases counts databases with no Active recommendations
	// at the end.
	SteadyStateDatabases int
	Plane                *controlplane.ControlPlane
	// Chaos is the fault-injection report; nil unless chaos was enabled.
	Chaos *ChaosReport
	// Audited reports whether a post-run invariant audit ran (chaos mode
	// or OpsConfig.AuditInvariants); Violations and DrainHours mirror the
	// chaos report when chaos was on, so scenario verdicts read one place.
	Audited    bool
	Violations []controlplane.Violation
	DrainHours int
}

// RunOps runs the long-horizon operational simulation. Each virtual hour,
// tenant workloads replay in parallel across the worker pool; the
// control-plane micro-services then step serially at the hour barrier, as
// do fleet-growth and measurement bookkeeping, so the outcome is
// bit-identical at any worker count.
func (f *Fleet) RunOps(spec Spec, cfg OpsConfig) (*OpsResult, error) {
	return f.runOps(spec, cfg, controlplane.NewMemStore())
}

// runOps is RunOps over an explicit backing store (tests inject a
// persisting or crash-prone store through here).
func (f *Fleet) runOps(spec Spec, cfg OpsConfig, mem controlplane.Store) (*OpsResult, error) {
	store := mem
	var hub *telemetry.Hub
	var ch *chaosHarness
	if cfg.Chaos.Enabled {
		ch = newChaosHarness(cfg.Chaos, spec.Seed, mem)
		store, hub = ch.wrapped, ch.hub
	}
	if cfg.Plane.Metrics == nil {
		cfg.Plane.Metrics = f.Metrics
	}
	cp := controlplane.New(cfg.Plane, f.Clock, store, hub)
	// manage enrolls a tenant with the current plane incarnation; plane
	// and step indirect through the crash runner when chaos is on, so a
	// recovered restart swaps in the rebuilt control plane transparently.
	// Fault-free audits capture the same enrollment-time index baselines
	// the chaos harness does (chaos keeps its own copy inside the harness).
	var auditBaselines map[string]controlplane.InvariantTarget
	if cfg.AuditInvariants && ch == nil {
		auditBaselines = make(map[string]controlplane.InvariantTarget)
	}
	manage := func(tn *workload.Tenant, s controlplane.Settings) {
		if auditBaselines != nil {
			auditBaselines[tn.DB.Name()] = controlplane.InvariantTarget{DB: tn.DB, Baseline: tn.DB.IndexDefs()}
		}
		if ch != nil {
			ch.enroll(tn, s)
			ch.runner.Plane.Manage(tn.DB, "server-0", s)
			return
		}
		cp.Manage(tn.DB, "server-0", s)
	}
	plane := func() *controlplane.ControlPlane {
		if ch != nil {
			return ch.runner.Plane
		}
		return cp
	}
	step := cp.Step
	if ch != nil {
		ch.attach(cp, cfg.Plane, f.Clock)
		step = ch.runner.Step
	}
	autoRNG := f.RNG.Child("ops/auto")
	for _, tn := range f.Tenants {
		auto := autoRNG.Float64() < cfg.AutoImplementFraction
		manage(tn, controlplane.Settings{AutoCreate: auto, AutoDrop: auto})
	}
	// First/last-window per-query costs for the >2x and >50% statistics.
	startCosts := make(map[string]map[uint64]float64)
	startTotal := make(map[string]float64)

	// Per-tenant failover streams (keyed by database name) keep draw
	// sequences independent of worker scheduling; the shared stream the
	// serial harness used would interleave draws in completion order.
	failRNG := make(map[string]*sim.RNG)
	failStream := func(tn *workload.Tenant) *sim.RNG {
		name := tn.DB.Name()
		r, ok := failRNG[name]
		if !ok {
			r = f.tenantStream(tn, "ops/failover")
			failRNG[name] = r
		}
		return r
	}
	for _, tn := range f.Tenants {
		failStream(tn)
	}

	newTenantRNG := f.RNG.Child("ops/new")
	nextNew := time.Duration(0)
	if cfg.NewTenantEvery > 0 {
		nextNew = cfg.NewTenantEvery
	}
	hookCtx := func(hour int) *OpsHookContext {
		return &OpsHookContext{Fleet: f, Hour: hour, Plane: plane(), Store: mem}
	}
	if cfg.Hooks.AfterBuild != nil {
		cfg.Hooks.AfterBuild(hookCtx(-1))
	}
	start := f.Clock.Now()
	hours := cfg.Days * 24
	warmupHours := 24
	for h := 0; h < hours; h++ {
		if cfg.Hooks.BeforeHour != nil {
			cfg.Hooks.BeforeHour(hookCtx(h))
		}
		forEachObserved(f.Metrics, f.spec.Workers, len(f.Tenants), func(i int) {
			tn := f.Tenants[i]
			n := cfg.StatementsPerHour
			if cfg.Hooks.StatementsFor != nil {
				if v := cfg.Hooks.StatementsFor(h, tn.DB.Name()); v >= 0 {
					n = v
				}
			}
			tn.Run(0, n)
			if failRNG[tn.DB.Name()].Float64() < cfg.FailoverProb/24 {
				tn.DB.Failover()
				f.Metrics.Counter(descFailovers).Inc()
			}
		})
		f.Metrics.Counter(descTenantHours).Add(int64(len(f.Tenants)))
		f.Clock.Advance(time.Hour)
		f.alignClocks() // tenants catch up to the region hour tick
		step()
		f.alignClocks() // region catches up to index-build time on tenants
		if h == warmupHours {
			for _, tn := range f.Tenants {
				per, total := windowCosts(tn, start, f.Clock.Now())
				startCosts[tn.DB.Name()] = per
				startTotal[tn.DB.Name()] = total
			}
		}
		if cfg.NewTenantEvery > 0 && f.Clock.Now().Sub(start) >= nextNew {
			nextNew += cfg.NewTenantEvery
			idx := len(f.Tenants)
			clock := sim.NewVirtualClock(f.Clock.Now())
			tn, err := workload.NewTenant(workload.Profile{
				Name:        fmt.Sprintf("db%03d", idx),
				Tier:        engine.TierStandard,
				Seed:        spec.Seed + int64(idx)*7919 + newTenantRNG.Int63n(1<<30),
				Scale:       spec.Scale,
				UserIndexes: spec.UserIndexes,
			}, clock)
			if err == nil {
				auto := autoRNG.Float64() < cfg.AutoImplementFraction
				manage(tn, controlplane.Settings{AutoCreate: auto, AutoDrop: auto})
				f.addTenant(tn, clock)
				failStream(tn)
			}
		}
		if cfg.Hooks.AfterHour != nil {
			cfg.Hooks.AfterHour(hookCtx(h))
		}
	}

	if ch != nil {
		drained := ch.drain(f)
		res := &OpsResult{Stats: plane().OpStats(), Plane: plane()}
		res.Chaos = ch.report(f.Clock.Now(), cfg.Plane, drained)
		res.Audited = true
		res.Violations = res.Chaos.Violations
		res.DrainHours = res.Chaos.DrainHours
		finishOps(f, plane(), res, startCosts, startTotal)
		return res, nil
	}
	res := &OpsResult{Stats: cp.OpStats(), Plane: cp}
	if auditBaselines != nil {
		res.DrainHours = drainInFlight(f, mem, step, 21*24)
		res.Violations = controlplane.CheckInvariants(mem, auditBaselines, cfg.Plane, f.Clock.Now())
		res.Audited = true
		res.Stats = cp.OpStats() // drain steps settle counters
	}
	finishOps(f, cp, res, startCosts, startTotal)
	return res, nil
}

// finishOps computes the end-of-run §8.1 statistics from the last day's
// query-store windows.
func finishOps(f *Fleet, cp *controlplane.ControlPlane, res *OpsResult,
	startCosts map[string]map[uint64]float64, startTotal map[string]float64) {
	lastFrom := f.Clock.Now().Add(-24 * time.Hour)
	for _, tn := range f.Tenants {
		basePer, baseTotal := startCosts[tn.DB.Name()], startTotal[tn.DB.Name()]
		if basePer == nil {
			continue
		}
		endPer, endTotal := windowCosts(tn, lastFrom, f.Clock.Now())
		for q, b := range basePer {
			if e, ok := endPer[q]; ok && e > 0 && b/e > 2 {
				res.QueriesTwiceFaster++
			}
		}
		if baseTotal > 0 && endTotal > 0 && endTotal < baseTotal*0.5 {
			res.DatabasesHalvedCPU++
		}
		if len(cp.ListRecommendations(tn.DB.Name())) == 0 {
			res.SteadyStateDatabases++
		}
	}
}

// windowCosts returns per-query mean CPU and the workload mean CPU per
// statement over a window.
func windowCosts(tn *workload.Tenant, from, to time.Time) (map[uint64]float64, float64) {
	per := make(map[uint64]float64)
	var total, n float64
	qs := tn.DB.QueryStore()
	for _, h := range qs.QueryHashes() {
		if s, ok := qs.QueryWindowSample(h, querystore.MetricCPU, from, to); ok && s.N >= 2 {
			per[h] = s.Mean
			total += s.Mean * float64(s.N)
			n += float64(s.N)
		}
	}
	if n == 0 {
		return per, 0
	}
	return per, total / n
}
