// Command lint runs the repo's determinism-and-correctness analyzers
// (internal/analysis) over the module. The suite has two tiers: five
// per-unit checks (maporder, wallclock, errcompare, lockdiscipline,
// metricsdiscipline) and three interprocedural checks that run over
// the whole-module call graph (lockorder, detflow, leakcheck). It is
// part of tier-1 verify via `make lint`.
//
// Usage:
//
//	lint [flags] [packages]
//
// Packages are directory patterns relative to the module root;
// "./..." (the default) walks every package. Diagnostics print as
//
//	path:line:col: [check] message
//
// and the exit status is 1 when there are findings, 2 on load or
// usage errors, 0 otherwise.
//
// With -json, diagnostics emit as a JSON array of objects with stable
// fields {file, line, column, check, message}, where file is the
// module-root-relative slash-separated path — independent of the
// working directory, so CI annotation does not break when the tool is
// invoked from a subdirectory.
//
// Flags:
//
//	-checks maporder,lockorder   run only the named checks
//	-json                        emit diagnostics as a JSON array
//	-ignores                     print the //lint:ignore inventory and exit
//	-list                        print the available checks and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"autoindex/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON")
	ignoresFlag := fs.Bool("ignores", false, "print the //lint:ignore inventory and exit")
	listFlag := fs.Bool("list", false, "print the available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.Analyzers()
	if *checksFlag != "" {
		analyzers = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "lint: unknown check %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "lint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := loader.LoadUnits(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "lint:", err)
		return 2
	}

	if *ignoresFlag {
		for _, ig := range analysis.Inventory(units) {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n",
				relPath(ig.Pos.Filename), ig.Pos.Line, strings.Join(ig.Checks, ","), ig.Reason)
		}
		return 0
	}

	diags := analysis.Run(units, analyzers)
	if *jsonFlag {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{moduleRel(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// jsonDiag is the -json output record. The field set is a stable
// contract for CI annotation: file (module-root-relative, slash
// separated), line, column (both 1-based), check, message.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// relPath renders p relative to the working directory for human
// output; paths outside it stay absolute.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	if rel, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return p
}

// moduleRel renders p relative to the module root with forward
// slashes, so -json output is identical no matter where lint runs
// from.
func moduleRel(root, p string) string {
	if rel, err := filepath.Rel(root, p); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(p)
}
