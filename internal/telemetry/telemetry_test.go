package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCounters(t *testing.T) {
	h := NewHub(0)
	h.Inc("a", 1)
	h.Inc("a", 2)
	h.Inc("b", 5)
	if h.Counter("a") != 3 || h.Counter("b") != 5 || h.Counter("missing") != 0 {
		t.Fatalf("counters: a=%d b=%d", h.Counter("a"), h.Counter("b"))
	}
	all := h.Counters()
	if len(all) != 2 || all[0] != "a=3" || all[1] != "b=5" {
		t.Fatalf("snapshot: %v", all)
	}
}

func TestEventsCapped(t *testing.T) {
	h := NewHub(10)
	for i := 0; i < 25; i++ {
		h.Emit(Event{At: time.Unix(int64(i), 0), Kind: "k"})
	}
	evs := h.Events()
	if len(evs) != 10 {
		t.Fatalf("retained %d events", len(evs))
	}
	if evs[0].At.Unix() != 15 {
		t.Fatalf("oldest retained: %v", evs[0].At)
	}
}

func TestConcurrentUse(t *testing.T) {
	h := NewHub(100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Inc("x", 1)
				h.Emit(Event{Kind: "e"})
			}
		}()
	}
	wg.Wait()
	if h.Counter("x") != 8000 {
		t.Fatalf("lost increments: %d", h.Counter("x"))
	}
}

// TestSnapshotConsistent hammers the hub with one writer alternating two
// counters (so |a-b| <= 1 holds at every instant) while parallel readers
// take snapshots. A consistent point-in-time view must preserve the
// invariant; reading the counters one lock at a time would not.
func TestSnapshotConsistent(t *testing.T) {
	h := NewHub(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				a, b := snap.Counters["paired.a"], snap.Counters["paired.b"]
				if d := a - b; d < -1 || d > 1 {
					t.Errorf("inconsistent snapshot: a=%d b=%d", a, b)
					return
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		h.Inc("paired.a", 1)
		h.Inc("paired.b", 1)
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotAndAccessorsCopy ensures returned state is detached: mutating
// a returned snapshot or slice must not affect the hub.
func TestSnapshotAndAccessorsCopy(t *testing.T) {
	h := NewHub(4)
	h.Inc("c", 7)
	h.Emit(Event{At: time.Unix(1, 0), Kind: "k", Detail: "d"})

	snap := h.Snapshot()
	snap.Counters["c"] = 999
	snap.Events[0].Detail = "mutated"
	evs := h.Events()
	evs[0].Kind = "mutated"

	if h.Counter("c") != 7 {
		t.Fatalf("snapshot mutation leaked into hub: %d", h.Counter("c"))
	}
	got := h.Snapshot()
	if got.Events[0].Detail != "d" || got.Events[0].Kind != "k" {
		t.Fatalf("event mutation leaked into hub: %+v", got.Events[0])
	}
	if got.Counters["c"] != 7 {
		t.Fatalf("counter map not detached: %d", got.Counters["c"])
	}
}
