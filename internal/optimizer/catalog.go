// Package optimizer implements the cost-based query optimizer: statement
// binding, access-path selection over B+ tree indexes, join ordering, and
// the two hooks the auto-indexing service is built on — the "what-if" API
// for costing hypothetical index configurations [11] and the Missing-Index
// candidate emission that populates the MI DMVs during optimization [34].
//
// The optimizer estimates costs from histogram statistics under an
// independence assumption. Actual execution (package engine) measures true
// costs. The two intentionally disagree on skewed or correlated data —
// the paper's central reason for validating implemented indexes (§6).
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"autoindex/internal/schema"
	"autoindex/internal/stats"
	"autoindex/internal/storage"
)

// TableInfo is the catalog's view of a table.
type TableInfo struct {
	Def      *schema.Table
	RowCount int64
	// DataPages is the page count of the base storage (heap or clustered
	// index leaf level).
	DataPages int64
	// ClusteredHeight is the clustered index height, or 0 for a heap.
	ClusteredHeight int
}

// IndexInfo is the catalog's view of an index (possibly hypothetical).
type IndexInfo struct {
	Def       schema.IndexDef
	Height    int
	LeafPages int64
	RowCount  int64
}

// Catalog provides the metadata and statistics the optimizer plans from.
// The engine implements it over real data; WhatIfCatalog overlays
// hypothetical indexes on any other Catalog.
type Catalog interface {
	// Table returns table metadata by name (case-insensitive).
	Table(name string) (TableInfo, bool)
	// Indexes returns the indexes defined on the table.
	Indexes(table string) []IndexInfo
	// ColumnStats returns statistics for a column, if built.
	ColumnStats(table, column string) (*stats.ColumnStats, bool)
}

// HypotheticalIndexInfo synthesises IndexInfo for an index definition that
// does not physically exist, from table metadata alone. Both the what-if
// catalog and MI-improvement estimation use it.
func HypotheticalIndexInfo(def schema.IndexDef, t TableInfo) IndexInfo {
	entryWidth := 0
	for _, c := range def.AllColumns() {
		if col, ok := t.Def.Column(c); ok {
			entryWidth += col.Width()
		}
	}
	for _, pk := range t.Def.PrimaryKey {
		if !def.HasColumn(pk) {
			if col, ok := t.Def.Column(pk); ok {
				entryWidth += col.Width()
			}
		}
	}
	if entryWidth == 0 {
		entryWidth = 8
	}
	leafPages := storage.PagesFor(t.RowCount, entryWidth)
	height := 1
	for n := leafPages; n > 1; n /= 64 {
		height++
		if height > 6 {
			break
		}
	}
	return IndexInfo{Def: def, Height: height, LeafPages: leafPages, RowCount: t.RowCount}
}

// WhatIfCatalog overlays hypothetical indexes on a base catalog. It is the
// reproduction of the AutoAdmin what-if API: DTA costs configurations by
// planning against this catalog, never building the indexes.
type WhatIfCatalog struct {
	Base Catalog
	// Hypothetical maps lower(table) to added index definitions.
	hypo map[string][]schema.IndexDef
	// Excluded hides existing indexes (lower(index name)), letting DTA
	// evaluate drops as well as creates.
	excluded map[string]bool
	// Calls counts catalog planning uses for resource accounting.
	Calls int64

	// sig memoizes ConfigSignature; sigValid is cleared by every mutator.
	sig      string
	sigValid bool
}

// NewWhatIfCatalog returns an overlay over base.
func NewWhatIfCatalog(base Catalog) *WhatIfCatalog {
	return &WhatIfCatalog{
		Base:     base,
		hypo:     make(map[string][]schema.IndexDef),
		excluded: make(map[string]bool),
	}
}

// AddHypothetical adds a hypothetical index; the definition is marked
// Hypothetical regardless of input.
func (w *WhatIfCatalog) AddHypothetical(def schema.IndexDef) {
	def = def.Clone()
	def.Hypothetical = true
	k := strings.ToLower(def.Table)
	w.hypo[k] = append(w.hypo[k], def)
	w.sigValid = false
}

// RemoveHypothetical removes a previously added hypothetical index by name.
func (w *WhatIfCatalog) RemoveHypothetical(name string) {
	for k, defs := range w.hypo {
		out := defs[:0]
		for _, d := range defs {
			if !strings.EqualFold(d.Name, name) {
				out = append(out, d)
			}
		}
		w.hypo[k] = out
	}
	w.sigValid = false
}

// ClearHypothetical removes all hypothetical indexes.
func (w *WhatIfCatalog) ClearHypothetical() {
	w.hypo = make(map[string][]schema.IndexDef)
	w.sigValid = false
}

// Exclude hides an existing index from planning.
func (w *WhatIfCatalog) Exclude(indexName string) {
	w.excluded[strings.ToLower(indexName)] = true
	w.sigValid = false
}

// ConfigSignature canonically describes the overlay: the sorted
// hypothetical index definitions (name plus structural signature — the
// name matters because cached plans reference indexes by name) and the
// sorted excluded set. Two catalogs with equal signatures plan every
// statement identically over the same base catalog, which is what lets
// the plan-cost cache key on it. The result is memoized until the next
// mutation.
func (w *WhatIfCatalog) ConfigSignature() string {
	if w.sigValid {
		return w.sig
	}
	w.sig = w.signature(nil)
	w.sigValid = true
	return w.sig
}

// ConfigSignatureWith returns the signature the catalog would have if add
// were also present, without mutating the overlay — the plan-cost cache
// uses it to probe batched configurations before adding anything.
func (w *WhatIfCatalog) ConfigSignatureWith(add []schema.IndexDef) string {
	if len(add) == 0 {
		return w.ConfigSignature()
	}
	return w.signature(add)
}

func (w *WhatIfCatalog) signature(extra []schema.IndexDef) string {
	var adds []string
	for _, defs := range w.hypo {
		for _, d := range defs {
			adds = append(adds, strings.ToLower(d.Name)+"|"+d.Signature())
		}
	}
	for _, d := range extra {
		adds = append(adds, strings.ToLower(d.Name)+"|"+d.Signature())
	}
	sort.Strings(adds)
	excl := make([]string, 0, len(w.excluded))
	for name := range w.excluded {
		excl = append(excl, name)
	}
	sort.Strings(excl)
	return "+" + strings.Join(adds, ";") + "/-" + strings.Join(excl, ";")
}

// Table implements Catalog.
func (w *WhatIfCatalog) Table(name string) (TableInfo, bool) {
	return w.Base.Table(name)
}

// Indexes implements Catalog, overlaying hypothetical definitions and
// hiding excluded ones.
func (w *WhatIfCatalog) Indexes(table string) []IndexInfo {
	base := w.Base.Indexes(table)
	out := make([]IndexInfo, 0, len(base))
	for _, ix := range base {
		if !w.excluded[strings.ToLower(ix.Def.Name)] {
			out = append(out, ix)
		}
	}
	t, ok := w.Table(table)
	if !ok {
		return out
	}
	for _, def := range w.hypo[strings.ToLower(table)] {
		out = append(out, HypotheticalIndexInfo(def, t))
	}
	return out
}

// ColumnStats implements Catalog.
func (w *WhatIfCatalog) ColumnStats(table, column string) (*stats.ColumnStats, bool) {
	return w.Base.ColumnStats(table, column)
}

// String describes the overlay for diagnostics.
func (w *WhatIfCatalog) String() string {
	n := 0
	for _, d := range w.hypo {
		n += len(d)
	}
	return fmt.Sprintf("whatif(+%d hypothetical, -%d excluded)", n, len(w.excluded))
}
