// Package telemetry provides the anonymized, aggregated signals the
// service is debugged through (§1.2, §3): engineers never see query text
// or data, only counters and coarse events. Components emit into a Hub;
// dashboards (the fleetsim binary) read aggregated views.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Event is one coarse, anonymized service event.
type Event struct {
	At       time.Time
	Database string // database name is a pseudonymous identifier
	Kind     string
	Detail   string // must not contain customer data
}

// Hub collects counters and events.
type Hub struct {
	mu       sync.Mutex
	counters map[string]int64
	events   []Event
	maxEv    int
}

// NewHub returns an empty hub retaining up to maxEvents events.
func NewHub(maxEvents int) *Hub {
	if maxEvents <= 0 {
		maxEvents = 4096
	}
	return &Hub{counters: make(map[string]int64), maxEv: maxEvents}
}

// Inc adds delta to a named counter.
func (h *Hub) Inc(name string, delta int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counters[name] += delta
}

// Counter reads a counter.
func (h *Hub) Counter(name string) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counters[name]
}

// Counters returns a sorted snapshot of all counters.
func (h *Hub) Counters() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.counters))
	for n := range h.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s=%d", n, h.counters[n])
	}
	return out
}

// Emit records an event (dropping the oldest past capacity).
func (h *Hub) Emit(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.events = append(h.events, e)
	if len(h.events) > h.maxEv {
		h.events = h.events[len(h.events)-h.maxEv:]
	}
}

// Events returns a copy of retained events.
func (h *Hub) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.events...)
}
