package costcache

import (
	"fmt"
	"testing"
	"time"

	"autoindex/internal/metrics"
	"autoindex/internal/optimizer"
	"autoindex/internal/sim"
)

func newClock() *sim.VirtualClock {
	return sim.NewVirtualClock(sim.DefaultStart)
}

func k(h uint64, sig string) Key { return Key{QueryHash: h, ConfigSig: sig} }

func TestGetPutRoundTrip(t *testing.T) {
	c := New(8, newClock())
	if _, _, ok := c.Get(k(1, "a")); ok {
		t.Fatal("hit on empty cache")
	}
	plan := &optimizer.Plan{}
	c.Put(k(1, "a"), 42.5, plan)
	cost, p, ok := c.Get(k(1, "a"))
	if !ok || cost != 42.5 || p != plan {
		t.Fatalf("got (%v %v %v), want (42.5, plan, true)", cost, p, ok)
	}
	// Same hash, different configuration signature: distinct entry.
	if _, _, ok := c.Get(k(1, "b")); ok {
		t.Fatal("configuration signature not part of the key")
	}
}

func TestLRUEvictionIsAccessOrdered(t *testing.T) {
	c := New(3, newClock())
	for i := uint64(0); i < 3; i++ {
		c.Put(k(i, ""), float64(i), nil)
	}
	// Touch key 0 so key 1 becomes the least recently used.
	c.Get(k(0, ""))
	c.Put(k(9, ""), 9, nil)
	if _, _, ok := c.Get(k(1, "")); ok {
		t.Fatal("expected key 1 to be evicted (least recently used)")
	}
	for _, h := range []uint64{0, 2, 9} {
		if _, _, ok := c.Get(k(h, "")); !ok {
			t.Fatalf("key %d unexpectedly evicted", h)
		}
	}
}

func TestEvictionDeterministic(t *testing.T) {
	// Two caches driven through the same access sequence hold the same
	// keys afterwards — eviction never consults map order.
	run := func() string {
		c := New(4, newClock())
		for i := 0; i < 32; i++ {
			c.Put(k(uint64(i%7), fmt.Sprintf("s%d", i%3)), float64(i), nil)
			c.Get(k(uint64((i*5)%7), fmt.Sprintf("s%d", (i*2)%3)))
		}
		out := ""
		for h := uint64(0); h < 7; h++ {
			for s := 0; s < 3; s++ {
				if _, _, ok := c.Get(k(h, fmt.Sprintf("s%d", s))); ok {
					out += fmt.Sprintf("%d/s%d;", h, s)
				}
			}
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("eviction state diverged:\n%s\n%s", a, b)
	}
}

func TestInvalidateDropsEverythingAndCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(8, newClock())
	c.SetMetrics(reg)
	c.Put(k(1, "a"), 1, nil)
	c.Put(k(2, "a"), 2, nil)
	if n := c.Invalidate(StatsRefresh); n != 2 {
		t.Fatalf("Invalidate dropped %d, want 2", n)
	}
	if c.Len() != 0 {
		t.Fatalf("cache not empty after invalidation: %d", c.Len())
	}
	// Empty-cache invalidations are not counted as events.
	if n := c.Invalidate(DataChange); n != 0 {
		t.Fatalf("empty invalidation dropped %d", n)
	}
	if v := reg.Counter(DescInvalidationsStats).Value(); v != 1 {
		t.Fatalf("invalidations_stats = %d, want 1", v)
	}
	if v := reg.Counter(DescInvalidationsData).Value(); v != 0 {
		t.Fatalf("invalidations_data = %d, want 0 (cache was empty)", v)
	}
	if v := reg.Counter(DescInvalidatedEntries).Value(); v != 2 {
		t.Fatalf("invalidated_entries = %d, want 2", v)
	}
}

func TestMetricsCountHitsMissesEvictions(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(1, newClock())
	c.SetMetrics(reg)
	c.Get(k(1, ""))         // miss
	c.Put(k(1, ""), 1, nil) //
	c.Get(k(1, ""))         // hit
	c.Put(k(2, ""), 2, nil) // evicts 1
	c.Get(k(1, ""))         // miss
	if v := reg.Counter(DescHits).Value(); v != 1 {
		t.Fatalf("hits = %d, want 1", v)
	}
	if v := reg.Counter(DescMisses).Value(); v != 2 {
		t.Fatalf("misses = %d, want 2", v)
	}
	if v := reg.Counter(DescEvictions).Value(); v != 1 {
		t.Fatalf("evictions = %d, want 1", v)
	}
}

func TestLastUsedTracksSimulatedTime(t *testing.T) {
	clock := newClock()
	c := New(8, clock)
	c.Put(k(1, ""), 1, nil)
	t0, ok := c.LastUsed(k(1, ""))
	if !ok || !t0.Equal(clock.Now()) {
		t.Fatalf("lastUsed = %v ok=%v, want insert-time stamp", t0, ok)
	}
	clock.Advance(3 * time.Hour)
	c.Get(k(1, ""))
	t1, _ := c.LastUsed(k(1, ""))
	if got := t1.Sub(t0); got != 3*time.Hour {
		t.Fatalf("lastUsed advanced by %v, want 3h of simulated time", got)
	}
}
