package engine

import "autoindex/internal/metrics"

// Engine-side instrumentation: statement throughput, index DDL cost
// (build durations, lock waits), and chaos fault-point trips. All
// values are int64 and updated with commutative atomic adds, so fleet
// totals are identical at any worker count.
var (
	descStatements = metrics.NewCounterDesc("engine.statements_executed",
		"DML/query statements executed (DDL excluded)")
	descIndexBuilds = metrics.NewCounterDesc("engine.index_builds",
		"index builds that completed successfully")
	descIndexBuildMillis = metrics.NewHistogramDesc("engine.index_build_ms",
		"successful index-build durations in virtual milliseconds",
		100, 500, 1_000, 5_000, 30_000, 120_000, 600_000)
	descIndexDrops = metrics.NewCounterDesc("engine.index_drops",
		"index drops that completed successfully")
	descLockWaitMillis = metrics.NewHistogramDesc("engine.lock_wait_ms",
		"exclusive schema-lock wait preceding an index drop, virtual milliseconds",
		1, 10, 100, 1_000, 5_000, 30_000)
	descLockTimeouts = metrics.NewCounterDesc("engine.lock_timeouts",
		"DDL lock acquisitions that timed out (injected or real)")
	descFaultTrips = metrics.NewCounterDesc("engine.fault_trips",
		"chaos fault points tripped inside engine DDL paths")
)
