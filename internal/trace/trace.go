// Package trace records lightweight span trees for tuning work: one
// root span per (tenant, tuning-session), with children for the DTA
// pass, missing-index pass, implementation, and validation. Spans are
// not a separate storage system — on End they become telemetry Hub
// events (Kind "span"), so the existing auditing surface (Events,
// Snapshot, chaos droppers) sees them like any other telemetry.
//
// Determinism: span IDs are sequence numbers per tenant handed out
// under a mutex, and durations come from the simulation clock, so a
// seeded run produces the same spans in the same order — provided
// spans are only started from serial control-plane sections. The
// parallel tenant-replay paths use plain metrics counters instead;
// emitting hub events from a worker pool would make event order (and
// the chaos dropper's RNG consumption) scheduling-dependent.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"autoindex/internal/metrics"
	"autoindex/internal/sim"
	"autoindex/internal/telemetry"
)

// Span-layer metrics, registered at package level like every other
// descriptor in the tree.
var (
	descSpans = metrics.NewCounterDesc("trace.spans",
		"spans completed across all tenants")
	descSpanMillis = metrics.NewHistogramDesc("trace.span_ms",
		"span durations in virtual milliseconds",
		1, 10, 100, 1_000, 10_000, 60_000, 600_000)
)

// Tracer hands out spans. A nil *Tracer is valid and produces nil
// spans whose methods are no-ops, so instrumented code never checks
// for enablement.
type Tracer struct {
	hub   *telemetry.Hub
	clock sim.Clock
	reg   *metrics.Registry

	mu  sync.Mutex
	seq map[string]int64 // per-tenant span sequence → deterministic IDs
}

// New builds a tracer that emits into hub and timestamps with clock.
// clock must be the simulation clock — the metricsdiscipline lint
// check flags a tracer driven by sim.WallClock. reg may be nil.
func New(hub *telemetry.Hub, clock sim.Clock, reg *metrics.Registry) *Tracer {
	return &Tracer{hub: hub, clock: clock, reg: reg, seq: make(map[string]int64)}
}

// Span is one timed unit of tuning work. Spans form trees via Child;
// IDs encode the tree ("db42#3" root, "db42#3.1" first child).
type Span struct {
	tracer   *Tracer
	tenant   string
	name     string
	id       string
	start    time.Time
	mu       sync.Mutex
	attrs    []string
	children int64
	ended    bool
}

// Start opens a root span for one tenant. Call End to record it.
func (t *Tracer) Start(tenant, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seq[tenant]++
	n := t.seq[tenant]
	t.mu.Unlock()
	return &Span{
		tracer: t,
		tenant: tenant,
		name:   name,
		id:     fmt.Sprintf("%s#%d", tenant, n),
		start:  t.clock.Now(),
	}
}

// Child opens a sub-span under s. Safe on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.children++
	n := s.children
	s.mu.Unlock()
	return &Span{
		tracer: s.tracer,
		tenant: s.tenant,
		name:   name,
		id:     fmt.Sprintf("%s.%d", s.id, n),
		start:  s.tracer.clock.Now(),
	}
}

// Annotate attaches a key=value attribute to the span's eventual
// telemetry detail. Values must not contain customer data — they land
// in the Hub verbatim.
func (s *Span) Annotate(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, fmt.Sprintf("%s=%v", key, value))
	s.mu.Unlock()
}

// End closes the span: computes the virtual duration, emits one Hub
// event, and feeds the span metrics. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := strings.Join(s.attrs, " ")
	s.mu.Unlock()

	now := s.tracer.clock.Now()
	dur := now.Sub(s.start)
	detail := fmt.Sprintf("%s id=%s dur_ms=%d", s.name, s.id, dur.Milliseconds())
	if attrs != "" {
		detail += " " + attrs
	}
	if s.tracer.hub != nil {
		s.tracer.hub.Emit(telemetry.Event{
			At:       now,
			Database: s.tenant,
			Kind:     "span",
			Detail:   detail,
		})
	}
	s.tracer.reg.Counter(descSpans).Inc()
	s.tracer.reg.Histogram(descSpanMillis).ObserveDuration(dur)
}

// ID returns the span's deterministic identifier ("" for nil spans).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}
