package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDisciplineAnalyzer enforces three mutex rules on sync.Mutex /
// sync.RWMutex (including types that embed them):
//
//  1. no lock copied by value (parameters, plain assignments, range
//     values) — a copied mutex guards nothing;
//  2. every Lock/RLock has a matching Unlock/RUnlock somewhere in the
//     same function (plain or deferred) — cross-function lock helpers
//     are possible but rare enough to annotate with //lint:ignore;
//  3. no path re-Locks a mutex it already holds (straight-line and
//     branch-aware: a branch that unlocks-and-returns does not
//     release the fall-through path).
//
// The path scan is deliberately conservative: held-sets merge by
// intersection across branches, so it under-reports rather than
// false-positives.
var LockDisciplineAnalyzer = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "mutex copied by value, Lock without same-function Unlock, or double-lock on one path",
	Run:  runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		checkLockCopies(pass, file)
		funcBodies(file, func(body *ast.BlockStmt) {
			checkLockPairing(pass, body)
			sc := &lockScanner{pass: pass}
			sc.scanStmts(body.List, map[string]token.Position{})
		})
	}
}

// --- mutex operations -------------------------------------------------

// mutexOp classifies a call as a sync.Mutex/RWMutex method invocation.
type mutexOp struct {
	key     string // rendered receiver, e.g. "lm.mu" or "h" (embedded)
	name    string // Lock, Unlock, RLock, RUnlock
	write   bool   // Lock/Unlock (vs RLock/RUnlock)
	acquire bool   // Lock/RLock
	pos     token.Pos
}

func asMutexOp(pass *Pass, call *ast.CallExpr) (mutexOp, bool) {
	fn, sel := methodOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return mutexOp{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return mutexOp{}, false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return mutexOp{}, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return mutexOp{}, false
	}
	op := mutexOp{key: types.ExprString(sel.X), name: fn.Name(), pos: call.Pos()}
	switch fn.Name() {
	case "Lock":
		op.write, op.acquire = true, true
	case "Unlock":
		op.write = true
	case "RLock":
		op.acquire = true
	case "RUnlock":
	default:
		return mutexOp{}, false // TryLock et al: failure is observable, no discipline to enforce
	}
	return op, true
}

// --- rule 1: copies ---------------------------------------------------

func checkLockCopies(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			checkFieldListCopies(pass, d.Recv)
			checkFieldListCopies(pass, d.Type.Params)
			checkFieldListCopies(pass, d.Type.Results)
		case *ast.FuncLit:
			checkFieldListCopies(pass, d.Type.Params)
			checkFieldListCopies(pass, d.Type.Results)
		case *ast.AssignStmt:
			for i, rhs := range d.Rhs {
				if !copiesLockValue(pass, rhs) {
					continue
				}
				lhs := "_"
				if i < len(d.Lhs) {
					lhs = types.ExprString(d.Lhs[i])
				}
				pass.Reportf(d.Pos(), "assignment of %s to %s copies a sync lock by value; use a pointer", types.ExprString(rhs), lhs)
			}
		case *ast.RangeStmt:
			if d.Value != nil {
				if elem := rangeElemType(pass.TypeOf(d.X)); elem != nil && containsLock(elem) {
					pass.Reportf(d.Value.Pos(), "range value %s copies a sync lock each iteration; range over indices or pointers", types.ExprString(d.Value))
				}
			}
		}
		return true
	})
}

func checkFieldListCopies(pass *Pass, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := pass.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t) {
			pass.Reportf(f.Type.Pos(), "%s passes a sync lock by value; use a pointer", types.ExprString(f.Type))
		}
	}
}

// copiesLockValue reports whether evaluating e yields a by-value copy
// of an existing lock-containing value. Composite literals and calls
// construct fresh values and are fine.
func copiesLockValue(pass *Pass, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return containsLock(t)
}

func rangeElemType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	}
	return nil
}

// containsLock reports whether t directly contains a sync.Mutex or
// sync.RWMutex (through struct fields and arrays, not pointers).
func containsLock(t types.Type) bool {
	return containsLock1(t, make(map[types.Type]bool))
}

func containsLock1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock1(u.Elem(), seen)
	}
	return false
}

// --- rule 2: pairing --------------------------------------------------

func checkLockPairing(pass *Pass, body *ast.BlockStmt) {
	type counts struct {
		firstLock token.Pos
		locks     int
		unlocks   int
	}
	perKey := map[string]*counts{} // key + "/" + mode
	var order []string
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate function, analyzed on its own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := asMutexOp(pass, call)
		if !ok {
			return true
		}
		mode := "r"
		if op.write {
			mode = "w"
		}
		k := op.key + "/" + mode
		c := perKey[k]
		if c == nil {
			c = &counts{}
			perKey[k] = c
			order = append(order, k)
		}
		if op.acquire {
			c.locks++
			if c.firstLock == token.NoPos {
				c.firstLock = op.pos
			}
		} else {
			c.unlocks++
		}
		return true
	})
	for _, k := range order {
		c := perKey[k]
		if c.locks > 0 && c.unlocks == 0 {
			name, uname := "Lock", "Unlock"
			if k[len(k)-1] == 'r' {
				name, uname = "RLock", "RUnlock"
			}
			pass.Reportf(c.firstLock, "%s of %s without a matching %s in the same function; defer the unlock (or //lint:ignore lockdiscipline <reason> for cross-function helpers)",
				name, k[:len(k)-2], uname)
		}
	}
}

// --- rule 3: double-lock on a path -----------------------------------

// lockScanner walks statement lists tracking which write-mutexes are
// held. Branch results merge by intersection, and a branch that
// terminates (return/break/continue/panic) contributes nothing to the
// fall-through state — so `if x { mu.Unlock(); return }` does not
// release the fall-through path.
type lockScanner struct {
	pass *Pass
}

// scanStmts processes stmts, mutating held (key → position of the
// acquiring Lock). It reports whether the statement list definitely
// terminates (cannot fall through).
func (sc *lockScanner) scanStmts(stmts []ast.Stmt, held map[string]token.Position) bool {
	for _, s := range stmts {
		if sc.scanStmt(s, held) {
			return true
		}
	}
	return false
}

func (sc *lockScanner) scanStmt(s ast.Stmt, held map[string]token.Position) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			sc.scanCall(call, held)
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return sc.scanStmts(st.List, held)
	case *ast.LabeledStmt:
		return sc.scanStmt(st.Stmt, held)
	case *ast.IfStmt:
		thenHeld := copyHeld(held)
		thenTerm := sc.scanStmts(st.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if st.Else != nil {
			elseTerm = sc.scanStmt(st.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm && st.Else != nil:
			return true
		case thenTerm:
			replaceHeld(held, elseHeld)
		case elseTerm:
			replaceHeld(held, thenHeld)
		default:
			replaceHeld(held, intersectHeld(thenHeld, elseHeld))
		}
	case *ast.ForStmt:
		bodyHeld := copyHeld(held)
		sc.scanStmts(st.Body.List, bodyHeld)
		replaceHeld(held, intersectHeld(held, bodyHeld))
	case *ast.RangeStmt:
		bodyHeld := copyHeld(held)
		sc.scanStmts(st.Body.List, bodyHeld)
		replaceHeld(held, intersectHeld(held, bodyHeld))
	case *ast.SwitchStmt:
		sc.scanClauses(st.Body, held, hasDefaultClause(st.Body))
	case *ast.TypeSwitchStmt:
		sc.scanClauses(st.Body, held, hasDefaultClause(st.Body))
	case *ast.SelectStmt:
		sc.scanClauses(st.Body, held, true)
	case *ast.DeferStmt:
		// Deferred unlocks run at return; they satisfy pairing but do
		// not release the lock for subsequent statements.
	case *ast.GoStmt:
		// Separate goroutine, separate discipline.
	case *ast.AssignStmt:
		// Mutex ops hidden in assignment RHS calls are vanishingly
		// rare (Lock returns nothing); skip.
	}
	return false
}

func (sc *lockScanner) scanCall(call *ast.CallExpr, held map[string]token.Position) {
	op, ok := asMutexOp(sc.pass, call)
	if !ok {
		return
	}
	if !op.write {
		return // shared RLocks may legitimately nest
	}
	if op.acquire {
		if prev, locked := held[op.key]; locked {
			sc.pass.Reportf(op.pos, "Lock of %s while already held on this path (locked at line %d); this deadlocks", op.key, prev.Line)
			return
		}
		held[op.key] = sc.pass.Fset.Position(op.pos)
	} else {
		delete(held, op.key)
	}
}

// scanClauses merges switch/select clause bodies by intersection. When
// the construct has no default (exhaustive=false) the unchanged entry
// state is one of the possibilities.
func (sc *lockScanner) scanClauses(body *ast.BlockStmt, held map[string]token.Position, exhaustive bool) {
	var results []map[string]token.Position
	if !exhaustive {
		results = append(results, copyHeld(held))
	}
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		default:
			continue
		}
		ch := copyHeld(held)
		if !sc.scanStmts(list, ch) {
			results = append(results, ch)
		}
	}
	if len(results) == 0 {
		// Every clause terminates; keep entry state for the (dead)
		// fall-through rather than inventing one.
		return
	}
	merged := results[0]
	for _, r := range results[1:] {
		merged = intersectHeld(merged, r)
	}
	replaceHeld(held, merged)
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

func copyHeld(h map[string]token.Position) map[string]token.Position {
	out := make(map[string]token.Position, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func intersectHeld(a, b map[string]token.Position) map[string]token.Position {
	out := make(map[string]token.Position)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func replaceHeld(dst, src map[string]token.Position) {
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
	for k, v := range src {
		dst[k] = v
	}
}
