package mi

import "autoindex/internal/metrics"

// Missing-index pipeline instrumentation (§5.2): candidates surviving
// the seek/slope filters versus candidates the merge, existing-index,
// and classifier stages discard, plus pass latency in virtual time.
var (
	descPasses = metrics.NewCounterDesc("mi.passes",
		"missing-index recommendation passes")
	descCandidatesGenerated = metrics.NewCounterDesc("mi.candidates_generated",
		"candidates built from DMV histories (post seek/slope filters)")
	descCandidatesPruned = metrics.NewCounterDesc("mi.candidates_pruned",
		"candidates dropped by merging, existing-index dedup, classifier, or the top-k cut")
	descPassMillis = metrics.NewHistogramDesc("mi.pass_ms",
		"missing-index pass latency in virtual milliseconds",
		1, 10, 100, 1_000, 10_000)
)
