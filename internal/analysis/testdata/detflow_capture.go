// Detflow fixtures, type-checked under "autoindex/internal/serve" (see
// fixtureOverrides). The serving path is sanctioned to *read* the wall
// clock — wallclock stays silent throughout this file — but detflow
// must still catch a sanctioned read whose value leaks into
// deterministic output. Minimized from the live-capture path: a session
// wall-timestamp stamped into a snapshot that fleet runs promise to
// reproduce byte-for-byte.
package fixture

import (
	"fmt"
	"sort"
	"time"
)

type captureSnap struct {
	started time.Time
}

// MarshalDeterministic is a determinism sink by contract: every
// snapshot type in the repo encodes through this name.
func (c captureSnap) MarshalDeterministic() []byte { return nil }

// stampSession reads the wall clock — legal in serve, so no wallclock
// finding here; the taint travels via the return-value fact instead.
func stampSession() time.Time {
	return time.Now()
}

func encodeCapture() []byte {
	cs := captureSnap{started: stampSession()}
	return cs.MarshalDeterministic() // want "detflow: value derived from wall-clock time .* reaches deterministic sink MarshalDeterministic snapshot encoding"
}

// encodeVirtual is the fix: the caller supplies a sim-derived
// timestamp. No diagnostic.
func encodeVirtual(now time.Time) []byte {
	cs := captureSnap{started: now}
	return cs.MarshalDeterministic()
}

// collectHashes leaks map-iteration order through its return value;
// maporder reports the loop itself, detflow follows the value across
// the call boundary below.
func collectHashes(m map[string]int) []string {
	var hashes []string
	for h := range m { // want "maporder: map iteration order leaks into append to hashes"
		hashes = append(hashes, h)
	}
	return hashes
}

func reportHashes(m map[string]int) {
	fmt.Println(collectHashes(m)) // want "detflow: value derived from map-iteration order .* reaches deterministic sink fmt.Println report output"
}

// reportHashesSorted is the fix: canonical order before emitting. No
// diagnostic from either tier.
func collectHashesSorted(m map[string]int) []string {
	hashes := make([]string, 0, len(m))
	for h := range m {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	return hashes
}

func reportHashesSorted(m map[string]int) {
	fmt.Println(collectHashesSorted(m))
}
