package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/metrics"
	"autoindex/internal/sim"
	"autoindex/internal/wire"
)

const testPassword = "secret"

// newTestDB builds a small orders database directly through the engine
// (no workload generator), so tests know exactly what data the server
// holds.
func newTestDB(t testing.TB) *engine.Database {
	t.Helper()
	db := engine.New(engine.DefaultConfig("db000", engine.TierStandard, 1), sim.NewClock())
	mustExec(t, db, `CREATE TABLE orders (id BIGINT NOT NULL, customer_id BIGINT, status VARCHAR, amount FLOAT, created BIGINT, PRIMARY KEY (id))`)
	statuses := []string{"new", "paid", "shipped"}
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf(
			"INSERT INTO orders (id, customer_id, status, amount, created) VALUES (%d, %d, '%s', %g, %d)",
			i, i%5, statuses[i%3], float64(i)*2.5, 1000+i))
	}
	return db
}

func mustExec(t testing.TB, db *engine.Database, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
}

// startServer runs a Server on an ephemeral port and tears it down with
// the test. The returned registry is the one receiving serve.* metrics.
func startServer(t testing.TB, cfg Config) (*Server, string, *metrics.Registry) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Password == "" {
		cfg.Password = testPassword
	}
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return srv, ln.Addr().String(), cfg.Metrics
}

func lookupOne(db *engine.Database) func(string) (*engine.Database, bool) {
	return func(name string) (*engine.Database, bool) {
		if name == db.Name() {
			return db, true
		}
		return nil, false
	}
}

// sqlErrCode unwraps the server error code from a client-side error.
func sqlErrCode(err error) uint16 {
	var se *wire.SQLError
	if errors.As(err, &se) {
		return se.Code
	}
	return 0
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAdHocQueryAndLiveCapture(t *testing.T) {
	db := newTestDB(t)
	totalBefore, liveBefore := db.QueryStore().ExecutionTotals()
	if liveBefore != 0 {
		t.Fatalf("setup statements must not count as live, got %d", liveBefore)
	}
	_, addr, reg := startServer(t, Config{Lookup: lookupOne(db)})

	cl, err := wire.Dial(addr, "app", testPassword, "db000")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Query("SELECT id, status FROM orders WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "id" || res.Columns[1] != "status" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text != "3" || res.Rows[0][1].Text != "new" {
		t.Fatalf("rows = %+v", res.Rows)
	}

	res, err = cl.Query("SELECT count(*) FROM orders WHERE customer_id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text != "4" {
		t.Fatalf("count rows = %+v", res.Rows)
	}

	res, err = cl.Query("INSERT INTO orders (id, customer_id, status, amount, created) VALUES (100, 9, 'new', 1.5, 2000)")
	if err != nil {
		t.Fatal(err)
	}
	if res.AffectedRows != 1 || res.Columns != nil {
		t.Fatalf("insert result = %+v", res)
	}
	res, err = cl.Query("SELECT id FROM orders WHERE customer_id = 9")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text != "100" {
		t.Fatalf("post-insert rows = %+v", res.Rows)
	}

	total, live := db.QueryStore().ExecutionTotals()
	if live == 0 {
		t.Fatal("wire statements were not captured as live")
	}
	if total-totalBefore != live {
		t.Fatalf("all new executions should be live: total delta %d, live %d", total-totalBefore, live)
	}
	if got := reg.Counter(DescStatements).Value(); got < 4 {
		t.Fatalf("serve.stmts = %d, want >= 4", got)
	}
	if got := reg.Counter(DescConnections).Value(); got != 1 {
		t.Fatalf("serve.connections = %d, want 1", got)
	}
}

func TestPreparedStatements(t *testing.T) {
	db := newTestDB(t)
	_, addr, _ := startServer(t, Config{Lookup: lookupOne(db)})

	cl, err := wire.Dial(addr, "app", testPassword, "db000")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, err := cl.Prepare("SELECT id, amount FROM orders WHERE customer_id = ? ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Execute(int64(2))
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"2", "7", "12", "17"}
	if len(res.Rows) != len(wantIDs) {
		t.Fatalf("rows = %+v", res.Rows)
	}
	for i, want := range wantIDs {
		if res.Rows[i][0].Text != want {
			t.Fatalf("row %d id = %q, want %q", i, res.Rows[i][0].Text, want)
		}
	}
	// Binary doubles come back rendered; row for id=2 has amount 5.
	if res.Rows[0][1].Text != "5" {
		t.Fatalf("amount = %q, want 5", res.Rows[0][1].Text)
	}

	// Re-execute with a different argument: same statement, new params.
	res, err = st.Execute(int64(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Rows[0][0].Text != "4" {
		t.Fatalf("re-execute rows = %+v", res.Rows)
	}

	// String and float parameters substitute as SQL literals.
	st2, err := cl.Prepare("SELECT id FROM orders WHERE status = ? AND amount > ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err = st2.Execute("paid", 40.0)
	if err != nil {
		t.Fatal(err)
	}
	// status=paid: ids 1,4,7,10,13,16,19; amount>40: ids 17..: so 19 only.
	if len(res.Rows) != 1 || res.Rows[0][0].Text != "19" {
		t.Fatalf("param rows = %+v", res.Rows)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Prepare-time validation catches garbage.
	if _, err := cl.Prepare("SELEC id FROM orders"); sqlErrCode(err) != wire.CodeParse {
		t.Fatalf("prepare garbage: err = %v, want code %d", err, wire.CodeParse)
	}
	// The session must still be usable after the error.
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after error: %v", err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	db := newTestDB(t)
	srv, addr, reg := startServer(t, Config{Lookup: lookupOne(db), CaptureBatch: 8})

	const conns, perConn = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := wire.Dial(addr, "app", testPassword, "db000")
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			st, err := cl.Prepare("SELECT id FROM orders WHERE customer_id = ?")
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perConn; i++ {
				if i%2 == 0 {
					res, err := cl.Query(fmt.Sprintf("SELECT status FROM orders WHERE id = %d", i%20))
					if err != nil {
						errs <- err
						return
					}
					if len(res.Rows) != 1 {
						errs <- fmt.Errorf("conn %d stmt %d: %d rows", c, i, len(res.Rows))
						return
					}
				} else {
					res, err := st.Execute(int64(i % 5))
					if err != nil {
						errs <- err
						return
					}
					if len(res.Rows) != 4 {
						errs <- fmt.Errorf("conn %d prepared %d: %d rows", c, i, len(res.Rows))
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := reg.Counter(DescStatements).Value(); got != conns*perConn {
		t.Fatalf("serve.stmts = %d, want %d", got, conns*perConn)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.ActiveSessions() == 0 }, "sessions to drain")
	stats := srv.CaptureStats()
	if stats.Statements != conns*perConn {
		t.Fatalf("captured statements = %d, want %d", stats.Statements, conns*perConn)
	}
	if stats.Batches == 0 || stats.DistinctQueries == 0 {
		t.Fatalf("capture stats = %+v", stats)
	}
	_, live := db.QueryStore().ExecutionTotals()
	if live != conns*perConn {
		t.Fatalf("live executions = %d, want %d", live, conns*perConn)
	}
}

func TestErrorMapping(t *testing.T) {
	db := newTestDB(t)
	_, addr, _ := startServer(t, Config{Lookup: lookupOne(db)})

	if _, err := wire.Dial(addr, "app", "wrong", "db000"); sqlErrCode(err) != wire.CodeAccessDenied {
		t.Fatalf("bad password: err = %v, want code %d", err, wire.CodeAccessDenied)
	}
	if _, err := wire.Dial(addr, "app", testPassword, "nope"); sqlErrCode(err) != wire.CodeUnknownDB {
		t.Fatalf("bad database: err = %v, want code %d", err, wire.CodeUnknownDB)
	}

	cl, err := wire.Dial(addr, "app", testPassword, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query("SELECT 1 FROM orders"); sqlErrCode(err) != wire.CodeNoDatabase {
		t.Fatalf("no database: err = %v, want code %d", err, wire.CodeNoDatabase)
	}
	if err := cl.Use("db000"); err != nil {
		t.Fatalf("USE: %v", err)
	}
	if _, err := cl.Query("SELECT id FROM missing"); sqlErrCode(err) != wire.CodeTableNotFound {
		t.Fatalf("missing table: err = %v, want code %d", err, wire.CodeTableNotFound)
	}
	if _, err := cl.Query("SELECT FROM WHERE"); sqlErrCode(err) != wire.CodeParse {
		t.Fatalf("parse error: err = %v, want code %d", err, wire.CodeParse)
	}
	if _, err := cl.Query("CREATE INDEX ix ON orders (id)"); err == nil {
		// First create succeeds; duplicate maps to the dup-index code.
		if _, err := cl.Query("CREATE INDEX ix ON orders (id)"); sqlErrCode(err) != wire.CodeDupIndex {
			t.Fatalf("dup index: err = %v, want code %d", err, wire.CodeDupIndex)
		}
	}
	// The session survives every statement error.
	res, err := cl.Query("SELECT id FROM orders WHERE id = 0")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("after errors: res = %+v err = %v", res, err)
	}
}
