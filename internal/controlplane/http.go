package controlplane

import (
	"encoding/json"
	"errors"
	"net/http"
)

// HTTPHandler exposes the §2 management surface over REST, mirroring what
// the Azure portal and REST API offer: list recommendations and history,
// read details, apply a recommendation, and change a database's settings.
//
// Routes:
//
//	GET  /databases                         — managed databases + settings
//	GET  /databases/{db}/recommendations    — Active recommendations (Fig. 2)
//	GET  /databases/{db}/history            — action history with outcomes
//	GET  /recommendations/{id}              — detail view (Fig. 3)
//	POST /recommendations/{id}/apply        — user-initiated apply
//	PUT  /databases/{db}/settings           — update settings (Fig. 1)
//	GET  /opstats                           — §8.1 service counters
func (cp *ControlPlane) HTTPHandler() http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v) //nolint:errcheck
	}

	mux.HandleFunc("GET /databases", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, cp.store.Databases())
	})

	mux.HandleFunc("GET /databases/{db}/recommendations", func(w http.ResponseWriter, r *http.Request) {
		db := r.PathValue("db")
		if _, ok := cp.store.GetDatabase(db); !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown database"})
			return
		}
		writeJSON(w, http.StatusOK, cp.ListRecommendations(db))
	})

	mux.HandleFunc("GET /databases/{db}/history", func(w http.ResponseWriter, r *http.Request) {
		db := r.PathValue("db")
		if _, ok := cp.store.GetDatabase(db); !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown database"})
			return
		}
		writeJSON(w, http.StatusOK, cp.History(db))
	})

	mux.HandleFunc("GET /recommendations/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		rec, ok := cp.store.GetRecord(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown recommendation"})
			return
		}
		detail, _ := cp.Details(id)
		writeJSON(w, http.StatusOK, map[string]any{"record": rec, "detail": detail})
	})

	mux.HandleFunc("POST /recommendations/{id}/apply", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := cp.Apply(id); err != nil {
			code := http.StatusConflict
			if errors.Is(err, ErrNoRecommendation) {
				code = http.StatusNotFound
			}
			writeJSON(w, code, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "apply requested"})
	})

	mux.HandleFunc("PUT /databases/{db}/settings", func(w http.ResponseWriter, r *http.Request) {
		db := r.PathValue("db")
		var s Settings
		if err := json.NewDecoder(r.Body).Decode(&s); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if err := cp.SetSettings(db, s); err != nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, s)
	})

	mux.HandleFunc("GET /opstats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, cp.OpStats())
	})

	return mux
}
