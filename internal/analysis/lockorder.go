package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer upgrades lockdiscipline from intra-function to
// whole-program: it derives a mutex-acquisition-order graph from
// per-function lock summaries propagated over the call graph, and
// reports
//
//  1. cycles in the order graph — two call paths that acquire the same
//     pair of mutexes in opposite orders can deadlock under
//     concurrency even though every individual function looks fine;
//  2. call sites that may re-acquire a mutex already held on the path
//     — the cross-function form of lockdiscipline's double-lock rule,
//     which self-deadlocks on the spot (sync.Mutex is not reentrant).
//
// Mutexes are identified structurally: struct fields merge across
// instances ("serve.Server.mu" is one lock to the analyzer no matter
// which server), package vars by name, locals by declaration site.
// Merging instances over-approximates — locking a *different*
// instance of the same field is flagged as a re-acquire — which is the
// conservative direction for a deadlock check; genuinely
// instance-disjoint designs carry an audited //lint:ignore. Read locks
// (RLock) are ignored: shared locks nest legitimately.
//
// Only write-mode sync.Mutex/RWMutex operations participate. Calls via
// `go` are excluded (the goroutine does not inherit the caller's
// locks), as are deferred calls (they run at return, after the
// deferred unlocks this repo pairs them with).
var LockOrderAnalyzer = &Analyzer{
	Name:       "lockorder",
	Doc:        "whole-program mutex acquisition-order cycles and re-acquiring a held mutex through a call chain",
	SkipTests:  true,
	RunProgram: runLockOrder,
}

// A lockSite is one static acquisition of an identified mutex.
type lockSite struct {
	key stateKey
	pos token.Pos
}

// A heldCall is a call made while at least one write lock is held.
type heldCall struct {
	pos     token.Pos
	callees []*FuncNode
	held    []lockSite // sorted by key
}

// A lockSummary is one function's local lock behavior.
type lockSummary struct {
	acquires map[string]lockSite // first local acquisition per key
	pairs    [][2]lockSite       // [A held, B acquired] in-function order edges
	calls    []heldCall
}

func runLockOrder(pass *ProgramPass) {
	prog := pass.Prog
	summaries := make(map[*FuncNode]*lockSummary, len(prog.Nodes))
	for _, n := range prog.Nodes {
		if n.Test {
			continue
		}
		summaries[n] = summarizeLocks(prog, n)
	}

	// Fixed point: may[f] = f's local acquisitions ∪ may[callees].
	const mayPrefix = "lockorder.may:"
	may := func(n *FuncNode) map[string]lockSite {
		m, _ := pass.Facts.GetKey(mayPrefix + n.Key).(map[string]lockSite)
		return m
	}
	prog.FixedPoint(func(n *FuncNode) []*FuncNode {
		sum := summaries[n]
		if sum == nil {
			return nil
		}
		cur := may(n)
		next := make(map[string]lockSite, len(cur))
		for k, v := range sum.acquires {
			next[k] = v
		}
		for _, cs := range n.Calls {
			if cs.Go {
				continue
			}
			for _, c := range cs.Callees {
				for k, v := range may(c) {
					if _, ok := next[k]; !ok {
						next[k] = v
					}
				}
			}
		}
		if len(next) == len(cur) {
			return nil
		}
		pass.Facts.SetKey(mayPrefix+n.Key, next)
		return []*FuncNode{n}
	})

	// Rule 2: re-acquire through a call chain, and collection of
	// cross-function order edges.
	edges := make(map[string]map[string]orderEdge)
	display := make(map[string]string)
	addEdge := func(from, to lockSite, pos token.Pos, via string) {
		if from.key.Key == to.key.Key {
			return
		}
		display[from.key.Key] = from.key.Display
		display[to.key.Key] = to.key.Display
		m := edges[from.key.Key]
		if m == nil {
			m = make(map[string]orderEdge)
			edges[from.key.Key] = m
		}
		if _, ok := m[to.key.Key]; !ok {
			m[to.key.Key] = orderEdge{pos: pos, via: via}
		}
	}

	for _, n := range prog.Nodes {
		sum := summaries[n]
		if sum == nil {
			continue
		}
		for _, pr := range sum.pairs {
			addEdge(pr[0], pr[1], pr[1].pos, "")
		}
		for _, hc := range sum.calls {
			reported := false
			for _, c := range hc.callees {
				acq := may(c)
				if acq == nil {
					continue
				}
				for _, h := range hc.held {
					if site, ok := acq[h.key.Key]; ok && !reported {
						reported = true
						pass.Reportf(hc.pos, "call to %s while holding %s may re-acquire it (Lock at %s); sync mutexes are not reentrant, this deadlocks",
							c.Name, h.key.Display, prog.Fset.Position(site.pos))
					}
				}
				keys := make([]string, 0, len(acq))
				for k := range acq {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, h := range hc.held {
					for _, k := range keys {
						addEdge(h, lockSite{key: stateKey{Key: k, Display: acq[k].key.Display}}, hc.pos, c.Name)
					}
				}
			}
		}
	}

	// Rule 1: cycles. Find strongly connected components of the order
	// graph; any SCC with ≥2 mutexes means two opposite-order
	// acquisition paths exist.
	for _, scc := range stronglyConnected(edges) {
		if len(scc) < 2 {
			continue
		}
		var parts []string
		minPos := token.Pos(0)
		for _, from := range scc {
			for _, to := range scc {
				e, ok := edges[from][to]
				if !ok {
					continue
				}
				via := ""
				if e.via != "" {
					via = " via " + e.via
				}
				parts = append(parts, fmt.Sprintf("%s → %s (%s%s)",
					display[from], display[to], prog.Fset.Position(e.pos), via))
				if minPos == 0 || e.pos < minPos {
					minPos = e.pos
				}
			}
		}
		names := make([]string, len(scc))
		for i, k := range scc {
			names[i] = display[k]
		}
		pass.Reportf(minPos, "lock acquisition order cycle between %s: %s; opposite-order paths can deadlock under concurrency",
			strings.Join(names, ", "), strings.Join(parts, "; "))
	}
}

// An orderEdge records the first witness of "from is held while to is
// acquired": the acquisition (or call) position and, for edges crossing
// a call, the callee that performs the acquisition.
type orderEdge struct {
	pos token.Pos
	via string // callee display name, "" for in-function edges
}

// stronglyConnected returns the SCCs of the order graph with each
// component and the component list deterministically sorted.
func stronglyConnected(edges map[string]map[string]orderEdge) [][]string {
	nodes := make([]string, 0, len(edges))
	nodeSet := make(map[string]bool)
	add := func(k string) {
		if !nodeSet[k] {
			nodeSet[k] = true
			nodes = append(nodes, k)
		}
	}
	for from, tos := range edges {
		add(from)
		for to := range tos {
			add(to)
		}
	}
	sort.Strings(nodes)

	succ := func(k string) []string {
		tos := make([]string, 0, len(edges[k]))
		for to := range edges[k] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		return tos
	}

	// Iterative Tarjan.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		v    string
		succ []string
		i    int
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{v: root, succ: succ(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, succ: succ(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				sort.Strings(comp)
				sccs = append(sccs, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.v] < low[parent.v] {
					low[parent.v] = low[f.v]
				}
			}
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// --- local summary ----------------------------------------------------

// mutexWriteOp classifies call as a write-mode mutex operation
// (Lock/Unlock on sync.Mutex or sync.RWMutex, including embedded
// promotions) and resolves the mutex's identity.
func mutexWriteOp(u *Unit, fset *token.FileSet, call *ast.CallExpr) (key stateKey, acquire, ok bool) {
	fn, sel := methodOf(u.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return stateKey{}, false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return stateKey{}, false, false
	}
	rt := recv.Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return stateKey{}, false, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return stateKey{}, false, false
	}
	switch fn.Name() {
	case "Lock", "Unlock":
	default:
		return stateKey{}, false, false // RLock/RUnlock/TryLock: no write ordering
	}
	k, kok := stateKeyOf(u.Info, fset, sel.X)
	if !kok {
		pos := fset.Position(call.Pos())
		k = stateKey{
			Key:     fmt.Sprintf("mutex@%s:%d", pos.Filename, pos.Line),
			Display: types.ExprString(sel.X),
		}
	}
	return k, fn.Name() == "Lock", true
}

// summarizeLocks computes the node's local lock summary with the same
// branch-aware held tracking lockdiscipline uses: branches merge by
// intersection, terminated branches contribute nothing, so the summary
// under-reports rather than inventing held sets.
func summarizeLocks(prog *Program, n *FuncNode) *lockSummary {
	sc := &lockSummarizer{prog: prog, node: n, sum: &lockSummary{acquires: make(map[string]lockSite)}}
	sc.stmts(n.Body.List, map[string]lockSite{})
	return sc.sum
}

type lockSummarizer struct {
	prog *Program
	node *FuncNode
	sum  *lockSummary
}

func (sc *lockSummarizer) stmts(list []ast.Stmt, held map[string]lockSite) bool {
	for _, s := range list {
		if sc.stmt(s, held) {
			return true
		}
	}
	return false
}

// stmt processes one statement, mutating held; it reports whether the
// statement definitely terminates the enclosing list.
func (sc *lockSummarizer) stmt(s ast.Stmt, held map[string]lockSite) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		sc.expr(st.X, held)
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			sc.expr(e, held)
		}
		for _, e := range st.Lhs {
			sc.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			sc.expr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IncDecStmt:
		sc.expr(st.X, held)
	case *ast.SendStmt:
		sc.expr(st.Chan, held)
		sc.expr(st.Value, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						sc.expr(e, held)
					}
				}
			}
		}
	case *ast.BlockStmt:
		return sc.stmts(st.List, held)
	case *ast.LabeledStmt:
		return sc.stmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			sc.stmt(st.Init, held)
		}
		sc.expr(st.Cond, held)
		thenHeld := copySites(held)
		thenTerm := sc.stmts(st.Body.List, thenHeld)
		elseHeld := copySites(held)
		elseTerm := false
		if st.Else != nil {
			elseTerm = sc.stmt(st.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm && st.Else != nil:
			return true
		case thenTerm:
			replaceSites(held, elseHeld)
		case elseTerm:
			replaceSites(held, thenHeld)
		default:
			replaceSites(held, intersectSites(thenHeld, elseHeld))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			sc.stmt(st.Init, held)
		}
		if st.Cond != nil {
			sc.expr(st.Cond, held)
		}
		bodyHeld := copySites(held)
		sc.stmts(st.Body.List, bodyHeld)
		if st.Post != nil {
			sc.stmt(st.Post, bodyHeld)
		}
		replaceSites(held, intersectSites(held, bodyHeld))
	case *ast.RangeStmt:
		sc.expr(st.X, held)
		bodyHeld := copySites(held)
		sc.stmts(st.Body.List, bodyHeld)
		replaceSites(held, intersectSites(held, bodyHeld))
	case *ast.SwitchStmt:
		if st.Init != nil {
			sc.stmt(st.Init, held)
		}
		if st.Tag != nil {
			sc.expr(st.Tag, held)
		}
		sc.clauses(st.Body, held, hasDefaultClause(st.Body))
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			sc.stmt(st.Init, held)
		}
		sc.clauses(st.Body, held, hasDefaultClause(st.Body))
	case *ast.SelectStmt:
		sc.clauses(st.Body, held, true)
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's locks; only the
		// synchronously-evaluated arguments are scanned.
		for _, a := range st.Call.Args {
			sc.expr(a, held)
		}
	case *ast.DeferStmt:
		// Runs at return, after this repo's deferred unlocks; args are
		// evaluated now though.
		for _, a := range st.Call.Args {
			sc.expr(a, held)
		}
	}
	return false
}

func (sc *lockSummarizer) clauses(body *ast.BlockStmt, held map[string]lockSite, exhaustive bool) {
	var results []map[string]lockSite
	if !exhaustive {
		results = append(results, copySites(held))
	}
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				sc.stmt(c.Comm, held)
			}
			list = c.Body
		default:
			continue
		}
		ch := copySites(held)
		if !sc.stmts(list, ch) {
			results = append(results, ch)
		}
	}
	if len(results) == 0 {
		return
	}
	merged := results[0]
	for _, r := range results[1:] {
		merged = intersectSites(merged, r)
	}
	replaceSites(held, merged)
}

// expr walks e in evaluation order, updating held at mutex operations
// and recording calls made with locks held.
func (sc *lockSummarizer) expr(e ast.Expr, held map[string]lockSite) {
	switch x := e.(type) {
	case nil:
	case *ast.CallExpr:
		for _, a := range x.Args {
			sc.expr(a, held)
		}
		if key, acquire, ok := mutexWriteOp(sc.node.Unit, sc.prog.Fset, x); ok {
			if acquire {
				site := lockSite{key: key, pos: x.Pos()}
				for _, h := range sortedSites(held) {
					sc.sum.pairs = append(sc.sum.pairs, [2]lockSite{h, site})
				}
				if _, seen := sc.sum.acquires[key.Key]; !seen {
					sc.sum.acquires[key.Key] = site
				}
				held[key.Key] = site
			} else {
				delete(held, key.Key)
			}
			return
		}
		sc.expr(x.Fun, held)
		if len(held) > 0 {
			if cs := sc.prog.SiteFor(x); cs != nil && len(cs.Callees) > 0 {
				sc.sum.calls = append(sc.sum.calls, heldCall{
					pos:     x.Pos(),
					callees: cs.Callees,
					held:    sortedSites(held),
				})
			}
		}
	case *ast.FuncLit:
		// Its own node; a held lock does not transfer into it unless it
		// is called here, which the CallExpr case above handles.
	case *ast.ParenExpr:
		sc.expr(x.X, held)
	case *ast.SelectorExpr:
		sc.expr(x.X, held)
	case *ast.StarExpr:
		sc.expr(x.X, held)
	case *ast.UnaryExpr:
		sc.expr(x.X, held)
	case *ast.BinaryExpr:
		sc.expr(x.X, held)
		sc.expr(x.Y, held)
	case *ast.IndexExpr:
		sc.expr(x.X, held)
		sc.expr(x.Index, held)
	case *ast.SliceExpr:
		sc.expr(x.X, held)
		sc.expr(x.Low, held)
		sc.expr(x.High, held)
		sc.expr(x.Max, held)
	case *ast.TypeAssertExpr:
		sc.expr(x.X, held)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			sc.expr(el, held)
		}
	case *ast.KeyValueExpr:
		sc.expr(x.Key, held)
		sc.expr(x.Value, held)
	}
}

func sortedSites(held map[string]lockSite) []lockSite {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockSite, len(keys))
	for i, k := range keys {
		out[i] = held[k]
	}
	return out
}

func copySites(h map[string]lockSite) map[string]lockSite {
	out := make(map[string]lockSite, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func intersectSites(a, b map[string]lockSite) map[string]lockSite {
	out := make(map[string]lockSite)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func replaceSites(dst, src map[string]lockSite) {
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
	for k, v := range src {
		dst[k] = v
	}
}
