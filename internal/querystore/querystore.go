// Package querystore reimplements the contract of SQL Server's Query Store
// [29]: per-query, per-plan execution statistics (execution count, mean and
// standard deviation of CPU time, logical reads and duration) aggregated
// over fixed time intervals, plus the query text and a fingerprint of each
// plan (which indexes it references). The index recommender mines it to
// identify the workload (§5.3.2), workload coverage is computed from its
// resource totals (§5.1.2), and the validator compares pre/post-change
// statistics from it (§6).
package querystore

import (
	"sort"
	"strings"
	"sync"
	"time"

	"autoindex/internal/mathx"
	"autoindex/internal/sim"
)

// Metric identifies an execution metric. CPU and logical reads are the
// "logical" metrics the validator prefers; duration is noisier (§6).
type Metric int

// Tracked metrics.
const (
	MetricCPU Metric = iota
	MetricLogicalReads
	MetricDuration
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricCPU:
		return "cpu_time_ms"
	case MetricLogicalReads:
		return "logical_reads"
	case MetricDuration:
		return "duration_ms"
	default:
		return "unknown"
	}
}

// Measurement is one statement execution's observed costs.
type Measurement struct {
	CPUMillis      float64
	LogicalReads   float64
	DurationMillis float64
}

// PlanInfo fingerprints an execution plan: which indexes it references and
// a stable hash of its shape. The validator's plan-change filter relies on
// IndexesUsed.
type PlanInfo struct {
	PlanHash    uint64
	IndexesUsed []string
}

// UsesIndex reports whether the plan references the named index.
func (p PlanInfo) UsesIndex(name string) bool {
	for _, ix := range p.IndexesUsed {
		if strings.EqualFold(ix, name) {
			return true
		}
	}
	return false
}

// IntervalStats aggregates executions of one (query, plan) in one interval.
type IntervalStats struct {
	Start    time.Time
	Count    int64
	CPU      mathx.Welford
	Reads    mathx.Welford
	Duration mathx.Welford
}

// Welford returns the accumulator for metric m.
func (s *IntervalStats) Welford(m Metric) mathx.Welford {
	switch m {
	case MetricCPU:
		return s.CPU
	case MetricLogicalReads:
		return s.Reads
	default:
		return s.Duration
	}
}

// PlanEntry is the history of one plan of one query.
type PlanEntry struct {
	Info      PlanInfo
	FirstSeen time.Time
	LastSeen  time.Time
	Intervals []*IntervalStats // ordered by Start
}

// totalCPU sums CPU across intervals in [from, to).
func (p *PlanEntry) window(from, to time.Time) []*IntervalStats {
	var out []*IntervalStats
	for _, iv := range p.Intervals {
		if !iv.Start.Before(from) && iv.Start.Before(to) {
			out = append(out, iv)
		}
	}
	return out
}

// QueryEntry is the Query Store record of one query (template).
type QueryEntry struct {
	QueryHash uint64
	// Text is the stored statement text. Query Store is not a workload
	// capture tool (§5.3.2): for some statements only a truncated fragment
	// is stored, and DTA must recover the full text elsewhere.
	Text      string
	Truncated bool
	IsWrite   bool
	// HasWritePredicates marks writes with a WHERE clause — the only
	// writes whose read side an index can help. Recorded at ingestion so
	// recommenders never re-parse stored text to find out.
	HasWritePredicates bool
	// LiveExecutions counts executions that arrived through the serving
	// path (wire-protocol sessions) rather than the workload simulator.
	LiveExecutions int64
	Plans          map[uint64]*PlanEntry
}

// sortedPlans returns the query's plans in ascending plan-hash order.
// Aggregations that fold float statistics across plans must use it:
// float addition is not associative, so folding in map order would make
// totals differ in their low bits from run to run.
func (q *QueryEntry) sortedPlans() []*PlanEntry {
	hashes := make([]uint64, 0, len(q.Plans))
	for h := range q.Plans {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	out := make([]*PlanEntry, 0, len(hashes))
	for _, h := range hashes {
		out = append(out, q.Plans[h])
	}
	return out
}

// Store is the query store for one database.
type Store struct {
	mu       sync.RWMutex
	clock    sim.Clock
	interval time.Duration
	queries  map[uint64]*QueryEntry
	// dropper, when set, loses executions before aggregation (chaos
	// mode's missing validation windows); dropped counts how many.
	dropper func() bool
	dropped int64
	// Execution totals, split by provenance: totalExecs counts every
	// recorded execution, liveExecs the subset captured from real
	// wire-protocol sessions (QueryMeta.Live).
	totalExecs int64
	liveExecs  int64
}

// DefaultInterval matches Query Store's common configuration.
const DefaultInterval = time.Hour

// New returns an empty store aggregating over the given interval.
func New(clock sim.Clock, interval time.Duration) *Store {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Store{clock: clock, interval: interval, queries: make(map[uint64]*QueryEntry)}
}

// SetDropper installs (or, with nil, removes) a hook that loses whole
// executions before they are aggregated — how chaos mode produces the
// thinned or missing validation windows the validator must see through
// (§6: insufficient data yields an inconclusive verdict, never a wrong
// one). The hook must be safe for concurrent use.
func (s *Store) SetDropper(f func() bool) {
	s.mu.Lock()
	s.dropper = f
	s.mu.Unlock()
}

// DroppedExecutions reports how many executions an installed dropper lost.
func (s *Store) DroppedExecutions() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dropped
}

// QueryMeta carries the per-template attributes Record stores on first
// sight of a query: its (possibly truncated) text and the statement-class
// flags derived from the parsed statement at ingestion time.
type QueryMeta struct {
	Text               string
	Truncated          bool
	IsWrite            bool
	HasWritePredicates bool
	// Live marks an execution captured from a real client session on the
	// serving path, as opposed to one produced by the workload simulator.
	// Tuning spans use the split to report what drove a recommendation.
	Live bool
}

// Record folds one execution into the store.
func (s *Store) Record(queryHash uint64, meta QueryMeta, plan PlanInfo, m Measurement) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dropper != nil && s.dropper() {
		s.dropped++
		return
	}
	s.totalExecs++
	if meta.Live {
		s.liveExecs++
	}
	q := s.queries[queryHash]
	if q == nil {
		q = &QueryEntry{
			QueryHash:          queryHash,
			Text:               meta.Text,
			Truncated:          meta.Truncated,
			IsWrite:            meta.IsWrite,
			HasWritePredicates: meta.HasWritePredicates,
			Plans:              make(map[uint64]*PlanEntry),
		}
		s.queries[queryHash] = q
	} else if q.Truncated && !meta.Truncated {
		// A later execution supplied the full text.
		q.Text, q.Truncated = meta.Text, false
	}
	if meta.Live {
		q.LiveExecutions++
	}
	now := s.clock.Now()
	p := q.Plans[plan.PlanHash]
	if p == nil {
		p = &PlanEntry{Info: plan, FirstSeen: now}
		q.Plans[plan.PlanHash] = p
	}
	p.LastSeen = now
	ivStart := now.Truncate(s.interval)
	var iv *IntervalStats
	if n := len(p.Intervals); n > 0 && p.Intervals[n-1].Start.Equal(ivStart) {
		iv = p.Intervals[n-1]
	} else {
		iv = &IntervalStats{Start: ivStart}
		p.Intervals = append(p.Intervals, iv)
	}
	iv.Count++
	iv.CPU.Add(m.CPUMillis)
	iv.Reads.Add(m.LogicalReads)
	iv.Duration.Add(m.DurationMillis)
}

// Query returns the entry for a query hash.
func (s *Store) Query(queryHash uint64) (*QueryEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	q, ok := s.queries[queryHash]
	return q, ok
}

// QueryHashes returns all recorded query hashes.
func (s *Store) QueryHashes() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, 0, len(s.queries))
	for h := range s.queries {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// QueryCost summarises one query's resource consumption over a window.
type QueryCost struct {
	QueryHash          uint64
	Text               string
	Truncated          bool
	IsWrite            bool
	HasWritePredicates bool
	Executions         int64
	// LiveExecutions is the query's lifetime count of serving-path
	// executions (not windowed — provenance, not cost).
	LiveExecutions int64
	TotalCPU       float64
	TotalReads     float64
}

// TopByCPU returns the k most expensive queries by total CPU over
// [from, now], descending — how DTA identifies the workload W (§5.3.2).
func (s *Store) TopByCPU(from time.Time, k int) []QueryCost {
	costs := s.Costs(from)
	sort.Slice(costs, func(i, j int) bool { return costs[i].TotalCPU > costs[j].TotalCPU })
	if k > 0 && len(costs) > k {
		costs = costs[:k]
	}
	return costs
}

// Costs returns per-query cost summaries over [from, now].
func (s *Store) Costs(from time.Time) []QueryCost {
	s.mu.RLock()
	defer s.mu.RUnlock()
	to := s.clock.Now().Add(time.Nanosecond)
	var out []QueryCost
	for _, q := range s.queries {
		c := QueryCost{QueryHash: q.QueryHash, Text: q.Text, Truncated: q.Truncated, IsWrite: q.IsWrite, HasWritePredicates: q.HasWritePredicates, LiveExecutions: q.LiveExecutions}
		for _, p := range q.sortedPlans() {
			for _, iv := range p.window(from, to) {
				c.Executions += iv.Count
				c.TotalCPU += iv.CPU.Sum()
				c.TotalReads += iv.Reads.Sum()
			}
		}
		if c.Executions > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QueryHash < out[j].QueryHash })
	return out
}

// TotalCPU returns the total CPU consumed by all statements since from.
// Workload coverage (§5.1.2) is a ratio of sums of this quantity.
func (s *Store) TotalCPU(from time.Time) float64 {
	total := 0.0
	for _, c := range s.Costs(from) {
		total += c.TotalCPU
	}
	return total
}

// PlanWindowSample aggregates a (query, plan, metric) over [from, to) into
// a Sample for the Welch t-test. ok is false if no executions fell in the
// window.
func (s *Store) PlanWindowSample(queryHash, planHash uint64, m Metric, from, to time.Time) (mathx.Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	q := s.queries[queryHash]
	if q == nil {
		return mathx.Sample{}, false
	}
	p := q.Plans[planHash]
	if p == nil {
		return mathx.Sample{}, false
	}
	var acc mathx.Welford
	for _, iv := range p.window(from, to) {
		acc.Merge(iv.Welford(m))
	}
	if acc.N == 0 {
		return mathx.Sample{}, false
	}
	return mathx.FromWelford(acc), true
}

// QueryWindowSample aggregates a query across all its plans.
func (s *Store) QueryWindowSample(queryHash uint64, m Metric, from, to time.Time) (mathx.Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	q := s.queries[queryHash]
	if q == nil {
		return mathx.Sample{}, false
	}
	var acc mathx.Welford
	for _, p := range q.sortedPlans() {
		for _, iv := range p.window(from, to) {
			acc.Merge(iv.Welford(m))
		}
	}
	if acc.N == 0 {
		return mathx.Sample{}, false
	}
	return mathx.FromWelford(acc), true
}

// PlansInWindow returns the plans of a query that executed in [from, to).
func (s *Store) PlansInWindow(queryHash uint64, from, to time.Time) []*PlanEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	q := s.queries[queryHash]
	if q == nil {
		return nil
	}
	var out []*PlanEntry
	for _, p := range q.Plans {
		if len(p.window(from, to)) > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.PlanHash < out[j].Info.PlanHash })
	return out
}

// QueriesUsingIndex returns hashes of queries that have any plan
// referencing the named index within [from, to).
func (s *Store) QueriesUsingIndex(index string, from, to time.Time) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []uint64
	for h, q := range s.queries {
		for _, p := range q.Plans {
			if p.Info.UsesIndex(index) && len(p.window(from, to)) > 0 {
				out = append(out, h)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExecutionTotals reports lifetime execution counts: every recorded
// execution, and the subset captured live from wire-protocol sessions.
func (s *Store) ExecutionTotals() (total, live int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.totalExecs, s.liveExecs
}

// QueryLiveExecutions reports how many of a query's executions arrived
// through the serving path.
func (s *Store) QueryLiveExecutions(queryHash uint64) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	q := s.queries[queryHash]
	if q == nil {
		return 0
	}
	return q.LiveExecutions
}

// Interval returns the aggregation interval.
func (s *Store) Interval() time.Duration { return s.interval }

// Len returns the number of distinct queries recorded.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.queries)
}
