// The fixture driver type-checks this file under the import path
// "autoindex/internal/serve" and asserts the wallclock analyzer stays
// silent: the session layer is on the sanctioned list because admission
// backpressure sleeps off real wall time and command reads carry real
// deadlines. There is deliberately no want and no //lint:ignore here —
// the package exemption itself must do the suppressing.
package fixture

import "time"

func serveBackpressure(wait time.Duration) {
	t := time.NewTimer(wait)
	<-t.C
}
