package workload

import (
	"sort"

	"autoindex/internal/engine"
	"autoindex/internal/sim"
	"autoindex/internal/snap"
)

// sharedCatalog returns the archetype's copy-on-write catalog, or nil
// for self-generated tenants (everything serializes inline).
func (t *Tenant) sharedCatalog() *engine.SharedCatalog {
	if t.Archetype != nil {
		return t.Archetype.Shared
	}
	return nil
}

// EncodeTo serializes the tenant's workload state (RNG position, insert
// and feed id streams) followed by the full engine snapshot. Combined
// with snap.Writer.Seal this is the hibernated form of a tenant.
func (t *Tenant) EncodeTo(w *snap.Writer) {
	w.Uvarint(t.rng.Pos())
	encodeIDMap(w, t.insertIDs)
	encodeIDMap(w, t.feedNext)
	t.DB.EncodeTo(w, t.sharedCatalog())
}

// DecodeFrom rehydrates the tenant in place from an EncodeTo snapshot.
// The Tenant and its Database shells stay resident, so control-plane,
// chaos-harness and bulk-feed references remain valid; the workload RNG
// is rebuilt from (seed, position).
func (t *Tenant) DecodeFrom(r *snap.Reader) error {
	pos, err := r.Uvarint()
	if err != nil {
		return err
	}
	insertIDs, err := decodeIDMap(r)
	if err != nil {
		return err
	}
	feedNext, err := decodeIDMap(r)
	if err != nil {
		return err
	}
	if err := t.DB.DecodeFrom(r, t.sharedCatalog()); err != nil {
		return err
	}
	t.rng = sim.NewRNGAt(sim.DeriveSeed(t.Profile.Seed, "workload/"+t.Profile.Name), pos)
	t.insertIDs = insertIDs
	t.feedNext = feedNext
	return nil
}

// Release drops the tenant's heavy state after a snapshot was taken,
// keeping the shells for in-place rehydration.
func (t *Tenant) Release() {
	t.rng = nil
	t.insertIDs = nil
	t.feedNext = nil
	t.DB.Release()
}

func encodeIDMap(w *snap.Writer, m map[string]int64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.Varint(m[k])
	}
}

func decodeIDMap(r *snap.Reader) (map[string]int64, error) {
	n, err := r.Len()
	if err != nil {
		return nil, err
	}
	m := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		v, err := r.Varint()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}
