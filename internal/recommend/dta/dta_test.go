package dta

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/sim"
	"autoindex/internal/value"
)

func buildDB(t *testing.T) (*engine.Database, *sim.VirtualClock) {
	t.Helper()
	clock := sim.NewClock()
	db := engine.New(engine.DefaultConfig("dtatest", engine.TierStandard, 5), clock)
	mustExec(t, db, `CREATE TABLE sales (id BIGINT NOT NULL, store BIGINT, sku BIGINT, qty BIGINT, total FLOAT, PRIMARY KEY (id))`)
	mustExec(t, db, `CREATE TABLE stores (id BIGINT NOT NULL, region VARCHAR, mgr VARCHAR, PRIMARY KEY (id))`)
	for i := 0; i < 4000; i++ {
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO sales (id, store, sku, qty, total) VALUES (%d, %d, %d, %d, %d.5)`,
			i, i%50, i%400, i%10, i))
	}
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO stores (id, region, mgr) VALUES (%d, 'r%d', 'm%d')`, i, i%5, i))
	}
	db.RebuildAllStats()
	clock.Advance(time.Hour)
	return db, clock
}

func mustExec(t *testing.T, db *engine.Database, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func runWorkload(t *testing.T, db *engine.Database, clock *sim.VirtualClock, n int) {
	for i := 0; i < n; i++ {
		mustExec(t, db, fmt.Sprintf(`SELECT id, total FROM sales WHERE sku = %d`, i%400))
		mustExec(t, db, fmt.Sprintf(`SELECT qty FROM sales WHERE store = %d AND qty > 5`, i%50))
		if i%4 == 0 {
			mustExec(t, db, fmt.Sprintf(
				`SELECT s.total FROM sales s JOIN stores t ON s.store = t.id WHERE t.region = 'r%d'`, i%5))
		}
		if i%8 == 0 {
			clock.Advance(10 * time.Minute)
		}
	}
}

func TestDTASessionEndToEnd(t *testing.T) {
	db, clock := buildDB(t)
	runWorkload(t, db, clock, 120)
	opts := OptionsForTier(engine.TierStandard)
	res, err := Run(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("expected recommendations")
	}
	for _, c := range res.Recommendations {
		if !c.Def.AutoCreated || c.EstImprovement <= 0 {
			t.Fatalf("bad candidate: %+v", c)
		}
	}
	if res.EstWorkloadImprovementPct <= 0 {
		t.Fatalf("estimated improvement: %v", res.EstWorkloadImprovementPct)
	}
	if res.Coverage.Fraction() <= 0 {
		t.Fatal("coverage must be computed")
	}
	if res.WhatIfCalls == 0 || res.StatsCreated == 0 {
		t.Fatalf("session accounting: calls=%d stats=%d", res.WhatIfCalls, res.StatsCreated)
	}
	// Reports reference the tuned statements and their impacting indexes.
	// Reads referencing a chosen index must improve; writes may legitimately
	// get more expensive (maintenance) as long as the workload nets out.
	improved := 0
	for _, r := range res.Reports {
		if len(r.Indexes) > 0 && r.CostAfter < r.CostBefore {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("no statement reported as improved by the recommendation")
	}
}

func TestMaxIndexesConstraint(t *testing.T) {
	db, clock := buildDB(t)
	runWorkload(t, db, clock, 100)
	opts := OptionsForTier(engine.TierStandard)
	opts.MaxIndexes = 1
	res, err := Run(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) > 1 {
		t.Fatalf("max-indexes violated: %d", len(res.Recommendations))
	}
}

func TestStorageBudgetConstraint(t *testing.T) {
	db, clock := buildDB(t)
	runWorkload(t, db, clock, 100)
	opts := OptionsForTier(engine.TierStandard)
	opts.StorageBudgetBytes = 1 // nothing fits
	res, err := Run(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) != 0 {
		t.Fatalf("storage budget violated: %+v", res.Recommendations)
	}
}

func TestWhatIfBudgetAborts(t *testing.T) {
	db, clock := buildDB(t)
	runWorkload(t, db, clock, 100)
	opts := OptionsForTier(engine.TierStandard)
	opts.MaxWhatIfCalls = 10
	res, err := Run(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("tiny budget must abort the session")
	}
	if res.WhatIfCalls > 15 {
		t.Fatalf("budget overshot: %d calls", res.WhatIfCalls)
	}
}

func TestAbortCheckKillsSession(t *testing.T) {
	db, clock := buildDB(t)
	runWorkload(t, db, clock, 60)
	opts := OptionsForTier(engine.TierStandard)
	calls := 0
	opts.AbortCheck = func() bool {
		calls++
		return calls > 2
	}
	res, err := Run(db, opts)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	if !res.Aborted {
		t.Fatal("result must be marked aborted")
	}
	// Hypothetical indexes must have been cleaned up.
	for _, ix := range db.IndexDefs() {
		if ix.Hypothetical {
			t.Fatalf("hypothetical index leaked: %+v", ix)
		}
	}
}

func TestTruncatedTextRecoveredFromPlanCache(t *testing.T) {
	clock := sim.NewClock()
	cfg := engine.DefaultConfig("trunc", engine.TierStandard, 5)
	cfg.TruncateTextOver = 60 // aggressive truncation
	db := engine.New(cfg, clock)
	mustExec(t, db, `CREATE TABLE wide_table_name (id BIGINT NOT NULL, attribute_one BIGINT, attribute_two BIGINT, PRIMARY KEY (id))`)
	for i := 0; i < 1000; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO wide_table_name (id, attribute_one, attribute_two) VALUES (%d, %d, %d)`, i, i%20, i%30))
	}
	db.RebuildAllStats()
	clock.Advance(time.Hour)
	long := `SELECT id, attribute_two FROM wide_table_name WHERE attribute_one = %d AND attribute_two >= %d`
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf(long, i%20, i%5))
	}
	// Query Store stored a truncated fragment...
	top := db.QueryStore().TopByCPU(time.Time{}, 5)
	foundTruncated := false
	for _, q := range top {
		if q.Truncated {
			foundTruncated = true
		}
	}
	if !foundTruncated {
		t.Fatal("precondition: expected a truncated statement")
	}
	// ...but DTA recovers it from the plan cache and tunes it.
	res, err := Run(db, OptionsForTier(engine.TierStandard))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Reports {
		if r.Skipped != "" && strings.Contains(r.Skipped, "truncated") {
			t.Fatalf("truncated statement not recovered: %+v", r)
		}
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("expected recommendations from recovered statements")
	}
}

func TestBulkInsertRewritten(t *testing.T) {
	db, clock := buildDB(t)
	next := int64(100000)
	db.RegisterBulkSource("feed", func(n int64) []value.Row {
		rows := make([]value.Row, n)
		for i := range rows {
			next++
			rows[i] = value.Row{
				value.NewInt(next), value.NewInt(0), value.NewInt(0),
				value.NewInt(0), value.NewFloat(0),
			}
		}
		return rows
	})
	// Bulk inserts dominate CPU so they reach DTA's top-K.
	for i := 0; i < 10; i++ {
		mustExec(t, db, `BULK INSERT sales FROM DATASOURCE feed`)
		clock.Advance(30 * time.Minute)
	}
	runWorkload(t, db, clock, 30)
	res, err := Run(db, OptionsForTier(engine.TierStandard))
	if err != nil {
		t.Fatal(err)
	}
	rewritten := false
	for _, r := range res.Reports {
		if r.Rewritten {
			rewritten = true
		}
	}
	if !rewritten {
		t.Fatal("BULK INSERT should be rewritten and costed")
	}
}

func TestSampledStatsReductionAblation(t *testing.T) {
	db1, clock1 := buildDB(t)
	runWorkload(t, db1, clock1, 80)
	optsReduced := OptionsForTier(engine.TierStandard)
	optsReduced.ReduceSampledStats = true
	r1, err := Run(db1, optsReduced)
	if err != nil {
		t.Fatal(err)
	}
	db2, clock2 := buildDB(t)
	runWorkload(t, db2, clock2, 80)
	optsFull := OptionsForTier(engine.TierStandard)
	optsFull.ReduceSampledStats = false
	r2, err := Run(db2, optsFull)
	if err != nil {
		t.Fatal(err)
	}
	if r1.StatsCreated >= r2.StatsCreated {
		t.Fatalf("reduction must create fewer stats: %d vs %d", r1.StatsCreated, r2.StatsCreated)
	}
	// Quality is preserved: both find recommendations.
	if len(r1.Recommendations) == 0 || len(r2.Recommendations) == 0 {
		t.Fatalf("recommendation counts: %d vs %d", len(r1.Recommendations), len(r2.Recommendations))
	}
}

func TestEmptyWorkload(t *testing.T) {
	db, _ := buildDB(t)
	// Window in the future: no statements.
	opts := OptionsForTier(engine.TierStandard)
	opts.WindowN = time.Nanosecond
	res, err := Run(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) != 0 {
		t.Fatal("no workload, no recommendations")
	}
}
