// Package costcache implements the plan-cost cache that sits between the
// index recommenders and the what-if optimizer. Every DTA/MI tuning pass
// prices the same Query Store templates against many hypothetical index
// configurations, and most of those (statement, configuration) pairs are
// re-priced several times within a pass — at candidate screening, during
// greedy enumeration, and again when the final report is built. The cache
// memoizes those optimizations so a pass pays for each distinct pricing
// once (see ARCHITECTURE.md "Costing path").
//
// # Key
//
// An entry is keyed by (query fingerprint, configuration signature):
//
//   - the query fingerprint is the canonical Query Store hash computed at
//     ingestion time (sqlparser.Statement.Fingerprint), the same hash DTA
//     identifies workload statements by, and
//   - the configuration signature is the WhatIfCatalog overlay signature —
//     the sorted hypothetical index definitions (name + structural
//     signature) plus the excluded-index set.
//
// Real (non-hypothetical) indexes are deliberately absent from the key:
// any DDL that changes them fires a SchemaChange invalidation instead.
//
// # Invalidation
//
// Cached costs are valid only while the inputs of the cost model are
// unchanged. The engine invalidates the whole cache on the three events
// that can move an estimate:
//
//   - StatsRefresh: a column statistic was (re)built — histograms feed
//     every selectivity estimate;
//   - SchemaChange: an index or column was created or dropped — the plan
//     search space changed;
//   - DataChange: a write mutated table data — row counts feed scan and
//     maintenance costs directly, before any statistics refresh.
//
// # Determinism
//
// The cache is per-tenant and accessed serially by that tenant's tuning
// sessions, so hit/miss sequences never depend on worker scheduling.
// Eviction is size-bounded LRU in simulated time: entries carry the
// tenant's virtual-clock timestamp (never wall time) and the eviction
// order is the exact access order, maintained as a list — no map
// iteration is ever consulted, so no map-order leaks.
package costcache

import (
	"container/list"
	"sync"
	"time"

	"autoindex/internal/metrics"
	"autoindex/internal/optimizer"
	"autoindex/internal/sim"
)

// Key identifies one cached pricing: a canonical query fingerprint plus
// the what-if configuration signature it was priced under.
type Key struct {
	QueryHash uint64
	ConfigSig string
}

// Reason classifies an invalidation event.
type Reason int

// Invalidation reasons (see the package comment).
const (
	StatsRefresh Reason = iota
	SchemaChange
	DataChange
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case StatsRefresh:
		return "stats-refresh"
	case SchemaChange:
		return "schema-change"
	default:
		return "data-change"
	}
}

// DefaultCapacity bounds the cache when the engine does not configure an
// explicit size. A tuning pass prices at most a few thousand distinct
// (statement, configuration) pairs, so this keeps a whole pass resident.
const DefaultCapacity = 4096

type entry struct {
	key  Key
	cost float64
	plan *optimizer.Plan
	// lastUsed is the tenant's virtual time at the last hit or insert,
	// recorded for introspection; eviction order is the list order.
	lastUsed time.Time
}

// Cache is a size-bounded LRU plan-cost cache for one tenant database.
// Plans stored in it are shared, immutable after Plan.finalize, and must
// not be mutated by readers.
type Cache struct {
	mu       sync.Mutex
	capacity int
	clock    sim.Clock
	reg      *metrics.Registry
	byKey    map[Key]*list.Element
	lru      *list.List // front = most recently used
}

// New returns an empty cache bounded to capacity entries, stamping
// entries from clock (the tenant's virtual clock). capacity <= 0 uses
// DefaultCapacity.
func New(capacity int, clock sim.Clock) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		clock:    clock,
		byKey:    make(map[Key]*list.Element),
		lru:      list.New(),
	}
}

// SetMetrics attaches a metrics registry for hit/miss/eviction/
// invalidation counters; nil disables them.
func (c *Cache) SetMetrics(reg *metrics.Registry) {
	c.mu.Lock()
	c.reg = reg
	c.mu.Unlock()
}

// Get returns the cached cost and plan for k, refreshing its recency.
func (c *Cache) Get(k Key) (float64, *optimizer.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.reg.Counter(DescMisses).Inc()
		return 0, nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*entry)
	e.lastUsed = c.clock.Now()
	c.reg.Counter(DescHits).Inc()
	return e.cost, e.plan, true
}

// Put inserts or refreshes the pricing for k, evicting the
// least-recently-used entry when over capacity.
func (c *Cache) Put(k Key, cost float64, plan *optimizer.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	if el, ok := c.byKey[k]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*entry)
		e.cost, e.plan, e.lastUsed = cost, plan, now
		return
	}
	c.byKey[k] = c.lru.PushFront(&entry{key: k, cost: cost, plan: plan, lastUsed: now})
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*entry).key)
		c.reg.Counter(DescEvictions).Inc()
	}
}

// Invalidate drops every entry and returns how many were dropped. Events
// that find the cache already empty are not counted as invalidations —
// write-heavy workloads fire DataChange per statement, and counting
// no-ops would drown the signal.
func (c *Cache) Invalidate(reason Reason) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.lru.Len()
	if n == 0 {
		return 0
	}
	c.byKey = make(map[Key]*list.Element)
	c.lru.Init()
	c.reg.Counter(invalidationDesc(reason)).Inc()
	c.reg.Counter(DescInvalidatedEntries).Add(int64(n))
	return n
}

// Reset drops every entry without touching the invalidation counters.
// It exists for tenant parking at fleet hour barriers: a tenant going
// idle resets its cache deterministically whether or not it is then
// hibernated, so cache contents — and therefore every subsequent
// counter movement — are identical with and without hibernation
// pressure. Invalidation events remain reserved for the semantic
// triggers (stats/schema/data changes).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru.Len() == 0 {
		return
	}
	c.byKey = make(map[Key]*list.Element)
	c.lru.Init()
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// LastUsed returns the simulated-time stamp of k's last use, for
// introspection and tests.
func (c *Cache) LastUsed(k Key) (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		return time.Time{}, false
	}
	return el.Value.(*entry).lastUsed, true
}
