package controlplane

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/engine"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
)

func TestMaintenanceWindowAllows(t *testing.T) {
	at := func(h int) time.Time { return time.Date(2017, 3, 1, h, 30, 0, 0, time.UTC) }
	cases := []struct {
		w    MaintenanceWindow
		hour int
		want bool
	}{
		{MaintenanceWindow{}, 12, true}, // zero value: always
		{MaintenanceWindow{StartHour: 2, EndHour: 6}, 3, true},
		{MaintenanceWindow{StartHour: 2, EndHour: 6}, 6, false},
		{MaintenanceWindow{StartHour: 2, EndHour: 6}, 1, false},
		{MaintenanceWindow{StartHour: 22, EndHour: 4}, 23, true}, // wraps midnight
		{MaintenanceWindow{StartHour: 22, EndHour: 4}, 2, true},
		{MaintenanceWindow{StartHour: 22, EndHour: 4}, 12, false},
	}
	for _, c := range cases {
		if got := c.w.Allows(at(c.hour)); got != c.want {
			t.Errorf("window %+v at hour %d = %v, want %v", c.w, c.hour, got, c.want)
		}
	}
}

func TestImplementationWaitsForMaintenanceWindow(t *testing.T) {
	clock := sim.NewClock() // starts at midnight
	cfg := DefaultConfig()
	cfg.AnalyzeEvery = time.Hour
	cfg.Maintenance = MaintenanceWindow{StartHour: 2, EndHour: 4}
	db := engine.New(engine.DefaultConfig("mw", engine.TierBasic, 5), clock)
	if _, err := db.Exec(`CREATE TABLE t (id BIGINT NOT NULL, a BIGINT, PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		db.Exec(fmt.Sprintf(`INSERT INTO t (id, a) VALUES (%d, %d)`, i, i%80)) //nolint:errcheck
	}
	db.RebuildAllStats()
	cp := New(cfg, clock, NewMemStore(), nil)
	cp.Manage(db, "srv", Settings{AutoCreate: true})
	// File a ready recommendation directly at 00:xx — outside the window.
	clock.Advance(10 * time.Minute)
	rec := &Record{
		Recommendation: core.Recommendation{
			ID: "mw-1", Database: "mw", Action: core.ActionCreateIndex,
			Index:     schema.IndexDef{Name: "ix_mw", Table: "t", KeyColumns: []string{"a"}},
			CreatedAt: clock.Now(),
		},
		State: StateActive,
	}
	cp.StateStore().SaveRecord(rec)
	cp.Step()
	if r, _ := cp.StateStore().GetRecord("mw-1"); r.State != StateActive {
		t.Fatalf("implemented outside the window: %s", r.State)
	}
	// Enter the window: hour 2.
	clock.Advance(2 * time.Hour)
	cp.Step()
	if r, _ := cp.StateStore().GetRecord("mw-1"); r.State != StateValidating {
		t.Fatalf("not implemented inside the window: %s (%s)", r.State, r.LastError)
	}
}

func TestIndexNamePrefixApplied(t *testing.T) {
	h := newPlaneHarness(t, Settings{AutoCreate: true})
	h.cp.cfg.IndexNamePrefix = "contoso_"
	h.tick(t, 20, 20)
	found := false
	for _, def := range h.db.IndexDefs() {
		if def.AutoCreated {
			found = true
			if !strings.HasPrefix(def.Name, "contoso_") {
				t.Fatalf("naming scheme not applied: %s", def.Name)
			}
		}
	}
	if !found {
		t.Fatal("nothing implemented")
	}
	// The record carries the final name so validation/revert target it.
	for _, r := range h.cp.History("cpdb") {
		if r.State == StateSuccess || r.State == StateValidating {
			if !strings.HasPrefix(r.Index.Name, "contoso_") {
				t.Fatalf("record name not rewritten: %s", r.Index.Name)
			}
		}
	}
}

// TestCrossDatabaseCandidates exercises the SaaS-vendor consensus view:
// structurally identical tenants produce the same recommendation shape,
// which surfaces as a cross-database candidate and can be bulk-applied.
func TestCrossDatabaseCandidates(t *testing.T) {
	clock := sim.NewClock()
	cfg := DefaultConfig()
	cfg.AnalyzeEvery = time.Hour
	cp := New(cfg, clock, NewMemStore(), nil)
	var dbs []*engine.Database
	for i := 0; i < 4; i++ {
		db := engine.New(engine.DefaultConfig(fmt.Sprintf("tenant%d", i), engine.TierBasic, int64(100+i)), clock)
		if _, err := db.Exec(`CREATE TABLE items (id BIGINT NOT NULL, cat BIGINT, price FLOAT, PRIMARY KEY (id))`); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 1200; j++ {
			db.Exec(fmt.Sprintf(`INSERT INTO items (id, cat, price) VALUES (%d, %d, %d.5)`, j, (j*7+i)%120, j)) //nolint:errcheck
		}
		db.RebuildAllStats()
		cp.Manage(db, "saas", Settings{}) // no auto-implement: vendor decides
		dbs = append(dbs, db)
	}
	for h := 0; h < 12; h++ {
		for _, db := range dbs {
			for q := 0; q < 12; q++ {
				db.Exec(fmt.Sprintf(`SELECT id, price FROM items WHERE cat = %d`, (h*11+q)%120)) //nolint:errcheck
			}
		}
		clock.Advance(time.Hour)
		cp.Step()
	}
	cands := cp.CrossDatabaseCandidates("saas", 0.75)
	if len(cands) == 0 {
		t.Fatal("no cross-database consensus candidate")
	}
	top := cands[0]
	if top.Fraction < 0.75 || len(top.Databases) < 3 {
		t.Fatalf("consensus too weak: %+v", top)
	}
	// Bulk apply: every listed database's recommendation becomes
	// user-requested and is implemented on the next steps.
	if err := cp.ApplyAcross(top); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 4; h++ {
		clock.Advance(time.Hour)
		cp.Step()
	}
	implemented := 0
	for _, db := range dbs {
		for _, def := range db.IndexDefs() {
			if def.AutoCreated {
				implemented++
			}
		}
	}
	if implemented < len(top.Databases) {
		t.Fatalf("bulk apply implemented %d of %d", implemented, len(top.Databases))
	}
	// A server with no databases yields nothing.
	if cp.CrossDatabaseCandidates("ghost", 0.5) != nil {
		t.Fatal("unknown server must yield nil")
	}
}
