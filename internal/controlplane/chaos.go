package controlplane

import (
	"autoindex/internal/faults"
)

// CrashStore wraps a Store and, driven by a fault injector, panics with a
// faults.Crash at the two interesting instants around a record save:
//
//   - before-save: the control plane decided on a transition but the
//     decision never reached durable storage — on restart the transition
//     is lost and must be re-derived.
//   - after-save: the transition is durable but everything the control
//     plane did afterwards in that step (in-memory bookkeeping, telemetry,
//     follow-on work) is lost.
//
// Record saves are the only crash points because they are the state
// machine's commit points (§4): every transition funnels through
// SaveRecord, so crashing around it exercises a crash between any two
// state-machine transitions. The panic is caught by CrashRunner, which
// rebuilds a fresh control plane over the same underlying Store —
// simulating a service restart that recovers via the persistence layer.
type CrashStore struct {
	Store
	injector *faults.Injector
}

// NewCrashStore wraps inner so saves may crash per the injector's
// schedule. A nil injector yields a transparent wrapper.
func NewCrashStore(inner Store, in *faults.Injector) *CrashStore {
	return &CrashStore{Store: inner, injector: in}
}

// SaveRecord persists the record, possibly crashing before or after the
// write. The two points draw from independent streams, so a fired
// before-save (which skips the write and the after-save draw) never
// shifts the after-save schedule of later saves.
func (s *CrashStore) SaveRecord(r *Record) error {
	if s.injector.Should(faults.PlaneCrashBeforeSave) {
		panic(faults.Crash{Point: faults.PlaneCrashBeforeSave})
	}
	err := s.Store.SaveRecord(r)
	if err == nil && s.injector.Should(faults.PlaneCrashAfterSave) {
		panic(faults.Crash{Point: faults.PlaneCrashAfterSave})
	}
	return err
}

// CrashRunner drives a control plane whose Store may panic with
// faults.Crash, recovering each crash by rebuilding the plane from the
// surviving Store — the moral equivalent of the service process dying and
// the fleet infrastructure restarting it (§3's "fault-tolerant by
// design": state lives in persisted storage, compute is disposable).
type CrashRunner struct {
	// Plane is the current incarnation of the control plane.
	Plane *ControlPlane
	// Rebuild constructs the next incarnation after a crash. It must
	// attach the same underlying Store (typically via another CrashStore)
	// and re-Manage the same databases, mirroring restart-time recovery
	// through persist.go.
	Rebuild func() *ControlPlane
	// Crashes counts recovered crashes by point.
	Crashes map[faults.Point]int64
	// MaxRestarts bounds successive crash-recover cycles within a single
	// Step call (a safety valve against a pathological schedule that
	// crashes every attempt; 0 means a generous default).
	MaxRestarts int
}

// NewCrashRunner returns a runner over plane, rebuilding with rebuild.
func NewCrashRunner(plane *ControlPlane, rebuild func() *ControlPlane) *CrashRunner {
	return &CrashRunner{Plane: plane, Rebuild: rebuild, Crashes: make(map[faults.Point]int64)}
}

// Step runs one control-plane step, recovering any crashes by rebuilding
// the plane and retrying until a step completes without crashing.
func (r *CrashRunner) Step() { r.StepFor(nil) }

// StepFor is Step over a filtered control-plane step (see
// ControlPlane.StepFor), with the same crash-recovery loop. The scale
// harness drives chaos runs through it so only resident tenants are
// stepped even across crash/rebuild cycles.
func (r *CrashRunner) StepFor(include func(string) bool) {
	max := r.MaxRestarts
	if max <= 0 {
		max = 1000
	}
	for i := 0; i <= max; i++ {
		if r.tryStep(include) {
			return
		}
		r.Plane = r.Rebuild()
		// The rebuilt incarnation shares the previous one's registry
		// (via Config.Metrics), so recoveries accumulate across restarts.
		r.Plane.reg.Counter(descCrashRecoveries).Inc()
	}
	panic("controlplane: CrashRunner exceeded restart budget in one step")
}

// tryStep runs one step, converting a faults.Crash panic into a false
// return. Any other panic propagates: chaos mode must not paper over a
// genuine bug.
func (r *CrashRunner) tryStep(include func(string) bool) (completed bool) {
	defer func() {
		if rec := recover(); rec != nil {
			c, ok := rec.(faults.Crash)
			if !ok {
				panic(rec)
			}
			r.Crashes[c.Point]++
			completed = false
		}
	}()
	r.Plane.stepFiltered(include)
	return true
}
