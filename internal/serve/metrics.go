package serve

import "autoindex/internal/metrics"

// Serving-path instrumentation. Everything here is driven by real
// client connections on the wall clock, so all six families are marked
// volatile: they appear in the /metrics exposition but are excluded
// from the deterministic snapshot the CI gate compares.
var (
	DescConnections = metrics.NewCounterDesc("serve.connections",
		"TCP connections accepted by the SQL front end").MarkVolatile()
	DescSessionsActive = metrics.NewGaugeDesc("serve.sessions_active",
		"wire-protocol sessions currently open").MarkVolatile()
	DescStatements = metrics.NewCounterDesc("serve.stmts",
		"statements executed on behalf of wire-protocol clients").MarkVolatile()
	DescAdmissionRejected = metrics.NewCounterDesc("serve.admission_rejected",
		"connections refused by the max-sessions admission gate").MarkVolatile()
	DescBackpressureWaitMillis = metrics.NewHistogramDesc("serve.backpressure_wait_ms",
		"per-statement waits imposed by the tenant token bucket, wall milliseconds",
		1, 5, 20, 100, 500, 2_000, 10_000).MarkVolatile()
	DescCaptureBatches = metrics.NewCounterDesc("serve.capture_batches",
		"query-store capture batches flushed from live sessions").MarkVolatile()
)
