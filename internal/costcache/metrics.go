package costcache

import "autoindex/internal/metrics"

// Cache self-instrumentation, registered in the process-wide catalog at
// init time per the metrics discipline. All values are int64 counters
// updated under the cache mutex; cache access is per-tenant serial, so
// fleet totals are identical at any worker count.
var (
	// DescHits / DescMisses count lookups; their ratio is the headline
	// effectiveness number the recommender-latency benchmark reports.
	DescHits = metrics.NewCounterDesc("costcache.hits",
		"plan-cost cache lookups served from the cache")
	DescMisses = metrics.NewCounterDesc("costcache.misses",
		"plan-cost cache lookups that fell through to the optimizer")
	DescEvictions = metrics.NewCounterDesc("costcache.evictions",
		"entries evicted by the LRU size bound")

	// Invalidations are counted per triggering event, and only when the
	// event actually dropped entries (an empty cache is a no-op).
	DescInvalidationsStats = metrics.NewCounterDesc("costcache.invalidations_stats",
		"non-empty cache flushes triggered by a statistics (re)build")
	DescInvalidationsSchema = metrics.NewCounterDesc("costcache.invalidations_schema",
		"non-empty cache flushes triggered by a schema change")
	DescInvalidationsData = metrics.NewCounterDesc("costcache.invalidations_data",
		"non-empty cache flushes triggered by a data-modifying statement")
	DescInvalidatedEntries = metrics.NewCounterDesc("costcache.invalidated_entries",
		"total entries dropped across all invalidation flushes")
)

// invalidationDesc maps a reason to its counter.
func invalidationDesc(r Reason) *metrics.Desc {
	switch r {
	case StatsRefresh:
		return DescInvalidationsStats
	case SchemaChange:
		return DescInvalidationsSchema
	default:
		return DescInvalidationsData
	}
}
