package controlplane

import (
	"errors"
	"strings"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/engine"
	"autoindex/internal/schema"
	"autoindex/internal/telemetry"
	"autoindex/internal/validate"
)

// sameKeyIndexExists reports whether the database already has a real
// index with def's exact key columns on def's table.
func sameKeyIndexExists(db *engine.Database, def schema.IndexDef) bool {
	for _, e := range db.IndexDefs() {
		if !e.Hypothetical && strings.EqualFold(e.Table, def.Table) && e.SameKey(def) {
			return true
		}
	}
	return false
}

// nextAttemptDue reports whether a Retry record's backoff has elapsed.
func (cp *ControlPlane) nextAttemptDue(r *Record, now time.Time) bool {
	backoff := cp.cfg.RetryBackoff * time.Duration(1<<uint(minInt(r.Attempts, 6)))
	return now.Sub(r.UpdatedAt) >= backoff
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// implementService implements Active recommendations whose database allows
// it (auto-implement on, or the user requested it), and drives Retry
// records back into their target step.
func (cp *ControlPlane) implementService(include func(string) bool) {
	if !cp.implementAllowedNow() {
		// Outside the maintenance window: implementations wait (§8.2).
		return
	}
	now := cp.clock.Now()
	// Retry records first: resume the failed step after backoff.
	for _, r := range cp.store.Records(func(r *Record) bool { return r.State == StateRetry }) {
		if !stepIncludes(include, r.Database) || !cp.nextAttemptDue(r, now) {
			continue
		}
		target := r.RetryTarget
		if target == "" {
			target = StateImplementing
		}
		if err := cp.transition(r, target, now); err != nil {
			continue
		}
		cp.store.SaveRecord(r)
	}

	for _, r := range cp.store.Records(func(r *Record) bool { return r.State == StateActive }) {
		if !stepIncludes(include, r.Database) {
			continue
		}
		m, ok := cp.managedDB(r.Database)
		if !ok {
			continue
		}
		ds, ok := cp.store.GetDatabase(r.Database)
		if !ok {
			continue
		}
		server := cp.serverSettings(ds.Server)
		autoCreate, autoDrop := ds.Settings.Effective(server)
		allowed := r.UserRequested ||
			(r.Action == core.ActionCreateIndex && autoCreate) ||
			(r.Action == core.ActionDropIndex && autoDrop)
		if !allowed {
			continue
		}
		if err := cp.transition(r, StateImplementing, now); err != nil {
			continue
		}
		cp.store.SaveRecord(r)
		cp.executeImplement(m, r)
	}

	// Records sitting in Implementing (e.g., resumed from Retry) execute.
	for _, r := range cp.store.Records(func(r *Record) bool { return r.State == StateImplementing }) {
		if !stepIncludes(include, r.Database) || r.SubState == "executed" {
			continue
		}
		m, ok := cp.managedDB(r.Database)
		if !ok {
			continue
		}
		cp.executeImplement(m, r)
	}
}

func (cp *ControlPlane) serverSettings(server string) ServerSettings {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.server[server]
}

// executeImplement performs the index change for a record in
// Implementing, classifying failures into Retry or terminal Error. Both
// actions are idempotent so a control plane that crashed after executing
// but before persisting the transition converges on restart instead of
// erroring: a create adopts an identical index a lost attempt already
// built, a drop treats an already-absent index as goal met.
func (cp *ControlPlane) executeImplement(m *managed, r *Record) {
	now := cp.clock.Now()
	sp := cp.tracer.Start(r.Database, "implement")
	sp.Annotate("rec", r.ID)
	sp.Annotate("action", r.Action)
	defer sp.End() // covers the index build's virtual duration
	var err error
	switch r.Action {
	case core.ActionCreateIndex:
		def := r.Index.Clone()
		def.AutoCreated = true
		def.Name = cp.applyNamingScheme(def.Name)
		r.Index = def.Clone()
		if existing, ok := m.db.IndexDef(def.Name); ok && existing.AutoCreated &&
			existing.Signature() == def.Signature() {
			// Crash consistency: a previous attempt built this exact index
			// but died before recording it. Adopt the build. A same-name
			// index with a different shape still fails below with the
			// well-known ErrIndexExists.
			err = nil
		} else {
			err = m.db.CreateIndex(def, engine.IndexBuildOptions{Online: true, Resumable: true})
		}
	case core.ActionDropIndex:
		err = m.db.DropIndex(r.Index.Name, engine.DropIndexOptions{LowPriority: true})
		if errors.Is(err, engine.ErrIndexNotFound) {
			// Already absent — dropped by an attempt whose transition was
			// lost, or externally. Either way the goal state holds.
			err = nil
		}
	}
	now = cp.clock.Now() // index builds advance virtual time
	if err != nil {
		cp.handleImplementError(r, err, StateImplementing, now)
		return
	}
	r.ImplementedAt = now
	r.SubState = "executed"
	if terr := cp.transition(r, StateValidating, now); terr != nil {
		return
	}
	cp.store.SaveRecord(r)
	if r.Action == core.ActionCreateIndex {
		cp.hub.Inc("implemented.create", 1)
	} else {
		cp.hub.Inc("implemented.drop", 1)
	}
	cp.hub.Emit(telemetry.Event{At: now, Database: r.Database, Kind: "implemented", Detail: r.Action.String() + " " + r.Index.Name})
}

// errorClass buckets an implementation error per the paper's taxonomy (§4).
type errorClass int

const (
	// errClassWellKnown conditions (index already exists, table/column
	// dropped, index dropped externally) are terminal without an incident.
	errClassWellKnown errorClass = iota
	// errClassTransient errors (lock timeout, log full, aborted online
	// build) retry with backoff.
	errClassTransient
	// errClassUnrecognized errors are terminal and raise an incident.
	errClassUnrecognized
)

// classifyImplementError buckets err using errors.Is so engine errors stay
// correctly classified through any number of %w wrapping layers — the
// engine annotates every failure with context ("create index ix: ... :
// ErrLogFull") and callers may wrap again; sentinel equality would read
// all of those as unrecognized and terminally error out records that a
// retry would have recovered.
func classifyImplementError(err error) errorClass {
	switch {
	case errors.Is(err, engine.ErrIndexExists),
		errors.Is(err, engine.ErrIndexNotFound),
		errors.Is(err, engine.ErrTableNotFound),
		errors.Is(err, schema.ErrColumnNotFound):
		// ErrColumnNotFound: a customer schema migration (column drop or
		// rename) raced the in-flight recommendation; the record is
		// terminally stale but nothing is wrong with the service (§8.3).
		return errClassWellKnown
	case errors.Is(err, engine.ErrLockTimeout),
		errors.Is(err, engine.ErrLogFull),
		errors.Is(err, engine.ErrBuildAborted):
		return errClassTransient
	default:
		return errClassUnrecognized
	}
}

// handleImplementError applies the paper's error taxonomy: well-known
// terminal conditions become Error without an incident; transient errors
// retry with backoff; exhausted retries and unrecognized errors raise an
// incident.
func (cp *ControlPlane) handleImplementError(r *Record, err error, failedAt RecState, now time.Time) {
	r.LastError = err.Error()
	switch classifyImplementError(err) {
	case errClassWellKnown:
		r.SubState = "well-known-error"
		_ = cp.transition(r, StateError, now)
		cp.store.SaveRecord(r)
		cp.hub.Inc("errors.terminal", 1)
		return
	case errClassTransient:
		r.Attempts++
		if r.Attempts <= cp.cfg.MaxRetries {
			r.RetryTarget = failedAt
			r.SubState = "transient-error"
			_ = cp.transition(r, StateRetry, now)
			cp.store.SaveRecord(r)
			cp.hub.Inc("errors.transient", 1)
			return
		}
	}
	r.SubState = "unrecognized-error"
	_ = cp.transition(r, StateError, now)
	cp.store.SaveRecord(r)
	cp.hub.Inc("errors.incident", 1)
	cp.incident(r.Database, r.ID, "implementation-failure", err.Error())
}

// validationService validates records whose post-implementation window has
// elapsed, reverting on detected regressions (§6).
func (cp *ControlPlane) validationService(include func(string) bool) {
	now := cp.clock.Now()
	for _, r := range cp.store.Records(func(r *Record) bool { return r.State == StateValidating }) {
		if !stepIncludes(include, r.Database) || now.Sub(r.ImplementedAt) < cp.cfg.ValidationWindow {
			continue
		}
		m, ok := cp.managedDB(r.Database)
		if !ok {
			continue
		}
		created := r.Action == core.ActionCreateIndex
		sp := cp.tracer.Start(r.Database, "validate")
		sp.Annotate("rec", r.ID)
		outcome := validate.Validate(m.db.QueryStore(), r.Index.Name, created,
			r.ImplementedAt, cp.cfg.ValidationWindow, cp.cfg.Validator)
		r.Validation = &outcome
		cp.hub.Inc("validations", 1)
		cp.reg.Counter(descValidations).Inc()
		switch outcome.Verdict {
		case validate.VerdictImproved:
			cp.reg.Counter(descValidationsImproved).Inc()
		case validate.VerdictRegressed:
			cp.reg.Counter(descValidationsRegressed).Inc()
		default:
			cp.reg.Counter(descValidationsInconclusive).Inc()
		}
		sp.Annotate("verdict", outcome.Verdict)
		sp.Annotate("revert", outcome.Revert)
		// Feed the outcome back into the MI classifier (§5.2).
		if r.Source == core.SourceMI && len(r.Features) > 0 {
			m.miRec.TrainFromValidation(r.Features, outcome.Verdict == validate.VerdictImproved)
		}
		if outcome.Revert {
			_ = cp.transition(r, StateReverting, now)
			cp.store.SaveRecord(r)
			cp.hub.Inc("reverts.triggered", 1)
			cp.reg.Counter(descReverts).Inc()
			cp.classifyRevert(m, r, &outcome)
			sp.End()
			continue
		}
		r.SubState = string("validated-" + outcome.Verdict.String())
		_ = cp.transition(r, StateSuccess, now)
		cp.store.SaveRecord(r)
		cp.hub.Inc("validations.success", 1)
		if outcome.Verdict == validate.VerdictImproved {
			cp.hub.Inc("validations.improved", 1)
		}
		sp.End()
	}
}

// classifyRevert attributes the revert cause for the §8.1 telemetry: MI
// reverts skew to writes becoming more expensive (maintenance costs it
// never modelled); SELECT regressions implicate optimizer estimation
// error.
func (cp *ControlPlane) classifyRevert(m *managed, r *Record, outcome *validate.Outcome) {
	writeRegression := false
	for _, qv := range outcome.Queries {
		if qv.Verdict != validate.VerdictRegressed {
			continue
		}
		if q, ok := m.db.QueryStore().Query(qv.QueryHash); ok && q.IsWrite {
			writeRegression = true
			break
		}
	}
	if writeRegression {
		cp.hub.Inc("reverts.write_regression", 1)
		if r.Source == core.SourceMI {
			cp.hub.Inc("reverts.write_regression.mi", 1)
		}
	} else {
		cp.hub.Inc("reverts.select_regression", 1)
	}
}

// revertService executes pending reverts: drop the created index or
// recreate the dropped one, always at low lock priority with retries
// (§8.3).
func (cp *ControlPlane) revertService(include func(string) bool) {
	now := cp.clock.Now()
	for _, r := range cp.store.Records(func(r *Record) bool { return r.State == StateReverting }) {
		if !stepIncludes(include, r.Database) {
			continue
		}
		m, ok := cp.managedDB(r.Database)
		if !ok {
			continue
		}
		var err error
		switch r.Action {
		case core.ActionCreateIndex:
			err = m.db.DropIndex(r.Index.Name, engine.DropIndexOptions{LowPriority: true})
			if errors.Is(err, engine.ErrIndexNotFound) {
				err = nil // dropped externally; revert goal already met
			}
		case core.ActionDropIndex:
			def := r.Index.Clone()
			if sameKeyIndexExists(m.db, def) {
				// A key-equivalent index is already back (a lost attempt's
				// build, or a fresh create that landed mid-revert): the
				// revert goal — the workload has its index again — holds.
				err = nil
			} else {
				err = m.db.CreateIndex(def, engine.IndexBuildOptions{Online: true, Resumable: true})
				if errors.Is(err, engine.ErrIndexExists) {
					err = nil
				}
			}
		}
		now = cp.clock.Now()
		if err != nil {
			cp.handleImplementError(r, err, StateReverting, now)
			continue
		}
		_ = cp.transition(r, StateReverted, now)
		cp.store.SaveRecord(r)
		cp.hub.Inc("reverts.completed", 1)
		cp.hub.Emit(telemetry.Event{At: now, Database: r.Database, Kind: "reverted", Detail: r.Index.Name})
	}
}

// expiryService expires stale Active recommendations (age-based TTL) and
// Active recommendations invalidated by a newer one on the same key
// (§4's Expired state).
func (cp *ControlPlane) expiryService(include func(string) bool) {
	now := cp.clock.Now()
	active := cp.store.Records(func(r *Record) bool { return r.State == StateActive })
	for _, r := range active {
		// The invalidation scan below only compares same-database records,
		// so filtering the outer loop filters the whole service.
		if !stepIncludes(include, r.Database) {
			continue
		}
		if now.Sub(r.CreatedAt) > cp.cfg.RecommendationTTL {
			r.SubState = "aged-out"
			_ = cp.transition(r, StateExpired, now)
			cp.store.SaveRecord(r)
			cp.hub.Inc("expired", 1)
			continue
		}
		for _, newer := range active {
			if newer.ID == r.ID || newer.Database != r.Database || !newer.CreatedAt.After(r.CreatedAt) {
				continue
			}
			if newer.Action == r.Action && strings.EqualFold(newer.Index.Table, r.Index.Table) && newer.Index.SameKey(r.Index) {
				r.SubState = "invalidated-by-" + newer.ID
				_ = cp.transition(r, StateExpired, now)
				cp.store.SaveRecord(r)
				cp.hub.Inc("expired", 1)
				break
			}
		}
	}
}

// healthService detects stuck non-terminal records and raises incidents
// with a final retry (§4's health micro-service).
func (cp *ControlPlane) healthService(include func(string) bool) {
	now := cp.clock.Now()
	for _, r := range cp.store.Records(func(r *Record) bool {
		return !r.State.Terminal() && r.State != StateActive
	}) {
		if !stepIncludes(include, r.Database) || now.Sub(r.UpdatedAt) <= cp.cfg.StuckAfter {
			continue
		}
		cp.incident(r.Database, r.ID, "stuck-recommendation",
			"record stuck in "+string(r.State)+" since "+r.UpdatedAt.Format(time.RFC3339))
		r.Attempts++
		if r.Attempts > cp.cfg.MaxRetries {
			r.SubState = "stuck"
			_ = cp.transition(r, StateError, now)
		} else if r.State == StateImplementing || r.State == StateReverting {
			r.RetryTarget = r.State
			_ = cp.transition(r, StateRetry, now)
		} else {
			r.UpdatedAt = now
		}
		cp.store.SaveRecord(r)
	}
}

func (cp *ControlPlane) incident(db, recID, kind, msg string) {
	cp.store.SaveIncident(Incident{
		At:       cp.clock.Now(),
		Database: db,
		RecID:    recID,
		Kind:     kind,
		Message:  msg,
	})
	cp.hub.Inc("incidents", 1)
}
