package optimizer

import (
	"strings"

	"autoindex/internal/schema"
	"autoindex/internal/sqlparser"
)

// Configuration is one hypothetical index set to price a statement under.
// An empty Add prices the statement against the unmodified catalog.
type Configuration struct {
	Add []schema.IndexDef
}

// ConfigCost is the result of pricing one Configuration in a batch.
type ConfigCost struct {
	Cost float64
	Plan *Plan
	// Skipped marks a configuration the batch did not price because the
	// optimizer-call budget ran out; Cost and Plan are zero.
	Skipped bool
}

// CostConfigurations prices stmt under each configuration, in order,
// sharing one binding of the batch so candidate enumeration makes one
// API round-trip instead of len(configs). Two shortcuts keep optimizer
// calls down:
//
//   - configurations whose added indexes touch no table of the base plan
//     inherit the base result without replanning (an index on a table the
//     statement never reads cannot change its plan), where "base" is the
//     first empty Configuration in the batch — put it at configs[0] to
//     benefit;
//   - once o.Calls() reaches maxCalls (0 = unlimited), remaining
//     configurations are returned as Skipped rather than priced, so a
//     budget boundary never silently truncates the result slice.
//
// A statement error (e.g. ErrWhatIfUnsupported) fails the whole batch.
func (o *Optimizer) CostConfigurations(stmt sqlparser.Statement, configs []Configuration, maxCalls int64) ([]ConfigCost, error) {
	cat, ok := o.Cat.(*WhatIfCatalog)
	if !ok {
		orig := o.Cat
		cat = NewWhatIfCatalog(orig)
		o.Cat = cat
		defer func() { o.Cat = orig }()
	}
	out := make([]ConfigCost, len(configs))
	var base *ConfigCost
	var baseTables map[string]bool
	for i, cfg := range configs {
		if base != nil && len(cfg.Add) > 0 && irrelevantTo(cfg.Add, baseTables) {
			out[i] = *base
			continue
		}
		if maxCalls > 0 && o.Calls() >= maxCalls {
			out[i].Skipped = true
			continue
		}
		for _, d := range cfg.Add {
			cat.AddHypothetical(d)
		}
		cost, plan, err := o.CostStatement(stmt)
		for _, d := range cfg.Add {
			cat.RemoveHypothetical(d.Name)
		}
		if err != nil {
			return nil, err
		}
		out[i] = ConfigCost{Cost: cost, Plan: plan}
		if base == nil && len(cfg.Add) == 0 {
			base = &out[i]
			baseTables = planTables(plan)
		}
	}
	return out, nil
}

// irrelevantTo reports whether none of the added indexes is on a table the
// base plan touches.
func irrelevantTo(add []schema.IndexDef, tables map[string]bool) bool {
	for _, d := range add {
		if tables[strings.ToLower(d.Table)] {
			return false
		}
	}
	return true
}

// planTables collects the lowercased names of every table the plan
// references, including write targets (index maintenance on the written
// table is part of a write's cost).
func planTables(p *Plan) map[string]bool {
	tables := make(map[string]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Table != "" {
			tables[strings.ToLower(n.Table)] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return tables
}
