package fleet

import (
	"fmt"
	"strings"
	"time"

	"autoindex/internal/controlplane"
	"autoindex/internal/faults"
	"autoindex/internal/sim"
	"autoindex/internal/telemetry"
	"autoindex/internal/workload"
)

// ChaosConfig turns the operational simulation into a fault-injection
// run: engine DDL failures, control-plane crash/restart cycles, lossy
// telemetry and thinned query-store windows, all drawn from seeded
// per-scope streams so a chaos run is bit-identical for a given fleet
// seed at any worker count.
type ChaosConfig struct {
	Enabled bool
	// FaultRate is the per-opportunity probability for the engine,
	// telemetry and query-store fault points.
	FaultRate float64
	// CrashRate is the per-save probability for each control-plane crash
	// point (before- and after-save).
	CrashRate float64
	// MaxDrainHours bounds the post-run drain that lets in-flight records
	// settle before invariants are checked; 0 means a generous default
	// covering the longest validation window plus exhausted retries.
	MaxDrainHours int
}

// DefaultChaosConfig returns moderately hostile rates: most records
// succeed, but every fault point fires many times over a fleet-run.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{Enabled: true, FaultRate: 0.05, CrashRate: 0.02}
}

// ChaosReport summarises what a chaos run injected and what state the
// fleet settled into. All fields are deterministic for a given seed.
type ChaosReport struct {
	// Faults counts fired injections by point (crash points included).
	Faults map[faults.Point]int64
	// Crashes counts control-plane crashes recovered, by point.
	Crashes map[faults.Point]int64
	// Restarts is the total number of control-plane rebuilds.
	Restarts int64
	// DroppedEvents is the hub's count of telemetry events lost.
	DroppedEvents int64
	// DroppedExecutions sums query-store executions lost across tenants.
	DroppedExecutions int64
	// DrainHours is how many post-run hours the drain consumed.
	DrainHours int
	// Violations is the invariant-checker output; empty means the fleet
	// degraded gracefully under the schedule.
	Violations []controlplane.Violation
}

// Format renders the report deterministically, fault points in registry
// order.
func (r *ChaosReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d restarts, %d events dropped, %d executions dropped, drained %dh\n",
		r.Restarts, r.DroppedEvents, r.DroppedExecutions, r.DrainHours)
	for _, line := range faults.FormatFired(r.Faults) {
		fmt.Fprintf(&b, "  fired %s\n", line)
	}
	if len(r.Violations) == 0 {
		b.WriteString("invariants: OK (0 violations)\n")
	} else {
		fmt.Fprintf(&b, "invariants: %d VIOLATIONS\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}

// chaosHarness wires fault injectors into every layer of a fleet run and
// owns the crash-recovery loop. All of its mutation happens in serial
// sections (tenant enrollment, control-plane steps, drain), so it needs
// no locking; the injectors it hands to parallel tenant code (query-store
// droppers) are internally synchronized and per-tenant.
type chaosHarness struct {
	cfg  ChaosConfig
	seed int64

	hub     *telemetry.Hub
	mem     controlplane.Store
	wrapped controlplane.Store
	crashIn *faults.Injector
	telemIn *faults.Injector

	managed   []*workload.Tenant
	settings  map[string]controlplane.Settings
	baselines map[string]controlplane.InvariantTarget
	engineIns map[string]*faults.Injector
	qsIns     map[string]*faults.Injector

	runner *controlplane.CrashRunner
}

// newChaosHarness builds the harness around the control plane's backing
// store. The fleet seed keys every injector, with one scope per layer and
// per tenant, so adding a tenant or a fault point never perturbs the
// schedules of the others.
func newChaosHarness(cfg ChaosConfig, seed int64, mem controlplane.Store) *chaosHarness {
	ch := &chaosHarness{
		cfg:       cfg,
		seed:      seed,
		hub:       telemetry.NewHub(0),
		mem:       mem,
		settings:  make(map[string]controlplane.Settings),
		baselines: make(map[string]controlplane.InvariantTarget),
		engineIns: make(map[string]*faults.Injector),
		qsIns:     make(map[string]*faults.Injector),
	}
	ch.crashIn = faults.New(seed, "plane", map[faults.Point]float64{
		faults.PlaneCrashBeforeSave: cfg.CrashRate,
		faults.PlaneCrashAfterSave:  cfg.CrashRate,
	})
	ch.wrapped = controlplane.NewCrashStore(mem, ch.crashIn)
	ch.telemIn = faults.New(seed, "telemetry", map[faults.Point]float64{
		faults.TelemetryDropEvent: cfg.FaultRate,
	})
	in := ch.telemIn
	ch.hub.SetDropper(func(telemetry.Event) bool { return in.Should(faults.TelemetryDropEvent) })
	return ch
}

// enroll captures a tenant's index baseline and attaches its engine and
// query-store injectors. Called serially (initial managed set and
// fleet-growth barriers), before the tenant sees any chaos.
func (ch *chaosHarness) enroll(tn *workload.Tenant, s controlplane.Settings) {
	name := tn.DB.Name()
	ch.managed = append(ch.managed, tn)
	ch.settings[name] = s
	ch.baselines[name] = controlplane.InvariantTarget{DB: tn.DB, Baseline: tn.DB.IndexDefs()}

	eng := faults.New(ch.seed, "engine/"+name, map[faults.Point]float64{
		faults.IndexBuildLogFull:     ch.cfg.FaultRate,
		faults.IndexBuildLockTimeout: ch.cfg.FaultRate,
		faults.IndexBuildAbort:       ch.cfg.FaultRate,
		faults.DropLockTimeout:       ch.cfg.FaultRate,
	})
	ch.engineIns[name] = eng
	tn.DB.SetFaultInjector(eng)

	qs := faults.New(ch.seed, "querystore/"+name, map[faults.Point]float64{
		faults.QueryStoreDropExecution: ch.cfg.FaultRate,
	})
	ch.qsIns[name] = qs
	tn.DB.QueryStore().SetDropper(func() bool { return qs.Should(faults.QueryStoreDropExecution) })
}

// attach builds the crash-recovery runner around the initial plane. The
// rebuild closure reconstructs a fresh control plane over the same
// (crash-wrapped) store and re-Manages every enrolled tenant — exactly
// the restart-time recovery path through the persistence layer.
func (ch *chaosHarness) attach(cp *controlplane.ControlPlane, planeCfg controlplane.Config, clock sim.Clock) {
	ch.runner = controlplane.NewCrashRunner(cp, func() *controlplane.ControlPlane {
		np := controlplane.New(planeCfg, clock, ch.wrapped, ch.hub)
		for _, tn := range ch.managed {
			np.Manage(tn.DB, "server-0", ch.settings[tn.DB.Name()])
		}
		return np
	})
}

// disable turns every injector off (they keep consuming draws, so a drain
// does not shift schedules relative to a hypothetical longer run).
func (ch *chaosHarness) disable() {
	ch.crashIn.Disable()
	ch.telemIn.Disable()
	for _, in := range ch.engineIns {
		in.Disable()
	}
	for _, in := range ch.qsIns {
		in.Disable()
	}
}

// inFlight reports whether any record is mid-flight (neither terminal nor
// waiting in Active).
func (ch *chaosHarness) inFlight() bool {
	return len(ch.mem.Records(func(r *controlplane.Record) bool {
		return !r.State.Terminal() && r.State != controlplane.StateActive
	})) > 0
}

// freezeAnalysis pushes every database's analysis and drop-scan
// timestamps to now so the drain settles existing records without
// generating new recommendations.
func (ch *chaosHarness) freezeAnalysis(now time.Time) {
	for _, ds := range ch.mem.Databases() {
		ds.LastAnalysis = now
		ds.LastDropScan = now
		ch.mem.SaveDatabase(ds)
	}
}

// drain disables injection and steps the fleet hour by hour until no
// record is mid-flight (or the drain budget runs out — the invariant
// checker then reports the survivors as violations). Returns the hours
// consumed.
func (ch *chaosHarness) drain(f *Fleet) int {
	ch.disable()
	max := ch.cfg.MaxDrainHours
	if max <= 0 {
		// ValidationWindow (hours) + exhausted exponential retries + stuck
		// sweeps comfortably fit in three weeks of virtual time.
		max = 21 * 24
	}
	return drainInFlight(f, ch.mem, ch.runner.Step, max)
}

// report collects injector counters and runs the invariant checker.
// Callers must have every enrolled tenant materialized (rehydrated) at
// call time: the invariant checker audits live engine catalogs and the
// drop counters read live query stores.
func (ch *chaosHarness) report(now time.Time, planeCfg controlplane.Config, drained int) *ChaosReport {
	rep := &ChaosReport{
		Faults:        make(map[faults.Point]int64),
		Crashes:       ch.runner.Crashes,
		DroppedEvents: ch.hub.Counter("telemetry.dropped"),
		DrainHours:    drained,
	}
	faults.MergeFired(rep.Faults, ch.crashIn.Fired())
	faults.MergeFired(rep.Faults, ch.telemIn.Fired())
	for _, in := range ch.engineIns {
		faults.MergeFired(rep.Faults, in.Fired())
	}
	for _, in := range ch.qsIns {
		faults.MergeFired(rep.Faults, in.Fired())
	}
	for _, c := range rep.Crashes {
		rep.Restarts += c
	}
	for _, tn := range ch.managed {
		rep.DroppedExecutions += tn.DB.QueryStore().DroppedExecutions()
	}
	rep.Violations = controlplane.CheckInvariants(ch.mem, ch.baselines, planeCfg, now)
	return rep
}
