// Metricsdiscipline timing fixtures, loaded as a _test.go file (see
// fixtureOverrides): the wallclock analyzer skips test files because
// tests legitimately sleep on the real clock to coordinate goroutines,
// but feeding that clock into a metric is still a determinism bug —
// metricsdiscipline runs everywhere and catches it here.
package fixture

import (
	"time"

	"autoindex/internal/metrics"
)

var descTimingMillis = metrics.NewHistogramDesc("fixture.timing_ms", "a timing histogram", 1, 10, 100)

func timedWithWallClock(reg *metrics.Registry, start time.Time) {
	reg.Histogram(descTimingMillis).ObserveDuration(time.Since(start)) // want "metricsdiscipline: ObserveDuration fed from time.Since"
}

func nowIntoObserve(reg *metrics.Registry) {
	reg.Histogram(descTimingMillis).Observe(time.Now().UnixMilli()) // want "metricsdiscipline: Observe fed from time.Now"
}

// timedWithVirtualClock is the sanctioned form: the duration came from
// subtracting two virtual-clock readings, so the observation is a pure
// function of the seed.
func timedWithVirtualClock(reg *metrics.Registry, start, end time.Time) {
	reg.Histogram(descTimingMillis).ObserveDuration(end.Sub(start))
}
