package sqlparser

import (
	"hash/fnv"
	"strconv"
	"strings"

	"autoindex/internal/schema"
	"autoindex/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface {
	// SQL renders the statement back to text.
	SQL() string
	// Fingerprint returns a stable hash of the statement template: the
	// statement with literals replaced by placeholders. Query Store keys
	// queries by this hash so parameterised executions aggregate together.
	Fingerprint() uint64
	// templateSQL renders with literals replaced by '?'.
	templateSQL() string
}

// CompareOp is a comparison operator in a predicate.
type CompareOp int

// Supported comparison operators.
const (
	OpEQ CompareOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String renders the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return "?op?"
	}
}

// IsEquality reports whether the operator is equality.
func (op CompareOp) IsEquality() bool { return op == OpEQ }

// IsRange reports whether the operator defines a seekable range (the MI
// feature calls these INEQUALITY predicates; <> is not seekable).
func (op CompareOp) IsRange() bool {
	return op == OpLT || op == OpLE || op == OpGT || op == OpGE
}

// ColRef references a column, optionally qualified by table or alias.
type ColRef struct {
	Table  string // alias or table name, may be empty
	Column string
}

// String renders the reference.
func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Predicate is one conjunct of a WHERE clause: column op literal.
type Predicate struct {
	Col ColRef
	Op  CompareOp
	Val value.Value
}

// SQL renders the predicate.
func (p Predicate) SQL() string {
	return p.Col.String() + " " + p.Op.String() + " " + p.Val.String()
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions; AggNone marks a plain column reference.
const (
	AggNone AggFunc = iota
	AggCount
	AggCountCol
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (a AggFunc) String() string {
	switch a {
	case AggCount, AggCountCol:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return ""
	}
}

// SelectItem is one projected output: a column, a star, or an aggregate.
type SelectItem struct {
	Star bool
	Agg  AggFunc
	Col  ColRef // unused for Star and AggCount
}

// SQL renders the item.
func (s SelectItem) SQL() string {
	switch {
	case s.Star:
		return "*"
	case s.Agg == AggCount:
		return "COUNT(*)"
	case s.Agg != AggNone:
		return s.Agg.String() + "(" + s.Col.String() + ")"
	default:
		return s.Col.String()
	}
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the alias if set, else the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// SQL renders the reference.
func (t TableRef) SQL() string {
	if t.Alias != "" {
		return t.Table + " " + t.Alias
	}
	return t.Table
}

// Join is an inner equi-join clause.
type Join struct {
	Table TableRef
	// Left and Right are the equated columns (left references an earlier
	// table in the FROM chain, right the joined table).
	Left, Right ColRef
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Top     int // 0 = no TOP
	Items   []SelectItem
	From    TableRef
	Joins   []Join
	Where   []Predicate // conjunction
	GroupBy []ColRef
	OrderBy []OrderItem
}

// SQL renders the statement.
func (s *SelectStmt) SQL() string { return s.render(false) }

func (s *SelectStmt) templateSQL() string { return s.render(true) }

func (s *SelectStmt) render(template bool) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Top > 0 {
		b.WriteString("TOP ")
		if template {
			b.WriteString("?")
		} else {
			b.WriteString(strconv.Itoa(s.Top))
		}
		b.WriteString(" ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.SQL())
	}
	b.WriteString(" FROM ")
	b.WriteString(s.From.SQL())
	for _, j := range s.Joins {
		b.WriteString(" JOIN ")
		b.WriteString(j.Table.SQL())
		b.WriteString(" ON ")
		b.WriteString(j.Left.String())
		b.WriteString(" = ")
		b.WriteString(j.Right.String())
	}
	writeWhere(&b, s.Where, template)
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Col.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	return b.String()
}

func writeWhere(b *strings.Builder, preds []Predicate, template bool) {
	if len(preds) == 0 {
		return
	}
	b.WriteString(" WHERE ")
	for i, p := range preds {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(p.Col.String())
		b.WriteString(" ")
		b.WriteString(p.Op.String())
		b.WriteString(" ")
		if template {
			b.WriteString("?")
		} else {
			b.WriteString(p.Val.String())
		}
	}
}

// Fingerprint hashes the statement template.
func (s *SelectStmt) Fingerprint() uint64 { return fingerprint(s) }

// InsertStmt is an INSERT ... VALUES statement.
type InsertStmt struct {
	Table   string
	Columns []string // empty means all columns in table order
	Rows    []value.Row
}

// SQL renders the statement.
func (s *InsertStmt) SQL() string { return s.render(false) }

func (s *InsertStmt) templateSQL() string { return s.render(true) }

func (s *InsertStmt) render(template bool) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, r := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		if template {
			b.WriteString("(")
			for j := range r {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString("?")
			}
			b.WriteString(")")
		} else {
			b.WriteString(r.String())
		}
	}
	return b.String()
}

// Fingerprint hashes the statement template. Multi-row inserts share the
// fingerprint of the single-row form so batch sizes do not fragment Query
// Store entries.
func (s *InsertStmt) Fingerprint() uint64 {
	one := &InsertStmt{Table: s.Table, Columns: s.Columns, Rows: s.Rows[:min(1, len(s.Rows))]}
	return fingerprint(one)
}

// UpdateStmt is an UPDATE statement.
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where []Predicate
}

// Assignment is one SET column = literal clause.
type Assignment struct {
	Column string
	Val    value.Value
}

// SQL renders the statement.
func (s *UpdateStmt) SQL() string { return s.render(false) }

func (s *UpdateStmt) templateSQL() string { return s.render(true) }

func (s *UpdateStmt) render(template bool) string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column)
		b.WriteString(" = ")
		if template {
			b.WriteString("?")
		} else {
			b.WriteString(a.Val.String())
		}
	}
	writeWhere(&b, s.Where, template)
	return b.String()
}

// Fingerprint hashes the statement template.
func (s *UpdateStmt) Fingerprint() uint64 { return fingerprint(s) }

// DeleteStmt is a DELETE statement.
type DeleteStmt struct {
	Table string
	Where []Predicate
}

// SQL renders the statement.
func (s *DeleteStmt) SQL() string { return s.render(false) }

func (s *DeleteStmt) templateSQL() string { return s.render(true) }

func (s *DeleteStmt) render(template bool) string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	writeWhere(&b, s.Where, template)
	return b.String()
}

// Fingerprint hashes the statement template.
func (s *DeleteStmt) Fingerprint() uint64 { return fingerprint(s) }

// BulkInsertStmt models T-SQL BULK INSERT, which the real what-if API
// cannot optimize; DTA rewrites it into an equivalent INSERT so index
// maintenance costs are accounted (§5.3.2).
type BulkInsertStmt struct {
	Table string
	// Source names the external data source; RowEstimate is how many rows
	// a typical execution loads.
	Source      string
	RowEstimate int64
}

// SQL renders the statement.
func (s *BulkInsertStmt) SQL() string {
	return "BULK INSERT " + s.Table + " FROM DATASOURCE " + s.Source
}

func (s *BulkInsertStmt) templateSQL() string { return s.SQL() }

// Fingerprint hashes the statement template.
func (s *BulkInsertStmt) Fingerprint() uint64 { return fingerprint(s) }

// CreateTableStmt is CREATE TABLE DDL.
type CreateTableStmt struct {
	Table schema.Table
}

// SQL renders the statement.
func (s *CreateTableStmt) SQL() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(s.Table.Name)
	b.WriteString(" (")
	for i, c := range s.Table.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteString(" ")
		b.WriteString(c.Kind.String())
		if !c.Nullable {
			b.WriteString(" NOT NULL")
		}
	}
	if len(s.Table.PrimaryKey) > 0 {
		b.WriteString(", PRIMARY KEY (")
		b.WriteString(strings.Join(s.Table.PrimaryKey, ", "))
		b.WriteString(")")
	}
	b.WriteString(")")
	return b.String()
}

func (s *CreateTableStmt) templateSQL() string { return s.SQL() }

// Fingerprint hashes the statement template.
func (s *CreateTableStmt) Fingerprint() uint64 { return fingerprint(s) }

// CreateIndexStmt is CREATE INDEX DDL.
type CreateIndexStmt struct {
	Index  schema.IndexDef
	Online bool
}

// SQL renders the statement.
func (s *CreateIndexStmt) SQL() string {
	out := s.Index.String()
	if s.Online {
		out += " WITH (ONLINE = ON)"
	}
	return out
}

func (s *CreateIndexStmt) templateSQL() string { return s.SQL() }

// Fingerprint hashes the statement template.
func (s *CreateIndexStmt) Fingerprint() uint64 { return fingerprint(s) }

// DropIndexStmt is DROP INDEX DDL.
type DropIndexStmt struct {
	Name  string
	Table string
}

// SQL renders the statement.
func (s *DropIndexStmt) SQL() string {
	return "DROP INDEX " + s.Name + " ON " + s.Table
}

func (s *DropIndexStmt) templateSQL() string { return s.SQL() }

// Fingerprint hashes the statement template.
func (s *DropIndexStmt) Fingerprint() uint64 { return fingerprint(s) }

func fingerprint(s Statement) uint64 {
	h := fnv.New64a()
	h.Write([]byte(strings.ToLower(s.templateSQL())))
	return h.Sum64()
}

// IsWrite reports whether the statement modifies data.
func IsWrite(s Statement) bool {
	switch s.(type) {
	case *InsertStmt, *UpdateStmt, *DeleteStmt, *BulkInsertStmt:
		return true
	default:
		return false
	}
}

// WritePredicates returns the WHERE predicates of a write statement (nil
// for inserts). The MI recommender analyzes missing indexes for every
// statement "except inserts, updates, and deletes without predicates"
// (§5.2) — this helper is how callers make that distinction.
func WritePredicates(s Statement) []Predicate {
	switch st := s.(type) {
	case *UpdateStmt:
		return st.Where
	case *DeleteStmt:
		return st.Where
	default:
		return nil
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
