// Lockdiscipline fixtures: lock copies, unpaired locks, and
// double-locks.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func lockByValueParam(mu sync.Mutex) { // want "lockdiscipline: sync.Mutex passes a sync lock by value"
	mu.Lock()
	defer mu.Unlock()
}

func structByValueParam(g guarded) int { // want "lockdiscipline: guarded passes a sync lock by value"
	return g.n
}

// structByPointer is the fix: no diagnostic.
func structByPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func derefCopy(g *guarded) {
	c := *g // want "lockdiscipline: assignment of .g to c copies a sync lock by value"
	c.n++
}

// pointerAlias copies the pointer, not the lock: no diagnostic.
func pointerAlias(g *guarded) {
	p := g
	_ = p
}

func rangeValueCopy(gs []guarded) int {
	n := 0
	for _, g := range gs { // want "lockdiscipline: range value g copies a sync lock each iteration"
		n += g.n
	}
	return n
}

// rangeByIndex is the fix: no diagnostic.
func rangeByIndex(gs []guarded) int {
	n := 0
	for i := range gs {
		n += gs[i].n
	}
	return n
}

func missingUnlock(g *guarded) {
	g.mu.Lock() // want "lockdiscipline: Lock of g.mu without a matching Unlock in the same function"
	g.n++
}

type rwGuarded struct {
	mu sync.RWMutex
	n  int
}

func missingRUnlock(r *rwGuarded) int {
	r.mu.RLock() // want "lockdiscipline: RLock of r.mu without a matching RUnlock in the same function"
	return r.n
}

// pairedRead and pairedWrite are disciplined: no diagnostics.
func pairedRead(r *rwGuarded) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

func pairedWrite(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func doubleLockStraightLine(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Lock() // want "lockdiscipline: Lock of g.mu while already held on this path"
	g.mu.Unlock()
	g.mu.Unlock()
}

// doubleLockPastBranch: the unlock happens only on the early-return
// branch, so the fall-through path still holds the lock.
func doubleLockPastBranch(g *guarded) {
	g.mu.Lock()
	if g.n > 0 {
		g.mu.Unlock()
		return
	}
	g.mu.Lock() // want "lockdiscipline: Lock of g.mu while already held on this path"
	g.mu.Unlock()
}

// relockAfterUnlock is sequentially disciplined: no diagnostic.
func relockAfterUnlock(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.mu.Lock()
	g.n--
	g.mu.Unlock()
}

// branchBothLock: both branches acquire, the merge holds, and the
// single unlock after is fine (no double-lock, and unlocks exist).
func branchBothLock(g *guarded) {
	if g.n > 0 {
		g.mu.Lock()
	} else {
		g.mu.Lock()
	}
	g.n++
	g.mu.Unlock()
}

// deferThenRelock: a deferred unlock releases only at return, so
// re-locking before then deadlocks.
func deferThenRelock(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	g.mu.Lock() // want "lockdiscipline: Lock of g.mu while already held on this path"
	g.mu.Unlock()
}

// twoMutexes interleaved are independent: no diagnostic.
type twoLocks struct {
	a, b sync.Mutex
	n    int
}

func interleaved(t *twoLocks) {
	t.a.Lock()
	t.b.Lock()
	t.n++
	t.b.Unlock()
	t.a.Unlock()
}
