// Package fleet builds and drives multi-tenant database fleets: the
// substrate for reproducing Fig. 6 (recommender comparison at scale on
// B-instances) and the §8.1 operational statistics (long-horizon
// auto-indexing with validation and drops across many databases).
package fleet

import (
	"fmt"
	"time"

	"autoindex/internal/controlplane"
	"autoindex/internal/engine"
	"autoindex/internal/experiment"
	"autoindex/internal/querystore"
	"autoindex/internal/sim"
	"autoindex/internal/workload"
)

// Spec configures a fleet.
type Spec struct {
	Databases int
	Tier      engine.Tier
	// MixedTiers overrides Tier with a Basic/Standard/Premium mix.
	MixedTiers bool
	Seed       int64
	// Scale multiplies tenant data sizes.
	Scale float64
	// UserIndexes gives tenants pre-existing human tuning.
	UserIndexes bool
}

// Fleet is a set of tenants sharing one region clock.
type Fleet struct {
	Clock   *sim.VirtualClock
	RNG     *sim.RNG
	Tenants []*workload.Tenant
}

// Build creates the fleet.
func Build(spec Spec) (*Fleet, error) {
	clock := sim.NewClock()
	rng := sim.NewRNG(spec.Seed)
	f := &Fleet{Clock: clock, RNG: rng}
	for i := 0; i < spec.Databases; i++ {
		tier := spec.Tier
		if spec.MixedTiers {
			switch i % 4 {
			case 0, 1:
				tier = engine.TierStandard
			case 2:
				tier = engine.TierBasic
			default:
				tier = engine.TierPremium
			}
		}
		p := workload.Profile{
			Name:        fmt.Sprintf("db%03d", i),
			Tier:        tier,
			Seed:        spec.Seed + int64(i)*7919,
			Scale:       spec.Scale,
			UserIndexes: spec.UserIndexes,
		}
		tn, err := workload.NewTenant(p, clock)
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %d: %w", i, err)
		}
		f.Tenants = append(f.Tenants, tn)
	}
	return f, nil
}

// RunFig6 executes the §7.3 experiment across the fleet and summarises.
func (f *Fleet) RunFig6(tierLabel string, cfg experiment.Fig6Config) experiment.Fig6Summary {
	var results []experiment.DatabaseResult
	for _, tn := range f.Tenants {
		results = append(results, experiment.RunFig6ForTenant(tn, cfg, f.RNG))
	}
	return experiment.Summarize(tierLabel, results)
}

// OpsConfig drives the §8.1 operational simulation.
type OpsConfig struct {
	Days int
	// StatementsPerHour per tenant.
	StatementsPerHour int
	// AutoImplementFraction of databases have auto-implementation on
	// (about a quarter in the paper).
	AutoImplementFraction float64
	// NewTenantEvery adds a fresh database on this cadence (the paper's
	// "increasing stream of new databases"); 0 disables.
	NewTenantEvery time.Duration
	// FailoverProb is a per-database per-day failover probability,
	// exercising the MI snapshot reset tolerance.
	FailoverProb float64
	Plane        controlplane.Config
}

// DefaultOpsConfig returns a simulation-scale configuration.
func DefaultOpsConfig() OpsConfig {
	return OpsConfig{
		Days:                  10,
		StatementsPerHour:     25,
		AutoImplementFraction: 0.25,
		FailoverProb:          0.02,
		Plane:                 controlplane.DefaultConfig(),
	}
}

// OpsResult is the §8.1-style outcome.
type OpsResult struct {
	Stats controlplane.OperationalStats
	// QueriesTwiceFaster counts queries whose CPU or logical reads
	// improved by more than 2x end-to-start.
	QueriesTwiceFaster int
	// DatabasesHalvedCPU counts databases whose aggregate workload CPU
	// fell by more than 50%.
	DatabasesHalvedCPU int
	// SteadyStateDatabases counts databases with no Active recommendations
	// at the end.
	SteadyStateDatabases int
	Plane                *controlplane.ControlPlane
}

// RunOps runs the long-horizon operational simulation.
func (f *Fleet) RunOps(spec Spec, cfg OpsConfig) (*OpsResult, error) {
	cp := controlplane.New(cfg.Plane, f.Clock, controlplane.NewMemStore(), nil)
	autoRNG := f.RNG.Child("ops/auto")
	for _, tn := range f.Tenants {
		auto := autoRNG.Float64() < cfg.AutoImplementFraction
		cp.Manage(tn.DB, "server-0", controlplane.Settings{AutoCreate: auto, AutoDrop: auto})
	}
	// First/last-window per-query costs for the >2x and >50% statistics.
	startCosts := make(map[string]map[uint64]float64)
	startTotal := make(map[string]float64)

	newTenantRNG := f.RNG.Child("ops/new")
	nextNew := time.Duration(0)
	if cfg.NewTenantEvery > 0 {
		nextNew = cfg.NewTenantEvery
	}
	start := f.Clock.Now()
	hours := cfg.Days * 24
	warmupHours := 24
	failRNG := f.RNG.Child("ops/failover")
	for h := 0; h < hours; h++ {
		for _, tn := range f.Tenants {
			tn.Run(0, cfg.StatementsPerHour)
			if failRNG.Float64() < cfg.FailoverProb/24 {
				tn.DB.Failover()
			}
		}
		f.Clock.Advance(time.Hour)
		cp.Step()
		if h == warmupHours {
			for _, tn := range f.Tenants {
				per, total := windowCosts(tn, start, f.Clock.Now())
				startCosts[tn.DB.Name()] = per
				startTotal[tn.DB.Name()] = total
			}
		}
		if cfg.NewTenantEvery > 0 && f.Clock.Now().Sub(start) >= nextNew {
			nextNew += cfg.NewTenantEvery
			idx := len(f.Tenants)
			tn, err := workload.NewTenant(workload.Profile{
				Name:        fmt.Sprintf("db%03d", idx),
				Tier:        engine.TierStandard,
				Seed:        spec.Seed + int64(idx)*7919 + newTenantRNG.Int63n(1<<30),
				Scale:       spec.Scale,
				UserIndexes: spec.UserIndexes,
			}, f.Clock)
			if err == nil {
				auto := autoRNG.Float64() < cfg.AutoImplementFraction
				cp.Manage(tn.DB, "server-0", controlplane.Settings{AutoCreate: auto, AutoDrop: auto})
				f.Tenants = append(f.Tenants, tn)
			}
		}
	}

	res := &OpsResult{Stats: cp.OpStats(), Plane: cp}
	lastFrom := f.Clock.Now().Add(-24 * time.Hour)
	for _, tn := range f.Tenants {
		basePer, baseTotal := startCosts[tn.DB.Name()], startTotal[tn.DB.Name()]
		if basePer == nil {
			continue
		}
		endPer, endTotal := windowCosts(tn, lastFrom, f.Clock.Now())
		for q, b := range basePer {
			if e, ok := endPer[q]; ok && e > 0 && b/e > 2 {
				res.QueriesTwiceFaster++
			}
		}
		if baseTotal > 0 && endTotal > 0 && endTotal < baseTotal*0.5 {
			res.DatabasesHalvedCPU++
		}
		if len(cp.ListRecommendations(tn.DB.Name())) == 0 {
			res.SteadyStateDatabases++
		}
	}
	return res, nil
}

// windowCosts returns per-query mean CPU and the workload mean CPU per
// statement over a window.
func windowCosts(tn *workload.Tenant, from, to time.Time) (map[uint64]float64, float64) {
	per := make(map[uint64]float64)
	var total, n float64
	qs := tn.DB.QueryStore()
	for _, h := range qs.QueryHashes() {
		if s, ok := qs.QueryWindowSample(h, querystore.MetricCPU, from, to); ok && s.N >= 2 {
			per[h] = s.Mean
			total += s.Mean * float64(s.N)
			n += float64(s.N)
		}
	}
	if n == 0 {
		return per, 0
	}
	return per, total / n
}
