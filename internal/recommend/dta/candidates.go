package dta

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"autoindex/internal/core"
	"autoindex/internal/dmv"
	"autoindex/internal/engine"
	"autoindex/internal/optimizer"
	"autoindex/internal/schema"
	"autoindex/internal/sqlparser"
)

// tableAnalysis collects the index-relevant columns one statement touches
// on one table (DTA's candidate selection inputs [22]: sargable
// predicates, joins, group-by and order-by columns).
type tableAnalysis struct {
	table     string
	eqCols    []string
	rangeCols []string
	joinCols  []string
	groupBy   []string
	orderBy   []string
	projected []string
}

func (a *tableAnalysis) add(list *[]string, col string) {
	for _, c := range *list {
		if strings.EqualFold(c, col) {
			return
		}
	}
	*list = append(*list, col)
}

// analyzeStatement maps a statement's column usage per table.
func analyzeStatement(db *engine.Database, stmt sqlparser.Statement) map[string]*tableAnalysis {
	out := make(map[string]*tableAnalysis)
	get := func(table string) *tableAnalysis {
		k := strings.ToLower(table)
		a := out[k]
		if a == nil {
			a = &tableAnalysis{table: table}
			out[k] = a
		}
		return a
	}
	resolveTable := func(aliases map[string]string, ref sqlparser.ColRef, tables []string) string {
		if ref.Table != "" {
			if t, ok := aliases[strings.ToLower(ref.Table)]; ok {
				return t
			}
			return ref.Table
		}
		for _, t := range tables {
			if ti, ok := db.Table(t); ok && ti.Def.ColumnIndex(ref.Column) >= 0 {
				return t
			}
		}
		return ""
	}
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		aliases := map[string]string{strings.ToLower(s.From.Name()): s.From.Table}
		tables := []string{s.From.Table}
		for _, j := range s.Joins {
			aliases[strings.ToLower(j.Table.Name())] = j.Table.Table
			tables = append(tables, j.Table.Table)
		}
		for _, p := range s.Where {
			t := resolveTable(aliases, p.Col, tables)
			if t == "" {
				continue
			}
			a := get(t)
			if p.Op.IsEquality() {
				a.add(&a.eqCols, p.Col.Column)
			} else if p.Op.IsRange() {
				a.add(&a.rangeCols, p.Col.Column)
			}
		}
		for _, j := range s.Joins {
			if t := resolveTable(aliases, j.Left, tables); t != "" {
				a := get(t)
				a.add(&a.joinCols, j.Left.Column)
			}
			if t := resolveTable(aliases, j.Right, tables); t != "" {
				a := get(t)
				a.add(&a.joinCols, j.Right.Column)
			}
		}
		for _, g := range s.GroupBy {
			if t := resolveTable(aliases, g, tables); t != "" {
				a := get(t)
				a.add(&a.groupBy, g.Column)
			}
		}
		for _, o := range s.OrderBy {
			if t := resolveTable(aliases, o.Col, tables); t != "" {
				a := get(t)
				a.add(&a.orderBy, o.Col.Column)
			}
		}
		for _, it := range s.Items {
			if it.Star {
				continue
			}
			if it.Agg == sqlparser.AggCount {
				continue
			}
			if t := resolveTable(aliases, it.Col, tables); t != "" {
				a := get(t)
				a.add(&a.projected, it.Col.Column)
			}
		}
	case *sqlparser.UpdateStmt:
		a := get(s.Table)
		for _, p := range s.Where {
			if p.Op.IsEquality() {
				a.add(&a.eqCols, p.Col.Column)
			} else if p.Op.IsRange() {
				a.add(&a.rangeCols, p.Col.Column)
			}
		}
	case *sqlparser.DeleteStmt:
		a := get(s.Table)
		for _, p := range s.Where {
			if p.Op.IsEquality() {
				a.add(&a.eqCols, p.Col.Column)
			} else if p.Op.IsRange() {
				a.add(&a.rangeCols, p.Col.Column)
			}
		}
	}
	return out
}

// candidateDefs derives the candidate index shapes for one statement
// from its column-usage analysis. Pure analysis: it never touches the
// what-if session, so all sampled statistics can be built before any
// candidate is costed.
func candidateDefs(db *engine.Database, stmt sqlparser.Statement, opts Options) []schema.IndexDef {
	analyses := analyzeStatement(db, stmt)
	// Visit tables in sorted order: candidate order decides which shapes
	// are costed before the session's what-if budget runs out, so map
	// iteration here would make recommendations vary run to run.
	tables := make([]string, 0, len(analyses))
	for k := range analyses {
		tables = append(tables, k)
	}
	sort.Strings(tables)
	var defs []schema.IndexDef
	for _, k := range tables {
		a := analyses[k]
		t, ok := db.Table(a.table)
		if !ok {
			continue
		}
		defs = append(defs, candidateShapes(t, a, opts)...)
	}
	return defs
}

// screenCandidates prices one statement's candidate shapes in a single
// batched what-if round-trip (base configuration first, then one
// configuration per shape) and keeps the shapes that reduce this
// statement's estimated cost and actually appear in its plan.
func screenCandidates(db *engine.Database, ts tunedStatement, defs []schema.IndexDef, session *engine.WhatIfSession) []core.Candidate {
	if len(defs) == 0 {
		return nil
	}
	configs := make([]optimizer.Configuration, 0, len(defs)+1)
	configs = append(configs, optimizer.Configuration{})
	for _, def := range defs {
		configs = append(configs, optimizer.Configuration{Add: []schema.IndexDef{def}})
	}
	results, err := session.CostConfigurations(ts.hash, ts.stmt, configs)
	if err != nil || results[0].Skipped {
		return nil
	}
	base := results[0].Cost
	var out []core.Candidate
	for j, def := range defs {
		r := results[j+1]
		if r.Skipped {
			// Budget ran out mid-batch; later shapes were never priced.
			break
		}
		improvement := base - r.Cost
		if improvement <= base*0.01 || improvement <= 0 {
			continue
		}
		used := false
		for _, ix := range r.Plan.IndexesUsed {
			if strings.EqualFold(ix, def.Name) {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		t, _ := db.Table(def.Table)
		size := def.EstimatedSizeBytes(t.Def, t.RowCount)
		out = append(out, core.Candidate{
			Def:               def,
			EstImprovement:    improvement,
			EstImprovementPct: improvement / math.Max(base, 1e-9) * 100,
			EstSizeBytes:      size,
			Source:            core.SourceDTA,
			Features: []float64{
				improvement / math.Max(base, 1e-9),
				math.Log1p(float64(t.RowCount)),
				math.Log1p(float64(size)),
				float64(len(def.KeyColumns)),
			},
		})
	}
	return out
}

// candidateShapes proposes index definitions for one table's usage in one
// statement: the sargable-predicate candidate (covering and key-only
// variants), a join-column candidate, a group-by candidate and a
// sort-avoidance (order-by) candidate.
func candidateShapes(t optimizer.TableInfo, a *tableAnalysis, _ Options) []schema.IndexDef {
	var defs []schema.IndexDef
	tableName := t.Def.Name
	addDef := func(keys, include []string) {
		if len(keys) == 0 {
			return
		}
		// Keys must be real, non-duplicate columns.
		seen := make(map[string]bool)
		var ks []string
		for _, k := range keys {
			lk := strings.ToLower(k)
			if seen[lk] || t.Def.ColumnIndex(k) < 0 {
				continue
			}
			seen[lk] = true
			ks = append(ks, k)
		}
		if len(ks) == 0 {
			return
		}
		var inc []string
		for _, c := range include {
			lc := strings.ToLower(c)
			if seen[lc] || t.Def.ColumnIndex(c) < 0 {
				continue
			}
			seen[lc] = true
			inc = append(inc, c)
		}
		sort.Strings(inc)
		def := schema.IndexDef{
			Name:            dtaIndexName(tableName, ks, inc),
			Table:           tableName,
			KeyColumns:      ks,
			IncludedColumns: inc,
			AutoCreated:     true,
		}
		for _, d := range defs {
			if d.Signature() == def.Signature() {
				return
			}
		}
		defs = append(defs, def)
	}

	// Sargable predicates: equality keys + one range key.
	sargKeys := append([]string(nil), a.eqCols...)
	if len(a.rangeCols) > 0 {
		sargKeys = append(sargKeys, a.rangeCols[0])
	}
	if len(sargKeys) > 0 {
		addDef(sargKeys, nil)                                                          // key-only
		addDef(sargKeys, mergeCols(a.projected, a.rangeCols[min1(len(a.rangeCols)):])) // covering
	}
	// Join columns as leading keys.
	for _, jc := range a.joinCols {
		addDef([]string{jc}, a.projected)
		if len(a.eqCols) > 0 {
			addDef(append([]string{jc}, a.eqCols...), a.projected)
		}
	}
	// Group-by keys (covering scan enables streaming/narrow aggregation).
	if len(a.groupBy) > 0 {
		addDef(a.groupBy, a.projected)
	}
	// Sort avoidance: equality prefix + order-by columns.
	if len(a.orderBy) > 0 {
		addDef(append(append([]string(nil), a.eqCols...), a.orderBy...), a.projected)
	}
	return defs
}

func min1(n int) int {
	if n > 1 {
		return 1
	}
	return n
}

func mergeCols(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, c := range b {
		dup := false
		for _, e := range out {
			if strings.EqualFold(e, c) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// dtaIndexName derives a deterministic, collision-free name from the
// index shape. The include-column content is folded in as a short hash,
// not just a count: hypothetical indexes are removed from the what-if
// catalog by name, so two distinct shapes sharing a name would let one
// candidate's evaluation silently drop another — or an already-chosen
// index — from the configuration mid-enumeration.
func dtaIndexName(table string, keys, include []string) string {
	base := "auto_dta_" + strings.ToLower(table) + "_" + strings.ToLower(strings.Join(keys, "_"))
	suffix := ""
	if len(include) > 0 {
		h := fnv.New64a()
		for _, c := range include {
			h.Write([]byte(strings.ToLower(c)))
			h.Write([]byte{0})
		}
		suffix = fmt.Sprintf("_i%d_%07x", len(include), h.Sum64()&0xfffffff)
	}
	if len(base)+len(suffix) > 96 {
		base = base[:96-len(suffix)]
	}
	return base + suffix
}

// miEntryToCandidate converts an MI DMV entry into a DTA search candidate
// (the augmentation of §5.3.2, costed with the optimizer's own estimates
// when the what-if API cannot cost the triggering statements).
func miEntryToCandidate(db *engine.Database, e *dmv.Entry) (core.Candidate, bool) {
	t, ok := db.Table(e.Candidate.Table)
	if !ok {
		return core.Candidate{}, false
	}
	keys := append([]string(nil), e.Candidate.Equality...)
	include := append([]string(nil), e.Candidate.Include...)
	if len(e.Candidate.Inequality) > 0 {
		keys = append(keys, e.Candidate.Inequality[0])
		include = append(include, e.Candidate.Inequality[1:]...)
	}
	if len(keys) == 0 {
		return core.Candidate{}, false
	}
	def := schema.IndexDef{
		Name:            dtaIndexName(e.Candidate.Table, keys, include),
		Table:           t.Def.Name,
		KeyColumns:      keys,
		IncludedColumns: include,
		AutoCreated:     true,
	}
	size := def.EstimatedSizeBytes(t.Def, t.RowCount)
	var impacted []uint64
	for q := range e.QueryHashes {
		impacted = append(impacted, q)
	}
	sort.Slice(impacted, func(i, j int) bool { return impacted[i] < impacted[j] })
	return core.Candidate{
		Def:               def,
		EstImprovement:    e.Score(),
		EstImprovementPct: e.AvgImprovementPct,
		EstSizeBytes:      size,
		ImpactedQueries:   impacted,
		Source:            core.SourceDTA,
		Features: []float64{
			e.AvgImprovementPct / 100,
			math.Log1p(float64(t.RowCount)),
			math.Log1p(float64(size)),
			float64(len(def.KeyColumns)),
		},
	}, true
}
