// Package faults is the deterministic fault-injection layer behind the
// chaos fleet mode. The paper's service is judged on how it degrades, not
// just how it performs: index builds run out of log space, schema locks
// time out, the control plane dies between state-machine transitions, and
// telemetry and Query Store lose data (§4, §6, §8.3). This package names
// those failure sites as fault points and decides, from seeded streams,
// when each one fires.
//
// The design contract matches the parallel fleet harness: a fault
// schedule is a pure function of (seed, scope, point), independent of
// worker count or goroutine scheduling. Every point draws from its own
// child RNG stream, so changing one point's rate — or adding a new point —
// never perturbs the draws any other point sees. Injectors are nil-safe:
// a nil *Injector never fires, so production paths carry no chaos cost
// beyond one pointer check.
package faults

import (
	"fmt"
	"sort"
	"sync"

	"autoindex/internal/sim"
)

// Point names one fault-injection site. The string doubles as the child
// RNG stream key, so renaming a point changes its schedule.
type Point string

// The fault-point registry. Engine points fail index DDL with the same
// error classes real builds produce; control-plane points kill the
// process at persistence boundaries; telemetry and query-store points
// lose observability data the validator and dashboards depend on.
const (
	// IndexBuildLogFull fails an index build with engine.ErrLogFull, as a
	// log-growth race would even for builds that checked space up front.
	IndexBuildLogFull Point = "engine/index-build/log-full"
	// IndexBuildLockTimeout fails an index build with
	// engine.ErrLockTimeout before the build starts.
	IndexBuildLockTimeout Point = "engine/index-build/lock-timeout"
	// IndexBuildAbort aborts an online index build mid-flight with
	// engine.ErrBuildAborted (§8.3's interrupted online builds).
	IndexBuildAbort Point = "engine/index-build/abort"
	// DropLockTimeout fails a low-priority index drop with
	// engine.ErrLockTimeout after burning its lock-wait budget.
	DropLockTimeout Point = "engine/drop-index/lock-timeout"
	// PlaneCrashBeforeSave kills the control plane just before a record
	// write is persisted: the state-machine transition is lost and the
	// restarted plane must rediscover and redo the step.
	PlaneCrashBeforeSave Point = "controlplane/crash-before-save"
	// PlaneCrashAfterSave kills the control plane just after a record
	// write is persisted: the transition survives but all in-memory state
	// (recommender snapshots, classifier) is lost.
	PlaneCrashAfterSave Point = "controlplane/crash-after-save"
	// TelemetryDropEvent silently drops a telemetry event before it
	// reaches the hub's ring buffer.
	TelemetryDropEvent Point = "telemetry/drop-event"
	// QueryStoreDropExecution loses one statement execution before Query
	// Store aggregates it, thinning or emptying validation windows.
	QueryStoreDropExecution Point = "querystore/drop-execution"
)

// PointInfo documents one registered fault point.
type PointInfo struct {
	Point       Point
	Description string
}

// Points returns the full fault-point registry in stable order. Docs and
// the chaos report iterate it so every point is accounted for.
func Points() []PointInfo {
	return []PointInfo{
		{IndexBuildLogFull, "index build fails with ErrLogFull (transient, retried with backoff)"},
		{IndexBuildLockTimeout, "index build fails with ErrLockTimeout (transient, retried with backoff)"},
		{IndexBuildAbort, "online index build aborted mid-flight with ErrBuildAborted (transient)"},
		{DropLockTimeout, "low-priority index drop times out with ErrLockTimeout (transient)"},
		{PlaneCrashBeforeSave, "control plane dies before persisting a record transition (transition lost)"},
		{PlaneCrashAfterSave, "control plane dies after persisting a record transition (memory lost)"},
		{TelemetryDropEvent, "telemetry event dropped before reaching the hub"},
		{QueryStoreDropExecution, "statement execution lost before Query Store aggregation"},
	}
}

// Crash is the panic value thrown at control-plane crash points. Chaos
// harnesses recover it, discard the dead control plane, and rebuild one
// from the persisted store — any other panic value keeps propagating.
type Crash struct {
	Point Point
}

// String describes the crash.
func (c Crash) String() string { return fmt.Sprintf("injected crash at %s", c.Point) }

// Injector decides when each fault point fires. One injector covers one
// scope — a tenant database, or the control plane — and derives one RNG
// stream per point from (seed, scope, point), so schedules are
// bit-identical for a given seed regardless of what other scopes or
// points do. All methods are safe for concurrent use and nil-safe.
type Injector struct {
	seed  int64
	scope string

	mu       sync.Mutex
	rates    map[Point]float64
	streams  map[Point]*sim.RNG
	fired    map[Point]int64
	disabled bool
}

// New returns an injector for a scope. rates maps each point to its
// per-draw firing probability; points absent from the map never fire and
// never consume randomness.
func New(seed int64, scope string, rates map[Point]float64) *Injector {
	in := &Injector{
		seed:    seed,
		scope:   scope,
		rates:   make(map[Point]float64, len(rates)),
		streams: make(map[Point]*sim.RNG, len(rates)),
		fired:   make(map[Point]int64),
	}
	for p, r := range rates {
		in.rates[p] = r
	}
	return in
}

// Scope returns the injector's scope label.
func (in *Injector) Scope() string {
	if in == nil {
		return ""
	}
	return in.scope
}

// Should reports whether point p fires on this draw. Each call with a
// configured rate consumes exactly one draw from p's private stream, so
// the k-th decision at a point is a pure function of (seed, scope, p, k).
func (in *Injector) Should(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	rate, ok := in.rates[p]
	if !ok || rate <= 0 || in.disabled {
		// Disabled injectors still consume draws for configured points so
		// that a drain phase does not shift the schedule of a later
		// re-enable; unconfigured points never consume.
		if ok && rate > 0 {
			in.stream(p).Float64()
		}
		return false
	}
	if in.stream(p).Float64() >= rate {
		return false
	}
	in.fired[p]++
	return true
}

// stream returns (creating on demand) the point's private stream. Caller
// holds in.mu.
func (in *Injector) stream(p Point) *sim.RNG {
	s, ok := in.streams[p]
	if !ok {
		s = sim.NewRNG(sim.DeriveSeed(sim.DeriveSeed(in.seed, "faults/"+in.scope), string(p)))
		in.streams[p] = s
	}
	return s
}

// Disable stops all points from firing (draws still advance; see Should).
// Chaos harnesses disable injection for the drain phase that lets
// in-flight records converge before invariants are checked.
func (in *Injector) Disable() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.disabled = true
	in.mu.Unlock()
}

// Enable re-allows firing after Disable.
func (in *Injector) Enable() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.disabled = false
	in.mu.Unlock()
}

// Fired returns a copy of the per-point fired counters.
func (in *Injector) Fired() map[Point]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Point]int64, len(in.fired))
	for p, n := range in.fired {
		out[p] = n
	}
	return out
}

// TotalFired sums the fired counters.
func (in *Injector) TotalFired() int64 {
	var total int64
	for _, n := range in.Fired() {
		total += n
	}
	return total
}

// MergeFired accumulates src's per-point counts into dst (allocating dst
// if nil) and returns it. Chaos reports merge per-tenant injectors in
// tenant order, keeping the aggregate deterministic.
func MergeFired(dst map[Point]int64, src map[Point]int64) map[Point]int64 {
	if dst == nil {
		dst = make(map[Point]int64, len(src))
	}
	for p, n := range src {
		dst[p] += n
	}
	return dst
}

// FormatFired renders fired counts as "point=n" lines in registry order,
// listing only points that fired at least once.
func FormatFired(fired map[Point]int64) []string {
	known := make(map[Point]bool)
	var out []string
	for _, pi := range Points() {
		known[pi.Point] = true
		if n := fired[pi.Point]; n > 0 {
			out = append(out, fmt.Sprintf("%s=%d", pi.Point, n))
		}
	}
	// Unregistered points (future additions) still render, sorted.
	var extra []string
	for p, n := range fired {
		if !known[p] && n > 0 {
			extra = append(extra, fmt.Sprintf("%s=%d", p, n))
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
