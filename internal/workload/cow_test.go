package workload

import (
	"fmt"
	"testing"

	"autoindex/internal/engine"
	"autoindex/internal/sim"
)

// stampSiblings builds one archetype and stamps n sibling tenants from
// it, each with its own name, seed and clock.
func stampSiblings(t *testing.T, n int) (*Archetype, []*Tenant) {
	t.Helper()
	p := Profile{Name: "cowarch", Tier: engine.TierStandard, Seed: 424242, Scale: 0.25, UserIndexes: true}
	arch, err := NewArchetype(p, sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	sibs := make([]*Tenant, n)
	for i := range sibs {
		tn, err := NewTenantFromArchetype(arch, fmt.Sprintf("cow%02d", i), 1000+int64(i)*7919, sim.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		sibs[i] = tn
	}
	return arch, sibs
}

// TestCOWPhysicalSharing pins the aliasing contract of archetype
// stamping: every sibling's table definitions, base rows and column
// statistics are the SAME objects as the archetype's shared catalog —
// pointer identity, not equal copies. This is what makes per-tenant
// memory the tenant's tree nodes and deltas rather than its data.
func TestCOWPhysicalSharing(t *testing.T) {
	arch, sibs := stampSiblings(t, 3)
	for _, ts := range arch.Tables {
		canonical := arch.Shared.TableDef(ts.Name)
		if canonical == nil {
			t.Fatalf("archetype catalog missing table %s", ts.Name)
		}
		rows := arch.Shared.Rows(ts.Name)
		for i, tn := range sibs {
			if got := tn.DB.TableDefPtr(ts.Name); got != canonical {
				t.Errorf("sibling %d: table %s definition is a copy (%p), want shared %p", i, ts.Name, got, canonical)
			}
			if len(rows) > 0 && len(rows[0]) > 0 {
				if got := tn.DB.BaseRowPointer(ts.Name, 0); got != &rows[0][0] {
					t.Errorf("sibling %d: table %s base row 0 is a copy, want shared storage", i, ts.Name)
				}
			}
			for _, c := range ts.Columns {
				canon := arch.Shared.Stats(ts.Name, c.Name)
				if canon == nil {
					continue // column had no template statistics
				}
				if got := tn.DB.StatPtr(ts.Name, c.Name); got != canon {
					t.Errorf("sibling %d: stats %s.%s is a copy (%p), want shared %p", i, ts.Name, c.Name, got, canon)
				}
			}
		}
	}
}

// droppableColumn finds a (table, column) pair a tenant-local DDL can
// drop: not a primary-key column and not referenced by any of the
// archetype's user-created indexes.
func droppableColumn(t *testing.T, arch *Archetype) (string, string) {
	t.Helper()
	for _, ts := range arch.Tables {
		def := arch.Shared.TableDef(ts.Name)
	cols:
		for _, c := range def.Columns {
			for _, pk := range def.PrimaryKey {
				if pk == c.Name {
					continue cols
				}
			}
			for _, ix := range arch.Indexes {
				if !ix.AutoCreated && ix.Table == def.Name && ix.HasColumn(c.Name) {
					continue cols
				}
			}
			return ts.Name, c.Name
		}
	}
	t.Fatal("archetype has no droppable column")
	return "", ""
}

// TestCOWDropColumnForksOnlyThatTenant drops a column on one sibling and
// verifies the fork is private: the altering tenant gets its own table
// definition and row storage, while the shared catalog and both other
// siblings keep the original objects — and the original column.
func TestCOWDropColumnForksOnlyThatTenant(t *testing.T) {
	arch, sibs := stampSiblings(t, 3)
	table, column := droppableColumn(t, arch)
	canonical := arch.Shared.TableDef(table)
	canonRow := &arch.Shared.Rows(table)[0][0]

	if err := sibs[0].DB.DropColumn(table, column); err != nil {
		t.Fatalf("DropColumn(%s.%s): %v", table, column, err)
	}

	forked := sibs[0].DB.TableDefPtr(table)
	if forked == canonical {
		t.Fatalf("DDL on sibling 0 mutated the shared definition of %s in place", table)
	}
	if forked.ColumnIndex(column) >= 0 {
		t.Errorf("sibling 0 still sees dropped column %s.%s", table, column)
	}
	if sibs[0].DB.BaseRowPointer(table, 0) == canonRow {
		t.Errorf("sibling 0 rows still alias shared storage after the column was stripped")
	}

	// The catalog itself must be untouched...
	if arch.Shared.TableDef(table) != canonical {
		t.Fatalf("shared catalog definition pointer changed")
	}
	if canonical.ColumnIndex(column) < 0 {
		t.Fatalf("shared catalog lost column %s.%s to a sibling's DDL", table, column)
	}
	// ...and the fork invisible to the other siblings.
	for i, tn := range sibs[1:] {
		if got := tn.DB.TableDefPtr(table); got != canonical {
			t.Errorf("sibling %d: definition no longer aliases the catalog after sibling 0's DDL", i+1)
		}
		if got := tn.DB.TableDefPtr(table); got.ColumnIndex(column) < 0 {
			t.Errorf("sibling %d: lost column %s.%s to sibling 0's DDL", i+1, table, column)
		}
		if tn.DB.BaseRowPointer(table, 0) != canonRow {
			t.Errorf("sibling %d: rows no longer alias shared storage", i+1)
		}
	}
}

// TestCOWStatsRefreshForksOnlyThatTenant verifies both halves of the
// statistics copy-on-write contract. A refresh over unchanged data is a
// no-op — the tenant keeps aliasing the shared histograms, because the
// rebuild would be bit-identical anyway. Once the tenant's data actually
// diverges (local writes), a refresh forks that tenant's statistics
// pointers off the catalog; siblings and the catalog keep the originals.
func TestCOWStatsRefreshForksOnlyThatTenant(t *testing.T) {
	arch, sibs := stampSiblings(t, 3)
	type statCol struct{ table, column string }
	var shared []statCol
	for _, ts := range arch.Tables {
		for _, c := range ts.Columns {
			if arch.Shared.Stats(ts.Name, c.Name) != nil {
				shared = append(shared, statCol{ts.Name, c.Name})
			}
		}
	}
	if len(shared) == 0 {
		t.Fatal("archetype has no shared statistics")
	}

	// Refresh with no divergence: still shared.
	sibs[1].DB.RebuildAllStats()
	for _, sc := range shared {
		canon := arch.Shared.Stats(sc.table, sc.column)
		if got := sibs[1].DB.StatPtr(sc.table, sc.column); got != canon {
			t.Errorf("sibling 1: refresh over unchanged data forked stats %s.%s", sc.table, sc.column)
		}
	}

	// Diverge sibling 1 with local writes, then refresh: forked.
	st := sibs[1].Run(0, 200)
	if st.Writes == 0 {
		t.Fatal("replay produced no writes; cannot exercise the stats fork")
	}
	sibs[1].DB.RebuildAllStats()

	for _, sc := range shared {
		canon := arch.Shared.Stats(sc.table, sc.column)
		if arch.Shared.Stats(sc.table, sc.column) != canon {
			t.Fatalf("shared catalog stats pointer for %s.%s changed", sc.table, sc.column)
		}
		if got := sibs[1].DB.StatPtr(sc.table, sc.column); got == canon {
			t.Errorf("sibling 1: stats %s.%s still alias the catalog after a refresh", sc.table, sc.column)
		}
		for _, i := range []int{0, 2} {
			if got := sibs[i].DB.StatPtr(sc.table, sc.column); got != canon {
				t.Errorf("sibling %d: stats %s.%s forked by sibling 1's refresh", i, sc.table, sc.column)
			}
		}
	}
}
