// Package value defines the typed scalar values stored in tables and
// flowing through query plans, along with comparison, hashing and string
// conversion. A compact struct (rather than interface{}) keeps rows cheap
// and comparisons allocation-free, which matters when the executor charges
// per-row CPU costs over millions of rows.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the supported column types.
type Kind uint8

// Supported kinds. Null is the absence of a value, permitted in any column
// declared nullable.
const (
	Null Kind = iota
	Int
	Float
	String
	Bool
	Time
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "NULL"
	case Int:
		return "BIGINT"
	case Float:
		return "FLOAT"
	case String:
		return "VARCHAR"
	case Bool:
		return "BIT"
	case Time:
		return "DATETIME"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind converts a SQL type name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(s) {
	case "INT", "BIGINT", "INTEGER", "SMALLINT":
		return Int, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return Float, nil
	case "VARCHAR", "NVARCHAR", "CHAR", "TEXT", "STRING":
		return String, nil
	case "BIT", "BOOL", "BOOLEAN":
		return Bool, nil
	case "DATETIME", "DATE", "TIMESTAMP":
		return Time, nil
	default:
		return Null, fmt.Errorf("value: unknown type %q", s)
	}
}

// Value is a single typed scalar. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // Int, Bool (0/1), Time (UnixNano)
	F float64 // Float
	S string  // String
}

// Convenience constructors.

// NewInt returns an Int value.
func NewInt(i int64) Value { return Value{K: Int, I: i} }

// NewFloat returns a Float value.
func NewFloat(f float64) Value { return Value{K: Float, F: f} }

// NewString returns a String value.
func NewString(s string) Value { return Value{K: String, S: s} }

// NewBool returns a Bool value.
func NewBool(b bool) Value {
	if b {
		return Value{K: Bool, I: 1}
	}
	return Value{K: Bool}
}

// NewTime returns a Time value.
func NewTime(t time.Time) Value { return Value{K: Time, I: t.UnixNano()} }

// NewNull returns the NULL value.
func NewNull() Value { return Value{} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == Null }

// Bool returns the boolean interpretation of v (false for NULL).
func (v Value) Bool() bool { return v.K == Bool && v.I != 0 }

// Time returns the time interpretation of v.
func (v Value) Time() time.Time { return time.Unix(0, v.I).UTC() }

// AsFloat converts numeric values to float64 for aggregation.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case Int:
		return float64(v.I), true
	case Float:
		return v.F, true
	case Bool:
		return float64(v.I), true
	case Time:
		return float64(v.I), true
	default:
		return 0, false
	}
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.K {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case Bool:
		if v.I != 0 {
			return "1"
		}
		return "0"
	case Time:
		return "'" + v.Time().Format("2006-01-02 15:04:05") + "'"
	default:
		return "?"
	}
}

// Compare orders two values. NULL sorts before everything (SQL Server index
// order). Cross-kind numeric comparisons (Int vs Float) are supported;
// otherwise comparing different kinds orders by kind, which keeps composite
// index keys totally ordered even in the face of type mismatches.
func Compare(a, b Value) int {
	if a.K == Null || b.K == Null {
		switch {
		case a.K == Null && b.K == Null:
			return 0
		case a.K == Null:
			return -1
		default:
			return 1
		}
	}
	// Numeric cross-kind comparison.
	if (a.K == Int && b.K == Float) || (a.K == Float && b.K == Int) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case Int, Bool, Time:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	case Float:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		default:
			return 0
		}
	case String:
		return strings.Compare(a.S, b.S)
	default:
		return 0
	}
}

// Equal reports whether a and b compare equal. NULL never equals NULL in
// predicate evaluation; use Compare for index ordering where NULLs group.
func Equal(a, b Value) bool {
	if a.K == Null || b.K == Null {
		return false
	}
	return Compare(a, b) == 0
}

// Hash returns a stable hash of v, used by hash joins and aggregation.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(v.K)
	switch v.K {
	case String:
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	case Float:
		// Normalize Float that holds an integral value so Int/Float hash
		// compatibly in mixed-type joins.
		f := v.F
		if f == float64(int64(f)) {
			buf[0] = byte(Int)
			putInt64(buf[1:], int64(f))
		} else {
			putInt64(buf[1:], int64(math.Float64bits(f)))
		}
		h.Write(buf[:])
	default:
		putInt64(buf[1:], v.I)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
