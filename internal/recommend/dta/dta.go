// Package dta reimplements the Database Engine Tuning Advisor [2, 10] as
// the paper's service runs it (§5.3): an automated session that (a)
// identifies a workload W from Query Store's most expensive statements
// over the last N hours, recovering truncated text from the plan cache and
// rewriting statements (e.g. BULK INSERT) that the what-if API cannot
// optimize; (b) performs per-query candidate selection from sargable
// predicates, join, group-by and order-by columns using the what-if API;
// (c) augments the search with Missing-Index candidates; and (d) runs a
// cost-based greedy workload-level enumeration under max-index and
// storage-budget constraints, within a strict resource budget, emitting a
// report with per-statement impacts and workload coverage.
package dta

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/engine"
	"autoindex/internal/querystore"
	"autoindex/internal/schema"
	"autoindex/internal/sqlparser"
	"autoindex/internal/value"
)

// Options configures a tuning session.
type Options struct {
	// WindowN is how far back workload identification looks (the paper's
	// "past N hours"); K is how many top statements to tune. Both are set
	// from the database's resources by OptionsForTier.
	WindowN time.Duration
	TopK    int
	// MaxIndexes and StorageBudgetBytes are the enumeration constraints.
	MaxIndexes         int
	StorageBudgetBytes int64
	// MaxWhatIfCalls is the session's optimizer-call budget (resource
	// governance, §5.3.1); 0 = unlimited.
	MaxWhatIfCalls int64
	// ReduceSampledStats enables the 2–3x sampled-statistics reduction
	// (§5.3.1): statistics are built only for candidate key columns rather
	// than every referenced column.
	ReduceSampledStats bool
	// MinImprovementFraction stops enumeration when the marginal gain
	// falls below this fraction of workload cost.
	MinImprovementFraction float64
	// AbortCheck, when non-nil, is polled between steps; returning true
	// aborts the session (the paper's automated tracking that kills DTA
	// sessions slowing user queries, §5.3.1).
	AbortCheck func() bool
	// AugmentWithMI toggles MI-candidate augmentation (§5.3.2).
	AugmentWithMI bool
	// CompressWorkload tunes a weighted representative sample of the
	// workload instead of the full top-K (querystore.CompressedTopByCPU):
	// the exact heavy-hitter head plus a CPU-proportional tail sample.
	// Leave false for exact runs over the full top-K.
	CompressWorkload bool
	// CompressionCoverage and CompressionTailSamples tune the sampler;
	// zero values use the querystore defaults.
	CompressionCoverage    float64
	CompressionTailSamples int
	// DisableCostCache forces every what-if pricing through the optimizer
	// instead of the per-tenant plan-cost cache. Recommendations are
	// identical either way (the differential test enforces it); only the
	// optimizer-call count changes.
	DisableCostCache bool
	// DisablePruning turns off upper-bound candidate pruning in the
	// greedy enumeration. Pruning is exact — a skipped candidate could
	// never have won a round — so this too changes only the call count.
	DisablePruning bool
}

// OptionsForTier scales N and K by the database's resources (§5.3.2).
func OptionsForTier(tier engine.Tier) Options {
	o := Options{
		MinImprovementFraction: 0.01,
		AugmentWithMI:          true,
		ReduceSampledStats:     true,
		CompressWorkload:       true,
		CompressionCoverage:    0.90,
		CompressionTailSamples: 4,
	}
	switch tier {
	case engine.TierBasic:
		o.WindowN = 12 * time.Hour
		o.TopK = 10
		o.MaxIndexes = 3
		o.StorageBudgetBytes = 64 << 20
		o.MaxWhatIfCalls = 800
	case engine.TierStandard:
		o.WindowN = 24 * time.Hour
		o.TopK = 20
		o.MaxIndexes = 5
		o.StorageBudgetBytes = 256 << 20
		o.MaxWhatIfCalls = 3000
	default:
		o.WindowN = 48 * time.Hour
		o.TopK = 40
		o.MaxIndexes = 10
		o.StorageBudgetBytes = 2 << 30
		o.MaxWhatIfCalls = 6000
	}
	return o
}

// ErrAborted is returned when AbortCheck tripped mid-session.
var ErrAborted = errors.New("dta: session aborted due to user-workload interference")

// StatementReport records how one analyzed statement fared.
type StatementReport struct {
	QueryHash  uint64
	Text       string
	Executions int64
	CostBefore float64
	CostAfter  float64
	// Indexes lists recommended indexes that impact this statement.
	Indexes []string
	// Rewritten notes the statement was transformed before costing
	// (BULK INSERT → INSERT).
	Rewritten bool
	// Skipped explains why a statement could not be tuned.
	Skipped string
}

// Result is a completed (or aborted) session's output.
type Result struct {
	Recommendations []core.Candidate
	Reports         []StatementReport
	Coverage        core.Coverage
	WhatIfCalls     int64
	StatsCreated    int64
	Aborted         bool
	// EstWorkloadImprovementPct is the estimated workload-cost reduction.
	EstWorkloadImprovementPct float64
}

// tunedStatement is one workload statement with its weight.
type tunedStatement struct {
	hash      uint64
	stmt      sqlparser.Statement
	weight    float64 // execution count in the window
	cpu       float64
	rewritten bool
}

// Run executes a DTA session against db.
func Run(db *engine.Database, opts Options) (*Result, error) {
	if opts.TopK == 0 {
		opts = OptionsForTier(db.Tier())
	}
	res := &Result{}
	session := db.NewWhatIfSession()
	session.MaxOptimizerCalls = opts.MaxWhatIfCalls
	session.DisableCostCache = opts.DisableCostCache
	defer session.Cleanup()

	now := db.Clock().Now()
	since := now.Add(-opts.WindowN)
	reg := db.Metrics()
	reg.Counter(descPasses).Inc()
	defer func() {
		// Pass latency in virtual time: what-if costing and sampled-stats
		// builds advance the tenant clock, so this measures tuning load.
		reg.Histogram(descPassMillis).ObserveDuration(db.Clock().Now().Sub(now))
	}()

	// (a) Workload identification from Query Store (§5.3.2), optionally
	// compressed to a weighted representative sample whose tail draw
	// comes from the tenant's own name-keyed RNG stream (deterministic at
	// any fleet worker count).
	var picked []querystore.WeightedQuery
	if opts.CompressWorkload {
		picked = db.QueryStore().CompressedTopByCPU(since, opts.TopK, querystore.CompressionOptions{
			TargetCoverage: opts.CompressionCoverage,
			TailSamples:    opts.CompressionTailSamples,
			Rand:           db.DeriveRNG("dta/compress"),
		})
	} else {
		for _, q := range db.QueryStore().TopByCPU(since, opts.TopK) {
			picked = append(picked, querystore.WeightedQuery{QueryCost: q, Weight: 1})
		}
	}
	var workload []tunedStatement
	for _, q := range picked {
		st, report := acquireStatement(db, q.QueryCost)
		if st == nil {
			res.Reports = append(res.Reports, report)
			continue
		}
		workload = append(workload, tunedStatement{
			hash: q.QueryHash, stmt: st, weight: float64(q.Executions) * q.Weight,
			cpu: q.TotalCPU * q.Weight, rewritten: report.Rewritten,
		})
	}
	// Coverage denominator is all resources, not just the top K.
	res.Coverage.TotalCPU = db.QueryStore().TotalCPU(since)

	if len(workload) == 0 {
		return res, nil
	}

	// (b) Per-query candidate selection via the what-if API, in three
	// phases: derive candidate shapes for every statement, build every
	// sampled statistic, then screen. Fronting all statistics builds means
	// nothing invalidates the plan-cost cache during screening or the
	// enumeration that follows, so repeated pricings inside one pass are
	// hits rather than new optimizer calls.
	defsPer := make([][]schema.IndexDef, len(workload))
	for i, ts := range workload {
		if opts.AbortCheck != nil && opts.AbortCheck() {
			res.Aborted = true
			return res, ErrAborted
		}
		defsPer[i] = candidateDefs(db, ts.stmt, opts)
	}
	for i := range workload {
		for _, def := range defsPer[i] {
			cols := def.KeyColumns
			if !opts.ReduceSampledStats {
				cols = def.AllColumns()
			}
			for _, c := range cols {
				session.CreateSampledStats(def.Table, c)
			}
		}
	}
	pool := make(map[string]core.Candidate)
	for i, ts := range workload {
		if opts.AbortCheck != nil && opts.AbortCheck() {
			res.Aborted = true
			return res, ErrAborted
		}
		for _, cand := range screenCandidates(db, ts, defsPer[i], session) {
			sig := cand.Def.Signature()
			if ex, ok := pool[sig]; ok {
				ex.ImpactedQueries = core.MergeImpacted(ex.ImpactedQueries, []uint64{ts.hash})
				pool[sig] = ex
			} else {
				cand.ImpactedQueries = []uint64{ts.hash}
				cand.Source = core.SourceDTA
				pool[sig] = cand
			}
		}
	}

	// (c) Augment with Missing-Index candidates (§5.3.2): MI may cover
	// statements DTA could not parse or cost.
	if opts.AugmentWithMI {
		for _, e := range db.MissingIndexDMV().Snapshot() {
			cand, ok := miEntryToCandidate(db, e)
			if !ok {
				continue
			}
			sig := cand.Def.Signature()
			if _, dup := pool[sig]; !dup {
				pool[sig] = cand
			}
		}
	}

	generated := int64(len(pool))
	reg.Counter(descCandidatesGenerated).Add(generated)

	// Drop candidates duplicating existing indexes.
	existing := db.IndexDefs()
	for sig, c := range pool {
		for _, e := range existing {
			if strings.EqualFold(e.Table, c.Def.Table) && e.SameKey(c.Def) {
				delete(pool, sig)
				break
			}
		}
	}

	reg.Counter(descCandidatesPruned).Add(generated - int64(len(pool)))

	candidates := make([]core.Candidate, 0, len(pool))
	for _, c := range pool {
		candidates = append(candidates, c)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Def.Signature() < candidates[j].Def.Signature() })

	// Sampled statistics for every pool candidate: MI augmentation can
	// introduce key columns the per-statement phase never saw, and a stat
	// built lazily mid-search shifts later cost estimates. Building them
	// all before enumeration keeps the statistics state independent of
	// which evaluations upper-bound pruning skips — pruning must change
	// only the call count, never a cost.
	for _, c := range candidates {
		cols := c.Def.KeyColumns
		if !opts.ReduceSampledStats {
			cols = c.Def.AllColumns()
		}
		for _, col := range cols {
			session.CreateSampledStats(c.Def.Table, col)
		}
	}

	// (d) Workload-level greedy enumeration under constraints (§5.1.1).
	chosen, baseline, finalCost, err := enumerate(db, session, workload, candidates, opts, res)
	if err != nil {
		if errors.Is(err, engine.ErrWhatIfBudget) {
			// Budget exhausted: return what we have (partial result).
			res.Aborted = true
		} else if errors.Is(err, ErrAborted) {
			res.Aborted = true
			return res, err
		} else {
			return res, err
		}
	}
	res.Recommendations = chosen
	if baseline > 0 {
		res.EstWorkloadImprovementPct = (baseline - finalCost) / baseline * 100
	}

	// Per-statement report + analyzed coverage.
	res.buildReports(db, session, workload, chosen)
	res.WhatIfCalls = session.Calls()
	res.StatsCreated = session.StatsCreated
	return res, nil
}

// acquireStatement obtains a parseable statement for a Query Store entry,
// applying the §5.3.2 text-recovery and rewriting tricks: truncated text
// is recovered from the plan cache, BULK INSERT is rewritten into an
// INSERT equivalent so index maintenance is costed, and statements that
// still cannot be parsed are reported as skipped (their cost counts
// against coverage).
func acquireStatement(db *engine.Database, q querystore.QueryCost) (sqlparser.Statement, StatementReport) {
	report := StatementReport{QueryHash: q.QueryHash, Text: q.Text, Executions: q.Executions}
	text := q.Text
	if q.Truncated {
		if full, ok := db.PlanCacheText(q.QueryHash); ok {
			text = full
		} else if full, ok := db.ModuleText(q.QueryHash); ok {
			// Stored procedure / function bodies live in system metadata
			// even when the plan cache was evicted (§5.3.2).
			text = full
		} else {
			report.Skipped = "truncated text not recoverable from plan cache or module metadata"
			return nil, report
		}
	}
	stmt, err := sqlparser.Parse(text)
	if err != nil {
		report.Skipped = fmt.Sprintf("unparseable: %v", err)
		return nil, report
	}
	if b, ok := stmt.(*sqlparser.BulkInsertStmt); ok {
		// Rewrite into an optimizable INSERT with the same row volume.
		stmt = rewriteBulkInsert(db, b)
		report.Rewritten = true
	}
	return stmt, report
}

// rewriteBulkInsert converts BULK INSERT into a representative multi-row
// INSERT that the what-if API can cost (§5.3.2).
func rewriteBulkInsert(db *engine.Database, b *sqlparser.BulkInsertStmt) sqlparser.Statement {
	t, ok := db.Table(b.Table)
	if !ok {
		return b
	}
	n := b.RowEstimate
	if n <= 0 {
		n = 1000
	}
	rows := make([]value.Row, n)
	proto := make(value.Row, len(t.Def.Columns))
	for i := range proto {
		proto[i] = value.NewInt(0)
	}
	for i := range rows {
		rows[i] = proto
	}
	return &sqlparser.InsertStmt{Table: t.Def.Name, Rows: rows}
}
