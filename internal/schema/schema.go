// Package schema defines the catalog metadata: tables, columns and index
// definitions. Index definitions carry the attributes the auto-indexing
// service reasons about — key vs. included columns, clustered vs.
// non-clustered, hypothetical (what-if) status, whether the index was
// auto-created by the service, and whether it is pinned by a query hint or
// enforces an application constraint (both of which make it ineligible for
// automatic drop, §5.4).
package schema

import (
	"errors"
	"fmt"
	"strings"

	"autoindex/internal/value"
)

// ErrColumnNotFound marks an index definition referencing a column its
// table no longer has. Schema migrations (column drops/renames) racing
// in-flight recommendations surface it through IndexDef.Validate; the
// control plane treats it as a well-known terminal condition rather
// than an incident (§8.3).
var ErrColumnNotFound = errors.New("schema: column not in table")

// Column describes one table column.
type Column struct {
	Name     string
	Kind     value.Kind
	Nullable bool
	// AvgWidth is the average storage width in bytes, used for index size
	// estimation and IO cost accounting.
	AvgWidth int
}

// Width returns the average width, defaulting by kind when unset.
func (c Column) Width() int {
	if c.AvgWidth > 0 {
		return c.AvgWidth
	}
	switch c.Kind {
	case value.Int, value.Time, value.Float:
		return 8
	case value.Bool:
		return 1
	case value.String:
		return 24
	default:
		return 8
	}
}

// Table describes a table: its columns and primary key. The primary key is
// the clustered index key (as in SQL Server's default).
type Table struct {
	Name    string
	Columns []Column
	// PrimaryKey lists column names forming the clustered key. Empty means
	// the table is a heap.
	PrimaryKey []string
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column and whether it exists.
func (t *Table) Column(name string) (Column, bool) {
	if i := t.ColumnIndex(name); i >= 0 {
		return t.Columns[i], true
	}
	return Column{}, false
}

// RowWidth returns the average row width in bytes.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.Width()
	}
	return w
}

// Validate checks internal consistency of the table definition.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("schema: table with empty name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("schema: table %s has no columns", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, c := range t.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("schema: table %s: duplicate column %s", t.Name, c.Name)
		}
		seen[lc] = true
	}
	for _, pk := range t.PrimaryKey {
		if t.ColumnIndex(pk) < 0 {
			return fmt.Errorf("schema: table %s: primary key column %s not found", t.Name, pk)
		}
	}
	return nil
}

// IndexKind distinguishes the physical shape of an index.
type IndexKind uint8

// Index kinds. The service manages non-clustered B+ tree indexes only
// (the paper's offering), but clustered indexes exist as the base storage.
const (
	NonClustered IndexKind = iota
	Clustered
)

func (k IndexKind) String() string {
	if k == Clustered {
		return "CLUSTERED"
	}
	return "NONCLUSTERED"
}

// IndexDef defines an index on a table.
type IndexDef struct {
	Name  string
	Table string
	Kind  IndexKind
	// KeyColumns are the ordered key columns.
	KeyColumns []string
	// IncludedColumns are carried in leaf entries but not part of the key.
	IncludedColumns []string
	Unique          bool

	// Hypothetical marks a what-if index: metadata + statistics only, no
	// data structure is built and the executor can never use it.
	Hypothetical bool
	// AutoCreated marks indexes created by the auto-indexing service; only
	// these are ever auto-reverted or force-dropped on conflict (§8.3).
	AutoCreated bool
	// Hinted marks indexes referenced by query hints or forced plans;
	// dropping one could break the application, so the drop analysis
	// excludes them (§5.4).
	Hinted bool
	// EnforcesConstraint marks indexes backing an application-specified
	// constraint (unique/foreign key); also excluded from drops.
	EnforcesConstraint bool
}

// Clone returns a deep copy of the definition.
func (d IndexDef) Clone() IndexDef {
	out := d
	out.KeyColumns = append([]string(nil), d.KeyColumns...)
	out.IncludedColumns = append([]string(nil), d.IncludedColumns...)
	return out
}

// AllColumns returns key columns followed by included columns.
func (d IndexDef) AllColumns() []string {
	out := make([]string, 0, len(d.KeyColumns)+len(d.IncludedColumns))
	out = append(out, d.KeyColumns...)
	out = append(out, d.IncludedColumns...)
	return out
}

// HasColumn reports whether col appears anywhere in the index.
func (d IndexDef) HasColumn(col string) bool {
	for _, c := range d.AllColumns() {
		if strings.EqualFold(c, col) {
			return true
		}
	}
	return false
}

// Covers reports whether the index contains every column in cols (as key or
// include), i.e. a query touching only cols needs no key lookup.
func (d IndexDef) Covers(cols []string) bool {
	for _, c := range cols {
		if !d.HasColumn(c) {
			return false
		}
	}
	return true
}

// KeyPrefixOf reports whether d's key columns are a (possibly equal) prefix
// of other's key columns, the merge condition used by conservative index
// merging (§5.2, [12]).
func (d IndexDef) KeyPrefixOf(other IndexDef) bool {
	if len(d.KeyColumns) > len(other.KeyColumns) {
		return false
	}
	for i, c := range d.KeyColumns {
		if !strings.EqualFold(c, other.KeyColumns[i]) {
			return false
		}
	}
	return true
}

// SameKey reports whether two indexes have identical key columns in
// identical order — the paper's definition of duplicate indexes (§5.4).
func (d IndexDef) SameKey(other IndexDef) bool {
	return d.KeyPrefixOf(other) && other.KeyPrefixOf(d)
}

// Signature returns a canonical textual form usable as a map key for
// structural deduplication.
func (d IndexDef) Signature() string {
	return strings.ToLower(d.Table) + "(" + strings.ToLower(strings.Join(d.KeyColumns, ",")) +
		") include(" + strings.ToLower(strings.Join(d.IncludedColumns, ",")) + ")"
}

// String renders the definition as DDL.
func (d IndexDef) String() string {
	var b strings.Builder
	b.WriteString("CREATE ")
	if d.Unique {
		b.WriteString("UNIQUE ")
	}
	b.WriteString(d.Kind.String())
	b.WriteString(" INDEX ")
	b.WriteString(d.Name)
	b.WriteString(" ON ")
	b.WriteString(d.Table)
	b.WriteString(" (")
	b.WriteString(strings.Join(d.KeyColumns, ", "))
	b.WriteString(")")
	if len(d.IncludedColumns) > 0 {
		b.WriteString(" INCLUDE (")
		b.WriteString(strings.Join(d.IncludedColumns, ", "))
		b.WriteString(")")
	}
	return b.String()
}

// Validate checks the index definition against its table.
func (d IndexDef) Validate(t *Table) error {
	if d.Name == "" {
		return fmt.Errorf("schema: index with empty name on %s", d.Table)
	}
	if len(d.KeyColumns) == 0 {
		return fmt.Errorf("schema: index %s has no key columns", d.Name)
	}
	seen := make(map[string]bool)
	for _, c := range d.AllColumns() {
		lc := strings.ToLower(c)
		if seen[lc] {
			return fmt.Errorf("schema: index %s: column %s repeated", d.Name, c)
		}
		seen[lc] = true
		if t.ColumnIndex(c) < 0 {
			return fmt.Errorf("%w: index %s: column %s not in table %s", ErrColumnNotFound, d.Name, c, t.Name)
		}
	}
	return nil
}

// EstimatedSizeBytes estimates the index size for rowCount rows: leaf
// entries hold key + include columns plus the clustered key (row locator),
// with ~40% B+ tree overhead.
func (d IndexDef) EstimatedSizeBytes(t *Table, rowCount int64) int64 {
	entry := 0
	for _, c := range d.AllColumns() {
		if col, ok := t.Column(c); ok {
			entry += col.Width()
		}
	}
	for _, pk := range t.PrimaryKey {
		if !d.HasColumn(pk) {
			if col, ok := t.Column(pk); ok {
				entry += col.Width()
			}
		}
	}
	if entry == 0 {
		entry = 8
	}
	return int64(float64(entry)*1.4) * rowCount
}
