package fleet

import "autoindex/internal/metrics"

// Fleet-level instrumentation. Everything except worker-shard
// throughput is updated serially at hour barriers (or counted with
// commutative atomic adds inside the parallel section), so the values
// are identical at any -workers count. Shard throughput is the one
// legitimately scheduling-dependent metric: it is marked volatile and
// therefore excluded from the deterministic snapshot, appearing only in
// the full /metrics exposition.
var (
	descTenants = metrics.NewGaugeDesc("fleet.tenants",
		"databases currently in the fleet")
	descTenantHours = metrics.NewCounterDesc("fleet.tenant_hours",
		"tenant-hours of workload replayed")
	descFailovers = metrics.NewCounterDesc("fleet.failovers",
		"simulated server failovers (MI DMV resets)")
	descTenantsGrown = metrics.NewCounterDesc("fleet.tenants_grown",
		"databases added mid-run by fleet growth")
	descWorkerItems = metrics.NewHistogramDesc("fleet.worker_shard_items",
		"items processed per worker slot per parallel section (shard throughput)",
		1, 2, 4, 8, 16, 32, 64, 128, 256, 1_024).MarkVolatile()

	// Scale-mode residency instrumentation. All four move only in the
	// serial barrier sections, so for a fixed flag set they are identical
	// at any -workers count. They do depend on -resident-tenants (that is
	// what they measure), which is why the scale determinism contract
	// compares the tenant stream and tuning outcomes across caps, not the
	// metrics snapshot.
	descHibernations = metrics.NewCounterDesc("fleet.hibernations",
		"tenants serialized to hibernated form at hour barriers")
	descRehydrations = metrics.NewCounterDesc("fleet.rehydrations",
		"hibernated tenants rebuilt in place for an active hour")
	descResidentTenants = metrics.NewGaugeDesc("fleet.resident_tenants",
		"tenants fully materialized after the latest hour barrier")
	descSnapshotBytes = metrics.NewCounterDesc("fleet.snapshot_bytes",
		"cumulative bytes of hibernated tenant snapshots written")
)
