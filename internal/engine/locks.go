package engine

import (
	"fmt"
	"sync"
	"time"

	"autoindex/internal/sim"
)

// LockManager models SQL Server's FIFO schema-lock scheduler at table
// granularity, including the managed lock priorities [43] the service uses
// to drop indexes without creating lock convoys (§8.3).
//
// Statement execution takes a shared schema lock; dropping an index takes
// an exclusive one. Because the real scheduler is FIFO, a *normal*
// priority exclusive request queued behind long-running shared holders
// blocks every later shared request — the convoy. A *low* priority request
// instead waits only while no shared holders exist and times out without
// ever blocking anyone.
//
// The simulation runs statements instantaneously in virtual time, so
// long-running holders are modelled explicitly: the workload replayer
// registers them with HoldShared(table, until).
type LockManager struct {
	clock sim.Clock
	mu    sync.Mutex
	locks map[string]*tableLock
}

type tableLock struct {
	// sharedUntil holds the release times of long-running shared holders.
	sharedUntil []time.Time
	// exclusiveWaiter is set while a normal-priority exclusive request is
	// queued (FIFO: it blocks later shared requests).
	exclusiveWaiter bool
}

// ErrLockTimeout is returned when a low-priority lock request gives up.
var ErrLockTimeout = fmt.Errorf("engine: lock request timed out at low priority")

// NewLockManager returns a lock manager on the given clock.
func NewLockManager(clock sim.Clock) *LockManager {
	return &LockManager{clock: clock, locks: make(map[string]*tableLock)}
}

func (lm *LockManager) lock(table string) *tableLock {
	l := lm.locks[lowerKey(table)]
	if l == nil {
		l = &tableLock{}
		lm.locks[lowerKey(table)] = l
	}
	return l
}

func lowerKey(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

// HoldShared registers a long-running shared schema lock holder (a long
// query or transaction) that releases at the given virtual time.
func (lm *LockManager) HoldShared(table string, until time.Time) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.lock(table).sharedUntil = append(lm.lock(table).sharedUntil, until)
}

// activeShared counts holders that have not yet released.
func (l *tableLock) activeShared(now time.Time) int {
	n := 0
	kept := l.sharedUntil[:0]
	for _, u := range l.sharedUntil {
		if u.After(now) {
			kept = append(kept, u)
			n++
		}
	}
	l.sharedUntil = kept
	return n
}

// SharedBlocked reports whether a new shared request on table would block
// right now (i.e., a normal-priority exclusive request is queued ahead of
// it). The engine counts such statements as convoy victims.
func (lm *LockManager) SharedBlocked(table string) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	l := lm.lock(table)
	return l.exclusiveWaiter && l.activeShared(lm.clock.Now()) > 0
}

// AcquireExclusive acquires an exclusive schema lock on table.
//
// With lowPriority=false it queues FIFO: if shared holders are active the
// caller "waits" (virtual time advances to the last holder's release) and
// every statement arriving meanwhile is blocked behind it — the caller
// learns how long it waited. With lowPriority=true it never blocks others:
// if shared holders are still active after timeout, ErrLockTimeout is
// returned and the caller is expected to back off and retry (§8.3).
// Release the returned func promptly; exclusive work is instantaneous in
// virtual time.
func (lm *LockManager) AcquireExclusive(table string, lowPriority bool, timeout time.Duration) (release func(), waited time.Duration, err error) {
	lm.mu.Lock()
	l := lm.lock(table)
	now := lm.clock.Now()
	active := l.activeShared(now)
	if active == 0 {
		lm.mu.Unlock()
		return func() {}, 0, nil
	}
	if lowPriority {
		// Wait up to timeout without entering the FIFO queue.
		var latest time.Time
		for _, u := range l.sharedUntil {
			if u.After(latest) {
				latest = u
			}
		}
		wait := latest.Sub(now)
		if wait > timeout {
			lm.mu.Unlock()
			// The caller burns its timeout waiting, then gives up.
			lm.clock.Sleep(timeout)
			return nil, timeout, ErrLockTimeout
		}
		lm.mu.Unlock()
		lm.clock.Sleep(wait)
		return func() {}, wait, nil
	}
	// Normal priority: enter the FIFO queue, blocking later shared
	// requests, and wait for the holders to release. Holders release when
	// virtual time passes their deadline, so this polls until some other
	// goroutine advances the clock (in a single-threaded simulation a
	// normal-priority drop behind a long holder would genuinely stall — the
	// reason the service always drops at low priority, §8.3).
	l.exclusiveWaiter = true
	start := now
	lm.mu.Unlock()
	for {
		lm.mu.Lock()
		cur := lm.clock.Now()
		if l.activeShared(cur) == 0 {
			waited = cur.Sub(start)
			lm.mu.Unlock()
			break
		}
		lm.mu.Unlock()
		//lint:ignore wallclock real-time backoff while polling for another goroutine to advance the virtual clock; waited is measured in virtual time
		time.Sleep(200 * time.Microsecond)
	}
	return func() {
		lm.mu.Lock()
		l.exclusiveWaiter = false
		lm.mu.Unlock()
	}, waited, nil
}
