package engine

import (
	"testing"

	"autoindex/internal/schema"
)

func TestRenameColumnFollowsUserIndexesDropsAuto(t *testing.T) {
	d, _ := testDB(t)
	auto := schema.IndexDef{Name: "auto_ix_amount", Table: "orders", KeyColumns: []string{"amount"}, AutoCreated: true}
	if err := d.CreateIndex(auto, IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}
	user := schema.IndexDef{Name: "user_ix_status", Table: "orders", KeyColumns: []string{"status"}}
	if err := d.CreateIndex(user, IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}

	// A user index follows the customer's rename; the renamed column is
	// immediately queryable through it.
	if err := d.RenameColumn("orders", "status", "state"); err != nil {
		t.Fatalf("rename failed: %v", err)
	}
	def, ok := d.IndexDef("user_ix_status")
	if !ok || len(def.KeyColumns) != 1 || def.KeyColumns[0] != "state" {
		t.Fatalf("user index did not follow the rename: %+v (ok=%v)", def, ok)
	}
	res := mustExec(t, d, `SELECT COUNT(*) FROM orders WHERE state = 'open'`)
	if res.Rows[0][0].I != 400 {
		t.Fatalf("renamed column unqueryable: %v", res.Rows[0][0])
	}
	if _, err := d.Exec(`SELECT COUNT(*) FROM orders WHERE status = 'open'`); err == nil {
		t.Fatal("old column name still resolves after rename")
	}

	// An auto index on the renamed column is force-dropped instead — the
	// §8.3 cascade: service-owned state never blocks a customer ALTER.
	if err := d.RenameColumn("orders", "amount", "total"); err != nil {
		t.Fatalf("rename failed: %v", err)
	}
	if _, ok := d.IndexDef("auto_ix_amount"); ok {
		t.Fatal("auto index should have been force-dropped by the rename")
	}

	if err := d.RenameColumn("orders", "no_such", "x"); err == nil {
		t.Fatal("renaming a missing column must fail")
	}
	if err := d.RenameColumn("orders", "state", "total"); err == nil {
		t.Fatal("renaming onto an existing column must fail")
	}
}
