// Package mi implements the Missing-Indexes-based index recommender
// (§5.2). It periodically snapshots the volatile MI DMVs (tolerating
// resets from failovers and schema changes), accumulates each candidate's
// impact score over time, requires a statistically significant positive
// impact slope (a t-test on the regression slope) before recommending,
// performs conservative index merging, filters ad-hoc and low-impact
// candidates with a classifier trained on past validation outcomes, and
// returns the top-k candidates.
package mi

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/dmv"
	"autoindex/internal/engine"
	"autoindex/internal/mathx"
	"autoindex/internal/schema"
)

// Config tunes the recommender.
type Config struct {
	// MinSeeks filters candidates triggered by too few optimizations
	// (ad-hoc queries).
	MinSeeks int64
	// MinSnapshots is the minimum number of snapshot points before the
	// slope test can pass ("a few data points are sufficient").
	MinSnapshots int
	// SlopeAlpha is the one-sided significance level for the impact-slope
	// t-test.
	SlopeAlpha float64
	// SlopeWindow caps the slope test to the most recent snapshots, so a
	// candidate whose workload stopped long ago stops being recommended
	// even though its all-time history trends upward.
	SlopeWindow int
	// TopK caps how many candidates one analysis returns.
	TopK int
	// MaxIncludeColumns bounds include lists.
	MaxIncludeColumns int
	// ClassifierThreshold is the minimum classifier score to keep a
	// candidate; 0 disables the classifier (ablation).
	ClassifierThreshold float64
	// DisableSlopeTest and DisableMerging support the ablation benchmarks.
	DisableSlopeTest bool
	DisableMerging   bool
}

// DefaultConfig returns production-like settings.
func DefaultConfig() Config {
	return Config{
		MinSeeks:            5,
		MinSnapshots:        3,
		SlopeAlpha:          0.05,
		SlopeWindow:         10,
		TopK:                5,
		MaxIncludeColumns:   3,
		ClassifierThreshold: 0.30,
	}
}

// snapPoint is one snapshot observation of a candidate's cumulative score.
type snapPoint struct {
	at    time.Time
	score float64
}

// history tracks one candidate across snapshots, compensating for DMV
// resets: when the raw score drops, a reset happened and the previous
// cumulative total becomes an offset.
type history struct {
	entry   *dmv.Entry
	offset  float64
	lastRaw float64
	points  []snapPoint
	seeks   int64
}

// Recommender is the MI-based recommender for one database.
type Recommender struct {
	cfg Config
	db  *engine.Database

	mu        sync.Mutex
	histories map[string]*history
	// classifier filters low-impact candidates; trained from validation
	// outcomes via TrainFromValidation.
	classifier *mathx.Logistic
	snapshots  int
}

// New returns a recommender over db with its own classifier.
func New(db *engine.Database, cfg Config) *Recommender {
	return NewWithClassifier(db, cfg, mathx.NewLogistic(4))
}

// NewWithClassifier returns a recommender sharing clf with other
// databases. The paper trains the low-impact classifier on validation
// outcomes across the whole fleet ("hundreds of thousands of databases",
// §5.2), so the control plane passes one classifier to every database's
// recommender. Access is serialized by the control plane's service loop.
func NewWithClassifier(db *engine.Database, cfg Config, clf *mathx.Logistic) *Recommender {
	if cfg.TopK == 0 {
		cfg = DefaultConfig()
	}
	return &Recommender{
		cfg:        cfg,
		db:         db,
		histories:  make(map[string]*history),
		classifier: clf,
	}
}

// TakeSnapshot reads the MI DMVs and folds them into the per-candidate
// histories. The control plane calls this on a schedule (§5.2).
func (r *Recommender) TakeSnapshot() {
	now := r.db.Clock().Now()
	snap := r.db.MissingIndexDMV().Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snapshots++
	for _, e := range snap {
		k := e.Candidate.Key()
		h := r.histories[k]
		if h == nil {
			h = &history{}
			r.histories[k] = h
		}
		raw := e.Score()
		if raw < h.lastRaw {
			// The DMV reset since the last snapshot; bank what we had.
			h.offset += h.lastRaw
		}
		h.lastRaw = raw
		h.entry = e
		h.seeks = e.Seeks // seeks also reset; keep the max epoch
		h.points = append(h.points, snapPoint{at: now, score: h.offset + raw})
	}
}

// Snapshots reports how many snapshots have been taken.
func (r *Recommender) Snapshots() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshots
}

// Recommend runs the full §5.2 pipeline and returns up to TopK candidates.
func (r *Recommender) Recommend() []core.Candidate {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg := r.db.Metrics()
	reg.Counter(descPasses).Inc()
	start := r.db.Clock().Now()
	defer func() {
		reg.Histogram(descPassMillis).ObserveDuration(r.db.Clock().Now().Sub(start))
	}()
	// Walk histories in sorted-key order: candidate order feeds merging
	// and the final impact sort's tie-breaking, so map iteration here
	// would make the top-k set vary run to run.
	hkeys := make([]string, 0, len(r.histories))
	for k := range r.histories {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	var cands []core.Candidate
	for _, k := range hkeys {
		h := r.histories[k]
		if h.entry == nil {
			continue
		}
		// Step 3: filter candidates with very few triggering optimizations.
		if h.seeks < r.cfg.MinSeeks {
			continue
		}
		// Step 4: statistically robust positive impact gradient.
		if !r.cfg.DisableSlopeTest && !r.slopePasses(h) {
			continue
		}
		c, ok := r.buildCandidate(h)
		if !ok {
			continue
		}
		cands = append(cands, c)
	}
	generated := int64(len(cands))
	reg.Counter(descCandidatesGenerated).Add(generated)
	defer func() {
		// Everything between candidate construction and the returned
		// top-k — merging, existing-index dedup, classifier, the cut —
		// counts as pruning.
		reg.Counter(descCandidatesPruned).Add(generated - int64(len(cands)))
	}()
	// Step 5: conservative merging.
	if !r.cfg.DisableMerging {
		cands = core.ConservativeMerge(cands)
	}
	// Drop candidates structurally identical to an existing index.
	cands = r.filterExisting(cands)
	// Classifier filter for low actual impact.
	if r.cfg.ClassifierThreshold > 0 {
		kept := cands[:0]
		for _, c := range cands {
			if r.classifier.Seen < 20 || r.classifier.Predict(c.Features, r.cfg.ClassifierThreshold) {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	// Top-k by impact; ties broken by name so the cut at TopK is stable.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].EstImprovement != cands[j].EstImprovement {
			return cands[i].EstImprovement > cands[j].EstImprovement
		}
		return cands[i].Def.Name < cands[j].Def.Name
	})
	if len(cands) > r.cfg.TopK {
		cands = cands[:r.cfg.TopK]
	}
	return cands
}

// slopePasses runs the t-test on the cumulative score slope (§5.2 step 4).
func (r *Recommender) slopePasses(h *history) bool {
	pts := h.points
	if w := r.cfg.SlopeWindow; w > 0 && len(pts) > w {
		pts = pts[len(pts)-w:]
	}
	if len(pts) < r.cfg.MinSnapshots {
		return false
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	t0 := pts[0].at
	for i, p := range pts {
		xs[i] = p.at.Sub(t0).Hours()
		ys[i] = p.score
	}
	return mathx.SlopeSignificantlyPositive(xs, ys, r.cfg.SlopeAlpha)
}

// buildCandidate converts a DMV entry into an index definition following
// §5.2 step 1: EQUALITY columns become keys (most selective first), one
// INEQUALITY column becomes the trailing key, the rest are included.
func (r *Recommender) buildCandidate(h *history) (core.Candidate, bool) {
	e := h.entry
	t, ok := r.db.Table(e.Candidate.Table)
	if !ok {
		return core.Candidate{}, false // table dropped since
	}
	keys := append([]string(nil), e.Candidate.Equality...)
	sort.SliceStable(keys, func(i, j int) bool {
		return r.distinct(e.Candidate.Table, keys[i]) > r.distinct(e.Candidate.Table, keys[j])
	})
	include := append([]string(nil), e.Candidate.Include...)
	if len(e.Candidate.Inequality) > 0 {
		// Pick the most selective inequality column as the trailing key;
		// the rest become includes (§5.2: the choice is deferred to
		// merging, we use selectivity as the tie-break).
		ineq := append([]string(nil), e.Candidate.Inequality...)
		sort.SliceStable(ineq, func(i, j int) bool {
			return r.distinct(e.Candidate.Table, ineq[i]) > r.distinct(e.Candidate.Table, ineq[j])
		})
		keys = append(keys, ineq[0])
		include = append(include, ineq[1:]...)
	}
	if len(keys) == 0 {
		return core.Candidate{}, false
	}
	if len(include) > r.cfg.MaxIncludeColumns {
		include = include[:r.cfg.MaxIncludeColumns]
	}
	def := schema.IndexDef{
		Name:            autoIndexName(e.Candidate.Table, keys),
		Table:           t.Def.Name,
		KeyColumns:      keys,
		IncludedColumns: dedupeExcluding(include, keys),
		AutoCreated:     true,
	}
	size := def.EstimatedSizeBytes(t.Def, t.RowCount)
	imp := h.points[len(h.points)-1].score
	var impacted []uint64
	for q := range e.QueryHashes {
		impacted = append(impacted, q)
	}
	sort.Slice(impacted, func(i, j int) bool { return impacted[i] < impacted[j] })
	feats := []float64{
		e.AvgImprovementPct / 100,
		math.Log1p(float64(h.seeks)),
		math.Log1p(float64(t.RowCount)),
		math.Log1p(float64(size)),
	}
	return core.Candidate{
		Def:               def,
		EstImprovement:    imp,
		EstImprovementPct: e.AvgImprovementPct,
		EstSizeBytes:      size,
		ImpactedQueries:   impacted,
		Source:            core.SourceMI,
		Features:          feats,
	}, true
}

func dedupeExcluding(cols, exclude []string) []string {
	seen := make(map[string]bool)
	for _, c := range exclude {
		seen[strings.ToLower(c)] = true
	}
	var out []string
	for _, c := range cols {
		lc := strings.ToLower(c)
		if !seen[lc] {
			seen[lc] = true
			out = append(out, c)
		}
	}
	return out
}

func (r *Recommender) distinct(table, col string) float64 {
	if st, ok := r.db.ColumnStats(table, col); ok && st != nil {
		return st.Distinct
	}
	return 1
}

// filterExisting removes candidates whose key columns duplicate an
// existing index on the same table.
func (r *Recommender) filterExisting(cands []core.Candidate) []core.Candidate {
	existing := r.db.IndexDefs()
	out := cands[:0]
	for _, c := range cands {
		dup := false
		for _, e := range existing {
			if strings.EqualFold(e.Table, c.Def.Table) && e.SameKey(c.Def) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// autoIndexName builds the service's deterministic index naming scheme.
func autoIndexName(table string, keys []string) string {
	name := "auto_ix_" + strings.ToLower(table)
	for _, k := range keys {
		name += "_" + strings.ToLower(k)
	}
	if len(name) > 96 {
		name = name[:96]
	}
	return name
}

// TrainFromValidation feeds a validation outcome back into the low-impact
// classifier (§5.2: "we use data from previous index validations ... to
// train a classifier").
func (r *Recommender) TrainFromValidation(features []float64, improved bool) {
	if len(features) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classifier.Train(features, improved)
}

// ClassifierSeen reports how many validation outcomes trained the
// classifier.
func (r *Recommender) ClassifierSeen() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.classifier.Seen
}

// Coverage computes MI workload coverage (§5.2): everything except
// inserts, and updates/deletes without predicates.
func (r *Recommender) Coverage(since time.Time) core.Coverage {
	var cov core.Coverage
	for _, q := range r.db.QueryStore().Costs(since) {
		cov.TotalCPU += q.TotalCPU
		// HasWritePredicates was classified from the parsed statement at
		// Query Store ingestion, so truncated text cannot misclassify a
		// write here.
		if q.IsWrite && !q.HasWritePredicates {
			continue
		}
		cov.AnalyzedCPU += q.TotalCPU
	}
	return cov
}

// String describes the recommender state.
func (r *Recommender) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("mi.Recommender(candidates=%d snapshots=%d classifierSeen=%d)",
		len(r.histories), r.snapshots, r.classifier.Seen)
}
