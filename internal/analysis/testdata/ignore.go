// Suppression fixtures: //lint:ignore directives flow through the same
// pipeline the driver and cmd/lint share, so these assert end-to-end
// filtering.
package fixture

import "errors"

var errSentinel = errors.New("sentinel")

// suppressedAbove: a directive on the line above covers the finding.
func suppressedAbove(err error) bool {
	//lint:ignore errcompare fixture demonstrates standalone suppression
	return err == errSentinel
}

// suppressedTrailing: a trailing directive covers its own line.
func suppressedTrailing(err error) bool {
	return err == errSentinel //lint:ignore errcompare trailing directives cover their own line
}

// suppressedAll: "all" suppresses every check on the site.
func suppressedAll(err error) bool {
	//lint:ignore all blanket suppression for fixture coverage
	return err == errSentinel
}

// wrongCheck: a directive naming a different check does not suppress.
func wrongCheck(err error) bool {
	//lint:ignore wallclock directive names the wrong check
	return err == errSentinel // want "errcompare: error compared with == against sentinel errSentinel"
}

// gapLine: a directive two lines up is out of range and does not
// suppress.
func gapLine(err error) bool {
	//lint:ignore errcompare directives reach only one line down

	return err == errSentinel // want "errcompare: error compared with == against sentinel errSentinel"
}
