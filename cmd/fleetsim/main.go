// Command fleetsim regenerates the paper's evaluation tables and figures
// against simulated fleets:
//
//	fleetsim -experiment fig6 -tier premium -databases 20   // Fig 6(a)
//	fleetsim -experiment fig6 -tier standard -databases 20  // Fig 6(b)
//	fleetsim -experiment opstats -databases 12 -days 10     // §8.1 operational stats
//	fleetsim -experiment reverts -databases 12 -days 10     // §8.1 revert analysis
//	fleetsim -experiment scale -tenants 100000 -hours 24    // 100k-tenant scale mode
//	fleetsim -experiment scenarios -scenario all            // adversarial scenario pack
//
// Scenario mode runs the internal/scenario adversarial generators
// (workload drift, mid-run schema migration, flash-crowd bursts, noisy
// neighbors) and emits one invariant verdict per scenario; -verdicts-out
// writes the verdicts as stable JSON (the contract cmd/benchdiff diffs),
// -seeds N sweeps N consecutive base seeds for nightly soak runs, and
// the exit status is 1 when any verdict fails.
//
// Scale mode stamps tenants copy-on-write from shared archetypes,
// hibernates idle tenants past the -resident-tenants cap, and streams one
// line per tenant as it completes; see ARCHITECTURE.md "Fleet at scale".
//
// Tenants are sharded across a worker pool (-workers, default one per
// CPU); results are bit-identical at any worker count for the same seed,
// so scale the pool freely. Per-phase wall-clock timing goes to stderr —
// stdout carries only the deterministic experiment output, and can be
// diffed across runs. -cpuprofile writes a pprof profile for hot-path
// work.
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not Azure), but the shape — who wins where, the revert rate band, the
// drop:create recommendation ratio — should hold. See EXPERIMENTS.md.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/experiment"
	"autoindex/internal/fleet"
	"autoindex/internal/scenario"
)

func main() {
	var (
		exp        = flag.String("experiment", "fig6", "fig6 | opstats | reverts | scale | scenarios")
		scenName   = flag.String("scenario", "all", "scenarios mode: one scenario name, or all")
		seedSweep  = flag.Int("seeds", 1, "scenarios mode: number of consecutive base seeds to sweep")
		verdictOut = flag.String("verdicts-out", "", "scenarios mode: write verdict JSON to this file (stable bytes for a given seed at any -workers)")
		tierStr    = flag.String("tier", "premium", "fig6 tier: premium | standard")
		databases  = flag.Int("databases", 12, "fleet size (fig6/opstats/reverts)")
		days       = flag.Int("days", 10, "virtual days (opstats/reverts)")
		tenants    = flag.Int("tenants", 100_000, "scale-mode fleet size")
		hours      = flag.Int("hours", 24, "scale-mode virtual hours")
		archetypes = flag.Int("archetypes", 4, "scale-mode tenant archetypes")
		residents  = flag.Int("resident-tenants", 4096, "scale-mode resident-set cap (<=0: unlimited, hibernation off)")
		activeFrac = flag.Float64("active-fraction", 0.002, "scale-mode per-tenant per-hour activity probability")
		dataScale  = flag.Float64("scale", 1.0, "scale-mode archetype data-size multiplier (smaller = faster, lighter tenants)")
		seed       = flag.Int64("seed", 20170301, "fleet seed")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "tenant worker pool size (results are identical at any value)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		chaosOn    = flag.Bool("chaos", false, "inject seeded faults (opstats/reverts only) and audit invariants")
		faultRate  = flag.Float64("chaos-fault-rate", 0.05, "per-opportunity probability of engine/telemetry/querystore faults")
		crashRate  = flag.Float64("chaos-crash-rate", 0.02, "per-save probability of each control-plane crash point")
		metricsOut = flag.String("metrics-out", "", "write the run's deterministic metrics snapshot (JSON) to this file; byte-identical for a given seed at any -workers")
	)
	flag.Parse()

	chaos := fleet.ChaosConfig{Enabled: *chaosOn, FaultRate: *faultRate, CrashRate: *crashRate}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	switch strings.ToLower(*exp) {
	case "fig6":
		if chaos.Enabled {
			fmt.Fprintln(os.Stderr, "fleetsim: -chaos applies to opstats/reverts, not fig6")
			os.Exit(2)
		}
		runFig6(*tierStr, *databases, *seed, *workers, *metricsOut)
	case "opstats":
		runOps(*databases, *days, *seed, *workers, false, chaos, *metricsOut)
	case "reverts":
		runOps(*databases, *days, *seed, *workers, true, chaos, *metricsOut)
	case "scale":
		runScale(*tenants, *hours, *archetypes, *residents, *activeFrac, *dataScale, *seed, *workers, chaos, *metricsOut)
	case "scenarios":
		runScenarios(*scenName, *seed, *seedSweep, *workers, chaos.Enabled, *verdictOut)
	default:
		fmt.Fprintf(os.Stderr, "fleetsim: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// phaseTimer reports per-phase wall-clock durations on stderr, keeping
// stdout byte-identical across worker counts.
type phaseTimer struct {
	label string
	start time.Time
}

func startPhase(label string) *phaseTimer {
	//lint:ignore wallclock phase timing is operator diagnostics on stderr; simulated state never reads it
	return &phaseTimer{label: label, start: time.Now()}
}

func (p *phaseTimer) done() {
	//lint:ignore wallclock,detflow phase timing is operator diagnostics on stderr; simulated state never reads it and stderr is not diffed
	fmt.Fprintf(os.Stderr, "fleetsim: phase %-8s %8.2fs\n", p.label, time.Since(p.start).Seconds())
}

// writeMetrics writes the fleet's non-volatile metrics snapshot. The
// bytes depend only on the seed and the experiment — never on -workers
// or wall time — so the file can be diffed across runs like stdout.
func writeMetrics(fl *fleet.Fleet, path string) {
	if path == "" {
		return
	}
	b, err := fl.Metrics.MarshalDeterministic()
	if err == nil {
		err = os.WriteFile(path, b, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim: metrics-out:", err)
		os.Exit(1)
	}
}

func runFig6(tierStr string, databases int, seed int64, workers int, metricsOut string) {
	var tier engine.Tier
	switch strings.ToLower(tierStr) {
	case "premium":
		tier = engine.TierPremium
	case "standard":
		tier = engine.TierStandard
	default:
		fmt.Fprintf(os.Stderr, "fleetsim: fig6 tier must be premium or standard\n")
		os.Exit(2)
	}
	fmt.Printf("Fig 6 experiment: %d %s-tier databases, B-instance phases, N=20 k=5 (seed %d)\n\n",
		databases, tier, seed)
	build := startPhase("build")
	fl, err := fleet.Build(fleet.Spec{Databases: databases, Tier: tier, Seed: seed, UserIndexes: true, Workers: workers})
	build.done()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	run := startPhase("run")
	sum := fl.RunFig6(tier.String(), experiment.DefaultFig6Config())
	run.done()
	writeMetrics(fl, metricsOut)
	fmt.Println(sum.String())
	fmt.Println("paper reference — premium: DTA 42% / MI 13% / User 15% / Comparable ~42%;")
	fmt.Println("                  standard: DTA 27% / MI 6% / User 10% / Comparable ~45%;")
	fmt.Println("                  avg improvement: DTA ~82%, MI ~72%, User ~35% (§7.3)")
}

// runScale drives the 100k+-tenant scale mode. Per-tenant completion
// lines stream to stdout as tenants finish, followed by the deterministic
// summary; residency counters (which measure the hibernation machinery
// and depend on -resident-tenants and the host) go to stderr with the
// phase timers. stdout is byte-identical at any -workers count and any
// -resident-tenants cap for the same seed and flags.
func runScale(tenants, hours, archetypes, residents int, activeFrac, dataScale float64, seed int64, workers int, chaos fleet.ChaosConfig, metricsOut string) {
	fmt.Printf("fleet scale mode: %d tenants, %d archetypes, %d virtual hours (seed %d)\n\n",
		tenants, archetypes, hours, seed)
	spec := fleet.DefaultScaleSpec(tenants, hours)
	spec.Archetypes = archetypes
	spec.ResidentTenants = residents
	spec.ActiveFraction = activeFrac
	spec.Scale = dataScale
	spec.Seed = seed
	spec.Workers = workers
	spec.Chaos = chaos
	out := bufio.NewWriterSize(os.Stdout, 1<<16)
	spec.Stream = out
	run := startPhase("run")
	res, err := fleet.RunScale(spec)
	run.done()
	if err != nil {
		out.Flush()
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, res.Report())
	if res.Chaos != nil {
		fmt.Fprintln(out)
		fmt.Fprint(out, res.Chaos.Format())
	}
	out.Flush()
	fmt.Fprint(os.Stderr, res.ResidencyReport())
	if metricsOut != "" {
		b, err := res.Metrics.MarshalDeterministic()
		if err == nil {
			err = os.WriteFile(metricsOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: metrics-out:", err)
			os.Exit(1)
		}
	}
	// An invariant violation is a failed run, not a footnote: the chaos
	// audit must gate the exit status.
	if res.Chaos != nil && len(res.Chaos.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: %d invariant violations\n", len(res.Chaos.Violations))
		os.Exit(1)
	}
}

// runScenarios drives the adversarial scenario pack. Output is
// deterministic for a given base seed at any -workers; a failing
// verdict (or a fleet error) exits non-zero so CI can gate on it.
func runScenarios(which string, seed int64, sweep, workers int, chaos bool, verdictsOut string) {
	var scens []scenario.Scenario
	if strings.EqualFold(which, "all") {
		scens = scenario.All()
	} else {
		s, ok := scenario.Get(which)
		if !ok {
			fmt.Fprintf(os.Stderr, "fleetsim: unknown scenario %q (have %s, or all)\n",
				which, strings.Join(scenario.Names(), ", "))
			os.Exit(2)
		}
		scens = []scenario.Scenario{s}
	}
	if sweep < 1 {
		sweep = 1
	}
	fmt.Printf("adversarial scenario pack: %d scenario(s), %d base seed(s) from %d, chaos %v\n\n",
		len(scens), sweep, seed, chaos)

	var verdicts []scenario.Verdict
	failed := 0
	for i := 0; i < sweep; i++ {
		base := seed + int64(i)
		for _, s := range scens {
			ph := startPhase(s.Name())
			r, err := s.Run(scenario.Options{Seed: base, Workers: workers, Chaos: chaos})
			ph.done()
			if err != nil {
				fmt.Fprintf(os.Stderr, "fleetsim: scenario %s (seed %d): %v\n", s.Name(), base, err)
				os.Exit(1)
			}
			verdicts = append(verdicts, r.Verdict)
			if !r.Verdict.Pass {
				failed++
			}
			if sweep == 1 {
				fmt.Println(r.Report)
			} else {
				// Sweeps keep one line per run so a 200-seed soak stays
				// readable; the full evidence lands in -verdicts-out.
				status := "PASS"
				if !r.Verdict.Pass {
					status = "FAIL"
				}
				fmt.Printf("seed %-12d %-18s %s\n", base, s.Name(), status)
			}
		}
	}
	if verdictsOut != "" {
		b, err := scenario.MarshalVerdicts(verdicts)
		if err == nil {
			err = os.WriteFile(verdictsOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: verdicts-out:", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Printf("\nFAIL: %d of %d scenario runs failed their invariant verdict\n", failed, len(verdicts))
		os.Exit(1)
	}
	fmt.Printf("\nok: all %d scenario runs passed their invariant verdicts\n", len(verdicts))
}

func runOps(databases, days int, seed int64, workers int, revertFocus bool, chaos fleet.ChaosConfig, metricsOut string) {
	fmt.Printf("§8.1 operational simulation: %d mixed-tier databases, %d virtual days (seed %d)\n\n",
		databases, days, seed)
	if chaos.Enabled {
		fmt.Printf("chaos mode: fault rate %.3f, crash rate %.3f\n\n", chaos.FaultRate, chaos.CrashRate)
	}
	build := startPhase("build")
	fl, err := fleet.Build(fleet.Spec{Databases: databases, MixedTiers: true, Seed: seed, UserIndexes: true, Workers: workers})
	build.done()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	cfg := fleet.DefaultOpsConfig()
	cfg.Days = days
	cfg.NewTenantEvery = 72 * time.Hour
	cfg.Chaos = chaos
	if revertFocus {
		// Everyone auto-implements so the revert statistics have volume.
		cfg.AutoImplementFraction = 1.0
	}
	run := startPhase("run")
	res, err := fl.RunOps(fleet.Spec{Seed: seed, UserIndexes: true}, cfg)
	run.done()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	writeMetrics(fl, metricsOut)
	if revertFocus {
		fmt.Print(res.RevertReport())
	} else {
		fmt.Print(res.Report())
	}
	if res.Chaos != nil {
		fmt.Println()
		fmt.Print(res.Chaos.Format())
	}
	// An invariant violation is a failed run, not a footnote: the audit
	// (chaos mode always runs it) must gate the exit status.
	if res.Audited && len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: %d invariant violations\n", len(res.Violations))
		os.Exit(1)
	}
}
