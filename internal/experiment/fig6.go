package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"autoindex/internal/binstance"
	"autoindex/internal/engine"
	"autoindex/internal/mathx"
	"autoindex/internal/querystore"
	"autoindex/internal/recommend/dta"
	"autoindex/internal/recommend/mi"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/workload"
)

// Winner labels the Fig. 6 pie slices.
type Winner string

// Fig. 6 outcome classes.
const (
	WinnerDTA        Winner = "DTA"
	WinnerMI         Winner = "MI"
	WinnerUser       Winner = "User"
	WinnerComparable Winner = "Comparable"
)

// Fig6Config parameterises the §7.3 experiment.
type Fig6Config struct {
	// N and K are the user-emulation parameters: among the N most
	// beneficial existing non-clustered indexes, a random k are dropped
	// and treated as the user's tuning (§7.3 used N=20, k=5).
	N, K int
	// PhaseDuration is how long each measurement phase runs ("more than a
	// day" in the paper).
	PhaseDuration time.Duration
	// PhaseStatements is how many statements execute per phase.
	PhaseStatements int
	// Alpha is the significance level for phase comparisons.
	Alpha float64
	// MinWinMargin is the relative CPU improvement a winner must have over
	// the runner-up; below it the database counts as Comparable.
	MinWinMargin float64
	BInstance    binstance.Config
}

// DefaultFig6Config mirrors the paper's parameters at simulation scale.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		N:               20,
		K:               5,
		PhaseDuration:   26 * time.Hour,
		PhaseStatements: 900,
		Alpha:           0.05,
		MinWinMargin:    0.05,
		BInstance:       binstance.DefaultConfig(),
	}
}

// PhaseMeasurement captures one phase's per-query CPU samples.
type PhaseMeasurement struct {
	Label    string
	From, To time.Time
	// CPU maps query fingerprints to their CPU-time samples in the phase.
	CPU map[uint64]mathx.Sample
}

// DatabaseResult is the experiment outcome for one database.
type DatabaseResult struct {
	Database string
	Tier     engine.Tier
	Winner   Winner
	// ImprovementPct maps recommender → workload CPU-time improvement over
	// the baseline (§7.3's 82%/72%/35% aggregate).
	ImprovementPct map[Winner]float64
	DroppedUser    []string
	MIIndexes      []string
	DTAIndexes     []string
	Err            error
}

// RunFig6ForTenant executes the §7.3 protocol for one tenant.
//
// Protocol (per database, all on B-instances — the primary is never
// touched): warm up a clone to rank existing indexes by benefit; pick a
// random k of the top N as "the user's tuning"; then measure four phases —
// baseline (k dropped), User (original config), MI (k dropped + up to k MI
// recommendations), DTA (k dropped + up to k DTA recommendations) — and
// pick the statistically significant winner on CPU time.
//
// Where the paper reverts indexes between phases on one long-lived
// B-instance, we fork a fresh B-instance per phase from the same snapshot:
// with small simulated tables, sequential phases would otherwise be biased
// by data growth (later phases scan more rows). Each phase replays an
// equally sized statement stream from the same template mix, and the
// Welch-based comparison is unchanged (documented in DESIGN.md).
func RunFig6ForTenant(tn *workload.Tenant, cfg Fig6Config, rng *sim.RNG) DatabaseResult {
	res := DatabaseResult{
		Database:       tn.DB.Name(),
		Tier:           tn.DB.Tier(),
		Winner:         WinnerComparable,
		ImprovementPct: make(map[Winner]float64),
	}
	eng := &Engine{Clock: tn.DB.Clock(), RNG: rng}
	phases := map[string]*PhaseMeasurement{}
	var droppedDefs []schema.IndexDef
	var miDefs, dtaDefs []schema.IndexDef
	var miRec *mi.Recommender

	// runPhase forks a fresh B-instance, applies setup, replays one phase
	// and measures it.
	runPhase := func(label string, setup func(ctx *Context) error, during func(ctx *Context) error) error {
		wf := Workflow{Name: "fig6-" + label, Steps: []Step{
			StepCreateBInstance(cfg.BInstance),
		}}
		if setup != nil {
			wf.Steps = append(wf.Steps, StepCustom("setup-"+label, setup))
		}
		wf.Steps = append(wf.Steps, StepMark(label+"-start"))
		if during != nil {
			wf.Steps = append(wf.Steps, StepCustom("during-"+label, during))
		} else {
			wf.Steps = append(wf.Steps, StepReplay(label, cfg.PhaseDuration, cfg.PhaseStatements, false))
		}
		wf.Steps = append(wf.Steps,
			StepMark(label+"-end"),
			StepCustom("collect-"+label, func(ctx *Context) error {
				from, _ := MarkedTime(ctx, label+"-start")
				to, _ := MarkedTime(ctx, label+"-end")
				phases[label] = collectPhase(ctx.B.DB.QueryStore(), label, from, to)
				return nil
			}))
		_, err := eng.Execute(wf, tn)
		return err
	}

	dropK := func(ctx *Context) error {
		for _, def := range droppedDefs {
			if err := ctx.B.DB.DropIndex(def.Name, engine.DropIndexOptions{LowPriority: true}); err != nil {
				return err
			}
		}
		return nil
	}

	// Step 0: warmup clone ranks existing indexes; choose the k to drop.
	warm := Workflow{Name: "fig6-warmup", Steps: []Step{
		StepCreateBInstance(cfg.BInstance),
		StepReplay("warmup", cfg.PhaseDuration/4, cfg.PhaseStatements/4, false),
		StepCustom("choose-drops", func(ctx *Context) error {
			defs := topBeneficialIndexes(ctx.B.DB, cfg.N)
			if len(defs) == 0 {
				for _, d := range ctx.B.DB.IndexDefs() {
					if d.Kind != schema.Clustered && !d.Hypothetical {
						defs = append(defs, d)
					}
				}
			}
			if len(defs) == 0 {
				return fmt.Errorf("experiment: no indexes to drop on %s", ctx.B.DB.Name())
			}
			perm := ctx.RNG.Perm(len(defs))
			k := cfg.K
			if k > len(defs) {
				k = len(defs)
			}
			for _, i := range perm[:k] {
				droppedDefs = append(droppedDefs, defs[i])
				res.DroppedUser = append(res.DroppedUser, defs[i].Name)
			}
			return nil
		}),
	}}
	if _, err := eng.Execute(warm, tn); err != nil {
		res.Err = err
		return res
	}

	// Phase "user": the original configuration.
	if err := runPhase("user", nil, nil); err != nil {
		res.Err = err
		return res
	}

	// Phase "baseline": k indexes dropped. The replay is sliced so the MI
	// recommender can snapshot the MI DMV between slices (its slope test
	// needs multiple points, §5.2). DTA tunes from this phase's Query
	// Store afterwards.
	const baselineSlices = 5
	err := runPhase("baseline", func(ctx *Context) error {
		if err := dropK(ctx); err != nil {
			return err
		}
		miRec = mi.New(ctx.B.DB, mi.DefaultConfig())
		return nil
	}, func(ctx *Context) error {
		for s := 0; s < baselineSlices; s++ {
			stmts := ctx.Tenant.Stream(cfg.PhaseStatements / baselineSlices)
			ctx.Tenant.Replay(ctx.B.DB, stmts, cfg.PhaseDuration/baselineSlices)
			miRec.TakeSnapshot()
		}
		// MI recommendations come from this phase's DMV history.
		cands := miRec.Recommend()
		if len(cands) > cfg.K {
			cands = cands[:cfg.K]
		}
		for _, c := range cands {
			miDefs = append(miDefs, c.Def.Clone())
			res.MIIndexes = append(res.MIIndexes, c.Def.Name)
		}
		// DTA recommendations from the same observed window.
		opts := dta.OptionsForTier(ctx.B.DB.Tier())
		opts.MaxIndexes = cfg.K
		opts.WindowN = cfg.PhaseDuration + time.Hour
		result, derr := dta.Run(ctx.B.DB, opts)
		if result != nil {
			for _, c := range result.Recommendations {
				dtaDefs = append(dtaDefs, c.Def.Clone())
				res.DTAIndexes = append(res.DTAIndexes, c.Def.Name)
			}
		} else if derr != nil {
			return derr
		}
		return nil
	})
	if err != nil {
		res.Err = err
		return res
	}

	// Phase "mi" and "dta": k dropped plus the recommender's indexes.
	implement := func(defs []schema.IndexDef) func(ctx *Context) error {
		return func(ctx *Context) error {
			if err := dropK(ctx); err != nil {
				return err
			}
			for _, def := range defs {
				ctx.B.DB.CreateIndex(def, engine.IndexBuildOptions{Online: true, Resumable: true}) //nolint:errcheck
			}
			return nil
		}
	}
	if err := runPhase("mi", implement(miDefs), nil); err != nil {
		res.Err = err
		return res
	}
	if err := runPhase("dta", implement(dtaDefs), nil); err != nil {
		res.Err = err
		return res
	}

	// Score phases against the baseline.
	base := phases["baseline"]
	type scored struct {
		w   Winner
		imp float64
		sig bool
	}
	var scores []scored
	for _, c := range []struct {
		w     Winner
		phase *PhaseMeasurement
	}{
		{WinnerUser, phases["user"]},
		{WinnerMI, phases["mi"]},
		{WinnerDTA, phases["dta"]},
	} {
		if c.phase == nil {
			continue
		}
		imp, sig := phaseImprovement(base, c.phase, cfg.Alpha)
		res.ImprovementPct[c.w] = imp * 100
		scores = append(scores, scored{w: c.w, imp: imp, sig: sig})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].imp > scores[j].imp })
	if len(scores) >= 2 {
		best, second := scores[0], scores[1]
		if best.sig && best.imp-second.imp >= cfg.MinWinMargin && best.imp > 0 {
			res.Winner = best.w
		}
	}
	return res
}

// topBeneficialIndexes ranks existing non-clustered indexes by read
// benefit from the usage DMV (the paper's dm_db_index_usage_stats
// heuristic, §7.3).
func topBeneficialIndexes(db *engine.Database, n int) []schema.IndexDef {
	type ranked struct {
		def   schema.IndexDef
		reads int64
	}
	var all []ranked
	for _, def := range db.IndexDefs() {
		if def.Kind == schema.Clustered || def.Hypothetical {
			continue
		}
		u, ok := db.UsageDMV().Usage(def.Name)
		if !ok || u.Reads() == 0 {
			continue
		}
		all = append(all, ranked{def: def, reads: u.Reads()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].reads != all[j].reads {
			return all[i].reads > all[j].reads
		}
		return all[i].def.Name < all[j].def.Name
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]schema.IndexDef, len(all))
	for i, r := range all {
		out[i] = r.def
	}
	return out
}

// collectPhase snapshots per-query CPU samples for a window.
func collectPhase(qs *querystore.Store, label string, from, to time.Time) *PhaseMeasurement {
	pm := &PhaseMeasurement{Label: label, From: from, To: to, CPU: make(map[uint64]mathx.Sample)}
	for _, h := range qs.QueryHashes() {
		if s, ok := qs.QueryWindowSample(h, querystore.MetricCPU, from, to); ok {
			pm.CPU[h] = s
		}
	}
	return pm
}

// phaseImprovement compares a phase to the baseline: the workload CPU
// improvement using a fixed execution count per query (the §7.3
// methodology) and whether the improvement is statistically significant
// (significantly improved CPU outweighs significantly regressed CPU under
// per-query Welch tests).
func phaseImprovement(base, phase *PhaseMeasurement, alpha float64) (float64, bool) {
	if base == nil || phase == nil {
		return 0, false
	}
	var baseCPU, phaseCPU float64
	sigImproved, sigRegressed := 0.0, 0.0
	// Accumulate in sorted-hash order: float addition is not associative,
	// so summing in map-iteration order would make the improvement
	// percentage wobble in its last digits from run to run.
	hashes := make([]uint64, 0, len(base.CPU))
	for h := range base.CPU {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	for _, h := range hashes {
		b := base.CPU[h]
		p, ok := phase.CPU[h]
		if !ok {
			continue
		}
		// Fixed execution count across phases.
		n := b.N
		if p.N < n {
			n = p.N
		}
		if n < 2 {
			continue
		}
		baseCPU += b.Mean * float64(n)
		phaseCPU += p.Mean * float64(n)
		if w, ok := mathx.Welch(p, b); ok && w.P < alpha {
			delta := (b.Mean - p.Mean) * float64(n)
			if delta > 0 {
				sigImproved += delta
			} else {
				sigRegressed += -delta
			}
		}
	}
	if baseCPU <= 0 {
		return 0, false
	}
	imp := (baseCPU - phaseCPU) / baseCPU
	return imp, sigImproved > sigRegressed && sigImproved > 0
}

// Fig6Summary aggregates per-database results into the pie chart and the
// §7.3 average improvements.
type Fig6Summary struct {
	Tier       string
	Databases  int
	Share      map[Winner]float64
	AvgImprove map[Winner]float64
	Errors     int
}

// Summarize builds the Fig. 6 summary for a set of results.
func Summarize(tier string, results []DatabaseResult) Fig6Summary {
	s := Fig6Summary{
		Tier:       tier,
		Share:      make(map[Winner]float64),
		AvgImprove: make(map[Winner]float64),
	}
	counts := make(map[Winner]int)
	impSums := make(map[Winner]float64)
	impCounts := make(map[Winner]int)
	for _, r := range results {
		if r.Err != nil {
			s.Errors++
			continue
		}
		s.Databases++
		counts[r.Winner]++
		for w, imp := range r.ImprovementPct {
			impSums[w] += imp
			impCounts[w]++
		}
	}
	for w, c := range counts {
		s.Share[w] = float64(c) / float64(maxInt(s.Databases, 1)) * 100
	}
	for w, sum := range impSums {
		s.AvgImprove[w] = sum / float64(maxInt(impCounts[w], 1))
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders the summary like the paper's figure caption.
func (s Fig6Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6 — %s tier (%d databases, %d errored):\n", s.Tier, s.Databases, s.Errors)
	for _, w := range []Winner{WinnerDTA, WinnerMI, WinnerUser, WinnerComparable} {
		fmt.Fprintf(&b, "  %-11s %5.1f%% of databases", w, s.Share[w])
		if w != WinnerComparable {
			fmt.Fprintf(&b, "   (avg workload CPU improvement %5.1f%%)", s.AvgImprove[w])
		}
		b.WriteString("\n")
	}
	return b.String()
}
