package workload

import (
	"fmt"
	"sort"
	"strings"

	"autoindex/internal/engine"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/sqlparser"
	"autoindex/internal/value"
)

// parseBulk constructs a BULK INSERT statement with an explicit row count.
func parseBulk(sql string, rows int64) (sqlparser.Statement, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	b, ok := stmt.(*sqlparser.BulkInsertStmt)
	if !ok {
		return nil, fmt.Errorf("workload: %q is not a BULK INSERT", sql)
	}
	b.RowEstimate = rows
	return b, nil
}

// pool holds sampled literal values per table column, used to parameterize
// predicates so they hit real data with realistic skew.
type pool struct {
	byCol map[string][]value.Value
	rows  []value.Row
}

// buildPools samples values from the seed rows.
func (t *Tenant) buildPools() map[string]*pool {
	pools := make(map[string]*pool)
	r := t.rng.Child("pools")
	for _, ts := range t.Tables {
		p := &pool{byCol: make(map[string][]value.Value)}
		rows := generateRows(ts, minInt(256, ts.Rows), r.Child(ts.Name))
		p.rows = rows
		for ci, c := range ts.Columns {
			vals := make([]value.Value, 0, len(rows))
			for _, row := range rows {
				vals = append(vals, row[ci])
			}
			p.byCol[strings.ToLower(c.Name)] = vals
		}
		// PK ids must hit the real id range [0, Rows).
		ids := make([]value.Value, 128)
		for i := range ids {
			ids[i] = value.NewInt(r.Int63n(int64(ts.Rows)))
		}
		p.byCol["id"] = ids
		pools[strings.ToLower(ts.Name)] = p
	}
	return pools
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *pool) draw(r *sim.RNG, col string) value.Value {
	vals := p.byCol[strings.ToLower(col)]
	if len(vals) == 0 {
		return value.NewInt(0)
	}
	return vals[r.Intn(len(vals))]
}

// filterableColumns returns columns that make sensible predicates.
func filterableColumns(ts TableSpec) []ColumnSpec {
	var out []ColumnSpec
	for _, c := range ts.Columns {
		if c.Wide || c.Name == "id" || c.Kind == value.Float {
			continue
		}
		out = append(out, c)
	}
	return out
}

// projectableColumns returns narrow columns to project.
func projectableColumns(ts TableSpec) []string {
	var out []string
	for _, c := range ts.Columns {
		if !c.Wide {
			out = append(out, c.Name)
		}
	}
	return out
}

// generateTemplates builds the tenant's statement mix.
func (t *Tenant) generateTemplates() {
	r := t.rng.Child("templates")
	pools := t.buildPools()
	wf := t.Profile.WriteFraction
	if wf == 0 {
		wf = 0.08 + 0.35*r.Float64()
	}

	var reads, writes []*Template
	for _, ts := range t.Tables {
		ts := ts
		p := pools[strings.ToLower(ts.Name)]
		fcols := filterableColumns(ts)
		pcols := projectableColumns(ts)
		if len(pcols) == 0 || len(fcols) == 0 {
			continue
		}
		proj := func(n int) string {
			idx := r.Perm(len(pcols))
			if n > len(idx) {
				n = len(idx)
			}
			cols := make([]string, n)
			for i := 0; i < n; i++ {
				cols[i] = pcols[idx[i]]
			}
			return strings.Join(cols, ", ")
		}

		// Point lookup by PK.
		if ts.HasPK {
			projCols := proj(1 + r.Intn(3))
			reads = append(reads, &Template{
				Name:   ts.Name + "/point",
				Weight: 2 + 4*r.Float64(),
				Gen: func(tn *Tenant) string {
					return fmt.Sprintf("SELECT %s FROM %s WHERE id = %s", projCols, ts.Name, p.draw(tn.rng, "id"))
				},
			})
		}

		// Equality filter on 1–2 attributes.
		for k := 0; k < 1+r.Intn(2); k++ {
			c1 := fcols[r.Intn(len(fcols))]
			projCols := proj(1 + r.Intn(3))
			var c2 *ColumnSpec
			if len(fcols) > 1 && r.Float64() < 0.4 {
				cc := fcols[r.Intn(len(fcols))]
				if !strings.EqualFold(cc.Name, c1.Name) {
					c2 = &cc
				}
			}
			reads = append(reads, &Template{
				Name:   fmt.Sprintf("%s/eq_%s", ts.Name, c1.Name),
				Weight: 1 + 4*r.Float64(),
				Gen: func(tn *Tenant) string {
					q := fmt.Sprintf("SELECT %s FROM %s WHERE %s = %s", projCols, ts.Name, c1.Name, p.draw(tn.rng, c1.Name))
					if c2 != nil {
						q += fmt.Sprintf(" AND %s = %s", c2.Name, p.draw(tn.rng, c2.Name))
					}
					return q
				},
			})
		}

		// Correlated predicate pair (optimizer-error generator).
		for _, c := range ts.Columns {
			if c.CorrelatedWith == "" {
				continue
			}
			c := c
			base := c.CorrelatedWith
			projCols := proj(2)
			baseOrd, corrOrd := -1, -1
			for i, cc := range ts.Columns {
				if strings.EqualFold(cc.Name, base) {
					baseOrd = i
				}
				if strings.EqualFold(cc.Name, c.Name) {
					corrOrd = i
				}
			}
			reads = append(reads, &Template{
				Name:   fmt.Sprintf("%s/corr_%s", ts.Name, c.Name),
				Weight: 1 + 2*r.Float64(),
				Gen: func(tn *Tenant) string {
					row := p.rows[tn.rng.Intn(len(p.rows))]
					return fmt.Sprintf("SELECT %s FROM %s WHERE %s = %s AND %s = %s",
						projCols, ts.Name, base, row[baseOrd], c.Name, row[corrOrd])
				},
			})
		}

		// Range scan on an int attribute.
		var intCol *ColumnSpec
		for _, c := range fcols {
			if c.Kind == value.Int {
				cc := c
				intCol = &cc
				break
			}
		}
		if intCol != nil {
			c := *intCol
			projCols := proj(1 + r.Intn(2))
			width := int64(c.Distinct/10 + 1)
			reads = append(reads, &Template{
				Name:   fmt.Sprintf("%s/range_%s", ts.Name, c.Name),
				Weight: 0.5 + 2*r.Float64(),
				Gen: func(tn *Tenant) string {
					lo := p.draw(tn.rng, c.Name)
					return fmt.Sprintf("SELECT %s FROM %s WHERE %s BETWEEN %d AND %d",
						projCols, ts.Name, c.Name, lo.I, lo.I+width)
				},
			})
		}

		// Join to the FK parent.
		if ts.FKOf != "" {
			parent := ts.FKOf
			pp := pools[strings.ToLower(parent)]
			var parentFilter ColumnSpec
			for _, pts := range t.Tables {
				if strings.EqualFold(pts.Name, parent) {
					pf := filterableColumns(pts)
					if len(pf) > 0 {
						parentFilter = pf[r.Intn(len(pf))]
					}
				}
			}
			// Qualify child projections: both sides may share column names.
			idx := r.Perm(len(pcols))
			np := minInt(2, len(idx))
			qualified := make([]string, np)
			for i := 0; i < np; i++ {
				qualified[i] = "c." + pcols[idx[i]]
			}
			childCols := strings.Join(qualified, ", ")
			fkCol := "fk_" + parent
			if parentFilter.Name != "" {
				reads = append(reads, &Template{
					Name:   fmt.Sprintf("%s/join_%s", ts.Name, parent),
					Weight: 0.5 + 2.5*r.Float64(),
					Gen: func(tn *Tenant) string {
						return fmt.Sprintf("SELECT %s FROM %s c JOIN %s p ON c.%s = p.id WHERE p.%s = %s",
							childCols, ts.Name, parent, fkCol, parentFilter.Name, pp.draw(tn.rng, parentFilter.Name))
					},
				})
			}
		}

		// Two-join chain when the parent itself has a parent.
		if ts.FKOf != "" {
			var grand string
			for _, pts := range t.Tables {
				if strings.EqualFold(pts.Name, ts.FKOf) && pts.FKOf != "" {
					grand = pts.FKOf
				}
			}
			if grand != "" && r.Float64() < 0.5 {
				gp := pools[strings.ToLower(grand)]
				parent := ts.FKOf
				reads = append(reads, &Template{
					Name:   fmt.Sprintf("%s/chain_%s_%s", ts.Name, parent, grand),
					Weight: 0.3 + r.Float64(),
					Gen: func(tn *Tenant) string {
						return fmt.Sprintf(
							"SELECT c.id FROM %s c JOIN %s p ON c.fk_%s = p.id JOIN %s g ON p.fk_%s = g.id WHERE g.id = %s",
							ts.Name, parent, parent, grand, grand, gp.draw(tn.rng, "id"))
					},
				})
			}
		}

		// Group-by aggregate.
		if len(fcols) > 0 {
			g := fcols[r.Intn(len(fcols))]
			var measure string
			for _, c := range ts.Columns {
				if c.Kind == value.Float {
					measure = c.Name
					break
				}
			}
			agg := "COUNT(*)"
			if measure != "" && r.Float64() < 0.6 {
				agg = fmt.Sprintf("COUNT(*), SUM(%s)", measure)
			}
			reads = append(reads, &Template{
				Name:   fmt.Sprintf("%s/groupby_%s", ts.Name, g.Name),
				Weight: 0.3 + 1.2*r.Float64(),
				Gen: func(tn *Tenant) string {
					return fmt.Sprintf("SELECT %s, %s FROM %s GROUP BY %s", g.Name, agg, ts.Name, g.Name)
				},
			})
		}

		// TOP-N ordered report.
		if ts.HasPK && r.Float64() < 0.7 {
			c := fcols[r.Intn(len(fcols))]
			projCols := proj(2)
			n := 5 + r.Intn(45)
			reads = append(reads, &Template{
				Name:   fmt.Sprintf("%s/top_%s", ts.Name, c.Name),
				Weight: 0.3 + r.Float64(),
				Gen: func(tn *Tenant) string {
					return fmt.Sprintf("SELECT TOP %d %s FROM %s WHERE %s = %s ORDER BY id",
						n, projCols, ts.Name, c.Name, p.draw(tn.rng, c.Name))
				},
			})
		}

		// Writes: update by filter or PK.
		var floatCol string
		for _, c := range ts.Columns {
			if c.Kind == value.Float {
				floatCol = c.Name
				break
			}
		}
		if floatCol != "" {
			fc := fcols[r.Intn(len(fcols))]
			byPK := ts.HasPK && r.Float64() < 0.5
			writes = append(writes, &Template{
				Name:    ts.Name + "/update",
				Weight:  1 + 2*r.Float64(),
				IsWrite: true,
				Gen: func(tn *Tenant) string {
					set := fmt.Sprintf("%s = %d.25", floatCol, tn.rng.Intn(1000))
					if byPK {
						return fmt.Sprintf("UPDATE %s SET %s WHERE id = %s", ts.Name, set, p.draw(tn.rng, "id"))
					}
					return fmt.Sprintf("UPDATE %s SET %s WHERE %s = %s", ts.Name, set, fc.Name, p.draw(tn.rng, fc.Name))
				},
			})
		}

		// Inserts (with matching occasional deletes of inserted rows).
		if ts.HasPK {
			cols := make([]string, 0, len(ts.Columns))
			for _, c := range ts.Columns {
				cols = append(cols, c.Name)
			}
			spec := ts
			writes = append(writes, &Template{
				Name:    ts.Name + "/insert",
				Weight:  1 + 2*r.Float64(),
				IsWrite: true,
				Gen: func(tn *Tenant) string {
					row := generateRows(spec, 1, tn.rng.Child("ins/"+spec.Name))[0]
					row[0] = value.NewInt(tn.nextInsertID(spec.Name))
					vals := make([]string, len(row))
					for i, v := range row {
						vals[i] = v.String()
					}
					return fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
						spec.Name, strings.Join(cols, ", "), strings.Join(vals, ", "))
				},
			})
			writes = append(writes, &Template{
				Name:    ts.Name + "/delete",
				Weight:  0.2 + 0.6*r.Float64(),
				IsWrite: true,
				Gen: func(tn *Tenant) string {
					// Delete one of the recently inserted rows (possibly a
					// no-op if it never existed — realistic enough).
					id := tn.lastInsertID(spec.Name)
					if id > 1<<40 {
						id -= int64(tn.rng.Intn(3))
					}
					return fmt.Sprintf("DELETE FROM %s WHERE id = %d", ts.Name, id)
				},
			})
		}

		// Occasional bulk load.
		if r.Float64() < 0.3 {
			feed := "feed_" + ts.Name
			n := 50 + r.Intn(200)
			writes = append(writes, &Template{
				Name:    ts.Name + "/bulk",
				Weight:  0.1 + 0.2*r.Float64(),
				IsWrite: true,
				Gen: func(_ *Tenant) string {
					_ = n
					return fmt.Sprintf("BULK INSERT %s FROM DATASOURCE %s", ts.Name, feed)
				},
			})
		}
	}

	// Normalise weights so writes get wf of the total.
	scaleGroup(reads, 1-wf)
	scaleGroup(writes, wf)
	t.Templates = append(t.Templates, reads...)
	t.Templates = append(t.Templates, writes...)
}

func scaleGroup(ts []*Template, target float64) {
	var sum float64
	for _, t := range ts {
		sum += t.Weight
	}
	if sum == 0 {
		return
	}
	for _, t := range ts {
		t.Weight = t.Weight / sum * target
	}
}

// createUserIndexes emulates prior human tuning: the user indexed the
// columns their most frequent filters touch — usually key-only indexes
// without INCLUDE columns, which is decent but beatable tuning (§7.3's
// User baseline drops and restores these).
func (t *Tenant) createUserIndexes() error {
	r := t.rng.Child("userindexes")
	made := make(map[string]bool)
	n := 0
	for _, tpl := range t.Templates {
		if tpl.IsWrite || n >= 3+len(t.Tables) {
			continue
		}
		// Parse a sample to find the filtered table/column.
		stmt, err := sqlparser.Parse(tpl.Gen(t))
		if err != nil {
			continue
		}
		sel, ok := stmt.(*sqlparser.SelectStmt)
		if !ok || len(sel.Where) == 0 {
			continue
		}
		col := sel.Where[0].Col.Column
		table := sel.From.Table
		if strings.EqualFold(col, "id") {
			continue
		}
		// Users skip some opportunities.
		if r.Float64() < 0.3 {
			continue
		}
		name := fmt.Sprintf("ix_user_%s_%s", table, col)
		if made[name] {
			continue
		}
		def := schema.IndexDef{Name: name, Table: table, KeyColumns: []string{col}}
		// Occasionally the user made a covering index.
		if r.Float64() < 0.25 {
			for _, it := range sel.Items {
				if !it.Star && it.Agg == sqlparser.AggNone && !strings.EqualFold(it.Col.Column, col) {
					def.IncludedColumns = append(def.IncludedColumns, it.Col.Column)
				}
			}
		}
		if err := t.DB.CreateIndex(def, engine.IndexBuildOptions{Online: true}); err != nil {
			continue
		}
		made[name] = true
		n++
	}
	// Some users also leave duplicate indexes behind (§5.4). Duplicate
	// the first index by name — picking one out of map iteration would
	// make the schema itself vary run to run.
	if r.Float64() < 0.3 && len(made) > 0 {
		names := make([]string, 0, len(made))
		for name := range made {
			names = append(names, name)
		}
		sort.Strings(names)
		dup, _ := t.DB.IndexDef(names[0])
		dup.Name = names[0] + "_dup"
		dup.IncludedColumns = nil
		_ = t.DB.CreateIndex(dup, engine.IndexBuildOptions{Online: true})
	}
	return nil
}
