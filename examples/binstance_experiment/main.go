// B-instance experimentation (§7): fork a B-instance from a production
// database, forward the live workload to both through a TDS-style fork,
// try an index change on the B-instance only, and compare measured costs —
// the primary never sees the experiment.
package main

import (
	"fmt"
	"time"

	"autoindex/internal/binstance"
	"autoindex/internal/engine"
	"autoindex/internal/experiment"
	"autoindex/internal/querystore"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/workload"
)

func main() {
	clock := sim.NewClock()
	rng := sim.NewRNG(1234)
	tn, err := workload.NewTenant(workload.Profile{
		Name: "prod", Tier: engine.TierStandard, Seed: 555, UserIndexes: true,
	}, clock)
	if err != nil {
		panic(err)
	}
	table := tn.DB.TableNames()[0]
	fmt.Printf("production database %q: tables %v\n", tn.DB.Name(), tn.DB.TableNames())

	eng := &experiment.Engine{Clock: clock, RNG: rng}
	var hypoIndex schema.IndexDef
	wf := experiment.Workflow{Name: "try-index", Steps: []experiment.Step{
		experiment.StepCreateBInstance(binstance.DefaultConfig()),
		// Phase 1: live traffic forked to both instances.
		experiment.StepMark("before-start"),
		experiment.StepReplay("before", 12*time.Hour, 400, true),
		experiment.StepMark("before-end"),
		experiment.StepCheckDivergence(0.25),
		// Experiment: create a candidate index on the B-instance only.
		experiment.StepCustom("create-candidate", func(ctx *experiment.Context) error {
			ti, _ := ctx.B.DB.Table(table)
			for _, c := range ti.Def.Columns {
				if c.Name != "id" && !c.Nullable == false {
					hypoIndex = schema.IndexDef{
						Name: "exp_candidate", Table: table,
						KeyColumns: []string{c.Name}, AutoCreated: true,
					}
					break
				}
			}
			if hypoIndex.Name == "" {
				hypoIndex = schema.IndexDef{Name: "exp_candidate", Table: table, KeyColumns: []string{ti.Def.Columns[1].Name}, AutoCreated: true}
			}
			return ctx.B.DB.CreateIndex(hypoIndex, engine.IndexBuildOptions{Online: true, Resumable: true})
		}),
		// Phase 2: more forked traffic, now with the index in place on B.
		experiment.StepMark("after-start"),
		experiment.StepReplay("after", 12*time.Hour, 400, true),
		experiment.StepMark("after-end"),
	}}

	ctx, err := eng.Execute(wf, tn)
	if err != nil {
		fmt.Println("experiment failed (framework cleaned up):", err)
		return
	}

	bFrom, _ := experiment.MarkedTime(ctx, "before-start")
	bTo, _ := experiment.MarkedTime(ctx, "before-end")
	aFrom, _ := experiment.MarkedTime(ctx, "after-start")
	aTo, _ := experiment.MarkedTime(ctx, "after-end")
	qs := ctx.B.DB.QueryStore()
	var beforeCPU, afterCPU float64
	for _, h := range qs.QueryHashes() {
		if s, ok := qs.QueryWindowSample(h, querystore.MetricCPU, bFrom, bTo); ok {
			beforeCPU += s.Mean * float64(s.N)
		}
		if s, ok := qs.QueryWindowSample(h, querystore.MetricCPU, aFrom, aTo); ok {
			afterCPU += s.Mean * float64(s.N)
		}
	}
	replayed, dropped := ctx.B.Stats()
	fmt.Printf("\nB-instance %s: replayed=%d dropped=%d divergence=%.3f\n",
		ctx.B.DB.Name(), replayed, dropped, ctx.B.Divergence())
	fmt.Printf("candidate index: %s\n", hypoIndex.String())
	fmt.Printf("workload CPU on B-instance: before=%.1f after=%.1f (%+.1f%%)\n",
		beforeCPU, afterCPU, (afterCPU-beforeCPU)/beforeCPU*100)
	if _, ok := tn.DB.IndexDef("exp_candidate"); !ok {
		fmt.Println("primary database untouched — the experiment never risked production.")
	}
	fmt.Println("\nexperiment log:")
	for _, l := range ctx.Log {
		fmt.Println("  ", l)
	}
}
