package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Unit is one type-checked analysis target: either a package
// together with its in-package _test.go files, or an external
// <pkg>_test package. Analyzers see each source file exactly once
// across all units.
type Unit struct {
	// Path is the unit's import path; external test packages carry the
	// conventional ".test" suffix on top of the package path.
	Path string
	Dir  string
	Fset *token.FileSet
	// Files holds the unit's parsed files in filename order.
	Files []*ast.File
	// TestFiles marks which of Files came from _test.go sources.
	TestFiles map[*ast.File]bool
	Pkg       *types.Package
	Info      *types.Info
}

// A Loader parses and type-checks packages of a single module using
// only the standard library: intra-module imports are resolved by
// type-checking their source directories (memoized, cycle-checked),
// everything else goes through go/importer — compiled export data
// first, the source importer as fallback.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	// buildCtx decides which files belong to the build (GOOS/GOARCH
	// suffixes, //go:build constraints), mirroring the go tool's default
	// context: tags like "race" are unset, so exactly one file of a
	// tag-guarded pair is loaded.
	buildCtx build.Context

	std    types.Importer
	srcImp types.Importer

	canon map[string]*canonPkg
}

type canonPkg struct {
	loading bool
	pkg     *types.Package
	err     error
}

// NewLoader returns a loader for the module rooted at dir (the
// directory containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", moduleRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modPath,
		buildCtx:   build.Default,
		std:        importer.Default(),
		srcImp:     importer.ForCompiler(fset, "source", nil),
		canon:      make(map[string]*canonPkg),
	}, nil
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// Import implements types.Importer: module-internal paths are
// type-checked from source, all others delegate to go/importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		return l.loadCanonical(path, filepath.Join(l.moduleRoot, filepath.FromSlash(rel)))
	}
	pkg, err := l.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	return l.srcImp.Import(path)
}

// loadCanonical type-checks the non-test files of the package in dir,
// memoized by import path. It is what other packages see when they
// import path.
func (l *Loader) loadCanonical(path, dir string) (*types.Package, error) {
	if c, ok := l.canon[path]; ok {
		if c.loading {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return c.pkg, c.err
	}
	c := &canonPkg{loading: true}
	l.canon[path] = c
	base, _, _, err := l.parseDir(dir)
	if err == nil && len(base) == 0 {
		err = fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	if err == nil {
		c.pkg, _, err = l.check(path, base, nil)
	}
	c.err = err
	c.loading = false
	return c.pkg, c.err
}

// parseDir parses every .go file in dir (non-recursive) that the
// default build context would compile, split into the base package's
// files, its in-package test files, and external (_test-suffixed
// package) test files. Build-constraint evaluation matters: tag pairs
// like //go:build race / !race declare the same symbol in two files,
// and only one of them belongs to any given build.
func (l *Loader) parseDir(dir string) (base, inTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if ok, merr := l.buildCtx.MatchFile(dir, n); merr != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		case strings.HasSuffix(n, "_test.go"):
			inTest = append(inTest, f)
		default:
			base = append(base, f)
		}
	}
	return base, inTest, extTest, nil
}

// check type-checks files as package path. Extra test files, if any,
// are appended after the base files.
func (l *Loader) check(path string, files, extra []*ast.File) (*types.Package, *types.Info, error) {
	all := append(append([]*ast.File(nil), files...), extra...)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, all, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// LoadUnits loads analysis units for every package directory under
// each of roots (recursing when a root ends in "/..."), relative to
// the module root. testdata (fixtures and fuzz corpora), vendor, dot,
// and underscore directories are never loaded — not even when a root
// names one of them explicitly — mirroring the go tool. Generated
// files participate in type-checking but are excluded from the
// analyzed file set.
func (l *Loader) LoadUnits(roots ...string) ([]*Unit, error) {
	dirs, err := l.expandDirs(roots)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	for _, dir := range dirs {
		u, err := l.loadDirUnits(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, u...)
	}
	return units, nil
}

func (l *Loader) expandDirs(roots []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, root := range roots {
		if root == "" {
			root = "./..."
		}
		recursive := false
		if strings.HasSuffix(root, "/...") || root == "..." {
			recursive = true
			root = strings.TrimSuffix(strings.TrimSuffix(root, "..."), "/")
			if root == "" || root == "." {
				root = "."
			}
		}
		abs := root
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(l.moduleRoot, root)
		}
		if l.underSkippedDir(abs) {
			continue
		}
		if !recursive {
			add(abs)
			continue
		}
		err := filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if p != abs && skipDirName(d.Name()) {
				return filepath.SkipDir
			}
			matches, _ := filepath.Glob(filepath.Join(p, "*.go"))
			if len(matches) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// skipDirName reports whether a directory of this name never holds
// loadable packages: testdata trees (fixture sources and fuzz corpora),
// vendor, and dot/underscore directories, per the go tool's rules.
func skipDirName(n string) bool {
	return strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") || n == "testdata" || n == "vendor"
}

// underSkippedDir reports whether dir lies inside a skipped directory,
// judged by path components relative to the module root. It guards
// explicit roots ("lint ./internal/analysis/testdata"), which bypass
// the recursive walk's own filtering.
func (l *Loader) underSkippedDir(dir string) bool {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || rel == "." {
		return false
	}
	for _, c := range strings.Split(filepath.ToSlash(rel), "/") {
		if c == ".." || c == "." {
			continue
		}
		if skipDirName(c) {
			return true
		}
	}
	return false
}

// dropGenerated filters out files carrying the standard
// "Code generated ... DO NOT EDIT." header. Generated files stay in
// the type-check input — handwritten code may use their symbols — but
// machine-written code is not actionable lint output, so they are
// excluded from the file set analyzers see.
func dropGenerated(files []*ast.File) []*ast.File {
	out := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if !ast.IsGenerated(f) {
			out = append(out, f)
		}
	}
	return out
}

// loadDirUnits builds the units for one package directory: the base
// package augmented with its in-package test files, plus the external
// test package if present.
func (l *Loader) loadDirUnits(dir string) ([]*Unit, error) {
	base, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 && len(inTest) == 0 && len(extTest) == 0 {
		return nil, nil
	}
	path := l.importPathFor(dir)
	var units []*Unit
	var augmented *types.Package

	if len(base) > 0 || len(inTest) > 0 {
		// Make sure the canonical (import-visible) form is memoized
		// before checking the augmented form, so importers of this
		// package never see test-file symbols.
		if len(base) > 0 {
			if _, err := l.loadCanonical(path, dir); err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", path, err)
			}
		}
		pkg, info, err := l.check(path, base, inTest)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		augmented = pkg
		analyzedBase, analyzedTest := dropGenerated(base), dropGenerated(inTest)
		u := &Unit{
			Path:      path,
			Dir:       dir,
			Fset:      l.fset,
			Files:     append(append([]*ast.File(nil), analyzedBase...), analyzedTest...),
			TestFiles: make(map[*ast.File]bool, len(analyzedTest)),
			Pkg:       pkg,
			Info:      info,
		}
		for _, f := range analyzedTest {
			u.TestFiles[f] = true
		}
		units = append(units, u)
	}

	if len(extTest) > 0 {
		// External test packages compile against the test variant of
		// the package under test (the go tool does the same), so that
		// export_test.go-style helpers resolve. Temporarily swap the
		// memoized entry, then restore it.
		saved, hadSaved := l.canon[path]
		if augmented != nil {
			l.canon[path] = &canonPkg{pkg: augmented}
		}
		pkg, info, err := l.check(path+".test", extTest, nil)
		if hadSaved {
			l.canon[path] = saved
		} else {
			delete(l.canon, path)
		}
		if err != nil {
			return nil, fmt.Errorf("analysis: %s [external test]: %w", path, err)
		}
		analyzedExt := dropGenerated(extTest)
		u := &Unit{
			Path:      path + ".test",
			Dir:       dir,
			Fset:      l.fset,
			Files:     append([]*ast.File(nil), analyzedExt...),
			TestFiles: make(map[*ast.File]bool, len(analyzedExt)),
			Pkg:       pkg,
			Info:      info,
		}
		for _, f := range analyzedExt {
			u.TestFiles[f] = true
		}
		units = append(units, u)
	}
	return units, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}
