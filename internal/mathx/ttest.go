package mathx

import "math"

// Sample summarises one side of a two-sample test: n observations with the
// given mean and sample variance. It is what Query Store hands the
// validator for a (query, plan, metric) triple.
type Sample struct {
	N        int64
	Mean     float64
	Variance float64
}

// FromWelford converts an accumulator into a Sample.
func FromWelford(w Welford) Sample {
	return Sample{N: w.N, Mean: w.Mean, Variance: w.Variance()}
}

// WelchResult reports the outcome of a Welch two-sample t-test.
type WelchResult struct {
	T  float64 // t statistic (a.Mean - b.Mean direction)
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// Welch runs Welch's unequal-variance t-test between samples a and b
// (Welch 1947 [42]). It returns ok=false when either side has fewer than
// two observations, in which case no significance can be claimed — the
// validator treats that as "not enough evidence, do not revert".
func Welch(a, b Sample) (WelchResult, bool) {
	if a.N < 2 || b.N < 2 {
		return WelchResult{}, false
	}
	va := a.Variance / float64(a.N)
	vb := b.Variance / float64(b.N)
	se := va + vb
	if se <= 0 {
		// Zero variance on both sides: identical constants. Degenerate, but
		// a mean difference is then exact.
		if a.Mean == b.Mean {
			return WelchResult{T: 0, DF: float64(a.N + b.N - 2), P: 1}, true
		}
		return WelchResult{T: math.Inf(sign(a.Mean - b.Mean)), DF: float64(a.N + b.N - 2), P: 0}, true
	}
	t := (a.Mean - b.Mean) / math.Sqrt(se)
	df := se * se / (va*va/float64(a.N-1) + vb*vb/float64(b.N-1))
	p := 2 * StudentTSurvival(math.Abs(t), df)
	return WelchResult{T: t, DF: df, P: p}, true
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// StudentTSurvival returns P(T > t) for a Student-t variable with df
// degrees of freedom, t >= 0, via the regularised incomplete beta function.
func StudentTSurvival(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// RegIncBeta computes the regularised incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// SlopeTStat fits least-squares y = a + b*x over the points and returns the
// t-statistic of the slope b (b / SE(b)) together with the slope itself and
// the degrees of freedom (n-2). The MI recommender uses this as the
// "statistically-robust measure of the positive gradient of impact scores
// over time" (§5.2): a candidate qualifies when the slope's t exceeds a
// configured threshold. ok is false when n < 3 or x has no spread.
func SlopeTStat(xs, ys []float64) (slope, t, df float64, ok bool) {
	n := len(xs)
	if n != len(ys) || n < 3 {
		return 0, 0, 0, false
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx := sx / float64(n)
	my := sy / float64(n)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, 0, false
	}
	slope = sxy / sxx
	intercept := my - slope*mx
	var sse float64
	for i := 0; i < n; i++ {
		r := ys[i] - (intercept + slope*xs[i])
		sse += r * r
	}
	df = float64(n - 2)
	mse := sse / df
	if mse <= 0 {
		// Perfect fit: slope sign alone decides; report a huge t.
		if slope == 0 {
			return 0, 0, df, true
		}
		return slope, math.Inf(sign(slope)), df, true
	}
	se := math.Sqrt(mse / sxx)
	return slope, slope / se, df, true
}

// SlopeSignificantlyPositive reports whether the regression slope over the
// (x, y) points is positive with one-sided p below alpha.
func SlopeSignificantlyPositive(xs, ys []float64, alpha float64) bool {
	slope, t, df, ok := SlopeTStat(xs, ys)
	if !ok || slope <= 0 {
		return false
	}
	if math.IsInf(t, 1) {
		return true
	}
	return StudentTSurvival(t, df) < alpha
}
