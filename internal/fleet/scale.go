package fleet

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"autoindex/internal/controlplane"
	"autoindex/internal/engine"
	"autoindex/internal/metrics"
	"autoindex/internal/sim"
	"autoindex/internal/telemetry"
	"autoindex/internal/workload"
)

// Scale mode: run 100k–1M tenants on one machine.
//
// Three mechanisms make a fleet that large fit, none of which may disturb
// the determinism contract (byte-identical output at any -workers, with or
// without -chaos, under any hibernation pressure):
//
//   - Archetypes. Tenants are stamped from a handful of templates; schema
//     definitions, base rows and histograms are physically shared
//     copy-on-write (engine.SharedCatalog), so per-tenant cost is the
//     tenant's own tree nodes and deltas, not its data.
//
//   - Hibernation. An LRU cap (-resident-tenants) bounds how many tenants
//     stay fully materialized between barriers; the rest serialize to a
//     compact snapshot (hibernate.go) and rebuild in place on their next
//     active hour. Because which tenants get *stepped* each hour is a pure
//     function of the activity model and the persisted recommendation
//     records — never of residency — a run under heavy hibernation churn
//     produces the same bytes as one that never hibernates.
//
//   - Streaming reports. A tenant that has passed its last active hour and
//     holds no live recommendation emits its result line immediately and
//     is freed, so a long run's memory tracks the resident set, not the
//     completed population.

// ScaleSpec configures a scale-mode run.
type ScaleSpec struct {
	// Tenants is the nominal fleet size. Tenants the activity model never
	// wakes are never constructed and cost ~100 bytes each.
	Tenants int
	// Hours is the virtual run length.
	Hours int
	// Archetypes is the number of distinct tenant templates.
	Archetypes int
	Seed       int64
	// Scale multiplies archetype data sizes (1.0 = test-friendly default).
	Scale float64
	// ActiveFraction is the per-tenant per-hour probability of replaying
	// workload, decided by a pure hash of (seed, tenant, hour).
	ActiveFraction float64
	// StatementsPerHour per active tenant.
	StatementsPerHour int
	// ResidentTenants caps how many tenants stay materialized across a
	// barrier; <= 0 means unlimited (hibernation never triggers).
	ResidentTenants int
	// AutoImplementFraction of tenants have auto-implementation on.
	AutoImplementFraction float64
	// UserIndexes stamps the archetypes' "user tuned" indexes onto tenants.
	UserIndexes bool
	// Workers sizes the tenant worker pool; <= 0 means one per CPU.
	// Results do not depend on the value.
	Workers int
	Plane   controlplane.Config
	Chaos   ChaosConfig
	// Stream receives one line per completed tenant, emitted at the hour
	// barrier where the tenant finishes; nil discards them.
	Stream io.Writer
}

// DefaultScaleSpec returns a scale-mode configuration.
func DefaultScaleSpec(tenants, hours int) ScaleSpec {
	return ScaleSpec{
		Tenants:               tenants,
		Hours:                 hours,
		Archetypes:            4,
		Seed:                  20170301,
		Scale:                 1.0,
		ActiveFraction:        0.05,
		StatementsPerHour:     10,
		AutoImplementFraction: 0.5,
		UserIndexes:           true,
		Plane:                 controlplane.DefaultConfig(),
	}
}

// ScaleResult summarizes a scale run. Report() renders only the
// residency-independent portion — the bytes that must match across
// -workers and -resident-tenants settings; the residency counters
// (Hibernations, Rehydrations, PeakResident, PeakHeapBytes) measure the
// memory machinery itself and legitimately vary with the cap.
type ScaleResult struct {
	Tenants     int
	EverActive  int
	TenantHours int64
	Statements  int64
	Completed   int
	DrainHours  int

	Hibernations  int64
	Rehydrations  int64
	SnapshotBytes int64
	PeakResident  int
	PeakHeapBytes uint64

	Stats   controlplane.OperationalStats
	Chaos   *ChaosReport
	Metrics *metrics.Registry
}

// Report renders the deterministic summary block: identical bytes at any
// -workers count and any -resident-tenants cap for the same seed/flags.
func (r *ScaleResult) Report() string {
	s := r.Stats
	var b strings.Builder
	b.WriteString("fleet scale run:\n")
	fmt.Fprintf(&b, "  tenants (nominal / ever active):   %d / %d\n", r.Tenants, r.EverActive)
	fmt.Fprintf(&b, "  tenant-hours replayed:             %d\n", r.TenantHours)
	fmt.Fprintf(&b, "  statements replayed:               %d\n", r.Statements)
	fmt.Fprintf(&b, "  tenants completed (streamed):      %d\n", r.Completed)
	fmt.Fprintf(&b, "  create / drop recommendations:     %d / %d\n", s.CreateRecommended, s.DropRecommended)
	fmt.Fprintf(&b, "  indexes auto-created / dropped:    %d / %d\n", s.CreatesImplemented, s.DropsImplemented)
	fmt.Fprintf(&b, "  validations / reverts:             %d / %d\n", s.Validations, s.Reverts)
	fmt.Fprintf(&b, "  incidents:                         %d\n", s.Incidents)
	return b.String()
}

// ResidencyReport renders the residency counters. These depend on
// -resident-tenants (and PeakHeapBytes on the host), so the fleetsim
// binary prints them to stderr, next to the phase timers.
func (r *ScaleResult) ResidencyReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "residency: peak %d resident, %d hibernations, %d rehydrations, %d snapshot bytes, peak heap %d bytes\n",
		r.PeakResident, r.Hibernations, r.Rehydrations, r.SnapshotBytes, r.PeakHeapBytes)
	return b.String()
}

// tenantPhase is a scale tenant's residency state.
type tenantPhase uint8

const (
	// phaseCold tenants were never constructed (no activity yet).
	phaseCold tenantPhase = iota
	// phaseResident tenants are fully materialized.
	phaseResident
	// phaseHibernated tenants live as one snapshot blob plus shells.
	phaseHibernated
	// phaseDone tenants finished (streamed their line) and were freed.
	phaseDone
)

// scaleTenant is the harness's per-tenant bookkeeping: ~100 bytes while
// cold or done, a snapshot blob while hibernated, a full tenant while
// resident.
type scaleTenant struct {
	name string
	seed int64
	arch *workload.Archetype
	auto bool

	phase    tenantPhase
	tn       *workload.Tenant
	clock    *sim.VirtualClock
	snapshot []byte

	// lastActive is the most recent hour the tenant replayed workload
	// (the LRU eviction key); finalHour is the last hour the activity
	// model will ever wake it (-1: never).
	lastActive int
	finalHour  int

	activeHours int
}

// activeAt decides whether a tenant replays workload in a given hour. It
// is a pure function of (fleet seed, tenant name, hour) — no RNG object,
// no consumed state — so 100k tenants times hundreds of hours cost one
// short hash chain each, any tenant's schedule can be (re)computed at any
// time (the streaming reporter precomputes each tenant's final hour), and
// the answer can never depend on residency or worker scheduling. The mix
// is FNV-64a over the name folded with splitmix64 finalizers.
func activeAt(seed int64, name string, hour int, fraction float64) bool {
	if fraction >= 1 {
		return true
	}
	if fraction <= 0 {
		return false
	}
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(hour) * 0xff51afd7ed558ccd
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11)/(1<<53) < fraction
}

// scaleRun is the in-flight state of RunScale.
type scaleRun struct {
	spec    ScaleSpec
	region  *sim.VirtualClock
	reg     *metrics.Registry
	tenants []*scaleTenant
	stream  io.Writer

	cp *controlplane.ControlPlane
	ch *chaosHarness

	res *ScaleResult
}

func (s *scaleRun) plane() *controlplane.ControlPlane {
	if s.ch != nil {
		return s.ch.runner.Plane
	}
	return s.cp
}

func (s *scaleRun) stepFor(include func(string) bool) {
	if s.ch != nil {
		s.ch.runner.StepFor(include)
		return
	}
	s.cp.StepFor(include)
}

func (s *scaleRun) manage(tn *workload.Tenant, set controlplane.Settings) {
	if s.ch != nil {
		s.ch.enroll(tn, set)
		s.ch.runner.Plane.Manage(tn.DB, "server-0", set)
		return
	}
	s.cp.Manage(tn.DB, "server-0", set)
}

// align advances the region clock and every resident tenant clock to the
// fleet-wide maximum. Hibernated and cold tenants need no alignment: a
// hibernated clock was aligned at its last barrier and the region clock
// only moves forward, so AdvanceTo(region.Now()) at rehydration lands it
// exactly where continuous alignment would have.
func (s *scaleRun) align() {
	max := s.region.Now()
	for _, st := range s.tenants {
		if st.phase == phaseResident {
			if t := st.clock.Now(); t.After(max) {
				max = t
			}
		}
	}
	s.region.AdvanceTo(max)
	for _, st := range s.tenants {
		if st.phase == phaseResident {
			st.clock.AdvanceTo(max)
		}
	}
}

// parkResidents parks every resident tenant's engine. Running at every
// barrier — pressured or not — is what lets a rehydrated tenant match its
// never-hibernated twin: both cross each barrier with an empty plan-cost
// cache and expired lock leases, so neither carries state a snapshot
// would have to capture.
func (s *scaleRun) parkResidents() {
	for _, st := range s.tenants {
		if st.phase == phaseResident {
			st.tn.DB.Park()
		}
	}
}

// materialize brings every tenant in need (indices into s.tenants, cold or
// hibernated) to resident, in parallel, then registers newly constructed
// tenants with the control plane serially in tenant order.
func (s *scaleRun) materialize(need []int) error {
	type slot struct {
		built bool
		err   error
	}
	slots := make([]slot, len(need))
	regionNow := s.region.Now()
	rehydrated := int64(0)
	for _, i := range need {
		if s.tenants[i].phase == phaseHibernated {
			rehydrated++
		}
	}
	forEach(s.spec.Workers, len(need), func(k int) {
		st := s.tenants[need[k]]
		switch st.phase {
		case phaseCold:
			clock := sim.NewVirtualClock(regionNow)
			tn, err := workload.NewTenantFromArchetype(st.arch, st.name, st.seed, clock)
			if err != nil {
				slots[k].err = fmt.Errorf("fleet: stamping tenant %s: %w", st.name, err)
				return
			}
			tn.DB.SetMetrics(s.reg)
			st.tn, st.clock = tn, clock
			st.phase = phaseResident
			slots[k].built = true
		case phaseHibernated:
			if err := rehydrateTenant(st.tn, st.snapshot); err != nil {
				slots[k].err = fmt.Errorf("fleet: rehydrating tenant %s: %w", st.name, err)
				return
			}
			st.snapshot = nil
			st.clock.AdvanceTo(regionNow)
			st.phase = phaseResident
		}
	})
	for k, sl := range slots {
		if sl.err != nil {
			return sl.err
		}
		if sl.built {
			st := s.tenants[need[k]]
			s.manage(st.tn, controlplane.Settings{AutoCreate: st.auto, AutoDrop: st.auto})
			s.res.EverActive++
		}
	}
	s.res.Rehydrations += rehydrated
	s.reg.Counter(descRehydrations).Add(rehydrated)
	return nil
}

// sweepDone emits the streaming line for every resident tenant that has
// passed its final active hour and holds no live recommendation, then
// frees it. In chaos mode the freed state is kept as a snapshot so the
// end-of-run invariant checker can audit the tenant's catalog.
func (s *scaleRun) sweepDone(hour int, openAfter map[string]bool) {
	for _, st := range s.tenants {
		if st.phase != phaseResident || st.finalHour > hour || openAfter[st.name] {
			continue
		}
		recs := len(s.plane().ListRecommendations(st.tn.DB.Name()))
		fmt.Fprintf(s.stream, "tenant %s done hour=%d archetype=%s active_hours=%d recommendations=%d indexes=%d\n",
			st.name, hour, st.arch.Name, st.activeHours, recs, len(st.tn.DB.IndexDefs()))
		if s.ch != nil {
			// The invariant checker will need the catalog back.
			st.snapshot = hibernateTenant(st.tn)
		}
		st.tn.Release()
		st.phase = phaseDone
		s.res.Completed++
	}
}

// evict hibernates least-recently-active resident tenants until the
// resident count fits the cap. Tenants with live recommendation records
// are skipped — they would be rehydrated next hour anyway — so the cap is
// soft by the number of in-flight state machines. Victim selection is
// serial and keyed by (lastActive, tenant index); the snapshot work fans
// out across the worker pool.
func (s *scaleRun) evict(openAfter map[string]bool) {
	cap := s.spec.ResidentTenants
	if cap <= 0 {
		return
	}
	var resident []int
	for i, st := range s.tenants {
		if st.phase == phaseResident {
			resident = append(resident, i)
		}
	}
	if len(resident) <= cap {
		return
	}
	sort.Slice(resident, func(a, b int) bool {
		ta, tb := s.tenants[resident[a]], s.tenants[resident[b]]
		if ta.lastActive != tb.lastActive {
			return ta.lastActive < tb.lastActive
		}
		return resident[a] < resident[b]
	})
	var victims []int
	excess := len(resident) - cap
	for _, i := range resident {
		if len(victims) == excess {
			break
		}
		if openAfter[s.tenants[i].name] {
			continue
		}
		victims = append(victims, i)
	}
	forEach(s.spec.Workers, len(victims), func(k int) {
		st := s.tenants[victims[k]]
		st.snapshot = hibernateTenant(st.tn)
		st.tn.Release()
		st.phase = phaseHibernated
	})
	bytes := int64(0)
	for _, i := range victims {
		bytes += int64(len(s.tenants[i].snapshot))
	}
	s.res.Hibernations += int64(len(victims))
	s.res.SnapshotBytes += bytes
	s.reg.Counter(descHibernations).Add(int64(len(victims)))
	s.reg.Counter(descSnapshotBytes).Add(bytes)
}

// observeResidency updates the resident gauge and the peak trackers.
func (s *scaleRun) observeResidency() {
	n := 0
	for _, st := range s.tenants {
		if st.phase == phaseResident {
			n++
		}
	}
	s.reg.Gauge(descResidentTenants).Set(int64(n))
	if n > s.res.PeakResident {
		s.res.PeakResident = n
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > s.res.PeakHeapBytes {
		s.res.PeakHeapBytes = ms.HeapAlloc
	}
}

// RunScale executes a scale-mode fleet run. Tenants are stamped lazily
// from shared archetypes on first activity, replay in parallel across the
// worker pool during active hours, hibernate under resident-set pressure,
// and stream their result line the barrier they complete.
func RunScale(spec ScaleSpec) (*ScaleResult, error) {
	if spec.Tenants <= 0 || spec.Hours <= 0 {
		return nil, fmt.Errorf("fleet: scale run needs tenants and hours")
	}
	if spec.Archetypes <= 0 {
		spec.Archetypes = 1
	}
	if spec.Stream == nil {
		spec.Stream = io.Discard
	}
	reg := spec.Plane.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
		spec.Plane.Metrics = reg
	}

	// Archetype templates: built once each on throwaway clocks, then only
	// their harvested shared state survives.
	archs := make([]*workload.Archetype, spec.Archetypes)
	for a := range archs {
		tier := engine.TierStandard
		switch a % 4 {
		case 2:
			tier = engine.TierBasic
		case 3:
			tier = engine.TierPremium
		}
		p := workload.Profile{
			Name:        fmt.Sprintf("arch%02d", a),
			Tier:        tier,
			Seed:        spec.Seed + int64(a)*104729,
			Scale:       spec.Scale,
			UserIndexes: spec.UserIndexes,
		}
		arch, err := workload.NewArchetype(p, sim.NewClock())
		if err != nil {
			return nil, fmt.Errorf("fleet: archetype %d: %w", a, err)
		}
		archs[a] = arch
	}

	s := &scaleRun{
		spec:   spec,
		region: sim.NewClock(),
		reg:    reg,
		stream: spec.Stream,
		res:    &ScaleResult{Tenants: spec.Tenants, Metrics: reg},
	}
	autoRNG := sim.NewRNG(spec.Seed).Child("scale/auto")
	s.tenants = make([]*scaleTenant, spec.Tenants)
	for i := range s.tenants {
		name := fmt.Sprintf("t%07d", i)
		st := &scaleTenant{
			name:       name,
			seed:       spec.Seed + int64(i)*7919,
			arch:       archs[i%len(archs)],
			auto:       autoRNG.Float64() < spec.AutoImplementFraction,
			lastActive: -1,
			finalHour:  -1,
		}
		for h := spec.Hours - 1; h >= 0; h-- {
			if activeAt(spec.Seed, name, h, spec.ActiveFraction) {
				st.finalHour = h
				break
			}
		}
		s.tenants[i] = st
	}

	mem := controlplane.NewMemStore()
	var store controlplane.Store = mem
	var hub *telemetry.Hub
	if spec.Chaos.Enabled {
		s.ch = newChaosHarness(spec.Chaos, spec.Seed, mem)
		store, hub = s.ch.wrapped, s.ch.hub
	}
	s.cp = controlplane.New(spec.Plane, s.region, store, hub)
	if s.ch != nil {
		s.ch.attach(s.cp, spec.Plane, s.region)
	}

	for h := 0; h < spec.Hours; h++ {
		// The stepped set for this hour: active tenants plus tenants whose
		// recommendation records are still live. Both inputs are
		// residency-independent, so so is everything downstream.
		openBefore := s.plane().DatabasesWithOpenRecords()
		var active, need []int
		for i, st := range s.tenants {
			isActive := st.finalHour >= h && activeAt(spec.Seed, st.name, h, spec.ActiveFraction)
			if isActive {
				active = append(active, i)
			}
			if (isActive || (openBefore[st.name] && st.phase != phaseCold && st.phase != phaseDone)) &&
				st.phase != phaseResident {
				need = append(need, i)
			}
		}
		if err := s.materialize(need); err != nil {
			return nil, err
		}
		include := make(map[string]bool, len(active))
		for _, st := range s.tenants {
			if openBefore[st.name] && st.phase == phaseResident {
				include[st.name] = true
			}
		}
		forEachObserved(reg, spec.Workers, len(active), func(k int) {
			st := s.tenants[active[k]]
			st.tn.Run(0, spec.StatementsPerHour)
			st.lastActive = h
			st.activeHours++
		})
		for _, i := range active {
			include[s.tenants[i].name] = true
		}
		s.res.TenantHours += int64(len(active))
		s.res.Statements += int64(len(active)) * int64(spec.StatementsPerHour)
		reg.Counter(descTenantHours).Add(int64(len(active)))

		s.region.Advance(time.Hour)
		s.align()
		s.stepFor(func(name string) bool { return include[name] })
		s.align()
		s.parkResidents()

		openAfter := s.plane().DatabasesWithOpenRecords()
		s.sweepDone(h, openAfter)
		s.evict(openAfter)
		s.observeResidency()
	}

	if s.ch != nil {
		s.res.DrainHours = s.drainChaos()
	}
	s.res.Stats = s.plane().OpStats()
	if s.ch != nil {
		// The invariant checker audits live catalogs: bring every tenant
		// the chaos harness enrolled back to resident first.
		var need []int
		for i, st := range s.tenants {
			if st.phase == phaseHibernated || (st.phase == phaseDone && st.snapshot != nil) {
				st.phase = phaseHibernated
				need = append(need, i)
			}
		}
		errs := make([]error, len(need))
		forEach(spec.Workers, len(need), func(k int) {
			st := s.tenants[need[k]]
			if err := rehydrateTenant(st.tn, st.snapshot); err != nil {
				errs[k] = err
				return
			}
			st.snapshot = nil
			st.phase = phaseResident
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		s.res.Chaos = s.ch.report(s.region.Now(), spec.Plane, s.res.DrainHours)
	}
	return s.res, nil
}

// drainChaos is the scale-mode analogue of chaosHarness.drain: injection
// off, analysis frozen, then filtered hourly steps until no record is
// mid-flight (or the budget runs out). Only tenants with live records are
// rehydrated and stepped; completed tenants keep streaming their lines as
// their records settle.
func (s *scaleRun) drainChaos() int {
	ch := s.ch
	ch.disable()
	max := ch.cfg.MaxDrainHours
	if max <= 0 {
		max = 21 * 24
	}
	hour := s.spec.Hours
	hours := 0
	for ; hours < max && ch.inFlight(); hours++ {
		ch.freezeAnalysis(s.region.Now())
		open := s.plane().DatabasesWithOpenRecords()
		var need []int
		for i, st := range s.tenants {
			if open[st.name] && st.phase == phaseHibernated {
				need = append(need, i)
			}
		}
		if err := s.materialize(need); err != nil {
			// Rehydration failures are impossible for snapshots we wrote
			// ourselves; treat one as the bug it would be.
			panic(err)
		}
		s.region.Advance(time.Hour)
		s.align()
		s.stepFor(func(name string) bool { return open[name] })
		s.align()
		s.parkResidents()
		openAfter := s.plane().DatabasesWithOpenRecords()
		s.sweepDone(hour+hours, openAfter)
		s.evict(openAfter)
		s.observeResidency()
	}
	return hours
}
