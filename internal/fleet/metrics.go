package fleet

import "autoindex/internal/metrics"

// Fleet-level instrumentation. Everything except worker-shard
// throughput is updated serially at hour barriers (or counted with
// commutative atomic adds inside the parallel section), so the values
// are identical at any -workers count. Shard throughput is the one
// legitimately scheduling-dependent metric: it is marked volatile and
// therefore excluded from the deterministic snapshot, appearing only in
// the full /metrics exposition.
var (
	descTenants = metrics.NewGaugeDesc("fleet.tenants",
		"databases currently in the fleet")
	descTenantHours = metrics.NewCounterDesc("fleet.tenant_hours",
		"tenant-hours of workload replayed")
	descFailovers = metrics.NewCounterDesc("fleet.failovers",
		"simulated server failovers (MI DMV resets)")
	descTenantsGrown = metrics.NewCounterDesc("fleet.tenants_grown",
		"databases added mid-run by fleet growth")
	descWorkerItems = metrics.NewHistogramDesc("fleet.worker_shard_items",
		"items processed per worker slot per parallel section (shard throughput)",
		1, 2, 4, 8, 16, 32, 64, 128, 256, 1_024).MarkVolatile()
)
