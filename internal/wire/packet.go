package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// MaxPayload is the protocol's per-frame payload limit: a frame of
// exactly this size signals that the payload continues in the next
// frame, and the logical packet ends at the first shorter frame.
const MaxPayload = 1<<24 - 1

// ErrPacketTooLarge is returned by ReadPacket when a logical packet
// exceeds the configured total cap. The continuation frames are drained
// (so the stream stays framed and an error packet can still be sent)
// but their contents are discarded.
var ErrPacketTooLarge = errors.New("wire: packet exceeds the maximum allowed size")

// Conn frames a net.Conn into MySQL packets: 3-byte little-endian
// payload length, 1-byte sequence id, payload. Sequence ids increment
// per frame and reset to 0 at each command boundary (ResetSeq); both
// sides verify them, so a desynchronized stream fails fast instead of
// misparsing.
type Conn struct {
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	seq uint8
	// maxPayload is the frame-split threshold. It is MaxPayload in
	// production; tests lower it to exercise continuation frames
	// without 16MB statements.
	maxPayload int
	// maxTotal caps the reassembled logical packet; 0 means unbounded.
	maxTotal int
}

// NewConn wraps a network connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc:         nc,
		br:         bufio.NewReader(nc),
		bw:         bufio.NewWriter(nc),
		maxPayload: MaxPayload,
	}
}

// SetMaxPayload lowers the frame-split threshold (both peers must
// agree). Values are clamped to [16, MaxPayload].
func (c *Conn) SetMaxPayload(n int) {
	if n < 16 {
		n = 16
	}
	if n > MaxPayload {
		n = MaxPayload
	}
	c.maxPayload = n
}

// SetMaxTotal caps the reassembled logical packet size; 0 disables the
// cap. Servers set it so a hostile client cannot make them buffer an
// arbitrarily large statement.
func (c *Conn) SetMaxTotal(n int) { c.maxTotal = n }

// ResetSeq rewinds the sequence counter to 0: called by the client
// before each command, and by the server after reading one (responses
// continue the command's sequence).
func (c *Conn) ResetSeq() { c.seq = 0 }

// SetReadDeadline delegates to the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// RemoteAddr delegates to the underlying connection.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// readHeader reads one frame header and verifies its sequence id.
func (c *Conn) readHeader() (int, error) {
	var h [4]byte
	if _, err := io.ReadFull(c.br, h[:]); err != nil {
		return 0, err
	}
	if h[3] != c.seq {
		return 0, fmt.Errorf("wire: out-of-order packet: got seq %d, want %d", h[3], c.seq)
	}
	c.seq++
	return int(h[0]) | int(h[1])<<8 | int(h[2])<<16, nil
}

// ReadPacket reads one logical packet, reassembling continuation
// frames. If the total exceeds maxTotal the remaining frames are read
// and discarded (keeping the stream framed) and ErrPacketTooLarge is
// returned.
func (c *Conn) ReadPacket() ([]byte, error) {
	var payload []byte
	total := 0
	oversized := false
	for {
		n, err := c.readHeader()
		if err != nil {
			return nil, err
		}
		total += n
		if !oversized && c.maxTotal > 0 && total > c.maxTotal {
			oversized = true
		}
		if oversized {
			if _, err := io.CopyN(io.Discard, c.br, int64(n)); err != nil {
				return nil, err
			}
		} else {
			frame := make([]byte, n)
			if _, err := io.ReadFull(c.br, frame); err != nil {
				return nil, err
			}
			payload = append(payload, frame...)
		}
		if n < c.maxPayload {
			break
		}
	}
	if oversized {
		return nil, ErrPacketTooLarge
	}
	return payload, nil
}

// WritePacket writes one logical packet, splitting it into frames at
// the split threshold and flushing the connection. A payload that is an
// exact multiple of the threshold is terminated by an empty frame, as
// the protocol requires.
func (c *Conn) WritePacket(payload []byte) error {
	for len(payload) >= c.maxPayload {
		if err := c.writeFrame(payload[:c.maxPayload]); err != nil {
			return err
		}
		payload = payload[c.maxPayload:]
	}
	if err := c.writeFrame(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *Conn) writeFrame(p []byte) error {
	h := [4]byte{byte(len(p)), byte(len(p) >> 8), byte(len(p) >> 16), c.seq}
	c.seq++
	if _, err := c.bw.Write(h[:]); err != nil {
		return err
	}
	_, err := c.bw.Write(p)
	return err
}
