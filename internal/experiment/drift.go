package experiment

import (
	"fmt"
	"strings"
)

// DriftArm is one recommender policy's outcome under the workload-drift
// scenario: a fleet run with every database pinned to a single
// recommendation source, measured after the template mix rotates
// mid-run. The scenario pack (internal/scenario) fills these in from
// the control plane's operational counters; this package only scores
// and renders them, mirroring how Fig6Summary sits below the fleet.
type DriftArm struct {
	// Policy labels the arm ("DTA", "MI").
	Policy string
	// Implemented counts index creates executed across the run.
	Implemented int64
	// Reverted counts validation-triggered reverts — the paper's measure
	// of recommendations the workload proved wrong, which drift inflates
	// for estimate-driven tuners.
	Reverted int64
	// DropRecommendations counts drop recommendations filed (the
	// dropper reclaiming indexes the drift staled).
	DropRecommendations int64
}

// RevertRate is Reverted/Implemented (0 when nothing was implemented).
func (a DriftArm) RevertRate() float64 {
	if a.Implemented == 0 {
		return 0
	}
	return float64(a.Reverted) / float64(a.Implemented)
}

// DriftSummary is the fig6-style two-arm comparison of recommender
// robustness under workload drift ("DBA bandits" frames drift as where
// estimate-driven tuners are weakest; §8.1's revert rate is the metric
// that shows it).
type DriftSummary struct {
	Arms []DriftArm
}

// String renders the comparison deterministically, arms in input order.
func (s DriftSummary) String() string {
	var b strings.Builder
	b.WriteString("Workload-drift revert comparison (per recommender policy):\n")
	for _, a := range s.Arms {
		fmt.Fprintf(&b, "  %-4s implemented %3d, reverted %3d (%5.1f%%), drop recs %3d\n",
			a.Policy, a.Implemented, a.Reverted, a.RevertRate()*100, a.DropRecommendations)
	}
	return b.String()
}
