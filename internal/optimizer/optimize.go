package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"autoindex/internal/dmv"
	"autoindex/internal/metrics"
	"autoindex/internal/schema"
	"autoindex/internal/sqlparser"
)

// ErrWhatIfUnsupported is returned when a statement cannot be optimized in
// what-if mode (the real API has the same limitation for BULK INSERT and
// incomplete batches, §5.3.2).
var ErrWhatIfUnsupported = fmt.Errorf("optimizer: statement cannot be optimized in what-if mode")

// MIObserver receives missing-index candidates emitted during query
// optimization; the engine wires it to the MI DMV store.
type MIObserver interface {
	ObserveMissingIndex(c dmv.Candidate, queryHash uint64, estCost, improvementPct float64)
}

// Optimizer plans statements against a catalog.
type Optimizer struct {
	Cat Catalog
	// MI, when non-nil, receives missing-index candidates (disabled in
	// what-if mode so DTA's probing does not pollute the DMV).
	MI MIObserver
	// WhatIfMode marks planning on behalf of the what-if API.
	WhatIfMode bool
	// Reg, when non-nil, receives optimizer metrics (plan counts split
	// by mode). A nil registry disables them without branching here.
	Reg *metrics.Registry

	calls int64
}

// Calls returns how many optimizations this optimizer has performed;
// what-if call budgeting in DTA reads it.
func (o *Optimizer) Calls() int64 { return atomic.LoadInt64(&o.calls) }

// Plan builds a physical plan for stmt.
func (o *Optimizer) Plan(stmt sqlparser.Statement) (*Plan, error) {
	atomic.AddInt64(&o.calls, 1)
	if o.WhatIfMode {
		o.Reg.Counter(descWhatIfCalls).Inc()
	} else {
		o.Reg.Counter(descPlans).Inc()
	}
	var root *Node
	var err error
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		root, err = o.planSelect(s)
	case *sqlparser.InsertStmt:
		root, err = o.planInsert(s)
	case *sqlparser.UpdateStmt:
		root, err = o.planUpdate(s)
	case *sqlparser.DeleteStmt:
		root, err = o.planDelete(s)
	case *sqlparser.BulkInsertStmt:
		if o.WhatIfMode {
			return nil, ErrWhatIfUnsupported
		}
		root, err = o.planBulkInsert(s)
	default:
		return nil, fmt.Errorf("optimizer: cannot plan %T", stmt)
	}
	if err != nil {
		return nil, err
	}
	p := &Plan{Stmt: stmt, Root: root}
	p.finalize()
	if !o.WhatIfMode {
		p.QueryHash = stmt.Fingerprint()
	}
	if o.MI != nil && !o.WhatIfMode {
		o.emitMissingIndexes(stmt, p)
	}
	return p, nil
}

// ---- binding ----

type boundTable struct {
	ref   sqlparser.TableRef
	info  TableInfo
	preds []sqlparser.Predicate
	// needed is the set of this table's columns referenced by the query.
	needed map[string]bool
}

func (b *boundTable) neededCols() []string {
	out := make([]string, 0, len(b.needed))
	for c := range b.needed {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

type binding struct {
	tables []*boundTable
	byName map[string]*boundTable
}

func (o *Optimizer) bind(from sqlparser.TableRef, joins []sqlparser.Join) (*binding, error) {
	b := &binding{byName: make(map[string]*boundTable)}
	add := func(ref sqlparser.TableRef) error {
		info, ok := o.Cat.Table(ref.Table)
		if !ok {
			return fmt.Errorf("optimizer: unknown table %q", ref.Table)
		}
		bt := &boundTable{ref: ref, info: info, needed: make(map[string]bool)}
		b.tables = append(b.tables, bt)
		key := strings.ToLower(ref.Name())
		if _, dup := b.byName[key]; dup {
			return fmt.Errorf("optimizer: duplicate table alias %q", ref.Name())
		}
		b.byName[key] = bt
		if ref.Alias != "" {
			b.byName[strings.ToLower(ref.Table)] = bt
		}
		return nil
	}
	if err := add(from); err != nil {
		return nil, err
	}
	for _, j := range joins {
		if err := add(j.Table); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// resolve maps a column reference to its table and canonical column name.
func (b *binding) resolve(c sqlparser.ColRef) (*boundTable, string, error) {
	if c.Table != "" {
		bt := b.byName[strings.ToLower(c.Table)]
		if bt == nil {
			return nil, "", fmt.Errorf("optimizer: unknown table or alias %q", c.Table)
		}
		idx := bt.info.Def.ColumnIndex(c.Column)
		if idx < 0 {
			return nil, "", fmt.Errorf("optimizer: column %q not in table %q", c.Column, bt.ref.Table)
		}
		return bt, bt.info.Def.Columns[idx].Name, nil
	}
	var found *boundTable
	var name string
	for _, bt := range b.tables {
		if idx := bt.info.Def.ColumnIndex(c.Column); idx >= 0 {
			if found != nil {
				return nil, "", fmt.Errorf("optimizer: ambiguous column %q", c.Column)
			}
			found = bt
			name = bt.info.Def.Columns[idx].Name
		}
	}
	if found == nil {
		return nil, "", fmt.Errorf("optimizer: unknown column %q", c.Column)
	}
	return found, name, nil
}

func (b *binding) need(bt *boundTable, col string) { bt.needed[strings.ToLower(col)] = true }

// ---- selectivity estimation ----

// Fallback selectivities when no statistics exist (SQL Server uses similar
// magic constants).
const (
	defaultEqSel    = 0.01
	defaultRangeSel = 0.30
	defaultNeSel    = 0.90
)

func (o *Optimizer) selectivity(table string, p sqlparser.Predicate, col string) float64 {
	st, ok := o.Cat.ColumnStats(table, col)
	if !ok || st == nil {
		switch {
		case p.Op.IsEquality():
			return defaultEqSel
		case p.Op.IsRange():
			return defaultRangeSel
		default:
			return defaultNeSel
		}
	}
	switch p.Op {
	case sqlparser.OpEQ:
		return st.SelectivityEq(p.Val)
	case sqlparser.OpNE:
		return clamp01(1 - st.SelectivityEq(p.Val))
	case sqlparser.OpLT:
		v := p.Val
		return st.SelectivityRange(nil, false, &v, false)
	case sqlparser.OpLE:
		v := p.Val
		return st.SelectivityRange(nil, false, &v, true)
	case sqlparser.OpGT:
		v := p.Val
		return st.SelectivityRange(&v, false, nil, false)
	case sqlparser.OpGE:
		v := p.Val
		return st.SelectivityRange(&v, true, nil, false)
	default:
		return defaultNeSel
	}
}

func clamp01(f float64) float64 {
	switch {
	case f < 0:
		return 0
	case f > 1:
		return 1
	default:
		return f
	}
}

func (o *Optimizer) distinct(table, col string) float64 {
	if st, ok := o.Cat.ColumnStats(table, col); ok && st != nil && st.Distinct > 0 {
		return st.Distinct
	}
	if t, ok := o.Cat.Table(table); ok {
		d := float64(t.RowCount) / 10
		if d < 1 {
			d = 1
		}
		return d
	}
	return 100
}

// ---- access path selection ----

// accessPath describes one candidate way to read a table.
type accessPath struct {
	node *Node
	// orderedBy lists the columns (lowercased) the output is sorted by
	// (ascending), after any equality-prefix seek.
	orderedBy []string
	covering  bool
}

// bestAccessPath chooses the cheapest access for bt given its predicates
// and the columns the rest of the plan needs from it.
func (o *Optimizer) bestAccessPath(bt *boundTable) accessPath {
	paths := o.enumerateAccessPaths(bt)
	best := paths[0]
	for _, p := range paths[1:] {
		if p.node.EstCost < best.node.EstCost {
			best = p
		}
	}
	return best
}

func (o *Optimizer) enumerateAccessPaths(bt *boundTable) []accessPath {
	var paths []accessPath
	paths = append(paths, o.baseScanPath(bt))
	if p, ok := o.clusteredSeekPath(bt); ok {
		paths = append(paths, p)
	}
	for _, ix := range o.Cat.Indexes(bt.ref.Table) {
		if ix.Def.Kind == schema.Clustered {
			continue // the clustered index is the base scan
		}
		if p, ok := o.indexPath(bt, ix); ok {
			paths = append(paths, p)
		}
	}
	return paths
}

// clusteredSeekPath seeks the clustered index when predicates match a
// primary-key prefix. The clustered index covers every column, so the path
// never needs a lookup.
func (o *Optimizer) clusteredSeekPath(bt *boundTable) (accessPath, bool) {
	if bt.info.ClusteredHeight == 0 || len(bt.info.Def.PrimaryKey) == 0 {
		return accessPath{}, false
	}
	var nonKey []string
	for _, c := range bt.info.Def.Columns {
		inPK := false
		for _, pk := range bt.info.Def.PrimaryKey {
			if strings.EqualFold(pk, c.Name) {
				inPK = true
				break
			}
		}
		if !inPK {
			nonKey = append(nonKey, c.Name)
		}
	}
	synthetic := IndexInfo{
		Def: schema.IndexDef{
			Name:            clusteredIndexName(bt.ref.Table),
			Table:           bt.ref.Table,
			Kind:            schema.Clustered,
			KeyColumns:      append([]string(nil), bt.info.Def.PrimaryKey...),
			IncludedColumns: nonKey,
		},
		Height:    bt.info.ClusteredHeight,
		LeafPages: bt.info.DataPages,
		RowCount:  bt.info.RowCount,
	}
	p, ok := o.indexPath(bt, synthetic)
	if !ok {
		return accessPath{}, false
	}
	// Only a genuine seek adds value; a covering scan of the clustered
	// index is the base scan.
	if p.node.Kind != KindIndexSeek {
		return accessPath{}, false
	}
	return p, true
}

// baseScanPath scans the heap or clustered index, applying all predicates
// as residual filters.
func (o *Optimizer) baseScanPath(bt *boundTable) accessPath {
	rows := float64(bt.info.RowCount)
	out := rows
	for _, p := range bt.preds {
		out *= o.selectivity(bt.ref.Table, p, p.Col.Column)
	}
	n := &Node{
		Kind:     KindSeqScan,
		Table:    bt.ref.Table,
		Alias:    bt.ref.Name(),
		Residual: bt.preds,
		EstRows:  math.Max(out, 0),
		EstCost:  float64(bt.info.DataPages) + rows*CPUPerRow,
	}
	var ordered []string
	if bt.info.ClusteredHeight > 0 {
		for _, pk := range bt.info.Def.PrimaryKey {
			ordered = append(ordered, strings.ToLower(pk))
		}
	}
	return accessPath{node: n, orderedBy: ordered, covering: true}
}

// indexPath builds a seek or covering-scan path over ix, if useful.
func (o *Optimizer) indexPath(bt *boundTable, ix IndexInfo) (accessPath, bool) {
	if ix.Def.Hypothetical && !o.WhatIfMode {
		// Hypothetical indexes are only visible to what-if planning.
		return accessPath{}, false
	}
	rows := float64(bt.info.RowCount)
	// Partition predicates among seek-eq (key prefix), one seek-range (next
	// key column), and residual.
	remaining := append([]sqlparser.Predicate(nil), bt.preds...)
	var seekEq, seekRange, residual []sqlparser.Predicate
	matchedCols := 0
	for _, keyCol := range ix.Def.KeyColumns {
		found := -1
		for i, p := range remaining {
			if strings.EqualFold(p.Col.Column, keyCol) && p.Op.IsEquality() {
				found = i
				break
			}
		}
		if found < 0 {
			break
		}
		seekEq = append(seekEq, remaining[found])
		remaining = append(remaining[:found], remaining[found+1:]...)
		matchedCols++
	}
	// One range predicate pair on the next key column (SQL Server's storage
	// engine can seek multiple equality predicates but only one inequality,
	// §5.2).
	if matchedCols < len(ix.Def.KeyColumns) {
		next := ix.Def.KeyColumns[matchedCols]
		kept := remaining[:0]
		for _, p := range remaining {
			if strings.EqualFold(p.Col.Column, next) && p.Op.IsRange() && len(seekRange) < 2 {
				// Accept at most one lower and one upper bound.
				dir := rangeDir(p.Op)
				dup := false
				for _, q := range seekRange {
					if rangeDir(q.Op) == dir {
						dup = true
					}
				}
				if !dup {
					seekRange = append(seekRange, p)
					continue
				}
			}
			kept = append(kept, p)
		}
		remaining = kept
	}
	residual = remaining
	covering := coversWithLocator(ix.Def, bt.info, bt.neededCols())
	if len(seekEq) == 0 && len(seekRange) == 0 {
		// No sargable predicate: only useful as a covering scan narrower
		// than the base table.
		if !covering {
			return accessPath{}, false
		}
		n := &Node{
			Kind:     KindIndexScan,
			Table:    bt.ref.Table,
			Alias:    bt.ref.Name(),
			Index:    ix.Def.Name,
			Residual: residual,
			EstRows:  o.filteredRows(bt, rows, nil, nil, residual),
			EstCost:  float64(ix.LeafPages) + rows*CPUPerRow,
		}
		return accessPath{node: n, orderedBy: lowerAll(ix.Def.KeyColumns), covering: true}, true
	}

	seekSel := 1.0
	for _, p := range seekEq {
		seekSel *= o.selectivity(bt.ref.Table, p, p.Col.Column)
	}
	for _, p := range seekRange {
		seekSel *= o.selectivity(bt.ref.Table, p, p.Col.Column)
	}
	seekRows := rows * seekSel
	outRows := seekRows
	for _, p := range residual {
		outRows *= o.selectivity(bt.ref.Table, p, p.Col.Column)
	}
	leafFrac := seekRows / math.Max(rows, 1)
	leafPages := math.Max(1, float64(ix.LeafPages)*leafFrac)
	cost := float64(ix.Height) + leafPages + seekRows*CPUPerRow
	lookup := !covering
	if lookup {
		lookupHeight := float64(bt.info.ClusteredHeight)
		if lookupHeight == 0 {
			lookupHeight = 1 // heap RID lookup
		}
		cost += seekRows * lookupHeight * RandomPageFactor
	}
	n := &Node{
		Kind:      KindIndexSeek,
		Table:     bt.ref.Table,
		Alias:     bt.ref.Name(),
		Index:     ix.Def.Name,
		SeekEq:    seekEq,
		SeekRange: seekRange,
		Residual:  residual,
		Lookup:    lookup,
		EstRows:   outRows,
		EstCost:   cost,
	}
	// Output ordering: with the equality prefix fixed, results are sorted
	// by the remaining key columns. A range seek preserves order on its
	// own column too.
	ordered := lowerAll(ix.Def.KeyColumns[len(seekEq):])
	return accessPath{node: n, orderedBy: ordered, covering: covering}, true
}

// coversWithLocator reports whether the index covers cols, counting the
// clustered key columns that every non-clustered leaf entry implicitly
// carries as the row locator (SQL Server semantics).
func coversWithLocator(def schema.IndexDef, t TableInfo, cols []string) bool {
	for _, c := range cols {
		if def.HasColumn(c) {
			continue
		}
		inPK := false
		if t.ClusteredHeight > 0 {
			for _, pk := range t.Def.PrimaryKey {
				if strings.EqualFold(pk, c) {
					inPK = true
					break
				}
			}
		}
		if !inPK {
			return false
		}
	}
	return true
}

func rangeDir(op sqlparser.CompareOp) int {
	if op == sqlparser.OpGT || op == sqlparser.OpGE {
		return 1 // lower bound
	}
	return -1 // upper bound
}

func lowerAll(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = strings.ToLower(c)
	}
	return out
}

func (o *Optimizer) filteredRows(bt *boundTable, rows float64, eq, rng, residual []sqlparser.Predicate) float64 {
	out := rows
	for _, set := range [][]sqlparser.Predicate{eq, rng, residual} {
		for _, p := range set {
			out *= o.selectivity(bt.ref.Table, p, p.Col.Column)
		}
	}
	return out
}

// ---- SELECT planning ----

func (o *Optimizer) planSelect(s *sqlparser.SelectStmt) (*Node, error) {
	b, err := o.bind(s.From, s.Joins)
	if err != nil {
		return nil, err
	}
	// Distribute predicates and collect needed columns.
	for _, p := range s.Where {
		bt, col, err := b.resolve(p.Col)
		if err != nil {
			return nil, err
		}
		q := p
		q.Col = sqlparser.ColRef{Table: bt.ref.Name(), Column: col}
		bt.preds = append(bt.preds, q)
		b.need(bt, col)
	}
	star := false
	for _, it := range s.Items {
		if it.Star {
			star = true
			continue
		}
		if it.Agg == sqlparser.AggCount {
			continue
		}
		bt, col, err := b.resolve(it.Col)
		if err != nil {
			return nil, err
		}
		b.need(bt, col)
	}
	if star {
		for _, bt := range b.tables {
			for _, c := range bt.info.Def.Columns {
				b.need(bt, c.Name)
			}
		}
	}
	type joinCols struct {
		left, right *boundTable
		lcol, rcol  string
	}
	var joins []joinCols
	for _, j := range s.Joins {
		lbt, lcol, err := b.resolve(j.Left)
		if err != nil {
			return nil, err
		}
		rbt, rcol, err := b.resolve(j.Right)
		if err != nil {
			return nil, err
		}
		b.need(lbt, lcol)
		b.need(rbt, rcol)
		joins = append(joins, joinCols{lbt, rbt, lcol, rcol})
	}
	for _, g := range s.GroupBy {
		bt, col, err := b.resolve(g)
		if err != nil {
			return nil, err
		}
		b.need(bt, col)
	}
	for _, ob := range s.OrderBy {
		bt, col, err := b.resolve(ob.Col)
		if err != nil {
			return nil, err
		}
		b.need(bt, col)
	}

	// Access path for the first table; joins are applied in written order
	// (left-deep), choosing nested-loops-with-seek when the inner table has
	// a usable index on its join column, hash join otherwise.
	first := o.bestAccessPath(b.tables[0])
	current := first.node
	ordered := first.orderedBy
	for _, jc := range joins {
		inner := jc.right
		outerCol := sqlparser.ColRef{Table: jc.left.ref.Name(), Column: jc.lcol}
		innerCol := sqlparser.ColRef{Table: inner.ref.Name(), Column: jc.rcol}
		if jc.right == b.tables[0] || containsTable(current, jc.right.ref.Name()) {
			// The "right" side is already in the current subtree; swap.
			inner = jc.left
			outerCol, innerCol = innerCol, outerCol
		}
		joinNode := o.planJoin(current, inner, outerCol, innerCol)
		current = joinNode
		ordered = nil // joins destroy base ordering in this model
	}

	// Aggregation.
	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != sqlparser.AggNone {
			hasAgg = true
		}
	}
	if len(s.GroupBy) > 0 {
		groups := 1.0
		for _, g := range s.GroupBy {
			bt, col, _ := b.resolve(g)
			if bt != nil {
				groups *= o.distinct(bt.ref.Table, col)
			}
		}
		groups = math.Min(groups, math.Max(current.EstRows, 1))
		agg := &Node{
			Kind:     KindHashAgg,
			GroupBy:  s.GroupBy,
			Items:    s.Items,
			Children: []*Node{current},
			EstRows:  groups,
			EstCost:  current.EstCost + current.EstRows*HashBuildPerRow,
		}
		current = agg
		ordered = nil
	} else if hasAgg {
		agg := &Node{
			Kind:     KindScalarAgg,
			Items:    s.Items,
			Children: []*Node{current},
			EstRows:  1,
			EstCost:  current.EstCost + current.EstRows*CPUPerRow,
		}
		current = agg
		ordered = nil
	}

	// Ordering.
	if len(s.OrderBy) > 0 && !orderSatisfied(s.OrderBy, ordered) {
		rows := math.Max(current.EstRows, 1)
		sortCost := rows*math.Log2(rows+1)*CPUPerCompare + rows*CPUPerRow
		current = &Node{
			Kind:     KindSort,
			OrderBy:  s.OrderBy,
			Children: []*Node{current},
			EstRows:  current.EstRows,
			EstCost:  current.EstCost + sortCost,
		}
	}
	if s.Top > 0 {
		rows := math.Min(float64(s.Top), math.Max(current.EstRows, 0))
		current = &Node{
			Kind:     KindTop,
			TopN:     s.Top,
			Children: []*Node{current},
			EstRows:  rows,
			EstCost:  current.EstCost + rows*CPUPerRow,
		}
	}
	// Final projection.
	current = &Node{
		Kind:     KindProject,
		Items:    s.Items,
		Children: []*Node{current},
		EstRows:  current.EstRows,
		EstCost:  current.EstCost + current.EstRows*CPUPerRow,
	}
	return current, nil
}

func containsTable(n *Node, alias string) bool {
	if strings.EqualFold(n.Alias, alias) {
		return true
	}
	for _, c := range n.Children {
		if containsTable(c, alias) {
			return true
		}
	}
	return false
}

// planJoin joins the current subtree (outer) with bound table inner.
func (o *Optimizer) planJoin(outer *Node, inner *boundTable, outerCol, innerCol sqlparser.ColRef) *Node {
	outRows := joinCardinality(o, outer.EstRows, inner, innerCol.Column)

	// Option 1: nested loops with an index seek on the inner join column.
	var bestNL *Node
	for _, ix := range o.Cat.Indexes(inner.ref.Table) {
		if ix.Def.Hypothetical && !o.WhatIfMode {
			continue
		}
		if ix.Def.Kind == schema.Clustered {
			continue
		}
		if len(ix.Def.KeyColumns) == 0 || !strings.EqualFold(ix.Def.KeyColumns[0], innerCol.Column) {
			continue
		}
		matchRows := float64(inner.info.RowCount) / math.Max(o.distinct(inner.ref.Table, innerCol.Column), 1)
		covering := coversWithLocator(ix.Def, inner.info, inner.neededCols())
		perProbe := float64(ix.Height) + math.Max(1, matchRows/100)
		if !covering {
			h := float64(inner.info.ClusteredHeight)
			if h == 0 {
				h = 1
			}
			perProbe += matchRows * h * RandomPageFactor
		}
		// Residual predicates on the inner table are applied per probe.
		cost := outer.EstCost + outer.EstRows*perProbe + outer.EstRows*CPUPerRow
		innerAccess := &Node{
			Kind:     KindIndexSeek,
			Table:    inner.ref.Table,
			Alias:    inner.ref.Name(),
			Index:    ix.Def.Name,
			Residual: inner.preds,
			Lookup:   !covering,
			EstRows:  matchRows,
			EstCost:  perProbe,
		}
		n := &Node{
			Kind:      KindNLJoin,
			JoinLeft:  outerCol,
			JoinRight: innerCol,
			Children:  []*Node{outer, innerAccess},
			EstRows:   outRows,
			EstCost:   cost,
		}
		if bestNL == nil || n.EstCost < bestNL.EstCost {
			bestNL = n
		}
	}
	// Clustered-key NL: seek the clustered index when the join column is
	// the leading primary-key column.
	if len(inner.info.Def.PrimaryKey) > 0 && strings.EqualFold(inner.info.Def.PrimaryKey[0], innerCol.Column) && inner.info.ClusteredHeight > 0 {
		matchRows := float64(inner.info.RowCount) / math.Max(o.distinct(inner.ref.Table, innerCol.Column), 1)
		perProbe := float64(inner.info.ClusteredHeight) + math.Max(1, matchRows/100)
		cost := outer.EstCost + outer.EstRows*perProbe + outer.EstRows*CPUPerRow
		innerAccess := &Node{
			Kind:     KindIndexSeek,
			Table:    inner.ref.Table,
			Alias:    inner.ref.Name(),
			Index:    clusteredIndexName(inner.ref.Table),
			Residual: inner.preds,
			EstRows:  matchRows,
			EstCost:  perProbe,
		}
		n := &Node{
			Kind:      KindNLJoin,
			JoinLeft:  outerCol,
			JoinRight: innerCol,
			Children:  []*Node{outer, innerAccess},
			EstRows:   outRows,
			EstCost:   cost,
		}
		if bestNL == nil || n.EstCost < bestNL.EstCost {
			bestNL = n
		}
	}

	// Option 2: hash join, building on the inner side's best access path.
	innerPath := o.bestAccessPath(inner)
	hashCost := outer.EstCost + innerPath.node.EstCost +
		innerPath.node.EstRows*HashBuildPerRow + outer.EstRows*CPUPerRow
	hash := &Node{
		Kind:      KindHashJoin,
		JoinLeft:  outerCol,
		JoinRight: innerCol,
		Children:  []*Node{outer, innerPath.node},
		EstRows:   outRows,
		EstCost:   hashCost,
	}
	if bestNL != nil && bestNL.EstCost < hash.EstCost {
		return bestNL
	}
	return hash
}

// clusteredIndexName is the synthetic name under which the clustered index
// appears in plans (for usage accounting and plan fingerprints).
func clusteredIndexName(table string) string { return "PK_" + table }

// ClusteredIndexName exposes the naming rule to the engine.
func ClusteredIndexName(table string) string { return clusteredIndexName(table) }

func joinCardinality(o *Optimizer, outerRows float64, inner *boundTable, innerCol string) float64 {
	innerRows := float64(inner.info.RowCount)
	for _, p := range inner.preds {
		innerRows *= o.selectivity(inner.ref.Table, p, p.Col.Column)
	}
	d := math.Max(o.distinct(inner.ref.Table, innerCol), 1)
	out := outerRows * innerRows / d
	if out < 0 {
		out = 0
	}
	return out
}

func orderSatisfied(orderBy []sqlparser.OrderItem, ordered []string) bool {
	if len(ordered) < len(orderBy) {
		return false
	}
	for i, ob := range orderBy {
		if ob.Desc {
			return false // executor scans forward only
		}
		if strings.ToLower(ob.Col.Column) != ordered[i] {
			return false
		}
	}
	return true
}

// ---- write planning ----

func (o *Optimizer) realIndexes(table string) []IndexInfo {
	var out []IndexInfo
	for _, ix := range o.Cat.Indexes(table) {
		if !ix.Def.Hypothetical || o.WhatIfMode {
			out = append(out, ix)
		}
	}
	return out
}

func (o *Optimizer) planInsert(s *sqlparser.InsertStmt) (*Node, error) {
	t, ok := o.Cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("optimizer: unknown table %q", s.Table)
	}
	rows := float64(len(s.Rows))
	return o.insertNode(t, s.Table, rows)
}

func (o *Optimizer) planBulkInsert(s *sqlparser.BulkInsertStmt) (*Node, error) {
	t, ok := o.Cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("optimizer: unknown table %q", s.Table)
	}
	return o.insertNode(t, s.Table, float64(s.RowEstimate))
}

func (o *Optimizer) insertNode(t TableInfo, table string, rows float64) (*Node, error) {
	baseH := float64(t.ClusteredHeight)
	if baseH == 0 {
		baseH = 1
	}
	cost := rows * baseH
	var maint []string
	for _, ix := range o.realIndexes(table) {
		if ix.Def.Kind == schema.Clustered {
			continue
		}
		maint = append(maint, ix.Def.Name)
		cost += rows * float64(ix.Height) // random page touches per entry
	}
	cost += rows * CPUPerRow * float64(1+len(maint))
	return &Node{
		Kind:         KindInsert,
		Table:        table,
		WriteRows:    rows,
		MaintIndexes: maint,
		EstRows:      0,
		EstCost:      cost,
	}, nil
}

func (o *Optimizer) planUpdate(s *sqlparser.UpdateStmt) (*Node, error) {
	access, bt, err := o.planWriteAccess(s.Table, s.Where, writeNeededColumns(s))
	if err != nil {
		return nil, err
	}
	rows := access.EstRows
	cost := access.EstCost + rows // base row write
	var maint []string
	for _, ix := range o.realIndexes(s.Table) {
		if ix.Def.Kind == schema.Clustered {
			continue
		}
		affected := false
		for _, a := range s.Set {
			if ix.Def.HasColumn(a.Column) {
				affected = true
				break
			}
		}
		if affected {
			maint = append(maint, ix.Def.Name)
			cost += rows * 2 * float64(ix.Height) // delete + insert of the entry
		}
	}
	cost += rows * CPUPerRow * float64(1+len(maint))
	_ = bt
	return &Node{
		Kind:         KindUpdate,
		Table:        s.Table,
		Set:          s.Set,
		WriteRows:    rows,
		MaintIndexes: maint,
		Children:     []*Node{access},
		EstRows:      0,
		EstCost:      cost,
	}, nil
}

func (o *Optimizer) planDelete(s *sqlparser.DeleteStmt) (*Node, error) {
	access, _, err := o.planWriteAccess(s.Table, s.Where, nil)
	if err != nil {
		return nil, err
	}
	rows := access.EstRows
	cost := access.EstCost + rows
	var maint []string
	for _, ix := range o.realIndexes(s.Table) {
		if ix.Def.Kind == schema.Clustered {
			continue
		}
		maint = append(maint, ix.Def.Name)
		cost += rows * float64(ix.Height)
	}
	cost += rows * CPUPerRow * float64(1+len(maint))
	return &Node{
		Kind:         KindDelete,
		Table:        s.Table,
		WriteRows:    rows,
		MaintIndexes: maint,
		Children:     []*Node{access},
		EstRows:      0,
		EstCost:      cost,
	}, nil
}

func writeNeededColumns(s *sqlparser.UpdateStmt) []string {
	var cols []string
	for _, a := range s.Set {
		cols = append(cols, a.Column)
	}
	return cols
}

// planWriteAccess plans the row-identification part of an UPDATE/DELETE.
func (o *Optimizer) planWriteAccess(table string, where []sqlparser.Predicate, extraCols []string) (*Node, *boundTable, error) {
	b, err := o.bind(sqlparser.TableRef{Table: table}, nil)
	if err != nil {
		return nil, nil, err
	}
	bt := b.tables[0]
	for _, p := range where {
		_, col, err := b.resolve(p.Col)
		if err != nil {
			return nil, nil, err
		}
		q := p
		q.Col = sqlparser.ColRef{Table: bt.ref.Name(), Column: col}
		bt.preds = append(bt.preds, q)
		b.need(bt, col)
	}
	for _, c := range extraCols {
		b.need(bt, c)
	}
	// Writes always need the full row (to maintain indexes), so the
	// access is never index-covering.
	for _, c := range bt.info.Def.Columns {
		b.need(bt, c.Name)
	}
	path := o.bestAccessPath(bt)
	return path.node, bt, nil
}

// ---- what-if convenience ----

// CostStatement plans stmt and returns its estimated cost. DTA drives its
// search with this call.
func (o *Optimizer) CostStatement(stmt sqlparser.Statement) (float64, *Plan, error) {
	p, err := o.Plan(stmt)
	if err != nil {
		return 0, nil, err
	}
	return p.EstCost, p, nil
}
