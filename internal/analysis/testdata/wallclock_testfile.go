// The fixture driver marks this file as a _test.go file, asserting
// that the wallclock analyzer skips test sources: tests legitimately
// sleep to coordinate real goroutines. No want comments here. (Like
// wallclock_sim.go, a corpus-wide cmd/lint demo run sees it as a
// non-test file and flags it.)
package fixture

import "time"

func testCoordinationSleep() {
	time.Sleep(time.Millisecond)
}
