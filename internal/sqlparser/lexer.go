// Package sqlparser implements the SQL dialect understood by the engine: a
// T-SQL-flavoured subset covering SELECT (joins, GROUP BY, ORDER BY, TOP,
// aggregates), INSERT, UPDATE, DELETE, BULK INSERT, and index/table DDL.
// The parser produces an AST that the optimizer plans, the Query Store
// fingerprints, and the recommenders analyze for sargable predicates, join,
// group-by and order-by columns.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // = < > <= >= <> !=
	tokPunct // ( ) , * . ;
	tokKeyword
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"JOIN": true, "INNER": true, "ON": true, "GROUP": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "TOP": true, "AS": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "DROP": true, "TABLE": true, "INDEX": true,
	"UNIQUE": true, "CLUSTERED": true, "NONCLUSTERED": true, "INCLUDE": true,
	"PRIMARY": true, "KEY": true, "NOT": true, "NULL": true, "COUNT": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "BULK": true,
	"DATASOURCE": true, "BETWEEN": true, "WITH": true, "ONLINE": true,
	"DISTINCT": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '-' || c == '+':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '=' || c == '<' || c == '>' || c == '!':
			l.lexOp()
		case strings.ContainsRune("(),*.;?", rune(c)):
			l.toks = append(l.toks, token{tokPunct, string(c), l.pos})
			l.pos++
		case c == '@' || c == '#' || c == '[':
			// @variables, #temp tables and [bracketed idents] are lexed as
			// identifiers; the parser decides what to do with them.
			l.lexSpecialIdent()
		default:
			return nil, fmt.Errorf("sqlparser: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[strings.ToUpper(text)] {
		l.toks = append(l.toks, token{tokKeyword, strings.ToUpper(text), start})
	} else {
		l.toks = append(l.toks, token{tokIdent, text, start})
	}
}

func (l *lexer) lexSpecialIdent() {
	start := l.pos
	if l.src[l.pos] == '[' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != ']' {
			l.pos++
		}
		text := l.src[start+1 : l.pos]
		if l.pos < len(l.src) {
			l.pos++ // consume ]
		}
		l.toks = append(l.toks, token{tokIdent, text, start})
		return
	}
	l.pos++ // consume @ or #
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
		l.pos++
		digits++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
			l.pos++
			digits++
		}
	}
	if digits == 0 {
		return fmt.Errorf("sqlparser: malformed number at %d", start)
	}
	l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{tokString, b.String(), start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparser: unterminated string at %d", start)
}

func (l *lexer) lexOp() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	if l.pos < len(l.src) {
		two := string(c) + string(l.src[l.pos])
		switch two {
		case "<=", ">=", "<>", "!=":
			l.pos++
			l.toks = append(l.toks, token{tokOp, two, start})
			return
		}
	}
	l.toks = append(l.toks, token{tokOp, string(c), start})
}
