package dropper

import (
	"fmt"
	"testing"
	"time"

	"autoindex/internal/schema"
)

// TestStaleAfterRule pins the recency rule the drift scenario depends
// on: an index that was read steadily and then went silent (while still
// paying write maintenance) is reclaimed, even though its cumulative
// read rate is far too high for the unused rule.
func TestStaleAfterRule(t *testing.T) {
	db, clock := buildDB(t)
	since := clock.Now()
	addIndex(t, db, schema.IndexDef{Name: "ix_stale", Table: "logs", KeyColumns: []string{"size"}})
	// Hot phase: the index serves reads.
	for i := 0; i < 20; i++ {
		if _, err := db.Exec(fmt.Sprintf(`SELECT id FROM logs WHERE size = %d`, i%100)); err != nil {
			t.Fatal(err)
		}
	}
	// The workload drifts: four days of write maintenance, zero reads.
	for d := 0; d < 4; d++ {
		churnWrites(t, db, 25)
		clock.Advance(24 * time.Hour)
	}

	cfg := DefaultConfig()
	cfg.StaleAfter = 36 * time.Hour
	var stale *DropCandidate
	cands := Analyze(db, since, cfg)
	for i := range cands {
		if cands[i].Def.Name == "ix_stale" {
			stale = &cands[i]
		}
	}
	if stale == nil || stale.Reason != ReasonStale {
		t.Fatalf("staleness rule did not fire: %+v", cands)
	}

	// Without StaleAfter the index survives: ~5 reads/day dwarfs
	// MaxReadsPerDay, so only recency can catch the drift.
	for _, c := range Analyze(db, since, DefaultConfig()) {
		if c.Def.Name == "ix_stale" {
			t.Fatalf("flagged without StaleAfter: %+v", c)
		}
	}

	// One fresh read resets the recency window.
	if _, err := db.Exec(`SELECT id FROM logs WHERE size = 1`); err != nil {
		t.Fatal(err)
	}
	for _, c := range Analyze(db, since, cfg) {
		if c.Def.Name == "ix_stale" && c.Reason == ReasonStale {
			t.Fatalf("freshly read index still stale: %+v", c)
		}
	}
}
