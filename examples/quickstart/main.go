// Quickstart: create a database, run a workload, and let the
// auto-indexing service recommend, implement and validate indexes.
package main

import (
	"fmt"
	"time"

	"autoindex"
)

func main() {
	region := autoindex.NewRegion(42)
	db := region.NewDatabase("shop", autoindex.TierStandard)

	// Schema + data through plain SQL.
	mustExec(db, `CREATE TABLE orders (
		id BIGINT NOT NULL, customer_id BIGINT, status VARCHAR,
		amount FLOAT, created BIGINT, note VARCHAR, PRIMARY KEY (id))`)
	for i := 0; i < 4000; i++ {
		status := "open"
		if i%4 == 0 {
			status = "closed"
		}
		mustExec(db, fmt.Sprintf(
			`INSERT INTO orders (id, customer_id, status, amount, created, note) VALUES (%d, %d, '%s', %d.5, %d, 'note-%d')`,
			i, i%200, status, i%500, i, i))
	}
	db.RebuildAllStats()

	// Manage it: recommendations are implemented and validated for us.
	region.Manage(db, "server-1", autoindex.Settings{AutoCreate: true, AutoDrop: true})

	// A workload the current physical design serves poorly.
	workload := func(n int) {
		for i := 0; i < n; i++ {
			mustExec(db, fmt.Sprintf(`SELECT id, amount FROM orders WHERE customer_id = %d`, i%200))
			mustExec(db, fmt.Sprintf(`SELECT id FROM orders WHERE status = 'closed' AND amount > %d`, i%400))
			if i%5 == 0 {
				mustExec(db, fmt.Sprintf(`UPDATE orders SET amount = %d.25 WHERE id = %d`, i, i%4000))
			}
		}
	}

	fmt.Println("== day 1: workload runs, service observes ==")
	for h := 0; h < 24; h++ {
		workload(20)
		region.Advance(time.Hour)
	}
	for _, rec := range region.Recommendations("shop") {
		fmt.Println("  active:", rec.Describe())
	}

	fmt.Println("\n== days 2-3: service implements and validates ==")
	for h := 0; h < 48; h++ {
		workload(20)
		region.Advance(time.Hour)
	}

	fmt.Println("\nindexes on orders now:")
	for _, def := range db.IndexDefs() {
		fmt.Println("  ", def.String())
	}
	fmt.Println("\naction history:")
	for _, rec := range region.History("shop") {
		fmt.Printf("  [%-10s] %s %s", rec.State, rec.Action, rec.Index.Name)
		if rec.Validation != nil {
			fmt.Printf(" — validation: %s", rec.Validation.Verdict)
		}
		fmt.Println()
	}
	fmt.Println("\nservice summary:", region.OpStats().String())
}

func mustExec(db *autoindex.Database, sql string) {
	if _, err := db.Exec(sql); err != nil {
		panic(err)
	}
}
