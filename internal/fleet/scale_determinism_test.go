package fleet

import (
	"strings"
	"testing"
)

// scaleRunOutput runs a 10k-tenant short-horizon scale simulation and
// returns every byte the determinism contract covers: the per-tenant
// stream (in completion order) plus the summary report.
func scaleRunOutput(t *testing.T, workers, residentCap int, activeFraction float64) (string, *ScaleResult) {
	t.Helper()
	spec := DefaultScaleSpec(10_000, 6)
	spec.Archetypes = 3
	spec.Scale = 0.5
	spec.ActiveFraction = activeFraction
	spec.StatementsPerHour = 8
	spec.Workers = workers
	spec.ResidentTenants = residentCap
	var buf strings.Builder
	spec.Stream = &buf
	res, err := RunScale(spec)
	if err != nil {
		t.Fatal(err)
	}
	return buf.String() + res.Report(), res
}

// TestScaleDeterministicAcrossWorkers pins the scale-mode determinism
// contract across worker counts: stream and report bytes are a function
// of the seed and flags alone, not of how tenant work was sharded.
func TestScaleDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("scale simulation is slow")
	}
	if raceEnabled {
		t.Skip("10k-tenant run is minutes under the race detector; the chaos variant covers the same parallel paths")
	}
	out1, res := scaleRunOutput(t, 1, 0, 0.01)
	out4, _ := scaleRunOutput(t, 4, 0, 0.01)
	out8, _ := scaleRunOutput(t, 8, 0, 0.01)
	if out1 != out4 {
		t.Errorf("scale output differs between -workers 1 and -workers 4:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", out1, out4)
	}
	if out1 != out8 {
		t.Errorf("scale output differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", out1, out8)
	}
	if res.EverActive == 0 || res.TenantHours == 0 || res.Completed == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.Hibernations != 0 {
		t.Fatalf("unlimited residency must never hibernate, got %d", res.Hibernations)
	}
}

// TestScaleDeterministicUnderHibernationPressure pins the second half of
// the contract: a resident-set cap small enough to force hibernation
// churn on ≥90% of repeat activations produces byte-identical stream and
// report output to an uncapped run.
func TestScaleDeterministicUnderHibernationPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("scale simulation is slow")
	}
	if raceEnabled {
		t.Skip("10k-tenant run is minutes under the race detector; the chaos variant covers the same parallel paths")
	}
	free, _ := scaleRunOutput(t, 4, 0, 0.02)
	pressured, res := scaleRunOutput(t, 4, 1, 0.02)
	if free != pressured {
		t.Errorf("scale output differs between unlimited residency and -resident-tenants 1:\n--- unlimited ---\n%s--- capped ---\n%s", free, pressured)
	}
	if res.Hibernations == 0 || res.Rehydrations == 0 {
		t.Fatalf("cap 1 must force hibernation churn, got %d hibernations / %d rehydrations", res.Hibernations, res.Rehydrations)
	}
	// Churn floor: at least 90% of repeat activations (active hours beyond
	// each tenant's first) had to be rebuilt from a snapshot.
	repeats := res.TenantHours - int64(res.EverActive)
	if repeats > 0 && float64(res.Rehydrations) < 0.9*float64(repeats) {
		t.Fatalf("expected >=90%% hibernation churn: %d rehydrations for %d repeat activations", res.Rehydrations, repeats)
	}
}

// TestScaleChaosDeterministicAcrossWorkersAndPressure extends both axes
// to chaos mode on a smaller fleet: the injected fault schedule and the
// drained outcome are identical at any worker count and any residency
// pressure, and the fleet settles with clean invariants.
func TestScaleChaosDeterministicAcrossWorkersAndPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("scale simulation is slow")
	}
	run := func(workers, residentCap int) (string, *ScaleResult) {
		spec := DefaultScaleSpec(300, 6)
		spec.Archetypes = 2
		spec.Scale = 0.5
		spec.ActiveFraction = 0.05
		spec.StatementsPerHour = 8
		spec.Workers = workers
		spec.ResidentTenants = residentCap
		spec.Chaos = ChaosConfig{Enabled: true, FaultRate: 0.08, CrashRate: 0.05}
		var buf strings.Builder
		spec.Stream = &buf
		res, err := RunScale(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Chaos == nil {
			t.Fatal("chaos enabled but no chaos report")
		}
		if len(res.Chaos.Violations) != 0 {
			t.Errorf("invariant violations under chaos:\n%s", res.Chaos.Format())
		}
		return buf.String() + res.Report() + res.Chaos.Format(), res
	}
	base, _ := run(1, 0)
	sharded, _ := run(8, 0)
	pressured, res := run(4, 3)
	if base != sharded {
		t.Errorf("chaos scale output differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", base, sharded)
	}
	if base != pressured {
		t.Errorf("chaos scale output differs between unlimited residency and -resident-tenants 3:\n--- unlimited ---\n%s--- capped ---\n%s", base, pressured)
	}
	if res.Hibernations == 0 {
		t.Fatal("cap 3 must force hibernation in chaos mode")
	}
}
