package scenario

import (
	"strings"
	"time"

	"autoindex/internal/controlplane"
	"autoindex/internal/core"
	"autoindex/internal/engine"
	"autoindex/internal/experiment"
	"autoindex/internal/fleet"
	"autoindex/internal/schema"
)

// Workload-drift tuning. The rotation fires after the dropper's MinAge
// (48h) so staled indexes are already judgeable; StaleAfter at 36h plus
// the 24h drop-scan cadence puts the reclaim around two to three days
// after the drift, well inside the dwell budget.
const (
	driftDatabases    = 3
	driftDays         = 6
	driftStmtsPerHour = 20
	driftRotationHour = 48
	driftStaleAfter   = 36 * time.Hour
	// driftHotFloor is the minimum lifetime reads for an index to count
	// as hot at rotation time. It is set high enough that a hot index
	// can never satisfy the dropper's cumulative unused rule afterwards
	// (8 reads over <=7 days beats MaxReadsPerDay=0.5), so a post-window
	// drop of a hot index is attributable to the staleness rule alone.
	driftHotFloor = 8
	// driftDwellBudget bounds how long a staled index may linger after
	// the rotation before the dropper reclaims it.
	driftDwellBudget = 96 * time.Hour
)

type driftScenario struct{}

func (driftScenario) Name() string { return "workload-drift" }
func (driftScenario) Describe() string {
	return "template mix rotates mid-run; the dropper's staleness rule must reclaim the abandoned indexes"
}

// driftHooks rotates every tenant's mix at the rotation barrier. When
// hot is non-nil it also snapshots, per database, which indexes were
// actively read right before the drift (the reclaim targets).
func driftHooks(hot map[string]map[string]bool, rotatedAt *time.Time) fleet.OpsHooks {
	return fleet.OpsHooks{
		BeforeHour: func(ctx *fleet.OpsHookContext) {
			if ctx.Hour != driftRotationHour {
				return
			}
			*rotatedAt = ctx.Fleet.Clock.Now()
			for _, tn := range ctx.Fleet.Tenants {
				if hot != nil {
					set := make(map[string]bool)
					for _, def := range tn.DB.IndexDefs() {
						if def.Kind == schema.Clustered {
							continue
						}
						if u, ok := tn.DB.UsageDMV().Usage(def.Name); ok && u.Reads() >= driftHotFloor {
							set[strings.ToLower(def.Name)] = true
						}
					}
					hot[tn.DB.Name()] = set
				}
				tn.RotateMix()
			}
		},
	}
}

// driftPlane opts the dropper into the staleness rule. MinUpdates drops
// to 10: scenario tables are small and the rule still demands ongoing
// write maintenance, just scaled to the run length.
func driftPlane(pc *controlplane.Config) {
	pc.Dropper.StaleAfter = driftStaleAfter
	pc.Dropper.MinUpdates = 10
}

func (s driftScenario) Run(opts Options) (*Result, error) {
	seed := deriveSeed(opts.Seed, s.Name())
	hot := make(map[string]map[string]bool)
	var rotatedAt time.Time
	_, res, err := runFleet(opts, seed, runConfig{
		databases:         driftDatabases,
		days:              driftDays,
		statementsPerHour: driftStmtsPerHour,
		hooks:             driftHooks(hot, &rotatedAt),
		tunePlane:         driftPlane,
	})
	if err != nil {
		return nil, err
	}

	// A drop record proves the staleness rule fired when it reclaimed an
	// index that was hot at rotation time and was only filed after the
	// staleness window elapsed (duplicate and unused drops of hot
	// indexes are ruled out by construction — see driftHotFloor, and
	// duplicates are reclaimed during the first scans, pre-window).
	windowOpen := rotatedAt.Add(driftStaleAfter)
	staleDrops, postCreates := 0, 0
	var maxDwell time.Duration
	for _, r := range storeRecords(res, func(r *controlplane.Record) bool { return true }) {
		switch {
		case r.Action == core.ActionDropIndex && r.State == controlplane.StateSuccess &&
			!r.CreatedAt.Before(windowOpen) && hot[r.Database][strings.ToLower(r.Index.Name)]:
			staleDrops++
			done := r.ImplementedAt
			if done.IsZero() {
				done = r.UpdatedAt
			}
			if d := done.Sub(rotatedAt); d > maxDwell {
				maxDwell = d
			}
		case r.Action == core.ActionCreateIndex && r.CreatedAt.After(rotatedAt):
			postCreates++
		}
	}

	v := newVerdict(s.Name(), opts)
	v.check("staleness-caught", staleDrops >= 1 && maxDwell <= driftDwellBudget,
		"%d staled hot indexes reclaimed, max dwell %.0fh (budget %.0fh)",
		staleDrops, maxDwell.Hours(), driftDwellBudget.Hours())
	v.check("drift-adapts", postCreates >= 1,
		"%d create recommendations filed after the rotation", postCreates)
	auditChecks(&v, res)

	// Policy arms: the same drifted fleet under a fleet-wide DTA-only
	// and MI-only recommender policy — the fig6-style robustness
	// comparison (revert rate is §8.1's "the workload proved us wrong"
	// measure, which drift inflates for estimate-driven tuners).
	summary := experiment.DriftSummary{}
	for _, arm := range []struct {
		label string
		src   core.Source
	}{{"DTA", core.SourceDTA}, {"MI", core.SourceMI}} {
		src := arm.src
		var armRotated time.Time
		_, ares, err := runFleet(opts, seed, runConfig{
			databases:         driftDatabases,
			days:              driftDays,
			statementsPerHour: driftStmtsPerHour,
			hooks:             driftHooks(nil, &armRotated),
			tunePlane: func(pc *controlplane.Config) {
				driftPlane(pc)
				pc.Policy = func(*engine.Database) core.Source { return src }
			},
		})
		if err != nil {
			return nil, err
		}
		summary.Arms = append(summary.Arms, experiment.DriftArm{
			Policy:              arm.label,
			Implemented:         ares.Stats.CreatesImplemented,
			Reverted:            ares.Stats.Reverts,
			DropRecommendations: ares.Stats.DropRecommended,
		})
	}
	v.evidence("stale-drops", float64(staleDrops))
	v.evidence("max-dwell-hours", maxDwell.Hours())
	v.evidence("post-rotation-creates", float64(postCreates))
	v.evidence("revert-rate", res.Stats.RevertRate)
	v.evidence("dta-revert-rate", summary.Arms[0].RevertRate())
	v.evidence("mi-revert-rate", summary.Arms[1].RevertRate())
	v.finalize()

	return &Result{Verdict: v, Report: v.Format() + summary.String()}, nil
}
