package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCounters(t *testing.T) {
	h := NewHub(0)
	h.Inc("a", 1)
	h.Inc("a", 2)
	h.Inc("b", 5)
	if h.Counter("a") != 3 || h.Counter("b") != 5 || h.Counter("missing") != 0 {
		t.Fatalf("counters: a=%d b=%d", h.Counter("a"), h.Counter("b"))
	}
	all := h.Counters()
	if len(all) != 2 || all[0] != "a=3" || all[1] != "b=5" {
		t.Fatalf("snapshot: %v", all)
	}
}

func TestEventsCapped(t *testing.T) {
	h := NewHub(10)
	for i := 0; i < 25; i++ {
		h.Emit(Event{At: time.Unix(int64(i), 0), Kind: "k"})
	}
	evs := h.Events()
	if len(evs) != 10 {
		t.Fatalf("retained %d events", len(evs))
	}
	if evs[0].At.Unix() != 15 {
		t.Fatalf("oldest retained: %v", evs[0].At)
	}
}

func TestConcurrentUse(t *testing.T) {
	h := NewHub(100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Inc("x", 1)
				h.Emit(Event{Kind: "e"})
			}
		}()
	}
	wg.Wait()
	if h.Counter("x") != 8000 {
		t.Fatalf("lost increments: %d", h.Counter("x"))
	}
}
