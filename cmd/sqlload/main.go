// Command sqlload drives live traffic at an autoindexd SQL front end
// (-sql-listen). It deterministically rebuilds the target tenant's
// workload generator from the fleet seed — the same schema, data
// distributions and statement templates the server built — so every
// generated statement is valid against the server-side database, then
// replays a statement stream over concurrent connections. A fraction of
// statements go through the prepared-statement (binary) protocol path.
//
// Usage:
//
//	sqlload -addr 127.0.0.1:3306 -db db000 -fleet-seed 42 -conns 4 -stmts 200
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/sim"
	"autoindex/internal/wire"
	"autoindex/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:3306", "autoindexd SQL address")
		user      = flag.String("user", "app", "username (server accepts any)")
		password  = flag.String("password", "autoindex", "password")
		db        = flag.String("db", "db000", "target database (fleet naming: db000, db001, ...)")
		fleetSeed = flag.Int64("fleet-seed", 42, "the server fleet's -seed; statement generation derives from it")
		scale     = flag.Float64("scale", 1, "the server fleet's workload scale")
		conns     = flag.Int("conns", 4, "concurrent connections")
		stmts     = flag.Int("stmts", 200, "total statements to execute")
		prepared  = flag.Float64("prepared", 0.25, "fraction of statements sent via the prepared (binary) protocol")
	)
	flag.Parse()

	tn, err := rebuildTenant(*db, *fleetSeed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlload:", err)
		os.Exit(1)
	}
	stream := tn.Stream(*stmts)

	// Shard the stream round-robin across connections. The prepared/text
	// decision draws from a per-connection seeded stream so the overall
	// mix is reproducible for a given fleet seed.
	var executed, errors atomic.Int64
	var wg sync.WaitGroup
	//lint:ignore wallclock load generation is timed against the real server
	start := time.Now()
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := sim.NewRNG(*fleetSeed).Child(fmt.Sprintf("sqlload/conn%d", c))
			cl, err := wire.Dial(*addr, *user, *password, *db)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sqlload: conn %d: %v\n", c, err)
				n := 0
				for i := c; i < len(stream); i += *conns {
					n++
				}
				errors.Add(int64(n))
				return
			}
			defer cl.Close()
			for i := c; i < len(stream); i += *conns {
				sql := stream[i]
				if err := runOne(cl, sql, rng.Float64() < *prepared); err != nil {
					errors.Add(1)
					fmt.Fprintf(os.Stderr, "sqlload: conn %d: %v\n", c, err)
					continue
				}
				executed.Add(1)
			}
		}(c)
	}
	wg.Wait()
	//lint:ignore wallclock load generation is timed against the real server
	elapsed := time.Since(start)
	rate := float64(executed.Load()) / elapsed.Seconds()
	//lint:ignore detflow the throughput summary of a live load test is wall-time by definition; nothing replays it
	fmt.Printf("sqlload: %d executed, %d errors over %d conns in %v (%.0f stmts/sec)\n",
		executed.Load(), errors.Load(), *conns, elapsed.Round(time.Millisecond), rate)
	if errors.Load() > 0 {
		os.Exit(1)
	}
}

// runOne executes one statement, via the prepared (binary) protocol
// when asked and COM_QUERY otherwise.
func runOne(cl *wire.Client, sql string, viaPrepared bool) error {
	if !viaPrepared {
		_, err := cl.Query(sql)
		return err
	}
	st, err := cl.Prepare(sql)
	if err != nil {
		return err
	}
	_, err = st.Execute()
	_ = st.Close()
	return err
}

// rebuildTenant reconstructs the named tenant's workload generator the
// same way fleet.Build does on the server: name db%03d at index i, tier
// by i%4 (0,1 Standard; 2 Basic; 3 Premium), seed fleetSeed + i*7919.
func rebuildTenant(name string, fleetSeed int64, scale float64) (*workload.Tenant, error) {
	var idx int
	if _, err := fmt.Sscanf(name, "db%03d", &idx); err != nil || fmt.Sprintf("db%03d", idx) != name {
		return nil, fmt.Errorf("database %q does not follow fleet naming (db000, db001, ...)", name)
	}
	tier := engine.TierPremium
	switch idx % 4 {
	case 0, 1:
		tier = engine.TierStandard
	case 2:
		tier = engine.TierBasic
	}
	return workload.NewTenant(workload.Profile{
		Name:        name,
		Tier:        tier,
		Seed:        fleetSeed + int64(idx)*7919,
		Scale:       scale,
		UserIndexes: true,
	}, sim.NewClock())
}
