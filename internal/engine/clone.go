package engine

import (
	"autoindex/internal/btree"
	"autoindex/internal/schema"
	"autoindex/internal/storage"
	"autoindex/internal/value"
)

// Clone creates an independent copy of the database seeded from a snapshot
// of its current state — the substrate for B-instances (§7.1). The clone
// gets its own Query Store, DMVs, lock manager and noise stream (it is a
// different physical server), but identical data, schema, indexes and
// statistics.
func (d *Database) Clone(name string) *Database {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cfg := d.cfg
	cfg.Name = name
	cfg.Seed = d.cfg.Seed + int64(len(name))*7919
	c := New(cfg, d.clock)
	for k, t := range d.tables {
		nt := &tableData{def: cloneTableDef(t.def), rowCount: t.rowCount}
		if t.clustered != nil {
			nt.clustered = btree.New(btree.DefaultOrder)
			t.clustered.Ascend(func(e btree.Entry) bool {
				nt.clustered.Insert(cloneKey(e.Key), e.Payload.Clone())
				return true
			})
		} else {
			nt.heap = storage.NewHeap(t.def.RowWidth())
			t.heap.Scan(func(_ storage.RID, r value.Row) bool {
				nt.heap.Insert(r.Clone())
				return true
			})
		}
		c.tables[k] = nt
	}
	for k, ix := range d.indexes {
		nix := &indexData{
			def:       ix.def.Clone(),
			tree:      btree.New(btree.DefaultOrder),
			keyOrds:   append([]int(nil), ix.keyOrds...),
			inclOrds:  append([]int(nil), ix.inclOrds...),
			createdAt: ix.createdAt,
			sizeBytes: ix.sizeBytes,
		}
		ix.tree.Ascend(func(e btree.Entry) bool {
			nix.tree.Insert(cloneKey(e.Key), e.Payload.Clone())
			return true
		})
		c.indexes[k] = nix
	}
	for k, st := range d.colStat {
		c.colStat[k] = st // stats objects are treated as immutable once built
	}
	for k, src := range d.bulkSources {
		c.bulkSources[k] = src
	}
	return c
}

func cloneKey(k value.Key) value.Key {
	out := make(value.Key, len(k))
	copy(out, k)
	return out
}

func cloneTableDef(t *schema.Table) *schema.Table {
	out := *t
	out.Columns = append([]schema.Column(nil), t.Columns...)
	out.PrimaryKey = append([]string(nil), t.PrimaryKey...)
	return &out
}
