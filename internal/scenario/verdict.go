// Package scenario implements the adversarial scenario pack: pluggable
// generators that drive a fleet through the failure modes production
// auto-indexing tuners actually die on — workload drift, mid-run schema
// migrations, flash-crowd bursts and noisy neighbors (AIM and "DBA
// bandits" in PAPERS.md organize around exactly these) — and emit
// chaos-style invariant verdicts CI can gate on.
//
// Determinism contract: a scenario's Result (verdict JSON and report
// text) is a function of (scenario, Options.Seed, Options.Chaos) alone —
// byte-identical at any Options.Workers, with or without chaos enabled
// elsewhere in the matrix. Every intervention runs at fleet barriers
// through fleet.OpsHooks.
package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Check is one named pass/fail assertion inside a verdict.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// Evidence is one named measurement backing the verdict. Values are
// numeric so cmd/benchdiff can diff verdict files and flag regressions
// (e.g. a revert-rate jump) the way it flags benchmark slowdowns.
type Evidence struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Verdict is the stable-JSON outcome contract for one scenario run,
// mirroring the {file,line,...} discipline of cmd/lint -json: fixed
// field order (struct order), slices not maps, no timestamps, no
// host-dependent content.
type Verdict struct {
	Scenario string     `json:"scenario"`
	Seed     int64      `json:"seed"`
	Chaos    bool       `json:"chaos"`
	Pass     bool       `json:"pass"`
	Checks   []Check    `json:"checks"`
	Evidence []Evidence `json:"evidence"`
}

// check appends an assertion and folds it into the verdict's Pass.
func (v *Verdict) check(name string, pass bool, format string, args ...any) {
	v.Checks = append(v.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// evidence appends one measurement.
func (v *Verdict) evidence(name string, value float64) {
	v.Evidence = append(v.Evidence, Evidence{Name: name, Value: value})
}

// finalize computes the overall Pass from the checks.
func (v *Verdict) finalize() {
	v.Pass = true
	for _, c := range v.Checks {
		if !c.Pass {
			v.Pass = false
		}
	}
}

// Format renders the verdict deterministically for stdout diffing.
func (v *Verdict) Format() string {
	var b strings.Builder
	status := "PASS"
	if !v.Pass {
		status = "FAIL"
	}
	chaos := "off"
	if v.Chaos {
		chaos = "on"
	}
	fmt.Fprintf(&b, "verdict %s (seed %d, chaos %s): %s\n", v.Scenario, v.Seed, chaos, status)
	for _, c := range v.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  check %-24s %s — %s\n", c.Name, mark, c.Detail)
	}
	for _, e := range v.Evidence {
		fmt.Fprintf(&b, "  evidence %-21s %.4f\n", e.Name, e.Value)
	}
	return b.String()
}

// MarshalVerdicts renders the verdict list as indented JSON — the file
// CI archives and cmd/benchdiff -verdicts diffs. Struct-ordered fields
// and slice-backed collections make the bytes a pure function of the
// verdict values.
func MarshalVerdicts(vs []Verdict) ([]byte, error) {
	b, err := json.MarshalIndent(vs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalVerdicts parses a verdict file.
func UnmarshalVerdicts(data []byte) ([]Verdict, error) {
	var vs []Verdict
	if err := json.Unmarshal(data, &vs); err != nil {
		return nil, fmt.Errorf("scenario: parsing verdicts: %w", err)
	}
	return vs, nil
}
