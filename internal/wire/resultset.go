package wire

import (
	"fmt"
	"math"
	"strconv"

	"autoindex/internal/value"
)

func floatBits(f float64) uint64       { return math.Float64bits(f) }
func floatFromBits(b uint64) float64   { return math.Float64frombits(b) }
func float32FromBits(b uint32) float32 { return math.Float32frombits(b) }

// Column is a resultset column definition.
type Column struct {
	Schema string
	Table  string
	Name   string
	Type   byte
	Flags  uint16
}

// EncodeColumn renders a column-definition packet (protocol 41).
func EncodeColumn(col Column) []byte {
	b := appendLenencString(nil, "def")
	b = appendLenencString(b, col.Schema)
	b = appendLenencString(b, col.Table)
	b = appendLenencString(b, col.Table) // org_table
	b = appendLenencString(b, col.Name)
	b = appendLenencString(b, col.Name) // org_name
	b = append(b, 0x0c)                 // fixed-length fields below
	b = appendUint16(b, utf8Charset)
	b = appendUint32(b, 255) // column length (display hint only)
	b = append(b, col.Type)
	b = appendUint16(b, col.Flags)
	b = append(b, 0)       // decimals
	b = appendUint16(b, 0) // filler
	return b
}

// ParseColumn decodes a column-definition packet.
func ParseColumn(p []byte) (*Column, error) {
	r := newReader(p)
	r.lenencString() // catalog ("def")
	col := &Column{}
	col.Schema = r.lenencString()
	col.Table = r.lenencString()
	r.lenencString() // org_table
	col.Name = r.lenencString()
	r.lenencString() // org_name
	r.skip(1)        // fixed-length marker
	r.skip(2)        // charset
	r.skip(4)        // column length
	col.Type = r.uint8()
	col.Flags = r.uint16()
	if !r.ok() {
		return nil, fmt.Errorf("wire: malformed column definition")
	}
	return col, nil
}

// TypeForKind maps an engine value kind to the wire column type used to
// describe (and binary-encode) it.
func TypeForKind(k value.Kind) byte {
	switch k {
	case value.Int, value.Bool, value.Time:
		return TypeLonglong
	case value.Float:
		return TypeDouble
	default:
		return TypeVarString
	}
}

// renderText formats a value for the textual protocol (no SQL quoting —
// strings travel raw, times in datetime format).
func renderText(v value.Value) string {
	switch v.K {
	case value.Int:
		return strconv.FormatInt(v.I, 10)
	case value.Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case value.String:
		return v.S
	case value.Bool:
		if v.I != 0 {
			return "1"
		}
		return "0"
	case value.Time:
		return v.Time().Format("2006-01-02 15:04:05")
	default:
		return ""
	}
}

// EncodeTextRow renders one row of the textual protocol: each cell a
// length-encoded string, NULL as the 0xfb marker byte.
func EncodeTextRow(row []value.Value) []byte {
	var b []byte
	for _, v := range row {
		if v.IsNull() {
			b = append(b, 0xfb)
			continue
		}
		b = appendLenencString(b, renderText(v))
	}
	return b
}

// TextCell is one decoded cell of a textual or binary row.
type TextCell struct {
	Null bool
	Text string
}

// ParseTextRow decodes a textual row into n cells.
func ParseTextRow(p []byte, n int) ([]TextCell, error) {
	r := newReader(p)
	cells := make([]TextCell, 0, n)
	for i := 0; i < n; i++ {
		if r.remaining() > 0 && r.b[r.off] == 0xfb {
			r.skip(1)
			cells = append(cells, TextCell{Null: true})
			continue
		}
		cells = append(cells, TextCell{Text: r.lenencString()})
	}
	if !r.ok() || r.remaining() != 0 {
		return nil, fmt.Errorf("wire: malformed text row")
	}
	return cells, nil
}

// EncodeBinaryRow renders one row of the binary protocol: 0x00 header,
// null bitmap (offset 2), then each non-NULL value encoded by its
// column's declared type.
func EncodeBinaryRow(cols []Column, row []value.Value) []byte {
	bitmap := make([]byte, (len(row)+7+2)/8)
	b := append([]byte{0x00}, bitmap...)
	for i, v := range row {
		if v.IsNull() {
			pos := i + 2
			b[1+pos/8] |= 1 << uint(pos%8)
			continue
		}
		switch cols[i].Type {
		case TypeLonglong:
			b = appendUint64(b, uint64(v.I))
		case TypeDouble:
			f, _ := v.AsFloat()
			b = appendUint64(b, floatBits(f))
		default:
			b = appendLenencString(b, renderText(v))
		}
	}
	return b
}

// ParseBinaryRow decodes a binary row against its column definitions,
// rendering every cell to text (the client surfaces text cells for both
// protocols, which keeps test assertions uniform).
func ParseBinaryRow(p []byte, cols []Column) ([]TextCell, error) {
	r := newReader(p)
	if r.uint8() != 0x00 {
		return nil, fmt.Errorf("wire: malformed binary row header")
	}
	bitmap := r.bytes((len(cols) + 7 + 2) / 8)
	if bitmap == nil {
		return nil, fmt.Errorf("wire: binary row shorter than its null bitmap")
	}
	cells := make([]TextCell, 0, len(cols))
	for i, col := range cols {
		pos := i + 2
		if bitmap[pos/8]&(1<<uint(pos%8)) != 0 {
			cells = append(cells, TextCell{Null: true})
			continue
		}
		switch col.Type {
		case TypeLonglong:
			cells = append(cells, TextCell{Text: strconv.FormatInt(int64(r.uint64()), 10)})
		case TypeDouble:
			cells = append(cells, TextCell{Text: strconv.FormatFloat(floatFromBits(r.uint64()), 'g', -1, 64)})
		default:
			cells = append(cells, TextCell{Text: r.lenencString()})
		}
	}
	if !r.ok() || r.remaining() != 0 {
		return nil, fmt.Errorf("wire: malformed binary row")
	}
	return cells, nil
}

// EncodeStmtExecute renders a COM_STMT_EXECUTE packet binding args by
// their value kinds (null bitmap at offset 0, new-params-bound flag
// set, one type pair per parameter).
func EncodeStmtExecute(stmtID uint32, args []value.Value) []byte {
	b := []byte{ComStmtExecute}
	b = appendUint32(b, stmtID)
	b = append(b, 0)       // flags: CURSOR_TYPE_NO_CURSOR
	b = appendUint32(b, 1) // iteration count
	if len(args) == 0 {
		return b
	}
	bitmap := make([]byte, (len(args)+7)/8)
	for i, v := range args {
		if v.IsNull() {
			bitmap[i/8] |= 1 << uint(i%8)
		}
	}
	b = append(b, bitmap...)
	b = append(b, 1) // new-params-bound
	for _, v := range args {
		b = append(b, paramType(v), 0) // type, unsigned flag clear
	}
	for _, v := range args {
		if v.IsNull() {
			continue
		}
		switch paramType(v) {
		case TypeLonglong:
			b = appendUint64(b, uint64(v.I))
		case TypeDouble:
			b = appendUint64(b, floatBits(v.F))
		default:
			b = appendLenencString(b, renderText(v))
		}
	}
	return b
}

// paramType picks the binary wire type a value is bound with.
func paramType(v value.Value) byte {
	switch v.K {
	case value.Null:
		return TypeNull
	case value.Int, value.Bool, value.Time:
		return TypeLonglong
	case value.Float:
		return TypeDouble
	default:
		return TypeVarString
	}
}

// ParseStmtExecuteParams decodes the parameter section of a
// COM_STMT_EXECUTE payload (positioned after the 10-byte fixed
// prefix). prevTypes carries the types from the statement's last
// execution, reused when the new-params-bound flag is clear; the
// returned types are what the caller should remember for next time.
func ParseStmtExecuteParams(p []byte, paramCount int, prevTypes []byte) ([]value.Value, []byte, error) {
	if paramCount == 0 {
		return nil, prevTypes, nil
	}
	r := newReader(p)
	bitmap := r.bytes((paramCount + 7) / 8)
	if bitmap == nil {
		return nil, nil, fmt.Errorf("wire: execute packet shorter than its null bitmap")
	}
	types := prevTypes
	if newBound := r.uint8(); newBound == 1 {
		types = make([]byte, paramCount)
		for i := 0; i < paramCount; i++ {
			types[i] = r.uint8()
			r.skip(1) // unsigned flag
		}
	} else if len(types) != paramCount {
		return nil, nil, fmt.Errorf("wire: execute without bound parameter types")
	}
	if !r.ok() {
		return nil, nil, fmt.Errorf("wire: malformed execute parameter types")
	}
	args := make([]value.Value, paramCount)
	for i := 0; i < paramCount; i++ {
		if bitmap[i/8]&(1<<uint(i%8)) != 0 {
			args[i] = value.NewNull()
			continue
		}
		switch types[i] {
		case TypeNull:
			args[i] = value.NewNull()
		case TypeTiny:
			args[i] = value.NewInt(int64(int8(r.uint8())))
		case TypeShort:
			args[i] = value.NewInt(int64(int16(r.uint16())))
		case TypeLong:
			args[i] = value.NewInt(int64(int32(r.uint32())))
		case TypeLonglong:
			args[i] = value.NewInt(int64(r.uint64()))
		case TypeFloat:
			args[i] = value.NewFloat(float64(float32FromBits(r.uint32())))
		case TypeDouble:
			args[i] = value.NewFloat(floatFromBits(r.uint64()))
		case TypeVarchar, TypeVarString, TypeString:
			args[i] = value.NewString(r.lenencString())
		default:
			return nil, nil, fmt.Errorf("wire: unsupported parameter type 0x%02x", types[i])
		}
	}
	if !r.ok() {
		return nil, nil, fmt.Errorf("wire: malformed execute parameter values")
	}
	return args, types, nil
}
