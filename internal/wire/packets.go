package wire

import "fmt"

// SQLError is a decoded ERR packet; the client surfaces it as the
// statement error, mirroring how real drivers report server errors.
type SQLError struct {
	Code    uint16
	State   string
	Message string
}

func (e *SQLError) Error() string {
	return fmt.Sprintf("ERROR %d (%s): %s", e.Code, e.State, e.Message)
}

// Error codes (the subset this server emits), with the SQLSTATE each
// maps to. The values follow the MySQL numbering so off-the-shelf
// tooling classifies them sensibly.
const (
	CodeTooManyConns     = 1040 // 08004
	CodeAccessDenied     = 1045 // 28000
	CodeUnknownDB        = 1049 // 42000
	CodeNoDatabase       = 1046 // 3D000
	CodeUnknownCommand   = 1047 // 08S01
	CodeServerShutdown   = 1053 // 08S01
	CodeDupIndex         = 1061 // 42000
	CodeParse            = 1064 // 42000
	CodeIndexNotFound    = 1091 // 42000
	CodeUnknownError     = 1105 // HY000
	CodeTableNotFound    = 1146 // 42S02
	CodePacketTooLarge   = 1153 // 08S01
	CodeLockWait         = 1205 // HY000
	CodeUnknownStmt      = 1243 // HY000
	CodeQueryInterrupted = 1317 // 70100
	CodeDiskFull         = 1021 // HY000
	CodeColumnInUse      = 1553 // HY000
	CodeMalformedPacket  = 1835 // HY000
)

// sqlState maps an error code to its SQLSTATE.
func sqlState(code uint16) string {
	switch code {
	case CodeTooManyConns, CodeUnknownCommand, CodeServerShutdown, CodePacketTooLarge:
		return "08S01"
	case CodeAccessDenied:
		return "28000"
	case CodeUnknownDB, CodeDupIndex, CodeParse, CodeIndexNotFound:
		return "42000"
	case CodeNoDatabase:
		return "3D000"
	case CodeTableNotFound:
		return "42S02"
	case CodeQueryInterrupted:
		return "70100"
	default:
		return "HY000"
	}
}

// EncodeErr renders an ERR packet with the code's SQLSTATE.
func EncodeErr(code uint16, message string) []byte {
	b := []byte{0xff}
	b = appendUint16(b, code)
	b = append(b, '#')
	b = append(b, sqlState(code)...)
	return append(b, message...)
}

// ParseErr decodes an ERR packet payload (first byte 0xff).
func ParseErr(p []byte) *SQLError {
	r := newReader(p)
	r.skip(1)
	e := &SQLError{Code: r.uint16()}
	if r.remaining() > 0 && r.b[r.off] == '#' {
		r.skip(1)
		e.State = string(r.bytes(5))
	} else {
		e.State = "HY000"
	}
	e.Message = string(r.rest())
	if !r.ok() {
		return &SQLError{Code: CodeUnknownError, State: "HY000", Message: "malformed ERR packet"}
	}
	return e
}

// OK carries the interesting fields of an OK packet.
type OK struct {
	AffectedRows uint64
	LastInsertID uint64
	Warnings     uint16
}

// EncodeOK renders an OK packet.
func EncodeOK(ok OK) []byte {
	b := []byte{0x00}
	b = appendLenencInt(b, ok.AffectedRows)
	b = appendLenencInt(b, ok.LastInsertID)
	b = appendUint16(b, statusAutocommit)
	b = appendUint16(b, ok.Warnings)
	return b
}

// ParseOK decodes an OK packet payload (first byte 0x00).
func ParseOK(p []byte) (*OK, error) {
	r := newReader(p)
	r.skip(1)
	ok := &OK{AffectedRows: r.lenencInt(), LastInsertID: r.lenencInt()}
	r.skip(2) // status
	if r.remaining() >= 2 {
		ok.Warnings = r.uint16()
	}
	if !r.ok() {
		return nil, fmt.Errorf("wire: malformed OK packet")
	}
	return ok, nil
}

// EncodeEOF renders a classic EOF packet.
func EncodeEOF() []byte {
	b := []byte{0xfe}
	b = appendUint16(b, 0) // warnings
	b = appendUint16(b, statusAutocommit)
	return b
}

// IsEOF reports whether a payload is a classic EOF packet.
func IsEOF(p []byte) bool { return len(p) > 0 && len(p) < 9 && p[0] == 0xfe }

// IsErr reports whether a payload is an ERR packet.
func IsErr(p []byte) bool { return len(p) > 0 && p[0] == 0xff }

// IsOK reports whether a payload is an OK packet.
func IsOK(p []byte) bool { return len(p) > 0 && p[0] == 0x00 }
