package optimizer

import (
	"errors"
	"strings"
	"testing"
	"time"

	"autoindex/internal/dmv"
	"autoindex/internal/schema"
	"autoindex/internal/sqlparser"
	"autoindex/internal/stats"
	"autoindex/internal/value"
)

// fakeCatalog is a hand-built catalog for optimizer unit tests.
type fakeCatalog struct {
	tables  map[string]TableInfo
	indexes map[string][]IndexInfo
	stats   map[string]*stats.ColumnStats
}

func (f *fakeCatalog) Table(name string) (TableInfo, bool) {
	t, ok := f.tables[strings.ToLower(name)]
	return t, ok
}

func (f *fakeCatalog) Indexes(table string) []IndexInfo {
	return f.indexes[strings.ToLower(table)]
}

func (f *fakeCatalog) ColumnStats(table, column string) (*stats.ColumnStats, bool) {
	s, ok := f.stats[strings.ToLower(table)+"."+strings.ToLower(column)]
	return s, ok
}

var statT0 = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

func buildCatalog() *fakeCatalog {
	orders := &schema.Table{
		Name: "orders",
		Columns: []schema.Column{
			{Name: "id", Kind: value.Int},
			{Name: "customer_id", Kind: value.Int},
			{Name: "status", Kind: value.String},
			{Name: "amount", Kind: value.Float},
		},
		PrimaryKey: []string{"id"},
	}
	customers := &schema.Table{
		Name: "customers",
		Columns: []schema.Column{
			{Name: "id", Kind: value.Int},
			{Name: "region", Kind: value.String},
		},
		PrimaryKey: []string{"id"},
	}
	const n = 10000
	custVals := make([]value.Value, n)
	statusVals := make([]value.Value, n)
	idVals := make([]value.Value, n)
	for i := 0; i < n; i++ {
		custVals[i] = value.NewInt(int64(i % 1000)) // 0.1% selectivity
		statusVals[i] = value.NewString([]string{"open", "closed", "void"}[i%3])
		idVals[i] = value.NewInt(int64(i))
	}
	regionVals := make([]value.Value, 100)
	cidVals := make([]value.Value, 100)
	for i := 0; i < 100; i++ {
		regionVals[i] = value.NewString([]string{"east", "west"}[i%2])
		cidVals[i] = value.NewInt(int64(i))
	}
	return &fakeCatalog{
		tables: map[string]TableInfo{
			"orders":    {Def: orders, RowCount: n, DataPages: 60, ClusteredHeight: 2},
			"customers": {Def: customers, RowCount: 100, DataPages: 2, ClusteredHeight: 1},
		},
		indexes: map[string][]IndexInfo{},
		stats: map[string]*stats.ColumnStats{
			"orders.customer_id": stats.Build("customer_id", custVals, statT0),
			"orders.status":      stats.Build("status", statusVals, statT0),
			"orders.id":          stats.Build("id", idVals, statT0),
			"customers.region":   stats.Build("region", regionVals, statT0),
			"customers.id":       stats.Build("id", cidVals, statT0),
		},
	}
}

func addIndex(cat *fakeCatalog, def schema.IndexDef) {
	t := cat.tables[strings.ToLower(def.Table)]
	cat.indexes[strings.ToLower(def.Table)] = append(
		cat.indexes[strings.ToLower(def.Table)], HypotheticalIndexInfo(def, t))
}

func plan(t *testing.T, cat Catalog, sql string) *Plan {
	t.Helper()
	o := &Optimizer{Cat: cat}
	p, err := o.Plan(sqlparser.MustParse(sql))
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return p
}

func TestScanWhenNoIndex(t *testing.T) {
	cat := buildCatalog()
	p := plan(t, cat, `SELECT id FROM orders WHERE customer_id = 7`)
	if !strings.Contains(p.Shape(), "SeqScan") {
		t.Fatalf("expected scan:\n%s", p.Explain())
	}
	if p.EstRows < 4 || p.EstRows > 30 {
		t.Fatalf("estimated rows %v, want ~10", p.EstRows)
	}
}

func TestSeekChosenWithIndex(t *testing.T) {
	cat := buildCatalog()
	addIndex(cat, schema.IndexDef{Name: "ix_cust", Table: "orders", KeyColumns: []string{"customer_id"}})
	p := plan(t, cat, `SELECT id FROM orders WHERE customer_id = 7`)
	if !strings.Contains(p.Shape(), "ix_cust") {
		t.Fatalf("expected seek:\n%s", p.Explain())
	}
	// Index covers (customer_id, id-from-locator): no lookup.
	if strings.Contains(p.Shape(), "+lookup") {
		t.Fatalf("locator makes this covering:\n%s", p.Explain())
	}
}

func TestLookupPenaltyFlipsToScan(t *testing.T) {
	cat := buildCatalog()
	addIndex(cat, schema.IndexDef{Name: "ix_status", Table: "orders", KeyColumns: []string{"status"}})
	// status = 'open' matches ~1/3 of 10k rows; a non-covering seek would
	// need ~3300 lookups — the scan must win.
	p := plan(t, cat, `SELECT amount FROM orders WHERE status = 'open'`)
	if !strings.Contains(p.Shape(), "SeqScan") {
		t.Fatalf("lookup-heavy seek should lose to scan:\n%s", p.Explain())
	}
	// A selective predicate on an indexed column uses the seek despite the
	// lookup.
	addIndex(cat, schema.IndexDef{Name: "ix_cust2", Table: "orders", KeyColumns: []string{"customer_id"}})
	p = plan(t, cat, `SELECT amount FROM orders WHERE customer_id = 3`)
	if !strings.Contains(p.Shape(), "ix_cust2") || !strings.Contains(p.Shape(), "+lookup") {
		t.Fatalf("selective seek with lookup expected:\n%s", p.Explain())
	}
}

func TestClusteredSeekForPKPredicate(t *testing.T) {
	cat := buildCatalog()
	p := plan(t, cat, `SELECT amount FROM orders WHERE id = 42`)
	if !strings.Contains(p.Shape(), strings.ToLower(ClusteredIndexName("orders"))) {
		t.Fatalf("expected clustered seek:\n%s", p.Explain())
	}
	if p.EstRows > 2 {
		t.Fatalf("PK point estimate %v", p.EstRows)
	}
}

func TestRangeSeekUsesOneInequality(t *testing.T) {
	cat := buildCatalog()
	addIndex(cat, schema.IndexDef{Name: "ix_cust_amt", Table: "orders", KeyColumns: []string{"customer_id", "amount"}})
	p := plan(t, cat, `SELECT id FROM orders WHERE customer_id = 5 AND amount > 10 AND amount <= 20`)
	shape := p.Shape()
	if !strings.Contains(shape, "ix_cust_amt") {
		t.Fatalf("expected composite seek:\n%s", p.Explain())
	}
	if !strings.Contains(shape, "seek(customer_id;amount") {
		t.Fatalf("range column should be in the seek:\n%s", shape)
	}
}

func TestOrderByIndexAvoidsSort(t *testing.T) {
	cat := buildCatalog()
	addIndex(cat, schema.IndexDef{Name: "ix_cust_amt", Table: "orders", KeyColumns: []string{"customer_id", "amount"}})
	p := plan(t, cat, `SELECT TOP 10 amount FROM orders WHERE customer_id = 5 ORDER BY amount`)
	if strings.Contains(p.Shape(), "Sort") {
		t.Fatalf("index provides order, sort unnecessary:\n%s", p.Explain())
	}
	// DESC requires a sort in this engine (forward-only scans).
	p = plan(t, cat, `SELECT TOP 10 amount FROM orders WHERE customer_id = 5 ORDER BY amount DESC`)
	if !strings.Contains(p.Shape(), "Sort") {
		t.Fatalf("DESC must sort:\n%s", p.Explain())
	}
}

func TestJoinPrefersNLWithIndex(t *testing.T) {
	cat := buildCatalog()
	// customers.id is the PK: NL join via clustered seek should beat hash
	// join for a filtered outer.
	p := plan(t, cat, `SELECT o.id FROM orders o JOIN customers c ON o.customer_id = c.id WHERE o.customer_id = 3`)
	if !strings.Contains(p.Shape(), "NestedLoops") {
		t.Logf("shape:\n%s", p.Explain())
	}
	// Unfiltered join on a non-indexed inner column: hash join.
	p = plan(t, cat, `SELECT o.id FROM customers c JOIN orders o ON c.id = o.customer_id`)
	if !strings.Contains(p.Shape(), "HashJoin") && !strings.Contains(p.Shape(), "NestedLoops") {
		t.Fatalf("some join expected:\n%s", p.Explain())
	}
}

func TestWritePlansChargeMaintenance(t *testing.T) {
	cat := buildCatalog()
	base := plan(t, cat, `INSERT INTO orders (id, customer_id, status, amount) VALUES (1, 2, 'open', 3.5)`)
	addIndex(cat, schema.IndexDef{Name: "ix_a", Table: "orders", KeyColumns: []string{"customer_id"}})
	addIndex(cat, schema.IndexDef{Name: "ix_b", Table: "orders", KeyColumns: []string{"status"}})
	withIx := plan(t, cat, `INSERT INTO orders (id, customer_id, status, amount) VALUES (1, 2, 'open', 3.5)`)
	if withIx.EstCost <= base.EstCost {
		t.Fatalf("insert cost must grow with indexes: %v vs %v", withIx.EstCost, base.EstCost)
	}
	if len(withIx.Root.MaintIndexes) != 2 {
		t.Fatalf("maintenance list: %v", withIx.Root.MaintIndexes)
	}
	// Update maintains only indexes containing SET columns.
	up := plan(t, cat, `UPDATE orders SET amount = 9.5 WHERE id = 1`)
	if len(up.Root.MaintIndexes) != 0 {
		t.Fatalf("no index contains amount: %v", up.Root.MaintIndexes)
	}
	up = plan(t, cat, `UPDATE orders SET status = 'void' WHERE id = 1`)
	if len(up.Root.MaintIndexes) != 1 || !strings.EqualFold(up.Root.MaintIndexes[0], "ix_b") {
		t.Fatalf("maintenance: %v", up.Root.MaintIndexes)
	}
}

func TestHypotheticalInvisibleOutsideWhatIf(t *testing.T) {
	cat := buildCatalog()
	addIndex(cat, schema.IndexDef{Name: "hypo", Table: "orders", KeyColumns: []string{"customer_id"}, Hypothetical: true})
	p := plan(t, cat, `SELECT id FROM orders WHERE customer_id = 7`)
	if strings.Contains(p.Shape(), "hypo") {
		t.Fatalf("hypothetical index used by normal planning:\n%s", p.Explain())
	}
	o := &Optimizer{Cat: cat, WhatIfMode: true}
	wp, err := o.Plan(sqlparser.MustParse(`SELECT id FROM orders WHERE customer_id = 7`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wp.Shape(), "hypo") {
		t.Fatalf("what-if mode must see hypothetical:\n%s", wp.Explain())
	}
}

func TestWhatIfCatalogOverlay(t *testing.T) {
	cat := buildCatalog()
	addIndex(cat, schema.IndexDef{Name: "real_ix", Table: "orders", KeyColumns: []string{"status"}})
	w := NewWhatIfCatalog(cat)
	w.AddHypothetical(schema.IndexDef{Name: "h1", Table: "orders", KeyColumns: []string{"customer_id"}})
	if len(w.Indexes("orders")) != 2 {
		t.Fatalf("overlay: %v", w.Indexes("orders"))
	}
	w.Exclude("real_ix")
	ixs := w.Indexes("orders")
	if len(ixs) != 1 || ixs[0].Def.Name != "h1" {
		t.Fatalf("exclude failed: %v", ixs)
	}
	w.RemoveHypothetical("h1")
	if len(w.Indexes("orders")) != 0 {
		t.Fatal("remove failed")
	}
}

func TestWhatIfBulkInsertUnsupported(t *testing.T) {
	cat := buildCatalog()
	o := &Optimizer{Cat: cat, WhatIfMode: true}
	_, err := o.Plan(sqlparser.MustParse(`BULK INSERT orders FROM DATASOURCE x`))
	if !errors.Is(err, ErrWhatIfUnsupported) {
		t.Fatalf("want ErrWhatIfUnsupported, got %v", err)
	}
}

func TestMissingIndexEmittedOnScan(t *testing.T) {
	cat := buildCatalog()
	var got []dmv.Candidate
	o := &Optimizer{Cat: cat, MI: miFunc(func(c dmv.Candidate, _ uint64, _, _ float64) {
		got = append(got, c)
	})}
	if _, err := o.Plan(sqlparser.MustParse(`SELECT amount FROM orders WHERE customer_id = 7`)); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("expected an MI candidate from a scan with a sargable predicate")
	}
	if !strings.EqualFold(got[0].Equality[0], "customer_id") {
		t.Fatalf("candidate: %+v", got[0])
	}
	// No emission for unconditional deletes or inserts.
	got = nil
	o.Plan(sqlparser.MustParse(`DELETE FROM orders`))                                                           //nolint:errcheck
	o.Plan(sqlparser.MustParse(`INSERT INTO orders (id, customer_id, status, amount) VALUES (1, 1, 'x', 1.0)`)) //nolint:errcheck
	if len(got) != 0 {
		t.Fatalf("MI must skip inserts and predicate-less writes: %+v", got)
	}
}

type miFunc func(c dmv.Candidate, queryHash uint64, estCost, improvementPct float64)

func (f miFunc) ObserveMissingIndex(c dmv.Candidate, q uint64, e, i float64) { f(c, q, e, i) }

func TestPlanHashStableAcrossLiterals(t *testing.T) {
	cat := buildCatalog()
	p1 := plan(t, cat, `SELECT id FROM orders WHERE customer_id = 7`)
	p2 := plan(t, cat, `SELECT id FROM orders WHERE customer_id = 55`)
	if p1.PlanHash != p2.PlanHash {
		t.Fatal("same shape must share plan hash")
	}
	addIndex(cat, schema.IndexDef{Name: "ix_cust", Table: "orders", KeyColumns: []string{"customer_id"}})
	p3 := plan(t, cat, `SELECT id FROM orders WHERE customer_id = 7`)
	if p1.PlanHash == p3.PlanHash {
		t.Fatal("different access path must change plan hash")
	}
}

func TestBindingErrors(t *testing.T) {
	cat := buildCatalog()
	o := &Optimizer{Cat: cat}
	for _, sql := range []string{
		`SELECT x FROM nope`,
		`SELECT ghost FROM orders`,
		`SELECT id FROM orders WHERE ghost = 1`,
		`SELECT id FROM orders o JOIN customers o ON o.id = o.id`,
		`SELECT id FROM orders o JOIN customers c ON o.id = c.id`, // ambiguous "id"? qualified, fine
	} {
		_, err := o.Plan(sqlparser.MustParse(sql))
		if sql == `SELECT id FROM orders o JOIN customers c ON o.id = c.id` {
			if err == nil {
				t.Errorf("unqualified ambiguous id should fail: %q", sql)
			}
			continue
		}
		if err == nil {
			t.Errorf("plan(%q) should fail", sql)
		}
	}
}

func TestGroupByPrefersCoveringIndexScan(t *testing.T) {
	cat := buildCatalog()
	// Without an index: base scan feeds the aggregate.
	p := plan(t, cat, `SELECT status, COUNT(*) FROM orders GROUP BY status`)
	if !strings.Contains(p.Shape(), "SeqScan") {
		t.Fatalf("expected base scan:\n%s", p.Explain())
	}
	base := p.EstCost
	// A narrow covering index makes the aggregation input much cheaper.
	addIndex(cat, schema.IndexDef{Name: "ix_status_narrow", Table: "orders", KeyColumns: []string{"status"}})
	p = plan(t, cat, `SELECT status, COUNT(*) FROM orders GROUP BY status`)
	if !strings.Contains(p.Shape(), "ix_status_narrow") {
		t.Fatalf("expected covering index scan:\n%s", p.Explain())
	}
	if p.EstCost >= base {
		t.Fatalf("covering scan not cheaper: %v >= %v", p.EstCost, base)
	}
}

func TestJoinAlgorithmCrossover(t *testing.T) {
	cat := buildCatalog()
	addIndex(cat, schema.IndexDef{Name: "ix_ocust", Table: "orders", KeyColumns: []string{"customer_id"}, IncludedColumns: []string{"amount"}})
	// Small outer (one customer row) probing a big indexed inner: NL wins.
	p := plan(t, cat, `SELECT o.amount FROM customers c JOIN orders o ON c.id = o.customer_id WHERE c.id = 7`)
	if !strings.Contains(p.Shape(), "NestedLoops") {
		t.Fatalf("selective outer should use NL:\n%s", p.Explain())
	}
	// Huge outer with no useful inner index on the join column: hash join.
	cat2 := buildCatalog()
	p = plan(t, cat2, `SELECT o.amount FROM orders o JOIN customers c ON o.customer_id = c.id`)
	// Inner side customers has PK on id — NL via clustered seek is also
	// legitimate; assert only that some join was planned and costed.
	if !strings.Contains(p.Shape(), "Join") && !strings.Contains(p.Shape(), "NestedLoops") {
		t.Fatalf("no join operator:\n%s", p.Explain())
	}
	if p.EstRows < 1000 {
		t.Fatalf("join cardinality estimate too small: %v", p.EstRows)
	}
}

func TestCostStatementMatchesPlan(t *testing.T) {
	cat := buildCatalog()
	o := &Optimizer{Cat: cat}
	cost, p, err := o.CostStatement(sqlparser.MustParse(`SELECT id FROM orders WHERE customer_id = 7`))
	if err != nil {
		t.Fatal(err)
	}
	if cost != p.EstCost {
		t.Fatalf("cost %v != plan cost %v", cost, p.EstCost)
	}
	if o.Calls() != 1 {
		t.Fatalf("calls = %d", o.Calls())
	}
}

func TestHypotheticalInfoScaling(t *testing.T) {
	cat := buildCatalog()
	ti, _ := cat.Table("orders")
	narrow := HypotheticalIndexInfo(schema.IndexDef{Table: "orders", KeyColumns: []string{"customer_id"}}, ti)
	wide := HypotheticalIndexInfo(schema.IndexDef{Table: "orders", KeyColumns: []string{"customer_id"}, IncludedColumns: []string{"status", "amount"}}, ti)
	if wide.LeafPages <= narrow.LeafPages {
		t.Fatalf("wider index must have more leaf pages: %d vs %d", wide.LeafPages, narrow.LeafPages)
	}
	if narrow.Height < 1 || narrow.RowCount != ti.RowCount {
		t.Fatalf("info: %+v", narrow)
	}
}
