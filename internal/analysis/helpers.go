package analysis

import (
	"go/ast"
	"go/types"
)

// pkgFunc resolves a call of the form pkg.Fn where pkg is an imported
// package name, returning the package path and function name, or
// ok=false for anything else (method calls, local helpers, conversions).
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodOf resolves a method call x.M(...) to the *types.Func it
// invokes (following embedded promotions), or nil.
func methodOf(info *types.Info, call *ast.CallExpr) (*types.Func, *ast.SelectorExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, nil
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return nil, nil
	}
	return fn, sel
}

// isErrorType reports whether t is exactly the predeclared error
// interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isFloat reports whether t's underlying type is a floating-point
// kind (the accumulation order of which is observable). t is nil for
// the blank identifier (`_ = f()` has no LHS type).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// underMap returns the map type underlying t, traversing named types,
// or nil.
func underMap(t types.Type) *types.Map {
	if t == nil {
		return nil
	}
	m, _ := t.Underlying().(*types.Map)
	return m
}

// exprMentions reports whether any identifier or selector inside e
// renders (via types.ExprString) to target.
func exprMentions(e ast.Expr, target string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if types.ExprString(n.(ast.Expr)) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// funcBodies calls fn for every function body in file, both
// declarations and literals.
func funcBodies(file *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			fn(d.Body)
		}
		return true
	})
}
