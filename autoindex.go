// Package autoindex is the public facade of the auto-indexing service
// reproduction: it wires a per-region control plane over engine databases,
// exposing the user-facing surface of the paper (§2) — configure
// auto-implementation per database or per logical server, list current
// recommendations, apply one manually, and inspect the history of actions
// with their validated impact — plus helpers to create databases and
// advance the simulated region.
//
// A minimal session:
//
//	region := autoindex.NewRegion(42)
//	db := region.NewDatabase("mydb", autoindex.TierStandard)
//	region.Manage(db, "server-1", autoindex.Settings{AutoCreate: true, AutoDrop: true})
//	// ... execute workload via db.Exec(...) ...
//	region.Advance(24 * time.Hour) // control plane analyzes, implements, validates
//	for _, rec := range region.Recommendations("mydb") { fmt.Println(rec.Describe()) }
package autoindex

import (
	"sort"
	"time"

	"autoindex/internal/controlplane"
	"autoindex/internal/engine"
	"autoindex/internal/sim"
	"autoindex/internal/telemetry"
)

// Re-exported types so callers need only this package for common use.
type (
	// Tier is an Azure-SQL-style service tier.
	Tier = engine.Tier
	// Settings are the per-database auto-implementation controls (§2).
	Settings = controlplane.Settings
	// ServerSettings are logical-server defaults databases can inherit.
	ServerSettings = controlplane.ServerSettings
	// Database is a managed database engine instance.
	Database = engine.Database
	// Record is a recommendation with its lifecycle state.
	Record = controlplane.Record
	// OperationalStats is the §8.1-style service summary.
	OperationalStats = controlplane.OperationalStats
)

// Service tiers.
const (
	TierBasic    = engine.TierBasic
	TierStandard = engine.TierStandard
	TierPremium  = engine.TierPremium
)

// Region is one auto-indexing deployment: a control plane, a shared
// virtual clock, and the databases it manages.
type Region struct {
	clock *sim.VirtualClock
	plane *controlplane.ControlPlane
	seed  int64
	// StepEvery is how often Advance runs a control-plane round.
	StepEvery time.Duration
}

// NewRegion creates a region with default control-plane configuration.
func NewRegion(seed int64) *Region {
	clock := sim.NewClock()
	return &Region{
		clock:     clock,
		plane:     controlplane.New(controlplane.DefaultConfig(), clock, controlplane.NewMemStore(), telemetry.NewHub(0)),
		seed:      seed,
		StepEvery: time.Hour,
	}
}

// NewRegionWithConfig creates a region with a custom control-plane
// configuration.
func NewRegionWithConfig(seed int64, cfg controlplane.Config) *Region {
	clock := sim.NewClock()
	return &Region{
		clock:     clock,
		plane:     controlplane.New(cfg, clock, controlplane.NewMemStore(), telemetry.NewHub(0)),
		seed:      seed,
		StepEvery: time.Hour,
	}
}

// Clock exposes the region's virtual clock.
func (r *Region) Clock() *sim.VirtualClock { return r.clock }

// Plane exposes the underlying control plane for advanced use.
func (r *Region) Plane() *controlplane.ControlPlane { return r.plane }

// NewDatabase creates an empty database in the region. Populate it with
// db.Exec DDL/DML or the workload generator.
func (r *Region) NewDatabase(name string, tier Tier) *Database {
	r.seed++
	return engine.New(engine.DefaultConfig(name, tier, r.seed), r.clock)
}

// Manage registers a database with the auto-indexing service.
func (r *Region) Manage(db *Database, server string, s Settings) {
	r.plane.Manage(db, server, s)
}

// SetServerSettings configures logical-server defaults (§2 inheritance).
func (r *Region) SetServerSettings(server string, s ServerSettings) {
	r.plane.SetServerSettings(server, s)
}

// Advance moves virtual time forward, running control-plane rounds every
// StepEvery.
func (r *Region) Advance(d time.Duration) {
	step := r.StepEvery
	if step <= 0 {
		step = time.Hour
	}
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		r.clock.Advance(step)
		r.plane.Step()
	}
}

// Step runs one control-plane round without advancing time.
func (r *Region) Step() { r.plane.Step() }

// Recommendations lists a database's Active recommendations (Fig. 2).
func (r *Region) Recommendations(db string) []*Record {
	return r.plane.ListRecommendations(db)
}

// History lists a database's completed/ongoing actions and outcomes.
func (r *Region) History(db string) []*Record {
	return r.plane.History(db)
}

// Details renders the detailed recommendation view (Fig. 3).
func (r *Region) Details(recID string) (string, error) {
	return r.plane.Details(recID)
}

// Apply requests manual implementation of an Active recommendation; the
// system implements and validates it (§2).
func (r *Region) Apply(recID string) error { return r.plane.Apply(recID) }

// OpStats summarises the service's operational counters (§8.1).
func (r *Region) OpStats() OperationalStats { return r.plane.OpStats() }

// DashboardRow is one region's aggregated health view.
type DashboardRow struct {
	Region string
	Stats  OperationalStats
}

// Dashboard aggregates operational statistics across regions — the §8.3
// monitoring surface ("dashboards to aggregate data from disparate regions
// to create an aggregated view of the service"). Only anonymized counters
// cross the region boundary, matching the compliance posture of §1.2.
func Dashboard(regions map[string]*Region) []DashboardRow {
	names := make([]string, 0, len(regions))
	for n := range regions {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]DashboardRow, 0, len(names))
	for _, n := range names {
		rows = append(rows, DashboardRow{Region: n, Stats: regions[n].OpStats()})
	}
	return rows
}

// DashboardTotal sums the per-region rows into a global view.
func DashboardTotal(rows []DashboardRow) OperationalStats {
	var total OperationalStats
	var implemented, reverts int64
	for _, r := range rows {
		total.Databases += r.Stats.Databases
		total.CreateRecommended += r.Stats.CreateRecommended
		total.DropRecommended += r.Stats.DropRecommended
		total.CreatesImplemented += r.Stats.CreatesImplemented
		total.DropsImplemented += r.Stats.DropsImplemented
		total.Validations += r.Stats.Validations
		total.Reverts += r.Stats.Reverts
		total.Incidents += r.Stats.Incidents
		implemented += r.Stats.CreatesImplemented + r.Stats.DropsImplemented
		reverts += r.Stats.Reverts
	}
	if implemented > 0 {
		total.RevertRate = float64(reverts) / float64(implemented)
	}
	return total
}
