package fleet

import (
	"testing"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/experiment"
)

func TestBuildFleetMixedTiers(t *testing.T) {
	f, err := Build(Spec{Databases: 4, MixedTiers: true, Seed: 1, UserIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Tenants) != 4 {
		t.Fatalf("tenants: %d", len(f.Tenants))
	}
	tiers := make(map[engine.Tier]int)
	for _, tn := range f.Tenants {
		tiers[tn.DB.Tier()]++
	}
	if len(tiers) < 2 {
		t.Fatalf("tier mix: %v", tiers)
	}
}

// TestRunOpsShape runs a small §8.1 simulation and checks the structural
// claims: actions implemented, validations run, the revert rate in a sane
// band, and improvement statistics produced.
func TestRunOpsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation is slow")
	}
	spec := Spec{Databases: 4, MixedTiers: true, Seed: 2026, UserIndexes: true}
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOpsConfig()
	cfg.Days = 6
	cfg.StatementsPerHour = 20
	cfg.AutoImplementFraction = 1.0
	cfg.NewTenantEvery = 72 * time.Hour
	res, err := f.RunOps(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.CreatesImplemented == 0 {
		t.Fatalf("nothing implemented: %+v", s)
	}
	if s.Validations == 0 {
		t.Fatalf("nothing validated: %+v", s)
	}
	if s.RevertRate > 0.5 {
		t.Fatalf("revert rate out of band: %+v", s)
	}
	// New tenants arrived (the paper's increasing stream of databases).
	if len(f.Tenants) <= 4 {
		t.Fatal("no new tenants arrived")
	}
	if s.Databases <= 4 {
		t.Fatalf("control plane missed new tenants: %+v", s)
	}
}

// TestRunFig6Small checks the experiment harness produces a well-formed
// summary with the paper's structural property: no recommender wins
// everywhere.
func TestRunFig6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 is slow")
	}
	f, err := Build(Spec{Databases: 3, Tier: engine.TierStandard, Seed: 99, UserIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiment.DefaultFig6Config()
	cfg.PhaseStatements = 250
	cfg.PhaseDuration = 8 * time.Hour
	sum := f.RunFig6("standard", cfg)
	if sum.Databases+sum.Errors != 3 {
		t.Fatalf("accounting: %+v", sum)
	}
	var total float64
	//lint:ignore maporder tolerance-checked sum (99..101); low-bit float order variance cannot flip the assertion
	for _, share := range sum.Share {
		if share < 0 || share > 100 {
			t.Fatalf("share out of range: %+v", sum.Share)
		}
		total += share
	}
	if sum.Databases > 0 && (total < 99 || total > 101) {
		t.Fatalf("shares must sum to 100: %v", total)
	}
}
