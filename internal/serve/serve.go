// Package serve is the session/state layer of the SQL serving path: it
// accepts wire-protocol connections (internal/wire), authenticates
// them, maps each session onto one tenant database, and executes client
// statements through the engine with live Query Store capture — so real
// traffic drives the same DTA/MI tuning loop the simulator does.
//
// Admission control has two levels. A max-sessions gate refuses new
// connections outright (ERR 1040) when the server is full; a per-tenant
// token bucket converts over-rate statement streams into backpressure
// (the session sleeps off its debt before executing) instead of errors.
//
// This package is on the wallclock analyzer's sanctioned list: it
// schedules real network deadlines and real backpressure sleeps.
package serve

import (
	"context"
	"net"
	"sync"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/metrics"
	"autoindex/internal/wire"
)

// Config configures a Server. The zero value of each field selects the
// documented default.
type Config struct {
	// Lookup resolves a database name to its engine instance. Required.
	Lookup func(name string) (*engine.Database, bool)
	// Password is the shared tenant password (any username is accepted;
	// isolation is per-database, not per-user).
	Password string
	// MaxSessions caps concurrently open sessions (default 128).
	MaxSessions int
	// TenantRate is the per-tenant statement rate in statements/second;
	// 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the token-bucket burst (default max(1, TenantRate)).
	TenantBurst float64
	// ReadTimeout bounds the wait for the next client command
	// (default 5 minutes).
	ReadTimeout time.Duration
	// CaptureBatch is how many captured statements form one capture
	// batch (default 32).
	CaptureBatch int
	// MaxStatementBytes caps a single command packet (default 1MB).
	MaxStatementBytes int
	// MaxPayload lowers the wire frame-split threshold; tests use it to
	// exercise split packets. 0 keeps the protocol's 16MB default.
	MaxPayload int
	// ServerVersion is the version string in the handshake
	// (default "8.0-autoindex").
	ServerVersion string
	// Metrics receives the serve.* metric families; nil disables them.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 128
	}
	if c.TenantBurst < 1 {
		c.TenantBurst = c.TenantRate
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.CaptureBatch <= 0 {
		c.CaptureBatch = 32
	}
	if c.MaxStatementBytes <= 0 {
		c.MaxStatementBytes = 1 << 20
	}
	if c.ServerVersion == "" {
		c.ServerVersion = "8.0-autoindex"
	}
	return c
}

// Server accepts and runs wire-protocol sessions.
type Server struct {
	cfg     Config
	done    chan struct{}
	wg      sync.WaitGroup
	capture captureState

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	sessions map[*session]struct{}
	buckets  map[string]*tokenBucket
	connSeq  uint32
}

// New returns a server ready to Serve.
func New(cfg Config) *Server {
	return &Server{
		cfg:      cfg.withDefaults(),
		done:     make(chan struct{}),
		sessions: make(map[*session]struct{}),
		buckets:  make(map[string]*tokenBucket),
	}
}

// Serve accepts connections until the listener closes (typically via
// Shutdown). It returns nil on a shutdown-initiated stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	reg := s.cfg.Metrics
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		reg.Counter(DescConnections).Inc()
		sess := s.newSession(nc)
		if !s.register(sess) {
			reg.Counter(DescAdmissionRejected).Inc()
			// Refuse before the handshake, the way real servers do: the
			// initial packet is an ERR instead of a greeting.
			_ = sess.conn.WritePacket(wire.EncodeErr(wire.CodeTooManyConns, "too many connections"))
			_ = nc.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.unregister(sess)
			sess.run()
		}()
	}
}

func (s *Server) newSession(nc net.Conn) *session {
	conn := wire.NewConn(nc)
	if s.cfg.MaxPayload > 0 {
		conn.SetMaxPayload(s.cfg.MaxPayload)
	}
	conn.SetMaxTotal(s.cfg.MaxStatementBytes)
	s.mu.Lock()
	s.connSeq++
	id := s.connSeq
	s.mu.Unlock()
	return &session{srv: s, conn: conn, id: id, stmts: make(map[uint32]*preparedStmt)}
}

// register admits a session under the max-sessions gate.
func (s *Server) register(sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.sessions) >= s.cfg.MaxSessions {
		return false
	}
	s.sessions[sess] = struct{}{}
	s.cfg.Metrics.Gauge(DescSessionsActive).Add(1)
	return true
}

func (s *Server) unregister(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, sess)
	s.cfg.Metrics.Gauge(DescSessionsActive).Add(-1)
}

// bucketFor returns the tenant's token bucket, creating it on first use.
func (s *Server) bucketFor(db string) *tokenBucket {
	if s.cfg.TenantRate <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[db]
	if b == nil {
		b = newTokenBucket(s.cfg.TenantRate, s.cfg.TenantBurst)
		s.buckets[db] = b
	}
	return b
}

// ActiveSessions reports how many sessions are currently open.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// CaptureStats reports live Query Store capture totals.
func (s *Server) CaptureStats() CaptureStats { return s.capture.stats() }

// Shutdown stops accepting connections and drains sessions: idle
// sessions are nudged out of their command read immediately, in-flight
// statements finish. If ctx expires first, remaining connections are
// force-closed and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
		if s.ln != nil {
			_ = s.ln.Close()
		}
	}
	sessions := make([]*session, 0, len(s.sessions))
	//lint:ignore maporder every collected session gets the same nudge; order is unobservable
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.nudge()
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			_ = sess.conn.Close()
		}
		s.mu.Unlock()
		<-drained
		return ctx.Err()
	}
}
