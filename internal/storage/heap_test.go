package storage

import (
	"testing"
	"testing/quick"

	"autoindex/internal/value"
)

func row(i int64) value.Row { return value.Row{value.NewInt(i)} }

func TestHeapCRUD(t *testing.T) {
	h := NewHeap(8)
	var rids []RID
	for i := int64(0); i < 100; i++ {
		rids = append(rids, h.Insert(row(i)))
	}
	if h.Len() != 100 {
		t.Fatalf("len = %d", h.Len())
	}
	for i, rid := range rids {
		r, ok := h.Get(rid)
		if !ok || r[0].I != int64(i) {
			t.Fatalf("get %d: %v %v", rid, r, ok)
		}
	}
	if err := h.Update(rids[7], row(700)); err != nil {
		t.Fatal(err)
	}
	r, _ := h.Get(rids[7])
	if r[0].I != 700 {
		t.Fatal("update lost")
	}
	if err := h.Delete(rids[3]); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Get(rids[3]); ok {
		t.Fatal("deleted row visible")
	}
	if err := h.Delete(rids[3]); err == nil {
		t.Fatal("double delete must error")
	}
	if err := h.Update(rids[3], row(1)); err == nil {
		t.Fatal("update of deleted row must error")
	}
	if h.Len() != 100-1 {
		t.Fatalf("len after delete = %d", h.Len())
	}
}

func TestHeapSlotReuse(t *testing.T) {
	h := NewHeap(8)
	a := h.Insert(row(1))
	h.Insert(row(2))
	if err := h.Delete(a); err != nil {
		t.Fatal(err)
	}
	c := h.Insert(row(3))
	if c != a {
		t.Fatalf("freed slot not reused: got %d, want %d", c, a)
	}
}

func TestHeapScanSkipsTombstones(t *testing.T) {
	h := NewHeap(8)
	var rids []RID
	for i := int64(0); i < 10; i++ {
		rids = append(rids, h.Insert(row(i)))
	}
	h.Delete(rids[4])
	seen := 0
	h.Scan(func(rid RID, r value.Row) bool {
		if rid == rids[4] {
			t.Fatal("tombstone scanned")
		}
		seen++
		return true
	})
	if seen != 9 {
		t.Fatalf("scanned %d rows", seen)
	}
	// Early termination.
	seen = 0
	h.Scan(func(RID, value.Row) bool { seen++; return seen < 3 })
	if seen != 3 {
		t.Fatalf("early stop scanned %d", seen)
	}
}

func TestPageAccounting(t *testing.T) {
	if RowsPerPage(0) < 1 || RowsPerPage(100000) != 1 {
		t.Fatal("RowsPerPage bounds")
	}
	if PagesFor(0, 100) != 1 {
		t.Fatal("empty table still occupies a page")
	}
	if PagesFor(1000, 8192) != 1000 {
		t.Fatal("one row per page")
	}
	// 8192/80 = 102 rows/page → 1000 rows = 10 pages.
	if got := PagesFor(1000, 80); got != 10 {
		t.Fatalf("PagesFor = %d", got)
	}
	h := NewHeap(80)
	for i := int64(0); i < 1000; i++ {
		h.Insert(row(i))
	}
	if h.Pages() != 10 {
		t.Fatalf("heap pages = %d", h.Pages())
	}
}

// Property: a heap behaves like a map keyed by RID.
func TestQuickHeapMatchesMap(t *testing.T) {
	f := func(vals []int64) bool {
		h := NewHeap(8)
		ref := make(map[RID]int64)
		for i, v := range vals {
			switch {
			case i%5 == 4 && len(ref) > 0:
				for rid := range ref {
					h.Delete(rid)
					delete(ref, rid)
					break
				}
			default:
				rid := h.Insert(row(v))
				ref[rid] = v
			}
		}
		if h.Len() != int64(len(ref)) {
			return false
		}
		for rid, v := range ref {
			r, ok := h.Get(rid)
			if !ok || r[0].I != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
