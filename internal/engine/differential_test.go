package engine

// Differential correctness testing: indexes are access-path optimizations
// and must never change query results. We generate realistic tenant
// workloads, execute every read statement against an index-free clone and
// an aggressively indexed clone of the same snapshot, and require
// identical result multisets. This is the invariant the whole service
// stands on — an auto-created index that changed answers would be far
// worse than any regression the validator catches.

import (
	"sort"
	"strings"
	"testing"

	"autoindex/internal/faults"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
	"autoindex/internal/value"
)

// canonicalize renders a result set as an order-insensitive multiset,
// except that ORDER BY queries keep their order.
func canonicalize(rows []value.Row, ordered bool) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	if !ordered {
		sort.Strings(out)
	}
	return out
}

func TestDifferentialIndexedVsUnindexed(t *testing.T) {
	clock := sim.NewClock()
	base := New(DefaultConfig("diff", TierStandard, 2024), clock)
	mustExec(t, base, `CREATE TABLE facts (id BIGINT NOT NULL, a BIGINT, b BIGINT, s VARCHAR, f FLOAT, PRIMARY KEY (id))`)
	mustExec(t, base, `CREATE TABLE dims (id BIGINT NOT NULL, grp BIGINT, label VARCHAR, PRIMARY KEY (id))`)
	rng := sim.NewRNG(77)
	for i := 0; i < 3000; i++ {
		mustExec(t, base, sprintf(
			`INSERT INTO facts (id, a, b, s, f) VALUES (%d, %d, %d, 's%d', %d.25)`,
			i, rng.Intn(200), rng.Intn(50), rng.Intn(12), rng.Intn(1000)))
	}
	for i := 0; i < 120; i++ {
		mustExec(t, base, sprintf(`INSERT INTO dims (id, grp, label) VALUES (%d, %d, 'l%d')`, i, i%8, i))
	}
	base.RebuildAllStats()

	indexed := base.Clone("diff-indexed")
	for _, def := range []schema.IndexDef{
		{Name: "ix_a", Table: "facts", KeyColumns: []string{"a"}},
		{Name: "ix_ab", Table: "facts", KeyColumns: []string{"a", "b"}, IncludedColumns: []string{"f"}},
		{Name: "ix_s", Table: "facts", KeyColumns: []string{"s"}, IncludedColumns: []string{"a", "b"}},
		{Name: "ix_b", Table: "facts", KeyColumns: []string{"b"}},
		{Name: "ix_grp", Table: "dims", KeyColumns: []string{"grp"}, IncludedColumns: []string{"label"}},
	} {
		if err := indexed.CreateIndex(def, IndexBuildOptions{Online: true}); err != nil {
			t.Fatal(err)
		}
	}

	queries := []struct {
		sql     string
		ordered bool
	}{
		{`SELECT id FROM facts WHERE a = 17`, false},
		{`SELECT id, f FROM facts WHERE a = 17 AND b = 3`, false},
		{`SELECT id FROM facts WHERE a = 17 AND b > 10`, false},
		{`SELECT a, b FROM facts WHERE s = 's3'`, false},
		{`SELECT id FROM facts WHERE b BETWEEN 5 AND 9`, false},
		{`SELECT id FROM facts WHERE a >= 190`, false},
		{`SELECT id FROM facts WHERE a = 17 AND f > 100`, false},
		{`SELECT COUNT(*) FROM facts WHERE a = 17`, false},
		{`SELECT s, COUNT(*), SUM(f) FROM facts GROUP BY s`, false},
		{`SELECT b, COUNT(*) FROM facts WHERE a = 17 GROUP BY b`, false},
		{`SELECT TOP 7 id, f FROM facts WHERE a = 17 ORDER BY id`, true},
		{`SELECT TOP 5 id FROM facts ORDER BY f DESC, id`, true},
		{`SELECT f.id, d.label FROM facts f JOIN dims d ON f.b = d.grp WHERE d.grp = 4`, false},
		{`SELECT f.id FROM facts f JOIN dims d ON f.b = d.id WHERE d.label = 'l7'`, false},
		{`SELECT MIN(f), MAX(f), AVG(f) FROM facts WHERE a < 20`, false},
		{`SELECT id FROM facts WHERE a = 17 AND b <> 3`, false},
		{`SELECT id FROM facts WHERE id = 1234`, false},
		{`SELECT id FROM facts WHERE id > 2990`, false},
	}
	for _, q := range queries {
		want, err := base.Exec(q.sql)
		if err != nil {
			t.Fatalf("base %q: %v", q.sql, err)
		}
		got, err := indexed.Exec(q.sql)
		if err != nil {
			t.Fatalf("indexed %q: %v", q.sql, err)
		}
		w := canonicalize(want.Rows, q.ordered)
		g := canonicalize(got.Rows, q.ordered)
		if strings.Join(w, "\n") != strings.Join(g, "\n") {
			t.Errorf("results diverge for %q:\nbase   (%d rows)\nindexed(%d rows)\nplan:\n%s",
				q.sql, len(w), len(g), got.Plan.Explain())
		}
	}
}

// TestDifferentialRandomTemplates fuzzes the same invariant with generated
// predicates across many random parameter draws.
func TestDifferentialRandomTemplates(t *testing.T) {
	clock := sim.NewClock()
	base := New(DefaultConfig("difft", TierStandard, 555), clock)
	mustExec(t, base, `CREATE TABLE rnd (id BIGINT NOT NULL, x BIGINT, y BIGINT, z VARCHAR, PRIMARY KEY (id))`)
	rng := sim.NewRNG(9)
	for i := 0; i < 2000; i++ {
		mustExec(t, base, sprintf(
			`INSERT INTO rnd (id, x, y, z) VALUES (%d, %d, %d, 'z%d')`,
			i, rng.Intn(100), rng.Intn(100), rng.Intn(20)))
	}
	base.RebuildAllStats()
	indexed := base.Clone("difft-ix")
	mustCreate := func(def schema.IndexDef) {
		if err := indexed.CreateIndex(def, IndexBuildOptions{Online: true}); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(schema.IndexDef{Name: "ix_x", Table: "rnd", KeyColumns: []string{"x"}})
	mustCreate(schema.IndexDef{Name: "ix_xy", Table: "rnd", KeyColumns: []string{"x", "y"}})
	mustCreate(schema.IndexDef{Name: "ix_z", Table: "rnd", KeyColumns: []string{"z"}, IncludedColumns: []string{"x"}})

	ops := []string{"=", "<", "<=", ">", ">=", "<>"}
	cols := []string{"x", "y", "z", "id"}
	for trial := 0; trial < 300; trial++ {
		var preds []string
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			col := cols[rng.Intn(len(cols))]
			op := ops[rng.Intn(len(ops))]
			var lit string
			if col == "z" {
				lit = sprintf("'z%d'", rng.Intn(25))
			} else {
				lit = sprintf("%d", rng.Intn(110))
			}
			preds = append(preds, col+" "+op+" "+lit)
		}
		sql := "SELECT id, x, y FROM rnd WHERE " + strings.Join(preds, " AND ")
		want, err := base.Exec(sql)
		if err != nil {
			t.Fatalf("base %q: %v", sql, err)
		}
		got, err := indexed.Exec(sql)
		if err != nil {
			t.Fatalf("indexed %q: %v", sql, err)
		}
		w := canonicalize(want.Rows, false)
		g := canonicalize(got.Rows, false)
		if strings.Join(w, "\n") != strings.Join(g, "\n") {
			t.Fatalf("trial %d diverged for %q: %d vs %d rows\nplan:\n%s",
				trial, sql, len(w), len(g), got.Plan.Explain())
		}
	}
}

// TestDifferentialFaultsNeverChangeResults extends the differential
// invariant to chaos mode: injected DDL faults (log-full, lock timeouts,
// aborted online builds) may cost time and failed attempts, but whatever
// subset of indexes survives the faulty build schedule, query results
// must be identical to the index-free baseline. Faults degrade
// performance, never correctness.
func TestDifferentialFaultsNeverChangeResults(t *testing.T) {
	clock := sim.NewClock()
	base := New(DefaultConfig("diffc", TierStandard, 808), clock)
	mustExec(t, base, `CREATE TABLE facts (id BIGINT NOT NULL, a BIGINT, b BIGINT, f FLOAT, PRIMARY KEY (id))`)
	rng := sim.NewRNG(41)
	for i := 0; i < 1500; i++ {
		mustExec(t, base, sprintf(
			`INSERT INTO facts (id, a, b, f) VALUES (%d, %d, %d, %d.25)`,
			i, rng.Intn(150), rng.Intn(40), rng.Intn(900)))
	}
	base.RebuildAllStats()

	chaotic := base.Clone("diffc-chaos")
	injector := faults.New(99, "engine/diffc-chaos", map[faults.Point]float64{
		faults.IndexBuildLogFull:     0.4,
		faults.IndexBuildLockTimeout: 0.4,
		faults.IndexBuildAbort:       0.4,
		faults.DropLockTimeout:       0.4,
	})
	chaotic.SetFaultInjector(injector)

	// Build indexes under fault injection, retrying transient failures a
	// few times; an index that never builds is acceptable — the invariant
	// holds for whatever subset landed.
	defs := []schema.IndexDef{
		{Name: "ix_a", Table: "facts", KeyColumns: []string{"a"}},
		{Name: "ix_ab", Table: "facts", KeyColumns: []string{"a", "b"}, IncludedColumns: []string{"f"}},
		{Name: "ix_b", Table: "facts", KeyColumns: []string{"b"}},
	}
	built := 0
	for _, def := range defs {
		for attempt := 0; attempt < 6; attempt++ {
			if err := chaotic.CreateIndex(def, IndexBuildOptions{Online: true, Resumable: true}); err == nil {
				built++
				break
			}
		}
	}
	// Drop one surviving index under injection too (retried the same way).
	for attempt := 0; attempt < 6; attempt++ {
		if err := chaotic.DropIndex("ix_b", DropIndexOptions{LowPriority: true}); err == nil {
			break
		}
	}
	if injector.TotalFired() == 0 {
		t.Fatal("fault injector never fired; test is vacuous")
	}

	queries := []string{
		`SELECT id FROM facts WHERE a = 17`,
		`SELECT id, f FROM facts WHERE a = 17 AND b = 3`,
		`SELECT id FROM facts WHERE a = 17 AND b > 10`,
		`SELECT id FROM facts WHERE b BETWEEN 5 AND 9`,
		`SELECT COUNT(*) FROM facts WHERE a = 17`,
		`SELECT b, COUNT(*) FROM facts WHERE a < 30 GROUP BY b`,
		`SELECT MIN(f), MAX(f) FROM facts WHERE a >= 140`,
		`SELECT id FROM facts WHERE id > 1490`,
	}
	for _, sql := range queries {
		want, err := base.Exec(sql)
		if err != nil {
			t.Fatalf("base %q: %v", sql, err)
		}
		got, err := chaotic.Exec(sql)
		if err != nil {
			t.Fatalf("chaotic %q: %v", sql, err)
		}
		w := canonicalize(want.Rows, false)
		g := canonicalize(got.Rows, false)
		if strings.Join(w, "\n") != strings.Join(g, "\n") {
			t.Errorf("results diverge under faults for %q: base %d rows, chaotic %d rows (built %d indexes)\nplan:\n%s",
				sql, len(w), len(g), built, got.Plan.Explain())
		}
	}
}

// TestThreeTableJoinChain exercises multi-join planning and execution.
func TestThreeTableJoinChain(t *testing.T) {
	clock := sim.NewClock()
	db := New(DefaultConfig("chain", TierStandard, 31), clock)
	mustExec(t, db, `CREATE TABLE a (id BIGINT NOT NULL, v BIGINT, PRIMARY KEY (id))`)
	mustExec(t, db, `CREATE TABLE b (id BIGINT NOT NULL, a_id BIGINT, w BIGINT, PRIMARY KEY (id))`)
	mustExec(t, db, `CREATE TABLE c (id BIGINT NOT NULL, b_id BIGINT, x VARCHAR, PRIMARY KEY (id))`)
	for i := 0; i < 40; i++ {
		mustExec(t, db, sprintf(`INSERT INTO a (id, v) VALUES (%d, %d)`, i, i%4))
	}
	for i := 0; i < 200; i++ {
		mustExec(t, db, sprintf(`INSERT INTO b (id, a_id, w) VALUES (%d, %d, %d)`, i, i%40, i%10))
	}
	for i := 0; i < 600; i++ {
		mustExec(t, db, sprintf(`INSERT INTO c (id, b_id, x) VALUES (%d, %d, 'x%d')`, i, i%200, i%7))
	}
	db.RebuildAllStats()
	res := mustExec(t, db, `SELECT c.id FROM c JOIN b ON c.b_id = b.id JOIN a ON b.a_id = a.id WHERE a.v = 2`)
	// a.v = 2 matches 10 of 40 a-rows -> 50 b-rows -> 150 c-rows.
	if len(res.Rows) != 150 {
		t.Fatalf("3-table join returned %d rows, want 150\n%s", len(res.Rows), res.Plan.Explain())
	}
	// With join-column indexes the count must not change.
	mustExec(t, db, `CREATE INDEX ix_b_aid ON b (a_id)`)
	mustExec(t, db, `CREATE INDEX ix_c_bid ON c (b_id)`)
	res2 := mustExec(t, db, `SELECT c.id FROM c JOIN b ON c.b_id = b.id JOIN a ON b.a_id = a.id WHERE a.v = 2`)
	if len(res2.Rows) != 150 {
		t.Fatalf("indexed 3-table join returned %d rows\n%s", len(res2.Rows), res2.Plan.Explain())
	}
}

func TestExplain(t *testing.T) {
	d, _ := testDB(t)
	out, err := d.Explain(`SELECT id FROM orders WHERE customer_id = 7`)
	if err != nil || out == "" {
		t.Fatalf("explain: %v %q", err, out)
	}
	if !strings.Contains(out, "rows=") || !strings.Contains(out, "cost=") {
		t.Fatalf("explain lacks estimates:\n%s", out)
	}
	if _, err := d.Explain(`SELEC bogus`); err == nil {
		t.Fatal("explain must reject bad SQL")
	}
}
