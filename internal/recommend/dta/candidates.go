package dta

import (
	"errors"
	"math"
	"sort"
	"strings"

	"autoindex/internal/core"
	"autoindex/internal/dmv"
	"autoindex/internal/engine"
	"autoindex/internal/optimizer"
	"autoindex/internal/schema"
	"autoindex/internal/sqlparser"
)

// tableAnalysis collects the index-relevant columns one statement touches
// on one table (DTA's candidate selection inputs [22]: sargable
// predicates, joins, group-by and order-by columns).
type tableAnalysis struct {
	table     string
	eqCols    []string
	rangeCols []string
	joinCols  []string
	groupBy   []string
	orderBy   []string
	projected []string
}

func (a *tableAnalysis) add(list *[]string, col string) {
	for _, c := range *list {
		if strings.EqualFold(c, col) {
			return
		}
	}
	*list = append(*list, col)
}

// analyzeStatement maps a statement's column usage per table.
func analyzeStatement(db *engine.Database, stmt sqlparser.Statement) map[string]*tableAnalysis {
	out := make(map[string]*tableAnalysis)
	get := func(table string) *tableAnalysis {
		k := strings.ToLower(table)
		a := out[k]
		if a == nil {
			a = &tableAnalysis{table: table}
			out[k] = a
		}
		return a
	}
	resolveTable := func(aliases map[string]string, ref sqlparser.ColRef, tables []string) string {
		if ref.Table != "" {
			if t, ok := aliases[strings.ToLower(ref.Table)]; ok {
				return t
			}
			return ref.Table
		}
		for _, t := range tables {
			if ti, ok := db.Table(t); ok && ti.Def.ColumnIndex(ref.Column) >= 0 {
				return t
			}
		}
		return ""
	}
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		aliases := map[string]string{strings.ToLower(s.From.Name()): s.From.Table}
		tables := []string{s.From.Table}
		for _, j := range s.Joins {
			aliases[strings.ToLower(j.Table.Name())] = j.Table.Table
			tables = append(tables, j.Table.Table)
		}
		for _, p := range s.Where {
			t := resolveTable(aliases, p.Col, tables)
			if t == "" {
				continue
			}
			a := get(t)
			if p.Op.IsEquality() {
				a.add(&a.eqCols, p.Col.Column)
			} else if p.Op.IsRange() {
				a.add(&a.rangeCols, p.Col.Column)
			}
		}
		for _, j := range s.Joins {
			if t := resolveTable(aliases, j.Left, tables); t != "" {
				a := get(t)
				a.add(&a.joinCols, j.Left.Column)
			}
			if t := resolveTable(aliases, j.Right, tables); t != "" {
				a := get(t)
				a.add(&a.joinCols, j.Right.Column)
			}
		}
		for _, g := range s.GroupBy {
			if t := resolveTable(aliases, g, tables); t != "" {
				a := get(t)
				a.add(&a.groupBy, g.Column)
			}
		}
		for _, o := range s.OrderBy {
			if t := resolveTable(aliases, o.Col, tables); t != "" {
				a := get(t)
				a.add(&a.orderBy, o.Col.Column)
			}
		}
		for _, it := range s.Items {
			if it.Star {
				continue
			}
			if it.Agg == sqlparser.AggCount {
				continue
			}
			if t := resolveTable(aliases, it.Col, tables); t != "" {
				a := get(t)
				a.add(&a.projected, it.Col.Column)
			}
		}
	case *sqlparser.UpdateStmt:
		a := get(s.Table)
		for _, p := range s.Where {
			if p.Op.IsEquality() {
				a.add(&a.eqCols, p.Col.Column)
			} else if p.Op.IsRange() {
				a.add(&a.rangeCols, p.Col.Column)
			}
		}
	case *sqlparser.DeleteStmt:
		a := get(s.Table)
		for _, p := range s.Where {
			if p.Op.IsEquality() {
				a.add(&a.eqCols, p.Col.Column)
			} else if p.Op.IsRange() {
				a.add(&a.rangeCols, p.Col.Column)
			}
		}
	}
	return out
}

// candidatesForStatement generates and screens index candidates for one
// statement using the what-if API: a candidate survives only if it
// reduces this statement's estimated cost.
func candidatesForStatement(db *engine.Database, stmt sqlparser.Statement, opts Options, session *engine.WhatIfSession) []core.Candidate {
	analyses := analyzeStatement(db, stmt)
	// Visit tables in sorted order: candidate order decides which shapes
	// are costed before the session's what-if budget runs out, so map
	// iteration here would make recommendations vary run to run.
	tables := make([]string, 0, len(analyses))
	for k := range analyses {
		tables = append(tables, k)
	}
	sort.Strings(tables)
	var defs []schema.IndexDef
	for _, k := range tables {
		a := analyses[k]
		t, ok := db.Table(a.table)
		if !ok {
			continue
		}
		defs = append(defs, candidateShapes(t, a, opts)...)
	}
	if len(defs) == 0 {
		return nil
	}

	// Sampled statistics for candidate columns (charged to the session).
	// With ReduceSampledStats only key columns get statistics; otherwise
	// every referenced column does (2–3x more, §5.3.1).
	for _, def := range defs {
		cols := def.KeyColumns
		if !opts.ReduceSampledStats {
			cols = def.AllColumns()
		}
		for _, c := range cols {
			session.CreateSampledStats(def.Table, c)
		}
	}

	base, _, err := session.Cost(stmt)
	if err != nil {
		return nil
	}
	var out []core.Candidate
	for _, def := range defs {
		session.Catalog().AddHypothetical(def)
		cost, plan, err := session.Cost(stmt)
		session.Catalog().RemoveHypothetical(def.Name)
		if err != nil {
			if errors.Is(err, engine.ErrWhatIfBudget) {
				break
			}
			continue
		}
		improvement := base - cost
		if improvement <= base*0.01 || improvement <= 0 {
			continue
		}
		used := false
		for _, ix := range plan.IndexesUsed {
			if strings.EqualFold(ix, def.Name) {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		t, _ := db.Table(def.Table)
		size := def.EstimatedSizeBytes(t.Def, t.RowCount)
		out = append(out, core.Candidate{
			Def:               def,
			EstImprovement:    improvement,
			EstImprovementPct: improvement / math.Max(base, 1e-9) * 100,
			EstSizeBytes:      size,
			Source:            core.SourceDTA,
			Features: []float64{
				improvement / math.Max(base, 1e-9),
				math.Log1p(float64(t.RowCount)),
				math.Log1p(float64(size)),
				float64(len(def.KeyColumns)),
			},
		})
	}
	return out
}

// candidateShapes proposes index definitions for one table's usage in one
// statement: the sargable-predicate candidate (covering and key-only
// variants), a join-column candidate, a group-by candidate and a
// sort-avoidance (order-by) candidate.
func candidateShapes(t optimizer.TableInfo, a *tableAnalysis, _ Options) []schema.IndexDef {
	var defs []schema.IndexDef
	tableName := t.Def.Name
	addDef := func(keys, include []string) {
		if len(keys) == 0 {
			return
		}
		// Keys must be real, non-duplicate columns.
		seen := make(map[string]bool)
		var ks []string
		for _, k := range keys {
			lk := strings.ToLower(k)
			if seen[lk] || t.Def.ColumnIndex(k) < 0 {
				continue
			}
			seen[lk] = true
			ks = append(ks, k)
		}
		if len(ks) == 0 {
			return
		}
		var inc []string
		for _, c := range include {
			lc := strings.ToLower(c)
			if seen[lc] || t.Def.ColumnIndex(c) < 0 {
				continue
			}
			seen[lc] = true
			inc = append(inc, c)
		}
		sort.Strings(inc)
		def := schema.IndexDef{
			Name:            dtaIndexName(tableName, ks, inc),
			Table:           tableName,
			KeyColumns:      ks,
			IncludedColumns: inc,
			AutoCreated:     true,
		}
		for _, d := range defs {
			if d.Signature() == def.Signature() {
				return
			}
		}
		defs = append(defs, def)
	}

	// Sargable predicates: equality keys + one range key.
	sargKeys := append([]string(nil), a.eqCols...)
	if len(a.rangeCols) > 0 {
		sargKeys = append(sargKeys, a.rangeCols[0])
	}
	if len(sargKeys) > 0 {
		addDef(sargKeys, nil)                                                          // key-only
		addDef(sargKeys, mergeCols(a.projected, a.rangeCols[min1(len(a.rangeCols)):])) // covering
	}
	// Join columns as leading keys.
	for _, jc := range a.joinCols {
		addDef([]string{jc}, a.projected)
		if len(a.eqCols) > 0 {
			addDef(append([]string{jc}, a.eqCols...), a.projected)
		}
	}
	// Group-by keys (covering scan enables streaming/narrow aggregation).
	if len(a.groupBy) > 0 {
		addDef(a.groupBy, a.projected)
	}
	// Sort avoidance: equality prefix + order-by columns.
	if len(a.orderBy) > 0 {
		addDef(append(append([]string(nil), a.eqCols...), a.orderBy...), a.projected)
	}
	return defs
}

func min1(n int) int {
	if n > 1 {
		return 1
	}
	return n
}

func mergeCols(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, c := range b {
		dup := false
		for _, e := range out {
			if strings.EqualFold(e, c) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// dtaIndexName derives a deterministic name from the index shape.
func dtaIndexName(table string, keys, include []string) string {
	name := "auto_dta_" + strings.ToLower(table) + "_" + strings.ToLower(strings.Join(keys, "_"))
	if len(include) > 0 {
		name += "_i" + itoa(len(include))
	}
	if len(name) > 96 {
		name = name[:96]
	}
	return name
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// miEntryToCandidate converts an MI DMV entry into a DTA search candidate
// (the augmentation of §5.3.2, costed with the optimizer's own estimates
// when the what-if API cannot cost the triggering statements).
func miEntryToCandidate(db *engine.Database, e *dmv.Entry) (core.Candidate, bool) {
	t, ok := db.Table(e.Candidate.Table)
	if !ok {
		return core.Candidate{}, false
	}
	keys := append([]string(nil), e.Candidate.Equality...)
	include := append([]string(nil), e.Candidate.Include...)
	if len(e.Candidate.Inequality) > 0 {
		keys = append(keys, e.Candidate.Inequality[0])
		include = append(include, e.Candidate.Inequality[1:]...)
	}
	if len(keys) == 0 {
		return core.Candidate{}, false
	}
	def := schema.IndexDef{
		Name:            dtaIndexName(e.Candidate.Table, keys, include),
		Table:           t.Def.Name,
		KeyColumns:      keys,
		IncludedColumns: include,
		AutoCreated:     true,
	}
	size := def.EstimatedSizeBytes(t.Def, t.RowCount)
	var impacted []uint64
	for q := range e.QueryHashes {
		impacted = append(impacted, q)
	}
	sort.Slice(impacted, func(i, j int) bool { return impacted[i] < impacted[j] })
	return core.Candidate{
		Def:               def,
		EstImprovement:    e.Score(),
		EstImprovementPct: e.AvgImprovementPct,
		EstSizeBytes:      size,
		ImpactedQueries:   impacted,
		Source:            core.SourceDTA,
		Features: []float64{
			e.AvgImprovementPct / 100,
			math.Log1p(float64(t.RowCount)),
			math.Log1p(float64(size)),
			float64(len(def.KeyColumns)),
		},
	}, true
}
