// Command dtacli runs a single DTA tuning session against a generated
// tenant database — the on-demand, DBA-style invocation the paper's
// service automates — and prints the recommendation, the per-statement
// report, and the workload coverage.
//
// Usage:
//
//	dtacli -tier premium -seed 7 -hours 24 -stmts 1200 -max-indexes 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/recommend/dta"
	"autoindex/internal/sim"
	"autoindex/internal/workload"
)

func parseTier(s string) (engine.Tier, error) {
	switch strings.ToLower(s) {
	case "basic":
		return engine.TierBasic, nil
	case "standard":
		return engine.TierStandard, nil
	case "premium":
		return engine.TierPremium, nil
	default:
		return 0, fmt.Errorf("unknown tier %q (basic|standard|premium)", s)
	}
}

func main() {
	var (
		tierStr    = flag.String("tier", "standard", "service tier: basic|standard|premium")
		seed       = flag.Int64("seed", 7, "tenant seed")
		hours      = flag.Int("hours", 24, "virtual hours of workload before tuning")
		stmts      = flag.Int("stmts", 1200, "statements to execute before tuning")
		maxIndexes = flag.Int("max-indexes", 0, "override max indexes (0 = tier default)")
		budgetMB   = flag.Int64("storage-budget-mb", 0, "override storage budget (0 = tier default)")
	)
	flag.Parse()

	tier, err := parseTier(*tierStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtacli:", err)
		os.Exit(2)
	}
	clock := sim.NewClock()
	tn, err := workload.NewTenant(workload.Profile{
		Name: "dtacli", Tier: tier, Seed: *seed, UserIndexes: true,
	}, clock)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtacli:", err)
		os.Exit(1)
	}
	fmt.Printf("generated tenant (%s tier): tables=%v, %d templates\n",
		tier, tn.DB.TableNames(), len(tn.Templates))
	fmt.Printf("replaying %d statements over %d virtual hours...\n", *stmts, *hours)
	tn.Run(time.Duration(*hours)*time.Hour, *stmts)

	opts := dta.OptionsForTier(tier)
	if *maxIndexes > 0 {
		opts.MaxIndexes = *maxIndexes
	}
	if *budgetMB > 0 {
		opts.StorageBudgetBytes = *budgetMB << 20
	}
	fmt.Printf("\nDTA session: window=%s topK=%d maxIndexes=%d budget=%dMB whatIfBudget=%d\n",
		opts.WindowN, opts.TopK, opts.MaxIndexes, opts.StorageBudgetBytes>>20, opts.MaxWhatIfCalls)

	res, err := dta.Run(tn.DB, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtacli: session error:", err)
		if res == nil {
			os.Exit(1)
		}
	}

	fmt.Printf("\nrecommendation (%d indexes, est. workload improvement %.1f%%):\n",
		len(res.Recommendations), res.EstWorkloadImprovementPct)
	for _, c := range res.Recommendations {
		fmt.Printf("  %s\n    est. improvement %.1f units (%.1f%%), size %.1f MB, impacts %d statements\n",
			c.Def.String(), c.EstImprovement, c.EstImprovementPct,
			float64(c.EstSizeBytes)/(1<<20), len(c.ImpactedQueries))
	}

	fmt.Printf("\nper-statement report (workload coverage %s, %d what-if calls, %d sampled stats):\n",
		res.Coverage, res.WhatIfCalls, res.StatsCreated)
	for _, r := range res.Reports {
		switch {
		case r.Skipped != "":
			fmt.Printf("  SKIP  %-70.70s  (%s)\n", r.Text, r.Skipped)
		case len(r.Indexes) > 0:
			fmt.Printf("  TUNE  %-70.70s  cost %.2f -> %.2f via %s\n",
				r.Text, r.CostBefore, r.CostAfter, strings.Join(r.Indexes, ", "))
		default:
			fmt.Printf("  OK    %-70.70s  cost %.2f (no index impact)\n", r.Text, r.CostBefore)
		}
	}
	if res.Aborted {
		fmt.Println("\nnote: session hit its resource budget; results are partial")
	}
}
