// Command benchdiff compares two BENCH_fleet.json files (see
// internal/fleet/bench_test.go, which rewrites the file on every
// `make bench`) and fails when the new run regressed past a wall-clock
// threshold. It is the teeth of the CI bench gate:
//
//	benchdiff -threshold 1.25 BENCH_fleet.json.baseline BENCH_fleet.json
//
// The gate verdict compares the fastest worker count in each file:
// min(new sec_per_op) / min(old sec_per_op) must stay at or under
// -threshold (default 1.25, a 25% regression budget). Minimum-of-runs
// is the standard noise reducer for one-shot benchmarks — each file
// samples the same workload at several worker counts, and pairwise
// per-worker ratios would multiply the chance of a spurious failure
// on a noisy CI machine. Per-worker rows are still printed for
// inspection. The exit status is 1 on a regression past the
// threshold, 2 on usage or parse errors, 0 otherwise. Improvements
// are reported but never fail the gate; ratcheting the committed
// baseline down is a deliberate, human act (see EXPERIMENTS.md
// "Benchmark ratchet").
//
// benchdiff also diffs adversarial-scenario verdict files (the JSON
// `fleetsim -experiment scenarios -verdicts-out` writes); the file kind
// is sniffed, so the CLI is the same:
//
//	benchdiff verdicts.json.baseline verdicts.json
//
// Verdict runs are matched by (scenario, seed, chaos). A pass→fail
// flip always fails the gate; a revert-rate regression gates like a
// bench regression — the new rate must stay within -threshold of the
// old one, with a small absolute slack so near-zero baselines cannot
// flake the ratio.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"autoindex/internal/scenario"
)

type benchFile struct {
	Benchmark string `json:"benchmark"`
	Timings   []struct {
		Workers  int     `json:"workers"`
		SecPerOp float64 `json:"sec_per_op"`
	} `json:"timings"`
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Timings) == 0 {
		return nil, fmt.Errorf("%s: no timings", path)
	}
	for _, t := range b.Timings {
		if t.SecPerOp <= 0 {
			return nil, fmt.Errorf("%s: non-positive sec_per_op for workers=%d", path, t.Workers)
		}
	}
	return &b, nil
}

func minSec(b *benchFile) float64 {
	best := b.Timings[0].SecPerOp
	for _, t := range b.Timings[1:] {
		if t.SecPerOp < best {
			best = t.SecPerOp
		}
	}
	return best
}

// File kinds benchdiff knows how to diff.
const (
	kindBench    = "bench"
	kindVerdicts = "verdicts"
)

// sniff classifies a JSON input: bench files are objects, verdict files
// (scenario.MarshalVerdicts output) are arrays.
func sniff(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return "", fmt.Errorf("%s: empty file", path)
	}
	if trimmed[0] == '[' {
		return kindVerdicts, nil
	}
	return kindBench, nil
}

// verdictRevertSlack is the absolute revert-rate increase a verdict
// regression must exceed before the ratio gate applies: a 0.00→0.01
// move is noise, not a 10x regression.
const verdictRevertSlack = 0.02

func evidenceValue(v scenario.Verdict, name string) (float64, bool) {
	for _, e := range v.Evidence {
		if e.Name == name {
			return e.Value, true
		}
	}
	return 0, false
}

// diffVerdicts gates a fresh verdict file against a baseline: a
// pass→fail flip, or a revert-rate blow-up past threshold, fails.
func diffVerdicts(oldPath, newPath string, threshold float64, stdout, stderr *os.File) int {
	loadV := func(path string) ([]scenario.Verdict, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		vs, err := scenario.UnmarshalVerdicts(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(vs) == 0 {
			return nil, fmt.Errorf("%s: no verdicts", path)
		}
		return vs, nil
	}
	oldV, err := loadV(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newV, err := loadV(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	key := func(v scenario.Verdict) string {
		return fmt.Sprintf("%s/seed=%d/chaos=%v", v.Scenario, v.Seed, v.Chaos)
	}
	baseline := make(map[string]scenario.Verdict, len(oldV))
	for _, v := range oldV {
		baseline[key(v)] = v
	}

	status := func(pass bool) string {
		if pass {
			return "PASS"
		}
		return "FAIL"
	}
	failures := 0
	for _, nv := range newV {
		ov, ok := baseline[key(nv)]
		if !ok {
			fmt.Fprintf(stdout, "%-40s %s  (new run, no baseline)\n", key(nv), status(nv.Pass))
			if !nv.Pass {
				failures++
			}
			continue
		}
		line := fmt.Sprintf("%-40s %s -> %s", key(nv), status(ov.Pass), status(nv.Pass))
		switch {
		case ov.Pass && !nv.Pass:
			fmt.Fprintf(stdout, "%s  REGRESSION: verdict flipped\n", line)
			failures++
			continue
		case !nv.Pass:
			// Failing against a failing baseline is no worse; the
			// baseline should be fixed, not ratcheted around.
			fmt.Fprintf(stdout, "%s  (already failing in baseline)\n", line)
			continue
		}
		oldRate, okOld := evidenceValue(ov, "revert-rate")
		newRate, okNew := evidenceValue(nv, "revert-rate")
		if !okOld || !okNew {
			fmt.Fprintf(stdout, "%s\n", line)
			continue
		}
		if newRate > oldRate*threshold && newRate >= oldRate+verdictRevertSlack {
			fmt.Fprintf(stdout, "%s  REGRESSION: revert rate %.4f -> %.4f (limit %.2fx + %.2f slack)\n",
				line, oldRate, newRate, threshold, verdictRevertSlack)
			failures++
			continue
		}
		fmt.Fprintf(stdout, "%s  revert rate %.4f -> %.4f\n", line, oldRate, newRate)
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "FAIL: %d verdict regression(s) against %s\n", failures, oldPath)
		return 1
	}
	fmt.Fprintf(stdout, "ok: %d verdict run(s) within gate\n", len(newV))
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 1.25, "max allowed new/old ratio of the fastest worker count's sec_per_op")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold R] old.json new.json")
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintln(stderr, "benchdiff: -threshold must be positive")
		return 2
	}
	oldKind, err := sniff(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newKind, err := sniff(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if oldKind != newKind {
		fmt.Fprintf(stderr, "benchdiff: cannot diff a %s file against a %s file\n", oldKind, newKind)
		return 2
	}
	if oldKind == kindVerdicts {
		return diffVerdicts(fs.Arg(0), fs.Arg(1), *threshold, stdout, stderr)
	}

	oldB, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newB, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	// Per-worker rows are informational: on a noisy host individual
	// counts swing far more than the per-file minimum.
	oldByWorkers := make(map[int]float64)
	for _, t := range oldB.Timings {
		oldByWorkers[t.Workers] = t.SecPerOp
	}
	for _, t := range newB.Timings {
		oldSec, ok := oldByWorkers[t.Workers]
		if !ok {
			fmt.Fprintf(stdout, "workers=%-3d %10.3fs  (new worker count, no baseline)\n", t.Workers, t.SecPerOp)
			continue
		}
		fmt.Fprintf(stdout, "workers=%-3d %10.3fs -> %10.3fs  ratio %.3f\n",
			t.Workers, oldSec, t.SecPerOp, t.SecPerOp/oldSec)
	}

	oldMin, newMin := minSec(oldB), minSec(newB)
	ratio := newMin / oldMin
	fmt.Fprintf(stdout, "gate: fastest %.3fs -> %.3fs  ratio %.3f (limit %.2f)\n",
		oldMin, newMin, ratio, *threshold)
	if ratio > *threshold {
		fmt.Fprintf(stdout, "FAIL: wall-clock regression beyond %.2fx against %s\n", *threshold, fs.Arg(0))
		return 1
	}
	fmt.Fprintf(stdout, "ok: fastest run within %.2fx of baseline\n", *threshold)
	return 0
}
