// Package metrics is the tuner's own instrumentation layer: stdlib-only
// counters, gauges, and fixed-bucket histograms with atomic hot paths.
//
// The design splits *descriptors* from *values*. A Desc (name, help,
// kind, bucket bounds) is created once, at package level, via
// NewCounterDesc / NewGaugeDesc / NewHistogramDesc — each constructor
// registers the descriptor in a process-wide catalog and panics on a
// duplicate name, so collisions surface at init time. Values live in a
// Registry: each simulation run (a Fleet, a control plane under test)
// owns its own Registry, so runs never share state and tests stay
// hermetic. A nil *Registry is valid everywhere and hands out nil
// handles whose methods are no-ops, mirroring the faults.Injector
// pattern — instrumented code never branches on "is metrics enabled".
//
// Determinism contract (the part that matters in this repo): every
// value is an int64. Integer atomic adds are commutative and
// associative, so totals are identical no matter how the fleet's worker
// pool interleaves tenants — which is what lets Snapshot(false) be
// byte-identical across -workers counts. Float sums would not survive
// reordering; durations are therefore observed as virtual-clock
// milliseconds and ratios as rounded percents. Metrics whose values
// legitimately depend on scheduling (per-worker shard throughput, wall
// phase timings) are marked volatile via MarkVolatile and excluded from
// the deterministic snapshot; they still appear in the full /metrics
// exposition.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the three value shapes a Desc can describe.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Desc describes one metric: its identity and shape, but no value.
// Create descriptors only in package-level var blocks or init functions
// (the metricsdiscipline lint check enforces this) so the catalog is
// complete before any goroutine observes anything.
type Desc struct {
	name     string
	help     string
	kind     Kind
	bounds   []int64 // histogram upper bounds, strictly ascending
	volatile bool
}

func (d *Desc) Name() string { return d.name }
func (d *Desc) Help() string { return d.help }
func (d *Desc) Kind() Kind   { return d.kind }

// Volatile reports whether the metric's value may depend on scheduling
// (worker count, wall clock) rather than on the seeded simulation alone.
func (d *Desc) Volatile() bool { return d.volatile }

// MarkVolatile flags the metric as scheduling-dependent, excluding it
// from deterministic snapshots. Returns d for use in var initializers.
func (d *Desc) MarkVolatile() *Desc {
	d.volatile = true
	return d
}

// catalog is the process-wide descriptor registry. Writes happen during
// package init (single-goroutine) or, pathologically, at runtime — the
// mutex keeps the latter safe and the lint rule keeps it rare.
var catalog struct {
	mu     sync.Mutex
	byName map[string]*Desc
	all    []*Desc
}

func register(d *Desc) *Desc {
	catalog.mu.Lock()
	defer catalog.mu.Unlock()
	if catalog.byName == nil {
		catalog.byName = make(map[string]*Desc)
	}
	if prev, ok := catalog.byName[d.name]; ok {
		panic(fmt.Sprintf("metrics: duplicate descriptor %q (kinds %s and %s)", d.name, prev.kind, d.kind))
	}
	catalog.byName[d.name] = d
	catalog.all = append(catalog.all, d)
	return d
}

// NewCounterDesc registers a monotonically increasing counter.
func NewCounterDesc(name, help string) *Desc {
	return register(&Desc{name: name, help: help, kind: KindCounter})
}

// NewGaugeDesc registers a gauge (a value that can go up and down).
func NewGaugeDesc(name, help string) *Desc {
	return register(&Desc{name: name, help: help, kind: KindGauge})
}

// NewHistogramDesc registers a fixed-bucket histogram. bounds are the
// inclusive upper edges of the buckets, strictly ascending; one
// overflow bucket (+Inf) is always appended.
func NewHistogramDesc(name, help string, bounds ...int64) *Desc {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not strictly ascending at %d", name, i))
		}
	}
	return register(&Desc{name: name, help: help, kind: KindHistogram, bounds: append([]int64(nil), bounds...)})
}

// Descs returns the full catalog sorted by name. The slice is a copy;
// the *Desc pointers are shared.
func Descs() []*Desc {
	catalog.mu.Lock()
	defer catalog.mu.Unlock()
	out := append([]*Desc(nil), catalog.all...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Registry holds the values for one simulation run. The zero Registry
// is not usable; a nil *Registry is — every accessor returns a nil
// handle whose methods are no-ops.
type Registry struct {
	mu         sync.RWMutex
	counters   map[*Desc]*Counter
	gauges     map[*Desc]*Gauge
	histograms map[*Desc]*Histogram
}

// NewRegistry returns an empty registry; values materialize lazily on
// first access.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[*Desc]*Counter),
		gauges:     make(map[*Desc]*Gauge),
		histograms: make(map[*Desc]*Histogram),
	}
}

func kindCheck(d *Desc, want Kind) {
	if d.kind != want {
		panic(fmt.Sprintf("metrics: %q is a %s, requested as %s", d.name, d.kind, want))
	}
}

// Counter returns the counter for d, creating it on first use. Safe on
// a nil registry (returns a nil, no-op handle).
func (r *Registry) Counter(d *Desc) *Counter {
	if r == nil {
		return nil
	}
	kindCheck(d, KindCounter)
	r.mu.RLock()
	c := r.counters[d]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[d]; c == nil {
		c = &Counter{}
		r.counters[d] = c
	}
	return c
}

// Gauge returns the gauge for d, creating it on first use.
func (r *Registry) Gauge(d *Desc) *Gauge {
	if r == nil {
		return nil
	}
	kindCheck(d, KindGauge)
	r.mu.RLock()
	g := r.gauges[d]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[d]; g == nil {
		g = &Gauge{}
		r.gauges[d] = g
	}
	return g
}

// Histogram returns the histogram for d, creating it on first use.
func (r *Registry) Histogram(d *Desc) *Histogram {
	if r == nil {
		return nil
	}
	kindCheck(d, KindHistogram)
	r.mu.RLock()
	h := r.histograms[d]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[d]; h == nil {
		h = &Histogram{bounds: d.bounds, counts: make([]atomic.Int64, len(d.bounds)+1)}
		r.histograms[d] = h
	}
	return h
}

// Counter is a monotonically increasing int64. All methods are safe on
// a nil receiver.
type Counter struct{ v atomic.Int64 }

func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. All methods are safe on a nil receiver.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts int64 observations into fixed buckets. An
// observation v lands in the first bucket with v <= bound, or in the
// overflow bucket. Negative observations clamp to zero so virtual-clock
// regressions cannot corrupt the distribution.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow (+Inf)
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in whole milliseconds. Callers
// must derive d from the simulation clock, never time.Now — the
// metricsdiscipline lint check flags the latter.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Milliseconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all (clamped) observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}
