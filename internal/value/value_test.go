package value

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewNull(), NewInt(0), -1},
		{NewInt(0), NewNull(), 1},
		{NewNull(), NewNull(), 0},
		// Cross-kind numeric comparison.
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(NewNull(), NewNull()) {
		t.Fatal("NULL = NULL must be false in predicate semantics")
	}
	if Equal(NewNull(), NewInt(1)) || Equal(NewInt(1), NewNull()) {
		t.Fatal("NULL never equals a value")
	}
	if !Equal(NewInt(5), NewInt(5)) {
		t.Fatal("5 = 5")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Value{
		"NULL":    NewNull(),
		"42":      NewInt(42),
		"'it''s'": NewString("it's"),
		"1":       NewBool(true),
		"0":       NewBool(false),
		"2.5":     NewFloat(2.5),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestTimeRoundTrip(t *testing.T) {
	now := time.Date(2017, 3, 15, 10, 30, 0, 0, time.UTC)
	v := NewTime(now)
	if !v.Time().Equal(now) {
		t.Fatalf("time round trip: %v != %v", v.Time(), now)
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(7).AsFloat(); !ok || f != 7 {
		t.Fatal("int AsFloat")
	}
	if f, ok := NewFloat(2.5).AsFloat(); !ok || f != 2.5 {
		t.Fatal("float AsFloat")
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Fatal("string AsFloat should fail")
	}
	if _, ok := NewNull().AsFloat(); ok {
		t.Fatal("null AsFloat should fail")
	}
}

func TestHashEqualValuesHashEqual(t *testing.T) {
	// Int and integral Float must hash identically (mixed-type joins).
	if NewInt(42).Hash() != NewFloat(42).Hash() {
		t.Fatal("Int(42) and Float(42) must hash equal")
	}
	if NewInt(42).Hash() == NewInt(43).Hash() {
		t.Fatal("adjacent ints should not collide (fnv)")
	}
	f := func(a int64) bool {
		return NewInt(a).Hash() == NewInt(a).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"BIGINT": Int, "int": Int, "FLOAT": Float, "decimal": Float,
		"VARCHAR": String, "nvarchar": String, "BIT": Bool, "DATETIME": Time,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Fatal("ParseKind should reject unknown types")
	}
}

// Property: Compare is a total order (antisymmetric, transitive on a
// sample, reflexive).
func TestQuickCompareTotalOrder(t *testing.T) {
	gen := func(x int64, f float64, s string, pick uint8) Value {
		switch pick % 4 {
		case 0:
			return NewInt(x)
		case 1:
			return NewFloat(f)
		case 2:
			return NewString(s)
		default:
			return NewNull()
		}
	}
	f := func(x1, x2 int64, f1, f2 float64, s1, s2 string, p1, p2 uint8) bool {
		a := gen(x1, f1, s1, p1)
		b := gen(x2, f2, s2, p2)
		ab := Compare(a, b)
		ba := Compare(b, a)
		if ab != -ba {
			return false
		}
		return Compare(a, a) == 0 && Compare(b, b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyCompareLexicographic(t *testing.T) {
	a := Key{NewInt(1), NewInt(2)}
	b := Key{NewInt(1), NewInt(3)}
	c := Key{NewInt(1)}
	if CompareKeys(a, b) >= 0 {
		t.Fatal("(1,2) < (1,3)")
	}
	if CompareKeys(c, a) >= 0 {
		t.Fatal("prefix sorts first")
	}
	if CompareKeys(a, a) != 0 {
		t.Fatal("reflexive")
	}
}

func TestKeyEqualAndHash(t *testing.T) {
	a := Key{NewInt(1), NewString("x")}
	b := Key{NewInt(1), NewString("x")}
	if !KeyEqual(a, b) {
		t.Fatal("equal keys")
	}
	if HashKey(a) != HashKey(b) {
		t.Fatal("equal keys must hash equal")
	}
	// Grouping semantics: NULLs group together.
	n1 := Key{NewNull()}
	n2 := Key{NewNull()}
	if !KeyEqual(n1, n2) {
		t.Fatal("NULL keys group together")
	}
}
