package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural half of the framework: a fact store
// keyed by the canonical identity of a types.Object, and a worklist
// driver that runs an analyzer's per-function transfer to a fixed
// point across the whole module. Per-function analyzers (maporder,
// wallclock, errcompare, lockdiscipline, metricsdiscipline) never see
// any of this; the program analyzers (lockorder, detflow, leakcheck)
// are built entirely on it.

// A ProgramPass carries one interprocedural analyzer's view of the
// whole module.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	Facts    *FactStore

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Prog.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A FactStore holds analyzer facts keyed by the canonical cross-unit
// identity of a types.Object (see ObjectKey): the same function or
// variable type-checked in two units (a package's own test-augmented
// form and the canonical form its importers see) maps to one fact.
type FactStore struct {
	facts map[string]any
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{facts: make(map[string]any)} }

// Get returns the fact stored under obj, or nil.
func (s *FactStore) Get(obj types.Object) any { return s.facts[ObjectKey(obj)] }

// Set stores fact under obj.
func (s *FactStore) Set(obj types.Object, fact any) { s.facts[ObjectKey(obj)] = fact }

// GetKey / SetKey address facts by a pre-computed key — used for
// derived keys like "funcKey#param2" that have no single object.
func (s *FactStore) GetKey(key string) any       { return s.facts[key] }
func (s *FactStore) SetKey(key string, fact any) { s.facts[key] = fact }

// ObjectKey renders obj's canonical cross-unit identity. Functions use
// go/types' FullName (package-path qualified, receiver included);
// package-level variables use path.name; everything else (locals,
// fields reached without a selection) falls back to declaration
// position, which is stable within one loader's FileSet.
func ObjectKey(obj types.Object) string {
	switch o := obj.(type) {
	case *types.Func:
		return o.FullName()
	case *types.Var:
		if o.Pkg() != nil && !o.IsField() && o.Parent() == o.Pkg().Scope() {
			return o.Pkg().Path() + "." + o.Name()
		}
	}
	return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
}

// FixedPoint runs transfer over every node until facts stabilize.
// transfer returns the nodes whose facts it changed (itself included,
// if its own summary changed); the driver re-enqueues each changed
// node and its callers. Node order is deterministic, so fact
// convergence — and therefore diagnostic order — is too. The pass
// budget is generous but finite, as a defense against a non-monotone
// transfer looping forever.
func (p *Program) FixedPoint(transfer func(*FuncNode) []*FuncNode) {
	inQueue := make(map[*FuncNode]bool, len(p.Nodes))
	queue := make([]*FuncNode, 0, len(p.Nodes))
	push := func(n *FuncNode) {
		if !inQueue[n] {
			inQueue[n] = true
			queue = append(queue, n)
		}
	}
	for _, n := range p.Nodes {
		push(n)
	}
	budget := len(p.Nodes)*64 + 1024
	for i := 0; i < len(queue) && budget > 0; i++ {
		budget--
		n := queue[i]
		inQueue[n] = false
		for _, changed := range transfer(n) {
			push(changed)
			for _, caller := range p.Callers(changed) {
				push(caller)
			}
		}
	}
}

// --- shared state identity --------------------------------------------

// stateKey identifies a mutex, channel, or WaitGroup across functions
// and instances: struct fields key by owning type + field name (all
// instances of serve.Server share one "Server.mu"), package-level vars
// by package + name, locals by declaration position. Display is the
// human form used in diagnostics.
type stateKey struct {
	Key     string
	Display string
}

// stateKeyOf resolves the identity of the lvalue-ish expression e (the
// receiver of mu.Lock(), the operand of close(ch), the receiver of
// wg.Wait()). ok is false for expressions with no stable identity
// (map elements, call results).
func stateKeyOf(info *types.Info, fset *token.FileSet, e ast.Expr) (stateKey, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if owner, ownerPkg := namedOwner(sel.Recv()); owner != "" {
				return stateKey{
					Key:     ownerPkg + "." + owner + "." + x.Sel.Name,
					Display: shortPkg(ownerPkg) + "." + owner + "." + x.Sel.Name,
				}, true
			}
			// Field of an unnamed struct: fall back to the field object.
			if obj := info.Uses[x.Sel]; obj != nil {
				return posKey(fset, obj), true
			}
			return stateKey{}, false
		}
		// Qualified package-level var: pkg.Mu.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return stateKey{
				Key:     v.Pkg().Path() + "." + v.Name(),
				Display: v.Pkg().Name() + "." + v.Name(),
			}, true
		}
		return stateKey{}, false
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return stateKey{}, false
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && !v.IsField() && v.Parent() == v.Pkg().Scope() {
			return stateKey{
				Key:     v.Pkg().Path() + "." + v.Name(),
				Display: v.Pkg().Name() + "." + v.Name(),
			}, true
		}
		return posKey(fset, obj), true
	case *ast.StarExpr:
		return stateKeyOf(info, fset, x.X)
	case *ast.IndexExpr:
		// Collection element: identify by the collection itself, so
		// "buckets[k].Lock / close(workers[i])" at least merge per
		// collection.
		return stateKeyOf(info, fset, x.X)
	}
	return stateKey{}, false
}

// namedOwner returns the named type (and its package path) a selection
// receiver resolves to, dereferencing one pointer.
func namedOwner(t types.Type) (name, pkgPath string) {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name(), ""
	}
	return obj.Name(), obj.Pkg().Path()
}

func posKey(fset *token.FileSet, obj types.Object) stateKey {
	pos := fset.Position(obj.Pos())
	return stateKey{
		Key:     fmt.Sprintf("%s@%s:%d:%d", obj.Name(), pos.Filename, pos.Line, pos.Column),
		Display: obj.Name(),
	}
}

func shortPkg(path string) string {
	return shortFile(path) // last path segment reads as the package name
}
