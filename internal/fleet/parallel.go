package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// normalizeWorkers resolves a worker-count setting: non-positive means one
// worker per available CPU (runtime.GOMAXPROCS), and the count is capped
// at the number of work items so idle goroutines are never spawned.
func normalizeWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEach runs fn(0..n-1) across a pool of workers and waits for all of
// them. Work is handed out through an atomic cursor, so assignment order
// is scheduling-dependent — callers must make fn(i) independent of fn(j)
// (per-tenant clocks, per-tenant RNG streams, writes only to slot i) so
// the merged result is identical at any worker count. With workers <= 1
// the loop runs inline on the calling goroutine, which keeps single-worker
// runs trivially comparable against parallel ones in determinism tests.
func forEach(workers, n int, fn func(i int)) {
	workers = normalizeWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
