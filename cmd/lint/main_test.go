package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestModuleRel(t *testing.T) {
	root := filepath.FromSlash("/mod")
	cases := []struct{ in, want string }{
		{filepath.FromSlash("/mod/internal/engine/db.go"), "internal/engine/db.go"},
		{filepath.FromSlash("/mod/main.go"), "main.go"},
		{filepath.FromSlash("/elsewhere/x.go"), "/elsewhere/x.go"},
	}
	for _, tc := range cases {
		if got := moduleRel(root, tc.in); got != tc.want {
			t.Errorf("moduleRel(%q, %q) = %q, want %q", root, tc.in, got, tc.want)
		}
	}
}

// TestJSONOutputShape runs the real CLI path with -json over a clean
// package and checks the output is a decodable array (never null), so
// CI consumers can always iterate it.
func TestJSONOutputShape(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "lint-out-*.json")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if code := run([]string{"-json", "-checks", "maporder", "./internal/sim"}, tmp, os.Stderr); code != 0 {
		t.Fatalf("lint exited %d, want 0", code)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) == "null" {
		t.Fatal("-json emitted null instead of an empty array")
	}
	var diags []jsonDiag
	if err := json.Unmarshal(data, &diags); err != nil {
		t.Fatalf("output is not a jsonDiag array: %v\n%s", err, data)
	}
	if len(diags) != 0 {
		t.Errorf("unexpected findings in internal/sim: %v", diags)
	}
}
