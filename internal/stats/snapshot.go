package stats

import (
	"time"

	"autoindex/internal/snap"
)

// EncodeTo serializes the statistics object bit-exactly (float bits,
// value kinds) so a private, tenant-forked histogram survives
// hibernation unchanged. Archetype-shared statistics are encoded as a
// reference by the engine instead and never pass through here.
func (s *ColumnStats) EncodeTo(w *snap.Writer) {
	w.String(s.Column)
	w.Float(s.RowCount)
	w.Float(s.Nulls)
	w.Float(s.Distinct)
	w.Value(s.Min)
	w.Value(s.Max)
	w.Uvarint(uint64(len(s.Buckets)))
	for _, b := range s.Buckets {
		w.Value(b.Upper)
		w.Float(b.Rows)
		w.Float(b.Distinct)
	}
	w.Float(s.SampleRate)
	w.Varint(s.BuiltAt.UnixNano())
}

// DecodeStats reads a statistics object written by EncodeTo.
func DecodeStats(r *snap.Reader) (*ColumnStats, error) {
	s := &ColumnStats{}
	var err error
	if s.Column, err = r.String(); err != nil {
		return nil, err
	}
	if s.RowCount, err = r.Float(); err != nil {
		return nil, err
	}
	if s.Nulls, err = r.Float(); err != nil {
		return nil, err
	}
	if s.Distinct, err = r.Float(); err != nil {
		return nil, err
	}
	if s.Min, err = r.Value(); err != nil {
		return nil, err
	}
	if s.Max, err = r.Value(); err != nil {
		return nil, err
	}
	nb, err := r.Len()
	if err != nil {
		return nil, err
	}
	s.Buckets = make([]Bucket, nb)
	for i := range s.Buckets {
		if s.Buckets[i].Upper, err = r.Value(); err != nil {
			return nil, err
		}
		if s.Buckets[i].Rows, err = r.Float(); err != nil {
			return nil, err
		}
		if s.Buckets[i].Distinct, err = r.Float(); err != nil {
			return nil, err
		}
	}
	if s.SampleRate, err = r.Float(); err != nil {
		return nil, err
	}
	ns, err := r.Varint()
	if err != nil {
		return nil, err
	}
	s.BuiltAt = time.Unix(0, ns).UTC()
	return s, nil
}
