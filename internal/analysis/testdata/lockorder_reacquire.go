// Lockorder re-acquire fixture: a locked-caller convention gone wrong.
// Flush locks the buffer, then calls a helper that locks it again —
// sync.Mutex is not reentrant, so the helper blocks on the lock its
// own caller holds. Intra-function lockdiscipline cannot see this (each
// function pairs its Lock/Unlock correctly); only the call graph does.
// Minimized from a replay-buffer drain path.
package fixture

import "sync"

type replayBuf struct {
	rmu     sync.Mutex
	pending []string
}

func (b *replayBuf) Flush() {
	b.rmu.Lock()
	defer b.rmu.Unlock()
	for len(b.pending) > 0 {
		b.replayLocked() // want "lockorder: call to fixture.\(\*replayBuf\).replayLocked while holding testdata.replayBuf.rmu may re-acquire it"
	}
}

// replayLocked is misnamed: it takes the lock itself.
func (b *replayBuf) replayLocked() {
	b.rmu.Lock()
	defer b.rmu.Unlock()
	if len(b.pending) > 0 {
		b.pending = b.pending[1:]
	}
}

// The fix: drain after releasing, or keep the helper lock-free. Calling
// the locking helper with the mutex released is fine.
func (b *replayBuf) FlushFixed() {
	b.rmu.Lock()
	n := len(b.pending)
	b.rmu.Unlock()
	for i := 0; i < n; i++ {
		b.replayLocked()
	}
}
