package experiment

import (
	"errors"
	"testing"
	"time"

	"autoindex/internal/binstance"
	"autoindex/internal/engine"
	"autoindex/internal/sim"
	"autoindex/internal/workload"
)

func tenant(t *testing.T, seed int64, tier engine.Tier) *workload.Tenant {
	t.Helper()
	tn, err := workload.NewTenant(workload.Profile{
		Name: "exp", Tier: tier, Seed: seed, UserIndexes: true,
	}, sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestWorkflowRunsStepsInOrder(t *testing.T) {
	tn := tenant(t, 3, engine.TierBasic)
	eng := &Engine{Clock: tn.DB.Clock(), RNG: sim.NewRNG(1)}
	var order []string
	wf := Workflow{Name: "order", Steps: []Step{
		StepCustom("a", func(*Context) error { order = append(order, "a"); return nil }),
		StepCustom("b", func(*Context) error { order = append(order, "b"); return nil }),
		StepMark("t1"),
	}}
	ctx, err := eng.Execute(wf, tn)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order: %v", order)
	}
	if _, ok := MarkedTime(ctx, "t1"); !ok {
		t.Fatal("mark missing")
	}
	if len(ctx.Log) == 0 {
		t.Fatal("no log")
	}
}

func TestWorkflowFailureRunsCleanupsInReverse(t *testing.T) {
	tn := tenant(t, 3, engine.TierBasic)
	eng := &Engine{Clock: tn.DB.Clock(), RNG: sim.NewRNG(1)}
	var cleaned []string
	boom := errors.New("boom")
	wf := Workflow{Name: "fail", Steps: []Step{
		{Name: "s1", Run: func(*Context) error { return nil },
			Cleanup: func(*Context) { cleaned = append(cleaned, "s1") }},
		{Name: "s2", Run: func(*Context) error { return nil },
			Cleanup: func(*Context) { cleaned = append(cleaned, "s2") }},
		{Name: "s3", Run: func(*Context) error { return boom }},
	}}
	_, err := eng.Execute(wf, tn)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(cleaned) != 2 || cleaned[0] != "s2" || cleaned[1] != "s1" {
		t.Fatalf("cleanup order: %v", cleaned)
	}
}

func TestReplayThroughPrimaryForksTraffic(t *testing.T) {
	tn := tenant(t, 5, engine.TierBasic)
	eng := &Engine{Clock: tn.DB.Clock(), RNG: sim.NewRNG(2)}
	wf := Workflow{Name: "fork", Steps: []Step{
		StepCreateBInstance(binstance.Config{}),
		StepReplay("live", time.Hour, 40, true),
		StepCheckDivergence(0.5),
	}}
	ctx, err := eng.Execute(wf, tn)
	if err != nil {
		t.Fatal(err)
	}
	replayed, _ := ctx.B.Stats()
	if replayed == 0 {
		t.Fatal("no statements forked to the B-instance")
	}
}

func TestDivergenceStepAborts(t *testing.T) {
	tn := tenant(t, 5, engine.TierBasic)
	eng := &Engine{Clock: tn.DB.Clock(), RNG: sim.NewRNG(2)}
	wf := Workflow{Name: "diverge", Steps: []Step{
		StepCreateBInstance(binstance.Config{}),
		// Mutate the B-instance heavily without touching the primary.
		StepCustom("mutate", func(ctx *Context) error {
			table := ctx.B.DB.TableNames()[0]
			_, err := ctx.B.DB.Exec("DELETE FROM " + table)
			return err
		}),
		StepCheckDivergence(0.5),
	}}
	_, err := eng.Execute(wf, tn)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("want ErrDiverged, got %v", err)
	}
}

// TestFig6SingleTenant runs the full §7.3 protocol on one database and
// checks the structural invariants of the result.
func TestFig6SingleTenant(t *testing.T) {
	tn := tenant(t, 12, engine.TierStandard)
	cfg := DefaultFig6Config()
	cfg.PhaseStatements = 300
	cfg.PhaseDuration = 8 * time.Hour
	res := RunFig6ForTenant(tn, cfg, sim.NewRNG(8))
	if res.Err != nil {
		t.Fatalf("experiment failed: %v", res.Err)
	}
	if len(res.DroppedUser) == 0 {
		t.Fatal("no user indexes dropped")
	}
	if len(res.ImprovementPct) != 3 {
		t.Fatalf("phases measured: %+v", res.ImprovementPct)
	}
	switch res.Winner {
	case WinnerDTA, WinnerMI, WinnerUser, WinnerComparable:
	default:
		t.Fatalf("winner: %q", res.Winner)
	}
	// The primary must be untouched: user indexes still present, no auto
	// indexes.
	for _, name := range res.DroppedUser {
		if _, ok := tn.DB.IndexDef(name); !ok {
			t.Fatalf("experiment dropped %s on the primary", name)
		}
	}
	for _, def := range tn.DB.IndexDefs() {
		if def.AutoCreated {
			t.Fatalf("experiment created %s on the primary", def.Name)
		}
	}
}

func TestSummarize(t *testing.T) {
	results := []DatabaseResult{
		{Database: "a", Winner: WinnerDTA, ImprovementPct: map[Winner]float64{WinnerDTA: 50, WinnerMI: 30, WinnerUser: 10}},
		{Database: "b", Winner: WinnerComparable, ImprovementPct: map[Winner]float64{WinnerDTA: 10, WinnerMI: 10, WinnerUser: 10}},
		{Database: "c", Err: errors.New("x")},
	}
	s := Summarize("premium", results)
	if s.Databases != 2 || s.Errors != 1 {
		t.Fatalf("%+v", s)
	}
	if s.Share[WinnerDTA] != 50 || s.Share[WinnerComparable] != 50 {
		t.Fatalf("shares: %+v", s.Share)
	}
	if s.AvgImprove[WinnerDTA] != 30 {
		t.Fatalf("avg: %+v", s.AvgImprove)
	}
	if s.String() == "" {
		t.Fatal("string")
	}
}
