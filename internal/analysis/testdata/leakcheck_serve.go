// Leakcheck fixtures, type-checked under "autoindex/internal/serve"
// (see fixtureOverrides): goroutines on the serving path must be
// provably joinable. leakyStart is the minimized pre-Shutdown session
// leak — every accepted connection spawned a pump goroutine that
// nothing ever joined, so a long-lived server accumulated one stuck
// goroutine per dropped client. The other launchers show the three
// blessed shapes: waited WaitGroup, done-channel select, and a join
// channel the launcher drains.
package fixture

import (
	"io"
	"sync"
)

type sessionPump struct {
	wg   sync.WaitGroup
	done chan struct{}
	out  chan byte
}

// pump loops forever with no shutdown signal: launching it leaks.
func (p *sessionPump) pump(conn io.Reader) {
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			continue
		}
	}
}

func (p *sessionPump) leakyStart(conn io.Reader) {
	go p.pump(conn) // want "leakcheck: goroutine fixture.\(\*sessionPump\).pump is not provably joinable"
}

// waitedStart registers with the WaitGroup Shutdown waits on: joinable.
func (p *sessionPump) waitedStart(conn io.Reader) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}()
}

// signalStart's goroutine selects on the done channel Shutdown closes:
// joinable.
func (p *sessionPump) signalStart() {
	go p.watch()
}

func (p *sessionPump) watch() {
	for {
		select {
		case <-p.done:
			return
		case b := <-p.out:
			_ = b
		}
	}
}

func (p *sessionPump) Shutdown() {
	close(p.done)
	p.wg.Wait()
}

// drainedStop hands its goroutine a join channel and blocks on it: the
// launcher itself is the joiner.
func (p *sessionPump) drainedStop() {
	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	<-drained
}
