package workload

import (
	"time"

	"autoindex/internal/engine"
)

// RunStats summarises a replay.
type RunStats struct {
	Statements int
	Errors     int
	Writes     int
	ByTemplate map[string]int
}

// pickTemplate samples a template by weight.
func (t *Tenant) pickTemplate() *Template {
	if len(t.Templates) == 0 {
		return nil
	}
	var total float64
	for _, tpl := range t.Templates {
		total += tpl.Weight
	}
	x := t.rng.Float64() * total
	for _, tpl := range t.Templates {
		x -= tpl.Weight
		if x <= 0 {
			return tpl
		}
	}
	return t.Templates[len(t.Templates)-1]
}

// Statement samples one SQL statement from the mix.
func (t *Tenant) Statement() string {
	tpl := t.pickTemplate()
	if tpl == nil {
		return ""
	}
	return tpl.Gen(t)
}

// Stream samples n statements from the mix (for TDS-fork style replay to
// B-instances).
func (t *Tenant) Stream(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if s := t.Statement(); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Run executes n freshly-sampled statements against the tenant's own
// database, spread evenly over the virtual duration d.
func (t *Tenant) Run(d time.Duration, n int) RunStats {
	return t.Replay(t.DB, t.Stream(n), d)
}

// Replay executes a statement stream against db (the primary or a
// B-instance), spreading it over the virtual duration d. A small fraction
// of statements register long-running shared schema locks, giving the lock
// manager's convoy machinery something real to do.
func (t *Tenant) Replay(db *engine.Database, stmts []string, d time.Duration) RunStats {
	stats := RunStats{ByTemplate: make(map[string]int)}
	if len(stmts) == 0 {
		if d > 0 {
			db.Clock().Sleep(d)
		}
		return stats
	}
	step := d / time.Duration(len(stmts))
	for _, sql := range stmts {
		res, err := db.Exec(sql)
		stats.Statements++
		if err != nil {
			stats.Errors++
		} else if res.RowsAffected > 0 {
			stats.Writes++
		}
		if t.rng.Float64() < t.longQueryProb {
			// A long-running query/transaction holds its shared schema lock
			// for a while.
			for _, tbl := range db.TableNames() {
				db.Locks().HoldShared(tbl, db.Clock().Now().Add(2*time.Minute))
				break
			}
		}
		if step > 0 {
			db.Clock().Sleep(step)
		}
	}
	return stats
}
