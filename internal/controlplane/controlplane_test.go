package controlplane

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/engine"
	"autoindex/internal/schema"
	"autoindex/internal/sim"
)

// ---- state machine ----

func TestStateMachineLegalPaths(t *testing.T) {
	legal := [][]RecState{
		{StateActive, StateImplementing, StateValidating, StateSuccess},
		{StateActive, StateImplementing, StateValidating, StateReverting, StateReverted},
		{StateActive, StateImplementing, StateRetry, StateImplementing, StateValidating, StateSuccess},
		{StateActive, StateExpired},
		{StateActive, StateImplementing, StateError},
		{StateActive, StateImplementing, StateValidating, StateReverting, StateRetry, StateReverting, StateReverted},
	}
	for _, path := range legal {
		r := &Record{State: path[0]}
		for _, next := range path[1:] {
			if err := r.Transition(next, time.Time{}); err != nil {
				t.Fatalf("path %v: %v", path, err)
			}
		}
	}
}

func TestStateMachineIllegalTransitionsRejected(t *testing.T) {
	illegal := [][2]RecState{
		{StateActive, StateValidating},
		{StateActive, StateSuccess},
		{StateSuccess, StateActive},
		{StateReverted, StateImplementing},
		{StateExpired, StateImplementing},
		{StateError, StateRetry},
		{StateValidating, StateImplementing},
	}
	for _, tr := range illegal {
		r := &Record{State: tr[0]}
		if err := r.Transition(tr[1], time.Time{}); err == nil {
			t.Errorf("transition %s -> %s must be illegal", tr[0], tr[1])
		}
	}
}

// Property: terminal states have no outgoing transitions.
func TestQuickTerminalStatesAreTerminal(t *testing.T) {
	all := []RecState{
		StateActive, StateExpired, StateImplementing, StateValidating,
		StateSuccess, StateReverting, StateReverted, StateRetry, StateError,
	}
	f := func(i, j uint8) bool {
		from := all[int(i)%len(all)]
		to := all[int(j)%len(all)]
		if from.Terminal() && CanTransition(from, to) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---- store ----

func TestMemStoreCopySemantics(t *testing.T) {
	s := NewMemStore()
	r := &Record{Recommendation: core.Recommendation{ID: "r1", Database: "db"}, State: StateActive}
	s.SaveRecord(r)
	got, ok := s.GetRecord("r1")
	if !ok {
		t.Fatal("missing record")
	}
	got.State = StateError // mutating the copy must not leak
	got2, _ := s.GetRecord("r1")
	if got2.State != StateActive {
		t.Fatal("store leaked internal state")
	}
	recs := s.Records(func(r *Record) bool { return r.State == StateActive })
	if len(recs) != 1 {
		t.Fatalf("filter: %d", len(recs))
	}
	s.SaveDatabase(&DatabaseState{Name: "DB"})
	if _, ok := s.GetDatabase("db"); !ok {
		t.Fatal("database lookup must be case-insensitive")
	}
}

// ---- end-to-end lifecycle ----

type planeHarness struct {
	clock *sim.VirtualClock
	cp    *ControlPlane
	db    *engine.Database
}

func newPlaneHarness(t *testing.T, settings Settings) *planeHarness {
	t.Helper()
	clock := sim.NewClock()
	cfg := DefaultConfig()
	cfg.AnalyzeEvery = time.Hour
	cfg.SnapshotEvery = 30 * time.Minute
	cfg.ValidationWindow = 4 * time.Hour
	db := engine.New(engine.DefaultConfig("cpdb", engine.TierBasic, 77), clock)
	mustExec(t, db, `CREATE TABLE items (id BIGINT NOT NULL, cat BIGINT, price FLOAT, PRIMARY KEY (id))`)
	for i := 0; i < 2000; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO items (id, cat, price) VALUES (%d, %d, %d.5)`, i, i%200, i))
	}
	db.RebuildAllStats()
	cp := New(cfg, clock, NewMemStore(), nil)
	cp.Manage(db, "srv", settings)
	return &planeHarness{clock: clock, cp: cp, db: db}
}

func mustExec(t *testing.T, db *engine.Database, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func (h *planeHarness) tick(t *testing.T, hours int, queriesPerHour int) {
	t.Helper()
	for i := 0; i < hours; i++ {
		for q := 0; q < queriesPerHour; q++ {
			mustExec(t, h.db, fmt.Sprintf(`SELECT id, price FROM items WHERE cat = %d`, (i*31+q)%200))
		}
		h.clock.Advance(time.Hour)
		h.cp.Step()
	}
}

func TestLifecycleAutoImplementToSuccess(t *testing.T) {
	h := newPlaneHarness(t, Settings{AutoCreate: true, AutoDrop: true})
	h.tick(t, 30, 20)
	hist := h.cp.History("cpdb")
	success := 0
	for _, r := range hist {
		if r.State == StateSuccess {
			success++
			if r.Validation == nil {
				t.Fatalf("success without validation: %+v", r)
			}
		}
	}
	if success == 0 {
		t.Fatalf("no recommendation reached Success; history: %d records", len(hist))
	}
	// The index exists on the database.
	found := false
	for _, def := range h.db.IndexDefs() {
		if def.AutoCreated {
			found = true
		}
	}
	if !found {
		t.Fatal("auto-created index missing from database")
	}
}

func TestAutoImplementOffLeavesActive(t *testing.T) {
	h := newPlaneHarness(t, Settings{})
	h.tick(t, 10, 20)
	active := h.cp.ListRecommendations("cpdb")
	if len(active) == 0 {
		t.Fatal("expected active recommendations")
	}
	for _, def := range h.db.IndexDefs() {
		if def.AutoCreated {
			t.Fatal("index implemented despite auto-implement off")
		}
	}
	// The user applies one manually (§2): the system implements and
	// validates it.
	if err := h.cp.Apply(active[0].ID); err != nil {
		t.Fatal(err)
	}
	h.tick(t, 8, 20)
	r, _ := h.cp.StateStore().GetRecord(active[0].ID)
	if r.State != StateSuccess && r.State != StateValidating && r.State != StateReverted {
		t.Fatalf("user-applied recommendation stuck in %s", r.State)
	}
}

func TestServerSettingsInheritance(t *testing.T) {
	h := newPlaneHarness(t, Settings{InheritFromServer: true})
	h.cp.SetServerSettings("srv", ServerSettings{AutoCreate: true})
	h.tick(t, 20, 20)
	implemented := false
	for _, def := range h.db.IndexDefs() {
		if def.AutoCreated {
			implemented = true
		}
	}
	if !implemented {
		t.Fatal("server-inherited auto-create did not implement")
	}
}

func TestExpiryOfStaleRecommendations(t *testing.T) {
	h := newPlaneHarness(t, Settings{}) // never implemented
	h.tick(t, 10, 20)
	if len(h.cp.ListRecommendations("cpdb")) == 0 {
		t.Fatal("precondition: active recommendations")
	}
	// Idle past the TTL (no workload → recommendation creation dries up as
	// the MI impact slope flattens, and existing records age out).
	for i := 0; i < 10*24; i++ {
		h.clock.Advance(time.Hour)
		h.cp.Step()
	}
	if n := len(h.cp.ListRecommendations("cpdb")); n != 0 {
		t.Fatalf("%d recommendations survived the TTL", n)
	}
	expired := 0
	for _, r := range h.cp.History("cpdb") {
		if r.State == StateExpired {
			expired++
		}
	}
	if expired == 0 {
		t.Fatal("no record expired")
	}
}

func TestWellKnownErrorTerminalWithoutIncident(t *testing.T) {
	h := newPlaneHarness(t, Settings{AutoCreate: true})
	// File a recommendation whose index name already exists.
	def := schema.IndexDef{Name: "ix_conflict", Table: "items", KeyColumns: []string{"cat"}}
	if err := h.db.CreateIndex(def, engine.IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}
	rec := &Record{
		Recommendation: core.Recommendation{
			ID: "rec-x", Database: "cpdb", Action: core.ActionCreateIndex,
			Index: schema.IndexDef{Name: "ix_conflict", Table: "items", KeyColumns: []string{"price"}},
		},
		State: StateActive,
	}
	h.cp.StateStore().SaveRecord(rec)
	h.cp.Step()
	r, _ := h.cp.StateStore().GetRecord("rec-x")
	if r.State != StateError || r.SubState != "well-known-error" {
		t.Fatalf("record: %+v", r)
	}
	if len(h.cp.StateStore().Incidents()) != 0 {
		t.Fatal("well-known error must not raise an incident")
	}
}

func TestTransientErrorRetriesWithBackoff(t *testing.T) {
	h := newPlaneHarness(t, Settings{AutoDrop: true})
	def := schema.IndexDef{Name: "ix_victim", Table: "items", KeyColumns: []string{"cat"}}
	if err := h.db.CreateIndex(def, engine.IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}
	// A long-running query blocks the drop's low-priority lock for 2h.
	h.db.Locks().HoldShared("items", h.clock.Now().Add(2*time.Hour))
	rec := &Record{
		Recommendation: core.Recommendation{
			ID: "rec-drop", Database: "cpdb", Action: core.ActionDropIndex, Index: def,
		},
		State: StateActive,
	}
	h.cp.StateStore().SaveRecord(rec)
	h.cp.Step()
	r, _ := h.cp.StateStore().GetRecord("rec-drop")
	if r.State != StateRetry {
		t.Fatalf("lock timeout should retry, got %s (%s)", r.State, r.LastError)
	}
	// After backoff + lock release, the retry succeeds.
	for i := 0; i < 8; i++ {
		h.clock.Advance(time.Hour)
		h.cp.Step()
	}
	r, _ = h.cp.StateStore().GetRecord("rec-drop")
	if r.State != StateValidating && r.State != StateSuccess {
		t.Fatalf("retry did not recover: %s (%s)", r.State, r.LastError)
	}
	if _, exists := h.db.IndexDef("ix_victim"); exists {
		t.Fatal("index not dropped after retry")
	}
}

func TestControlPlaneRestartResumes(t *testing.T) {
	h := newPlaneHarness(t, Settings{AutoCreate: true})
	h.tick(t, 8, 20)
	store := h.cp.StateStore()
	nonTerminal := store.Records(func(r *Record) bool { return !r.State.Terminal() })
	hadWork := len(nonTerminal) > 0 || len(store.Records(nil)) > 0
	if !hadWork {
		t.Fatal("precondition: some records exist")
	}
	// "Restart": a new control plane over the same persistent store.
	cfg := DefaultConfig()
	cfg.AnalyzeEvery = time.Hour
	cfg.ValidationWindow = 4 * time.Hour
	cp2 := New(cfg, h.clock, store, nil)
	cp2.Manage(h.db, "srv", Settings{AutoCreate: true})
	h.cp = cp2
	h.tick(t, 30, 20)
	done := 0
	for _, r := range store.Records(nil) {
		if r.State == StateSuccess || r.State == StateReverted {
			done++
		}
	}
	if done == 0 {
		t.Fatal("restarted control plane made no progress on persisted records")
	}
}

func TestOpStatsCounters(t *testing.T) {
	h := newPlaneHarness(t, Settings{AutoCreate: true, AutoDrop: true})
	h.tick(t, 30, 20)
	s := h.cp.OpStats()
	if s.Databases != 1 || s.CreateRecommended == 0 || s.CreatesImplemented == 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("string")
	}
}

func TestDetailsRendering(t *testing.T) {
	h := newPlaneHarness(t, Settings{})
	h.tick(t, 10, 20)
	active := h.cp.ListRecommendations("cpdb")
	if len(active) == 0 {
		t.Fatal("precondition")
	}
	d, err := h.cp.Details(active[0].ID)
	if err != nil || d == "" {
		t.Fatalf("details: %v %q", err, d)
	}
	if _, err := h.cp.Details("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}
