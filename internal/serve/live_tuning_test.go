package serve

import (
	"testing"
	"time"

	"autoindex/internal/controlplane"
	"autoindex/internal/sim"
	"autoindex/internal/telemetry"
	"autoindex/internal/wire"
	"autoindex/internal/workload"
)

// TestLiveWorkloadDrivesTuning is the end-to-end acceptance path: a
// client executes statements over the wire protocol, the engine records
// them as live Query Store executions, and a subsequent control-plane
// tuning pass files a recommendation whose evidence came from that live
// traffic. Virtual time is advanced by the test (the way autoindexd's
// live loop does) so analysis cadences elapse between statement waves.
func TestLiveWorkloadDrivesTuning(t *testing.T) {
	clock := sim.NewClock()
	tn, err := workload.NewTenant(workload.Profile{
		Name: "db000",
		Seed: 4242,
		// No user indexes: the generated point lookups and range scans
		// leave obvious indexing opportunities for the tuner to find.
		UserIndexes: false,
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub(256)
	plane := controlplane.New(controlplane.Config{}, clock, controlplane.NewMemStore(), hub)
	plane.Manage(tn.DB, "server-0", controlplane.Settings{})

	_, addr, _ := startServer(t, Config{Lookup: lookupOne(tn.DB)})
	cl, err := wire.Dial(addr, "app", testPassword, "db000")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Waves of live statements, one virtual hour apart. The default
	// analysis cadence is 6 virtual hours, so a recommendation should
	// appear within a few waves; 48 waves is two virtual days of slack.
	executed := 0
	for wave := 0; wave < 48; wave++ {
		for _, sql := range tn.Stream(40) {
			if _, err := cl.Query(sql); err != nil {
				t.Fatalf("wave %d: %q: %v", wave, sql, err)
			}
			executed++
		}
		clock.Advance(time.Hour)
		plane.Step()
		if len(plane.ListRecommendations("db000")) > 0 {
			break
		}
	}

	recs := plane.ListRecommendations("db000")
	if len(recs) == 0 {
		t.Fatalf("no recommendation after %d live statements", executed)
	}
	// Every wire statement was recorded as live; the handful of extra
	// executions are the generator's own setup statements.
	total, live := tn.DB.QueryStore().ExecutionTotals()
	if live != int64(executed) {
		t.Fatalf("live executions = %d, want %d (total %d)", live, executed, total)
	}
	if got := hub.Counter("analysis.live_workload"); got < 1 {
		t.Fatalf("analysis.live_workload = %d, want >= 1", got)
	}
	if got := hub.Counter("recommendations.live_driven"); got < 1 {
		t.Fatalf("recommendations.live_driven = %d, want >= 1", got)
	}
	// The recommendation's impacted queries must include statements the
	// client actually executed over the wire.
	qs := tn.DB.QueryStore()
	found := false
	for _, r := range recs {
		for _, qh := range r.ImpactedQueries {
			if qs.QueryLiveExecutions(qh) > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no filed recommendation references a live-executed query")
	}
}
