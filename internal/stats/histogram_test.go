package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"autoindex/internal/sim"
	"autoindex/internal/value"
)

var t0 = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

func intVals(n int, f func(i int) int64) []value.Value {
	out := make([]value.Value, n)
	for i := range out {
		out[i] = value.NewInt(f(i))
	}
	return out
}

func TestBuildUniform(t *testing.T) {
	vals := intVals(1000, func(i int) int64 { return int64(i % 100) })
	s := Build("c", vals, t0)
	if s.RowCount != 1000 {
		t.Fatalf("rows = %v", s.RowCount)
	}
	if math.Abs(s.Distinct-100) > 1 {
		t.Fatalf("distinct = %v, want ~100", s.Distinct)
	}
	// Each value is 1% of rows.
	sel := s.SelectivityEq(value.NewInt(50))
	if math.Abs(sel-0.01) > 0.005 {
		t.Fatalf("eq selectivity = %v, want ~0.01", sel)
	}
	// Range [20, 40) is ~20%.
	lo, hi := value.NewInt(20), value.NewInt(40)
	rs := s.SelectivityRange(&lo, true, &hi, false)
	if math.Abs(rs-0.20) > 0.06 {
		t.Fatalf("range selectivity = %v, want ~0.2", rs)
	}
}

func TestBuildSkewed(t *testing.T) {
	// 90% of rows are value 0.
	vals := intVals(1000, func(i int) int64 {
		if i < 900 {
			return 0
		}
		return int64(i)
	})
	s := Build("c", vals, t0)
	sel := s.SelectivityEq(value.NewInt(0))
	// Equi-depth histogram puts the heavy hitter across buckets; the
	// estimate should be large but is allowed to be off — this is the
	// estimation error the validator exists for. It must at least exceed
	// the uniform estimate by a lot.
	if sel < 0.05 {
		t.Fatalf("heavy-hitter selectivity = %v, too small", sel)
	}
}

func TestNullsTracked(t *testing.T) {
	vals := intVals(100, func(i int) int64 { return int64(i) })
	for i := 0; i < 50; i++ {
		vals = append(vals, value.NewNull())
	}
	s := Build("c", vals, t0)
	if s.Nulls != 50 {
		t.Fatalf("nulls = %v", s.Nulls)
	}
	if s.NonNullRows() != 100 {
		t.Fatalf("non-null = %v", s.NonNullRows())
	}
	if s.SelectivityEq(value.NewNull()) != 0 {
		t.Fatal("= NULL matches nothing")
	}
}

func TestOutOfRangePredicates(t *testing.T) {
	vals := intVals(1000, func(i int) int64 { return int64(i%100) + 100 })
	s := Build("c", vals, t0)
	if sel := s.SelectivityEq(value.NewInt(9999)); sel > 0.01 {
		t.Fatalf("out-of-range eq = %v", sel)
	}
	lo := value.NewInt(500)
	if sel := s.SelectivityRange(&lo, true, nil, false); sel > 0.02 {
		t.Fatalf("out-of-range range = %v", sel)
	}
}

func TestEmptyColumn(t *testing.T) {
	s := Build("c", nil, t0)
	if s.SelectivityEq(value.NewInt(1)) != 0 {
		t.Fatal("empty stats must estimate 0")
	}
	lo := value.NewInt(0)
	if s.SelectivityRange(&lo, true, nil, false) != 0 {
		t.Fatal("empty range")
	}
}

func TestSampledStatsScaleUp(t *testing.T) {
	rng := sim.NewRNG(5)
	vals := intVals(10000, func(i int) int64 { return int64(i % 500) })
	s := BuildSampled("c", vals, 0.1, rng, t0)
	if s.SampleRate != 0.1 {
		t.Fatalf("rate = %v", s.SampleRate)
	}
	if s.RowCount != 10000 {
		t.Fatalf("scaled rows = %v", s.RowCount)
	}
	// The estimate should be in the right ballpark despite sampling.
	sel := s.SelectivityEq(value.NewInt(250))
	if sel <= 0 || sel > 0.02 {
		t.Fatalf("sampled eq selectivity = %v, want ~0.002", sel)
	}
	var total float64
	for _, b := range s.Buckets {
		total += b.Rows
	}
	if math.Abs(total-10000) > 2500 {
		t.Fatalf("bucket rows sum to %v, want ~10000", total)
	}
}

func TestStringsSupported(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 300; i++ {
		vals = append(vals, value.NewString([]string{"a", "b", "c"}[i%3]))
	}
	s := Build("c", vals, t0)
	sel := s.SelectivityEq(value.NewString("b"))
	if math.Abs(sel-1.0/3) > 0.15 {
		t.Fatalf("string selectivity = %v", sel)
	}
}

// Property: selectivities are always in [0, 1], and a full-range predicate
// has selectivity near 1 for non-null data.
func TestQuickSelectivityBounds(t *testing.T) {
	f := func(raw []int16, probe int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]value.Value, len(raw))
		for i, v := range raw {
			vals[i] = value.NewInt(int64(v))
		}
		s := Build("c", vals, t0)
		se := s.SelectivityEq(value.NewInt(int64(probe)))
		if se < 0 || se > 1 {
			return false
		}
		lo, hi := value.NewInt(-40000), value.NewInt(40000)
		sr := s.SelectivityRange(&lo, true, &hi, true)
		if sr < 0 || sr > 1 {
			return false
		}
		// All data is within [-40000, 40000]; full range must catch most.
		return sr > 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
