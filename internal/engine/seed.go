package engine

import (
	"fmt"
	"strings"
	"time"

	"autoindex/internal/btree"
	"autoindex/internal/schema"
	"autoindex/internal/stats"
	"autoindex/internal/storage"
	"autoindex/internal/value"
)

// SharedCatalog holds the immutable, archetype-level objects that every
// tenant stamped from the same template aliases instead of copying:
// canonical table definitions, base-data rows in stamp order, and column
// statistics built once over the template data. Tenants share these
// copy-on-write — any tenant-local DDL (DropColumn) or statistics refresh
// replaces only that tenant's pointer, leaving siblings untouched — so a
// 100k-tenant fleet pays for each archetype's schema, base rows and
// histograms once.
//
// The catalog also powers hibernation: rows physically shared with the
// catalog are serialized as (table, row-index) references rather than
// values, keeping snapshots compact and re-aliasing the shared storage on
// rehydrate.
type SharedCatalog struct {
	tables map[string]*schema.Table      // lower(name)
	stats  map[string]*stats.ColumnStats // statKey
	rows   map[string][]value.Row        // lower(name), stamp order
	rowIdx map[*value.Value]rowRef       // &row[0] identity -> position
}

type rowRef struct {
	table string
	idx   int
}

// NewSharedCatalog returns an empty catalog.
func NewSharedCatalog() *SharedCatalog {
	return &SharedCatalog{
		tables: make(map[string]*schema.Table),
		stats:  make(map[string]*stats.ColumnStats),
		rows:   make(map[string][]value.Row),
		rowIdx: make(map[*value.Value]rowRef),
	}
}

// AddTable registers a canonical table definition and its base rows.
// Both become immutable: tenants alias them directly.
func (sc *SharedCatalog) AddTable(def *schema.Table, rows []value.Row) {
	key := strings.ToLower(def.Name)
	sc.tables[key] = def
	sc.rows[key] = rows
	for i, r := range rows {
		if len(r) > 0 {
			sc.rowIdx[&r[0]] = rowRef{table: key, idx: i}
		}
	}
}

// AddStats registers a canonical statistics object for a column.
func (sc *SharedCatalog) AddStats(table, column string, st *stats.ColumnStats) {
	sc.stats[statKey(table, column)] = st
}

// TableDef returns the canonical definition for a table, or nil.
func (sc *SharedCatalog) TableDef(name string) *schema.Table {
	return sc.tables[strings.ToLower(name)]
}

// Rows returns the canonical base rows for a table.
func (sc *SharedCatalog) Rows(name string) []value.Row {
	return sc.rows[strings.ToLower(name)]
}

// Stats returns the canonical statistics for a column, or nil.
func (sc *SharedCatalog) Stats(table, column string) *stats.ColumnStats {
	return sc.stats[statKey(table, column)]
}

// rowRefOf resolves a row to its catalog position by slice identity.
func (sc *SharedCatalog) rowRefOf(r value.Row) (rowRef, bool) {
	if sc == nil || len(r) == 0 {
		return rowRef{}, false
	}
	ref, ok := sc.rowIdx[&r[0]]
	return ref, ok
}

// SeedTable installs a table directly from a shared definition and base
// rows, bypassing the SQL path. The definition pointer and the row slices
// are aliased, not copied — the copy-on-write substrate for archetype
// fleets. Rows must already have the definition's column layout; the
// engine never mutates stored rows in place (updates clone, deletes
// unlink), so sharing them across tenants is safe even under the race
// detector.
func (d *Database) SeedTable(def *schema.Table, rows []value.Row) error {
	if err := def.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, exists := d.tables[key]; exists {
		return fmt.Errorf("engine: table %q already exists", def.Name)
	}
	t := &tableData{def: def, rowCount: int64(len(rows))}
	if len(def.PrimaryKey) > 0 {
		t.clustered = btree.New(btree.DefaultOrder)
		ords := make([]int, len(def.PrimaryKey))
		for i, c := range def.PrimaryKey {
			ords[i] = def.ColumnIndex(c)
		}
		for _, row := range rows {
			if len(row) != len(def.Columns) {
				return fmt.Errorf("engine: seed row width %d != table width %d", len(row), len(def.Columns))
			}
			k := make(value.Key, len(ords))
			for i, o := range ords {
				if row[o].IsNull() {
					return fmt.Errorf("engine: NULL primary key in seed row for %q", def.Name)
				}
				k[i] = row[o]
			}
			if _, dup := t.clustered.Get(k); dup {
				return fmt.Errorf("engine: duplicate primary key %v in seed rows for %q", k, def.Name)
			}
			t.clustered.Insert(k, row)
		}
	} else {
		t.heap = storage.NewHeap(def.RowWidth())
		for _, row := range rows {
			if len(row) != len(def.Columns) {
				return fmt.Errorf("engine: seed row width %d != table width %d", len(row), len(def.Columns))
			}
			t.heap.Insert(row)
		}
	}
	d.tables[key] = t
	return nil
}

// SeedIndex builds a secondary index directly — no locks, no fault
// points, no simulated build time, nothing recorded in Query Store. It
// exists for stamping archetype setup indexes onto a fresh tenant.
func (d *Database) SeedIndex(def schema.IndexDef, createdAt time.Time) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tables[strings.ToLower(def.Table)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, def.Table)
	}
	if _, exists := d.indexes[strings.ToLower(def.Name)]; exists {
		return fmt.Errorf("%w: %s", ErrIndexExists, def.Name)
	}
	if err := def.Validate(t.def); err != nil {
		return err
	}
	if def.Kind == schema.Clustered {
		return fmt.Errorf("engine: only non-clustered indexes can be seeded")
	}
	ix := &indexData{
		def:       def.Clone(),
		tree:      btree.New(btree.DefaultOrder),
		createdAt: createdAt,
		sizeBytes: def.EstimatedSizeBytes(t.def, t.rowCount),
	}
	for _, c := range def.KeyColumns {
		ix.keyOrds = append(ix.keyOrds, t.def.ColumnIndex(c))
	}
	for _, c := range def.IncludedColumns {
		ix.inclOrds = append(ix.inclOrds, t.def.ColumnIndex(c))
	}
	insert := func(row value.Row, loc value.Key) {
		k, p := ix.entryFor(t, row, loc)
		ix.tree.Insert(k, p)
	}
	if t.clustered != nil {
		t.clustered.Ascend(func(e btree.Entry) bool {
			insert(e.Payload, e.Key)
			return true
		})
	} else {
		t.heap.Scan(func(rid storage.RID, row value.Row) bool {
			insert(row, value.Key{value.NewInt(int64(rid))})
			return true
		})
	}
	d.indexes[strings.ToLower(def.Name)] = ix
	return nil
}

// SeedStats adopts a prebuilt (typically archetype-shared) statistics
// object for a column, marking it current at the present data version so
// the lazy refresh path does not immediately rebuild it.
func (d *Database) SeedStats(table, column string, st *stats.ColumnStats) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := statKey(table, column)
	d.colStat[key] = st
	d.statsVersion[key] = d.dataVersion
}

// TableDefPtr exposes the table-definition pointer for aliasing tests:
// archetype siblings share one *schema.Table until a tenant-local DDL
// forks it.
func (d *Database) TableDefPtr(table string) *schema.Table {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if t, ok := d.tables[strings.ToLower(table)]; ok {
		return t.def
	}
	return nil
}

// StatPtr exposes the raw statistics pointer for a column (no lazy
// rebuild), for the same aliasing tests.
func (d *Database) StatPtr(table, column string) *stats.ColumnStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.colStat[statKey(table, column)]
}

// BaseRowPointer returns the address of the first value of the i-th row
// in storage order, the identity aliasing tests compare across tenants.
// It returns nil when the table or row does not exist.
func (d *Database) BaseRowPointer(table string, i int) *value.Value {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[strings.ToLower(table)]
	if !ok || i < 0 {
		return nil
	}
	var out *value.Value
	n := 0
	visit := func(row value.Row) bool {
		if n == i && len(row) > 0 {
			out = &row[0]
			return false
		}
		n++
		return true
	}
	if t.clustered != nil {
		t.clustered.Ascend(func(e btree.Entry) bool { return visit(e.Payload) })
	} else {
		t.heap.Scan(func(_ storage.RID, row value.Row) bool { return visit(row) })
	}
	return out
}
