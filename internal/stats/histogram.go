// Package stats implements column statistics: equi-depth histograms with
// per-bucket distinct counts, built from full or sampled data. The
// optimizer estimates predicate selectivity from these statistics, and the
// gap between histogram-based estimates and true execution cost — sampling
// error, staleness, correlation blindness — is precisely the failure mode
// that makes the paper's validation step necessary.
package stats

import (
	"fmt"
	"sort"
	"time"

	"autoindex/internal/sim"
	"autoindex/internal/value"
)

// DefaultBuckets is the histogram resolution.
const DefaultBuckets = 32

// Bucket is one equi-depth histogram bucket: all values v with
// prevUpper < v <= Upper.
type Bucket struct {
	Upper    value.Value
	Rows     float64
	Distinct float64
}

// ColumnStats summarises one column's distribution.
type ColumnStats struct {
	Column string
	// RowCount is the (estimated) table row count when the stats were
	// built; sampled builds scale up by the sample rate.
	RowCount float64
	Nulls    float64
	Distinct float64
	Min, Max value.Value
	Buckets  []Bucket
	// SampleRate records how the stats were built (1.0 = fullscan).
	SampleRate float64
	// BuiltAt is when the statistics were created, for staleness checks.
	BuiltAt time.Time
}

// Build constructs statistics from the given column values using every
// value (full scan).
func Build(column string, vals []value.Value, now time.Time) *ColumnStats {
	return build(column, vals, 1.0, now)
}

// BuildSampled constructs statistics from a sample of vals at the given
// rate. Sampling is the cheap path DTA uses ("sampled statistics", §5.3.1);
// it introduces estimation error by design.
func BuildSampled(column string, vals []value.Value, rate float64, rng *sim.RNG, now time.Time) *ColumnStats {
	if rate >= 1 || len(vals) == 0 {
		return build(column, vals, 1.0, now)
	}
	sampled := make([]value.Value, 0, int(float64(len(vals))*rate)+1)
	for _, v := range vals {
		if rng.Float64() < rate {
			sampled = append(sampled, v)
		}
	}
	if len(sampled) == 0 && len(vals) > 0 {
		sampled = append(sampled, vals[rng.Intn(len(vals))])
	}
	s := build(column, sampled, rate, now)
	// Scale counts back up to the table size.
	scale := float64(len(vals)) / float64(maxInt(len(sampled), 1))
	s.RowCount = float64(len(vals))
	s.Nulls *= scale
	s.Distinct *= sqrtScale(scale) // distinct does not scale linearly
	for i := range s.Buckets {
		s.Buckets[i].Rows *= scale
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sqrtScale dampens distinct-count extrapolation; a crude but standard
// first-order correction that still leaves realistic estimation error.
func sqrtScale(s float64) float64 {
	if s <= 1 {
		return 1
	}
	return (s + 1) / 2
}

func build(column string, vals []value.Value, rate float64, now time.Time) *ColumnStats {
	s := &ColumnStats{Column: column, SampleRate: rate, BuiltAt: now}
	nonNull := make([]value.Value, 0, len(vals))
	for _, v := range vals {
		if v.IsNull() {
			s.Nulls++
			continue
		}
		nonNull = append(nonNull, v)
	}
	s.RowCount = float64(len(vals))
	if len(nonNull) == 0 {
		return s
	}
	sort.Slice(nonNull, func(i, j int) bool {
		return value.Compare(nonNull[i], nonNull[j]) < 0
	})
	s.Min = nonNull[0]
	s.Max = nonNull[len(nonNull)-1]

	nb := DefaultBuckets
	if len(nonNull) < nb {
		nb = len(nonNull)
	}
	per := len(nonNull) / nb
	if per < 1 {
		per = 1
	}
	i := 0
	for i < len(nonNull) {
		end := i + per
		if end > len(nonNull) {
			end = len(nonNull)
		}
		// Extend the bucket to include all duplicates of its upper bound so
		// bucket boundaries fall between distinct values.
		for end < len(nonNull) && value.Compare(nonNull[end-1], nonNull[end]) == 0 {
			end++
		}
		b := Bucket{Upper: nonNull[end-1], Rows: float64(end - i)}
		d := 1.0
		for j := i + 1; j < end; j++ {
			if value.Compare(nonNull[j-1], nonNull[j]) != 0 {
				d++
			}
		}
		b.Distinct = d
		s.Distinct += d
		s.Buckets = append(s.Buckets, b)
		i = end
	}
	return s
}

// NonNullRows returns the estimated number of non-null rows.
func (s *ColumnStats) NonNullRows() float64 {
	r := s.RowCount - s.Nulls
	if r < 0 {
		return 0
	}
	return r
}

// SelectivityEq estimates the fraction of table rows with column = v.
func (s *ColumnStats) SelectivityEq(v value.Value) float64 {
	if s.RowCount == 0 {
		return 0
	}
	if v.IsNull() {
		return 0 // = NULL never matches
	}
	if len(s.Buckets) == 0 {
		return 0
	}
	if value.Compare(v, s.Min) < 0 || value.Compare(v, s.Max) > 0 {
		// Out of histogram range: assume a trickle (stale-stats behaviour).
		return 0.5 / s.RowCount
	}
	for _, b := range s.Buckets {
		if value.Compare(v, b.Upper) <= 0 {
			rows := b.Rows / maxF(b.Distinct, 1)
			return clamp01(rows / s.RowCount)
		}
	}
	return 0.5 / s.RowCount
}

// SelectivityRange estimates the fraction of rows with lo < col < hi, with
// inclusivity flags; nil bounds are open.
func (s *ColumnStats) SelectivityRange(lo *value.Value, loIncl bool, hi *value.Value, hiIncl bool) float64 {
	if s.RowCount == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rows := 0.0
	prev := s.Min
	first := true
	for _, b := range s.Buckets {
		bLo := prev
		if first {
			// First bucket spans [Min, Upper].
			bLo = s.Min
		}
		rows += b.Rows * overlapFraction(bLo, b.Upper, first, lo, loIncl, hi, hiIncl)
		prev = b.Upper
		first = false
	}
	return clamp01(rows / s.RowCount)
}

// overlapFraction estimates what fraction of a bucket covering
// (bLo, bUpper] (or [bLo, bUpper] for the first bucket) satisfies the
// range predicate, with linear interpolation for numeric bounds.
func overlapFraction(bLo, bUp value.Value, firstBucket bool, lo *value.Value, loIncl bool, hi *value.Value, hiIncl bool) float64 {
	// Quick rejections.
	if lo != nil {
		c := value.Compare(bUp, *lo)
		if c < 0 || (c == 0 && !loIncl) {
			return 0
		}
	}
	if hi != nil {
		c := value.Compare(bLo, *hi)
		if c > 0 || (c == 0 && !hiIncl && !firstBucket) {
			return 0
		}
	}
	loF, okLo := bLo.AsFloat()
	upF, okUp := bUp.AsFloat()
	if !okLo || !okUp || upF <= loF {
		// Non-numeric or degenerate bucket: containment is all-or-half.
		contained := true
		if lo != nil && value.Compare(bLo, *lo) < 0 {
			contained = false
		}
		if hi != nil && value.Compare(bUp, *hi) > 0 {
			contained = false
		}
		if contained {
			return 1
		}
		return 0.5
	}
	from, to := loF, upF
	if lo != nil {
		if f, ok := (*lo).AsFloat(); ok && f > from {
			from = f
		}
	}
	if hi != nil {
		if f, ok := (*hi).AsFloat(); ok && f < to {
			to = f
		}
	}
	if to <= from {
		// Point overlap at a boundary.
		if to == from {
			return 0.05
		}
		return 0
	}
	return clamp01((to - from) / (upF - loF))
}

func clamp01(f float64) float64 {
	switch {
	case f < 0:
		return 0
	case f > 1:
		return 1
	default:
		return f
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders a short summary for debugging.
func (s *ColumnStats) String() string {
	return fmt.Sprintf("stats(%s rows=%.0f nulls=%.0f distinct=%.0f buckets=%d sample=%.2f)",
		s.Column, s.RowCount, s.Nulls, s.Distinct, len(s.Buckets), s.SampleRate)
}
