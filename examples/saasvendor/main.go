// SaaS vendor scenario (§1.1, §2): a vendor deploys many structurally
// similar databases under one logical server, sets auto-implementation
// once at the server level, and lets every database inherit it. The
// control plane indexes each database independently; the vendor reads one
// aggregated view.
package main

import (
	"fmt"
	"time"

	"autoindex"
	"autoindex/internal/workload"
)

func main() {
	region := autoindex.NewRegion(7)

	// Server-level defaults: create automatically, drops stay manual
	// (matching the Fig. 1 configuration in the paper).
	region.SetServerSettings("saas-server", autoindex.ServerSettings{AutoCreate: true, AutoDrop: false})

	// Twenty tenant databases with the same application but different data
	// distributions and load (each gets its own seed).
	var tenants []*workload.Tenant
	for i := 0; i < 20; i++ {
		tn, err := workload.NewTenant(workload.Profile{
			Name: fmt.Sprintf("tenant%02d", i),
			Tier: autoindex.TierStandard,
			Seed: 9000 + int64(i), // different data/skew per tenant
		}, region.Clock())
		if err != nil {
			panic(err)
		}
		region.Manage(tn.DB, "saas-server", autoindex.Settings{InheritFromServer: true})
		tenants = append(tenants, tn)
	}

	fmt.Println("running 5 virtual days across 20 tenant databases...")
	for day := 0; day < 5; day++ {
		for h := 0; h < 24; h++ {
			for _, tn := range tenants {
				tn.Run(0, 15)
			}
			region.Advance(time.Hour)
		}
	}

	fmt.Println("\nper-tenant outcome:")
	totalIdx := 0
	for _, tn := range tenants {
		n := 0
		for _, def := range tn.DB.IndexDefs() {
			if def.AutoCreated {
				n++
			}
		}
		totalIdx += n
		fmt.Printf("  %-10s %d auto-created indexes, %d active recommendations\n",
			tn.DB.Name(), n, len(region.Recommendations(tn.DB.Name())))
	}
	fmt.Printf("\naggregate: %d auto-created indexes across the fleet\n", totalIdx)
	fmt.Println("service summary:", region.OpStats().String())
}
