package mi

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/sim"
)

// buildDB creates a database with a scan-heavy workload that generates
// missing-index candidates.
func buildDB(t *testing.T) (*engine.Database, *sim.VirtualClock) {
	t.Helper()
	clock := sim.NewClock()
	db := engine.New(engine.DefaultConfig("mitest", engine.TierBasic, 3), clock)
	mustExec(t, db, `CREATE TABLE hits (id BIGINT NOT NULL, site BIGINT, code BIGINT, bytes FLOAT, PRIMARY KEY (id))`)
	for i := 0; i < 3000; i++ {
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO hits (id, site, code, bytes) VALUES (%d, %d, %d, %d.5)`,
			i, i%300, i%10, i))
	}
	db.RebuildAllStats()
	return db, clock
}

func mustExec(t *testing.T, db *engine.Database, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// churn runs the candidate-generating query repeatedly.
func churn(t *testing.T, db *engine.Database, n int) {
	for i := 0; i < n; i++ {
		mustExec(t, db, fmt.Sprintf(`SELECT id, bytes FROM hits WHERE site = %d`, i%300))
	}
}

func TestRecommendPipeline(t *testing.T) {
	db, clock := buildDB(t)
	r := New(db, DefaultConfig())
	for s := 0; s < 4; s++ {
		churn(t, db, 30)
		clock.Advance(time.Hour)
		r.TakeSnapshot()
	}
	cands := r.Recommend()
	if len(cands) == 0 {
		t.Fatal("expected recommendations")
	}
	c := cands[0]
	if !strings.EqualFold(c.Def.Table, "hits") {
		t.Fatalf("wrong table: %+v", c.Def)
	}
	if !strings.EqualFold(c.Def.KeyColumns[0], "site") {
		t.Fatalf("key should be site: %+v", c.Def)
	}
	if !c.Def.AutoCreated {
		t.Fatal("must be marked auto-created")
	}
	if c.EstImprovement <= 0 || c.EstSizeBytes <= 0 || len(c.Features) == 0 {
		t.Fatalf("missing estimates: %+v", c)
	}
	if len(c.ImpactedQueries) == 0 {
		t.Fatal("impacted queries missing")
	}
}

func TestSlopeTestRequiresGrowth(t *testing.T) {
	db, clock := buildDB(t)
	r := New(db, DefaultConfig())
	// Activity happens once; later snapshots see a flat cumulative score.
	churn(t, db, 30)
	for s := 0; s < 5; s++ {
		clock.Advance(time.Hour)
		r.TakeSnapshot()
	}
	if cands := r.Recommend(); len(cands) != 0 {
		t.Fatalf("flat impact must not be recommended: %+v", cands)
	}
	// Continued growth passes.
	for s := 0; s < 3; s++ {
		churn(t, db, 30)
		clock.Advance(time.Hour)
		r.TakeSnapshot()
	}
	if cands := r.Recommend(); len(cands) == 0 {
		t.Fatal("growing impact must be recommended")
	}
}

func TestSnapshotResetTolerance(t *testing.T) {
	db, clock := buildDB(t)
	r := New(db, DefaultConfig())
	for s := 0; s < 2; s++ {
		churn(t, db, 30)
		clock.Advance(time.Hour)
		r.TakeSnapshot()
	}
	// Failover resets the DMV; the recommender's cumulative history must
	// keep the banked score.
	db.Failover()
	for s := 0; s < 3; s++ {
		churn(t, db, 30)
		clock.Advance(time.Hour)
		r.TakeSnapshot()
	}
	cands := r.Recommend()
	if len(cands) == 0 {
		t.Fatal("reset tolerance failed: no recommendation after failover")
	}
}

func TestMinSeeksFiltersAdHoc(t *testing.T) {
	db, clock := buildDB(t)
	cfg := DefaultConfig()
	cfg.MinSeeks = 1000
	r := New(db, cfg)
	for s := 0; s < 4; s++ {
		churn(t, db, 20)
		clock.Advance(time.Hour)
		r.TakeSnapshot()
	}
	if cands := r.Recommend(); len(cands) != 0 {
		t.Fatalf("ad-hoc filter failed: %+v", cands)
	}
}

func TestExistingIndexNotRerecommended(t *testing.T) {
	db, clock := buildDB(t)
	r := New(db, DefaultConfig())
	for s := 0; s < 4; s++ {
		churn(t, db, 30)
		clock.Advance(time.Hour)
		r.TakeSnapshot()
	}
	cands := r.Recommend()
	if len(cands) == 0 {
		t.Fatal("precondition: need a recommendation")
	}
	def := cands[0].Def
	if err := db.CreateIndex(def, engine.IndexBuildOptions{Online: true}); err != nil {
		t.Fatal(err)
	}
	// Recommend again: the same key must not reappear.
	for _, c := range r.Recommend() {
		if c.Def.SameKey(def) && strings.EqualFold(c.Def.Table, def.Table) {
			t.Fatalf("recommended an existing index: %+v", c.Def)
		}
	}
}

func TestClassifierTrainsAndFilters(t *testing.T) {
	db, clock := buildDB(t)
	cfg := DefaultConfig()
	cfg.ClassifierThreshold = 0.5
	r := New(db, cfg)
	for s := 0; s < 4; s++ {
		churn(t, db, 30)
		clock.Advance(time.Hour)
		r.TakeSnapshot()
	}
	before := r.Recommend()
	if len(before) == 0 {
		t.Fatal("precondition")
	}
	// Train the classifier that everything like this regresses.
	for i := 0; i < 60; i++ {
		r.TrainFromValidation(before[0].Features, false)
	}
	if r.ClassifierSeen() != 60 {
		t.Fatalf("seen = %d", r.ClassifierSeen())
	}
	after := r.Recommend()
	if len(after) >= len(before) {
		t.Fatalf("trained classifier should filter: %d -> %d", len(before), len(after))
	}
}

func TestAblationFlags(t *testing.T) {
	db, clock := buildDB(t)
	cfg := DefaultConfig()
	cfg.DisableSlopeTest = true
	cfg.DisableMerging = true
	cfg.ClassifierThreshold = 0
	r := New(db, cfg)
	churn(t, db, 30)
	clock.Advance(time.Hour)
	r.TakeSnapshot()
	// A single snapshot normally fails MinSnapshots; with the slope test
	// disabled it recommends immediately.
	if cands := r.Recommend(); len(cands) == 0 {
		t.Fatal("ablated pipeline should recommend from one snapshot")
	}
}

func TestCoverageExcludesPredicatelessWrites(t *testing.T) {
	db, clock := buildDB(t)
	r := New(db, DefaultConfig())
	// Window past the bulk data load, whose predicate-less inserts would
	// (correctly) dominate the denominator.
	clock.Advance(2 * time.Hour)
	since := clock.Now()
	churn(t, db, 10)
	mustExec(t, db, `INSERT INTO hits (id, site, code, bytes) VALUES (999999, 1, 1, 1.0)`)
	mustExec(t, db, `UPDATE hits SET bytes = 0.5 WHERE site = 3`)
	clock.Advance(time.Hour)
	cov := r.Coverage(since)
	if cov.TotalCPU <= cov.AnalyzedCPU {
		t.Fatalf("inserts must reduce coverage: %+v", cov)
	}
	if cov.Fraction() < 0.5 {
		t.Fatalf("coverage too low: %v", cov)
	}
}
