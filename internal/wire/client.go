package wire

import (
	"fmt"
	"net"
	"time"

	"autoindex/internal/value"
)

// Client is a minimal MySQL-protocol client used by cmd/sqlload, the
// serve benchmarks and the end-to-end tests. It is synchronous: one
// command in flight per connection, like the protocol itself.
type Client struct {
	c *Conn
}

// Result is a decoded command response. Columns is nil for OK-only
// responses (DDL/DML); rows carry every cell as text regardless of
// which protocol encoding they travelled in.
type Result struct {
	Columns      []string
	Rows         [][]TextCell
	AffectedRows uint64
}

// Dial connects, authenticates and selects a database.
func Dial(addr, user, password, database string) (*Client, error) {
	return DialMax(addr, user, password, database, 0)
}

// DialMax is Dial with a lowered frame-split threshold (0 keeps the
// protocol default). The threshold must be set before the handshake:
// a server configured with a small MaxPayload splits its greeting, and
// the client can only reassemble it if both peers agree on the split
// size. Tests pair this with serve.Config.MaxPayload.
func DialMax(addr, user, password, database string, maxPayload int) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewConn(nc)
	if maxPayload > 0 {
		c.SetMaxPayload(maxPayload)
	}
	cl, err := handshakeClient(c, user, password, database)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return cl, nil
}

// NewClientConn performs the handshake over an established connection.
func NewClientConn(nc net.Conn, user, password, database string) (*Client, error) {
	return handshakeClient(NewConn(nc), user, password, database)
}

func handshakeClient(c *Conn, user, password, database string) (*Client, error) {
	p, err := c.ReadPacket()
	if err != nil {
		return nil, err
	}
	if IsErr(p) {
		return nil, ParseErr(p)
	}
	hs, err := ParseHandshake(p)
	if err != nil {
		return nil, err
	}
	resp := HandshakeResponse{
		Capabilities: serverCaps,
		MaxPacket:    MaxPayload,
		User:         user,
		AuthResponse: ScrambleNative(password, hs.Seed),
		Database:     database,
		Plugin:       AuthPluginNative,
	}
	if err := c.WritePacket(EncodeHandshakeResponse(resp)); err != nil {
		return nil, err
	}
	p, err = c.ReadPacket()
	if err != nil {
		return nil, err
	}
	if IsErr(p) {
		return nil, ParseErr(p)
	}
	if !IsOK(p) {
		return nil, fmt.Errorf("wire: unexpected auth response 0x%02x", p[0])
	}
	return &Client{c: c}, nil
}

// SetMaxPayload lowers the client's frame-split threshold (tests only;
// the server must be configured to match).
func (cl *Client) SetMaxPayload(n int) { cl.c.SetMaxPayload(n) }

// Query runs a textual COM_QUERY.
func (cl *Client) Query(sql string) (*Result, error) {
	if err := cl.command(append([]byte{ComQuery}, sql...)); err != nil {
		return nil, err
	}
	return cl.readResult(false)
}

// Use switches the session's database via COM_INIT_DB.
func (cl *Client) Use(database string) error {
	if err := cl.command(append([]byte{ComInitDB}, database...)); err != nil {
		return err
	}
	return cl.readOK()
}

// Ping round-trips COM_PING.
func (cl *Client) Ping() error {
	if err := cl.command([]byte{ComPing}); err != nil {
		return err
	}
	return cl.readOK()
}

// Close sends COM_QUIT (best effort) and closes the connection.
func (cl *Client) Close() error {
	_ = cl.command([]byte{ComQuit})
	return cl.c.Close()
}

// Stmt is a server-side prepared statement.
type Stmt struct {
	cl         *Client
	id         uint32
	paramCount int
}

// Prepare registers a statement with `?` placeholders on the server.
func (cl *Client) Prepare(sql string) (*Stmt, error) {
	if err := cl.command(append([]byte{ComStmtPrepare}, sql...)); err != nil {
		return nil, err
	}
	p, err := cl.c.ReadPacket()
	if err != nil {
		return nil, err
	}
	if IsErr(p) {
		return nil, ParseErr(p)
	}
	r := newReader(p)
	if r.uint8() != 0x00 {
		return nil, fmt.Errorf("wire: unexpected prepare response 0x%02x", p[0])
	}
	st := &Stmt{cl: cl}
	st.id = r.uint32()
	cols := int(r.uint16())
	st.paramCount = int(r.uint16())
	if !r.ok() {
		return nil, fmt.Errorf("wire: malformed prepare response")
	}
	// Parameter and column definition blocks, each EOF-terminated.
	for _, n := range []int{st.paramCount, cols} {
		if n == 0 {
			continue
		}
		if err := cl.discardDefs(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// discardDefs reads definition packets until an EOF.
func (cl *Client) discardDefs() error {
	for {
		p, err := cl.c.ReadPacket()
		if err != nil {
			return err
		}
		if IsErr(p) {
			return ParseErr(p)
		}
		if IsEOF(p) {
			return nil
		}
	}
}

// Execute binds args and runs the statement over the binary protocol.
// Accepted argument types: nil, bool, int, int64, float64, string,
// time.Time and value.Value.
func (st *Stmt) Execute(args ...any) (*Result, error) {
	if len(args) != st.paramCount {
		return nil, fmt.Errorf("wire: statement wants %d args, got %d", st.paramCount, len(args))
	}
	vals := make([]value.Value, len(args))
	for i, a := range args {
		v, err := anyToValue(a)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	if err := st.cl.command(EncodeStmtExecute(st.id, vals)); err != nil {
		return nil, err
	}
	return st.cl.readResult(true)
}

// Close deallocates the statement (COM_STMT_CLOSE has no response).
func (st *Stmt) Close() error {
	b := appendUint32([]byte{ComStmtClose}, st.id)
	return st.cl.command(b)
}

func anyToValue(a any) (value.Value, error) {
	switch v := a.(type) {
	case nil:
		return value.NewNull(), nil
	case bool:
		return value.NewBool(v), nil
	case int:
		return value.NewInt(int64(v)), nil
	case int64:
		return value.NewInt(v), nil
	case float64:
		return value.NewFloat(v), nil
	case string:
		return value.NewString(v), nil
	case time.Time:
		return value.NewTime(v), nil
	case value.Value:
		return v, nil
	default:
		return value.Value{}, fmt.Errorf("wire: unsupported argument type %T", a)
	}
}

// command resets the sequence and writes one command packet.
func (cl *Client) command(payload []byte) error {
	cl.c.ResetSeq()
	return cl.c.WritePacket(payload)
}

// readOK consumes an OK-or-ERR response.
func (cl *Client) readOK() error {
	p, err := cl.c.ReadPacket()
	if err != nil {
		return err
	}
	if IsErr(p) {
		return ParseErr(p)
	}
	if !IsOK(p) {
		return fmt.Errorf("wire: unexpected response 0x%02x", p[0])
	}
	return nil
}

// readResult consumes a COM_QUERY / COM_STMT_EXECUTE response: an OK,
// an ERR, or a column count followed by definitions and rows, each
// block EOF-terminated.
func (cl *Client) readResult(binary bool) (*Result, error) {
	p, err := cl.c.ReadPacket()
	if err != nil {
		return nil, err
	}
	if IsErr(p) {
		return nil, ParseErr(p)
	}
	if IsOK(p) {
		ok, err := ParseOK(p)
		if err != nil {
			return nil, err
		}
		return &Result{AffectedRows: ok.AffectedRows}, nil
	}
	r := newReader(p)
	n := int(r.lenencInt())
	if !r.ok() || r.remaining() != 0 || n == 0 {
		return nil, fmt.Errorf("wire: malformed resultset header")
	}
	cols := make([]Column, 0, n)
	for i := 0; i < n; i++ {
		p, err := cl.c.ReadPacket()
		if err != nil {
			return nil, err
		}
		if IsErr(p) {
			return nil, ParseErr(p)
		}
		col, err := ParseColumn(p)
		if err != nil {
			return nil, err
		}
		cols = append(cols, *col)
	}
	p, err = cl.c.ReadPacket()
	if err != nil {
		return nil, err
	}
	if !IsEOF(p) {
		return nil, fmt.Errorf("wire: expected EOF after column definitions")
	}
	res := &Result{Columns: make([]string, n)}
	for i, c := range cols {
		res.Columns[i] = c.Name
	}
	for {
		p, err := cl.c.ReadPacket()
		if err != nil {
			return nil, err
		}
		if IsErr(p) {
			return nil, ParseErr(p)
		}
		if IsEOF(p) {
			return res, nil
		}
		var row []TextCell
		if binary {
			row, err = ParseBinaryRow(p, cols)
		} else {
			row, err = ParseTextRow(p, n)
		}
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
}
