package controlplane

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"autoindex/internal/core"
	"autoindex/internal/costcache"
	"autoindex/internal/dropper"
	"autoindex/internal/engine"
	"autoindex/internal/mathx"
	"autoindex/internal/metrics"
	"autoindex/internal/recommend/dta"
	"autoindex/internal/recommend/mi"
	"autoindex/internal/sim"
	"autoindex/internal/telemetry"
	"autoindex/internal/trace"
	"autoindex/internal/validate"
)

// RecommenderPolicy decides which recommendation source to use for a
// database (§5.1.1's "pre-configured policy": MI's low overhead suits
// low-resource tiers, DTA's comprehensive analysis suits complex
// higher-tier workloads).
type RecommenderPolicy func(db *engine.Database) core.Source

// DefaultPolicy: Premium databases get DTA, Basic get MI, Standard get DTA
// once their workload is substantial enough to justify the overhead.
func DefaultPolicy(db *engine.Database) core.Source {
	switch db.Tier() {
	case engine.TierPremium:
		return core.SourceDTA
	case engine.TierBasic:
		return core.SourceMI
	default:
		if db.QueryStore().Len() >= 12 {
			return core.SourceDTA
		}
		return core.SourceMI
	}
}

// Config tunes the control plane.
type Config struct {
	SnapshotEvery     time.Duration
	AnalyzeEvery      time.Duration
	DropScanEvery     time.Duration
	ValidationWindow  time.Duration
	RecommendationTTL time.Duration
	MaxRetries        int
	RetryBackoff      time.Duration
	StuckAfter        time.Duration

	Validator validate.Config
	Dropper   dropper.Config
	MI        mi.Config
	Policy    RecommenderPolicy
	// MaxCreatesPerAnalysis bounds new create recommendations per run.
	MaxCreatesPerAnalysis int
	// Maintenance restricts automatic implementation to a daily window
	// (§8.2: "implementing indexes during low periods of activity or on a
	// pre-specified schedule"). Zero value = no restriction.
	Maintenance MaintenanceWindow
	// IndexNamePrefix, when set, prefixes every auto-created index name
	// (§8.2: customers asked to control the naming scheme).
	IndexNamePrefix string
	// Metrics, when non-nil, receives the control plane's
	// self-instrumentation (transition counters, validation verdicts,
	// step latency) and backs the tuning-session tracer. Nil disables
	// both without branching at call sites.
	Metrics *metrics.Registry
}

// DefaultConfig returns production-like settings scaled for simulation.
func DefaultConfig() Config {
	return Config{
		SnapshotEvery:         30 * time.Minute,
		AnalyzeEvery:          6 * time.Hour,
		DropScanEvery:         24 * time.Hour,
		ValidationWindow:      12 * time.Hour,
		RecommendationTTL:     7 * 24 * time.Hour,
		MaxRetries:            3,
		RetryBackoff:          15 * time.Minute,
		StuckAfter:            48 * time.Hour,
		Validator:             validate.DefaultConfig(),
		Dropper:               dropper.DefaultConfig(),
		MI:                    mi.DefaultConfig(),
		Policy:                DefaultPolicy,
		MaxCreatesPerAnalysis: 2,
	}
}

// managed binds an engine database to its per-database recommender state.
type managed struct {
	db     *engine.Database
	server string
	miRec  *mi.Recommender
}

// ControlPlane drives the auto-indexing lifecycle for a region's
// databases.
type ControlPlane struct {
	cfg    Config
	clock  sim.Clock
	store  Store
	hub    *telemetry.Hub
	reg    *metrics.Registry
	tracer *trace.Tracer

	mu     sync.Mutex
	dbs    map[string]*managed
	server map[string]ServerSettings
	recSeq int64
	// classifier is the fleet-wide low-impact classifier trained on
	// validation outcomes across all managed databases (§5.2).
	classifier *mathx.Logistic
}

// New creates a control plane.
func New(cfg Config, clock sim.Clock, store Store, hub *telemetry.Hub) *ControlPlane {
	if cfg.AnalyzeEvery == 0 {
		reg := cfg.Metrics
		cfg = DefaultConfig()
		cfg.Metrics = reg
	}
	if hub == nil {
		hub = telemetry.NewHub(0)
	}
	return &ControlPlane{
		cfg:        cfg,
		clock:      clock,
		store:      store,
		hub:        hub,
		reg:        cfg.Metrics,
		tracer:     trace.New(hub, clock, cfg.Metrics),
		dbs:        make(map[string]*managed),
		server:     make(map[string]ServerSettings),
		recSeq:     recoverRecSeq(store),
		classifier: mathx.NewLogistic(4),
	}
}

// recoverRecSeq resumes the recommendation ID sequence from the highest
// persisted ID. A control plane restarted over an existing store must
// never restart the sequence at zero: reissued IDs would silently
// overwrite live records via SaveRecord's upsert semantics.
func recoverRecSeq(store Store) int64 {
	var max int64
	for _, r := range store.Records(nil) {
		i := strings.LastIndex(r.ID, "-")
		if i < 0 {
			continue
		}
		if n, err := strconv.ParseInt(r.ID[i+1:], 10, 64); err == nil && n > max {
			max = n
		}
	}
	return max
}

// Telemetry exposes the hub.
func (cp *ControlPlane) Telemetry() *telemetry.Hub { return cp.hub }

// Store exposes the state store (read-mostly; for dashboards and tests).
func (cp *ControlPlane) StateStore() Store { return cp.store }

// SetServerSettings configures a logical server's defaults (§2).
func (cp *ControlPlane) SetServerSettings(server string, s ServerSettings) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.server[server] = s
}

// Manage registers a database with the service. Every database in the
// region is managed; settings control only whether recommendations are
// auto-implemented.
func (cp *ControlPlane) Manage(db *engine.Database, server string, settings Settings) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	m := &managed{db: db, server: server, miRec: mi.NewWithClassifier(db, cp.cfg.MI, cp.classifier)}
	// Surface plan-cost-cache churn from stats refreshes in fleet telemetry:
	// a tenant whose stats rebuild every pass never keeps a warm cache.
	db.SetStatsRefreshHook(func(table, column string) {
		cp.hub.Inc("costcache.stats_invalidations", 1)
	})
	cp.dbs[strings.ToLower(db.Name())] = m
	now := cp.clock.Now()
	if ds, ok := cp.store.GetDatabase(db.Name()); ok {
		// Re-attach after a control-plane restart: keep persisted state.
		ds.Settings = settings
		cp.store.SaveDatabase(ds)
		return
	}
	cp.store.SaveDatabase(&DatabaseState{
		Name:          db.Name(),
		Server:        server,
		Settings:      settings,
		ObservedSince: now,
	})
}

// managedDB fetches a managed database by name.
func (cp *ControlPlane) managedDB(name string) (*managed, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	m, ok := cp.dbs[strings.ToLower(name)]
	return m, ok
}

// sortedManaged returns managed databases in name order for determinism.
func (cp *ControlPlane) sortedManaged() []*managed {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]*managed, 0, len(cp.dbs))
	for _, m := range cp.dbs {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].db.Name() < out[j].db.Name() })
	return out
}

// Step advances every micro-service by one round. Fleet simulations
// interleave Step with workload replay; RunLoop drives it on wall time.
func (cp *ControlPlane) Step() { cp.stepFiltered(nil) }

// StepFor advances the micro-services for the subset of managed databases
// accepted by include, which is called with lowercased database names.
// The per-database work and its order are exactly Step restricted to that
// subset: excluded databases are skipped wholesale, included ones see the
// identical service sequence. The fleet's scale mode steps only tenants
// that replayed workload this hour or still carry a live recommendation
// record; because that include set is a function of the activity model and
// the persisted records — never of which tenants happen to be resident —
// a filtered run stays bit-identical under any hibernation pressure.
// A nil include means every database, i.e. StepFor(nil) == Step().
func (cp *ControlPlane) StepFor(include func(name string) bool) {
	cp.stepFiltered(include)
}

func (cp *ControlPlane) stepFiltered(include func(string) bool) {
	start := cp.clock.Now()
	cp.snapshotService(include)
	cp.analysisService(include)
	cp.dropScanService(include)
	cp.implementService(include)
	cp.validationService(include)
	cp.revertService(include)
	cp.expiryService(include)
	cp.healthService(include)
	// Index builds and what-if costing advance virtual time, so this is
	// the tuning work one step imposed on the fleet's clock.
	cp.reg.Histogram(descStepMillis).ObserveDuration(cp.clock.Now().Sub(start))
}

// stepIncludes reports whether a database participates in a filtered step.
func stepIncludes(include func(string) bool, name string) bool {
	return include == nil || include(strings.ToLower(name))
}

// DatabasesWithOpenRecords returns the lowercased names of databases that
// hold at least one non-terminal recommendation record. The scale loop
// keeps these tenants stepped (and therefore resident) even in hours the
// activity model leaves them idle, so every in-flight state machine
// advances on the same schedule regardless of hibernation pressure.
func (cp *ControlPlane) DatabasesWithOpenRecords() map[string]bool {
	open := make(map[string]bool)
	for _, r := range cp.store.Records(func(r *Record) bool { return !r.State.Terminal() }) {
		open[strings.ToLower(r.Database)] = true
	}
	return open
}

// RunLoop drives Step every interval until stop is closed (for the daemon
// binary running on a wall clock).
func (cp *ControlPlane) RunLoop(interval time.Duration, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		cp.Step()
		cp.clock.Sleep(interval)
	}
}

// ---- micro-services ----

// snapshotService takes periodic MI DMV snapshots (§5.2).
func (cp *ControlPlane) snapshotService(include func(string) bool) {
	now := cp.clock.Now()
	for _, m := range cp.sortedManaged() {
		if !stepIncludes(include, m.db.Name()) {
			continue
		}
		ds, ok := cp.store.GetDatabase(m.db.Name())
		if !ok {
			continue
		}
		if now.Sub(ds.LastSnapshot) < cp.cfg.SnapshotEvery {
			continue
		}
		m.miRec.TakeSnapshot()
		ds.LastSnapshot = now
		cp.store.SaveDatabase(ds)
		cp.hub.Inc("snapshots", 1)
	}
}

// analysisService invokes the configured recommender per database and
// files Active create recommendations.
func (cp *ControlPlane) analysisService(include func(string) bool) {
	now := cp.clock.Now()
	for _, m := range cp.sortedManaged() {
		if !stepIncludes(include, m.db.Name()) {
			continue
		}
		ds, ok := cp.store.GetDatabase(m.db.Name())
		if !ok || now.Sub(ds.LastAnalysis) < cp.cfg.AnalyzeEvery {
			continue
		}
		ds.LastAnalysis = now
		source := cp.cfg.Policy(m.db)
		// One tuning-session span per analyzed database; the DTA / MI
		// pass runs as a child span. Analysis is serial (inside Step),
		// so span order in the hub is deterministic.
		sp := cp.tracer.Start(m.db.Name(), "tuning-session")
		sp.Annotate("source", source)
		// Workload provenance: did live wire-protocol traffic contribute
		// to the Query Store this pass mines? Annotated only when live
		// executions exist, so purely simulated runs keep their span
		// snapshots byte-identical.
		totalExecs, liveExecs := m.db.QueryStore().ExecutionTotals()
		if liveExecs > 0 {
			workload := "mixed"
			if liveExecs == totalExecs {
				workload = "live"
			}
			sp.Annotate("workload", workload)
			cp.hub.Inc("analysis.live_workload", 1)
		}
		var cands []core.Candidate
		switch source {
		case core.SourceDTA:
			ds.DTASession = "running"
			cp.store.SaveDatabase(ds)
			opts := dta.OptionsForTier(m.db.Tier())
			// Abort the session if it starts interfering with the user's
			// workload (§5.3.1: wait statistics / blocked-process signals;
			// here the engine's convoy counter is the interference proxy).
			convoyAtStart := m.db.ConvoyBlockedStatements()
			opts.AbortCheck = func() bool {
				return m.db.ConvoyBlockedStatements() > convoyAtStart+10
			}
			dsp := sp.Child("dta")
			// Per-pass plan-cost-cache effectiveness: analysis is serial
			// inside Step, so before/after counter deltas belong to this run.
			mreg := m.db.Metrics()
			hitsBefore := mreg.Counter(costcache.DescHits).Value()
			missesBefore := mreg.Counter(costcache.DescMisses).Value()
			res, err := dta.Run(m.db, opts)
			if err != nil && !errors.Is(err, dta.ErrAborted) {
				dsp.Annotate("error", err)
				dsp.End()
				sp.End()
				ds.DTASession = "error"
				cp.store.SaveDatabase(ds)
				cp.incident(m.db.Name(), "", "dta-session-failure", err.Error())
				continue
			}
			if res != nil {
				cands = res.Recommendations
				dsp.Annotate("whatif_calls", res.WhatIfCalls)
				dsp.Annotate("cache_hits", mreg.Counter(costcache.DescHits).Value()-hitsBefore)
				dsp.Annotate("cache_misses", mreg.Counter(costcache.DescMisses).Value()-missesBefore)
				dsp.Annotate("aborted", res.Aborted)
				cp.hub.Inc("dta.sessions", 1)
				cp.hub.Inc("dta.whatif_calls", res.WhatIfCalls)
				if res.Aborted {
					cp.hub.Inc("dta.aborted", 1)
				}
			}
			dsp.End()
			ds.DTASession = "completed"
		default:
			msp := sp.Child("mi")
			cands = m.miRec.Recommend()
			msp.End()
			cp.hub.Inc("mi.analyses", 1)
		}
		cp.store.SaveDatabase(ds)
		created, filedLive := 0, 0
		for _, c := range cands {
			if cp.cfg.MaxCreatesPerAnalysis > 0 && created >= cp.cfg.MaxCreatesPerAnalysis {
				break
			}
			if cp.fileCreateRecommendation(m, c, now) {
				created++
				if liveExecs > 0 && candidateLiveDriven(m.db, c) {
					filedLive++
				}
			}
		}
		sp.Annotate("candidates", len(cands))
		sp.Annotate("filed", created)
		if liveExecs > 0 {
			sp.Annotate("filed_live", filedLive)
			if filedLive > 0 {
				cp.hub.Inc("recommendations.live_driven", int64(filedLive))
			}
		}
		sp.End()
	}
}

// candidateLiveDriven reports whether any query the candidate targets
// was executed through the serving path — i.e. live client traffic
// contributed evidence for this recommendation.
func candidateLiveDriven(db *engine.Database, c core.Candidate) bool {
	qs := db.QueryStore()
	for _, qh := range c.ImpactedQueries {
		if qs.QueryLiveExecutions(qh) > 0 {
			return true
		}
	}
	return false
}

// fileCreateRecommendation files one Active create recommendation unless a
// live or succeeded duplicate exists.
func (cp *ControlPlane) fileCreateRecommendation(m *managed, c core.Candidate, now time.Time) bool {
	sig := c.Def.Signature()
	dup := cp.store.Records(func(r *Record) bool {
		if r.Database != m.db.Name() || r.Action != core.ActionCreateIndex {
			return false
		}
		sameShape := r.Index.Signature() == sig || strings.EqualFold(r.Index.Name, c.Def.Name)
		// A live record with the same key columns also blocks: were both
		// implemented in the same step, the fleet would end up with two
		// key-identical auto-indexes (the expiry service's same-key
		// invalidation only sees Active records, not ones already racing
		// through Implementing/Retry).
		sameKeyLive := !r.State.Terminal() &&
			strings.EqualFold(r.Index.Table, c.Def.Table) && r.Index.SameKey(c.Def)
		if !sameShape && !sameKeyLive {
			return false
		}
		// Live records block duplicates; so do successes (the index exists)
		// and reverts (validation already proved this index regresses —
		// re-implementing it would loop create/revert forever).
		return !r.State.Terminal() || r.State == StateSuccess || r.State == StateReverted
	})
	if len(dup) > 0 {
		return false
	}
	// Also skip if a structurally identical index already exists.
	for _, e := range m.db.IndexDefs() {
		if strings.EqualFold(e.Table, c.Def.Table) && e.SameKey(c.Def) {
			return false
		}
	}
	cp.mu.Lock()
	cp.recSeq++
	id := fmt.Sprintf("rec-%s-%06d", strings.ToLower(m.db.Name()), cp.recSeq)
	cp.mu.Unlock()
	rec := &Record{
		Recommendation: core.Recommendation{
			ID:                id,
			Database:          m.db.Name(),
			Action:            core.ActionCreateIndex,
			Index:             c.Def,
			EstImprovement:    c.EstImprovement,
			EstImprovementPct: c.EstImprovementPct,
			EstSizeBytes:      c.EstSizeBytes,
			ImpactedQueries:   c.ImpactedQueries,
			Source:            c.Source,
			Features:          c.Features,
			CreatedAt:         now,
		},
		State:     StateActive,
		UpdatedAt: now,
	}
	cp.store.SaveRecord(rec)
	cp.hub.Inc("recommendations.create", 1)
	cp.hub.Emit(telemetry.Event{At: now, Database: m.db.Name(), Kind: "recommendation", Detail: "create " + c.Def.Name})
	return true
}

// dropScanService runs the §5.4 drop analysis on its own cadence.
func (cp *ControlPlane) dropScanService(include func(string) bool) {
	now := cp.clock.Now()
	for _, m := range cp.sortedManaged() {
		if !stepIncludes(include, m.db.Name()) {
			continue
		}
		ds, ok := cp.store.GetDatabase(m.db.Name())
		if !ok || now.Sub(ds.LastDropScan) < cp.cfg.DropScanEvery {
			continue
		}
		ds.LastDropScan = now
		cp.store.SaveDatabase(ds)
		for _, cand := range dropper.Analyze(m.db, ds.ObservedSince, cp.cfg.Dropper) {
			dup := cp.store.Records(func(r *Record) bool {
				return r.Database == m.db.Name() && r.Action == core.ActionDropIndex &&
					strings.EqualFold(r.Index.Name, cand.Def.Name) && !r.State.Terminal()
			})
			if len(dup) > 0 {
				continue
			}
			cp.mu.Lock()
			cp.recSeq++
			id := fmt.Sprintf("rec-%s-%06d", strings.ToLower(m.db.Name()), cp.recSeq)
			cp.mu.Unlock()
			rec := &Record{
				Recommendation: core.Recommendation{
					ID:        id,
					Database:  m.db.Name(),
					Action:    core.ActionDropIndex,
					Index:     cand.Def,
					Source:    core.SourceDrop,
					CreatedAt: now,
				},
				State:     StateActive,
				SubState:  string(cand.Reason),
				UpdatedAt: now,
			}
			cp.store.SaveRecord(rec)
			cp.hub.Inc("recommendations.drop", 1)
		}
	}
}
