package sqlparser

import (
	"strings"
	"testing"
	"testing/quick"

	"autoindex/internal/value"
)

func TestParseSelectBasics(t *testing.T) {
	stmt := MustParse(`SELECT id, name FROM users WHERE age >= 21 AND city = 'NYC' ORDER BY name DESC`)
	s, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if len(s.Items) != 2 || s.Items[0].Col.Column != "id" {
		t.Fatalf("items: %+v", s.Items)
	}
	if s.From.Table != "users" {
		t.Fatalf("from: %+v", s.From)
	}
	if len(s.Where) != 2 || s.Where[0].Op != OpGE || s.Where[1].Val.S != "NYC" {
		t.Fatalf("where: %+v", s.Where)
	}
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Fatalf("orderby: %+v", s.OrderBy)
	}
}

func TestParseTopStarAggregates(t *testing.T) {
	s := MustParse(`SELECT TOP 10 * FROM t`).(*SelectStmt)
	if s.Top != 10 || !s.Items[0].Star {
		t.Fatalf("%+v", s)
	}
	s = MustParse(`SELECT status, COUNT(*), SUM(amount), AVG(x), MIN(y), MAX(z) FROM t GROUP BY status`).(*SelectStmt)
	wantAggs := []AggFunc{AggNone, AggCount, AggSum, AggAvg, AggMin, AggMax}
	for i, w := range wantAggs {
		if s.Items[i].Agg != w {
			t.Fatalf("item %d agg = %v, want %v", i, s.Items[i].Agg, w)
		}
	}
	if len(s.GroupBy) != 1 {
		t.Fatalf("groupby: %+v", s.GroupBy)
	}
	if _, err := Parse(`SELECT COUNT(x) FROM t`); err != nil {
		t.Fatalf("COUNT(col): %v", err)
	}
}

func TestParseJoinWithAliases(t *testing.T) {
	s := MustParse(`SELECT o.id, c.name FROM orders o JOIN customers AS c ON o.cust_id = c.id WHERE c.region = 'east'`).(*SelectStmt)
	if s.From.Alias != "o" {
		t.Fatalf("alias: %+v", s.From)
	}
	if len(s.Joins) != 1 || s.Joins[0].Table.Alias != "c" {
		t.Fatalf("joins: %+v", s.Joins)
	}
	j := s.Joins[0]
	if j.Left.Table != "o" || j.Right.Column != "id" {
		t.Fatalf("join cols: %+v", j)
	}
	// INNER JOIN spelling.
	if _, err := Parse(`SELECT a FROM x INNER JOIN y ON x.a = y.b`); err != nil {
		t.Fatal(err)
	}
}

func TestParseBetweenExpandsToConjuncts(t *testing.T) {
	s := MustParse(`SELECT a FROM t WHERE b BETWEEN 3 AND 9`).(*SelectStmt)
	if len(s.Where) != 2 || s.Where[0].Op != OpGE || s.Where[1].Op != OpLE {
		t.Fatalf("between: %+v", s.Where)
	}
	if s.Where[0].Val.I != 3 || s.Where[1].Val.I != 9 {
		t.Fatalf("bounds: %+v", s.Where)
	}
}

func TestParseWrites(t *testing.T) {
	ins := MustParse(`INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`).(*InsertStmt)
	if len(ins.Rows) != 2 || ins.Rows[1][1].S != "y" {
		t.Fatalf("%+v", ins)
	}
	up := MustParse(`UPDATE t SET a = 5, b = 'z' WHERE id = 3`).(*UpdateStmt)
	if len(up.Set) != 2 || up.Set[0].Val.I != 5 || len(up.Where) != 1 {
		t.Fatalf("%+v", up)
	}
	del := MustParse(`DELETE FROM t WHERE a < 0`).(*DeleteStmt)
	if len(del.Where) != 1 || del.Where[0].Op != OpLT {
		t.Fatalf("%+v", del)
	}
	blk := MustParse(`BULK INSERT t FROM DATASOURCE feed1`).(*BulkInsertStmt)
	if blk.Source != "feed1" {
		t.Fatalf("%+v", blk)
	}
}

func TestParseDDL(t *testing.T) {
	ct := MustParse(`CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR, v FLOAT, PRIMARY KEY (id))`).(*CreateTableStmt)
	if ct.Table.Name != "t" || len(ct.Table.Columns) != 3 || ct.Table.Columns[0].Nullable {
		t.Fatalf("%+v", ct.Table)
	}
	if len(ct.Table.PrimaryKey) != 1 {
		t.Fatalf("%+v", ct.Table.PrimaryKey)
	}
	ci := MustParse(`CREATE UNIQUE NONCLUSTERED INDEX ix ON t (a, b DESC) INCLUDE (c, d) WITH (ONLINE = ON)`).(*CreateIndexStmt)
	if !ci.Index.Unique || len(ci.Index.KeyColumns) != 2 || len(ci.Index.IncludedColumns) != 2 || !ci.Online {
		t.Fatalf("%+v", ci)
	}
	di := MustParse(`DROP INDEX ix ON t`).(*DropIndexStmt)
	if di.Name != "ix" || di.Table != "t" {
		t.Fatalf("%+v", di)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEC x FROM t`,
		`SELECT FROM t`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t WHERE a ==`,
		`INSERT INTO t VALUES`,
		`SELECT a FROM t JOIN u ON a < b`, // only equi-joins
		`SELECT a FROM t; SELECT b FROM t`,
		`UPDATE t SET`,
		`SELECT TOP 0 a FROM t`,
		`SELECT a FROM t WHERE a = 'unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCommentsAndBrackets(t *testing.T) {
	s := MustParse("SELECT a FROM [my table] -- trailing comment\n WHERE a = 1").(*SelectStmt)
	if s.From.Table != "my table" {
		t.Fatalf("%+v", s.From)
	}
}

func TestSQLRoundTrip(t *testing.T) {
	srcs := []string{
		`SELECT TOP 5 a, b FROM t WHERE c = 1 AND d > 2.5 ORDER BY a`,
		`SELECT o.id FROM orders o JOIN c ON o.x = c.y WHERE c.z = 'v' GROUP BY o.id`,
		`INSERT INTO t (a) VALUES (1)`,
		`UPDATE t SET a = 1 WHERE b = 'x'`,
		`DELETE FROM t WHERE a >= 0`,
		`BULK INSERT t FROM DATASOURCE src`,
		`CREATE NONCLUSTERED INDEX ix ON t (a) INCLUDE (b)`,
	}
	for _, src := range srcs {
		stmt := MustParse(src)
		re, err := Parse(stmt.SQL())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", src, stmt.SQL(), err)
		}
		if re.SQL() != stmt.SQL() {
			t.Fatalf("round trip unstable: %q vs %q", re.SQL(), stmt.SQL())
		}
	}
}

func TestFingerprintIgnoresLiterals(t *testing.T) {
	a := MustParse(`SELECT a FROM t WHERE b = 1 AND c > 5`)
	b := MustParse(`SELECT a FROM t WHERE b = 99 AND c > -3`)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same template must share fingerprint")
	}
	c := MustParse(`SELECT a FROM t WHERE b = 1 AND c < 5`)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different operators must differ")
	}
	// Multi-row inserts share the single-row fingerprint.
	i1 := MustParse(`INSERT INTO t (a) VALUES (1)`)
	i2 := MustParse(`INSERT INTO t (a) VALUES (1), (2), (3)`)
	if i1.Fingerprint() != i2.Fingerprint() {
		t.Fatal("batch size must not fragment fingerprints")
	}
}

func TestIsWriteAndWritePredicates(t *testing.T) {
	if IsWrite(MustParse(`SELECT a FROM t`)) {
		t.Fatal("select is not a write")
	}
	for _, src := range []string{
		`INSERT INTO t (a) VALUES (1)`,
		`UPDATE t SET a = 1`,
		`DELETE FROM t`,
		`BULK INSERT t FROM DATASOURCE s`,
	} {
		if !IsWrite(MustParse(src)) {
			t.Errorf("%q is a write", src)
		}
	}
	if WritePredicates(MustParse(`UPDATE t SET a = 1`)) != nil {
		t.Fatal("update without WHERE has no predicates")
	}
	if len(WritePredicates(MustParse(`DELETE FROM t WHERE a = 1`))) != 1 {
		t.Fatal("delete predicates")
	}
}

// Property: fingerprints are stable under literal substitution for a
// family of generated predicates.
func TestQuickFingerprintLiteralInvariance(t *testing.T) {
	f := func(v1, v2 int32, s1, s2 string) bool {
		s1 = strings.ReplaceAll(s1, "'", "")
		s2 = strings.ReplaceAll(s2, "'", "")
		q1 := MustParse(
			`SELECT a FROM t WHERE b = ` + value.NewInt(int64(v1)).String() +
				` AND c = ` + value.NewString(s1).String())
		q2 := MustParse(
			`SELECT a FROM t WHERE b = ` + value.NewInt(int64(v2)).String() +
				` AND c = ` + value.NewString(s2).String())
		return q1.Fingerprint() == q2.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeNumbersAndFloats(t *testing.T) {
	s := MustParse(`SELECT a FROM t WHERE b = -5 AND c > -2.5`).(*SelectStmt)
	if s.Where[0].Val.I != -5 {
		t.Fatalf("%+v", s.Where[0])
	}
	if s.Where[1].Val.F != -2.5 {
		t.Fatalf("%+v", s.Where[1])
	}
}

func TestNullLiteral(t *testing.T) {
	s := MustParse(`SELECT a FROM t WHERE b = NULL`).(*SelectStmt)
	if !s.Where[0].Val.IsNull() {
		t.Fatalf("%+v", s.Where[0])
	}
}
