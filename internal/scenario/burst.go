package scenario

import (
	"time"

	"autoindex/internal/fleet"
)

// Flash-crowd tuning: two five-hour bursts multiply the statement rate
// twelvefold while long-running readers pin shared schema locks — the
// worst time for an online index build to want its short exclusive
// phase. The paper's answer is low-priority locking (§8.3): tuning
// never convoys user statements, no matter the traffic.
const (
	burstDatabases    = 3
	burstDays         = 5
	burstBaseStmts    = 12
	burstFactor       = 12
	burstLockHold     = 30 * time.Minute
	burstWindowAStart = 40
	burstWindowBStart = 80
	burstWindowLen    = 5
)

// burstHour reports whether virtual hour h is inside a burst window.
// It is a pure function of the hour, as the StatementsFor contract
// requires (it runs inside parallel tenant workers).
func burstHour(h int) bool {
	return (h >= burstWindowAStart && h < burstWindowAStart+burstWindowLen) ||
		(h >= burstWindowBStart && h < burstWindowBStart+burstWindowLen)
}

type burstScenario struct{}

func (burstScenario) Name() string { return "flash-crowd" }
func (burstScenario) Describe() string {
	return "traffic bursts and held shared locks stress online index builds' low-priority locking"
}

func (s burstScenario) Run(opts Options) (*Result, error) {
	seed := deriveSeed(opts.Seed, s.Name())
	var convoyBaseline int64
	hooks := fleet.OpsHooks{
		AfterBuild: func(ctx *fleet.OpsHookContext) {
			for _, tn := range ctx.Fleet.Tenants {
				convoyBaseline += tn.DB.ConvoyBlockedStatements()
			}
		},
		BeforeHour: func(ctx *fleet.OpsHookContext) {
			if !burstHour(ctx.Hour) {
				return
			}
			// The crowd arrives mid-transaction: long-running readers
			// keep shared schema locks on every tenant's busiest table,
			// so any build wanting its exclusive phase must yield.
			for _, tn := range ctx.Fleet.Tenants {
				for _, table := range tn.DB.TableNames() {
					tn.DB.Locks().HoldShared(table, tn.DB.Clock().Now().Add(burstLockHold))
					break
				}
			}
		},
		StatementsFor: func(hour int, _ string) int {
			if burstHour(hour) {
				return burstBaseStmts * burstFactor
			}
			return -1
		},
	}
	f, res, err := runFleet(opts, seed, runConfig{
		databases:         burstDatabases,
		days:              burstDays,
		statementsPerHour: burstBaseStmts,
		hooks:             hooks,
	})
	if err != nil {
		return nil, err
	}

	var convoyed int64
	var statements int64
	for _, tn := range f.Tenants {
		convoyed += tn.DB.ConvoyBlockedStatements()
		statements += tn.DB.ExecCount()
	}
	convoyed -= convoyBaseline

	v := newVerdict(s.Name(), opts)
	v.check("no-user-convoys", convoyed == 0,
		"%d user statements convoyed behind tuning locks during the run", convoyed)
	v.check("tuner-active", res.Stats.CreatesImplemented >= 1,
		"%d indexes built despite burst-held locks", res.Stats.CreatesImplemented)
	auditChecks(&v, res)
	v.evidence("burst-factor", burstFactor)
	v.evidence("statements", float64(statements))
	v.evidence("convoyed-statements", float64(convoyed))
	v.evidence("creates-implemented", float64(res.Stats.CreatesImplemented))
	v.evidence("revert-rate", res.Stats.RevertRate)
	v.finalize()
	return &Result{Verdict: v, Report: v.Format()}, nil
}
