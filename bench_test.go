package autoindex

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 and EXPERIMENTS.md):
//
//	BenchmarkFig6Premium / BenchmarkFig6Standard — Fig. 6(a)/(b)
//	BenchmarkOpsStats                            — §8.1 operational statistics
//	BenchmarkRevertRate                          — §8.1 revert analysis (~11%)
//	BenchmarkMIAblation                          — §5.2 pipeline-stage ablation
//	BenchmarkDTAOverheads                        — §5.3.1 sampled-stats reduction
//	BenchmarkRevertPolicies                      — §6 conservative vs aggregate
//
// The experiments report their headline numbers as custom benchmark
// metrics (shares in %, rates, counts); absolute values are simulator-
// scale, the *shape* is the reproduction target.

import (
	"fmt"
	"testing"
	"time"

	"autoindex/internal/engine"
	"autoindex/internal/experiment"
	"autoindex/internal/fleet"
	"autoindex/internal/recommend/dta"
	"autoindex/internal/recommend/mi"
	"autoindex/internal/sim"
	"autoindex/internal/validate"
	"autoindex/internal/workload"
)

// fig6Bench runs the Fig. 6 experiment on a small fleet of the given tier.
func fig6Bench(b *testing.B, tier engine.Tier, label string) {
	b.Helper()
	cfg := experiment.DefaultFig6Config()
	cfg.PhaseStatements = 400
	cfg.PhaseDuration = 12 * time.Hour
	for i := 0; i < b.N; i++ {
		f, err := fleet.Build(fleet.Spec{Databases: 4, Tier: tier, Seed: 777 + int64(i), UserIndexes: true})
		if err != nil {
			b.Fatal(err)
		}
		sum := f.RunFig6(label, cfg)
		b.ReportMetric(sum.Share[experiment.WinnerDTA], "dta_win_%")
		b.ReportMetric(sum.Share[experiment.WinnerMI], "mi_win_%")
		b.ReportMetric(sum.Share[experiment.WinnerUser], "user_win_%")
		b.ReportMetric(sum.Share[experiment.WinnerComparable], "comparable_%")
		b.ReportMetric(sum.AvgImprove[experiment.WinnerDTA], "dta_improve_%")
		b.ReportMetric(sum.AvgImprove[experiment.WinnerMI], "mi_improve_%")
		b.ReportMetric(sum.AvgImprove[experiment.WinnerUser], "user_improve_%")
	}
}

// BenchmarkFig6Premium regenerates Fig. 6(a): premium-tier comparison of
// DTA / MI / User on B-instances (paper: DTA 42%, MI 13%, User 15%).
func BenchmarkFig6Premium(b *testing.B) { fig6Bench(b, engine.TierPremium, "premium") }

// BenchmarkFig6Standard regenerates Fig. 6(b): standard-tier comparison
// (paper: DTA 27%, MI 6%, User 10%).
func BenchmarkFig6Standard(b *testing.B) { fig6Bench(b, engine.TierStandard, "standard") }

// BenchmarkOpsStats regenerates the §8.1 operational statistics: create
// vs drop recommendation volumes, implementations, queries >2x faster and
// databases with >50% CPU reduction.
func BenchmarkOpsStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := fleet.Spec{Databases: 5, MixedTiers: true, Seed: 20181001 + int64(i), UserIndexes: true}
		f, err := fleet.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		cfg := fleet.DefaultOpsConfig()
		cfg.Days = 6
		cfg.StatementsPerHour = 20
		cfg.NewTenantEvery = 72 * time.Hour
		res, err := f.RunOps(spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.CreateRecommended), "create_recs")
		b.ReportMetric(float64(res.Stats.DropRecommended), "drop_recs")
		b.ReportMetric(float64(res.Stats.CreatesImplemented), "creates")
		b.ReportMetric(float64(res.Stats.DropsImplemented), "drops")
		b.ReportMetric(float64(res.QueriesTwiceFaster), "queries_2x_faster")
		b.ReportMetric(float64(res.DatabasesHalvedCPU), "dbs_cpu_halved")
		b.ReportMetric(float64(res.SteadyStateDatabases), "steady_state_dbs")
	}
}

// BenchmarkRevertRate regenerates the §8.1 revert analysis: ~11% of
// automated actions reverted, skewed to write regressions for MI.
func BenchmarkRevertRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := fleet.Spec{Databases: 6, MixedTiers: true, Seed: 555 + int64(i), UserIndexes: true}
		f, err := fleet.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		cfg := fleet.DefaultOpsConfig()
		cfg.Days = 7
		cfg.StatementsPerHour = 25
		cfg.AutoImplementFraction = 1.0
		res, err := f.RunOps(spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		hub := res.Plane.Telemetry()
		b.ReportMetric(res.Stats.RevertRate*100, "revert_rate_%")
		b.ReportMetric(float64(hub.Counter("reverts.write_regression")), "write_regr_reverts")
		b.ReportMetric(float64(hub.Counter("reverts.select_regression")), "select_regr_reverts")
		b.ReportMetric(float64(hub.Counter("reverts.write_regression.mi")), "mi_write_reverts")
	}
}

// miBenchDB builds the database used by the MI ablation.
func miBenchDB(b *testing.B, seed int64) (*engine.Database, *sim.VirtualClock) {
	b.Helper()
	clock := sim.NewClock()
	db := engine.New(engine.DefaultConfig("miab", engine.TierBasic, seed), clock)
	if _, err := db.Exec(`CREATE TABLE hits (id BIGINT NOT NULL, site BIGINT, code BIGINT, bytes FLOAT, PRIMARY KEY (id))`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := db.Exec(fmt.Sprintf(
			`INSERT INTO hits (id, site, code, bytes) VALUES (%d, %d, %d, %d.5)`, i, i%200, i%10, i)); err != nil {
			b.Fatal(err)
		}
	}
	db.RebuildAllStats()
	return db, clock
}

// BenchmarkMIAblation measures the §5.2 pipeline stages: how many
// candidates survive with the full pipeline versus with the slope test,
// merging and classifier disabled.
func BenchmarkMIAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db, clock := miBenchDB(b, int64(i))
		full := mi.New(db, mi.DefaultConfig())
		ablCfg := mi.DefaultConfig()
		ablCfg.DisableSlopeTest = true
		ablCfg.DisableMerging = true
		ablCfg.ClassifierThreshold = 0
		ablCfg.MinSeeks = 1
		abl := mi.New(db, ablCfg)
		for s := 0; s < 4; s++ {
			for q := 0; q < 40; q++ {
				db.Exec(fmt.Sprintf(`SELECT id, bytes FROM hits WHERE site = %d`, (s*40+q)%200))       //nolint:errcheck
				db.Exec(fmt.Sprintf(`SELECT id FROM hits WHERE site = %d AND code = %d`, q%200, q%10)) //nolint:errcheck
			}
			clock.Advance(time.Hour)
			full.TakeSnapshot()
			abl.TakeSnapshot()
		}
		b.ReportMetric(float64(len(full.Recommend())), "full_pipeline_recs")
		b.ReportMetric(float64(len(abl.Recommend())), "ablated_recs")
	}
}

// BenchmarkDTAOverheads measures the §5.3.1 sampled-statistics reduction:
// the reduced mode creates 2-3x fewer statistics with comparable
// recommendation counts, within the same what-if budget.
func BenchmarkDTAOverheads(b *testing.B) {
	run := func(seed int64, reduce bool) *dta.Result {
		clock := sim.NewClock()
		tn, err := workload.NewTenant(workload.Profile{
			Name: "dtab", Tier: engine.TierStandard, Seed: seed,
		}, clock)
		if err != nil {
			b.Fatal(err)
		}
		tn.Run(12*time.Hour, 400)
		opts := dta.OptionsForTier(engine.TierStandard)
		opts.ReduceSampledStats = reduce
		res, err := dta.Run(tn.DB, opts)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for i := 0; i < b.N; i++ {
		seed := 31337 + int64(i)
		reduced := run(seed, true)
		fullStats := run(seed, false)
		b.ReportMetric(float64(reduced.StatsCreated), "stats_reduced")
		b.ReportMetric(float64(fullStats.StatsCreated), "stats_full")
		b.ReportMetric(float64(len(reduced.Recommendations)), "recs_reduced")
		b.ReportMetric(float64(len(fullStats.Recommendations)), "recs_full")
		b.ReportMetric(float64(reduced.WhatIfCalls), "whatif_calls")
	}
}

// BenchmarkRevertPolicies compares the §6 revert triggers on a workload
// where one statement regresses while a heavier one improves: the
// conservative per-statement policy reverts, the aggregate policy keeps
// the index.
func BenchmarkRevertPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clock := sim.NewClock()
		db := engine.New(engine.DefaultConfig("polbench", engine.TierStandard, 7), clock)
		if _, err := db.Exec(`CREATE TABLE t (id BIGINT NOT NULL, a BIGINT, f FLOAT, PRIMARY KEY (id))`); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 2000; j++ {
			db.Exec(fmt.Sprintf(`INSERT INTO t (id, a, f) VALUES (%d, %d, %d.5)`, j, j%100, j)) //nolint:errcheck
		}
		db.RebuildAllStats()
		clock.Advance(2 * time.Hour)
		phase := func(n int) {
			for k := 0; k < n; k++ {
				db.Exec(fmt.Sprintf(`SELECT id, f FROM t WHERE a = %d`, k%100))         //nolint:errcheck
				db.Exec(fmt.Sprintf(`UPDATE t SET f = %d.25 WHERE id = %d`, k, k%2000)) //nolint:errcheck
				if k%10 == 0 {
					clock.Advance(30 * time.Minute)
				}
			}
		}
		phase(120)
		implAt := clock.Now()
		// The index speeds the big SELECT but taxes every UPDATE.
		db.Exec(`CREATE INDEX ix_a ON t (a) INCLUDE (f) WITH (ONLINE = ON)`) //nolint:errcheck
		phase(120)

		window := 5 * time.Hour
		per := validate.DefaultConfig()
		per.Policy = validate.PolicyPerStatement
		agg := validate.DefaultConfig()
		agg.Policy = validate.PolicyAggregate
		perOut := validate.Validate(db.QueryStore(), "ix_a", true, implAt, window, per)
		aggOut := validate.Validate(db.QueryStore(), "ix_a", true, implAt, window, agg)
		b.ReportMetric(boolMetric(perOut.Revert), "per_stmt_reverts")
		b.ReportMetric(boolMetric(aggOut.Revert), "aggregate_reverts")
		b.ReportMetric(float64(perOut.Analyzed), "queries_analyzed")
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkEngineExec is a microbenchmark of the engine's hot path: a
// point query through the full optimize-compile-execute-record pipeline.
func BenchmarkEngineExec(b *testing.B) {
	r := NewRegion(9)
	db := seedDatabase(b, r, "micro")
	db.Exec(`CREATE INDEX ix_cat ON items (cat) WITH (ONLINE = ON)`) //nolint:errcheck
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(fmt.Sprintf(`SELECT id, price FROM items WHERE cat = %d`, i%150)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhatIfCost is a microbenchmark of the what-if API — DTA's
// dominant cost (§5.3.1).
func BenchmarkWhatIfCost(b *testing.B) {
	r := NewRegion(10)
	db := seedDatabase(b, r, "whatif")
	s := db.NewWhatIfSession()
	s.Catalog().AddHypothetical(mustIndexDef())
	stmt := mustParse(`SELECT id, price FROM items WHERE cat = 7`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Cost(stmt); err != nil {
			b.Fatal(err)
		}
	}
}
