package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"autoindex/internal/controlplane"
	"autoindex/internal/engine"
	"autoindex/internal/faults"
	"autoindex/internal/metrics"
	"autoindex/internal/sim"
	"autoindex/internal/workload"
)

// roundTripCase is one randomized tenant state for the hibernation
// property test: which archetype it stamps from, how long it runs before
// hibernating, how chatty it is, and whether a control plane and fault
// injectors are in the loop.
type roundTripCase struct {
	index      int
	arch       *workload.Archetype
	name       string
	seed       int64
	prefix     int    // hours of history before hibernation
	stmts      int    // statements per active hour
	active     []bool // activity schedule for the 24 post-hibernation hours
	withPlane  bool   // drive a control plane (in-flight recommendations)
	withFaults bool   // arm engine + query-store fault injectors
}

// twin is one of the two identically-seeded tenants a case compares: the
// hibernated one and its continuously-resident control.
type twin struct {
	tn    *workload.Tenant
	clock *sim.VirtualClock
	cp    *controlplane.ControlPlane
}

func newTwin(c *roundTripCase) (*twin, error) {
	clock := sim.NewClock()
	tn, err := workload.NewTenantFromArchetype(c.arch, c.name, c.seed, clock)
	if err != nil {
		return nil, err
	}
	if c.withFaults {
		// Same scope and seed on both twins: identical fault schedules.
		tn.DB.SetFaultInjector(faults.New(c.seed, "engine/"+c.name, map[faults.Point]float64{
			faults.IndexBuildLogFull:     0.1,
			faults.IndexBuildLockTimeout: 0.1,
			faults.IndexBuildAbort:       0.1,
			faults.DropLockTimeout:       0.1,
		}))
		qs := faults.New(c.seed, "querystore/"+c.name, map[faults.Point]float64{
			faults.QueryStoreDropExecution: 0.1,
		})
		tn.DB.QueryStore().SetDropper(func() bool { return qs.Should(faults.QueryStoreDropExecution) })
	}
	tw := &twin{tn: tn, clock: clock}
	if c.withPlane {
		cfg := controlplane.DefaultConfig()
		cfg.AnalyzeEvery = 2 * time.Hour // recommendations in-flight by hibernation time
		cfg.Metrics = metrics.NewRegistry()
		tw.cp = controlplane.New(cfg, clock, controlplane.NewMemStore(), nil)
		tw.cp.Manage(tn.DB, "server-0", controlplane.Settings{AutoCreate: true, AutoDrop: true})
	}
	return tw, nil
}

// hour advances the twin through one barrier exactly the way the scale
// loop does: replay if active, advance the clock, step the control
// plane, park the engine.
func (tw *twin) hour(active bool, stmts int) workload.RunStats {
	var st workload.RunStats
	if active {
		st = tw.tn.Run(0, stmts)
	}
	tw.clock.Advance(time.Hour)
	if tw.cp != nil {
		tw.cp.Step()
	}
	tw.tn.DB.Park()
	return st
}

// recLines renders a twin's recommendation records deterministically.
func (tw *twin) recLines() []string {
	if tw.cp == nil {
		return nil
	}
	var out []string
	for _, r := range tw.cp.ListRecommendations(tw.tn.DB.Name()) {
		out = append(out, fmt.Sprintf("%s %s %s", r.ID, r.Action, r.State))
	}
	for _, r := range tw.cp.History(tw.tn.DB.Name()) {
		out = append(out, fmt.Sprintf("%s %s %s", r.ID, r.Action, r.State))
	}
	return out
}

// TestHibernateRoundTripProperty is the hibernation fidelity property
// test: 500 randomized tenant states — random archetype, mid-run query
// store, optionally in-flight recommendations and armed chaos fault
// injectors — are each serialized at an hour barrier, rehydrated, and
// run for 24 more virtual hours next to a never-hibernated twin. The
// full serialized state (engine catalog, query store, DMVs, telemetry
// counters, workload RNG position) and the recommendation records must
// be byte-identical at the end; any divergence means a snapshot missed
// state the simulation depends on.
func TestHibernateRoundTripProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("500-case property test is slow")
	}
	cases := 500
	if raceEnabled {
		// Full breadth belongs to the plain run; under the race detector a
		// reduced sweep still exercises every concurrency path (parallel
		// cases, plane-driven cases, fault-armed cases).
		cases = 40
	}

	tiers := []engine.Tier{engine.TierStandard, engine.TierBasic, engine.TierPremium}
	var archs []*workload.Archetype
	for a := 0; a < 3; a++ {
		p := workload.Profile{
			Name:        fmt.Sprintf("rtarch%d", a),
			Tier:        tiers[a],
			Seed:        31000 + int64(a)*104729,
			Scale:       0.25,
			UserIndexes: true,
		}
		arch, err := workload.NewArchetype(p, sim.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		archs = append(archs, arch)
	}

	var mu sync.Mutex
	failures := 0
	planeCases, planeCasesWithRecords := 0, 0
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		failures++
		if failures <= 10 {
			t.Errorf(format, args...)
		}
	}

	forEach(0, cases, func(i int) {
		// Child derivation is stateless, so per-case streams are identical
		// regardless of which worker runs the case.
		rng := sim.NewRNG(20260807).Child(fmt.Sprintf("roundtrip/%04d", i))
		c := &roundTripCase{
			index:      i,
			arch:       archs[rng.Intn(len(archs))],
			name:       fmt.Sprintf("rt%04d", i),
			seed:       5000 + int64(i)*7919,
			prefix:     1 + rng.Intn(8),
			stmts:      2 + rng.Intn(8),
			active:     make([]bool, 24),
			withPlane:  i%5 == 0,
			withFaults: i%4 == 0,
		}
		for h := range c.active {
			c.active[h] = rng.Float64() < 0.6
		}

		hib, err := newTwin(c)
		if err != nil {
			fail("case %d: stamping twin: %v", i, err)
			return
		}
		ctl, err := newTwin(c)
		if err != nil {
			fail("case %d: stamping twin: %v", i, err)
			return
		}

		// Shared history: both twins replay the same prefix.
		for h := 0; h < c.prefix; h++ {
			sa := hib.hour(true, c.stmts)
			sb := ctl.hour(true, c.stmts)
			if sa.Statements != sb.Statements || sa.Errors != sb.Errors || sa.Writes != sb.Writes {
				fail("case %d: twins diverged during shared prefix hour %d: %+v vs %+v", i, h, sa, sb)
				return
			}
		}

		// Hibernate one twin at the barrier, release its heavy state, and
		// bring it back. The other twin never leaves memory.
		blob := hibernateTenant(hib.tn)
		hib.tn.Release()
		if err := rehydrateTenant(hib.tn, blob); err != nil {
			fail("case %d: rehydrate: %v", i, err)
			return
		}

		// 24 more virtual hours on both.
		for h := 0; h < 24; h++ {
			sa := hib.hour(c.active[h], c.stmts)
			sb := ctl.hour(c.active[h], c.stmts)
			if sa.Statements != sb.Statements || sa.Errors != sb.Errors || sa.Writes != sb.Writes {
				fail("case %d: twins diverged at post-rehydration hour %d: %+v vs %+v", i, h, sa, sb)
				return
			}
		}

		// Full-state comparison: the hibernated twin's serialized form must
		// be byte-identical to the control's.
		got, want := hibernateTenant(hib.tn), hibernateTenant(ctl.tn)
		if string(got) != string(want) {
			fail("case %d (plane=%v faults=%v prefix=%dh): rehydrated tenant state diverged from never-hibernated twin: snapshot %d vs %d bytes",
				i, c.withPlane, c.withFaults, c.prefix, len(got), len(want))
			return
		}
		recsA, recsB := hib.recLines(), ctl.recLines()
		if fmt.Sprint(recsA) != fmt.Sprint(recsB) {
			fail("case %d: recommendation records diverged:\n%v\nvs\n%v", i, recsA, recsB)
		}
		if c.withPlane {
			mu.Lock()
			planeCases++
			if len(recsA) > 0 {
				planeCasesWithRecords++
			}
			mu.Unlock()
		}
	})
	mu.Lock()
	defer mu.Unlock()
	if failures > 10 {
		t.Errorf("... and %d more failing cases", failures-10)
	}
	// Some workload mixes legitimately yield nothing to recommend, but if
	// most plane cases came up empty the "in-flight recommendations"
	// dimension of the property would be silently unexercised.
	if planeCasesWithRecords*2 < planeCases {
		t.Errorf("only %d of %d control-plane cases produced recommendation records; property under-exercised",
			planeCasesWithRecords, planeCases)
	}
}
