// Package experiment implements the experimentation design & control
// framework of §7.2: a workflow engine where experiment tasks are steps
// stitched into workflows, executed per candidate database with
// monitoring, error detection and cleanup — plus the paper's flagship
// experiment (§7.3 / Fig. 6) comparing the MI recommender, DTA and an
// emulated human administrator on B-instances.
package experiment

import (
	"errors"
	"fmt"
	"time"

	"autoindex/internal/binstance"
	"autoindex/internal/sim"
	"autoindex/internal/workload"
)

// Context carries state between workflow steps.
type Context struct {
	Tenant *workload.Tenant
	Clock  sim.Clock
	RNG    *sim.RNG
	// B is the experiment's B-instance once created.
	B *binstance.BInstance
	// Values holds step outputs by name.
	Values map[string]any
	// Log records step progress for monitoring.
	Log []string
}

func (c *Context) logf(format string, args ...any) {
	c.Log = append(c.Log, fmt.Sprintf("[%s] ", c.Clock.Now().Format("01-02 15:04"))+fmt.Sprintf(format, args...))
}

// Step is one unit of experiment work.
type Step struct {
	Name string
	Run  func(*Context) error
	// Cleanup, if set, runs (in reverse step order) when a later step
	// fails, and always at workflow end for steps marked AlwaysCleanup.
	Cleanup       func(*Context)
	AlwaysCleanup bool
}

// Workflow is an ordered list of steps.
type Workflow struct {
	Name  string
	Steps []Step
}

// ErrDiverged aborts a workflow whose B-instance drifted too far.
var ErrDiverged = errors.New("experiment: B-instance diverged beyond tolerance")

// Engine executes workflows.
type Engine struct {
	Clock sim.Clock
	RNG   *sim.RNG
}

// Execute runs the workflow for one tenant. On step failure, cleanups of
// completed steps run in reverse order and the error is returned with the
// context (for monitoring).
func (e *Engine) Execute(wf Workflow, tenant *workload.Tenant) (*Context, error) {
	ctx := &Context{
		Tenant: tenant,
		Clock:  e.Clock,
		RNG:    e.RNG.Child("experiment/" + wf.Name + "/" + tenant.DB.Name()),
		Values: make(map[string]any),
	}
	var done []Step
	for _, s := range wf.Steps {
		ctx.logf("step %s", s.Name)
		if err := s.Run(ctx); err != nil {
			ctx.logf("step %s failed: %v", s.Name, err)
			for i := len(done) - 1; i >= 0; i-- {
				if done[i].Cleanup != nil {
					done[i].Cleanup(ctx)
				}
			}
			return ctx, fmt.Errorf("experiment %s, step %s: %w", wf.Name, s.Name, err)
		}
		done = append(done, s)
	}
	for i := len(done) - 1; i >= 0; i-- {
		if done[i].AlwaysCleanup && done[i].Cleanup != nil {
			done[i].Cleanup(ctx)
		}
	}
	return ctx, nil
}

// ---- step library (§7.2: "a library of commonly-used steps") ----

// StepCreateBInstance forks a B-instance from the tenant's primary.
func StepCreateBInstance(cfg binstance.Config) Step {
	return Step{
		Name: "create-b-instance",
		Run: func(ctx *Context) error {
			ctx.B = binstance.Fork(ctx.Tenant.DB, ctx.Tenant.DB.Name()+"-b", cfg, ctx.RNG)
			return nil
		},
		// No cleanup: the B-instance stays inspectable after the workflow;
		// abandoning it releases the only reference.
	}
}

// StepReplay replays a freshly sampled workload phase onto the B-instance
// (and optionally through the primary with a TDS-style fork).
func StepReplay(name string, d time.Duration, statements int, throughPrimary bool) Step {
	return Step{
		Name: "replay-" + name,
		Run: func(ctx *Context) error {
			if ctx.B == nil {
				return errors.New("experiment: no B-instance")
			}
			stmts := ctx.Tenant.Stream(statements)
			if throughPrimary {
				// Execute on the A-instance and fork each statement.
				step := d / time.Duration(len(stmts)+1)
				for _, sql := range stmts {
					ctx.Tenant.DB.Exec(sql) //nolint:errcheck // A-side errors don't gate the fork
					ctx.B.Offer(sql)
					ctx.Clock.Sleep(step)
				}
				ctx.B.Flush()
			} else {
				ctx.Tenant.Replay(ctx.B.DB, stmts, d)
			}
			if ctx.B.Failed() {
				return errors.New("experiment: B-instance failed during replay")
			}
			return nil
		},
	}
}

// StepCheckDivergence aborts when the B-instance drifted beyond maxRel.
func StepCheckDivergence(maxRel float64) Step {
	return Step{
		Name: "check-divergence",
		Run: func(ctx *Context) error {
			if ctx.B == nil {
				return errors.New("experiment: no B-instance")
			}
			if d := ctx.B.Divergence(); d > maxRel {
				return fmt.Errorf("%w: %.3f > %.3f", ErrDiverged, d, maxRel)
			}
			return nil
		},
	}
}

// StepMark records the current time under a name, for phase windows.
func StepMark(name string) Step {
	return Step{
		Name: "mark-" + name,
		Run: func(ctx *Context) error {
			ctx.Values[name] = ctx.Clock.Now()
			return nil
		},
	}
}

// MarkedTime fetches a StepMark timestamp.
func MarkedTime(ctx *Context, name string) (time.Time, bool) {
	v, ok := ctx.Values[name]
	if !ok {
		return time.Time{}, false
	}
	t, ok := v.(time.Time)
	return t, ok
}

// StepCustom wraps an ad-hoc function as a step ("custom steps can be
// added for any experiment").
func StepCustom(name string, fn func(*Context) error) Step {
	return Step{Name: name, Run: fn}
}
