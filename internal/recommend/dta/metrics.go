package dta

import "autoindex/internal/metrics"

// DTA pass instrumentation (§5.3): how often the tuner runs, how many
// candidates each pass surfaces and discards, and how long a pass takes
// in virtual time. What-if optimizer calls are counted by the optimizer
// package itself (optimizer.whatif_calls).
var (
	descPasses = metrics.NewCounterDesc("dta.passes",
		"DTA recommendation passes started")
	descCandidatesGenerated = metrics.NewCounterDesc("dta.candidates_generated",
		"distinct candidate indexes entering the DTA pool (per-query + MI augmentation)")
	descCandidatesPruned = metrics.NewCounterDesc("dta.candidates_pruned",
		"DTA pool candidates dropped for duplicating an existing index")
	descEnumPruned = metrics.NewCounterDesc("dta.enumeration_pruned",
		"greedy-enumeration candidate evaluations skipped by exact upper-bound domination")
	descPassMillis = metrics.NewHistogramDesc("dta.pass_ms",
		"DTA pass latency in virtual milliseconds",
		10, 100, 1_000, 10_000, 60_000, 600_000)
)
