package optimizer

import "autoindex/internal/metrics"

// Optimizer self-instrumentation (§6 "tune the tuner"): how often the
// planner runs, how much of that is what-if probing, and how well its
// cost estimates track measured execution.
var (
	descPlans = metrics.NewCounterDesc("optimizer.plans",
		"regular (non-what-if) optimizations performed")
	descWhatIfCalls = metrics.NewCounterDesc("optimizer.whatif_calls",
		"optimizations performed on behalf of the what-if API")

	// DescEstErrorAbsPct is observed by the engine, which is the only
	// layer that sees both the plan's estimated cost and the metered
	// execution it produced. Buckets are |est-measured|/measured in
	// rounded percent.
	DescEstErrorAbsPct = metrics.NewHistogramDesc("optimizer.est_error_abs_pct",
		"absolute relative error between estimated plan cost and measured CPU, percent",
		5, 10, 25, 50, 100, 200, 400, 1_000, 10_000)
)
