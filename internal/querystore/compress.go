package querystore

import (
	"sort"
	"time"

	"autoindex/internal/sim"
)

// Workload compression (see ARCHITECTURE.md "Costing path"): instead of
// costing every Query Store template, recommenders can cost a weighted
// representative sample — the heavy-hitter head that covers most of the
// observed CPU, plus a small probability-proportional-to-size sample of
// the tail whose weights rescale it back to the tail's true total. The
// estimate of total workload cost stays unbiased in expectation while the
// number of templates (and therefore what-if optimizer calls) drops to a
// small constant.

// Compression defaults: cover 85% of CPU exactly, sample 4 tail templates.
const (
	DefaultCompressionCoverage    = 0.85
	DefaultCompressionTailSamples = 4
)

// CompressionOptions tunes CompressedTopByCPU.
type CompressionOptions struct {
	// TargetCoverage is the fraction of total CPU the exact head must
	// cover before sampling starts; <= 0 uses DefaultCompressionCoverage.
	TargetCoverage float64
	// TailSamples is how many tail templates to sample; <= 0 uses
	// DefaultCompressionTailSamples.
	TailSamples int
	// Rand draws the tail sample. It must be a deterministic, name-keyed
	// stream derived from the tenant's seed (e.g. db.DeriveRNG) so the
	// sample is identical at any fleet worker count. nil keeps the exact
	// head only.
	Rand *sim.RNG
}

// WeightedQuery is one compressed-workload member: Weight scales its
// observed executions and CPU so that sums over the sample estimate sums
// over the full store (head entries have Weight 1; sampled tail entries
// carry the tail's total-to-sampled CPU ratio).
type WeightedQuery struct {
	QueryCost
	Weight float64
}

// CompressedTopByCPU returns a weighted representative sample of the
// workload since from, at most k entries (k <= 0 means unbounded): the
// most expensive templates until opts.TargetCoverage of total CPU is
// covered exactly, then opts.TailSamples drawn from the remainder with
// probability proportional to CPU, weighted to preserve the tail's total.
// The result is sorted by TotalCPU descending (query hash as tie-break),
// the same order TopByCPU produces.
func (s *Store) CompressedTopByCPU(from time.Time, k int, opts CompressionOptions) []WeightedQuery {
	if opts.TargetCoverage <= 0 {
		opts.TargetCoverage = DefaultCompressionCoverage
	}
	if opts.TailSamples <= 0 {
		opts.TailSamples = DefaultCompressionTailSamples
	}
	all := s.TopByCPU(from, 0)
	total := 0.0
	for _, c := range all {
		total += c.TotalCPU
	}

	// Exact head: heaviest templates until the coverage target, leaving
	// room in k for the tail sample.
	headMax := len(all)
	if k > 0 {
		headMax = k - opts.TailSamples
		if headMax < 1 {
			headMax = 1
		}
	}
	covered := 0.0
	head := 0
	for head < len(all) && head < headMax {
		if total > 0 && covered >= opts.TargetCoverage*total {
			break
		}
		covered += all[head].TotalCPU
		head++
	}
	out := make([]WeightedQuery, 0, head+opts.TailSamples)
	for _, c := range all[:head] {
		out = append(out, WeightedQuery{QueryCost: c, Weight: 1})
	}

	// Tail sample: without replacement, proportional to CPU, rescaled so
	// the sampled entries stand in for the whole tail's CPU.
	tail := all[head:]
	if len(tail) > 0 && opts.Rand != nil {
		tailTotal := total - covered
		n := opts.TailSamples
		if n > len(tail) {
			n = len(tail)
		}
		remaining := append([]QueryCost(nil), tail...)
		remTotal := tailTotal
		var sampled []QueryCost
		sampledTotal := 0.0
		for i := 0; i < n && remTotal > 0; i++ {
			x := opts.Rand.Float64() * remTotal
			pick := len(remaining) - 1
			for j, c := range remaining {
				x -= c.TotalCPU
				if x < 0 {
					pick = j
					break
				}
			}
			c := remaining[pick]
			sampled = append(sampled, c)
			sampledTotal += c.TotalCPU
			remTotal -= c.TotalCPU
			remaining = append(remaining[:pick], remaining[pick+1:]...)
		}
		if sampledTotal > 0 {
			w := tailTotal / sampledTotal
			for _, c := range sampled {
				out = append(out, WeightedQuery{QueryCost: c, Weight: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalCPU != out[j].TotalCPU {
			return out[i].TotalCPU > out[j].TotalCPU
		}
		return out[i].QueryHash < out[j].QueryHash
	})
	return out
}
